package energy

import (
	"math"
	"strings"
	"testing"

	"dmx/internal/sim"
)

func TestCPUActiveVsIdleSplit(t *testing.T) {
	m := NewMeter(Default())
	m.AddCPU(sim.Second, 2*sim.Second)
	want := 165.0 + 60.0
	if got := m.Total(); math.Abs(got-want) > 1e-9 {
		t.Errorf("CPU energy = %v, want %v", got, want)
	}
}

func TestCPUBusyClampedToMakespan(t *testing.T) {
	m := NewMeter(Default())
	m.AddCPU(3*sim.Second, sim.Second)
	if got := m.Total(); math.Abs(got-165.0) > 1e-9 {
		t.Errorf("clamped CPU energy = %v, want 165", got)
	}
}

func TestDRXScalesWithInstances(t *testing.T) {
	p := Default()
	one := NewMeter(p)
	one.AddDRX(1, sim.Second, sim.Second)
	four := NewMeter(p)
	four.AddDRX(4, sim.Second, sim.Second)
	if math.Abs(four.Total()-4*one.Total()) > 1e-9 {
		t.Errorf("4 DRX = %v, want 4x %v", four.Total(), one.Total())
	}
}

func TestTrafficEnergyPerByte(t *testing.T) {
	m := NewMeter(Default())
	m.AddTraffic(1e12) // 1 TB at 40 pJ/B = 40 J
	if got := m.Total(); math.Abs(got-40) > 1e-9 {
		t.Errorf("1TB transfer energy = %v J, want 40", got)
	}
}

func TestBreakdownAndString(t *testing.T) {
	m := NewMeter(Default())
	m.AddCPU(sim.Second, sim.Second)
	m.AddAccelerator("fft", 18, sim.Second)
	m.AddSwitches(2, sim.Second)
	m.AddDRX(1, 0, sim.Second)
	m.AddTraffic(1 << 30)
	bd := m.Breakdown()
	for _, k := range []string{"cpu", "accel:fft", "switch", "drx", "link"} {
		if bd[k] <= 0 {
			t.Errorf("component %s missing from breakdown", k)
		}
	}
	s := m.String()
	if !strings.Contains(s, "total=") || !strings.Contains(s, "cpu=") {
		t.Errorf("String() = %q", s)
	}
	// Mutating the returned breakdown must not affect the meter.
	bd["cpu"] = 0
	if m.Breakdown()["cpu"] == 0 {
		t.Error("Breakdown returned internal map")
	}
}

func TestIdleDRXCheaperThanActive(t *testing.T) {
	p := Default()
	active := NewMeter(p)
	active.AddDRX(1, sim.Second, sim.Second)
	idle := NewMeter(p)
	idle.AddDRX(1, 0, sim.Second)
	if idle.Total() >= active.Total() {
		t.Errorf("idle DRX (%v J) not cheaper than active (%v J)", idle.Total(), active.Total())
	}
}

func TestNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative energy")
		}
	}()
	NewMeter(Default()).Add("x", -1)
}
