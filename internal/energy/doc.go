// Package energy accounts system-wide energy for the placement study.
//
// The paper measures CPU energy with RAPL, accelerator energy as
// post-synthesis power × runtime, and adds PCIe switch power and
// per-byte transfer energy (Sec. VI, "Energy evaluation"). This package
// reproduces that accounting analytically: a Meter accumulates component
// energies from busy/idle times and fabric traffic, and reports the
// breakdown Fig. 15 compares across placements.
package energy
