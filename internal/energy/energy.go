package energy

import (
	"fmt"
	"sort"
	"strings"

	"dmx/internal/sim"
)

// Params holds the component power calibration.
type Params struct {
	// CPUActiveW is package power while cores restructure data (RAPL
	// reading under the AVX-heavy kernels); CPUIdleW is package idle.
	CPUActiveW float64
	CPUIdleW   float64
	// DRXActiveW and DRXIdleW bound one DRX ASIC instance.
	DRXActiveW float64
	DRXIdleW   float64
	// SwitchW is one PCIe switch's static power.
	SwitchW float64
	// LinkPJPerByte is the transfer energy per byte crossing one link.
	LinkPJPerByte float64
}

// Default returns the calibrated parameters: a 165 W TDP Xeon 8260L
// (~60 W idle), a ~6 W DRX ASIC in 15 nm (the 25 W PCIe slot budget
// bounds a standalone card with headroom), ~25 W per PCIe switch, and
// ~40 pJ/byte (≈5 pJ/bit) of link transfer energy.
func Default() Params {
	return Params{
		CPUActiveW:    165,
		CPUIdleW:      60,
		DRXActiveW:    6,
		DRXIdleW:      0.8,
		SwitchW:       25,
		LinkPJPerByte: 40,
	}
}

// Meter accumulates per-component energy in joules.
type Meter struct {
	p          Params
	components map[string]float64
}

// NewMeter creates an empty meter with the given parameters.
func NewMeter(p Params) *Meter {
	return &Meter{p: p, components: make(map[string]float64)}
}

// Add charges an arbitrary labeled energy (joules).
func (m *Meter) Add(component string, joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("energy: negative charge %v for %s", joules, component))
	}
	m.components[component] += joules
}

// AddCPU charges the host package: active power while restructuring,
// idle power for the rest of the makespan.
func (m *Meter) AddCPU(busy, makespan sim.Duration) {
	if busy > makespan {
		busy = makespan
	}
	m.Add("cpu", m.p.CPUActiveW*busy.Seconds()+m.p.CPUIdleW*(makespan-busy).Seconds())
}

// AddAccelerator charges one accelerator's power over its busy time.
func (m *Meter) AddAccelerator(name string, powerW float64, busy sim.Duration) {
	m.Add("accel:"+name, powerW*busy.Seconds())
}

// AddDRX charges n DRX instances, each busy for busyEach of the
// makespan and idle for the remainder.
func (m *Meter) AddDRX(n int, busyEach, makespan sim.Duration) {
	if busyEach > makespan {
		busyEach = makespan
	}
	per := m.p.DRXActiveW*busyEach.Seconds() + m.p.DRXIdleW*(makespan-busyEach).Seconds()
	m.Add("drx", float64(n)*per)
}

// AddSwitches charges static switch power over the makespan.
func (m *Meter) AddSwitches(n int, makespan sim.Duration) {
	m.Add("switch", float64(n)*m.p.SwitchW*makespan.Seconds())
}

// AddTraffic charges per-byte link transfer energy.
func (m *Meter) AddTraffic(bytes int64) {
	m.Add("link", float64(bytes)*m.p.LinkPJPerByte*1e-12)
}

// Total reports the accumulated energy in joules.
func (m *Meter) Total() float64 {
	var t float64
	for _, j := range m.components {
		t += j
	}
	return t
}

// Breakdown returns a copy of the per-component energies.
func (m *Meter) Breakdown() map[string]float64 {
	out := make(map[string]float64, len(m.components))
	for k, v := range m.components {
		out[k] = v
	}
	return out
}

// String renders the breakdown sorted by component name.
func (m *Meter) String() string {
	keys := make([]string, 0, len(m.components))
	for k := range m.components {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%.3fJ ", k, m.components[k])
	}
	fmt.Fprintf(&b, "total=%.3fJ", m.Total())
	return b.String()
}
