package faults

import (
	"strings"
	"testing"

	"dmx/internal/sim"
)

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("drx=5ms/200us,transient=0.02,link=20ms/1ms/0.25,stall=10ms/500us")
	if err != nil {
		t.Fatal(err)
	}
	if p.DRXMTBF != 5*sim.Millisecond || p.DRXRepair != 200*sim.Microsecond {
		t.Errorf("drx: %v/%v", p.DRXMTBF, p.DRXRepair)
	}
	if p.TransientProb != 0.02 {
		t.Errorf("transient: %g", p.TransientProb)
	}
	if p.LinkMTBF != 20*sim.Millisecond || p.LinkRepair != sim.Millisecond || p.LinkDegradeFactor != 0.25 {
		t.Errorf("link: %v/%v/%g", p.LinkMTBF, p.LinkRepair, p.LinkDegradeFactor)
	}
	if p.StallMTBF != 10*sim.Millisecond || p.StallRepair != 500*sim.Microsecond {
		t.Errorf("stall: %v/%v", p.StallMTBF, p.StallRepair)
	}
	if !p.Enabled() {
		t.Error("plan should be enabled")
	}
	if s := p.String(); !strings.Contains(s, "transient=0.02") {
		t.Errorf("String: %s", s)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"drx=5ms",            // missing repair
		"frob=1ms/1ms",       // unknown clause
		"transient=1.5",      // out of range
		"link=1ms/1ms/1.0",   // factor must be < 1
		"drx=5ms/200us/1ms",  // too many fields
		"",                   // enables nothing
		"transient",          // not key=value
		"stall=banana/200us", // bad duration
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestTimelineDeterministicAndLazy(t *testing.T) {
	mk := func() *timeline { return newTimeline(7, kindDRX, "drx.a0.0", sim.Millisecond, 100*sim.Microsecond) }
	a, b := mk(), mk()
	// Different query patterns over the same timeline must agree on
	// every instant's state.
	var probesA []bool
	for ts := sim.Time(0); ts < sim.Time(20*sim.Millisecond); ts = ts.Add(37 * sim.Microsecond) {
		down, _, _ := a.at(ts)
		probesA = append(probesA, down)
	}
	// b queries sparsely first (different extension pattern), then densely.
	b.at(sim.Time(15 * sim.Millisecond))
	i := 0
	for ts := sim.Time(0); ts < sim.Time(20*sim.Millisecond); ts = ts.Add(37 * sim.Microsecond) {
		down, _, _ := b.at(ts)
		if down != probesA[i] {
			t.Fatalf("query-order dependence at %v: %v vs %v", ts, down, probesA[i])
		}
		i++
	}
	someDown := false
	for _, d := range probesA {
		someDown = someDown || d
	}
	if !someDown {
		t.Error("1 ms MTBF / 100 us repair over 20 ms never sampled down")
	}
}

func TestInjectorIndependentStations(t *testing.T) {
	plan := &Plan{Seed: 3, DRXMTBF: sim.Millisecond, DRXRepair: 200 * sim.Microsecond}
	in := New(plan, nil)
	// Two stations must not share a timeline; with a 20% duty cycle the
	// chance of identical 200-probe traces is negligible.
	same := true
	for ts := sim.Time(0); ts < sim.Time(20*sim.Millisecond); ts = ts.Add(100 * sim.Microsecond) {
		d1, _ := in.DRXDown("drx.a0.0", ts)
		d2, _ := in.DRXDown("drx.a1.0", ts)
		same = same && d1 == d2
	}
	if same {
		t.Error("two stations produced identical outage traces")
	}
	if in.Counts.DRXOutages == 0 {
		t.Error("no outages counted")
	}
}

func TestInjectorDisabled(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if down, _ := in.DRXDown("x", 0); down {
		t.Error("nil injector reports a DRX outage")
	}
	if down, f := in.LinkState("x", 0); down || f != 1 {
		t.Error("nil injector impairs a link")
	}
	if in.StallUntil("x", 0) != 0 {
		t.Error("nil injector stalls")
	}
	if in.TransientFault("x") {
		t.Error("nil injector faults")
	}
	if New(nil, nil) != nil || New(&Plan{}, nil) != nil {
		t.Error("disabled plan built an injector")
	}
}

func TestLinkDegradeFactor(t *testing.T) {
	plan := &Plan{Seed: 5, LinkMTBF: sim.Millisecond, LinkRepair: 300 * sim.Microsecond, LinkDegradeFactor: 0.25}
	in := New(plan, nil)
	sawDegrade := false
	for ts := sim.Time(0); ts < sim.Time(20*sim.Millisecond); ts = ts.Add(50 * sim.Microsecond) {
		down, f := in.LinkState("a0.0.up", ts)
		if down {
			t.Fatal("degrade-factor plan reported full loss")
		}
		if f == 0.25 {
			sawDegrade = true
		} else if f != 1 {
			t.Fatalf("unexpected factor %g", f)
		}
	}
	if !sawDegrade {
		t.Error("never observed degradation")
	}
}

func TestRetryBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, Backoff: 10 * sim.Microsecond, BackoffFactor: 2, MaxBackoff: 25 * sim.Microsecond}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.backoffFor(2); got != 10*sim.Microsecond {
		t.Errorf("attempt 2: %v", got)
	}
	if got := p.backoffFor(3); got != 20*sim.Microsecond {
		t.Errorf("attempt 3: %v", got)
	}
	if got := p.backoffFor(4); got != 25*sim.Microsecond {
		t.Errorf("attempt 4 (capped): %v", got)
	}
	// Jitter is deterministic per injector stream and bounded.
	in := New(&Plan{Seed: 9, TransientProb: 0.5}, nil)
	p.Jitter = 0.5
	d1 := in.RetryBackoff(p, 2)
	if d1 < 10*sim.Microsecond || d1 >= 15*sim.Microsecond {
		t.Errorf("jittered backoff %v outside [10us, 15us)", d1)
	}
	in2 := New(&Plan{Seed: 9, TransientProb: 0.5}, nil)
	if d2 := in2.RetryBackoff(p, 2); d2 != d1 {
		t.Errorf("same seed, different jitter: %v vs %v", d1, d2)
	}
}

func TestRetryValidate(t *testing.T) {
	bad := []RetryPolicy{
		{MaxAttempts: -1},
		{MaxAttempts: 3}, // retry without backoff
		{MaxAttempts: 2, Backoff: -1},
		{MaxAttempts: 2, Backoff: sim.Microsecond, Jitter: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultRetry().Validate(); err != nil {
		t.Errorf("DefaultRetry invalid: %v", err)
	}
	if !DefaultRetry().Enabled() {
		t.Error("DefaultRetry should enable retries")
	}
	if (RetryPolicy{}).Enabled() {
		t.Error("zero policy should be disabled")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{DRXMTBF: sim.Millisecond},   // no repair
		{LinkMTBF: sim.Millisecond},  // no repair
		{StallMTBF: sim.Millisecond}, // no duration
		{TransientProb: -0.1},
		{TransientProb: 1},
		{LinkMTBF: sim.Millisecond, LinkRepair: 1, LinkDegradeFactor: 1},
		{DRXMTBF: -sim.Millisecond},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan: %v", err)
	}
	if nilPlan.String() != "faults(off)" {
		t.Errorf("nil plan String: %s", nilPlan.String())
	}
}
