package faults

import (
	"fmt"

	"dmx/internal/sim"
)

// RetryPolicy is the recovery side of fault handling: how many times a
// stage operation (a kernel execution, a DRX restructure, a fabric
// transfer) may be attempted, how long to back off between attempts,
// and the per-stage watchdog deadline that detects stalled operations.
// The zero value disables both retry and the watchdog, preserving the
// historical fail-fast flow exactly.
type RetryPolicy struct {
	// MaxAttempts bounds attempts per stage operation; values ≤ 1 mean
	// a single attempt (no retry).
	MaxAttempts int
	// Backoff is the delay before the second attempt; each further
	// attempt multiplies it by BackoffFactor (default 2), capped at
	// MaxBackoff when that is positive.
	Backoff       sim.Duration
	BackoffFactor float64
	MaxBackoff    sim.Duration
	// Jitter, in [0, 1), adds a deterministic pseudo-random fraction of
	// the computed backoff (drawn from the injector's retry stream) so
	// co-failing requests do not retry in lockstep.
	Jitter float64
	// StageDeadline, when positive, arms a watchdog per stage
	// operation: an operation that has not completed within the
	// deadline is declared timed out and retried (or the request
	// abandoned once attempts are exhausted). 0 disables the watchdog —
	// a stalled stage then holds its flow forever, as before.
	StageDeadline sim.Duration
}

// DefaultRetry is a sensible serving-grade policy: three attempts with
// 20 µs exponential backoff (factor 2, 1 ms cap, 25% jitter) and no
// stage watchdog unless a deadline is configured explicitly.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:   3,
		Backoff:       20 * sim.Microsecond,
		BackoffFactor: 2,
		MaxBackoff:    sim.Millisecond,
		Jitter:        0.25,
	}
}

// Enabled reports whether the policy changes flow behavior at all.
func (p RetryPolicy) Enabled() bool {
	return p.MaxAttempts > 1 || p.StageDeadline > 0
}

// Validate sanity-checks the policy.
func (p RetryPolicy) Validate() error {
	if p.MaxAttempts < 0 {
		return fmt.Errorf("faults: negative MaxAttempts %d", p.MaxAttempts)
	}
	if p.Backoff < 0 || p.MaxBackoff < 0 || p.StageDeadline < 0 {
		return fmt.Errorf("faults: negative retry durations")
	}
	if p.BackoffFactor < 0 {
		return fmt.Errorf("faults: negative backoff factor %g", p.BackoffFactor)
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		return fmt.Errorf("faults: jitter %g outside [0, 1)", p.Jitter)
	}
	if p.MaxAttempts > 1 && p.Backoff == 0 {
		return fmt.Errorf("faults: retry needs a positive backoff")
	}
	return nil
}

// Attempts reports the effective attempt bound (≥ 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoffFor computes the base delay before attempt n (n ≥ 2), without
// jitter: Backoff · BackoffFactor^(n-2), capped at MaxBackoff.
func (p RetryPolicy) backoffFor(attempt int) sim.Duration {
	d := p.Backoff
	factor := p.BackoffFactor
	if factor <= 0 {
		factor = 2
	}
	for i := 2; i < attempt; i++ {
		d = sim.Duration(float64(d) * factor)
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}
