// Package faults is the seeded, deterministic fault-injection and
// recovery subsystem of the serving stack. A Plan describes four fault
// mechanisms — DRX unit outages, transient restructuring errors, PCIe
// link degradation/loss incidents, and accelerator stalls — and an
// Injector materializes them against one simulation: every station
// (DRX unit, fabric link, accelerator device) draws its incident
// timeline from an independent splitmix64 stream derived from the plan
// seed and the station name, exactly like internal/traffic derives
// per-application arrival streams. The same seed therefore reproduces
// the same incidents regardless of how many stations exist, what order
// they are queried in, or how many sweep workers run sibling
// simulations.
//
// Timelines are extended lazily: a station's outage windows are
// generated only as far as the simulation actually queries, so the
// discrete-event engine still drains (an eagerly scheduled infinite
// fault timeline would hold the event queue open forever). Fault and
// repair instants are emitted to the observability stream the first
// time a window is observed, timestamped at the window's true begin and
// end, so incidents are visible in Perfetto traces.
//
// RetryPolicy is the recovery half: per-stage watchdog deadlines,
// bounded attempts, and exponential backoff with deterministic jitter.
// The request state machine in internal/dmxsys consumes both: faults
// decide when stations misbehave, the policy decides how the flow
// reacts, and graceful degradation (rerouting a hop whose DRX is down
// onto the CPU restructuring baseline) guarantees functional
// completion at reduced speed.
package faults
