package faults

import (
	"math"

	"dmx/internal/sim"
)

// Stream is a splitmix64 generator: tiny, fast, and identical on every
// platform. Each station owns one, derived from the plan seed and the
// station's name, so incident timelines are independent of how many
// stations exist and of the order they are queried in.
type Stream struct{ state uint64 }

// NewStream returns a stream seeded directly with the given state.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 returns the next raw sample.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given
// mean (inverse-CDF sampling; 1-u keeps the log argument positive).
func (s *Stream) Exp(mean sim.Duration) sim.Duration {
	return sim.FromSeconds(-math.Log(1-s.Float64()) * mean.Seconds())
}

// stationSeed derives an independent stream state for one (kind,
// station) pair: an FNV-1a hash of the labels mixed into the plan seed
// through one splitmix round. Distinct stations — and distinct fault
// kinds on the same station — get uncorrelated streams.
func stationSeed(seed uint64, kind, name string) uint64 {
	const (
		fnvOffset = 0xcbf29ce484222325
		fnvPrime  = 0x100000001b3
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(kind); i++ {
		h = (h ^ uint64(kind[i])) * fnvPrime
	}
	h = (h ^ '/') * fnvPrime
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime
	}
	s := Stream{state: seed ^ h}
	return s.Uint64()
}
