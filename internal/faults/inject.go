package faults

import (
	"dmx/internal/obs"
	"dmx/internal/sim"
)

// Fault-kind labels, used both for stream derivation (so the same
// station name draws independent timelines per mechanism) and for
// observability track naming.
const (
	kindDRX       = "drx"
	kindLink      = "link"
	kindStall     = "stall"
	kindTransient = "transient"
	kindRetry     = "retry"
)

// window is one incident: the station is impaired in [start, end).
type window struct {
	start, end sim.Time
	emitted    bool
}

// timeline generates a station's incident windows lazily from its
// stream: exponential up-times with mean mtbf, fixed repair length.
// Windows are generated only as far as queries reach, so the engine's
// event queue never holds far-future fault events.
type timeline struct {
	str    Stream
	mtbf   sim.Duration
	repair sim.Duration
	// windows generated so far, in order; cursor is the end of the last
	// one (the next up-time starts there).
	windows []window
	cursor  sim.Time
}

func newTimeline(seed uint64, kind, name string, mtbf, repair sim.Duration) *timeline {
	return &timeline{str: Stream{state: stationSeed(seed, kind, name)}, mtbf: mtbf, repair: repair}
}

// extend generates windows until the last one starts after t, so a
// query at t is decidable. Generation depends only on the stream state
// and t, never on how many queries were made — that is what keeps
// timelines identical across runs with different query patterns.
func (tl *timeline) extend(t sim.Time) {
	for len(tl.windows) == 0 || tl.windows[len(tl.windows)-1].start <= t {
		up := tl.str.Exp(tl.mtbf)
		if up < sim.Nanosecond {
			up = sim.Nanosecond // keep windows strictly ordered
		}
		start := tl.cursor.Add(up)
		end := start.Add(tl.repair)
		tl.windows = append(tl.windows, window{start: start, end: end})
		tl.cursor = end
	}
}

// at reports whether the station is impaired at t and, when it is, the
// window's end (recovery instant) and whether this is the first
// observation of the window (so the caller can emit its obs events
// exactly once).
func (tl *timeline) at(t sim.Time) (down bool, until sim.Time, fresh bool) {
	if tl == nil || tl.mtbf <= 0 {
		return false, 0, false
	}
	tl.extend(t)
	// Scan backward: queries are approximately monotone in simulation
	// time, so the hit is almost always in the last few windows.
	for i := len(tl.windows) - 1; i >= 0; i-- {
		w := &tl.windows[i]
		if w.start > t {
			continue
		}
		if t < w.end {
			fresh = !w.emitted
			w.emitted = true
			return true, w.end, fresh
		}
		break // windows are ordered; earlier ones end earlier
	}
	return false, 0, false
}

// Counts tallies injected incidents for reports.
type Counts struct {
	DRXOutages    int // DRX outage windows observed by at least one hop
	LinkIncidents int // link incident windows observed by a transfer
	Stalls        int // kernel submissions that hit a stall window
	Transients    int // restructure attempts that drew a transient fault
}

// Injector materializes one plan against one simulation. A nil
// *Injector is the disabled state: every query reports "healthy" with
// zero overhead beyond the nil check, mirroring the nil-Recorder idiom
// of internal/obs. An Injector is single-goroutine, like the engine it
// serves; parallel sweeps build one per simulation.
type Injector struct {
	plan Plan
	rec  *obs.Recorder
	eng  *sim.Engine

	drx   map[string]*timeline
	link  map[string]*timeline
	stall map[string]*timeline
	trans map[string]*Stream
	retry Stream

	// Counts accumulates observed incidents.
	Counts Counts

	// OnIncident, when set, observes every fresh incident (outage, link
	// window, stall, transient) synchronously, right after its count
	// increments — on the engine the incident fired on. Cluster fleets
	// use it to stream fault totals to the router instead of polling.
	OnIncident func()
}

// New builds an injector for the plan; rec (optional) receives fault
// and repair instants. A disabled plan yields a nil injector.
func New(plan *Plan, rec *obs.Recorder) *Injector {
	if !plan.Enabled() {
		return nil
	}
	return &Injector{
		plan:  *plan,
		rec:   rec,
		drx:   make(map[string]*timeline),
		link:  make(map[string]*timeline),
		stall: make(map[string]*timeline),
		trans: make(map[string]*Stream),
		retry: Stream{state: stationSeed(plan.Seed, kindRetry, "")},
	}
}

// Enabled reports whether the injector is live.
func (in *Injector) Enabled() bool { return in != nil }

// Bind attaches the injector to the engine it serves, so fault/repair
// instants emit through the engine's *current* recorder — sharded
// execution swaps a capture buffer in per lookahead window, and a
// cached recorder would bypass it. Unbound injectors keep emitting to
// the recorder passed at construction. Bind on nil is a no-op.
func (in *Injector) Bind(eng *sim.Engine) {
	if in != nil {
		in.eng = eng
	}
}

// sink is the live emission target (see Bind).
func (in *Injector) sink() *obs.Recorder {
	if in.eng != nil {
		return in.eng.Obs
	}
	return in.rec
}

// incident fires the OnIncident hook for one fresh incident.
func (in *Injector) incident() {
	if in.OnIncident != nil {
		in.OnIncident()
	}
}

// Plan returns the injector's plan (zero value when disabled).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// lane fetches (or lazily creates) the timeline for one station.
func (in *Injector) lane(m map[string]*timeline, kind, name string, mtbf, repair sim.Duration) *timeline {
	tl, ok := m[name]
	if !ok {
		tl = newTimeline(in.plan.Seed, kind, name, mtbf, repair)
		m[name] = tl
	}
	return tl
}

// emitWindow records a fault/repair instant pair for a freshly observed
// incident window, timestamped at the window's true boundaries.
func (in *Injector) emitWindow(name string, start, until sim.Time) {
	rec := in.sink()
	rec.Instant(obs.Time(start), obs.TypeFault, 0, name, "", "", name, 0)
	rec.Instant(obs.Time(until), obs.TypeRepair, 0, name, "", "", name, 0)
}

// DRXDown reports whether the named DRX unit is in an outage at now
// and, if so, when it recovers.
func (in *Injector) DRXDown(name string, now sim.Time) (bool, sim.Time) {
	if in == nil || in.plan.DRXMTBF <= 0 {
		return false, 0
	}
	tl := in.lane(in.drx, kindDRX, name, in.plan.DRXMTBF, in.plan.DRXRepair)
	down, until, fresh := tl.at(now)
	if fresh {
		in.Counts.DRXOutages++
		in.emitWindow(name, until.Add(-in.plan.DRXRepair), until)
		in.incident()
	}
	return down, until
}

// LinkState implements the fabric fault hook: whether the named link is
// fully down at now and, when degraded instead, the fraction of its
// bandwidth it retains (1 = healthy).
func (in *Injector) LinkState(name string, now sim.Time) (down bool, factor float64) {
	if in == nil || in.plan.LinkMTBF <= 0 {
		return false, 1
	}
	tl := in.lane(in.link, kindLink, name, in.plan.LinkMTBF, in.plan.LinkRepair)
	hit, until, fresh := tl.at(now)
	if fresh {
		in.Counts.LinkIncidents++
		in.emitWindow(name, until.Add(-in.plan.LinkRepair), until)
		in.incident()
	}
	if !hit {
		return false, 1
	}
	if in.plan.LinkDegradeFactor > 0 {
		return false, in.plan.LinkDegradeFactor
	}
	return true, 0
}

// StallUntil reports how long a kernel submitted on the named device at
// now must wait out a stall window (0 = no stall).
func (in *Injector) StallUntil(name string, now sim.Time) sim.Duration {
	if in == nil || in.plan.StallMTBF <= 0 {
		return 0
	}
	tl := in.lane(in.stall, kindStall, name, in.plan.StallMTBF, in.plan.StallRepair)
	down, until, fresh := tl.at(now)
	if fresh {
		in.Counts.Stalls++
		in.emitWindow(name, until.Add(-in.plan.StallRepair), until)
		in.incident()
	}
	if !down {
		return 0
	}
	return until.Sub(now)
}

// TransientFault draws whether one restructuring attempt on the named
// DRX unit faults. Each unit has its own stream, so attempt order on
// one unit never perturbs another's draws.
func (in *Injector) TransientFault(name string) bool {
	if in == nil || in.plan.TransientProb <= 0 {
		return false
	}
	str, ok := in.trans[name]
	if !ok {
		str = NewStream(stationSeed(in.plan.Seed, kindTransient, name))
		in.trans[name] = str
	}
	hit := str.Float64() < in.plan.TransientProb
	if hit {
		in.Counts.Transients++
		in.incident()
	}
	return hit
}

// RetryBackoff computes the delay before attempt n (n ≥ 2) under the
// policy, adding the injector's deterministic jitter. With a nil
// injector the base backoff is returned unjittered, so a retry policy
// works without a fault plan.
func (in *Injector) RetryBackoff(p RetryPolicy, attempt int) sim.Duration {
	d := p.backoffFor(attempt)
	if in == nil || p.Jitter <= 0 || d <= 0 {
		return d
	}
	return d + sim.Duration(float64(d)*p.Jitter*in.retry.Float64())
}
