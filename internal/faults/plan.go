package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dmx/internal/sim"
)

// Plan parameterizes fault injection for one simulation. The zero value
// (and a nil *Plan) injects nothing; each mechanism activates
// independently when its rate field is set. All randomness flows from
// Seed through per-station streams, so a plan is a pure description:
// the same plan always produces the same incidents.
type Plan struct {
	// Seed drives every fault stream. Two runs with the same seed (and
	// the same stations) observe identical incidents.
	Seed uint64

	// DRXMTBF is the mean up-time between outages of one DRX unit
	// (exponentially distributed); 0 disables DRX outages. DRXRepair is
	// the fixed outage length. While a unit is down, hops that would
	// restructure on it degrade to the CPU baseline path.
	DRXMTBF   sim.Duration
	DRXRepair sim.Duration

	// TransientProb is the probability that one DRX restructuring
	// attempt faults (a correctable execution error: the attempt's
	// latency is spent, the result is discarded, and the flow retries
	// under its RetryPolicy). 0 disables transient errors.
	TransientProb float64

	// LinkMTBF is the mean up-time between incidents of one PCIe link;
	// 0 disables link incidents. LinkRepair is the incident length.
	// LinkDegradeFactor is the fraction of bandwidth the link retains
	// during an incident: 0 means full loss (transfers fail and must be
	// retried), values in (0, 1) stretch transfer serialization.
	LinkMTBF          sim.Duration
	LinkRepair        sim.Duration
	LinkDegradeFactor float64

	// StallMTBF is the mean up-time between stalls of one accelerator
	// device; 0 disables stalls. StallRepair is the stall length: a
	// kernel submitted during a stall waits out the window's remainder
	// before entering service.
	StallMTBF   sim.Duration
	StallRepair sim.Duration
}

// Enabled reports whether the plan injects anything. A nil plan is the
// canonical disabled state.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.DRXMTBF > 0 || p.TransientProb > 0 || p.LinkMTBF > 0 || p.StallMTBF > 0
}

// Validate sanity-checks the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.DRXMTBF < 0 || p.LinkMTBF < 0 || p.StallMTBF < 0 {
		return fmt.Errorf("faults: negative MTBF")
	}
	if p.DRXMTBF > 0 && p.DRXRepair <= 0 {
		return fmt.Errorf("faults: DRX outages need a positive repair time")
	}
	if p.LinkMTBF > 0 && p.LinkRepair <= 0 {
		return fmt.Errorf("faults: link incidents need a positive repair time")
	}
	if p.StallMTBF > 0 && p.StallRepair <= 0 {
		return fmt.Errorf("faults: stalls need a positive duration")
	}
	if p.TransientProb < 0 || p.TransientProb >= 1 {
		return fmt.Errorf("faults: transient probability %g outside [0, 1)", p.TransientProb)
	}
	if p.LinkDegradeFactor < 0 || p.LinkDegradeFactor >= 1 {
		return fmt.Errorf("faults: link degrade factor %g outside [0, 1)", p.LinkDegradeFactor)
	}
	return nil
}

// String renders the active mechanisms compactly.
func (p *Plan) String() string {
	if !p.Enabled() {
		return "faults(off)"
	}
	var parts []string
	if p.DRXMTBF > 0 {
		parts = append(parts, fmt.Sprintf("drx=%v/%v", p.DRXMTBF, p.DRXRepair))
	}
	if p.TransientProb > 0 {
		parts = append(parts, fmt.Sprintf("transient=%g", p.TransientProb))
	}
	if p.LinkMTBF > 0 {
		s := fmt.Sprintf("link=%v/%v", p.LinkMTBF, p.LinkRepair)
		if p.LinkDegradeFactor > 0 {
			s += fmt.Sprintf("/%g", p.LinkDegradeFactor)
		}
		parts = append(parts, s)
	}
	if p.StallMTBF > 0 {
		parts = append(parts, fmt.Sprintf("stall=%v/%v", p.StallMTBF, p.StallRepair))
	}
	return fmt.Sprintf("faults(seed=%d %s)", p.Seed, strings.Join(parts, " "))
}

// ParseSpec builds a plan from a CLI spec: comma-separated clauses
//
//	drx=<mtbf>/<repair>          DRX unit outages
//	transient=<prob>             per-attempt restructure faults
//	link=<mtbf>/<repair>[/<f>]   link incidents (f = retained bandwidth
//	                             fraction; omitted or 0 = full loss)
//	stall=<mtbf>/<dur>           accelerator stalls
//
// with durations in Go syntax (e.g. "5ms", "200us"). The seed is not
// part of the spec; callers set it separately (the -fault-seed flag).
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not key=value", clause)
		}
		switch key {
		case "drx":
			ds, err := splitDurations(key, val, 2, 2)
			if err != nil {
				return nil, err
			}
			p.DRXMTBF, p.DRXRepair = ds[0], ds[1]
		case "transient":
			prob, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: transient probability %q: %w", val, err)
			}
			p.TransientProb = prob
		case "link":
			fields := strings.Split(val, "/")
			ds, err := splitDurations(key, strings.Join(fields[:min(2, len(fields))], "/"), 2, 2)
			if err != nil {
				return nil, err
			}
			p.LinkMTBF, p.LinkRepair = ds[0], ds[1]
			if len(fields) == 3 {
				f, err := strconv.ParseFloat(fields[2], 64)
				if err != nil {
					return nil, fmt.Errorf("faults: link degrade factor %q: %w", fields[2], err)
				}
				p.LinkDegradeFactor = f
			} else if len(fields) > 3 {
				return nil, fmt.Errorf("faults: link clause %q has too many fields", val)
			}
		case "stall":
			ds, err := splitDurations(key, val, 2, 2)
			if err != nil {
				return nil, err
			}
			p.StallMTBF, p.StallRepair = ds[0], ds[1]
		default:
			return nil, fmt.Errorf("faults: unknown clause %q (want drx, transient, link, or stall)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, fmt.Errorf("faults: spec %q enables nothing", spec)
	}
	return p, nil
}

// ParseDuration parses a wall-clock duration string ("150us", "2ms")
// into virtual time — the same syntax the ParseSpec clauses use.
func ParseDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("faults: duration %q: %w", s, err)
	}
	return sim.FromSeconds(d.Seconds()), nil
}

// splitDurations parses between minN and maxN slash-separated durations.
func splitDurations(key, val string, minN, maxN int) ([]sim.Duration, error) {
	fields := strings.Split(val, "/")
	if len(fields) < minN || len(fields) > maxN {
		return nil, fmt.Errorf("faults: %s clause %q wants %d duration fields", key, val, minN)
	}
	out := make([]sim.Duration, len(fields))
	for i, f := range fields {
		d, err := time.ParseDuration(f)
		if err != nil {
			return nil, fmt.Errorf("faults: %s duration %q: %w", key, f, err)
		}
		out[i] = sim.FromSeconds(d.Seconds())
	}
	return out, nil
}
