package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly produced by Program.Disassemble
// (or written by hand) into a validated Program. Lines starting with ';'
// are comments; blank lines are skipped. The program name may be given
// with a leading "; program <name>" comment and is otherwise "asm".
func Assemble(src string) (*Program, error) {
	p := &Program{Name: "asm"}
	for lineno, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			fields := strings.Fields(strings.TrimPrefix(line, ";"))
			if len(fields) >= 2 && fields[0] == "program" {
				p.Name = fields[1]
			}
			continue
		}
		in, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineno+1, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

var mnemonics = buildMnemonicTable()

func buildMnemonicTable() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for op := Opcode(0); op < numOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}

func parseLine(line string) (Instr, error) {
	// Commas separate operands; normalize them to spaces — except in
	// cfgstream, whose strides= field uses commas as list separators.
	fields := strings.Fields(line)
	if len(fields) > 0 && fields[0] != CfgStream.String() {
		fields = strings.Fields(strings.ReplaceAll(line, ",", " "))
	}
	op, ok := mnemonics[fields[0]]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	in := Instr{Op: op}
	args := fields[1:]
	switch op {
	case Nop, Halt, Barrier, LoopEnd:
		if len(args) != 0 {
			return in, fmt.Errorf("%s takes no operands", op)
		}
		return in, nil
	case LoopBegin:
		return in, parseInts(args, 1, func(v []int64) { in.N = int32(v[0]) }, &in)
	case CfgStream:
		return parseCfgStream(args)
	case Load, Store:
		if len(args) != 3 {
			return in, fmt.Errorf("%s wants 3 operands", op)
		}
		var err error
		if in.Dst, err = parseStream(args[0]); err != nil {
			return in, err
		}
		if in.Src1, err = parseStream(args[1]); err != nil {
			return in, err
		}
		n, err := strconv.ParseInt(args[2], 10, 32)
		if err != nil {
			return in, err
		}
		in.N = int32(n)
		return in, nil
	case Trans:
		if len(args) != 3 {
			return in, fmt.Errorf("trans wants 3 operands")
		}
		var err error
		if in.Dst, err = parseStream(args[0]); err != nil {
			return in, err
		}
		if in.Src1, err = parseStream(args[1]); err != nil {
			return in, err
		}
		dims := strings.Split(args[2], "x")
		if len(dims) != 2 {
			return in, fmt.Errorf("trans dims %q, want RxC", args[2])
		}
		r, err := strconv.ParseInt(dims[0], 10, 32)
		if err != nil {
			return in, err
		}
		c, err := strconv.ParseInt(dims[1], 10, 32)
		if err != nil {
			return in, err
		}
		in.N, in.M = int32(r), int32(c)
		return in, nil
	case Dma:
		if len(args) != 2 || !strings.HasPrefix(args[0], "q") {
			return in, fmt.Errorf("dma wants qN, bytes")
		}
		q, err := strconv.ParseInt(args[0][1:], 10, 32)
		if err != nil {
			return in, err
		}
		n, err := strconv.ParseInt(args[1], 10, 32)
		if err != nil {
			return in, err
		}
		in.Dst, in.N = int32(q), int32(n)
		return in, nil
	case SLi:
		if len(args) != 2 {
			return in, fmt.Errorf("sli wants rD, imm")
		}
		r, err := parseReg(args[0])
		if err != nil {
			return in, err
		}
		v, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			return in, err
		}
		in.Dst, in.ImmInt = r, v
		return in, nil
	case SAdd, SMul:
		if len(args) != 3 {
			return in, fmt.Errorf("%s wants rD, rS1, rS2", op)
		}
		var err error
		if in.Dst, err = parseReg(args[0]); err != nil {
			return in, err
		}
		if in.Src1, err = parseReg(args[1]); err != nil {
			return in, err
		}
		if in.Src2, err = parseReg(args[2]); err != nil {
			return in, err
		}
		return in, nil
	}
	if !op.IsVector() {
		return in, fmt.Errorf("unhandled opcode %s", op)
	}
	var err error
	if in.Dst, err = parseStream(args[0]); err != nil {
		return in, err
	}
	if in.Src1, err = parseStream(args[1]); err != nil {
		return in, err
	}
	switch {
	case op.IsUnary():
		if len(args) != 3 {
			return in, fmt.Errorf("%s wants sD, sS, N", op)
		}
		n, err := strconv.ParseInt(args[2], 10, 32)
		if err != nil {
			return in, err
		}
		in.N = int32(n)
	case op.HasImm():
		if len(args) != 4 {
			return in, fmt.Errorf("%s wants sD, sS, imm, N", op)
		}
		imm, err := strconv.ParseFloat(args[2], 32)
		if err != nil {
			return in, err
		}
		n, err := strconv.ParseInt(args[3], 10, 32)
		if err != nil {
			return in, err
		}
		in.Imm, in.N = float32(imm), int32(n)
	default:
		if len(args) != 4 {
			return in, fmt.Errorf("%s wants sD, sS1, sS2, N", op)
		}
		if in.Src2, err = parseStream(args[2]); err != nil {
			return in, err
		}
		n, err := strconv.ParseInt(args[3], 10, 32)
		if err != nil {
			return in, err
		}
		in.N = int32(n)
	}
	return in, nil
}

func parseCfgStream(args []string) (Instr, error) {
	in := Instr{Op: CfgStream}
	if len(args) < 5 {
		return in, fmt.Errorf("cfgstream wants sID space dt base= estride= [strides=]")
	}
	id, err := parseStream(args[0])
	if err != nil {
		return in, err
	}
	in.Dst = id
	switch args[1] {
	case "dram":
		in.Space = DRAM
	case "scratch":
		in.Space = Scratch
	default:
		return in, fmt.Errorf("unknown space %q", args[1])
	}
	dtFound := false
	for d := U8; d <= F64; d++ {
		if d.String() == args[2] {
			in.DType = d
			dtFound = true
			break
		}
	}
	if !dtFound {
		return in, fmt.Errorf("unknown dtype %q", args[2])
	}
	for _, kv := range args[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return in, fmt.Errorf("malformed field %q", kv)
		}
		switch key {
		case "base":
			if in.Base, err = strconv.ParseInt(val, 10, 64); err != nil {
				return in, err
			}
		case "estride":
			v, err := strconv.ParseInt(val, 10, 32)
			if err != nil {
				return in, err
			}
			in.ElemStride = int32(v)
		case "strides":
			for _, s := range strings.Split(val, ",") {
				v, err := strconv.ParseInt(s, 10, 32)
				if err != nil {
					return in, err
				}
				in.Strides = append(in.Strides, int32(v))
			}
		default:
			return in, fmt.Errorf("unknown field %q", key)
		}
	}
	return in, nil
}

func parseStream(tok string) (int32, error) {
	if !strings.HasPrefix(tok, "s") {
		return 0, fmt.Errorf("stream operand %q must be sN", tok)
	}
	v, err := strconv.ParseInt(tok[1:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("stream operand %q: %w", tok, err)
	}
	return int32(v), nil
}

func parseReg(tok string) (int32, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("register operand %q must be rN", tok)
	}
	v, err := strconv.ParseInt(tok[1:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("register operand %q: %w", tok, err)
	}
	return int32(v), nil
}

func parseInts(args []string, n int, apply func([]int64), in *Instr) error {
	if len(args) != n {
		return fmt.Errorf("want %d operands, got %d", n, len(args))
	}
	vals := make([]int64, n)
	for i, a := range args {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	apply(vals)
	return nil
}
