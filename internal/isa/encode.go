package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Binary format: a "DRX1" magic, the program name, an instruction count,
// then each instruction as a fixed header plus its variable stride list.
// The codec exists so kernels can be shipped to DRX devices through the
// runtime's command queues as opaque binaries, the way the paper's driver
// ships data restructuring kernels to each DRX (Sec. V).

var magic = [4]byte{'D', 'R', 'X', '1'}

// Encode serializes the program.
func Encode(p *Program) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.Write(magic[:])
	writeU32(&b, uint32(len(p.Name)))
	b.WriteString(p.Name)
	writeU32(&b, uint32(len(p.Instrs)))
	for _, in := range p.Instrs {
		b.WriteByte(byte(in.Op))
		writeI32(&b, in.Dst)
		writeI32(&b, in.Src1)
		writeI32(&b, in.Src2)
		writeI32(&b, in.N)
		writeI32(&b, in.M)
		writeU32(&b, math.Float32bits(in.Imm))
		writeI64(&b, in.ImmInt)
		b.WriteByte(byte(in.Space))
		b.WriteByte(byte(in.DType))
		writeI64(&b, in.Base)
		writeI32(&b, in.ElemStride)
		b.WriteByte(byte(len(in.Strides)))
		for _, s := range in.Strides {
			writeI32(&b, s)
		}
	}
	return b.Bytes(), nil
}

// Decode parses a program produced by Encode and validates it.
func Decode(data []byte) (*Program, error) {
	r := bytes.NewReader(data)
	var m [4]byte
	if _, err := r.Read(m[:]); err != nil || m != magic {
		return nil, fmt.Errorf("isa: bad magic")
	}
	nameLen, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if int(nameLen) > r.Len() {
		return nil, fmt.Errorf("isa: truncated name")
	}
	name := make([]byte, nameLen)
	if _, err := r.Read(name); err != nil {
		return nil, err
	}
	count, err := readU32(r)
	if err != nil {
		return nil, err
	}
	p := &Program{Name: string(name)}
	for i := uint32(0); i < count; i++ {
		var in Instr
		op, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("isa: truncated instr %d", i)
		}
		in.Op = Opcode(op)
		if in.Dst, err = readI32(r); err != nil {
			return nil, err
		}
		if in.Src1, err = readI32(r); err != nil {
			return nil, err
		}
		if in.Src2, err = readI32(r); err != nil {
			return nil, err
		}
		if in.N, err = readI32(r); err != nil {
			return nil, err
		}
		if in.M, err = readI32(r); err != nil {
			return nil, err
		}
		immBits, err := readU32(r)
		if err != nil {
			return nil, err
		}
		in.Imm = math.Float32frombits(immBits)
		if in.ImmInt, err = readI64(r); err != nil {
			return nil, err
		}
		sp, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		in.Space = Space(sp)
		dt, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		in.DType = DT(dt)
		if in.Base, err = readI64(r); err != nil {
			return nil, err
		}
		if in.ElemStride, err = readI32(r); err != nil {
			return nil, err
		}
		ns, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if ns > 0 {
			in.Strides = make([]int32, ns)
			for j := range in.Strides {
				if in.Strides[j], err = readI32(r); err != nil {
					return nil, err
				}
			}
		}
		p.Instrs = append(p.Instrs, in)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("isa: %d trailing bytes", r.Len())
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeI32(b *bytes.Buffer, v int32) { writeU32(b, uint32(v)) }

func writeI64(b *bytes.Buffer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	b.Write(buf[:])
}

func readU32(r *bytes.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := r.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("isa: truncated stream")
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readI32(r *bytes.Reader) (int32, error) {
	v, err := readU32(r)
	return int32(v), err
}

func readI64(r *bytes.Reader) (int64, error) {
	var buf [8]byte
	if _, err := r.Read(buf[:]); err != nil {
		return 0, fmt.Errorf("isa: truncated stream")
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}
