package isa

import (
	"math/rand"
	"testing"
)

// randProgram generates a random *valid* program exercising every
// instruction class, for codec/assembler round-trip fuzzing.
func randProgram(rng *rand.Rand) *Program {
	p := &Program{Name: "fuzz"}
	// A few stream configs up front.
	nStreams := 1 + rng.Intn(6)
	for i := 0; i < nStreams; i++ {
		space := Scratch
		if rng.Intn(2) == 0 {
			space = DRAM
		}
		in := Instr{
			Op: CfgStream, Dst: int32(i), Space: space, DType: DT(rng.Intn(6)),
			Base: rng.Int63n(1 << 20), ElemStride: int32(rng.Intn(8) + 1),
		}
		for l := rng.Intn(4); l > 0; l-- {
			in.Strides = append(in.Strides, int32(rng.Intn(512)-128))
		}
		p.Instrs = append(p.Instrs, in)
	}
	sid := func() int32 { return int32(rng.Intn(nStreams)) }
	depth := 0
	for i := 0; i < 30; i++ {
		switch rng.Intn(12) {
		case 0:
			if depth < MaxLoopDepth {
				p.Instrs = append(p.Instrs, Instr{Op: LoopBegin, N: int32(rng.Intn(7) + 1)})
				depth++
			}
		case 1:
			if depth > 0 {
				p.Instrs = append(p.Instrs, Instr{Op: LoopEnd})
				depth--
			}
		case 2:
			p.Instrs = append(p.Instrs, Instr{Op: Load, Dst: sid(), Src1: sid(), N: int32(rng.Intn(64) + 1)})
		case 3:
			p.Instrs = append(p.Instrs, Instr{Op: Store, Dst: sid(), Src1: sid(), N: int32(rng.Intn(64) + 1)})
		case 4:
			p.Instrs = append(p.Instrs, Instr{Op: VAddI, Dst: sid(), Src1: sid(),
				Imm: float32(rng.NormFloat64()), N: int32(rng.Intn(64) + 1)})
		case 5:
			p.Instrs = append(p.Instrs, Instr{Op: VMacS, Dst: sid(), Src1: sid(), Src2: sid(),
				N: int32(rng.Intn(64) + 1)})
		case 6:
			p.Instrs = append(p.Instrs, Instr{Op: VSqrt, Dst: sid(), Src1: sid(), N: int32(rng.Intn(64) + 1)})
		case 7:
			p.Instrs = append(p.Instrs, Instr{Op: Trans, Dst: sid(), Src1: sid(),
				N: int32(rng.Intn(16) + 1), M: int32(rng.Intn(16) + 1)})
		case 8:
			p.Instrs = append(p.Instrs, Instr{Op: Dma, Dst: int32(rng.Intn(8)), N: int32(rng.Intn(1 << 16))})
		case 9:
			p.Instrs = append(p.Instrs, Instr{Op: SLi, Dst: int32(rng.Intn(NumScalarRegs)), ImmInt: rng.Int63() - (1 << 62)})
		case 10:
			p.Instrs = append(p.Instrs, Instr{Op: Barrier})
		default:
			p.Instrs = append(p.Instrs, Instr{Op: VMul, Dst: sid(), Src1: sid(), Src2: sid(),
				N: int32(rng.Intn(64) + 1)})
		}
	}
	for ; depth > 0; depth-- {
		p.Instrs = append(p.Instrs, Instr{Op: LoopEnd})
	}
	p.Instrs = append(p.Instrs, Instr{Op: Halt})
	return p
}

func TestFuzzCodecAndAssemblerRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randProgram(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v", trial, err)
		}
		// Binary codec round trip.
		bin, err := Encode(p)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		q, err := Decode(bin)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		// Assembler round trip (text form).
		r, err := Assemble(p.Disassemble())
		if err != nil {
			t.Fatalf("trial %d: assemble:\n%s\nerr: %v", trial, p.Disassemble(), err)
		}
		for i := range p.Instrs {
			if p.Instrs[i].String() != q.Instrs[i].String() {
				t.Fatalf("trial %d instr %d: codec mismatch %q vs %q", trial, i, p.Instrs[i], q.Instrs[i])
			}
			if p.Instrs[i].String() != r.Instrs[i].String() {
				t.Fatalf("trial %d instr %d: asm mismatch %q vs %q", trial, i, p.Instrs[i], r.Instrs[i])
			}
		}
	}
}

func TestDecodeFuzzedCorruption(t *testing.T) {
	// Bit-flipped binaries must never decode into a program that fails
	// Validate (Decode validates), and must never panic.
	rng := rand.New(rand.NewSource(8))
	p := randProgram(rng)
	bin, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), bin...)
		for flips := rng.Intn(4) + 1; flips > 0; flips-- {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		q, err := Decode(mut)
		if err != nil {
			continue // rejected: fine
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("Decode returned an invalid program: %v", err)
		}
	}
}
