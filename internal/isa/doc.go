// Package isa defines the DRX instruction set architecture.
//
// The ISA follows the paper's Fig. 7 taxonomy: loop instructions that
// drive the hardware Instruction Repeater, compute instructions over the
// vector Restructuring Engines (REs), off-chip memory access instructions
// for the Off-chip Data Access Engine, synchronization instructions, and
// a small scalar subset for serial tasks. It departs from classic SIMD in
// exactly the ways Sec. IV-B describes: operands are software-managed
// scratchpad streams instead of vector registers, loops are hardware
// loops instead of branches, and data packing is implicit in the stream
// configuration rather than explicit pack/unpack instructions.
package isa
