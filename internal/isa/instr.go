package isa

import (
	"fmt"
	"strings"
)

// Instr is one decoded DRX instruction. Field meaning depends on Op:
//
//	LoopBegin:  N = iteration count
//	CfgStream:  Dst = stream id, Space/DType, Base = start address
//	            (bytes for DRAM, f32 elements for scratch), ElemStride =
//	            within-issue element stride, Strides[l] = per-loop-level
//	            element stride (outermost loop = level 0)
//	Load/Store: Dst = destination stream, Src1 = source stream, N = elems
//	V*:         Dst/Src1/Src2 = stream ids, N = lanes' element count,
//	            Imm = float immediate for *I forms
//	Trans:      Dst/Src1 = stream ids, N = rows, M = cols
//	Dma:        Dst = peer queue id, N = bytes
//	SLi:        Dst = scalar reg, ImmInt = value
//	SAdd/SMul:  Dst/Src1/Src2 = scalar regs
type Instr struct {
	Op         Opcode
	Dst        int32
	Src1       int32
	Src2       int32
	N          int32
	M          int32
	Imm        float32
	ImmInt     int64
	Space      Space
	DType      DT
	Base       int64
	ElemStride int32
	Strides    []int32
}

// Program is a complete DRX kernel binary: a flat instruction sequence
// terminated by Halt.
type Program struct {
	Name   string
	Instrs []Instr
}

// Validate checks structural well-formedness: defined opcodes, balanced
// hardware loops within the depth bound, stream ids in range, and a
// terminating Halt.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("isa: %s: empty program", p.Name)
	}
	depth := 0
	for i, in := range p.Instrs {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: %s: instr %d: invalid opcode %d", p.Name, i, uint8(in.Op))
		}
		switch in.Op {
		case LoopBegin:
			if in.N <= 0 {
				return fmt.Errorf("isa: %s: instr %d: loop count %d", p.Name, i, in.N)
			}
			depth++
			if depth > MaxLoopDepth {
				return fmt.Errorf("isa: %s: instr %d: loop nesting exceeds %d", p.Name, i, MaxLoopDepth)
			}
		case LoopEnd:
			depth--
			if depth < 0 {
				return fmt.Errorf("isa: %s: instr %d: unmatched endloop", p.Name, i)
			}
		case CfgStream:
			if in.Dst < 0 || in.Dst >= MaxStreams {
				return fmt.Errorf("isa: %s: instr %d: stream id %d out of range", p.Name, i, in.Dst)
			}
			if len(in.Strides) > MaxLoopDepth {
				return fmt.Errorf("isa: %s: instr %d: %d stride levels exceed %d", p.Name, i, len(in.Strides), MaxLoopDepth)
			}
			if in.Base < 0 {
				return fmt.Errorf("isa: %s: instr %d: negative base %d", p.Name, i, in.Base)
			}
		case Load, Store:
			if err := checkStream(in.Dst); err != nil {
				return fmt.Errorf("isa: %s: instr %d: dst: %w", p.Name, i, err)
			}
			if err := checkStream(in.Src1); err != nil {
				return fmt.Errorf("isa: %s: instr %d: src: %w", p.Name, i, err)
			}
			if in.N <= 0 {
				return fmt.Errorf("isa: %s: instr %d: transfer of %d elems", p.Name, i, in.N)
			}
		case Trans:
			if in.N <= 0 || in.M <= 0 {
				return fmt.Errorf("isa: %s: instr %d: trans %dx%d", p.Name, i, in.N, in.M)
			}
		case SLi, SAdd, SMul:
			if in.Dst < 0 || in.Dst >= NumScalarRegs {
				return fmt.Errorf("isa: %s: instr %d: scalar reg %d out of range", p.Name, i, in.Dst)
			}
		default:
			if in.Op.IsVector() {
				if err := checkStream(in.Dst); err != nil {
					return fmt.Errorf("isa: %s: instr %d: dst: %w", p.Name, i, err)
				}
				if err := checkStream(in.Src1); err != nil {
					return fmt.Errorf("isa: %s: instr %d: src1: %w", p.Name, i, err)
				}
				if !in.Op.IsUnary() && !in.Op.HasImm() {
					if err := checkStream(in.Src2); err != nil {
						return fmt.Errorf("isa: %s: instr %d: src2: %w", p.Name, i, err)
					}
				}
				if in.N <= 0 {
					return fmt.Errorf("isa: %s: instr %d: vector length %d", p.Name, i, in.N)
				}
			}
		}
	}
	if depth != 0 {
		return fmt.Errorf("isa: %s: %d unterminated loop(s)", p.Name, depth)
	}
	if p.Instrs[len(p.Instrs)-1].Op != Halt {
		return fmt.Errorf("isa: %s: program does not end in halt", p.Name)
	}
	return nil
}

func checkStream(id int32) error {
	if id < 0 || id >= MaxStreams {
		return fmt.Errorf("stream id %d out of range", id)
	}
	return nil
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case Nop, Halt, Barrier, LoopEnd:
		return in.Op.String()
	case LoopBegin:
		return fmt.Sprintf("loop %d", in.N)
	case CfgStream:
		var b strings.Builder
		fmt.Fprintf(&b, "cfgstream s%d %s %s base=%d estride=%d", in.Dst, in.Space, in.DType, in.Base, in.ElemStride)
		if len(in.Strides) > 0 {
			b.WriteString(" strides=")
			for i, s := range in.Strides {
				if i > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%d", s)
			}
		}
		return b.String()
	case Load, Store:
		return fmt.Sprintf("%s s%d, s%d, %d", in.Op, in.Dst, in.Src1, in.N)
	case Trans:
		return fmt.Sprintf("trans s%d, s%d, %dx%d", in.Dst, in.Src1, in.N, in.M)
	case Dma:
		return fmt.Sprintf("dma q%d, %d", in.Dst, in.N)
	case SLi:
		return fmt.Sprintf("sli r%d, %d", in.Dst, in.ImmInt)
	case SAdd, SMul:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Dst, in.Src1, in.Src2)
	default:
		if in.Op.IsVector() {
			switch {
			case in.Op.HasImm():
				return fmt.Sprintf("%s s%d, s%d, %g, %d", in.Op, in.Dst, in.Src1, in.Imm, in.N)
			case in.Op.IsUnary():
				return fmt.Sprintf("%s s%d, s%d, %d", in.Op, in.Dst, in.Src1, in.N)
			case in.Op == VMacS:
				return fmt.Sprintf("vmacs s%d, s%d, s%d, %d", in.Dst, in.Src1, in.Src2, in.N)
			default:
				return fmt.Sprintf("%s s%d, s%d, s%d, %d", in.Op, in.Dst, in.Src1, in.Src2, in.N)
			}
		}
		return in.Op.String()
	}
}

// Disassemble renders the whole program with loop-nest indentation.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s (%d instrs)\n", p.Name, len(p.Instrs))
	indent := 0
	for _, in := range p.Instrs {
		if in.Op == LoopEnd && indent > 0 {
			indent--
		}
		b.WriteString(strings.Repeat("  ", indent))
		b.WriteString(in.String())
		b.WriteByte('\n')
		if in.Op == LoopBegin {
			indent++
		}
	}
	return b.String()
}
