package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram() *Program {
	return &Program{
		Name: "sample",
		Instrs: []Instr{
			{Op: CfgStream, Dst: 0, Space: DRAM, DType: U8, Base: 0, ElemStride: 1, Strides: []int32{64}},
			{Op: CfgStream, Dst: 1, Space: Scratch, DType: F32, Base: 0, ElemStride: 1, Strides: []int32{0}},
			{Op: CfgStream, Dst: 2, Space: DRAM, DType: F32, Base: 4096, ElemStride: 1, Strides: []int32{64}},
			{Op: LoopBegin, N: 16},
			{Op: Load, Dst: 1, Src1: 0, N: 64},
			{Op: VMulI, Dst: 1, Src1: 1, Imm: 2.5, N: 64},
			{Op: VAdd, Dst: 1, Src1: 1, Src2: 1, N: 64},
			{Op: Store, Dst: 2, Src1: 1, N: 64},
			{Op: LoopEnd},
			{Op: Barrier},
			{Op: Halt},
		},
	}
}

func TestValidateAcceptsSample(t *testing.T) {
	if err := sampleProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsUnbalancedLoops(t *testing.T) {
	p := sampleProgram()
	p.Instrs = append(p.Instrs[:8:8], Instr{Op: Halt}) // drop LoopEnd
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("want unterminated-loop error, got %v", err)
	}
}

func TestValidateRejectsUnmatchedEndloop(t *testing.T) {
	p := &Program{Name: "bad", Instrs: []Instr{{Op: LoopEnd}, {Op: Halt}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "unmatched") {
		t.Fatalf("want unmatched error, got %v", err)
	}
}

func TestValidateRejectsMissingHalt(t *testing.T) {
	p := &Program{Name: "bad", Instrs: []Instr{{Op: Nop}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "halt") {
		t.Fatalf("want missing-halt error, got %v", err)
	}
}

func TestValidateRejectsDeepNesting(t *testing.T) {
	p := &Program{Name: "deep"}
	for i := 0; i < MaxLoopDepth+1; i++ {
		p.Instrs = append(p.Instrs, Instr{Op: LoopBegin, N: 2})
	}
	for i := 0; i < MaxLoopDepth+1; i++ {
		p.Instrs = append(p.Instrs, Instr{Op: LoopEnd})
	}
	p.Instrs = append(p.Instrs, Instr{Op: Halt})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("want nesting error, got %v", err)
	}
}

func TestValidateRejectsBadStreamID(t *testing.T) {
	p := &Program{Name: "bad", Instrs: []Instr{
		{Op: VAdd, Dst: MaxStreams, Src1: 0, Src2: 0, N: 4},
		{Op: Halt},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want range error, got %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram()
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("decoded %q/%d, want %q/%d", q.Name, len(q.Instrs), p.Name, len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i].String() != q.Instrs[i].String() {
			t.Errorf("instr %d: %q != %q", i, p.Instrs[i], q.Instrs[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a program")); err == nil {
		t.Error("decoded garbage")
	}
	data, _ := Encode(sampleProgram())
	if _, err := Decode(data[:len(data)-3]); err == nil {
		t.Error("decoded truncated program")
	}
	if _, err := Decode(append(data, 0)); err == nil {
		t.Error("decoded program with trailing bytes")
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	p := sampleProgram()
	text := p.Disassemble()
	q, err := Assemble(text)
	if err != nil {
		t.Fatalf("Assemble:\n%s\nerror: %v", text, err)
	}
	if q.Name != "sample" {
		t.Errorf("name %q, want sample", q.Name)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("got %d instrs, want %d", len(q.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i].String() != q.Instrs[i].String() {
			t.Errorf("instr %d: %q != %q", i, p.Instrs[i], q.Instrs[i])
		}
	}
}

func TestAssembleAllFormats(t *testing.T) {
	src := `
; program everything
cfgstream s0 dram u8 base=16 estride=2 strides=8,4
cfgstream s1 scratch f32 base=0 estride=1
cfgstream s2 dram i32 base=128 estride=1 strides=32
loop 4
  load s1, s0, 32
  vaddi s1, s1, 1.5, 32
  vneg s1, s1, 32
  vsqrt s1, s1, 32
  vmacs s1, s1, s1, 32
  vrsum s1, s1, 32
  trans s1, s1, 4x8
  store s2, s1, 32
endloop
dma q3, 4096
sli r1, 42
sadd r2, r1, r1
smul r3, r2, r1
barrier
halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "everything" {
		t.Errorf("name %q", p.Name)
	}
	if p.Instrs[0].Strides[1] != 4 || p.Instrs[0].ElemStride != 2 {
		t.Errorf("cfgstream fields wrong: %+v", p.Instrs[0])
	}
	// Round-trip the full program once more.
	q, err := Assemble(p.Disassemble())
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Instrs {
		if p.Instrs[i].String() != q.Instrs[i].String() {
			t.Errorf("instr %d: %q != %q", i, p.Instrs[i], q.Instrs[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus s0, s1, 4\nhalt",
		"loop\nendloop\nhalt",
		"vadd s0, s1, 4\nhalt", // missing operand
		"load s0 s1\nhalt",     // missing count
		"cfgstream s0 mars f32 base=0 estride=1\nhalt",
		"trans s0, s1, 4by8\nhalt",
		"sli x1, 3\nhalt",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !VAdd.IsVector() || !VRMax.IsVector() || Load.IsVector() {
		t.Error("IsVector wrong")
	}
	if !VMov.IsUnary() || VAdd.IsUnary() {
		t.Error("IsUnary wrong")
	}
	if !VMulI.HasImm() || VMul.HasImm() {
		t.Error("HasImm wrong")
	}
	if U8.Size() != 1 || F64.Size() != 8 || I16.Size() != 2 {
		t.Error("DT sizes wrong")
	}
}

// Property: Encode/Decode round-trips arbitrary (valid) vector programs.
func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(n uint8, imm float32, base uint16) bool {
		count := int(n%20) + 1
		p := &Program{Name: "prop"}
		p.Instrs = append(p.Instrs, Instr{
			Op: CfgStream, Dst: 1, Space: Scratch, DType: F32,
			Base: int64(base), ElemStride: 1, Strides: []int32{int32(n)},
		})
		for i := 0; i < count; i++ {
			p.Instrs = append(p.Instrs, Instr{Op: VAddI, Dst: 1, Src1: 1, Imm: imm, N: int32(i%64) + 1})
		}
		p.Instrs = append(p.Instrs, Instr{Op: Halt})
		data, err := Encode(p)
		if err != nil {
			return false
		}
		q, err := Decode(data)
		if err != nil || len(q.Instrs) != len(p.Instrs) {
			return false
		}
		for i := range p.Instrs {
			if p.Instrs[i].String() != q.Instrs[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
