package isa

import "fmt"

// Opcode identifies a DRX instruction.
type Opcode uint8

// Instruction opcodes, grouped per the paper's ISA classes.
const (
	// Control and synchronization.
	Nop Opcode = iota
	Halt
	Barrier

	// Loop instructions (Instruction Repeater).
	LoopBegin // repeat the block up to the matching LoopEnd N times
	LoopEnd

	// Stream configuration (Strided Scratchpad Address Calculator and
	// Off-chip Data Access Engine).
	CfgStream

	// Off-chip memory access.
	Load  // DRAM → scratchpad, with dtype widening to f32 lanes
	Store // scratchpad → DRAM, with dtype narrowing/saturation

	// Vector compute (Restructuring Engines). Unless noted, semantics are
	// elementwise over N lanes: Dst[i] = op(Src1[i], Src2[i]).
	VAdd
	VSub
	VMul
	VDiv
	VMin
	VMax
	VMod
	VAddI // Dst[i] = Src1[i] + Imm
	VSubI
	VMulI
	VDivI
	VMinI
	VMaxI
	VMov // Dst[i] = Src1[i]
	VNeg
	VAbs
	VSqrt
	VLog
	VExp
	VFloor
	VMacS // Dst[i] += Src1[i] * scratch[Src2] (scalar broadcast MAC)
	VRSum // Dst[0] = Σ_{i<N} Src1[i] (tree reduction)
	VRMax // Dst[0] = max_{i<N} Src1[i]

	// Transposition Engine: Dst = transpose of Src1 viewed as N×M.
	Trans

	// DMA initiation (point-to-point transfer with a peer device); a
	// system-level hook, functionally a no-op inside the core.
	Dma

	// Scalar subset (one RE in scalar mode).
	SLi  // reg[Dst] = ImmInt
	SAdd // reg[Dst] = reg[Src1] + reg[Src2]
	SMul // reg[Dst] = reg[Src1] * reg[Src2]

	numOpcodes // sentinel
)

var opcodeNames = [...]string{
	Nop: "nop", Halt: "halt", Barrier: "barrier",
	LoopBegin: "loop", LoopEnd: "endloop",
	CfgStream: "cfgstream",
	Load:      "load", Store: "store",
	VAdd: "vadd", VSub: "vsub", VMul: "vmul", VDiv: "vdiv",
	VMin: "vmin", VMax: "vmax", VMod: "vmod",
	VAddI: "vaddi", VSubI: "vsubi", VMulI: "vmuli", VDivI: "vdivi",
	VMinI: "vmini", VMaxI: "vmaxi",
	VMov: "vmov", VNeg: "vneg", VAbs: "vabs",
	VSqrt: "vsqrt", VLog: "vlog", VExp: "vexp", VFloor: "vfloor",
	VMacS: "vmacs", VRSum: "vrsum", VRMax: "vrmax",
	Trans: "trans", Dma: "dma",
	SLi: "sli", SAdd: "sadd", SMul: "smul",
}

// String returns the assembler mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// Valid reports whether the opcode is defined.
func (op Opcode) Valid() bool { return op < numOpcodes }

// IsVector reports whether the opcode executes on the RE lanes.
func (op Opcode) IsVector() bool { return op >= VAdd && op <= VRMax }

// IsUnary reports whether the vector op takes a single stream operand.
func (op Opcode) IsUnary() bool {
	switch op {
	case VMov, VNeg, VAbs, VSqrt, VLog, VExp, VFloor, VRSum, VRMax:
		return true
	}
	return false
}

// HasImm reports whether the vector op carries a float immediate.
func (op Opcode) HasImm() bool {
	switch op {
	case VAddI, VSubI, VMulI, VDivI, VMinI, VMaxI:
		return true
	}
	return false
}

// Space distinguishes the two address spaces streams can walk.
type Space uint8

// Address spaces.
const (
	DRAM Space = iota
	Scratch
)

func (s Space) String() string {
	if s == DRAM {
		return "dram"
	}
	return "scratch"
}

// DT is the off-chip element type of a stream. Scratchpad lanes always
// hold float32; Load widens from DT and Store narrows (with saturation)
// to DT — the ISA's typecast capability lives at the memory boundary.
type DT uint8

// Stream element types.
const (
	U8 DT = iota
	I8
	I16
	I32
	F32
	F64
)

var dtNames = [...]string{U8: "u8", I8: "i8", I16: "i16", I32: "i32", F32: "f32", F64: "f64"}

var dtSizes = [...]int{U8: 1, I8: 1, I16: 2, I32: 4, F32: 4, F64: 8}

func (d DT) String() string {
	if int(d) < len(dtNames) {
		return dtNames[d]
	}
	return fmt.Sprintf("dt%d", uint8(d))
}

// Size reports the off-chip element size in bytes.
func (d DT) Size() int {
	if int(d) >= len(dtSizes) {
		panic(fmt.Sprintf("isa: unknown DT %d", uint8(d)))
	}
	return dtSizes[d]
}

// MaxLoopDepth bounds Instruction Repeater nesting, matching the number
// of <Base, Stride, Iteration> register sets in the address calculators.
const MaxLoopDepth = 8

// MaxStreams is the number of stream configuration registers.
const MaxStreams = 32

// NumScalarRegs is the size of the scalar register file.
const NumScalarRegs = 16
