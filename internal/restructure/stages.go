package restructure

import (
	"fmt"

	"dmx/internal/tensor"
)

// MapStage evaluates a scalar expression for every element of its output.
// Each read parameter is addressed through an affine Access from the
// output index, so a single Map can express elementwise arithmetic,
// broadcasts, strided gathers, and fixed-width field extraction.
type MapStage struct {
	Out  string
	Ins  []string
	Accs []Access // parallel to Ins
	Expr Expr
}

// Kind implements Stage.
func (s *MapStage) Kind() string { return "map" }

// Reads implements Stage.
func (s *MapStage) Reads() []string { return s.Ins }

// Writes implements Stage.
func (s *MapStage) Writes() string { return s.Out }

// Validate implements Stage.
func (s *MapStage) Validate(k *Kernel) error {
	if len(s.Ins) != len(s.Accs) {
		return fmt.Errorf("map: %d inputs but %d accesses", len(s.Ins), len(s.Accs))
	}
	if s.Expr == nil {
		return fmt.Errorf("map: nil expression")
	}
	if m := s.Expr.maxInput(); m >= len(s.Ins) {
		return fmt.Errorf("map: expression references in%d but stage has %d inputs", m, len(s.Ins))
	}
	out, _ := k.Param(s.Out)
	for i, name := range s.Ins {
		in, _ := k.Param(name)
		if err := s.Accs[i].validate(out.Shape, in.Shape); err != nil {
			return fmt.Errorf("map: input %q: %w", name, err)
		}
	}
	return nil
}

// Run implements Stage.
func (s *MapStage) Run(env map[string]*tensor.Tensor) error {
	out := env[s.Out]
	ins := make([]*tensor.Tensor, len(s.Ins))
	for i, name := range s.Ins {
		ins[i] = env[name]
	}
	vals := make([]complex128, len(ins))
	idxBufs := make([][]int, len(ins))
	for i := range idxBufs {
		idxBufs[i] = make([]int, s.Accs[i].InRank())
	}
	it := tensor.NewIter(out.Shape())
	for it.Next() {
		oi := it.Index()
		for i, in := range ins {
			s.Accs[i].MapInto(oi, idxBufs[i])
			vals[i] = in.AtComplex(idxBufs[i]...)
		}
		out.Set(s.Expr.eval(vals), oi...)
	}
	return nil
}

// Stats implements Stage.
func (s *MapStage) Stats(k *Kernel) StageStats {
	out, _ := k.Param(s.Out)
	elems := int64(out.NumElems())
	st := StageStats{
		Elems:          elems,
		Ops:            elems * s.Expr.ops(),
		BytesOut:       int64(out.SizeBytes()),
		VectorFriendly: true,
	}
	// Traffic is charged once per distinct input parameter: several
	// accesses into the same tensor (field extraction, channel
	// deinterleave) share cache lines on a real machine. A strided
	// access still walks the parameter's whole footprint.
	perParam := make(map[string]int64, len(s.Ins))
	for i, name := range s.Ins {
		in, _ := k.Param(name)
		unit := s.Accs[i].UnitInnerStride(len(out.Shape))
		if !unit {
			st.VectorFriendly = false
		}
		reads := elems
		if !unit || int64(in.NumElems()) < reads {
			reads = int64(in.NumElems())
		}
		if bytes := reads * int64(in.DType.Size()); bytes > perParam[name] {
			perParam[name] = bytes
		}
	}
	for _, bytes := range perParam {
		st.BytesIn += bytes
	}
	return st
}

func (s *MapStage) String() string {
	return fmt.Sprintf("map %s = %s", s.Out, exprString([]Expr{s.Expr}))
}

// ReduceOp selects the reduction operator.
type ReduceOp int

// Reduction operators.
const (
	SumR ReduceOp = iota
	MaxR
	MeanR
)

func (op ReduceOp) String() string {
	switch op {
	case SumR:
		return "sum"
	case MaxR:
		return "max"
	case MeanR:
		return "mean"
	}
	return fmt.Sprintf("ReduceOp(%d)", int(op))
}

// ReduceStage collapses one axis of its input with SumR, MaxR, or MeanR.
// The output shape is the input shape with Axis removed.
type ReduceStage struct {
	Out  string
	In   string
	Axis int
	Op   ReduceOp
}

// Kind implements Stage.
func (s *ReduceStage) Kind() string { return "reduce" }

// Reads implements Stage.
func (s *ReduceStage) Reads() []string { return []string{s.In} }

// Writes implements Stage.
func (s *ReduceStage) Writes() string { return s.Out }

// Validate implements Stage.
func (s *ReduceStage) Validate(k *Kernel) error {
	in, _ := k.Param(s.In)
	out, _ := k.Param(s.Out)
	if s.Axis < 0 || s.Axis >= len(in.Shape) {
		return fmt.Errorf("reduce: axis %d out of range for rank %d", s.Axis, len(in.Shape))
	}
	want := reducedShape(in.Shape, s.Axis)
	if !shapeEq(out.Shape, want) {
		return fmt.Errorf("reduce: output shape %v, want %v", out.Shape, want)
	}
	if in.DType.IsComplex() {
		return fmt.Errorf("reduce: complex input unsupported")
	}
	return nil
}

func reducedShape(shape []int, axis int) []int {
	out := make([]int, 0, len(shape)-1)
	for i, d := range shape {
		if i != axis {
			out = append(out, d)
		}
	}
	return out
}

func shapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Run implements Stage.
func (s *ReduceStage) Run(env map[string]*tensor.Tensor) error {
	in, out := env[s.In], env[s.Out]
	n := in.Dim(s.Axis)
	it := tensor.NewIter(out.Shape())
	inIdx := make([]int, in.Rank())
	for it.Next() {
		oi := it.Index()
		// Rebuild the input index with the reduced axis spliced back in.
		for d, j := 0, 0; d < in.Rank(); d++ {
			if d == s.Axis {
				continue
			}
			inIdx[d] = oi[j]
			j++
		}
		var acc float64
		for x := 0; x < n; x++ {
			inIdx[s.Axis] = x
			v := in.At(inIdx...)
			switch s.Op {
			case SumR, MeanR:
				acc += v
			case MaxR:
				if x == 0 || v > acc {
					acc = v
				}
			}
		}
		if s.Op == MeanR {
			acc /= float64(n)
		}
		out.Set(acc, oi...)
	}
	return nil
}

// Stats implements Stage.
func (s *ReduceStage) Stats(k *Kernel) StageStats {
	in, _ := k.Param(s.In)
	out, _ := k.Param(s.Out)
	return StageStats{
		Elems:          int64(out.NumElems()),
		Ops:            int64(in.NumElems()),
		BytesIn:        int64(in.SizeBytes()),
		BytesOut:       int64(out.SizeBytes()),
		VectorFriendly: s.Axis == len(in.Shape)-1,
	}
}

// MatMulStage computes Out[m,n] = A[m,k] · B[k,n] in float. The mel
// filterbank, YUV→RGB color conversion, and all-reduce summation trees
// lower to this stage.
type MatMulStage struct {
	Out string
	A   string
	B   string
}

// Kind implements Stage.
func (s *MatMulStage) Kind() string { return "matmul" }

// Reads implements Stage.
func (s *MatMulStage) Reads() []string { return []string{s.A, s.B} }

// Writes implements Stage.
func (s *MatMulStage) Writes() string { return s.Out }

// Validate implements Stage.
func (s *MatMulStage) Validate(k *Kernel) error {
	a, _ := k.Param(s.A)
	b, _ := k.Param(s.B)
	out, _ := k.Param(s.Out)
	if len(a.Shape) != 2 || len(b.Shape) != 2 || len(out.Shape) != 2 {
		return fmt.Errorf("matmul: all operands must be rank 2")
	}
	if a.Shape[1] != b.Shape[0] {
		return fmt.Errorf("matmul: inner dims %d and %d differ", a.Shape[1], b.Shape[0])
	}
	if out.Shape[0] != a.Shape[0] || out.Shape[1] != b.Shape[1] {
		return fmt.Errorf("matmul: output %v, want [%d %d]", out.Shape, a.Shape[0], b.Shape[1])
	}
	return nil
}

// Run implements Stage.
func (s *MatMulStage) Run(env map[string]*tensor.Tensor) error {
	a, b, out := env[s.A], env[s.B], env[s.Out]
	m, kk := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for x := 0; x < kk; x++ {
				acc += a.At(i, x) * b.At(x, j)
			}
			out.Set(acc, i, j)
		}
	}
	return nil
}

// Stats implements Stage.
func (s *MatMulStage) Stats(k *Kernel) StageStats {
	a, _ := k.Param(s.A)
	b, _ := k.Param(s.B)
	out, _ := k.Param(s.Out)
	m, kk := int64(a.Shape[0]), int64(a.Shape[1])
	n := int64(b.Shape[1])
	return StageStats{
		Elems:          m * n,
		Ops:            2 * m * n * kk,
		BytesIn:        int64(a.SizeBytes()) + int64(b.SizeBytes()),
		BytesOut:       int64(out.SizeBytes()),
		VectorFriendly: true,
	}
}

// TransposeStage permute-copies its input. Unlike tensor.Transpose (a
// view), the stage materializes the permuted layout — this is the
// operation the DRX Transposition Engine exists for.
type TransposeStage struct {
	Out  string
	In   string
	Perm []int
}

// Kind implements Stage.
func (s *TransposeStage) Kind() string { return "transpose" }

// Reads implements Stage.
func (s *TransposeStage) Reads() []string { return []string{s.In} }

// Writes implements Stage.
func (s *TransposeStage) Writes() string { return s.Out }

// Validate implements Stage.
func (s *TransposeStage) Validate(k *Kernel) error {
	in, _ := k.Param(s.In)
	out, _ := k.Param(s.Out)
	if len(s.Perm) != len(in.Shape) {
		return fmt.Errorf("transpose: perm %v does not match rank %d", s.Perm, len(in.Shape))
	}
	seen := make([]bool, len(s.Perm))
	for i, p := range s.Perm {
		if p < 0 || p >= len(s.Perm) || seen[p] {
			return fmt.Errorf("transpose: invalid perm %v", s.Perm)
		}
		seen[p] = true
		if out.Shape[i] != in.Shape[p] {
			return fmt.Errorf("transpose: output dim %d is %d, want %d", i, out.Shape[i], in.Shape[p])
		}
	}
	if in.DType != out.DType {
		return fmt.Errorf("transpose: dtype change %v→%v (use typecast)", in.DType, out.DType)
	}
	return nil
}

// Run implements Stage.
func (s *TransposeStage) Run(env map[string]*tensor.Tensor) error {
	in, out := env[s.In], env[s.Out]
	view := in.Transpose(s.Perm...)
	it := tensor.NewIter(out.Shape())
	if in.DType().IsComplex() {
		for it.Next() {
			out.SetComplex(view.AtComplex(it.Index()...), it.Index()...)
		}
		return nil
	}
	for it.Next() {
		out.Set(view.At(it.Index()...), it.Index()...)
	}
	return nil
}

// Stats implements Stage.
func (s *TransposeStage) Stats(k *Kernel) StageStats {
	in, _ := k.Param(s.In)
	return StageStats{
		Elems:          int64(in.NumElems()),
		Ops:            0,
		BytesIn:        int64(in.SizeBytes()),
		BytesOut:       int64(in.SizeBytes()),
		VectorFriendly: false,
	}
}

// TypecastStage converts elementwise to the output parameter's dtype,
// with integer saturation.
type TypecastStage struct {
	Out string
	In  string
}

// Kind implements Stage.
func (s *TypecastStage) Kind() string { return "typecast" }

// Reads implements Stage.
func (s *TypecastStage) Reads() []string { return []string{s.In} }

// Writes implements Stage.
func (s *TypecastStage) Writes() string { return s.Out }

// Validate implements Stage.
func (s *TypecastStage) Validate(k *Kernel) error {
	in, _ := k.Param(s.In)
	out, _ := k.Param(s.Out)
	if !shapeEq(in.Shape, out.Shape) {
		return fmt.Errorf("typecast: shape %v → %v mismatch", in.Shape, out.Shape)
	}
	return nil
}

// Run implements Stage.
func (s *TypecastStage) Run(env map[string]*tensor.Tensor) error {
	in, out := env[s.In], env[s.Out]
	it := tensor.NewIter(out.Shape())
	for it.Next() {
		out.Set(in.At(it.Index()...), it.Index()...)
	}
	return nil
}

// Stats implements Stage.
func (s *TypecastStage) Stats(k *Kernel) StageStats {
	in, _ := k.Param(s.In)
	out, _ := k.Param(s.Out)
	return StageStats{
		Elems:          int64(out.NumElems()),
		Ops:            int64(out.NumElems()),
		BytesIn:        int64(in.SizeBytes()),
		BytesOut:       int64(out.SizeBytes()),
		VectorFriendly: true,
	}
}

// ReshapeStage reframes the input's elements under a new shape (a
// straight copy in row-major order — the record-framing step of the
// redaction and database pipelines).
type ReshapeStage struct {
	Out string
	In  string
}

// Kind implements Stage.
func (s *ReshapeStage) Kind() string { return "reshape" }

// Reads implements Stage.
func (s *ReshapeStage) Reads() []string { return []string{s.In} }

// Writes implements Stage.
func (s *ReshapeStage) Writes() string { return s.Out }

// Validate implements Stage.
func (s *ReshapeStage) Validate(k *Kernel) error {
	in, _ := k.Param(s.In)
	out, _ := k.Param(s.Out)
	if in.DType != out.DType {
		return fmt.Errorf("reshape: dtype change %v→%v", in.DType, out.DType)
	}
	if in.NumElems() != out.NumElems() {
		return fmt.Errorf("reshape: element count %d → %d mismatch", in.NumElems(), out.NumElems())
	}
	return nil
}

// Run implements Stage.
func (s *ReshapeStage) Run(env map[string]*tensor.Tensor) error {
	in, out := env[s.In], env[s.Out]
	copy(out.Bytes(), in.Contiguous().Bytes())
	return nil
}

// Stats implements Stage.
func (s *ReshapeStage) Stats(k *Kernel) StageStats {
	in, _ := k.Param(s.In)
	return StageStats{
		Elems:          int64(in.NumElems()),
		Ops:            0,
		BytesIn:        int64(in.SizeBytes()),
		BytesOut:       int64(in.SizeBytes()),
		VectorFriendly: true,
	}
}
