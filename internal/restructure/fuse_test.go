package restructure

import (
	"strings"
	"testing"

	"dmx/internal/tensor"
)

// The canonical fusible pair: RecordFrame's Out "records" is NERPrep's
// In "records" with identical geometry — the chained intermediate stays
// resident on the DRX unit.
func TestFuseChainedIntermediate(t *testing.T) {
	nrec, reclen, seqlen := 8, 16, 32
	k1 := RecordFrame(nrec, reclen)
	k2 := NERPrep(nrec, reclen, seqlen)
	f, err := Fuse(k1, k2)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "record-frame+ner-prep" {
		t.Errorf("fused name %q", f.Name)
	}
	// "records" keeps k1's Out declaration; it appears exactly once.
	var n int
	for i := range f.Params {
		if f.Params[i].Name == "records" {
			n++
			if f.Params[i].Dir != Out {
				t.Errorf("records dir = %v, want out", f.Params[i].Dir)
			}
		}
	}
	if n != 1 {
		t.Errorf("records declared %d times, want 1", n)
	}
	if got := len(f.Stages); got != len(k1.Stages)+len(k2.Stages) {
		t.Errorf("fused stage count %d", got)
	}
	// Only "plain" remains an input: the intermediate never leaves the unit.
	ins := f.Inputs()
	if len(ins) != 1 || ins[0].Name != "plain" {
		t.Fatalf("fused inputs %v", ins)
	}

	// Functional ground truth: fused == k1 then k2.
	plain := tensor.New(tensor.Uint8, nrec*reclen)
	for i := 0; i < nrec*reclen; i++ {
		plain.Set(float64(i%251), i)
	}
	mid, err := Run(k1, map[string]*tensor.Tensor{"plain": plain})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(k2, map[string]*tensor.Tensor{"records": mid["records"]})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(f, map[string]*tensor.Tensor{"plain": plain})
	if err != nil {
		t.Fatal(err)
	}
	tok, wantTok := got["tokens"], want["tokens"]
	if tok == nil {
		t.Fatal("fused kernel lost the downstream output")
	}
	for i := 0; i < tok.Dim(0); i++ {
		for j := 0; j < tok.Dim(1); j++ {
			if tok.At(i, j) != wantTok.At(i, j) {
				t.Fatalf("tokens[%d,%d] = %v, want %v", i, j, tok.At(i, j), wantTok.At(i, j))
			}
		}
	}
}

func TestFuseRejectsIllegalCollisions(t *testing.T) {
	nrec, reclen := 8, 16
	base := RecordFrame(nrec, reclen)

	// Geometry mismatch on the shared name.
	if _, err := Fuse(base, NERPrep(nrec, reclen*2, 32)); err == nil ||
		!strings.Contains(err.Error(), "geometry mismatch") {
		t.Errorf("geometry mismatch not rejected: %v", err)
	}

	// A second kernel that *writes* a name the first half owns.
	clobber := &Kernel{
		Name: "clobber",
		Params: []Param{
			{Name: "x", DType: tensor.Uint8, Shape: []int{nrec, reclen}, Dir: In},
			{Name: "records", DType: tensor.Uint8, Shape: []int{nrec, reclen}, Dir: Out},
		},
		Stages: []Stage{&ReshapeStage{Out: "records", In: "x"}},
	}
	if err := clobber.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Fuse(base, clobber); err == nil ||
		!strings.Contains(err.Error(), "collides") {
		t.Errorf("output collision not rejected: %v", err)
	}

	if _, err := Fuse(nil, base); err == nil {
		t.Error("nil kernel not rejected")
	}
}
