package restructure

import (
	"math"
	"testing"
	"testing/quick"

	"dmx/internal/tensor"
)

func runStage(t *testing.T, k *Kernel, inputs map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	t.Helper()
	out, err := Run(k, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMapWithBroadcastAccess(t *testing.T) {
	// y[i,j] = x[i,j] + b[j]
	k := &Kernel{
		Name: "rowadd",
		Params: []Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{2, 3}, Dir: In},
			{Name: "b", DType: tensor.Float32, Shape: []int{3}, Dir: In},
			{Name: "y", DType: tensor.Float32, Shape: []int{2, 3}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{
				Out: "y", Ins: []string{"x", "b"},
				Accs: []Access{IdentityAccess(2), channelAccess()},
				Expr: AddE(InN(0), InN(1)),
			},
		},
	}
	x := tensor.FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := tensor.FromFloat32([]float32{10, 20, 30}, 3)
	out := runStage(t, k, map[string]*tensor.Tensor{"x": x, "b": b})
	want := [][]float64{{11, 22, 33}, {14, 25, 36}}
	for i := range want {
		for j := range want[i] {
			if got := out["y"].At(i, j); got != want[i][j] {
				t.Errorf("y[%d,%d] = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
}

func TestReduceSumMaxMean(t *testing.T) {
	mk := func(op ReduceOp, axis int, outShape []int) *Kernel {
		return &Kernel{
			Name: "red",
			Params: []Param{
				{Name: "x", DType: tensor.Float32, Shape: []int{2, 3}, Dir: In},
				{Name: "y", DType: tensor.Float32, Shape: outShape, Dir: Out},
			},
			Stages: []Stage{&ReduceStage{Out: "y", In: "x", Axis: axis, Op: op}},
		}
	}
	x := tensor.FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	in := map[string]*tensor.Tensor{"x": x}

	sum := runStage(t, mk(SumR, 1, []int{2}), in)["y"]
	if sum.At(0) != 6 || sum.At(1) != 15 {
		t.Errorf("sum = %v %v, want 6 15", sum.At(0), sum.At(1))
	}
	max := runStage(t, mk(MaxR, 0, []int{3}), in)["y"]
	if max.At(0) != 4 || max.At(2) != 6 {
		t.Errorf("max = %v %v, want 4 6", max.At(0), max.At(2))
	}
	mean := runStage(t, mk(MeanR, 1, []int{2}), in)["y"]
	if mean.At(0) != 2 || mean.At(1) != 5 {
		t.Errorf("mean = %v %v, want 2 5", mean.At(0), mean.At(1))
	}
}

func TestMatMul(t *testing.T) {
	k := &Kernel{
		Name: "mm",
		Params: []Param{
			{Name: "a", DType: tensor.Float32, Shape: []int{2, 3}, Dir: In},
			{Name: "b", DType: tensor.Float32, Shape: []int{3, 2}, Dir: In},
			{Name: "c", DType: tensor.Float32, Shape: []int{2, 2}, Dir: Out},
		},
		Stages: []Stage{&MatMulStage{Out: "c", A: "a", B: "b"}},
	}
	a := tensor.FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := tensor.FromFloat32([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := runStage(t, k, map[string]*tensor.Tensor{"a": a, "b": b})["c"]
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if got := c.At(i, j); got != want[i][j] {
				t.Errorf("c[%d,%d] = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
	st := k.Stages[0].Stats(k)
	if st.Ops != 2*2*2*3 {
		t.Errorf("matmul Ops = %d, want 24", st.Ops)
	}
}

func TestTransposeStageMaterializes(t *testing.T) {
	k := &Kernel{
		Name: "tr",
		Params: []Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{2, 3}, Dir: In},
			{Name: "y", DType: tensor.Float32, Shape: []int{3, 2}, Dir: Out},
		},
		Stages: []Stage{&TransposeStage{Out: "y", In: "x", Perm: []int{1, 0}}},
	}
	x := tensor.FromFloat32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := runStage(t, k, map[string]*tensor.Tensor{"x": x})["y"]
	if !y.IsContiguous() {
		t.Error("transpose stage output not contiguous")
	}
	if y.At(2, 1) != 6 || y.At(1, 0) != 2 {
		t.Errorf("transposed values wrong: %v %v", y.At(2, 1), y.At(1, 0))
	}
	if k.Stages[0].Stats(k).VectorFriendly {
		t.Error("transpose should not be vector-friendly")
	}
}

func TestTypecastSaturates(t *testing.T) {
	k := &Kernel{
		Name: "cast",
		Params: []Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{3}, Dir: In},
			{Name: "y", DType: tensor.Int8, Shape: []int{3}, Dir: Out},
		},
		Stages: []Stage{&TypecastStage{Out: "y", In: "x"}},
	}
	x := tensor.FromFloat32([]float32{300, -300, 1.6}, 3)
	y := runStage(t, k, map[string]*tensor.Tensor{"x": x})["y"]
	if y.At(0) != 127 || y.At(1) != -128 || y.At(2) != 2 {
		t.Errorf("cast = %v %v %v, want 127 -128 2", y.At(0), y.At(1), y.At(2))
	}
}

func TestReshapeStage(t *testing.T) {
	k := &Kernel{
		Name: "rs",
		Params: []Param{
			{Name: "x", DType: tensor.Uint8, Shape: []int{6}, Dir: In},
			{Name: "y", DType: tensor.Uint8, Shape: []int{2, 3}, Dir: Out},
		},
		Stages: []Stage{&ReshapeStage{Out: "y", In: "x"}},
	}
	x := tensor.FromBytes([]byte{1, 2, 3, 4, 5, 6}, 6)
	y := runStage(t, k, map[string]*tensor.Tensor{"x": x})["y"]
	if y.At(1, 2) != 6 || y.At(0, 1) != 2 {
		t.Errorf("reshape values wrong")
	}
}

func TestExprEval(t *testing.T) {
	cases := []struct {
		e    Expr
		in   []complex128
		want float64
	}{
		{AddE(C(2), C(3)), nil, 5},
		{SubE(InN(0), C(1)), []complex128{4}, 3},
		{MulE(InN(0), InN(1)), []complex128{3, 4}, 12},
		{DivE(C(10), C(4)), nil, 2.5},
		{DivE(C(1), C(0)), nil, 0}, // guarded division
		{Unary{Op: Neg, X: C(2)}, nil, -2},
		{Unary{Op: Abs, X: C(-2)}, nil, 2},
		{SqrtE(C(9)), nil, 3},
		{SqrtE(C(-1)), nil, 0}, // guarded sqrt
		{LogE(C(math.E)), nil, 1},
		{Unary{Op: Exp, X: C(0)}, nil, 1},
		{Unary{Op: Floor, X: C(2.7)}, nil, 2},
		{Mag2E(0), []complex128{3 + 4i}, 25},
		{Unary{Op: Re, X: InN(0)}, []complex128{3 + 4i}, 3},
		{Unary{Op: Im, X: InN(0)}, []complex128{3 + 4i}, 4},
		{Binary{Op: Min, X: C(2), Y: C(5)}, nil, 2},
		{Binary{Op: Max, X: C(2), Y: C(5)}, nil, 5},
		{Binary{Op: Mod, X: C(7), Y: C(3)}, nil, 1},
	}
	for _, c := range cases {
		if got := c.e.eval(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestExprOpsCount(t *testing.T) {
	e := MulAdd(InN(0), 2, 3) // mul + add
	if e.ops() != 2 {
		t.Errorf("ops = %d, want 2", e.ops())
	}
}

// Property: a Map stage with identity access and the identity expression
// is a lossless copy for arbitrary float32 data.
func TestMapIdentityProperty(t *testing.T) {
	prop := func(vals [12]float32) bool {
		for i, v := range vals {
			if math.IsNaN(float64(v)) {
				vals[i] = 0
			}
		}
		k := &Kernel{
			Name: "id",
			Params: []Param{
				{Name: "x", DType: tensor.Float32, Shape: []int{3, 4}, Dir: In},
				{Name: "y", DType: tensor.Float32, Shape: []int{3, 4}, Dir: Out},
			},
			Stages: []Stage{&MapStage{
				Out: "y", Ins: []string{"x"},
				Accs: []Access{IdentityAccess(2)},
				Expr: InN(0),
			}},
		}
		x := tensor.FromFloat32(vals[:], 3, 4)
		out, err := Run(k, map[string]*tensor.Tensor{"x": x})
		return err == nil && tensor.Equal(x, out["y"])
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Reduce(SumR) equals the arithmetic sum within float tolerance.
func TestReduceSumProperty(t *testing.T) {
	prop := func(vals [10]float32) bool {
		k := &Kernel{
			Name: "sum",
			Params: []Param{
				{Name: "x", DType: tensor.Float64, Shape: []int{10}, Dir: In},
				{Name: "y", DType: tensor.Float64, Shape: []int{}, Dir: Out},
			},
			Stages: []Stage{&ReduceStage{Out: "y", In: "x", Axis: 0, Op: SumR}},
		}
		var want float64
		f := make([]float64, 10)
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 1
			}
			f[i] = float64(v)
			want += float64(v)
		}
		x := tensor.FromFloat64(f, 10)
		out, err := Run(k, map[string]*tensor.Tensor{"x": x})
		if err != nil {
			return false
		}
		got := out["y"].At()
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessHelpers(t *testing.T) {
	id := IdentityAccess(3)
	if !id.IsIdentity(3) {
		t.Error("IdentityAccess not identity")
	}
	if got := id.Map([]int{1, 2, 3}); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("identity map = %v", got)
	}
	perm := PermuteAccess([]int{1, 0})
	if got := perm.Map([]int{3, 7}); got[0] != 7 || got[1] != 3 {
		t.Errorf("permute map = %v", got)
	}
	st := StridedAccess([]int{5, 0}, []int{2, 1})
	if got := st.Map([]int{3, 4}); got[0] != 11 || got[1] != 4 {
		t.Errorf("strided map = %v", got)
	}
	rb := RowBroadcast(2)
	if got := rb.Map([]int{6, 9}); len(got) != 1 || got[0] != 6 {
		t.Errorf("rowbroadcast map = %v", got)
	}
}

func TestUnitInnerStride(t *testing.T) {
	if !IdentityAccess(2).UnitInnerStride(2) {
		t.Error("identity should be unit-stride")
	}
	if PermuteAccess([]int{1, 0}).UnitInnerStride(2) {
		t.Error("transpose access should not be unit-stride")
	}
	if !StridedAccess([]int{0, 3}, []int{1, 1}).UnitInnerStride(2) {
		t.Error("offset column extraction should be unit-stride")
	}
	if StridedAccess([]int{0, 0}, []int{1, 2}).UnitInnerStride(2) {
		t.Error("stride-2 inner should not be unit-stride")
	}
}
