package restructure

import "fmt"

// Access is an affine map from a stage's output index to an input index:
//
//	inIdx[d] = Offset[d] + Σ_j Coef[d][j] · outIdx[j]
//
// Affine accesses cover everything the restructuring kernels need —
// identity, broadcast (zero row), strided gather, transposition, and
// digit/field extraction — while remaining analyzable by the compiler:
// the DRX front-end's Strided Scratchpad Address Calculator evaluates
// exactly this form in hardware with <Base, Stride, Iteration> triples.
type Access struct {
	Offset []int
	Coef   [][]int // Coef[d][j]: contribution of output dim j to input dim d
}

// IdentityAccess maps the output index straight through (same rank).
func IdentityAccess(rank int) Access {
	a := Access{Offset: make([]int, rank), Coef: make([][]int, rank)}
	for d := range a.Coef {
		a.Coef[d] = make([]int, rank)
		a.Coef[d][d] = 1
	}
	return a
}

// BroadcastAccess maps every output index to a fixed input index —
// reading one scalar (e.g. a per-row mean at [row]).
func BroadcastAccess(inRank, outRank int, fixed ...int) Access {
	a := Access{Offset: make([]int, inRank), Coef: make([][]int, inRank)}
	for d := 0; d < inRank; d++ {
		a.Coef[d] = make([]int, outRank)
		if d < len(fixed) {
			a.Offset[d] = fixed[d]
		}
	}
	return a
}

// PermuteAccess reads the input with dimensions permuted: input dim d is
// driven by output dim perm[d]. Used for transposition-by-copy.
func PermuteAccess(perm []int) Access {
	rank := len(perm)
	a := Access{Offset: make([]int, rank), Coef: make([][]int, rank)}
	for d, p := range perm {
		a.Coef[d] = make([]int, rank)
		a.Coef[d][p] = 1
	}
	return a
}

// StridedAccess builds a rank-matching access where input dim d advances
// by stride[d] per step of output dim d, starting at offset[d]. Used for
// downsampling and field extraction from fixed-width records.
func StridedAccess(offset, stride []int) Access {
	if len(offset) != len(stride) {
		panic("restructure: offset/stride rank mismatch")
	}
	a := Access{Offset: append([]int(nil), offset...), Coef: make([][]int, len(stride))}
	for d := range stride {
		a.Coef[d] = make([]int, len(stride))
		a.Coef[d][d] = stride[d]
	}
	return a
}

// RowBroadcast maps output index (i, j, ...) to input index (i): reading
// a per-row scalar computed by a Reduce stage.
func RowBroadcast(outRank int) Access {
	a := Access{Offset: []int{0}, Coef: [][]int{make([]int, outRank)}}
	a.Coef[0][0] = 1
	return a
}

// Map applies the access to an output index.
func (a Access) Map(out []int) []int {
	in := make([]int, len(a.Offset))
	a.MapInto(out, in)
	return in
}

// MapInto applies the access writing the result into in (len must match).
func (a Access) MapInto(out, in []int) {
	for d := range a.Offset {
		v := a.Offset[d]
		row := a.Coef[d]
		for j, o := range out {
			if c := row[j]; c != 0 {
				v += c * o
			}
		}
		in[d] = v
	}
}

// InRank reports the rank of the access's input side.
func (a Access) InRank() int { return len(a.Offset) }

// IsIdentity reports whether the access is the identity of the given rank.
func (a Access) IsIdentity(rank int) bool {
	if len(a.Offset) != rank {
		return false
	}
	for d := range a.Offset {
		if a.Offset[d] != 0 {
			return false
		}
		for j, c := range a.Coef[d] {
			want := 0
			if j == d {
				want = 1
			}
			if c != want {
				return false
			}
		}
	}
	return true
}

// UnitInnerStride reports whether the innermost output dimension drives
// the innermost input dimension with coefficient 1 and no other input
// dimension depends on it — i.e. the access streams contiguously, which
// both the CPU prefetcher and the DRX off-chip engine exploit.
func (a Access) UnitInnerStride(outRank int) bool {
	if len(a.Offset) == 0 || outRank == 0 {
		return true
	}
	last := outRank - 1
	inLast := len(a.Offset) - 1
	if a.Coef[inLast][last] != 1 {
		return false
	}
	for d := 0; d < inLast; d++ {
		if a.Coef[d][last] != 0 {
			return false
		}
	}
	return true
}

// validate checks the access against the bounds of the input parameter
// shape and the stage's output shape: every reachable input index must be
// in range.
func (a Access) validate(outShape, inShape []int) error {
	if len(a.Offset) != len(inShape) {
		return fmt.Errorf("access rank %d != input rank %d", len(a.Offset), len(inShape))
	}
	for d := range a.Coef {
		if len(a.Coef[d]) != len(outShape) {
			return fmt.Errorf("access coef row %d has %d cols, want %d", d, len(a.Coef[d]), len(outShape))
		}
	}
	// The access is affine, so extrema occur at the corners of the output
	// box; check the min and max reachable index per input dim.
	for d := range a.Offset {
		lo, hi := a.Offset[d], a.Offset[d]
		for j, c := range a.Coef[d] {
			ext := c * (outShape[j] - 1)
			if ext > 0 {
				hi += ext
			} else {
				lo += ext
			}
		}
		if lo < 0 || hi >= inShape[d] {
			return fmt.Errorf("access dim %d ranges [%d,%d], input dim is %d", d, lo, hi, inShape[d])
		}
	}
	return nil
}
