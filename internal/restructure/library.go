package restructure

import (
	"math"

	"dmx/internal/tensor"
)

// This file defines the concrete restructuring kernels chaining the five
// Table I benchmark pipelines (plus the Fig. 16 NER extension and the
// Fig. 17 collective reduction). Each constructor is parameterized by the
// batch geometry so the workload generators can hit the paper's 6–16 MB
// batch sizes.

// MelSpectrogram chains FFT → SVM in Sound Detection: the complex STFT
// output becomes a log-mel spectrogram. Power (|z|²), a mel filterbank
// matmul, then log compression.
//
// Inputs: spectrum complex64[frames,bins], melw float32[bins,mels].
// Output: logmel float32[frames,mels].
func MelSpectrogram(frames, bins, mels int) *Kernel {
	return &Kernel{
		Name: "mel-spectrogram",
		Params: []Param{
			{Name: "spectrum", DType: tensor.Complex64, Shape: []int{frames, bins}, Dir: In},
			{Name: "melw", DType: tensor.Float32, Shape: []int{bins, mels}, Dir: In},
			{Name: "power", DType: tensor.Float32, Shape: []int{frames, bins}, Dir: Temp},
			{Name: "mel", DType: tensor.Float32, Shape: []int{frames, mels}, Dir: Temp},
			{Name: "logmel", DType: tensor.Float32, Shape: []int{frames, mels}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{
				Out: "power", Ins: []string{"spectrum"},
				Accs: []Access{IdentityAccess(2)},
				Expr: Mag2E(0),
			},
			&MatMulStage{Out: "mel", A: "power", B: "melw"},
			&MapStage{
				Out: "logmel", Ins: []string{"mel"},
				Accs: []Access{IdentityAccess(2)},
				Expr: LogE(AddE(InN(0), C(1e-6))),
			},
		},
	}
}

// MelWeights builds a triangular mel filterbank matrix [bins, mels],
// the constant weight input of MelSpectrogram.
func MelWeights(bins, mels int) *tensor.Tensor {
	w := tensor.New(tensor.Float32, bins, mels)
	// Mel-spaced center frequencies over the bin range.
	melOf := func(f float64) float64 { return 2595 * math.Log10(1+f/700) }
	invMel := func(m float64) float64 { return 700 * (math.Pow(10, m/2595) - 1) }
	fMax := float64(bins)
	mMax := melOf(fMax)
	centers := make([]float64, mels+2)
	for i := range centers {
		centers[i] = invMel(mMax * float64(i) / float64(mels+1))
	}
	for m := 0; m < mels; m++ {
		lo, mid, hi := centers[m], centers[m+1], centers[m+2]
		for b := 0; b < bins; b++ {
			f := float64(b)
			var v float64
			switch {
			case f > lo && f <= mid:
				v = (f - lo) / (mid - lo)
			case f > mid && f < hi:
				v = (hi - f) / (hi - mid)
			}
			w.Set(v, b, m)
		}
	}
	return w
}

// VideoPreprocess chains video decode → object detection in Video
// Surveillance: planar-packed YUV pixels become a normalized, quantized,
// channel-first (NCHW) int8 tensor. The whole per-pixel computation —
// color-space conversion, chroma-offset removal ((yuv−b)·M = yuv·M −
// b·M), normalization, and int8 quantization — is fused into a single
// Map whose leaves read the pixel's three channels (a shared row gather)
// and the conversion coefficients (periodic constants), the way a
// production preprocessing library fuses its pipeline; a transposition
// of the quantized bytes then pivots HWC→CHW.
//
// Inputs: yuv uint8[pixels,3], csc float32[3,3], bias float32[3]
// (the *projected* offset, CSCBiasProjected). Output: nchw int8[3,pixels].
func VideoPreprocess(pixels int) *Kernel {
	const scale = 127.0 / 255.0
	// quant[i,c] = (Σ_k yuv[i,k]·csc[k,c] − bias[c])·scale − 63.5
	yuvAcc := func(k int) Access {
		return Access{Offset: []int{0, k}, Coef: [][]int{{1, 0}, {0, 0}}}
	}
	cscAcc := func(k int) Access {
		return Access{Offset: []int{k, 0}, Coef: [][]int{{0, 0}, {0, 1}}}
	}
	mix := AddE(AddE(MulE(InN(0), InN(3)), MulE(InN(1), InN(4))), MulE(InN(2), InN(5)))
	expr := MulAdd(SubE(mix, InN(6)), scale, -63.5)
	return &Kernel{
		Name: "video-preprocess",
		Params: []Param{
			{Name: "yuv", DType: tensor.Uint8, Shape: []int{pixels, 3}, Dir: In},
			{Name: "csc", DType: tensor.Float32, Shape: []int{3, 3}, Dir: In},
			{Name: "bias", DType: tensor.Float32, Shape: []int{3}, Dir: In},
			{Name: "quant", DType: tensor.Int8, Shape: []int{pixels, 3}, Dir: Temp},
			{Name: "nchw", DType: tensor.Int8, Shape: []int{3, pixels}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{
				Out: "quant",
				Ins: []string{"yuv", "yuv", "yuv", "csc", "csc", "csc", "bias"},
				Accs: []Access{
					yuvAcc(0), yuvAcc(1), yuvAcc(2),
					cscAcc(0), cscAcc(1), cscAcc(2),
					channelAccess(),
				},
				Expr: expr,
			},
			// HWC → CHW for the DNN accelerator, on quantized bytes.
			&TransposeStage{Out: "nchw", In: "quant", Perm: []int{1, 0}},
		},
	}
}

// channelAccess maps output index (i, c) to bias index (c).
func channelAccess() Access {
	return Access{Offset: []int{0}, Coef: [][]int{{0, 1}}}
}

// CSCMatrix returns the BT.601 YUV→RGB conversion matrix used by
// VideoPreprocess (as the "csc" input).
func CSCMatrix() *tensor.Tensor {
	return tensor.FromFloat32([]float32{
		1.0, 1.0, 1.0,
		0.0, -0.344136, 1.772,
		1.402, -0.714136, 0.0,
	}, 3, 3)
}

// CSCBias returns the raw YUV chroma offset vector [0,128,128].
func CSCBias() *tensor.Tensor {
	return tensor.FromFloat32([]float32{0, 128, 128}, 3)
}

// CSCBiasProjected returns the chroma offset projected through the
// conversion matrix (b·M) — the "bias" input of VideoPreprocess.
func CSCBiasProjected() *tensor.Tensor {
	b := CSCBias()
	m := CSCMatrix()
	out := tensor.New(tensor.Float32, 3)
	for c := 0; c < 3; c++ {
		var acc float64
		for k := 0; k < 3; k++ {
			acc += b.At(k) * m.At(k, c)
		}
		out.Set(acc, c)
	}
	return out
}

// SignalNormalize chains FFT → reinforcement learning in Brain
// Stimulation: per-channel spectral power is mean-centered and scaled
// into the policy network's observation range.
//
// Input: freq complex64[batch,bins]. Output: obs float32[batch,bins].
func SignalNormalize(batch, bins int) *Kernel {
	return &Kernel{
		Name: "signal-normalize",
		Params: []Param{
			{Name: "freq", DType: tensor.Complex64, Shape: []int{batch, bins}, Dir: In},
			{Name: "power", DType: tensor.Float32, Shape: []int{batch, bins}, Dir: Temp},
			{Name: "mean", DType: tensor.Float32, Shape: []int{batch}, Dir: Temp},
			{Name: "obs", DType: tensor.Float32, Shape: []int{batch, bins}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{
				Out: "power", Ins: []string{"freq"},
				Accs: []Access{IdentityAccess(2)},
				Expr: Mag2E(0),
			},
			&ReduceStage{Out: "mean", In: "power", Axis: 1, Op: MeanR},
			&MapStage{
				Out: "obs", Ins: []string{"power", "mean"},
				Accs: []Access{IdentityAccess(2), RowBroadcast(2)},
				Expr: MulE(SubE(InN(0), InN(1)), C(1.0/1024.0)),
			},
		},
	}
}

// RecordFrame chains AES-GCM decrypt → regex in Personal Info Redaction:
// the decrypted byte stream is framed into fixed-width records and
// byte-sanitized into the printable range the regex accelerator scans.
//
// Input: plain uint8[nrec*reclen]. Output: records uint8[nrec,reclen].
func RecordFrame(nrec, reclen int) *Kernel {
	return &Kernel{
		Name: "record-frame",
		Params: []Param{
			{Name: "plain", DType: tensor.Uint8, Shape: []int{nrec * reclen}, Dir: In},
			{Name: "framed", DType: tensor.Uint8, Shape: []int{nrec, reclen}, Dir: Temp},
			{Name: "records", DType: tensor.Uint8, Shape: []int{nrec, reclen}, Dir: Out},
		},
		Stages: []Stage{
			&ReshapeStage{Out: "framed", In: "plain"},
			// Clamp control bytes into the printable window (tab .. '~').
			&MapStage{
				Out: "records", Ins: []string{"framed"},
				Accs: []Access{IdentityAccess(2)},
				Expr: Binary{Op: Max, X: Binary{Op: Min, X: InN(0), Y: C(126)}, Y: C(9)},
			},
		},
	}
}

// ColumnPack chains decompression → hash join in Database Hash Join:
// fixed-width ASCII rows carrying a join key, a numeric amount, and a
// binary payload are parsed into packed int32 key and amount columns
// plus a transposed (columnar) payload — the classic row-to-column
// ingest restructuring.
//
// Input: rows uint8[nrows, keyDigits+amtDigits+payBytes].
// Outputs: keys int32[nrows], amounts int32[nrows],
// paycol uint8[payBytes,nrows].
func ColumnPack(nrows, keyDigits, amtDigits, payBytes int) *Kernel {
	rowlen := keyDigits + amtDigits + payBytes
	// Fixed-width decimal parse: Σ_d (rows[i,colOff+d]-'0')·10^(digits-1-d);
	// every digit is a separate access of the same input.
	parse := func(colOff, digits int) ([]string, []Access, Expr) {
		ins := make([]string, digits)
		accs := make([]Access, digits)
		var expr Expr
		for d := 0; d < digits; d++ {
			ins[d] = "rows"
			accs[d] = Access{Offset: []int{0, colOff + d}, Coef: [][]int{{1}, {0}}}
			scale := math.Pow(10, float64(digits-1-d))
			term := MulE(SubE(InN(d), C('0')), C(scale))
			if expr == nil {
				expr = term
			} else {
				expr = AddE(expr, term)
			}
		}
		return ins, accs, expr
	}
	keyIns, keyAccs, keyExpr := parse(0, keyDigits)
	amtIns, amtAccs, amtExpr := parse(keyDigits, amtDigits)
	return &Kernel{
		Name: "column-pack",
		Params: []Param{
			{Name: "rows", DType: tensor.Uint8, Shape: []int{nrows, rowlen}, Dir: In},
			{Name: "keys", DType: tensor.Int32, Shape: []int{nrows}, Dir: Out},
			{Name: "amounts", DType: tensor.Int32, Shape: []int{nrows}, Dir: Out},
			{Name: "pay", DType: tensor.Uint8, Shape: []int{nrows, payBytes}, Dir: Temp},
			{Name: "paycol", DType: tensor.Uint8, Shape: []int{payBytes, nrows}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{Out: "keys", Ins: keyIns, Accs: keyAccs, Expr: keyExpr},
			&MapStage{Out: "amounts", Ins: amtIns, Accs: amtAccs, Expr: amtExpr},
			// Extract the payload region...
			&MapStage{
				Out: "pay", Ins: []string{"rows"},
				Accs: []Access{StridedAccess([]int{0, keyDigits + amtDigits}, []int{1, 1})},
				Expr: InN(0),
			},
			// ...and pivot it to columnar layout for the join accelerator.
			&TransposeStage{Out: "paycol", In: "pay", Perm: []int{1, 0}},
		},
	}
}

// NERPrep is the Fig. 16 extension: regex output records are reshaped
// into token sequences and typecast to the int32 token IDs the BERT NER
// accelerator consumes ("reshaping and typecasting", Sec. VII-C).
//
// Input: records uint8[nrec,reclen]. Output: tokens int32[nseq,seqlen]
// with nseq·seqlen == nrec·reclen.
func NERPrep(nrec, reclen, seqlen int) *Kernel {
	total := nrec * reclen
	nseq := total / seqlen
	return &Kernel{
		Name: "ner-prep",
		Params: []Param{
			{Name: "records", DType: tensor.Uint8, Shape: []int{nrec, reclen}, Dir: In},
			{Name: "flat", DType: tensor.Uint8, Shape: []int{nseq, seqlen}, Dir: Temp},
			{Name: "tokens", DType: tensor.Int32, Shape: []int{nseq, seqlen}, Dir: Out},
		},
		Stages: []Stage{
			&ReshapeStage{Out: "flat", In: "records"},
			&TypecastStage{Out: "tokens", In: "flat"},
		},
	}
}

// VecNormalize chains the embedding model → vector search in the
// generative-AI retrieval pipeline (the paper's future-work chain):
// float embeddings are L2-normalized per row and quantized to the int8
// vectors the search accelerator scans.
//
// Input: vecs float32[nq,dim]. Output: qvecs int8[nq,dim].
func VecNormalize(nq, dim int) *Kernel {
	return &Kernel{
		Name: "vec-normalize",
		Params: []Param{
			{Name: "vecs", DType: tensor.Float32, Shape: []int{nq, dim}, Dir: In},
			{Name: "sq", DType: tensor.Float32, Shape: []int{nq, dim}, Dir: Temp},
			{Name: "ss", DType: tensor.Float32, Shape: []int{nq}, Dir: Temp},
			{Name: "qvecs", DType: tensor.Int8, Shape: []int{nq, dim}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{
				Out: "sq", Ins: []string{"vecs"},
				Accs: []Access{IdentityAccess(2)},
				Expr: MulE(InN(0), InN(0)),
			},
			&ReduceStage{Out: "ss", In: "sq", Axis: 1, Op: SumR},
			// qvecs[i,d] = vecs[i,d] / sqrt(ss[i]+eps) · 127, saturated by
			// the int8 output dtype.
			&MapStage{
				Out: "qvecs", Ins: []string{"vecs", "ss"},
				Accs: []Access{IdentityAccess(2), RowBroadcast(2)},
				Expr: MulE(DivE(InN(0), SqrtE(AddE(InN(1), C(1e-9)))), C(127)),
			},
		},
	}
}

// SumReduce is the restructuring kernel a destination DRX runs for the
// many-to-one (all-reduce) collective of Fig. 17: k partial vectors are
// summed into one.
//
// Input: parts float32[k,n]. Output: sum float32[n].
func SumReduce(k, n int) *Kernel {
	return &Kernel{
		Name: "sum-reduce",
		Params: []Param{
			{Name: "parts", DType: tensor.Float32, Shape: []int{k, n}, Dir: In},
			{Name: "sum", DType: tensor.Float32, Shape: []int{n}, Dir: Out},
		},
		Stages: []Stage{
			&ReduceStage{Out: "sum", In: "parts", Axis: 0, Op: SumR},
		},
	}
}
