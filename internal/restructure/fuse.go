package restructure

import "fmt"

// Fuse merges two restructuring kernels into a single program that runs
// k1's stages followed by k2's. The fused kernel models DRX hop fusion:
// two adjacent restructuring hops compiled and dispatched as one DRX
// program, paying one driver/launch round-trip instead of two.
//
// Parameter tables merge by name. A k2 parameter whose name collides
// with a k1 parameter must agree exactly in dtype and shape, and the
// collision is only legal when k2 reads the tensor k1 produced (or both
// sides consume the same input):
//
//   - k2 In vs k1 Out/Temp: the chained intermediate. k1's stages write
//     it, k2's stages read it; the fused program keeps k1's declaration
//     (the tensor never leaves the DRX unit).
//   - k2 In vs k1 In: both programs consume the same upstream tensor;
//     share one declaration.
//   - k2 Out/Temp colliding with anything of k1's: an error — the fused
//     program would overwrite state the first half still owns.
//
// The caller is responsible for hop-level legality (shared DRX unit,
// adjacency); Fuse only checks program-level structure and validates the
// merged kernel.
func Fuse(k1, k2 *Kernel) (*Kernel, error) {
	if k1 == nil || k2 == nil {
		return nil, fmt.Errorf("restructure: fuse: nil kernel")
	}
	f := &Kernel{Name: k1.Name + "+" + k2.Name}
	f.Params = append(f.Params, k1.Params...)
	for i := range k2.Params {
		p := k2.Params[i]
		prev, ok := f.Param(p.Name)
		if !ok {
			f.Params = append(f.Params, p)
			continue
		}
		if p.Dir != In {
			return nil, fmt.Errorf("restructure: fuse %s: %s parameter %q of %s collides with a parameter of %s",
				f.Name, p.Dir, p.Name, k2.Name, k1.Name)
		}
		if prev.DType != p.DType || !shapeEq(prev.Shape, p.Shape) {
			return nil, fmt.Errorf("restructure: fuse %s: parameter %q geometry mismatch: %v%v vs %v%v",
				f.Name, p.Name, prev.DType, prev.Shape, p.DType, p.Shape)
		}
		// Chained intermediate (k1 Out/Temp read by k2) or shared input:
		// keep k1's declaration. An Out written by the first half and
		// read by the second is exactly the fused dataflow; Validate
		// accepts the read because the write precedes it.
	}
	f.Stages = append(f.Stages, k1.Stages...)
	f.Stages = append(f.Stages, k2.Stages...)
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("restructure: fuse %s: %w", f.Name, err)
	}
	return f, nil
}
