package restructure

import (
	"strings"
	"testing"

	"dmx/internal/tensor"
)

func simpleKernel() *Kernel {
	return &Kernel{
		Name: "double",
		Params: []Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{4}, Dir: In},
			{Name: "y", DType: tensor.Float32, Shape: []int{4}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{
				Out: "y", Ins: []string{"x"},
				Accs: []Access{IdentityAccess(1)},
				Expr: MulE(InN(0), C(2)),
			},
		},
	}
}

func TestValidateAcceptsSimpleKernel(t *testing.T) {
	if err := simpleKernel().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsDuplicateParams(t *testing.T) {
	k := simpleKernel()
	k.Params = append(k.Params, Param{Name: "x", DType: tensor.Float32, Shape: []int{4}, Dir: In})
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestValidateRejectsUndeclaredRead(t *testing.T) {
	k := simpleKernel()
	k.Stages[0].(*MapStage).Ins[0] = "ghost"
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("want undeclared error, got %v", err)
	}
}

func TestValidateRejectsReadBeforeWrite(t *testing.T) {
	k := &Kernel{
		Name: "bad",
		Params: []Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{4}, Dir: In},
			{Name: "t", DType: tensor.Float32, Shape: []int{4}, Dir: Temp},
			{Name: "y", DType: tensor.Float32, Shape: []int{4}, Dir: Out},
		},
		Stages: []Stage{
			&MapStage{Out: "y", Ins: []string{"t"}, Accs: []Access{IdentityAccess(1)}, Expr: InN(0)},
		},
	}
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "before it is written") {
		t.Fatalf("want read-before-write error, got %v", err)
	}
}

func TestValidateRejectsWriteToInput(t *testing.T) {
	k := simpleKernel()
	k.Stages[0].(*MapStage).Out = "x"
	err := k.Validate()
	if err == nil {
		t.Fatal("want error writing input")
	}
}

func TestValidateRejectsUnwrittenOutput(t *testing.T) {
	k := simpleKernel()
	k.Params = append(k.Params, Param{Name: "z", DType: tensor.Float32, Shape: []int{4}, Dir: Out})
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "never written") {
		t.Fatalf("want never-written error, got %v", err)
	}
}

func TestValidateRejectsOutOfBoundsAccess(t *testing.T) {
	k := simpleKernel()
	k.Stages[0].(*MapStage).Accs[0] = StridedAccess([]int{2}, []int{1}) // reaches index 5 of a 4-vector
	if err := k.Validate(); err == nil {
		t.Fatal("want out-of-bounds access error")
	}
}

func TestValidateRejectsExprInputOutOfRange(t *testing.T) {
	k := simpleKernel()
	k.Stages[0].(*MapStage).Expr = InN(3)
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "in3") {
		t.Fatalf("want expr-input error, got %v", err)
	}
}

func TestRunSimpleKernel(t *testing.T) {
	k := simpleKernel()
	in := tensor.FromFloat32([]float32{1, 2, 3, 4}, 4)
	out, err := Run(k, map[string]*tensor.Tensor{"x": in})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6, 8}
	for i, w := range want {
		if got := out["y"].At(i); got != w {
			t.Errorf("y[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestRunRejectsMissingInput(t *testing.T) {
	_, err := Run(simpleKernel(), nil)
	if err == nil || !strings.Contains(err.Error(), "missing input") {
		t.Fatalf("want missing-input error, got %v", err)
	}
}

func TestRunRejectsWrongShape(t *testing.T) {
	in := tensor.FromFloat32([]float32{1, 2}, 2)
	_, err := Run(simpleKernel(), map[string]*tensor.Tensor{"x": in})
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("want shape error, got %v", err)
	}
}

func TestRunRejectsWrongDType(t *testing.T) {
	in := tensor.New(tensor.Int32, 4)
	_, err := Run(simpleKernel(), map[string]*tensor.Tensor{"x": in})
	if err == nil || !strings.Contains(err.Error(), "dtype") {
		t.Fatalf("want dtype error, got %v", err)
	}
}

func TestKernelStatsAggregate(t *testing.T) {
	k := simpleKernel()
	st := k.Stats()
	if st.Elems != 4 {
		t.Errorf("Elems = %d, want 4", st.Elems)
	}
	if st.Ops != 4 { // one mul per element
		t.Errorf("Ops = %d, want 4", st.Ops)
	}
	if st.BytesIn != 16 || st.BytesOut != 16 {
		t.Errorf("Bytes = %d/%d, want 16/16", st.BytesIn, st.BytesOut)
	}
}

func TestInputOutputBytes(t *testing.T) {
	k := MelSpectrogram(8, 16, 4)
	wantIn := int64(8*16*8 + 16*4*4)
	if got := k.InputBytes(); got != wantIn {
		t.Errorf("InputBytes = %d, want %d", got, wantIn)
	}
	if got := k.OutputBytes(); got != int64(8*4*4) {
		t.Errorf("OutputBytes = %d, want %d", got, 8*4*4)
	}
}
