package restructure

import (
	"testing"

	"dmx/internal/tensor"
)

// sameSigKernel builds a kernel with a fixed name and geometry but a
// caller-chosen map expression — the same Signature, different program.
func sameSigKernel(e Expr) *Kernel {
	return &Kernel{
		Name: "samesig",
		Params: []Param{
			{Name: "a", DType: tensor.Float32, Shape: []int{8, 8}, Dir: In},
			{Name: "out", DType: tensor.Float32, Shape: []int{8, 8}, Dir: Out},
		},
		Stages: []Stage{&MapStage{
			Out: "out", Ins: []string{"a"},
			Accs: []Access{IdentityAccess(2)},
			Expr: e,
		}},
	}
}

func TestFingerprintDistinguishesStages(t *testing.T) {
	k1 := sameSigKernel(AddE(InN(0), C(1)))
	k2 := sameSigKernel(MulE(InN(0), C(2)))
	if k1.Signature() != k2.Signature() {
		t.Fatalf("signatures should match: %q vs %q", k1.Signature(), k2.Signature())
	}
	if k1.Fingerprint() == k2.Fingerprint() {
		t.Fatalf("fingerprints must differ for different stages: %q", k1.Fingerprint())
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	// Two separately constructed but structurally identical kernels must
	// agree — this is what lets the compile cache hit across call sites.
	k1, k2 := SignalNormalize(6, 96), SignalNormalize(6, 96)
	if k1.Fingerprint() != k2.Fingerprint() {
		t.Fatal("structurally identical kernels disagree on Fingerprint")
	}
	if k1.Fingerprint() != k1.Fingerprint() {
		t.Fatal("Fingerprint is not stable across calls")
	}
	if k3 := SignalNormalize(6, 97); k3.Fingerprint() == k1.Fingerprint() {
		t.Fatal("Fingerprint ignores geometry")
	}
}

// sameExprKernel builds a kernel with fixed name, geometry, and
// expression but caller-chosen input wiring and access matrix — the
// same Signature and the same *MapStage.String() rendering, so only a
// field-complete fingerprint can tell the variants apart.
func sameExprKernel(in string, a Access) *Kernel {
	return &Kernel{
		Name: "samewire",
		Params: []Param{
			{Name: "a", DType: tensor.Float32, Shape: []int{8, 8}, Dir: In},
			{Name: "b", DType: tensor.Float32, Shape: []int{8, 8}, Dir: In},
			{Name: "out", DType: tensor.Float32, Shape: []int{8, 8}, Dir: Out},
		},
		Stages: []Stage{&MapStage{
			Out: "out", Ins: []string{in},
			Accs: []Access{a},
			Expr: InN(0),
		}},
	}
}

func TestFingerprintDistinguishesAccesses(t *testing.T) {
	// *MapStage.String() omits Accs; a Stringer-based fingerprint
	// collides these two kernels and the process-wide compile cache
	// would serve the identity program for the transposing kernel.
	k1 := sameExprKernel("a", IdentityAccess(2))
	k2 := sameExprKernel("a", PermuteAccess([]int{1, 0}))
	if k1.Signature() != k2.Signature() {
		t.Fatalf("signatures should match: %q vs %q", k1.Signature(), k2.Signature())
	}
	if k1.Fingerprint() == k2.Fingerprint() {
		t.Fatalf("kernels differing only in access matrix share a fingerprint: %q", k1.Fingerprint())
	}
	// Same coefficient matrix, different offsets.
	if k3 := sameExprKernel("a", StridedAccess([]int{1, 0}, []int{1, 1})); k3.Fingerprint() == k1.Fingerprint() {
		t.Fatal("fingerprint ignores access offsets")
	}
}

func TestFingerprintDistinguishesInputs(t *testing.T) {
	// *MapStage.String() also omits Ins: same stage reading parameter
	// "a" vs "b" must not share a compiled program.
	k1 := sameExprKernel("a", IdentityAccess(2))
	k2 := sameExprKernel("b", IdentityAccess(2))
	if k1.Signature() != k2.Signature() {
		t.Fatalf("signatures should match: %q vs %q", k1.Signature(), k2.Signature())
	}
	if k1.Fingerprint() == k2.Fingerprint() {
		t.Fatalf("kernels differing only in input wiring share a fingerprint: %q", k1.Fingerprint())
	}
}

func TestFingerprintExtendsSignature(t *testing.T) {
	for _, k := range []*Kernel{MelSpectrogram(4, 16, 8), RecordFrame(4, 32), SumReduce(2, 64)} {
		fp, sig := k.Fingerprint(), k.Signature()
		if len(fp) <= len(sig) || fp[:len(sig)] != sig {
			t.Errorf("%s: Fingerprint does not extend Signature", k.Name)
		}
	}
}
