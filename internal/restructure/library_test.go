package restructure

import (
	"math"
	"testing"

	"dmx/internal/tensor"
)

func TestAllLibraryKernelsValidate(t *testing.T) {
	kernels := []*Kernel{
		MelSpectrogram(16, 32, 8),
		VideoPreprocess(64),
		SignalNormalize(4, 32),
		RecordFrame(8, 16),
		ColumnPack(10, 6, 8, 8),
		NERPrep(8, 16, 32),
		SumReduce(4, 16),
	}
	for _, k := range kernels {
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", k.Name, err)
		}
	}
}

func TestMelSpectrogramEndToEnd(t *testing.T) {
	frames, bins, mels := 4, 16, 4
	k := MelSpectrogram(frames, bins, mels)
	spec := tensor.New(tensor.Complex64, frames, bins)
	for f := 0; f < frames; f++ {
		for b := 0; b < bins; b++ {
			spec.SetComplex(complex(float64(f+1), float64(b)), f, b)
		}
	}
	melw := MelWeights(bins, mels)
	out, err := Run(k, map[string]*tensor.Tensor{"spectrum": spec, "melw": melw})
	if err != nil {
		t.Fatal(err)
	}
	logmel := out["logmel"]
	// Reference: log(power · melw + eps) computed independently.
	for f := 0; f < frames; f++ {
		for m := 0; m < mels; m++ {
			var acc float64
			for b := 0; b < bins; b++ {
				z := spec.AtComplex(f, b)
				p := real(z)*real(z) + imag(z)*imag(z)
				acc += p * melw.At(b, m)
			}
			// Run computes in float32 precision per stage, so allow slack.
			want := math.Log(float64(float32(acc)) + 1e-6)
			if got := logmel.At(f, m); math.Abs(got-want) > 1e-3*math.Abs(want)+1e-4 {
				t.Errorf("logmel[%d,%d] = %v, want %v", f, m, got, want)
			}
		}
	}
}

func TestMelWeightsShapeAndRange(t *testing.T) {
	w := MelWeights(64, 16)
	if w.Dim(0) != 64 || w.Dim(1) != 16 {
		t.Fatalf("shape %v", w.Shape())
	}
	// Every filter must have some mass; weights lie in [0,1].
	for m := 0; m < 16; m++ {
		var sum float64
		for b := 0; b < 64; b++ {
			v := w.At(b, m)
			if v < 0 || v > 1 {
				t.Fatalf("weight [%d,%d] = %v out of [0,1]", b, m, v)
			}
			sum += v
		}
		if sum == 0 {
			t.Errorf("mel filter %d is empty", m)
		}
	}
}

func TestVideoPreprocessEndToEnd(t *testing.T) {
	pixels := 8
	k := VideoPreprocess(pixels)
	yuv := tensor.New(tensor.Uint8, pixels, 3)
	for i := 0; i < pixels; i++ {
		yuv.Set(float64(16*i), i, 0) // luma ramp
		yuv.Set(128, i, 1)           // neutral chroma
		yuv.Set(128, i, 2)
	}
	out, err := Run(k, map[string]*tensor.Tensor{
		"yuv": yuv, "csc": CSCMatrix(), "bias": CSCBiasProjected(),
	})
	if err != nil {
		t.Fatal(err)
	}
	nchw := out["nchw"]
	if nchw.Dim(0) != 3 || nchw.Dim(1) != pixels {
		t.Fatalf("output shape %v, want [3 %d]", nchw.Shape(), pixels)
	}
	// Neutral chroma means R=G=B=Y; normalized value is Y*127/255-63.5.
	for i := 0; i < pixels; i++ {
		y := float64(16 * i)
		want := math.Round(y*127.0/255.0 - 63.5)
		if want > 127 {
			want = 127
		}
		for c := 0; c < 3; c++ {
			got := nchw.At(c, i)
			if math.Abs(got-want) > 1 { // float32 CSC rounding
				t.Errorf("nchw[%d,%d] = %v, want ≈%v", c, i, got, want)
			}
		}
	}
}

func TestSignalNormalizeZeroMean(t *testing.T) {
	batch, bins := 3, 16
	k := SignalNormalize(batch, bins)
	freq := tensor.New(tensor.Complex64, batch, bins)
	for b := 0; b < batch; b++ {
		for f := 0; f < bins; f++ {
			freq.SetComplex(complex(float64(b+f), 0.5), b, f)
		}
	}
	out, err := Run(k, map[string]*tensor.Tensor{"freq": freq})
	if err != nil {
		t.Fatal(err)
	}
	obs := out["obs"]
	// Mean-centering: each row of obs must sum to ~0.
	for b := 0; b < batch; b++ {
		var sum float64
		for f := 0; f < bins; f++ {
			sum += obs.At(b, f)
		}
		if math.Abs(sum) > 1e-3 {
			t.Errorf("row %d sum = %v, want ~0", b, sum)
		}
	}
}

func TestRecordFrameSanitizes(t *testing.T) {
	k := RecordFrame(2, 4)
	plain := tensor.FromBytes([]byte{0, 'a', 200, '\n', 'x', 'y', 'z', 7}, 8)
	out, err := Run(k, map[string]*tensor.Tensor{"plain": plain})
	if err != nil {
		t.Fatal(err)
	}
	recs := out["records"]
	if recs.Dim(0) != 2 || recs.Dim(1) != 4 {
		t.Fatalf("shape %v", recs.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			v := recs.At(i, j)
			if v < 9 || v > 126 {
				t.Errorf("record byte [%d,%d] = %v outside printable window", i, j, v)
			}
		}
	}
	if recs.At(0, 1) != 'a' || recs.At(1, 0) != 'x' {
		t.Error("printable bytes were altered")
	}
}

func TestColumnPackParsesKeysAndAmounts(t *testing.T) {
	// Two rows: key (6 digits) + amount (4 digits) + 2 payload bytes.
	row1 := append([]byte("0012340077"), 0xAA, 0xBB)
	row2 := append([]byte("9876543210"), 0xCC, 0xDD)
	raw := append(row1, row2...)
	k := ColumnPack(2, 6, 4, 2)
	rows := tensor.FromBytes(raw, 2, 12)
	out, err := Run(k, map[string]*tensor.Tensor{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	keys := out["keys"]
	if keys.At(0) != 1234 || keys.At(1) != 987654 {
		t.Errorf("keys = %v %v, want 1234 987654", keys.At(0), keys.At(1))
	}
	amounts := out["amounts"]
	if amounts.At(0) != 77 || amounts.At(1) != 3210 {
		t.Errorf("amounts = %v %v, want 77 3210", amounts.At(0), amounts.At(1))
	}
	paycol := out["paycol"]
	// Columnar payload: paycol[b, r] = payload byte b of row r.
	if paycol.At(0, 0) != 0xAA || paycol.At(1, 0) != 0xBB ||
		paycol.At(0, 1) != 0xCC || paycol.At(1, 1) != 0xDD {
		t.Error("columnar payload wrong")
	}
}

func TestNERPrepTokens(t *testing.T) {
	k := NERPrep(4, 8, 16)
	recs := tensor.New(tensor.Uint8, 4, 8)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			recs.Set(float64(i*8+j+65), i, j)
		}
	}
	out, err := Run(k, map[string]*tensor.Tensor{"records": recs})
	if err != nil {
		t.Fatal(err)
	}
	tok := out["tokens"]
	if tok.Dim(0) != 2 || tok.Dim(1) != 16 {
		t.Fatalf("token shape %v, want [2 16]", tok.Shape())
	}
	if tok.DType() != tensor.Int32 {
		t.Errorf("token dtype %v", tok.DType())
	}
	if tok.At(0, 0) != 65 || tok.At(1, 15) != 31+65 {
		t.Errorf("token values wrong: %v %v", tok.At(0, 0), tok.At(1, 15))
	}
}

func TestSumReduce(t *testing.T) {
	k := SumReduce(3, 4)
	parts := tensor.FromFloat32([]float32{
		1, 2, 3, 4,
		10, 20, 30, 40,
		100, 200, 300, 400,
	}, 3, 4)
	out, err := Run(k, map[string]*tensor.Tensor{"parts": parts})
	if err != nil {
		t.Fatal(err)
	}
	sum := out["sum"]
	want := []float64{111, 222, 333, 444}
	for i, w := range want {
		if got := sum.At(i); got != w {
			t.Errorf("sum[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestLibraryKernelStatsPlausible(t *testing.T) {
	// The paper's restructuring batches are streaming: BytesIn and
	// BytesOut must both be nonzero and Ops must scale with elements.
	kernels := []*Kernel{
		MelSpectrogram(64, 128, 32),
		VideoPreprocess(1024),
		SignalNormalize(16, 256),
		RecordFrame(128, 64),
		ColumnPack(256, 6, 7, 10),
		NERPrep(128, 64, 128),
		SumReduce(8, 512),
	}
	for _, k := range kernels {
		st := k.Stats()
		if st.BytesIn <= 0 || st.BytesOut <= 0 {
			t.Errorf("%s: zero traffic: %+v", k.Name, st)
		}
		if st.Elems <= 0 {
			t.Errorf("%s: zero elements", k.Name)
		}
	}
}

func TestVecNormalizeUnitNorm(t *testing.T) {
	nq, dim := 4, 32
	k := VecNormalize(nq, dim)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	vecs := tensor.New(tensor.Float32, nq, dim)
	for q := 0; q < nq; q++ {
		for d := 0; d < dim; d++ {
			vecs.Set(float64(q+1)*math.Sin(float64(d+1)), q, d)
		}
	}
	out, err := Run(k, map[string]*tensor.Tensor{"vecs": vecs})
	if err != nil {
		t.Fatal(err)
	}
	q8 := out["qvecs"]
	// After L2 normalization and ×127, each row's norm is ≈127 regardless
	// of the input scale — rows 0 and 3 differ 4× in magnitude.
	for q := 0; q < nq; q++ {
		var ss float64
		for d := 0; d < dim; d++ {
			v := q8.At(q, d)
			ss += v * v
			if v < -128 || v > 127 {
				t.Fatalf("quantized value %v out of int8", v)
			}
		}
		norm := math.Sqrt(ss)
		if norm < 120 || norm > 134 {
			t.Errorf("row %d quantized norm %.1f, want ≈127", q, norm)
		}
	}
}
