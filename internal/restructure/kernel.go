package restructure

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"

	"dmx/internal/tensor"
)

// Dir classifies a kernel parameter.
type Dir int

// Parameter directions. In parameters arrive from the upstream
// accelerator (or are constant weights), Out parameters feed the
// downstream accelerator, and Temp parameters are kernel-internal
// scratch allocated by the executor.
const (
	In Dir = iota
	Out
	Temp
)

func (d Dir) String() string {
	switch d {
	case In:
		return "in"
	case Out:
		return "out"
	case Temp:
		return "temp"
	}
	return fmt.Sprintf("Dir(%d)", int(d))
}

// Param declares one named tensor the kernel touches.
type Param struct {
	Name  string
	DType tensor.DType
	Shape []int
	Dir   Dir
}

// NumElems reports the parameter's element count.
func (p *Param) NumElems() int {
	n := 1
	for _, d := range p.Shape {
		n *= d
	}
	return n
}

// SizeBytes reports the parameter's payload size.
func (p *Param) SizeBytes() int { return p.NumElems() * p.DType.Size() }

// Stage is one step of a kernel. Stages run in order; each names the
// parameters it reads and the single parameter it writes.
type Stage interface {
	// Kind returns a short operator name ("map", "reduce", "matmul", ...).
	Kind() string
	// Reads lists the parameter names the stage consumes.
	Reads() []string
	// Writes names the parameter the stage produces.
	Writes() string
	// Validate checks the stage against the kernel's parameter table.
	Validate(k *Kernel) error
	// Run executes the stage over materialized tensors.
	Run(env map[string]*tensor.Tensor) error
	// Stats reports the stage's work metrics for the cost models.
	Stats(k *Kernel) StageStats
}

// StageStats captures the work a stage performs, in units the CPU and DRX
// cost models consume.
type StageStats struct {
	// Elems is the number of output elements produced.
	Elems int64
	// Ops is the number of arithmetic operations (per the expression
	// tree; multiply-accumulate counts as 2).
	Ops int64
	// BytesIn and BytesOut are the streaming traffic of the stage.
	BytesIn  int64
	BytesOut int64
	// VectorFriendly distinguishes stages with unit-stride inner loops
	// (map, typecast, matmul) from permutation-heavy stages (transpose,
	// strided gather) that defeat hardware prefetchers.
	VectorFriendly bool
}

// Add accumulates s2 into s.
func (s *StageStats) Add(s2 StageStats) {
	s.Elems += s2.Elems
	s.Ops += s2.Ops
	s.BytesIn += s2.BytesIn
	s.BytesOut += s2.BytesOut
}

// Kernel is a complete restructuring program: typed parameters plus an
// ordered list of stages. A kernel is immutable once built; mutating
// Params or Stages after the first Fingerprint call is not supported.
type Kernel struct {
	Name   string
	Params []Param
	Stages []Stage

	// fp memoizes Fingerprint. Rendering stage structure goes through
	// fmt's reflection and costs about as much as a small compile, which
	// would cancel the compile cache's win on the dispatch hot loop;
	// pipelines hold one *Kernel per hop and enqueue it repeatedly, so
	// one rendering per kernel amortizes to nothing. An atomic pointer
	// keeps a concurrent first call safe: racing computations produce
	// identical strings, so last-write-wins is harmless.
	fp atomic.Pointer[string]
}

// Signature identifies the kernel's name and exact geometry — two
// kernels with equal signatures compile to identical DRX programs, so
// callers may cache per-signature results (e.g. simulated timings).
func (k *Kernel) Signature() string {
	var b strings.Builder
	b.WriteString(k.Name)
	for i := range k.Params {
		p := &k.Params[i]
		fmt.Fprintf(&b, "|%s:%v%v", p.Name, p.DType, p.Shape)
	}
	return b.String()
}

// Fingerprint extends Signature with the structure of every stage —
// kind, operand wiring, access matrices, expression trees. Two kernels
// with equal fingerprints are the same program, so the fingerprint is a
// sound key for caching *compiled* artifacts (internal/drxc keys its
// process-wide program cache on it). Signature alone is not: ad-hoc
// kernels (fuzzers, user programs) can reuse a name and geometry with
// different stages.
func (k *Kernel) Fingerprint() string {
	if p := k.fp.Load(); p != nil {
		return *p
	}
	var b strings.Builder
	b.WriteString(k.Signature())
	for _, s := range k.Stages {
		// Render the stage's concrete value, not the interface: fmt's
		// 'v' verb prefers a Stringer, and stage String methods are
		// compact diagnostics that omit fields (*MapStage.String drops
		// Ins and Accs — cache poison). Dereferencing first strips a
		// pointer-receiver String from the method set, so %+v falls
		// through to field-by-field reflection: every exported field —
		// operand wiring, access matrices — lands in the key
		// deterministically, while Expr trees still render completely
		// via their (value-receiver, lossless) String methods.
		v := reflect.ValueOf(s)
		for v.Kind() == reflect.Pointer && !v.IsNil() {
			v = v.Elem()
		}
		fmt.Fprintf(&b, "|%T%+v", s, v.Interface())
	}
	s := b.String()
	k.fp.Store(&s)
	return s
}

// Param looks up a parameter by name.
func (k *Kernel) Param(name string) (*Param, bool) {
	for i := range k.Params {
		if k.Params[i].Name == name {
			return &k.Params[i], true
		}
	}
	return nil, false
}

// Inputs returns the kernel's In parameters in declaration order.
func (k *Kernel) Inputs() []*Param { return k.byDir(In) }

// Outputs returns the kernel's Out parameters in declaration order.
func (k *Kernel) Outputs() []*Param { return k.byDir(Out) }

func (k *Kernel) byDir(d Dir) []*Param {
	var out []*Param
	for i := range k.Params {
		if k.Params[i].Dir == d {
			out = append(out, &k.Params[i])
		}
	}
	return out
}

// InputBytes sums the payload of all In parameters — the batch size the
// upstream accelerator hands over.
func (k *Kernel) InputBytes() int64 {
	var n int64
	for _, p := range k.Inputs() {
		n += int64(p.SizeBytes())
	}
	return n
}

// OutputBytes sums the payload of all Out parameters.
func (k *Kernel) OutputBytes() int64 {
	var n int64
	for _, p := range k.Outputs() {
		n += int64(p.SizeBytes())
	}
	return n
}

// Stats aggregates stage statistics over the whole kernel.
func (k *Kernel) Stats() StageStats {
	var total StageStats
	for _, s := range k.Stages {
		total.Add(s.Stats(k))
	}
	return total
}

// Validate checks internal consistency: unique parameter names, stages
// referencing declared parameters, no stage writing an In parameter, and
// per-stage shape agreement.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("restructure: kernel has no name")
	}
	seen := make(map[string]bool, len(k.Params))
	for _, p := range k.Params {
		if p.Name == "" {
			return fmt.Errorf("restructure: %s: unnamed parameter", k.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("restructure: %s: duplicate parameter %q", k.Name, p.Name)
		}
		seen[p.Name] = true
		for _, d := range p.Shape {
			if d <= 0 {
				return fmt.Errorf("restructure: %s: parameter %q has non-positive dim", k.Name, p.Name)
			}
		}
	}
	if len(k.Stages) == 0 {
		return fmt.Errorf("restructure: %s: kernel has no stages", k.Name)
	}
	written := make(map[string]bool)
	for i, s := range k.Stages {
		for _, r := range s.Reads() {
			p, ok := k.Param(r)
			if !ok {
				return fmt.Errorf("restructure: %s: stage %d reads undeclared %q", k.Name, i, r)
			}
			if p.Dir != In && !written[r] {
				return fmt.Errorf("restructure: %s: stage %d reads %q before it is written", k.Name, i, r)
			}
		}
		w := s.Writes()
		p, ok := k.Param(w)
		if !ok {
			return fmt.Errorf("restructure: %s: stage %d writes undeclared %q", k.Name, i, w)
		}
		if p.Dir == In {
			return fmt.Errorf("restructure: %s: stage %d writes input parameter %q", k.Name, i, w)
		}
		if err := s.Validate(k); err != nil {
			return fmt.Errorf("restructure: %s: stage %d (%s): %w", k.Name, i, s.Kind(), err)
		}
		written[w] = true
	}
	for _, p := range k.Outputs() {
		if !written[p.Name] {
			return fmt.Errorf("restructure: %s: output %q never written", k.Name, p.Name)
		}
	}
	return nil
}
