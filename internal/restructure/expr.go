package restructure

import (
	"fmt"
	"math"
	"strings"
)

// UnOp is a unary arithmetic operator in a Map expression.
type UnOp int

// Unary operators. Mag2 maps a complex input to |z|² (the spectrogram
// power operator); Re and Im project complex components.
const (
	Neg UnOp = iota
	Abs
	Sqrt
	Log // natural log, clamped: Log(x≤0) = Log(tiny)
	Exp
	Re
	Im
	Mag2
	Floor
)

var unOpNames = [...]string{
	Neg: "neg", Abs: "abs", Sqrt: "sqrt", Log: "log", Exp: "exp",
	Re: "re", Im: "im", Mag2: "mag2", Floor: "floor",
}

func (op UnOp) String() string {
	if int(op) < len(unOpNames) {
		return unOpNames[op]
	}
	return fmt.Sprintf("UnOp(%d)", int(op))
}

// BinOp is a binary arithmetic operator in a Map expression.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Min
	Max
	Mod
)

var binOpNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Min: "min", Max: "max", Mod: "mod",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", int(op))
}

// Expr is a scalar expression evaluated per output element of a Map
// stage. Leaves are input references (Input) and constants (Const);
// interior nodes are Unary and Binary operations. Complex inputs flow
// through Re/Im/Mag2 into the real domain.
type Expr interface {
	// eval computes the expression given per-input complex values.
	eval(in []complex128) float64
	// ops counts arithmetic operations for the cost models.
	ops() int64
	// maxInput returns the largest Input index referenced, -1 if none.
	maxInput() int
	String() string
}

// Input references the value of the stage's i-th read parameter at the
// access-mapped index.
type Input struct{ I int }

func (e Input) eval(in []complex128) float64 { return real(in[e.I]) }
func (e Input) ops() int64                   { return 0 }
func (e Input) maxInput() int                { return e.I }
func (e Input) String() string               { return fmt.Sprintf("in%d", e.I) }

// Const is a literal constant.
type Const struct{ V float64 }

func (e Const) eval([]complex128) float64 { return e.V }
func (e Const) ops() int64                { return 0 }
func (e Const) maxInput() int             { return -1 }
func (e Const) String() string            { return fmt.Sprintf("%g", e.V) }

// Unary applies a UnOp. For Re/Im/Mag2 the operand must be a bare Input
// (they reinterpret the raw complex value rather than a computed real).
type Unary struct {
	Op UnOp
	X  Expr
}

func (e Unary) eval(in []complex128) float64 {
	switch e.Op {
	case Re, Im, Mag2:
		inp, ok := e.X.(Input)
		if !ok {
			panic("restructure: complex projection over non-input expression")
		}
		z := in[inp.I]
		switch e.Op {
		case Re:
			return real(z)
		case Im:
			return imag(z)
		default:
			return real(z)*real(z) + imag(z)*imag(z)
		}
	}
	x := e.X.eval(in)
	switch e.Op {
	case Neg:
		return -x
	case Abs:
		return math.Abs(x)
	case Sqrt:
		if x < 0 {
			return 0
		}
		return math.Sqrt(x)
	case Log:
		if x < 1e-30 {
			x = 1e-30
		}
		return math.Log(x)
	case Exp:
		return math.Exp(x)
	case Floor:
		return math.Floor(x)
	}
	panic(fmt.Sprintf("restructure: unknown unary op %d", int(e.Op)))
}

func (e Unary) ops() int64 { return 1 + e.X.ops() }

func (e Unary) maxInput() int { return e.X.maxInput() }

func (e Unary) String() string { return fmt.Sprintf("%s(%s)", e.Op, e.X) }

// Binary applies a BinOp to two subexpressions.
type Binary struct {
	Op   BinOp
	X, Y Expr
}

func (e Binary) eval(in []complex128) float64 {
	x, y := e.X.eval(in), e.Y.eval(in)
	switch e.Op {
	case Add:
		return x + y
	case Sub:
		return x - y
	case Mul:
		return x * y
	case Div:
		if y == 0 {
			return 0
		}
		return x / y
	case Min:
		return math.Min(x, y)
	case Max:
		return math.Max(x, y)
	case Mod:
		if y == 0 {
			return 0
		}
		return math.Mod(x, y)
	}
	panic(fmt.Sprintf("restructure: unknown binary op %d", int(e.Op)))
}

func (e Binary) ops() int64 { return 1 + e.X.ops() + e.Y.ops() }

func (e Binary) maxInput() int {
	x, y := e.X.maxInput(), e.Y.maxInput()
	if x > y {
		return x
	}
	return y
}

func (e Binary) String() string { return fmt.Sprintf("%s(%s, %s)", e.Op, e.X, e.Y) }

// Convenience constructors keep kernel definitions readable.

// InN references input i.
func InN(i int) Expr { return Input{I: i} }

// C is a constant.
func C(v float64) Expr { return Const{V: v} }

// AddE builds x + y.
func AddE(x, y Expr) Expr { return Binary{Op: Add, X: x, Y: y} }

// SubE builds x - y.
func SubE(x, y Expr) Expr { return Binary{Op: Sub, X: x, Y: y} }

// MulE builds x * y.
func MulE(x, y Expr) Expr { return Binary{Op: Mul, X: x, Y: y} }

// DivE builds x / y.
func DivE(x, y Expr) Expr { return Binary{Op: Div, X: x, Y: y} }

// MulAdd builds x*a + b.
func MulAdd(x Expr, a, b float64) Expr { return AddE(MulE(x, C(a)), C(b)) }

// Mag2E builds |in_i|² for a complex input.
func Mag2E(i int) Expr { return Unary{Op: Mag2, X: Input{I: i}} }

// LogE builds log(x).
func LogE(x Expr) Expr { return Unary{Op: Log, X: x} }

// SqrtE builds sqrt(x).
func SqrtE(x Expr) Expr { return Unary{Op: Sqrt, X: x} }

// exprString formats an expression list for diagnostics.
func exprString(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}
