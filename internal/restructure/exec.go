package restructure

import (
	"fmt"

	"dmx/internal/tensor"
)

// Run executes a kernel with the reference interpreter: stages run in
// order over materialized tensors. inputs must supply every In parameter
// with matching dtype and shape; the returned map holds the Out
// parameters. Run is the functional ground truth that the DRX simulator's
// results are checked against.
func Run(k *Kernel, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	env := make(map[string]*tensor.Tensor, len(k.Params))
	for i := range k.Params {
		p := &k.Params[i]
		switch p.Dir {
		case In:
			t, ok := inputs[p.Name]
			if !ok {
				return nil, fmt.Errorf("restructure: %s: missing input %q", k.Name, p.Name)
			}
			if t.DType() != p.DType {
				return nil, fmt.Errorf("restructure: %s: input %q dtype %v, want %v",
					k.Name, p.Name, t.DType(), p.DType)
			}
			if !shapeEq(t.Shape(), p.Shape) {
				return nil, fmt.Errorf("restructure: %s: input %q shape %v, want %v",
					k.Name, p.Name, t.Shape(), p.Shape)
			}
			env[p.Name] = t
		case Out, Temp:
			env[p.Name] = tensor.New(p.DType, p.Shape...)
		}
	}
	for i, s := range k.Stages {
		if err := s.Run(env); err != nil {
			return nil, fmt.Errorf("restructure: %s: stage %d (%s): %w", k.Name, i, s.Kind(), err)
		}
	}
	out := make(map[string]*tensor.Tensor)
	for _, p := range k.Outputs() {
		out[p.Name] = env[p.Name]
	}
	return out, nil
}
