// Package restructure defines the data restructuring kernel IR.
//
// A restructuring kernel describes how the output tensors of one
// accelerator become the input tensors of the next: layout permutations,
// dtype conversions, spectrogram/mel transforms, record framing, column
// packing, and the other "data motion" computations the paper identifies
// (Sec. IV). The IR is an affine loop-nest language: every stage iterates
// a rectangular index space and reads its inputs through affine access
// maps. That restriction is what makes the kernels compilable to the DRX
// ISA (internal/drxc), costable on the CPU model (internal/cpu), and
// executable by the reference interpreter in this package.
package restructure
