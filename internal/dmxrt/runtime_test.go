package dmxrt

import (
	"strings"
	"testing"

	"dmx/internal/accel"
	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// buildSoundChain assembles the Sound Detection chain on the runtime:
// FFT accelerator → DRX (mel spectrogram) → SVM accelerator.
func buildSoundChain(t *testing.T) (*Context, *CommandQueue, *CommandQueue, *CommandQueue, soundDims) {
	t.Helper()
	d := soundDims{frames: 8, win: 64, mels: 8, classes: 4}
	p := NewPlatform()
	fftSpec, err := accel.NewFFT(d.frames, d.win)
	if err != nil {
		t.Fatal(err)
	}
	fftDev := p.AddAccelerator(fftSpec)
	svmDev := p.AddAccelerator(accel.NewSVM(d.frames, d.mels, d.classes, 7))
	drxDev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.NewContext()
	return ctx, ctx.Queue(fftDev), ctx.Queue(drxDev), ctx.Queue(svmDev), d
}

type soundDims struct{ frames, win, mels, classes int }

func genAudio(d soundDims) *tensor.Tensor {
	audio := tensor.New(tensor.Float32, d.frames, d.win)
	for f := 0; f < d.frames; f++ {
		for i := 0; i < d.win; i++ {
			audio.Set(float64((f*31+i*7)%17)/17.0-0.5, f, i)
		}
	}
	return audio
}

func TestChainedPipelineThroughRuntime(t *testing.T) {
	ctx, fftQ, drxQ, svmQ, d := buildSoundChain(t)
	bins := d.win / 2

	audio := ctx.CreateBuffer("audio", genAudio(d))
	spectrum := ctx.CreateEmptyBuffer("spectrum", tensor.Complex64, d.frames, bins)
	melw := ctx.CreateBuffer("melw", restructure.MelWeights(bins, d.mels))
	logmel := ctx.CreateEmptyBuffer("logmel", tensor.Float32, d.frames, d.mels)
	labels := ctx.CreateEmptyBuffer("labels", tensor.Int32, d.frames)

	ev1 := fftQ.EnqueueKernel(
		map[string]*Buffer{"audio": audio},
		map[string]*Buffer{"spectrum": spectrum})
	ev2 := drxQ.EnqueueRestructure(restructure.MelSpectrogram(d.frames, bins, d.mels),
		map[string]*Buffer{"spectrum": spectrum, "melw": melw},
		map[string]*Buffer{"logmel": logmel}, ev1)
	ev3 := svmQ.EnqueueKernel(
		map[string]*Buffer{"features": logmel},
		map[string]*Buffer{"labels": labels}, ev2)

	// Nothing runs before the blocking wait (non-blocking enqueue).
	if ev1.Done() || ev3.Done() {
		t.Fatal("commands executed eagerly")
	}
	if err := ev3.Wait(); err != nil {
		t.Fatal(err)
	}
	// Dependencies executed transitively.
	if !ev1.Done() || !ev2.Done() {
		t.Error("dependencies did not execute")
	}
	for f := 0; f < d.frames; f++ {
		v := labels.Tensor().At(f)
		if v < 0 || v >= float64(d.classes) {
			t.Errorf("label[%d] = %v out of range", f, v)
		}
	}
	if err := ctx.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeMatchesDirectExecution(t *testing.T) {
	// The runtime-chained result must equal running the same pieces by
	// hand with the reference restructuring interpreter.
	ctx, fftQ, drxQ, svmQ, d := buildSoundChain(t)
	bins := d.win / 2
	audio := ctx.CreateBuffer("audio", genAudio(d))
	spectrum := ctx.CreateEmptyBuffer("spectrum", tensor.Complex64, d.frames, bins)
	melw := ctx.CreateBuffer("melw", restructure.MelWeights(bins, d.mels))
	logmel := ctx.CreateEmptyBuffer("logmel", tensor.Float32, d.frames, d.mels)
	labels := ctx.CreateEmptyBuffer("labels", tensor.Int32, d.frames)

	e1 := fftQ.EnqueueKernel(map[string]*Buffer{"audio": audio}, map[string]*Buffer{"spectrum": spectrum})
	e2 := drxQ.EnqueueRestructure(restructure.MelSpectrogram(d.frames, bins, d.mels),
		map[string]*Buffer{"spectrum": spectrum, "melw": melw},
		map[string]*Buffer{"logmel": logmel}, e1)
	svmQ.EnqueueKernel(map[string]*Buffer{"features": logmel}, map[string]*Buffer{"labels": labels}, e2)
	if err := ctx.Finish(); err != nil {
		t.Fatal(err)
	}

	fftSpec, _ := accel.NewFFT(d.frames, d.win)
	spec, err := fftSpec.Run(map[string]*tensor.Tensor{"audio": genAudio(d)})
	if err != nil {
		t.Fatal(err)
	}
	mel, err := restructure.Run(restructure.MelSpectrogram(d.frames, bins, d.mels),
		map[string]*tensor.Tensor{"spectrum": spec["spectrum"], "melw": restructure.MelWeights(bins, d.mels)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := accel.NewSVM(d.frames, d.mels, d.classes, 7).Run(
		map[string]*tensor.Tensor{"features": mel["logmel"]})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want["labels"], labels.Tensor()) {
		t.Error("runtime chain diverges from direct execution")
	}
}

func TestInOrderQueueSemantics(t *testing.T) {
	// Two commands on ONE queue with no explicit dependency still run in
	// order: the copy sees the kernel's output.
	p := NewPlatform()
	drxDev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.NewContext()
	q := ctx.Queue(drxDev)

	in := ctx.CreateBuffer("in", tensor.FromBytes([]byte{65, 66, 67, 68, 69, 70, 71, 72}, 8))
	mid := ctx.CreateEmptyBuffer("mid", tensor.Uint8, 2, 4)
	out := ctx.CreateEmptyBuffer("out", tensor.Uint8, 2, 4)
	q.EnqueueRestructure(restructure.RecordFrame(2, 4),
		map[string]*Buffer{"plain": in}, map[string]*Buffer{"records": mid})
	last := q.EnqueueCopy(out, mid) // no explicit event: in-order dependency
	if err := last.Wait(); err != nil {
		t.Fatal(err)
	}
	if out.Tensor().At(1, 3) != 72 {
		t.Errorf("copy observed stale buffer: %v", out.Tensor())
	}
}

func TestKernelOnWrongDeviceFails(t *testing.T) {
	p := NewPlatform()
	drxDev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fftSpec, _ := accel.NewFFT(2, 64)
	fftDev := p.AddAccelerator(fftSpec)
	ctx := p.NewContext()

	// Application kernel on a DRX: rejected.
	ev := ctx.Queue(drxDev).EnqueueKernel(nil, nil)
	if err := ev.Wait(); err == nil || !strings.Contains(err.Error(), "cannot run application kernels") {
		t.Errorf("want device-kind error, got %v", err)
	}
	// Restructuring on an accelerator: rejected.
	ev2 := ctx.Queue(fftDev).EnqueueRestructure(restructure.RecordFrame(2, 4), nil, nil)
	if err := ev2.Wait(); err == nil || !strings.Contains(err.Error(), "not a DRX") {
		t.Errorf("want not-a-DRX error, got %v", err)
	}
}

func TestDependencyFailurePropagates(t *testing.T) {
	p := NewPlatform()
	drxDev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fftSpec, _ := accel.NewFFT(2, 64)
	fftDev := p.AddAccelerator(fftSpec)
	ctx := p.NewContext()

	// First command fails (missing input); the dependent must surface it.
	bad := ctx.Queue(fftDev).EnqueueKernel(nil, nil)
	buf := ctx.CreateEmptyBuffer("x", tensor.Uint8, 8)
	dep := ctx.Queue(drxDev).EnqueueCopy(buf, buf, bad)
	if err := dep.Wait(); err == nil || !strings.Contains(err.Error(), "dependency") {
		t.Errorf("want dependency error, got %v", err)
	}
	if ctx.Finish() == nil {
		t.Error("context Finish swallowed the failure")
	}
}

func TestCopySizeMismatch(t *testing.T) {
	p := NewPlatform()
	drxDev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.NewContext()
	a := ctx.CreateEmptyBuffer("a", tensor.Uint8, 8)
	b := ctx.CreateEmptyBuffer("b", tensor.Uint8, 4)
	if err := ctx.Queue(drxDev).EnqueueCopy(a, b).Wait(); err == nil {
		t.Error("mismatched copy accepted")
	}
}

func TestPlatformEnumeration(t *testing.T) {
	p := NewPlatform()
	fftSpec, _ := accel.NewFFT(2, 64)
	p.AddAccelerator(fftSpec)
	if _, err := p.AddDRX(drx.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	devs := p.Devices()
	if len(devs) != 2 {
		t.Fatalf("%d devices", len(devs))
	}
	if devs[0].Kind() != AcceleratorDevice || devs[1].Kind() != DRXDevice {
		t.Error("device kinds wrong")
	}
	if !strings.Contains(devs[0].Name(), "fft") {
		t.Errorf("device name %q", devs[0].Name())
	}
}
