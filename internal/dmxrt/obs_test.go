package dmxrt

import (
	"bytes"
	"testing"

	"dmx/internal/drx"
	"dmx/internal/obs"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// A traced host program produces one enqueue instant and one execution
// span per command, stamped on the context's logical clock in
// dependency-resolved execution order.
func TestRecorderCapturesCommandStream(t *testing.T) {
	ctx, fftQ, drxQ, svmQ, d := buildSoundChain(t)
	rec := obs.New()
	ctx.SetRecorder(rec)
	bins := d.win / 2

	audio := ctx.CreateBuffer("audio", genAudio(d))
	spectrum := ctx.CreateEmptyBuffer("spectrum", tensor.Complex64, d.frames, bins)
	melw := ctx.CreateBuffer("melw", restructure.MelWeights(bins, d.mels))
	logmel := ctx.CreateEmptyBuffer("logmel", tensor.Float32, d.frames, d.mels)
	labels := ctx.CreateEmptyBuffer("labels", tensor.Int32, d.frames)

	e1 := fftQ.EnqueueKernel(map[string]*Buffer{"audio": audio}, map[string]*Buffer{"spectrum": spectrum})
	e2 := drxQ.EnqueueRestructure(restructure.MelSpectrogram(d.frames, bins, d.mels),
		map[string]*Buffer{"spectrum": spectrum, "melw": melw},
		map[string]*Buffer{"logmel": logmel}, e1)
	svmQ.EnqueueKernel(map[string]*Buffer{"features": logmel}, map[string]*Buffer{"labels": labels}, e2)
	if rec.Len() != 3 {
		t.Fatalf("want 3 enqueue instants before Finish, got %d events", rec.Len())
	}
	if err := ctx.Finish(); err != nil {
		t.Fatal(err)
	}

	var instants, spans int
	var lastEnd obs.Time
	for _, ev := range rec.Events() {
		if ev.Type != obs.TypeCommand {
			t.Fatalf("unexpected event type %v", ev.Type)
		}
		switch ev.Kind {
		case obs.KindInstant:
			instants++
		case obs.KindSpan:
			spans++
			if ev.TS != lastEnd {
				t.Errorf("span %q starts at %d, want contiguous from %d", ev.Name, ev.TS, lastEnd)
			}
			lastEnd = ev.TS + obs.Time(ev.Dur)
			if ev.Track == "" || ev.Name == "" {
				t.Errorf("span missing track/name: %+v", ev)
			}
		}
	}
	if instants != 3 || spans != 3 {
		t.Fatalf("want 3 instants + 3 spans, got %d + %d", instants, spans)
	}

	// The span order is dependency-resolved execution order: FFT kernel,
	// DRX restructure, SVM kernel.
	var order []string
	for _, ev := range rec.Events() {
		if ev.Kind == obs.KindSpan {
			order = append(order, ev.Track)
		}
	}
	if order[0] != fftQ.Device().Name() || order[1] != drxQ.Device().Name() || order[2] != svmQ.Device().Name() {
		t.Errorf("execution order %v", order)
	}

	// The stream renders to a valid Perfetto trace.
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("runtime trace does not validate: %v", err)
	}
}

// An untraced context must behave exactly as before: no recorder, no
// events, identical results.
func TestNilRecorderIsDefault(t *testing.T) {
	p := NewPlatform()
	drxDev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.NewContext()
	if ctx.rec != nil {
		t.Fatal("fresh context has a recorder")
	}
	in := ctx.CreateBuffer("in", tensor.FromBytes([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 8))
	out := ctx.CreateEmptyBuffer("out", tensor.Uint8, 2, 4)
	ev := ctx.Queue(drxDev).EnqueueRestructure(restructure.RecordFrame(2, 4),
		map[string]*Buffer{"plain": in}, map[string]*Buffer{"records": out})
	if err := ev.Wait(); err != nil {
		t.Fatal(err)
	}
}
