package dmxrt

import (
	"testing"

	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// benchFixture is a DRX queue dispatching one restructuring hop over and
// over — the serving layer's steady state. Pipelines build each hop's
// *Kernel once and enqueue it per request, so the fixture reuses one
// kernel object the same way. The kernel is the canonical restructuring
// hop — a 192 KB float32 transpose on the Transposition Engine path:
// pure data motion, i.e. the workload the DRX data plane exists for.
type benchFixture struct {
	ctx     *Context
	q       *CommandQueue
	kernel  *restructure.Kernel
	inputs  map[string]*Buffer
	outputs map[string]*Buffer
	machine *drx.Machine
	rawIn   map[string]*tensor.Tensor
}

func newBenchFixture(tb testing.TB) *benchFixture {
	tb.Helper()
	rows, cols := 192, 256
	p := NewPlatform()
	dev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	ctx := p.NewContext()
	x := tensor.New(tensor.Float32, rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			x.Set(float64((i*131+j*17)%997)/8, i, j)
		}
	}
	k := &restructure.Kernel{
		Name: "hop-transpose",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{rows, cols}, Dir: restructure.In},
			{Name: "y", DType: tensor.Float32, Shape: []int{cols, rows}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.TransposeStage{Out: "y", In: "x", Perm: []int{1, 0}},
		},
	}
	f := &benchFixture{
		ctx:    ctx,
		q:      ctx.Queue(dev),
		kernel: k,
		inputs: map[string]*Buffer{
			"x": ctx.CreateBuffer("x", x),
		},
		outputs: map[string]*Buffer{
			"y": ctx.CreateEmptyBuffer("y", tensor.Float32, cols, rows),
		},
		machine: dev.machine,
		rawIn:   map[string]*tensor.Tensor{"x": x},
	}
	return f
}

// dispatch enqueues one restructure and forces it, then drops the
// retired event so the context does not accumulate history across
// benchmark iterations.
func (f *benchFixture) dispatch(tb testing.TB) {
	ev := f.q.EnqueueRestructure(f.kernel, f.inputs, f.outputs)
	if err := ev.Wait(); err != nil {
		tb.Fatal(err)
	}
	f.ctx.pending = f.ctx.pending[:0]
	f.q.last = nil
}

// baselineDispatch reproduces the pre-cache, pre-fast-path dispatch:
// compile the kernel from scratch and run it on the element interpreter.
func (f *benchFixture) baselineDispatch(tb testing.TB) {
	c, err := drxc.Compile(f.kernel, drx.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	f.machine.ResetDRAM()
	if _, _, err := drxc.Execute(c, f.machine, f.rawIn); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkEnqueueRestructure measures the steady-state dispatch path.
//
//	cached:    the shipped path — program cache hit, bulk fast paths on
//	recompile: cache bypassed, fast paths on (isolates the cache's win)
//	baseline:  cache bypassed, fast paths off (the pre-optimization path)
//
// cached vs baseline is the dispatch-loop speedup this package claims;
// the differential tests prove the three produce identical bytes.
func BenchmarkEnqueueRestructure(b *testing.B) {
	f := newBenchFixture(b)
	f.dispatch(b) // warm the program cache and the machine
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.dispatch(b)
		}
	})
	b.Run("recompile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c, err := drxc.Compile(f.kernel, drx.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			f.machine.ResetDRAM()
			if _, _, err := drxc.Execute(c, f.machine, f.rawIn); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		f.machine.SetFastPath(false)
		defer f.machine.SetFastPath(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.baselineDispatch(b)
		}
	})
}

// TestEnqueueRestructureCachedAllocs pins the dispatch path's allocation
// profile: a cached enqueue allocates a small constant number of objects
// (event bookkeeping, output tensors), well below a per-dispatch
// compilation. The absolute bound is deliberately loose — it catches the
// cache being bypassed (a compiler run allocates far more), not minor
// churn.
func TestEnqueueRestructureCachedAllocs(t *testing.T) {
	f := newBenchFixture(t)
	f.dispatch(t)
	cached := testing.AllocsPerRun(50, func() { f.dispatch(t) })
	baseline := testing.AllocsPerRun(50, func() { f.baselineDispatch(t) })
	if cached > 40 {
		t.Errorf("cached enqueue allocates %.0f objects/op, want <= 40", cached)
	}
	if cached*2 > baseline {
		t.Errorf("cached enqueue (%.0f allocs) not well below per-dispatch compile (%.0f allocs)",
			cached, baseline)
	}
}

// TestEnqueueCopyContiguousAllocs pins the contiguous-copy fast path: a
// large buffer copy must not materialize the source, so its allocation
// count is a small constant independent of payload size.
func TestEnqueueCopyContiguousAllocs(t *testing.T) {
	p := NewPlatform()
	dev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.NewContext()
	q := ctx.Queue(dev)
	src := ctx.CreateBuffer("src", tensor.New(tensor.Float32, 256, 1024)) // 1 MiB
	dst := ctx.CreateEmptyBuffer("dst", tensor.Float32, 256, 1024)
	allocs := testing.AllocsPerRun(20, func() {
		ev := q.EnqueueCopy(dst, src)
		if err := ev.Wait(); err != nil {
			t.Fatal(err)
		}
		ctx.pending = ctx.pending[:0]
		q.last = nil
	})
	if allocs > 10 {
		t.Errorf("contiguous EnqueueCopy allocates %.0f objects/op on a 1 MiB buffer, want <= 10 (no materialization)", allocs)
	}
}

// TestEnqueueCopyStridedSource checks the slow branch still works: a
// transposed (non-contiguous) source must be materialized, and the copy
// must carry the logical element order, not the backing-store order.
func TestEnqueueCopyStridedSource(t *testing.T) {
	p := NewPlatform()
	dev, err := p.AddDRX(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := p.NewContext()
	q := ctx.Queue(dev)
	base := tensor.New(tensor.Float32, 3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			base.Set(float64(10*i+j), i, j)
		}
	}
	view := base.Transpose(1, 0) // 4x3, strided
	if view.IsContiguous() {
		t.Fatal("test premise broken: transpose view is contiguous")
	}
	src := ctx.CreateBuffer("src", view)
	dst := ctx.CreateEmptyBuffer("dst", tensor.Float32, 4, 3)
	if err := q.EnqueueCopy(dst, src).Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if got, want := dst.Tensor().At(i, j), float64(10*j+i); got != want {
				t.Fatalf("dst[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
	}
}
