// Package dmxrt implements the OpenCL-style host programming model of
// Sec. V: a host program creates a context over accelerators and DRXs,
// allocates buffers, and enqueues kernels and data restructuring on
// per-device command queues. Commands execute in order within a queue;
// events express cross-queue dependencies; execution is deferred until a
// Flush/Finish/Wait, mirroring the non-blocking enqueue semantics the
// paper describes — so the control plane stays a plain CPU program while
// the data plane runs on devices.
//
// The runtime is *functional*: enqueued kernels execute the real
// accelerator implementations, and restructuring kernels targeted at a
// DRX device compile and run on the machine simulator, so a host
// program's results are actual bytes. (System-level timing lives in
// internal/dmxsys; this package is the programmability layer.)
package dmxrt
