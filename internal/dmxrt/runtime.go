package dmxrt

import (
	"fmt"

	"dmx/internal/accel"
	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/obs"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// DeviceKind distinguishes application accelerators from DRXs.
type DeviceKind int

// Device kinds.
const (
	AcceleratorDevice DeviceKind = iota
	DRXDevice
)

// Device is one enqueue target.
type Device struct {
	name    string
	kind    DeviceKind
	spec    *accel.Spec
	machine *drx.Machine
}

// Name reports the device's name.
func (d *Device) Name() string { return d.name }

// Kind reports the device's kind.
func (d *Device) Kind() DeviceKind { return d.kind }

// Platform enumerates devices, like PCIe enumeration does in the
// paper's driver stack.
type Platform struct {
	devices []*Device
}

// NewPlatform creates an empty platform.
func NewPlatform() *Platform { return &Platform{} }

// AddAccelerator registers an application accelerator.
func (p *Platform) AddAccelerator(spec *accel.Spec) *Device {
	d := &Device{name: fmt.Sprintf("accel%d:%s", len(p.devices), spec.Name),
		kind: AcceleratorDevice, spec: spec}
	p.devices = append(p.devices, d)
	return d
}

// AddDRX registers a DRX with the given hardware configuration.
func (p *Platform) AddDRX(cfg drx.Config) (*Device, error) {
	m, err := drx.New(cfg)
	if err != nil {
		return nil, err
	}
	d := &Device{name: fmt.Sprintf("drx%d", len(p.devices)), kind: DRXDevice, machine: m}
	p.devices = append(p.devices, d)
	return d, nil
}

// Devices lists registered devices in registration order.
func (p *Platform) Devices() []*Device { return append([]*Device(nil), p.devices...) }

// Buffer is a host-visible data buffer passed between kernels.
type Buffer struct {
	name string
	t    *tensor.Tensor
}

// Tensor exposes the buffer's current contents.
func (b *Buffer) Tensor() *tensor.Tensor { return b.t }

// commandTick is the logical-clock increment per executed command. The
// runtime has no simulated time (timing lives in internal/dmxsys), so
// its trace advances a logical clock: one microsecond of trace time per
// command, which renders legibly in Perfetto while making clear the
// spans order commands rather than measure them.
const commandTick = obs.Duration(1_000_000) // 1 µs in picoseconds

// Context owns buffers and queues for one application.
type Context struct {
	platform *Platform
	buffers  []*Buffer
	queues   []*CommandQueue
	pending  []*Event // global submission order for deterministic execution
	rec      *obs.Recorder
	clock    obs.Time
}

// SetRecorder attaches a structured trace recorder. Every subsequently
// executed command emits one TypeCommand span on its device's track,
// stamped on the context's logical clock (see commandTick); enqueues
// emit TypeCommand instants at the clock's current value. A nil
// recorder (the default) records nothing and costs one branch.
func (c *Context) SetRecorder(r *obs.Recorder) { c.rec = r }

// NewContext creates an execution context on the platform.
func (p *Platform) NewContext() *Context { return &Context{platform: p} }

// CreateBuffer wraps a tensor as a named buffer.
func (c *Context) CreateBuffer(name string, t *tensor.Tensor) *Buffer {
	b := &Buffer{name: name, t: t}
	c.buffers = append(c.buffers, b)
	return b
}

// CreateEmptyBuffer allocates a zeroed buffer of the given shape.
func (c *Context) CreateEmptyBuffer(name string, dt tensor.DType, shape ...int) *Buffer {
	return c.CreateBuffer(name, tensor.New(dt, shape...))
}

// Queue creates an in-order command queue bound to a device.
func (c *Context) Queue(d *Device) *CommandQueue {
	q := &CommandQueue{ctx: c, dev: d}
	c.queues = append(c.queues, q)
	return q
}

// Event tracks one enqueued command. Wait forces execution of the
// command and everything it depends on.
type Event struct {
	ctx  *Context
	dev  *Device
	desc string
	deps []*Event
	run  func() error
	done bool
	err  error
}

// Err reports the command's error after it has executed.
func (e *Event) Err() error { return e.err }

// Done reports whether the command has executed.
func (e *Event) Done() bool { return e.done }

// Wait executes the command (and, transitively, its dependencies) if it
// has not run yet, returning its error. Waiting on an event is the
// blocking-execution mode of the paper's programming model.
func (e *Event) Wait() error {
	if e.done {
		return e.err
	}
	for _, d := range e.deps {
		if err := d.Wait(); err != nil {
			e.done = true
			e.err = fmt.Errorf("dmxrt: dependency %q failed: %w", d.desc, err)
			return e.err
		}
	}
	e.done = true
	begin := e.ctx.clock
	e.err = e.run()
	if e.err != nil {
		e.err = fmt.Errorf("dmxrt: %s: %w", e.desc, e.err)
	}
	if e.ctx.rec != nil && e.dev != nil {
		e.ctx.clock += obs.Time(commandTick)
		e.ctx.rec.Span(begin, commandTick, obs.TypeCommand, obs.PhaseNone, 0,
			e.dev.name, "", e.desc, 0)
	}
	return e.err
}

// CommandQueue is an in-order queue on one device: each enqueued command
// implicitly depends on the queue's previous command, plus any explicit
// events passed at enqueue time.
type CommandQueue struct {
	ctx  *Context
	dev  *Device
	last *Event
}

// Device reports the queue's device.
func (q *CommandQueue) Device() *Device { return q.dev }

func (q *CommandQueue) enqueue(desc string, deps []*Event, run func() error) *Event {
	all := deps
	if q.last != nil {
		all = append(append([]*Event(nil), deps...), q.last)
	}
	ev := &Event{ctx: q.ctx, dev: q.dev, desc: desc, deps: all, run: run}
	q.last = ev
	q.ctx.pending = append(q.ctx.pending, ev)
	q.ctx.rec.Instant(q.ctx.clock, obs.TypeCommand, 0, q.dev.name, "", "", desc, 0)
	return ev
}

// EnqueueKernel schedules the device's application kernel over the given
// input buffers; outputs maps the kernel's output names onto buffers to
// fill. Only accelerator devices accept application kernels.
func (q *CommandQueue) EnqueueKernel(inputs map[string]*Buffer, outputs map[string]*Buffer, deps ...*Event) *Event {
	return q.enqueue("kernel "+q.dev.name, deps, func() error {
		if q.dev.kind != AcceleratorDevice {
			return fmt.Errorf("device %s cannot run application kernels", q.dev.name)
		}
		in := make(map[string]*tensor.Tensor, len(inputs))
		for name, b := range inputs {
			in[name] = b.t
		}
		out, err := q.dev.spec.Run(in)
		if err != nil {
			return err
		}
		return bindOutputs(out, outputs)
	})
}

// EnqueueRestructure schedules a data restructuring kernel. On a DRX
// device the kernel compiles (internal/drxc, through the process-wide
// compiled-program cache, so repeat enqueues of one kernel compile once)
// and executes on the machine simulator; on an accelerator device it is
// rejected — restructuring belongs to DRXs, keeping the separation
// Sec. V prescribes.
func (q *CommandQueue) EnqueueRestructure(k *restructure.Kernel,
	inputs map[string]*Buffer, outputs map[string]*Buffer, deps ...*Event) *Event {

	return q.enqueue("restructure "+k.Name+" on "+q.dev.name, deps, func() error {
		if q.dev.kind != DRXDevice {
			return fmt.Errorf("device %s is not a DRX", q.dev.name)
		}
		c, err := drxc.CompileCached(k, q.dev.machine.Config())
		if err != nil {
			return err
		}
		in := make(map[string]*tensor.Tensor, len(inputs))
		for name, b := range inputs {
			in[name] = b.t
		}
		q.dev.machine.ResetDRAM()
		out, _, err := drxc.Execute(c, q.dev.machine, in)
		if err != nil {
			return err
		}
		return bindOutputs(out, outputs)
	})
}

// EnqueueCopy schedules dst ← src (the explicit buffer transfer command
// of the programming model). A contiguous source copies straight out of
// its backing bytes; only strided views pay a materialization.
func (q *CommandQueue) EnqueueCopy(dst, src *Buffer, deps ...*Event) *Event {
	return q.enqueue(fmt.Sprintf("copy %s→%s", src.name, dst.name), deps, func() error {
		if src.t.SizeBytes() != dst.t.SizeBytes() {
			return fmt.Errorf("copy size mismatch: %d vs %d bytes", src.t.SizeBytes(), dst.t.SizeBytes())
		}
		s := src.t
		if !s.IsContiguous() {
			s = s.Contiguous()
		}
		copy(dst.t.Bytes(), s.Bytes())
		return nil
	})
}

// Finish executes every command enqueued on this queue (blocking mode).
func (q *CommandQueue) Finish() error {
	if q.last == nil {
		return nil
	}
	return q.last.Wait()
}

// Finish executes every pending command in the context, in submission
// order, and returns the first error.
func (c *Context) Finish() error {
	for _, ev := range c.pending {
		if err := ev.Wait(); err != nil {
			return err
		}
	}
	return nil
}

func bindOutputs(out map[string]*tensor.Tensor, outputs map[string]*Buffer) error {
	for name, b := range outputs {
		t, ok := out[name]
		if !ok {
			return fmt.Errorf("kernel produced no output %q", name)
		}
		b.t = t
	}
	return nil
}
