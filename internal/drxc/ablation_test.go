package drxc

import (
	"testing"

	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// ablationCycles compiles and times a kernel under the given options,
// also verifying functional equivalence with the fully-optimized build —
// the ablations must change performance, never results.
func ablationCycles(t testing.TB, k *restructure.Kernel, opts Options,
	inputs map[string]*tensor.Tensor) int64 {
	t.Helper()
	cfg := drx.DefaultConfig()
	c, err := CompileWithOptions(k, cfg, opts)
	if err != nil {
		t.Fatalf("%s %+v: %v", k.Name, opts, err)
	}
	m, err := drx.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, res, err := Execute(c, m, inputs)
	if err != nil {
		t.Fatalf("%s %+v: %v", k.Name, opts, err)
	}
	if opts != (Options{}) {
		base, err := Compile(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m2, _ := drx.New(cfg)
		want, _, err := Execute(base, m2, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if !tensor.AllClose(w, out[name], 1e-4) {
				t.Fatalf("%s: ablation %+v changed output %q", k.Name, opts, name)
			}
		}
	}
	return res.Cycles()
}

func videoInputs(pixels int) map[string]*tensor.Tensor {
	yuv := tensor.New(tensor.Uint8, pixels, 3)
	for i := 0; i < pixels; i++ {
		yuv.Set(float64(i%251), i, 0)
		yuv.Set(float64((i*3)%251), i, 1)
		yuv.Set(float64((i*7)%251), i, 2)
	}
	return map[string]*tensor.Tensor{
		"yuv": yuv, "csc": restructure.CSCMatrix(), "bias": restructure.CSCBiasProjected(),
	}
}

func columnInputs(nrows int) map[string]*tensor.Tensor {
	rows := tensor.New(tensor.Uint8, nrows, 23)
	for r := 0; r < nrows; r++ {
		for d := 0; d < 13; d++ {
			rows.Set(float64('0'+(r+d)%10), r, d)
		}
		for p := 13; p < 23; p++ {
			rows.Set(float64((r*p)%256), r, p)
		}
	}
	return map[string]*tensor.Tensor{"rows": rows}
}

// TestAblationBlockedMap: the merged-inner-dimension schedule must be a
// large win for narrow Maps (the video quantizer's 3-wide rows).
func TestAblationBlockedMap(t *testing.T) {
	const pixels = 64 * 1024
	k := restructure.VideoPreprocess(pixels)
	in := videoInputs(pixels)
	fast := ablationCycles(t, k, Options{}, in)
	slow := ablationCycles(t, k, Options{NoBlockedMap: true}, in)
	if slow < 4*fast {
		t.Errorf("blocked map only %.1fx (%d vs %d cycles); expected a large win",
			float64(slow)/float64(fast), slow, fast)
	}
}

// TestAblationTransEngine: the Transposition Engine panel schedule must
// beat the strided-copy fallback on the layout pivots.
func TestAblationTransEngine(t *testing.T) {
	const pixels = 64 * 1024
	k := restructure.VideoPreprocess(pixels)
	in := videoInputs(pixels)
	fast := ablationCycles(t, k, Options{}, in)
	slow := ablationCycles(t, k, Options{NoTransEngine: true}, in)
	if slow <= fast {
		t.Errorf("transposition engine did not help: %d vs %d cycles", slow, fast)
	}
}

// TestAblationGatherShare: sharing the row panel across the hash-join
// parser's digit leaves must reduce DRAM traffic and cycles.
func TestAblationGatherShare(t *testing.T) {
	const nrows = 32 * 1024
	k := restructure.ColumnPack(nrows, 6, 7, 10)
	in := columnInputs(nrows)
	fast := ablationCycles(t, k, Options{}, in)
	slow := ablationCycles(t, k, Options{NoGatherShare: true}, in)
	if slow <= fast {
		t.Errorf("gather sharing did not help: %d vs %d cycles", slow, fast)
	}
}

// BenchmarkAblation reports simulated DRX cycles for the two
// schedule-sensitive kernels under each ablation — the design-choice
// ablation series DESIGN.md §6 calls out.
func BenchmarkAblation(b *testing.B) {
	cases := []struct {
		name string
		opts Options
	}{
		{"full", Options{}},
		{"noBlockedMap", Options{NoBlockedMap: true}},
		{"noTransEngine", Options{NoTransEngine: true}},
		{"noGatherShare", Options{NoGatherShare: true}},
	}
	kernels := []struct {
		name   string
		k      *restructure.Kernel
		inputs map[string]*tensor.Tensor
	}{
		{"videoPreprocess", restructure.VideoPreprocess(64 * 1024), videoInputs(64 * 1024)},
		{"columnPack", restructure.ColumnPack(32*1024, 6, 7, 10), columnInputs(32 * 1024)},
	}
	for _, kc := range kernels {
		for _, c := range cases {
			b.Run(kc.name+"/"+c.name, func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					cycles = ablationCycles(b, kc.k, c.opts, kc.inputs)
				}
				b.ReportMetric(float64(cycles), "drxCycles")
			})
		}
	}
}
