package drxc

import (
	"sync"
	"sync/atomic"

	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/sweep"
)

// The process-wide compiled-program cache. Compiling a restructuring
// kernel is by far the most expensive step of a functional DRX dispatch
// (lowering, schedule selection, program validation), yet the result
// depends only on the kernel's structure and the hardware configuration:
// the same kernel enqueued a thousand times compiles to the same program
// a thousand times. The cache mirrors dmxsys's DRX timing cache
// (WarmDRXTimes): a sync.Map keyed by (kernel fingerprint, drx.Config),
// safe under the sweep harness's parallel workers, where a duplicated
// concurrent compile stores an identical artifact so last-write-wins is
// harmless.
//
// A cached *Compiled is shared between goroutines and machines; that is
// sound because Compiled is immutable after Compile and Execute only
// reads it. Only default-Options compilations are cached — ablation
// builds (CompileWithOptions) are research probes, not hot paths.

// progCacheKey identifies one (kernel structure, hardware) compilation.
// drx.Config is a flat comparable struct, so the composite key needs no
// serialization.
type progCacheKey struct {
	fingerprint string
	cfg         drx.Config
}

var (
	progCache              sync.Map // progCacheKey → *Compiled
	cacheHits, cacheMisses atomic.Int64
)

// CompileCached returns the process-wide cached compilation of k for
// cfg, compiling (and populating the cache) on first use. Errors are not
// cached: a kernel that fails to compile fails identically on retry.
func CompileCached(k *restructure.Kernel, cfg drx.Config) (*Compiled, error) {
	key := progCacheKey{fingerprint: k.Fingerprint(), cfg: cfg}
	if v, ok := progCache.Load(key); ok {
		cacheHits.Add(1)
		return v.(*Compiled), nil
	}
	c, err := Compile(k, cfg)
	if err != nil {
		return nil, err
	}
	cacheMisses.Add(1)
	actual, _ := progCache.LoadOrStore(key, c)
	return actual.(*Compiled), nil
}

// CacheStats reports cumulative CompileCached hits and misses (process
// lifetime). Intended for benchmarks and diagnostics; the counters are
// monotone and shared, so tests should assert on deltas or on *Compiled
// pointer identity rather than absolute values.
func CacheStats() (hits, misses int64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// WarmCompiled populates the compile cache for every distinct kernel, in
// parallel on the sweep worker pool — the compile-side mirror of
// dmxsys.WarmDRXTimes. Call it before a parallel sweep so workers hit a
// warm cache instead of duplicating compiles.
func WarmCompiled(cfg drx.Config, kernels []*restructure.Kernel) error {
	var todo []*restructure.Kernel
	seen := make(map[string]struct{})
	for _, k := range kernels {
		key := k.Fingerprint()
		if _, ok := seen[key]; ok {
			continue
		}
		if _, ok := progCache.Load(progCacheKey{fingerprint: key, cfg: cfg}); ok {
			continue
		}
		seen[key] = struct{}{}
		todo = append(todo, k)
	}
	return sweep.Each(len(todo), func(i int) error {
		_, err := CompileCached(todo[i], cfg)
		return err
	})
}
