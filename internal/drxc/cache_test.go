package drxc

import (
	"testing"

	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// Cache tests assert on *Compiled pointer identity and on stat deltas,
// never on absolute counter values: the cache is process-wide and other
// tests in the binary populate it too.

func TestCompileCachedPointerIdentity(t *testing.T) {
	cfg := drx.DefaultConfig()
	c1, err := CompileCached(restructure.SignalNormalize(5, 40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A separately constructed, structurally identical kernel must hit
	// the same artifact — this is the EnqueueRestructure hot path, where
	// callers rebuild the kernel per dispatch.
	c2, err := CompileCached(restructure.SignalNormalize(5, 40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("repeat CompileCached of an identical kernel returned a distinct compilation")
	}
}

func TestCompileCachedKeysOnConfig(t *testing.T) {
	k := restructure.SignalNormalize(5, 48)
	c1, err := CompileCached(k, drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileCached(k, drx.DefaultConfig().WithLanes(32))
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("CompileCached ignored the hardware configuration in its key")
	}
}

// sameSigCacheKernel mirrors the fuzzer's ad-hoc kernels: fixed name and
// geometry, varying stage structure. Signature collides; the cache key
// must not.
func sameSigCacheKernel(e restructure.Expr) *restructure.Kernel {
	return &restructure.Kernel{
		Name: "cachecollide",
		Params: []restructure.Param{
			{Name: "a", DType: tensor.Float32, Shape: []int{4, 32}, Dir: restructure.In},
			{Name: "out", DType: tensor.Float32, Shape: []int{4, 32}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{&restructure.MapStage{
			Out: "out", Ins: []string{"a"},
			Accs: []restructure.Access{restructure.IdentityAccess(2)},
			Expr: e,
		}},
	}
}

func TestCompileCachedKeysOnStageStructure(t *testing.T) {
	k1 := sameSigCacheKernel(restructure.AddE(restructure.InN(0), restructure.C(1)))
	k2 := sameSigCacheKernel(restructure.MulE(restructure.InN(0), restructure.C(3)))
	if k1.Signature() != k2.Signature() {
		t.Fatal("test premise broken: signatures differ")
	}
	cfg := drx.DefaultConfig()
	c1, err := CompileCached(k1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileCached(k2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatal("cache returned one compilation for same-signature kernels with different stages")
	}
}

func TestWarmCompiledPopulates(t *testing.T) {
	cfg := drx.DefaultConfig()
	k := restructure.SignalNormalize(3, 56) // geometry unique to this test
	_, missBefore := CacheStats()
	// Duplicates must be compiled once.
	if err := WarmCompiled(cfg, []*restructure.Kernel{k, restructure.SignalNormalize(3, 56)}); err != nil {
		t.Fatal(err)
	}
	_, missAfterWarm := CacheStats()
	if got := missAfterWarm - missBefore; got != 1 {
		t.Fatalf("WarmCompiled compiled %d times, want 1", got)
	}
	hitsBefore, _ := CacheStats()
	if _, err := CompileCached(k, cfg); err != nil {
		t.Fatal(err)
	}
	hitsAfter, missAfter := CacheStats()
	if hitsAfter != hitsBefore+1 || missAfter != missAfterWarm {
		t.Fatalf("CompileCached after warm-up missed the cache (hits %d→%d, misses %d→%d)",
			hitsBefore, hitsAfter, missAfterWarm, missAfter)
	}
}

func TestCompileCachedErrorNotCached(t *testing.T) {
	// A kernel that fails to compile must fail identically on retry and
	// must not poison the cache.
	bad := &restructure.Kernel{Name: "bad"}
	cfg := drx.DefaultConfig()
	if _, err := CompileCached(bad, cfg); err == nil {
		t.Fatal("empty kernel compiled")
	}
	if _, err := CompileCached(bad, cfg); err == nil {
		t.Fatal("empty kernel compiled on retry")
	}
}
