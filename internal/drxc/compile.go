package drxc

import (
	"fmt"

	"dmx/internal/drx"
	"dmx/internal/isa"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// Compiled is the result of compiling one kernel for one hardware
// configuration: the program plus the DRAM placement of every parameter.
type Compiled struct {
	Prog *isa.Program
	// Layout maps parameter name to its DRAM byte address.
	Layout map[string]int64
	// DRAMBytes is the total device memory the kernel's parameters need.
	DRAMBytes int64

	kernel *restructure.Kernel
	cfg    drx.Config
}

// Kernel returns the source kernel.
func (c *Compiled) Kernel() *restructure.Kernel { return c.kernel }

// Config returns the hardware configuration compiled against.
func (c *Compiled) Config() drx.Config { return c.cfg }

// Options disable individual compiler optimizations, for ablation
// studies of the schedule choices (see bench_ablation_test.go and the
// DESIGN.md experiment index). The zero value enables everything.
type Options struct {
	// NoBlockedMap disables the merged-inner-dimension Map schedule;
	// narrow Maps fall back to per-row issues.
	NoBlockedMap bool
	// NoTransEngine disables the Transposition Engine panel schedule;
	// transposes lower to strided-copy Maps on the vector pipeline.
	NoTransEngine bool
	// NoGatherShare gives every gather leaf its own row panel instead of
	// sharing one load across leaves of the same rows.
	NoGatherShare bool
}

// Compile lowers a kernel to a DRX program for the given configuration
// with all optimizations enabled.
func Compile(k *restructure.Kernel, cfg drx.Config) (*Compiled, error) {
	return CompileWithOptions(k, cfg, Options{})
}

// CompileWithOptions lowers a kernel with selected optimizations
// disabled.
func CompileWithOptions(k *restructure.Kernel, cfg drx.Config, opts Options) (*Compiled, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &builder{k: k, cfg: cfg, opts: opts, layout: make(map[string]int64)}
	// Place every parameter in device memory, 16-byte aligned.
	for i := range k.Params {
		p := &k.Params[i]
		if _, err := mapDT(p.DType); err != nil && p.DType != tensor.Complex64 {
			return nil, fmt.Errorf("drxc: %s: parameter %q: %w", k.Name, p.Name, err)
		}
		b.layout[p.Name] = b.dramTop
		b.dramTop = align16(b.dramTop + int64(p.SizeBytes()))
	}
	for i, s := range k.Stages {
		b.resetStage()
		if err := b.lowerStage(s); err != nil {
			return nil, fmt.Errorf("drxc: %s: stage %d (%s): %w", k.Name, i, s.Kind(), err)
		}
		// Stages communicate through DRAM temps; a barrier orders the
		// off-chip stores of one stage before the loads of the next.
		b.emit(isa.Instr{Op: isa.Barrier})
	}
	b.emit(isa.Instr{Op: isa.Halt})
	prog := &isa.Program{Name: k.Name, Instrs: b.prog}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("drxc: %s: generated invalid program: %w", k.Name, err)
	}
	return &Compiled{
		Prog:      prog,
		Layout:    b.layout,
		DRAMBytes: b.dramTop,
		kernel:    k,
		cfg:       cfg,
	}, nil
}

func align16(n int64) int64 { return (n + 15) &^ 15 }

// mapDT converts a tensor dtype to the ISA's off-chip element type.
// Complex64 has no direct mapping: the compiler decomposes complex
// streams into stride-2 F32 component streams.
func mapDT(d tensor.DType) (isa.DT, error) {
	switch d {
	case tensor.Uint8:
		return isa.U8, nil
	case tensor.Int8:
		return isa.I8, nil
	case tensor.Int16:
		return isa.I16, nil
	case tensor.Int32:
		return isa.I32, nil
	case tensor.Float32:
		return isa.F32, nil
	case tensor.Float64:
		return isa.F64, nil
	}
	return 0, fmt.Errorf("dtype %v unsupported by the DRX ISA", d)
}

// builder accumulates instructions and allocates machine resources.
type builder struct {
	k       *restructure.Kernel
	cfg     drx.Config
	opts    Options
	prog    []isa.Instr
	layout  map[string]int64
	dramTop int64

	// Per-nest allocator state (reset by resetNest).
	nextStream int32
	scratchTop int64
}

func (b *builder) emit(in isa.Instr) { b.prog = append(b.prog, in) }

// resetStage recycles stream registers and scratchpad space; stages are
// separated by barriers so reuse is safe.
func (b *builder) resetStage() { b.resetNest() }

// resetNest recycles allocator state between sibling loop nests (main
// body vs. remainder) within a stage.
func (b *builder) resetNest() {
	b.nextStream = 0
	b.scratchTop = 0
}

// stream emits a CfgStream and returns the register id.
func (b *builder) stream(space isa.Space, dt isa.DT, base int64, estride int32, strides []int32) (int32, error) {
	if b.nextStream >= isa.MaxStreams {
		return 0, fmt.Errorf("out of stream registers (max %d)", isa.MaxStreams)
	}
	id := b.nextStream
	b.nextStream++
	b.emit(isa.Instr{
		Op: isa.CfgStream, Dst: id, Space: space, DType: dt,
		Base: base, ElemStride: estride, Strides: trimStrides(strides),
	})
	return id, nil
}

// trimStrides copies the stride list (trailing zeros and all — stream
// levels must align positionally with loop depth).
func trimStrides(s []int32) []int32 {
	if len(s) == 0 {
		return nil
	}
	out := make([]int32, len(s))
	copy(out, s)
	return out
}

// allocScratch reserves n f32 elements of scratchpad.
func (b *builder) allocScratch(n int64) (int64, error) {
	if b.scratchTop+n > int64(b.cfg.ScratchElems()) {
		return 0, fmt.Errorf("scratchpad exhausted (%d of %d f32 elems)",
			b.scratchTop+n, b.cfg.ScratchElems())
	}
	base := b.scratchTop
	b.scratchTop += n
	return base, nil
}

// param returns the declared parameter (always present post-Validate).
func (b *builder) param(name string) *restructure.Param {
	p, _ := b.k.Param(name)
	return p
}

// baseElems converts a parameter's byte address into element units for
// a stream of element size esz.
func (b *builder) baseElems(name string, esz int) int64 {
	return b.layout[name] / int64(esz)
}

// rowMajor computes row-major element strides for a shape.
func rowMajor(shape []int) []int64 {
	s := make([]int64, len(shape))
	acc := int64(1)
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= int64(shape[i])
	}
	return s
}

// lowerStage dispatches on the stage type.
func (b *builder) lowerStage(s restructure.Stage) error {
	switch st := s.(type) {
	case *restructure.MapStage:
		return b.lowerMap(st)
	case *restructure.ReduceStage:
		return b.lowerReduce(st)
	case *restructure.MatMulStage:
		return b.lowerMatMul(st)
	case *restructure.TransposeStage:
		return b.lowerTranspose(st)
	case *restructure.TypecastStage:
		return b.lowerTypecast(st)
	case *restructure.ReshapeStage:
		return b.lowerReshape(st)
	}
	return fmt.Errorf("no lowering for stage kind %q", s.Kind())
}
