package drxc

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/sweep"
	"dmx/internal/tensor"
)

// The fast-path differential checker: every library kernel must produce
// byte-for-byte the same outputs and exactly the same Result accounting
// with the machine's bulk operand paths on and off. This is the
// kernel-level complement of the machine-level FuzzFastPathMatchesInterpreter
// in internal/drx: it covers the address patterns real compiled programs
// emit (tiled spans, gather panels, transpose staging, barriers).

// libraryKernels is the full restructuring library at geometries that
// exercise tiling, the Transposition Engine, and remainder paths.
func libraryKernels() []*restructure.Kernel {
	return []*restructure.Kernel{
		restructure.MelSpectrogram(12, 64, 16),
		restructure.VideoPreprocess(256),
		restructure.SignalNormalize(6, 96),
		restructure.RecordFrame(16, 48),
		restructure.RecordFrame(100, 1000), // forces scratch tiling
		restructure.ColumnPack(128, 6, 7, 10),
		restructure.NERPrep(32, 64, 128),
		restructure.VecNormalize(8, 64),
		restructure.SumReduce(8, 300),
	}
}

// randKernelInputs fills every In parameter of k with seeded random data
// of its declared dtype. Values are arbitrary: the differential compares
// DRX-vs-DRX, so semantic validity is irrelevant — only that both
// machines see identical bytes.
func randKernelInputs(seed int64, k *restructure.Kernel) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	inputs := make(map[string]*tensor.Tensor)
	for _, p := range k.Inputs() {
		t := tensor.New(p.DType, p.Shape...)
		it := tensor.NewIter(p.Shape)
		for it.Next() {
			switch p.DType {
			case tensor.Complex64:
				t.SetComplex(complex(rng.Float64()*4-2, rng.Float64()*4-2), it.Index()...)
			case tensor.Uint8:
				t.Set(float64(rng.Intn(256)), it.Index()...)
			case tensor.Int8:
				t.Set(float64(rng.Intn(256)-128), it.Index()...)
			case tensor.Int16:
				t.Set(float64(rng.Intn(1<<16)-1<<15), it.Index()...)
			case tensor.Int32:
				t.Set(float64(rng.Intn(1<<20)-1<<19), it.Index()...)
			default:
				t.Set(rng.Float64()*200-100, it.Index()...)
			}
		}
		inputs[p.Name] = t
	}
	return inputs
}

// diffFastVsInterp runs one kernel on two machines — fast paths on and
// off — and returns an error on any divergence.
func diffFastVsInterp(k *restructure.Kernel, cfg drx.Config, inputs map[string]*tensor.Tensor) error {
	c, err := CompileCached(k, cfg)
	if err != nil {
		return fmt.Errorf("%s: compile: %w", k.Name, err)
	}
	outs := [2]map[string]*tensor.Tensor{}
	ress := [2]drx.Result{}
	for i := 0; i < 2; i++ {
		m, err := drx.New(cfg)
		if err != nil {
			return err
		}
		m.SetFastPath(i == 0)
		if outs[i], ress[i], err = Execute(c, m, inputs); err != nil {
			return fmt.Errorf("%s (fast=%v): %w", k.Name, i == 0, err)
		}
	}
	if ress[0] != ress[1] {
		return fmt.Errorf("%s: Result divergence:\nfast:   %+v\ninterp: %+v", k.Name, ress[0], ress[1])
	}
	for name, a := range outs[0] {
		b, ok := outs[1][name]
		if !ok {
			return fmt.Errorf("%s: interp run missing output %q", k.Name, name)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			return fmt.Errorf("%s: output %q not byte-identical between fast path and interpreter", k.Name, name)
		}
	}
	return nil
}

func TestFastPathLibraryBitIdentical(t *testing.T) {
	kernels := libraryKernels()
	cfg := drx.DefaultConfig()
	if err := WarmCompiled(cfg, kernels); err != nil {
		t.Fatal(err)
	}
	// One differential per kernel, in parallel on the sweep pool.
	err := sweep.Each(len(kernels), func(i int) error {
		return diffFastVsInterp(kernels[i], cfg, randKernelInputs(1000+int64(i), kernels[i]))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFastPathLibraryBitIdenticalSmallScratch(t *testing.T) {
	// A small scratchpad changes the compiler's tiling — more, shorter
	// spans — and a small lane count changes transfer chunking. The
	// invariant must hold there too.
	cfg := drx.DefaultConfig().WithLanes(32)
	cfg.ScratchBytes = 8 << 10
	kernels := libraryKernels()
	err := sweep.Each(len(kernels), func(i int) error {
		return diffFastVsInterp(kernels[i], cfg, randKernelInputs(2000+int64(i), kernels[i]))
	})
	if err != nil {
		t.Fatal(err)
	}
}
