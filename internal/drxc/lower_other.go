package drxc

import (
	"fmt"

	"dmx/internal/isa"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// lowerReduce handles both reduction orientations:
//   - axis == last:each output element is a row sum/max via the VRSum/VRMax
//     lane tree, chunked against the scratchpad;
//   - axis != last: the output is tiled and partial vectors accumulate
//     with VAdd/VMax across the reduced axis.
func (b *builder) lowerReduce(st *restructure.ReduceStage) error {
	in := b.param(st.In)
	out := b.param(st.Out)
	idt, err := mapDT(in.DType)
	if err != nil {
		return fmt.Errorf("input %q: %w", st.In, err)
	}
	odt, err := mapDT(out.DType)
	if err != nil {
		return fmt.Errorf("output %q: %w", st.Out, err)
	}
	if st.Axis == len(in.Shape)-1 {
		return b.lowerReduceLastAxis(st, idt, odt)
	}
	return b.lowerReduceOuterAxis(st, idt, odt)
}

func (b *builder) lowerReduceLastAxis(st *restructure.ReduceStage, idt, odt isa.DT) error {
	in := b.param(st.In)
	out := b.param(st.Out)
	n := int64(in.Shape[st.Axis])
	outShape := out.Shape
	ists := rowMajor(in.Shape)

	chunk := int64(b.cfg.ScratchElems()) - 8 // row buffer + acc/tmp slots
	if chunk > n {
		chunk = n
	}
	if chunk > 8192 {
		chunk = 8192
	}
	chunks := n / chunk
	rem := n % chunk

	rowBuf, err := b.allocScratch(chunk)
	if err != nil {
		return err
	}
	accBuf, err := b.allocScratch(1)
	if err != nil {
		return err
	}
	tmpBuf, err := b.allocScratch(1)
	if err != nil {
		return err
	}

	levels := len(outShape)
	inStrides := make([]int32, levels)
	for j := range outShape {
		// Output dim j corresponds to input dim j (axis is last).
		inStrides[j] = int32(ists[j])
	}
	outStrides := make([]int32, levels)
	for j, s := range rowMajor(outShape) {
		outStrides[j] = int32(s)
	}

	rowStream := func(offset int64, withChunkLoop bool) (int32, error) {
		str := inStrides
		if withChunkLoop {
			str = append(append([]int32(nil), inStrides...), int32(chunk))
		}
		return b.stream(isa.DRAM, idt, b.baseElems(st.In, idt.Size())+offset, 1, str)
	}
	rowScr, err := b.stream(isa.Scratch, isa.F32, rowBuf, 1, nil)
	if err != nil {
		return err
	}
	accScr, err := b.stream(isa.Scratch, isa.F32, accBuf, 1, nil)
	if err != nil {
		return err
	}
	tmpScr, err := b.stream(isa.Scratch, isa.F32, tmpBuf, 1, nil)
	if err != nil {
		return err
	}
	outDram, err := b.stream(isa.DRAM, odt, b.baseElems(st.Out, odt.Size()), 1, outStrides)
	if err != nil {
		return err
	}
	mainDram, err := rowStream(0, true)
	if err != nil {
		return err
	}
	var remDram int32
	if rem > 0 {
		if remDram, err = rowStream(chunks*chunk, false); err != nil {
			return err
		}
	}

	reduceOp, accOp := isa.VRSum, isa.VAdd
	if st.Op == restructure.MaxR {
		reduceOp, accOp = isa.VRMax, isa.VMax
	}

	// Loop over every output element.
	for j := 0; j < len(outShape); j++ {
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(outShape[j])})
	}
	// acc = 0 (or -inf surrogate for max: first chunk overwrites below).
	b.emit(isa.Instr{Op: isa.VMulI, Dst: accScr, Src1: accScr, Imm: 0, N: 1})
	if st.Op == restructure.MaxR {
		b.emit(isa.Instr{Op: isa.VAddI, Dst: accScr, Src1: accScr, Imm: -3.4e38, N: 1})
	}
	if chunks > 0 {
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(chunks)})
		b.emit(isa.Instr{Op: isa.Load, Dst: rowScr, Src1: mainDram, N: int32(chunk)})
		b.emit(isa.Instr{Op: reduceOp, Dst: tmpScr, Src1: rowScr, N: int32(chunk)})
		b.emit(isa.Instr{Op: accOp, Dst: accScr, Src1: accScr, Src2: tmpScr, N: 1})
		b.emit(isa.Instr{Op: isa.LoopEnd})
	}
	if rem > 0 {
		b.emit(isa.Instr{Op: isa.Load, Dst: rowScr, Src1: remDram, N: int32(rem)})
		b.emit(isa.Instr{Op: reduceOp, Dst: tmpScr, Src1: rowScr, N: int32(rem)})
		b.emit(isa.Instr{Op: accOp, Dst: accScr, Src1: accScr, Src2: tmpScr, N: 1})
	}
	if st.Op == restructure.MeanR {
		b.emit(isa.Instr{Op: isa.VMulI, Dst: accScr, Src1: accScr, Imm: float32(1.0 / float64(n)), N: 1})
	}
	b.emit(isa.Instr{Op: isa.Store, Dst: outDram, Src1: accScr, N: 1})
	for range outShape {
		b.emit(isa.Instr{Op: isa.LoopEnd})
	}
	return nil
}

func (b *builder) lowerReduceOuterAxis(st *restructure.ReduceStage, idt, odt isa.DT) error {
	in := b.param(st.In)
	out := b.param(st.Out)
	outShape := out.Shape
	r := len(outShape)
	inner := int64(outShape[r-1])
	n := int64(in.Shape[st.Axis])
	ists := rowMajor(in.Shape)

	// Map output dims back to input dims (axis spliced out).
	inDimOf := make([]int, r)
	for d, j := 0, 0; d < len(in.Shape); d++ {
		if d == st.Axis {
			continue
		}
		inDimOf[j] = d
		j++
	}

	tile := (int64(b.cfg.ScratchElems()) - 4) / 2 // acc + chunk buffers
	if tile > inner {
		tile = inner
	}
	if tile > 8192 {
		tile = 8192
	}
	tiles := inner / tile
	rem := inner % tile

	emitNest := func(tileLen, tiles, tileOffset int64) error {
		withTileLoop := tiles > 1
		levels := r - 1
		if withTileLoop {
			levels++
		}
		levels++ // the reduction loop is always innermost

		accBuf, err := b.allocScratch(tileLen)
		if err != nil {
			return err
		}
		chunkBuf, err := b.allocScratch(tileLen)
		if err != nil {
			return err
		}
		accScr, err := b.stream(isa.Scratch, isa.F32, accBuf, 1, nil)
		if err != nil {
			return err
		}
		chunkScr, err := b.stream(isa.Scratch, isa.F32, chunkBuf, 1, nil)
		if err != nil {
			return err
		}
		inStr := make([]int32, levels)
		for j := 0; j < r-1; j++ {
			inStr[j] = int32(ists[inDimOf[j]])
		}
		lvl := r - 1
		if withTileLoop {
			inStr[lvl] = int32(ists[inDimOf[r-1]] * tileLen)
			lvl++
		}
		inStr[lvl] = int32(ists[st.Axis])
		inBase := b.baseElems(st.In, idt.Size()) + ists[inDimOf[r-1]]*tileOffset
		inDram, err := b.stream(isa.DRAM, idt, inBase, int32(ists[inDimOf[r-1]]), inStr)
		if err != nil {
			return err
		}
		ostr := rowMajor(outShape)
		outStr := make([]int32, levels)
		for j := 0; j < r-1; j++ {
			outStr[j] = int32(ostr[j])
		}
		if withTileLoop {
			outStr[r-1] = int32(tileLen)
		}
		outDram, err := b.stream(isa.DRAM, odt, b.baseElems(st.Out, odt.Size())+tileOffset, 1, outStr)
		if err != nil {
			return err
		}

		accOp := isa.VAdd
		if st.Op == restructure.MaxR {
			accOp = isa.VMax
		}
		for j := 0; j < r-1; j++ {
			b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(outShape[j])})
		}
		if withTileLoop {
			b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(tiles)})
		}
		b.emit(isa.Instr{Op: isa.VMulI, Dst: accScr, Src1: accScr, Imm: 0, N: int32(tileLen)})
		if st.Op == restructure.MaxR {
			b.emit(isa.Instr{Op: isa.VAddI, Dst: accScr, Src1: accScr, Imm: -3.4e38, N: int32(tileLen)})
		}
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(n)})
		b.emit(isa.Instr{Op: isa.Load, Dst: chunkScr, Src1: inDram, N: int32(tileLen)})
		b.emit(isa.Instr{Op: accOp, Dst: accScr, Src1: accScr, Src2: chunkScr, N: int32(tileLen)})
		b.emit(isa.Instr{Op: isa.LoopEnd})
		if st.Op == restructure.MeanR {
			b.emit(isa.Instr{Op: isa.VMulI, Dst: accScr, Src1: accScr, Imm: float32(1.0 / float64(n)), N: int32(tileLen)})
		}
		b.emit(isa.Instr{Op: isa.Store, Dst: outDram, Src1: accScr, N: int32(tileLen)})
		if withTileLoop {
			b.emit(isa.Instr{Op: isa.LoopEnd})
		}
		for j := 0; j < r-1; j++ {
			b.emit(isa.Instr{Op: isa.LoopEnd})
		}
		return nil
	}
	if tiles > 0 {
		if err := emitNest(tile, tiles, 0); err != nil {
			return err
		}
	}
	if rem > 0 {
		b.resetNest()
		if err := emitNest(rem, 0, tiles*tile); err != nil {
			return err
		}
	}
	return nil
}

// lowerMatMul emits a lane-blocked schedule: a panel of Tm output rows
// is processed at once so every scalar-broadcast MAC (VMacS) spans a
// full RE-lane vector. For each row panel, the A panel and a B panel are
// staged in scratch, then two hardware loops (output column j, inner
// dimension x) drive a single VMacS whose streams advance via the
// Strided Scratchpad Address Calculator — the loop-and-stream style the
// paper's Fig. 8 kernel illustrates. Accumulators interleave into a
// staging tile and store contiguously.
func (b *builder) lowerMatMul(st *restructure.MatMulStage) error {
	a := b.param(st.A)
	bb := b.param(st.B)
	out := b.param(st.Out)
	adt, err := mapDT(a.DType)
	if err != nil {
		return fmt.Errorf("matmul A: %w", err)
	}
	bdt, err := mapDT(bb.DType)
	if err != nil {
		return fmt.Errorf("matmul B: %w", err)
	}
	odt, err := mapDT(out.DType)
	if err != nil {
		return fmt.Errorf("matmul out: %w", err)
	}
	m := int64(a.Shape[0])
	k := int64(a.Shape[1])
	n := int64(bb.Shape[1])
	budget := int64(b.cfg.ScratchElems())

	// Row-panel height: the lane count, shrunk if the accumulator and
	// staging tiles (2·Tm·n) would not leave room for the data panels.
	tm := int64(b.cfg.Lanes)
	if tm > m {
		tm = m
	}
	for tm > 8 && 2*tm*n > budget/2 {
		tm /= 2
	}
	// Inner-dimension panel width against the remaining scratch.
	tk := (budget - 2*tm*n) / (tm + n)
	if tk > k {
		tk = k
	}
	if tk < 1 || 2*tm*n+tm+n > budget {
		return fmt.Errorf("matmul [%d,%d]x[%d,%d]: output tile does not fit the %d-elem scratchpad",
			m, k, k, n, budget)
	}

	emitNest := func(rowOffset, tmCur, mtiles int64) error {
		aPanel, err := b.allocScratch(tmCur * tk)
		if err != nil {
			return err
		}
		bPanel, err := b.allocScratch(tk * n)
		if err != nil {
			return err
		}
		acc, err := b.allocScratch(tmCur * n)
		if err != nil {
			return err
		}
		staging, err := b.allocScratch(tmCur * n)
		if err != nil {
			return err
		}
		ktiles := k / tk
		krem := k % tk

		aBase := b.baseElems(st.A, adt.Size()) + rowOffset*k
		bBase := b.baseElems(st.B, bdt.Size())
		cBase := b.baseElems(st.Out, odt.Size()) + rowOffset*n

		// emitSlice emits the panel loads plus the j/x MAC loops for one
		// k-slice (either the body of the ktile hardware loop or the
		// trailing remainder slice at fixed offset kFixed).
		emitSlice := func(inKLoop bool, tkCur, kFixed int64) error {
			// Loop levels at instruction time:
			//   [mtile] or [mtile, ktile] for loads,
			//   plus [.., j, x] for the MAC, plus [.., row] inside loads.
			lvA := []int32{int32(tm * k)} // per-mtile stride (elements of A)
			lvB := []int32{0}
			if inKLoop {
				lvA = append(lvA, int32(tkCur))
				lvB = append(lvB, int32(tkCur*n))
			}
			// A panel: contiguous when the slice spans all of k.
			if tkCur == k {
				aDram, err := b.stream(isa.DRAM, adt, aBase+kFixed, 1, lvA)
				if err != nil {
					return err
				}
				aScr, err := b.stream(isa.Scratch, isa.F32, aPanel, 1, nil)
				if err != nil {
					return err
				}
				b.emit(isa.Instr{Op: isa.Load, Dst: aScr, Src1: aDram, N: int32(tmCur * k)})
			} else {
				rowStr := append(append([]int32(nil), lvA...), int32(k))
				aDram, err := b.stream(isa.DRAM, adt, aBase+kFixed, 1, rowStr)
				if err != nil {
					return err
				}
				scrStr := make([]int32, len(rowStr))
				scrStr[len(scrStr)-1] = int32(tkCur)
				aScr, err := b.stream(isa.Scratch, isa.F32, aPanel, 1, scrStr)
				if err != nil {
					return err
				}
				b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(tmCur)})
				b.emit(isa.Instr{Op: isa.Load, Dst: aScr, Src1: aDram, N: int32(tkCur)})
				b.emit(isa.Instr{Op: isa.LoopEnd})
			}
			// B panel: rows are contiguous in DRAM, so one load covers it.
			bDram, err := b.stream(isa.DRAM, bdt, bBase+kFixed*n, 1, lvB)
			if err != nil {
				return err
			}
			bScr, err := b.stream(isa.Scratch, isa.F32, bPanel, 1, nil)
			if err != nil {
				return err
			}
			b.emit(isa.Instr{Op: isa.Load, Dst: bScr, Src1: bDram, N: int32(tkCur * n)})

			// MAC loops: j over output columns, x over the k-slice.
			depth := len(lvA)
			mk := func(base int64, estride int32, jS, xS int32) (int32, error) {
				str := make([]int32, depth+2)
				str[depth] = jS
				str[depth+1] = xS
				return b.stream(isa.Scratch, isa.F32, base, estride, str)
			}
			accS, err := mk(acc, 1, int32(tmCur), 0)
			if err != nil {
				return err
			}
			aColS, err := mk(aPanel, int32(tkCur), 0, 1)
			if err != nil {
				return err
			}
			bScal, err := mk(bPanel, 1, 1, int32(n))
			if err != nil {
				return err
			}
			b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(n)})
			b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(tkCur)})
			b.emit(isa.Instr{Op: isa.VMacS, Dst: accS, Src1: aColS, Src2: bScal, N: int32(tmCur)})
			b.emit(isa.Instr{Op: isa.LoopEnd})
			b.emit(isa.Instr{Op: isa.LoopEnd})
			return nil
		}

		// Zero the accumulator (loop level: [mtile, j]).
		accZero, err := b.stream(isa.Scratch, isa.F32, acc, 1, []int32{0, int32(tmCur)})
		if err != nil {
			return err
		}
		// Interleave acc columns into row-major staging ([mtile, j]).
		accRead, err := b.stream(isa.Scratch, isa.F32, acc, 1, []int32{0, int32(tmCur)})
		if err != nil {
			return err
		}
		stageW, err := b.stream(isa.Scratch, isa.F32, staging, int32(n), []int32{0, 1})
		if err != nil {
			return err
		}
		stageR, err := b.stream(isa.Scratch, isa.F32, staging, 1, nil)
		if err != nil {
			return err
		}
		cDram, err := b.stream(isa.DRAM, odt, cBase, 1, []int32{int32(tm * n)})
		if err != nil {
			return err
		}

		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(mtiles)})
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(n)})
		b.emit(isa.Instr{Op: isa.VMulI, Dst: accZero, Src1: accZero, Imm: 0, N: int32(tmCur)})
		b.emit(isa.Instr{Op: isa.LoopEnd})
		if ktiles > 0 {
			b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(ktiles)})
			if err := emitSlice(true, tk, 0); err != nil {
				return err
			}
			b.emit(isa.Instr{Op: isa.LoopEnd})
		}
		if krem > 0 {
			if err := emitSlice(false, krem, ktiles*tk); err != nil {
				return err
			}
		}
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(n)})
		b.emit(isa.Instr{Op: isa.VMov, Dst: stageW, Src1: accRead, N: int32(tmCur)})
		b.emit(isa.Instr{Op: isa.LoopEnd})
		b.emit(isa.Instr{Op: isa.Store, Dst: cDram, Src1: stageR, N: int32(tmCur * n)})
		b.emit(isa.Instr{Op: isa.LoopEnd})
		return nil
	}

	mtiles := m / tm
	mrem := m % tm
	if mtiles > 0 {
		if err := emitNest(0, tm, mtiles); err != nil {
			return err
		}
	}
	if mrem > 0 {
		b.resetNest()
		if err := emitNest(mtiles*tm, mrem, 1); err != nil {
			return err
		}
	}
	return nil
}

// lowerTranspose uses the Transposition Engine with a full-width
// row-panel schedule for rank-2 permutations: a panel of tr complete
// input rows loads contiguously (one issue), the engine pivots it, and
// each output row segment stores contiguously. This is optimal for the
// tall-skinny layout pivots the benchmarks perform (HWC→CHW, row→column
// payloads). Other ranks and dtypes fall back to a strided-copy Map.
func (b *builder) lowerTranspose(st *restructure.TransposeStage) error {
	in := b.param(st.In)
	if !b.opts.NoTransEngine &&
		len(st.Perm) == 2 && st.Perm[0] == 1 && st.Perm[1] == 0 && in.DType != tensor.Complex64 {
		rows, cols := int64(in.Shape[0]), int64(in.Shape[1])
		budget := int64(b.cfg.ScratchElems())
		tr := budget / 2 / cols
		if tr > rows {
			tr = rows
		}
		if tr*cols > 8192 {
			tr = 8192 / cols
		}
		if tr >= 1 {
			return b.lowerTransposePanels(st, rows, cols, tr)
		}
	}
	// Fallback: a Map stage with a permuted access is semantically the
	// same transpose, executed by the vector pipeline.
	mp := &restructure.MapStage{
		Out:  st.Out,
		Ins:  []string{st.In},
		Accs: []restructure.Access{restructure.PermuteAccess(st.Perm)},
		Expr: restructure.InN(0),
	}
	return b.lowerMap(mp)
}

// lowerTransposePanels emits the full-width panel schedule for one or
// two nests (main panels plus the row remainder).
func (b *builder) lowerTransposePanels(st *restructure.TransposeStage, rows, cols, tr int64) error {
	in := b.param(st.In)
	dt, err := mapDT(in.DType)
	if err != nil {
		return err
	}
	emitNest := func(rowOffset, trCur, tiles int64) error {
		tileIn, err := b.allocScratch(trCur * cols)
		if err != nil {
			return err
		}
		tileOut, err := b.allocScratch(trCur * cols)
		if err != nil {
			return err
		}
		inDram, err := b.stream(isa.DRAM, dt, b.baseElems(st.In, dt.Size())+rowOffset*cols,
			1, []int32{int32(tr * cols)})
		if err != nil {
			return err
		}
		tileInS, err := b.stream(isa.Scratch, isa.F32, tileIn, 1, nil)
		if err != nil {
			return err
		}
		tileOutW, err := b.stream(isa.Scratch, isa.F32, tileOut, 1, nil)
		if err != nil {
			return err
		}
		// Output row c's segment for this panel starts at c·rows +
		// rowOffset + tile·tr; the transposed tile's row c starts at
		// c·trCur in scratch.
		outDram, err := b.stream(isa.DRAM, dt, b.baseElems(st.Out, dt.Size())+rowOffset,
			1, []int32{int32(tr), int32(rows)})
		if err != nil {
			return err
		}
		tileOutR, err := b.stream(isa.Scratch, isa.F32, tileOut, 1, []int32{0, int32(trCur)})
		if err != nil {
			return err
		}
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(tiles)})
		b.emit(isa.Instr{Op: isa.Load, Dst: tileInS, Src1: inDram, N: int32(trCur * cols)})
		b.emit(isa.Instr{Op: isa.Trans, Dst: tileOutW, Src1: tileInS, N: int32(trCur), M: int32(cols)})
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(cols)})
		b.emit(isa.Instr{Op: isa.Store, Dst: outDram, Src1: tileOutR, N: int32(trCur)})
		b.emit(isa.Instr{Op: isa.LoopEnd})
		b.emit(isa.Instr{Op: isa.LoopEnd})
		return nil
	}
	tiles := rows / tr
	rem := rows % tr
	if tiles > 0 {
		if err := emitNest(0, tr, tiles); err != nil {
			return err
		}
	}
	if rem > 0 {
		b.resetNest()
		if err := emitNest(tiles*tr, rem, 1); err != nil {
			return err
		}
	}
	return nil
}

// lowerTypecast streams elements through the lanes: the dtype conversion
// happens at the Load (widen) and Store (narrow, saturate) boundaries.
func (b *builder) lowerTypecast(st *restructure.TypecastStage) error {
	in := b.param(st.In)
	out := b.param(st.Out)
	idt, err := mapDT(in.DType)
	if err != nil {
		return fmt.Errorf("typecast input: %w", err)
	}
	odt, err := mapDT(out.DType)
	if err != nil {
		return fmt.Errorf("typecast output: %w", err)
	}
	return b.flatCopy(st.In, st.Out, int64(in.NumElems()), idt, odt)
}

// lowerReshape copies raw bytes: framing never changes values, so the
// copy runs as U8 elements and is exact for every dtype.
func (b *builder) lowerReshape(st *restructure.ReshapeStage) error {
	in := b.param(st.In)
	return b.flatCopy(st.In, st.Out, int64(in.SizeBytes()), isa.U8, isa.U8)
}

// flatCopy moves count elements linearly from in to out with the given
// stream dtypes.
func (b *builder) flatCopy(inName, outName string, count int64, idt, odt isa.DT) error {
	tile := int64(b.cfg.ScratchElems())
	if tile > count {
		tile = count
	}
	if tile > 8192 {
		tile = 8192
	}
	tiles := count / tile
	rem := count % tile

	buf, err := b.allocScratch(tile)
	if err != nil {
		return err
	}
	scr, err := b.stream(isa.Scratch, isa.F32, buf, 1, nil)
	if err != nil {
		return err
	}
	if tiles > 0 {
		inDram, err := b.stream(isa.DRAM, idt, b.baseElems(inName, idt.Size()), 1, []int32{int32(tile)})
		if err != nil {
			return err
		}
		outDram, err := b.stream(isa.DRAM, odt, b.baseElems(outName, odt.Size()), 1, []int32{int32(tile)})
		if err != nil {
			return err
		}
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(tiles)})
		b.emit(isa.Instr{Op: isa.Load, Dst: scr, Src1: inDram, N: int32(tile)})
		b.emit(isa.Instr{Op: isa.Store, Dst: outDram, Src1: scr, N: int32(tile)})
		b.emit(isa.Instr{Op: isa.LoopEnd})
	}
	if rem > 0 {
		inDram, err := b.stream(isa.DRAM, idt, b.baseElems(inName, idt.Size())+tiles*tile, 1, nil)
		if err != nil {
			return err
		}
		outDram, err := b.stream(isa.DRAM, odt, b.baseElems(outName, odt.Size())+tiles*tile, 1, nil)
		if err != nil {
			return err
		}
		b.emit(isa.Instr{Op: isa.Load, Dst: scr, Src1: inDram, N: int32(rem)})
		b.emit(isa.Instr{Op: isa.Store, Dst: outDram, Src1: scr, N: int32(rem)})
	}
	return nil
}
