package drxc

import (
	"math"
	"math/rand"
	"testing"

	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// Randomized differential testing: generate arbitrary (valid) Map
// kernels — random shapes, random in-bounds affine accesses, random
// expression trees — and require the compiled DRX execution to agree
// with the reference interpreter. This is the broadest correctness net
// over the compiler's schedule selection (plain, blocked, gather,
// periodic) and the machine's addressing.

// randExpr builds a random expression over nIn inputs. Depth-bounded;
// avoids Div/Mod/Exp whose float32-vs-float64 divergence would force
// loose tolerances.
func randExpr(rng *rand.Rand, nIn, depth int) restructure.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(4) == 0 {
			return restructure.C(math.Round(rng.Float64()*8-4) / 2)
		}
		return restructure.InN(rng.Intn(nIn))
	}
	switch rng.Intn(6) {
	case 0:
		return restructure.AddE(randExpr(rng, nIn, depth-1), randExpr(rng, nIn, depth-1))
	case 1:
		return restructure.SubE(randExpr(rng, nIn, depth-1), randExpr(rng, nIn, depth-1))
	case 2:
		return restructure.MulE(randExpr(rng, nIn, depth-1), randExpr(rng, nIn, depth-1))
	case 3:
		return restructure.Binary{Op: restructure.Min,
			X: randExpr(rng, nIn, depth-1), Y: randExpr(rng, nIn, depth-1)}
	case 4:
		return restructure.Binary{Op: restructure.Max,
			X: randExpr(rng, nIn, depth-1), Y: randExpr(rng, nIn, depth-1)}
	default:
		return restructure.Unary{Op: restructure.Abs, X: randExpr(rng, nIn, depth-1)}
	}
}

// randAccess builds an in-bounds affine access from outShape into a
// fresh input shape it also returns.
func randAccess(rng *rand.Rand, outShape []int) (restructure.Access, []int) {
	switch rng.Intn(4) {
	case 0: // identity (same shape)
		return restructure.IdentityAccess(len(outShape)), append([]int(nil), outShape...)
	case 1: // strided, with offset headroom
		offs := make([]int, len(outShape))
		strides := make([]int, len(outShape))
		inShape := make([]int, len(outShape))
		for d := range outShape {
			strides[d] = 1 + rng.Intn(3)
			offs[d] = rng.Intn(3)
			inShape[d] = offs[d] + strides[d]*(outShape[d]-1) + 1 + rng.Intn(2)
		}
		return restructure.StridedAccess(offs, strides), inShape
	case 2: // broadcast of a small vector over the last dim
		if len(outShape) >= 2 {
			inShape := []int{outShape[len(outShape)-1]}
			coef := make([][]int, 1)
			coef[0] = make([]int, len(outShape))
			coef[0][len(outShape)-1] = 1
			return restructure.Access{Offset: []int{0}, Coef: coef}, inShape
		}
		fallthrough
	default: // permuted (rank 2 only), else identity
		if len(outShape) == 2 {
			return restructure.PermuteAccess([]int{1, 0}),
				[]int{outShape[1], outShape[0]}
		}
		return restructure.IdentityAccess(len(outShape)), append([]int(nil), outShape...)
	}
}

func randShape(rng *rand.Rand) []int {
	switch rng.Intn(3) {
	case 0: // rank 1
		return []int{1 + rng.Intn(700)}
	case 1: // rank 2, possibly narrow inner (exercises blocked mode)
		return []int{1 + rng.Intn(80), 1 + rng.Intn(24)}
	default: // rank 2 wide or rank 3
		if rng.Intn(2) == 0 {
			return []int{1 + rng.Intn(20), 16 + rng.Intn(300)}
		}
		return []int{1 + rng.Intn(6), 1 + rng.Intn(10), 1 + rng.Intn(40)}
	}
}

func TestFuzzCompiledMapsMatchReference(t *testing.T) {
	const trials = 60
	rng := rand.New(rand.NewSource(20260705))
	cfg := drx.DefaultConfig()
	for trial := 0; trial < trials; trial++ {
		outShape := randShape(rng)
		nIn := 1 + rng.Intn(3)
		params := []restructure.Param{}
		ins := make([]string, nIn)
		accs := make([]restructure.Access, nIn)
		inputs := map[string]*tensor.Tensor{}
		names := []string{"a", "b", "c"}
		for i := 0; i < nIn; i++ {
			acc, inShape := randAccess(rng, outShape)
			ins[i] = names[i]
			accs[i] = acc
			params = append(params, restructure.Param{
				Name: names[i], DType: tensor.Float32, Shape: inShape, Dir: restructure.In,
			})
			tt := tensor.New(tensor.Float32, inShape...)
			it := tensor.NewIter(inShape)
			for it.Next() {
				// Half-integer grid keeps float32/float64 results exact
				// through +,-,min,max and low-magnitude products.
				tt.Set(math.Round(rng.Float64()*16-8)/2, it.Index()...)
			}
			inputs[names[i]] = tt
		}
		params = append(params, restructure.Param{
			Name: "out", DType: tensor.Float32, Shape: outShape, Dir: restructure.Out,
		})
		k := &restructure.Kernel{
			Name:   "fuzz",
			Params: params,
			Stages: []restructure.Stage{&restructure.MapStage{
				Out: "out", Ins: ins, Accs: accs, Expr: randExpr(rng, nIn, 3),
			}},
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid kernel: %v", trial, err)
		}
		want, err := restructure.Run(k, inputs)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		m, err := drx.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := CompileAndRun(k, m, inputs)
		if err != nil {
			t.Fatalf("trial %d (out %v): compile/run: %v", trial, outShape, err)
		}
		if !tensor.AllClose(want["out"], got["out"], 1e-3) {
			t.Fatalf("trial %d (out %v, %d ins): DRX diverges from reference", trial, outShape, nIn)
		}
	}
}

// TestFuzzAblationsMatchReference repeats a smaller fuzz under each
// ablation: disabling an optimization must never change results.
func TestFuzzAblationsMatchReference(t *testing.T) {
	const trials = 20
	rng := rand.New(rand.NewSource(42))
	cfg := drx.DefaultConfig()
	opts := []Options{
		{NoBlockedMap: true},
		{NoTransEngine: true},
		{NoGatherShare: true},
	}
	for trial := 0; trial < trials; trial++ {
		outShape := []int{1 + rng.Intn(50), 1 + rng.Intn(12)} // narrow: blocked-mode territory
		acc, inShape := randAccess(rng, outShape)
		k := &restructure.Kernel{
			Name: "fuzz-ablate",
			Params: []restructure.Param{
				{Name: "a", DType: tensor.Float32, Shape: inShape, Dir: restructure.In},
				{Name: "out", DType: tensor.Float32, Shape: outShape, Dir: restructure.Out},
			},
			Stages: []restructure.Stage{&restructure.MapStage{
				Out: "out", Ins: []string{"a"}, Accs: []restructure.Access{acc},
				Expr: randExpr(rng, 1, 2),
			}},
		}
		tt := tensor.New(tensor.Float32, inShape...)
		it := tensor.NewIter(inShape)
		for it.Next() {
			tt.Set(math.Round(rng.Float64()*8-4)/2, it.Index()...)
		}
		inputs := map[string]*tensor.Tensor{"a": tt}
		want, err := restructure.Run(k, inputs)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range opts {
			c, err := CompileWithOptions(k, cfg, o)
			if err != nil {
				t.Fatalf("trial %d %+v: %v", trial, o, err)
			}
			m, _ := drx.New(cfg)
			got, _, err := Execute(c, m, inputs)
			if err != nil {
				t.Fatalf("trial %d %+v: %v", trial, o, err)
			}
			if !tensor.AllClose(want["out"], got["out"], 1e-3) {
				t.Fatalf("trial %d: ablation %+v changed results", trial, o)
			}
		}
	}
}
