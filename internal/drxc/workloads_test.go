package drxc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/restructure"
	"dmx/internal/sweep"
	"dmx/internal/tensor"
	"dmx/internal/workload"
)

// The workload-wide differential checker: every restructuring hop of
// every benchmark application — the five Table I pipelines plus the
// GenAI-RAG and PIR+NER chains — must be byte- and Result-identical
// between the machine's bulk fast paths and the element interpreter.
// This file is an external test package because workload depends (via
// dmxsys) on drxc itself.

type hopCase struct {
	bench  string
	hop    int
	kernel *restructure.Kernel
}

func allWorkloadHops(t *testing.T) []hopCase {
	t.Helper()
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if rag, err := workload.GenAIRAG(workload.TestScale); err != nil {
		t.Fatal(err)
	} else {
		benches = append(benches, rag)
	}
	if pir, err := workload.PIRWithNER(workload.TestScale); err != nil {
		t.Fatal(err)
	} else {
		benches = append(benches, pir)
	}
	var hops []hopCase
	for _, b := range benches {
		for i, h := range b.Pipeline.Hops {
			hops = append(hops, hopCase{bench: b.Name, hop: i, kernel: h.Kernel})
		}
	}
	if len(hops) < 7 {
		t.Fatalf("expected hops from every benchmark, got %d", len(hops))
	}
	return hops
}

func randHopInputs(seed int64, k *restructure.Kernel) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	inputs := make(map[string]*tensor.Tensor)
	for _, p := range k.Inputs() {
		in := tensor.New(p.DType, p.Shape...)
		it := tensor.NewIter(p.Shape)
		for it.Next() {
			switch p.DType {
			case tensor.Complex64:
				in.SetComplex(complex(rng.Float64()*4-2, rng.Float64()*4-2), it.Index()...)
			case tensor.Uint8:
				in.Set(float64(rng.Intn(256)), it.Index()...)
			case tensor.Int8:
				in.Set(float64(rng.Intn(256)-128), it.Index()...)
			case tensor.Int16:
				in.Set(float64(rng.Intn(1<<16)-1<<15), it.Index()...)
			case tensor.Int32:
				in.Set(float64(rng.Intn(1<<20)-1<<19), it.Index()...)
			default:
				in.Set(rng.Float64()*200-100, it.Index()...)
			}
		}
		inputs[p.Name] = in
	}
	return inputs
}

func TestFastPathWorkloadHopsBitIdentical(t *testing.T) {
	hops := allWorkloadHops(t)
	cfg := drx.DefaultConfig()
	kernels := make([]*restructure.Kernel, len(hops))
	for i, h := range hops {
		kernels[i] = h.kernel
	}
	if err := drxc.WarmCompiled(cfg, kernels); err != nil {
		t.Fatal(err)
	}
	err := sweep.Each(len(hops), func(i int) error {
		h := hops[i]
		c, err := drxc.CompileCached(h.kernel, cfg)
		if err != nil {
			return fmt.Errorf("%s hop %d (%s): compile: %w", h.bench, h.hop, h.kernel.Name, err)
		}
		inputs := randHopInputs(3000+int64(i), h.kernel)
		outs := [2]map[string]*tensor.Tensor{}
		ress := [2]drx.Result{}
		for j := 0; j < 2; j++ {
			m, err := drx.New(cfg)
			if err != nil {
				return err
			}
			m.SetFastPath(j == 0)
			if outs[j], ress[j], err = drxc.Execute(c, m, inputs); err != nil {
				return fmt.Errorf("%s hop %d (%s, fast=%v): %w", h.bench, h.hop, h.kernel.Name, j == 0, err)
			}
		}
		if ress[0] != ress[1] {
			return fmt.Errorf("%s hop %d (%s): Result divergence:\nfast:   %+v\ninterp: %+v",
				h.bench, h.hop, h.kernel.Name, ress[0], ress[1])
		}
		for name, a := range outs[0] {
			if !bytes.Equal(a.Bytes(), outs[1][name].Bytes()) {
				return fmt.Errorf("%s hop %d (%s): output %q not byte-identical",
					h.bench, h.hop, h.kernel.Name, name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
