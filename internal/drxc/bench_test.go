package drxc

import (
	"testing"

	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// BenchmarkRestructureLibrary executes the whole kernel library per
// iteration, with the machine's bulk operand fast paths on (the shipped
// configuration) and off (the reference element interpreter). The ratio
// between the two sub-benchmarks is the data-plane speedup; the
// differential tests in fastdiff_test.go prove the outputs identical.
func BenchmarkRestructureLibrary(b *testing.B) {
	cfg := drx.DefaultConfig()
	kernels := libraryKernels()
	compiled := make([]*Compiled, len(kernels))
	inputs := make([]map[string]*tensor.Tensor, len(kernels))
	for i, k := range kernels {
		c, err := CompileCached(k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		compiled[i] = c
		inputs[i] = randKernelInputs(4000+int64(i), k)
	}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"interp", false}} {
		b.Run(mode.name, func(b *testing.B) {
			m, err := drx.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			m.SetFastPath(mode.fast)
			var bytesMoved int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, c := range compiled {
					_, res, err := Execute(c, m, inputs[j])
					if err != nil {
						b.Fatal(err)
					}
					bytesMoved = res.BytesLoaded + res.BytesStored
				}
			}
			_ = bytesMoved
		})
	}
}

// BenchmarkCompile contrasts a cache hit with a full compilation — the
// per-enqueue cost the program cache removes from the dispatch path.
func BenchmarkCompile(b *testing.B) {
	cfg := drx.DefaultConfig()
	k := restructure.MelSpectrogram(12, 64, 16)
	if _, err := CompileCached(k, cfg); err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := CompileCached(k, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compile(k, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
