package drxc

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dmx/internal/drx"
	"dmx/internal/isa"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// differential runs a kernel on both the reference interpreter and the
// compiled DRX program and compares outputs within tol.
func differential(t *testing.T, k *restructure.Kernel, inputs map[string]*tensor.Tensor, tol float64) drx.Result {
	t.Helper()
	want, err := restructure.Run(k, inputs)
	if err != nil {
		t.Fatalf("%s: reference: %v", k.Name, err)
	}
	m, err := drx.New(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := CompileAndRun(k, m, inputs)
	if err != nil {
		t.Fatalf("%s: DRX: %v", k.Name, err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("%s: DRX run missing output %q", k.Name, name)
		}
		if !tensor.AllClose(w, g, tol) {
			reportDiff(t, k.Name, name, w, g)
		}
	}
	return res
}

func reportDiff(t *testing.T, kname, pname string, w, g *tensor.Tensor) {
	t.Helper()
	it := tensor.NewIter(w.Shape())
	shown := 0
	for it.Next() && shown < 5 {
		a, b := w.At(it.Index()...), g.At(it.Index()...)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("%s: output %q differs at %v: reference %v, DRX %v", kname, pname, it.Index(), a, b)
			shown++
		}
	}
	if shown == 0 {
		t.Errorf("%s: output %q differs (shape/dtype level)", kname, pname)
	}
}

func randComplex(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.Complex64, shape...)
	it := tensor.NewIter(shape)
	for it.Next() {
		t.SetComplex(complex(rng.Float64()*4-2, rng.Float64()*4-2), it.Index()...)
	}
	return t
}

func randFloat32(rng *rand.Rand, lo, hi float64, shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.Float32, shape...)
	it := tensor.NewIter(shape)
	for it.Next() {
		t.Set(lo+rng.Float64()*(hi-lo), it.Index()...)
	}
	return t
}

func randBytes(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.Uint8, shape...)
	it := tensor.NewIter(shape)
	for it.Next() {
		t.Set(float64(rng.Intn(256)), it.Index()...)
	}
	return t
}

func TestCompileMelSpectrogramMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frames, bins, mels := 12, 64, 16
	k := restructure.MelSpectrogram(frames, bins, mels)
	inputs := map[string]*tensor.Tensor{
		"spectrum": randComplex(rng, frames, bins),
		"melw":     restructure.MelWeights(bins, mels),
	}
	differential(t, k, inputs, 1e-3)
}

func TestCompileVideoPreprocessMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pixels := 256 // divisible by 64 → exercises the Transposition Engine
	k := restructure.VideoPreprocess(pixels)
	inputs := map[string]*tensor.Tensor{
		"yuv":  randBytes(rng, pixels, 3),
		"csc":  restructure.CSCMatrix(),
		"bias": restructure.CSCBiasProjected(),
	}
	// int8 quantization boundaries: float32 vs float64 rounding can land
	// on either side of .5 — allow off-by-one on the int8 grid.
	differential(t, k, inputs, 1.01)
}

func TestCompileSignalNormalizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	batch, bins := 6, 96
	k := restructure.SignalNormalize(batch, bins)
	inputs := map[string]*tensor.Tensor{"freq": randComplex(rng, batch, bins)}
	differential(t, k, inputs, 1e-4)
}

func TestCompileRecordFrameMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k := restructure.RecordFrame(16, 48)
	inputs := map[string]*tensor.Tensor{"plain": randBytes(rng, 16*48)}
	differential(t, k, inputs, 0)
}

func TestCompileColumnPackMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nrows, keyDigits, amtDigits, payBytes := 128, 6, 7, 10
	rows := tensor.New(tensor.Uint8, nrows, keyDigits+amtDigits+payBytes)
	for r := 0; r < nrows; r++ {
		for d := 0; d < keyDigits+amtDigits; d++ {
			rows.Set(float64('0'+rng.Intn(10)), r, d)
		}
		for p := 0; p < payBytes; p++ {
			rows.Set(float64(rng.Intn(256)), r, keyDigits+amtDigits+p)
		}
	}
	k := restructure.ColumnPack(nrows, keyDigits, amtDigits, payBytes)
	differential(t, k, map[string]*tensor.Tensor{"rows": rows}, 0)
}

func TestCompileNERPrepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := restructure.NERPrep(32, 64, 128)
	inputs := map[string]*tensor.Tensor{"records": randBytes(rng, 32, 64)}
	differential(t, k, inputs, 0)
}

func TestCompileSumReduceMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := restructure.SumReduce(8, 300)
	inputs := map[string]*tensor.Tensor{"parts": randFloat32(rng, -10, 10, 8, 300)}
	differential(t, k, inputs, 1e-3)
}

func TestCompileLargeKernelNeedsTiling(t *testing.T) {
	// 100k elements cannot fit the 16k-element scratchpad: the compiler
	// must tile, and the result must still be exact.
	rng := rand.New(rand.NewSource(8))
	k := restructure.RecordFrame(100, 1000)
	inputs := map[string]*tensor.Tensor{"plain": randBytes(rng, 100000)}
	res := differential(t, k, inputs, 0)
	if res.BytesLoaded < 100000 {
		t.Errorf("BytesLoaded = %d, want >= 100000", res.BytesLoaded)
	}
}

func TestCompileReduceMaxAndOddSizes(t *testing.T) {
	// Remainder paths: 3 rows of length 7777 (not a divisor-friendly
	// size) reduced with MaxR.
	rng := rand.New(rand.NewSource(9))
	k := &restructure.Kernel{
		Name: "rowmax",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{3, 7777}, Dir: restructure.In},
			{Name: "y", DType: tensor.Float32, Shape: []int{3}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.ReduceStage{Out: "y", In: "x", Axis: 1, Op: restructure.MaxR},
		},
	}
	inputs := map[string]*tensor.Tensor{"x": randFloat32(rng, -100, 100, 3, 7777)}
	differential(t, k, inputs, 1e-4)
}

func TestCompileTransposeFallbackPath(t *testing.T) {
	// 37x53: prime-ish dims defeat the Transposition Engine tiling and
	// exercise the strided Map fallback.
	rng := rand.New(rand.NewSource(10))
	k := &restructure.Kernel{
		Name: "transpose-odd",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{37, 53}, Dir: restructure.In},
			{Name: "y", DType: tensor.Float32, Shape: []int{53, 37}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.TransposeStage{Out: "y", In: "x", Perm: []int{1, 0}},
		},
	}
	inputs := map[string]*tensor.Tensor{"x": randFloat32(rng, -5, 5, 37, 53)}
	differential(t, k, inputs, 0)
}

func TestCompileTransposeEnginePath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k := &restructure.Kernel{
		Name: "transpose-even",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{128, 192}, Dir: restructure.In},
			{Name: "y", DType: tensor.Float32, Shape: []int{192, 128}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.TransposeStage{Out: "y", In: "x", Perm: []int{1, 0}},
		},
	}
	c, err := Compile(k, drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The engine path must actually use Trans instructions.
	found := false
	for _, in := range c.Prog.Instrs {
		if in.Op == isa.Trans {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected Trans instructions for divisor-friendly transpose")
	}
	inputs := map[string]*tensor.Tensor{"x": randFloat32(rng, -5, 5, 128, 192)}
	differential(t, k, inputs, 0)
}

func TestCompileRejectsInt64(t *testing.T) {
	k := &restructure.Kernel{
		Name: "int64",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Int64, Shape: []int{4}, Dir: restructure.In},
			{Name: "y", DType: tensor.Int64, Shape: []int{4}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.MapStage{Out: "y", Ins: []string{"x"},
				Accs: []restructure.Access{restructure.IdentityAccess(1)}, Expr: restructure.InN(0)},
		},
	}
	m, _ := drx.New(drx.DefaultConfig())
	if _, _, err := CompileAndRun(k, m, nil); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Fatalf("want unsupported-dtype error, got %v", err)
	}
}

func TestCompileMatMulOddTiles(t *testing.T) {
	// n chosen so the column tiling has a remainder.
	rng := rand.New(rand.NewSource(12))
	k := &restructure.Kernel{
		Name: "mm-odd",
		Params: []restructure.Param{
			{Name: "a", DType: tensor.Float32, Shape: []int{9, 700}, Dir: restructure.In},
			{Name: "b", DType: tensor.Float32, Shape: []int{700, 23}, Dir: restructure.In},
			{Name: "c", DType: tensor.Float32, Shape: []int{9, 23}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{&restructure.MatMulStage{Out: "c", A: "a", B: "b"}},
	}
	inputs := map[string]*tensor.Tensor{
		"a": randFloat32(rng, -1, 1, 9, 700),
		"b": randFloat32(rng, -1, 1, 700, 23),
	}
	differential(t, k, inputs, 1e-2)
}

func TestCompiledProgramsDisassemble(t *testing.T) {
	// Every generated program must survive the assembler round trip —
	// proof that the compiler emits only well-formed ISA.
	kernels := []*restructure.Kernel{
		restructure.MelSpectrogram(8, 32, 8),
		restructure.VideoPreprocess(128),
		restructure.SignalNormalize(4, 64),
		restructure.RecordFrame(8, 32),
		restructure.ColumnPack(64, 6, 7, 10),
		restructure.NERPrep(16, 32, 64),
		restructure.SumReduce(4, 100),
	}
	for _, k := range kernels {
		c, err := Compile(k, drx.DefaultConfig())
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if _, err := isa.Assemble(c.Prog.Disassemble()); err != nil {
			t.Errorf("%s: disassembly does not re-assemble: %v", k.Name, err)
		}
		if _, err := isa.Encode(c.Prog); err != nil {
			t.Errorf("%s: encode: %v", k.Name, err)
		}
	}
}

func TestLaneSweepChangesCycles(t *testing.T) {
	// Fig. 18's premise: more lanes → fewer compute cycles, saturating
	// once memory dominates.
	rng := rand.New(rand.NewSource(13))
	k := restructure.MelSpectrogram(32, 128, 32)
	inputs := map[string]*tensor.Tensor{
		"spectrum": randComplex(rng, 32, 128),
		"melw":     restructure.MelWeights(128, 32),
	}
	var prev int64 = math.MaxInt64
	for _, lanes := range []int{32, 64, 128} {
		m, err := drx.New(drx.DefaultConfig().WithLanes(lanes))
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := CompileAndRun(k, m, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if res.ComputeCycles > prev {
			t.Errorf("%d lanes: compute cycles %d grew vs previous %d", lanes, res.ComputeCycles, prev)
		}
		prev = res.ComputeCycles
	}
}

func TestCompileLayoutDisjoint(t *testing.T) {
	k := restructure.MelSpectrogram(8, 32, 8)
	c, err := Compile(k, drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	type region struct {
		name   string
		lo, hi int64
	}
	var regions []region
	for _, p := range k.Params {
		base := c.Layout[p.Name]
		regions = append(regions, region{p.Name, base, base + int64(p.SizeBytes())})
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Errorf("regions %s and %s overlap", a.name, b.name)
			}
		}
	}
	if c.DRAMBytes <= 0 {
		t.Error("DRAMBytes not reported")
	}
}

func TestCompileReduceOuterAxisAllOps(t *testing.T) {
	// Axis-0 reductions (the accumulate-across-partials path) for every
	// reduction operator, with remainder-producing sizes.
	rng := rand.New(rand.NewSource(14))
	for _, op := range []restructure.ReduceOp{restructure.SumR, restructure.MaxR, restructure.MeanR} {
		k := &restructure.Kernel{
			Name: "outer-" + op.String(),
			Params: []restructure.Param{
				{Name: "x", DType: tensor.Float32, Shape: []int{5, 333}, Dir: restructure.In},
				{Name: "y", DType: tensor.Float32, Shape: []int{333}, Dir: restructure.Out},
			},
			Stages: []restructure.Stage{
				&restructure.ReduceStage{Out: "y", In: "x", Axis: 0, Op: op},
			},
		}
		inputs := map[string]*tensor.Tensor{"x": randFloat32(rng, -50, 50, 5, 333)}
		differential(t, k, inputs, 1e-3)
	}
}

func TestCompileMeanLastAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	k := &restructure.Kernel{
		Name: "rowmean",
		Params: []restructure.Param{
			{Name: "x", DType: tensor.Float32, Shape: []int{7, 1234}, Dir: restructure.In},
			{Name: "y", DType: tensor.Float32, Shape: []int{7}, Dir: restructure.Out},
		},
		Stages: []restructure.Stage{
			&restructure.ReduceStage{Out: "y", In: "x", Axis: 1, Op: restructure.MeanR},
		},
	}
	inputs := map[string]*tensor.Tensor{"x": randFloat32(rng, -5, 5, 7, 1234)}
	differential(t, k, inputs, 1e-3)
}
