package drxc

import (
	"fmt"

	"dmx/internal/isa"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// leafKey identifies one loaded operand of a Map expression: which input
// of the stage, and which complex component (0 = real/whole, 1 = imag).
type leafKey struct {
	input int
	comp  int
}

// vop is a symbolic vector instruction over buffer indices, produced by
// the expression compiler before buffers are placed in the scratchpad.
type vop struct {
	op  isa.Opcode
	dst int
	a   int
	b   int // noBuf when unused
	imm float32
}

// noBuf marks an absent second operand (temp ids are negative, so -1
// cannot serve as the sentinel).
const noBuf = int(^uint(0) >> 1)

// exprProgram is the symbolic compilation of one Map expression.
type exprProgram struct {
	leaves  []leafKey
	leafIdx map[leafKey]int
	nTemps  int
	free    []int
	ops     []vop
	result  int
}

// compileExpr lowers a restructure.Expr tree into vector ops over
// abstract buffers, reusing temporaries tree-style.
func compileExpr(e restructure.Expr) (*exprProgram, error) {
	p := &exprProgram{leafIdx: make(map[leafKey]int)}
	r, err := p.compile(e)
	if err != nil {
		return nil, err
	}
	p.result = r
	return p, nil
}

func (p *exprProgram) leaf(k leafKey) int {
	if i, ok := p.leafIdx[k]; ok {
		return i
	}
	i := len(p.leaves)
	p.leaves = append(p.leaves, k)
	p.leafIdx[k] = i
	return i
}

// Buffer numbering: leaves occupy [0, len(leaves)); temps follow. Because
// leaves are discovered during compilation, temps are numbered from the
// top (negative) and fixed up afterward by bufCount/mapBuf.
func (p *exprProgram) allocTemp() int {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		return t
	}
	p.nTemps++
	return -p.nTemps // temp k is -k-? (temp ids are negative)
}

func (p *exprProgram) freeTemp(b int) {
	if b < 0 {
		p.free = append(p.free, b)
	}
}

func isTemp(b int) bool { return b < 0 }

// bufCount reports the total number of tile buffers needed.
func (p *exprProgram) bufCount() int { return len(p.leaves) + p.nTemps }

// bufIndex maps an abstract buffer id to a dense index in [0, bufCount).
func (p *exprProgram) bufIndex(b int) int {
	if b >= 0 {
		return b
	}
	return len(p.leaves) + (-b - 1)
}

func (p *exprProgram) emit(op isa.Opcode, dst, a, b int, imm float32) {
	p.ops = append(p.ops, vop{op: op, dst: dst, a: a, b: b, imm: imm})
}

// materializeConst fills a fresh temp with a constant.
func (p *exprProgram) materializeConst(c float64) int {
	t := p.allocTemp()
	p.emit(isa.VMulI, t, t, noBuf, 0)
	p.emit(isa.VAddI, t, t, noBuf, float32(c))
	return t
}

var unOpTable = map[restructure.UnOp]isa.Opcode{
	restructure.Neg:   isa.VNeg,
	restructure.Abs:   isa.VAbs,
	restructure.Sqrt:  isa.VSqrt,
	restructure.Log:   isa.VLog,
	restructure.Exp:   isa.VExp,
	restructure.Floor: isa.VFloor,
}

var binOpTable = map[restructure.BinOp]isa.Opcode{
	restructure.Add: isa.VAdd,
	restructure.Sub: isa.VSub,
	restructure.Mul: isa.VMul,
	restructure.Div: isa.VDiv,
	restructure.Min: isa.VMin,
	restructure.Max: isa.VMax,
	restructure.Mod: isa.VMod,
}

var immOpTable = map[restructure.BinOp]isa.Opcode{
	restructure.Add: isa.VAddI,
	restructure.Sub: isa.VSubI,
	restructure.Mul: isa.VMulI,
	restructure.Div: isa.VDivI,
	restructure.Min: isa.VMinI,
	restructure.Max: isa.VMaxI,
}

func commutative(op restructure.BinOp) bool {
	switch op {
	case restructure.Add, restructure.Mul, restructure.Min, restructure.Max:
		return true
	}
	return false
}

func (p *exprProgram) compile(e restructure.Expr) (int, error) {
	switch x := e.(type) {
	case restructure.Input:
		return p.leaf(leafKey{input: x.I}), nil
	case restructure.Const:
		return p.materializeConst(x.V), nil
	case restructure.Unary:
		switch x.Op {
		case restructure.Re, restructure.Im, restructure.Mag2:
			in, ok := x.X.(restructure.Input)
			if !ok {
				return 0, fmt.Errorf("complex projection %v over non-input expression", x.Op)
			}
			switch x.Op {
			case restructure.Re:
				return p.leaf(leafKey{input: in.I, comp: 0}), nil
			case restructure.Im:
				return p.leaf(leafKey{input: in.I, comp: 1}), nil
			default: // Mag2 = re² + im²
				re := p.leaf(leafKey{input: in.I, comp: 0})
				im := p.leaf(leafKey{input: in.I, comp: 1})
				t := p.allocTemp()
				t2 := p.allocTemp()
				p.emit(isa.VMul, t, re, re, 0)
				p.emit(isa.VMul, t2, im, im, 0)
				p.emit(isa.VAdd, t, t, t2, 0)
				p.freeTemp(t2)
				return t, nil
			}
		}
		op, ok := unOpTable[x.Op]
		if !ok {
			return 0, fmt.Errorf("unary op %v has no DRX lowering", x.Op)
		}
		a, err := p.compile(x.X)
		if err != nil {
			return 0, err
		}
		dst := a
		if !isTemp(a) {
			dst = p.allocTemp()
		}
		p.emit(op, dst, a, noBuf, 0)
		return dst, nil
	case restructure.Binary:
		return p.compileBinary(x)
	}
	return 0, fmt.Errorf("unknown expression node %T", e)
}

func (p *exprProgram) compileBinary(x restructure.Binary) (int, error) {
	immOp, hasImm := immOpTable[x.Op]
	// Fold a constant right operand into an immediate instruction.
	if c, ok := x.Y.(restructure.Const); ok && hasImm {
		a, err := p.compile(x.X)
		if err != nil {
			return 0, err
		}
		dst := a
		if !isTemp(a) {
			dst = p.allocTemp()
		}
		p.emit(immOp, dst, a, noBuf, float32(c.V))
		return dst, nil
	}
	if c, ok := x.X.(restructure.Const); ok {
		switch {
		case hasImm && commutative(x.Op):
			b, err := p.compile(x.Y)
			if err != nil {
				return 0, err
			}
			dst := b
			if !isTemp(b) {
				dst = p.allocTemp()
			}
			p.emit(immOp, dst, b, noBuf, float32(c.V))
			return dst, nil
		case x.Op == restructure.Sub: // c - y = -(y - c)
			b, err := p.compile(x.Y)
			if err != nil {
				return 0, err
			}
			dst := b
			if !isTemp(b) {
				dst = p.allocTemp()
			}
			p.emit(isa.VSubI, dst, b, noBuf, float32(c.V))
			p.emit(isa.VNeg, dst, dst, noBuf, 0)
			return dst, nil
		}
	}
	op, ok := binOpTable[x.Op]
	if !ok {
		return 0, fmt.Errorf("binary op %v has no DRX lowering", x.Op)
	}
	a, err := p.compile(x.X)
	if err != nil {
		return 0, err
	}
	b, err := p.compile(x.Y)
	if err != nil {
		return 0, err
	}
	dst := a
	switch {
	case isTemp(a):
		if isTemp(b) {
			p.freeTemp(b)
		}
	case isTemp(b):
		dst = b
	default:
		dst = p.allocTemp()
	}
	p.emit(op, dst, a, b, 0)
	return dst, nil
}

// lowerMap compiles the expression and dispatches to the blocked
// schedule (narrow inner dimension or strided rank-1) or the plain
// inner-tiled schedule.
func (b *builder) lowerMap(st *restructure.MapStage) error {
	ep, err := compileExpr(st.Expr)
	if err != nil {
		return err
	}
	out := b.param(st.Out)
	outShape := out.Shape
	if len(outShape) == 0 {
		outShape = []int{1}
	}
	if !b.opts.NoBlockedMap {
		if plan, ok := b.planBlockedMap(st, ep, outShape); ok {
			return b.emitBlockedMap(st, ep, outShape, plan)
		}
	}
	return b.lowerMapPlain(st, ep, outShape)
}

// lowerMapPlain generates the inner-dimension-tiled loop nest.
func (b *builder) lowerMapPlain(st *restructure.MapStage, ep *exprProgram, outShape []int) error {
	r := len(outShape)
	inner := outShape[r-1]

	// Tile the innermost output dimension against the scratchpad: one
	// buffer per leaf and temp. (No extra staging — the expression result
	// buffer is stored directly.)
	nBuf := int64(ep.bufCount())
	if nBuf == 0 {
		nBuf = 1
	}
	tile := int64(b.cfg.ScratchElems()) / nBuf
	if tile > int64(inner) {
		tile = int64(inner)
	}
	if tile > 8192 {
		tile = 8192
	}
	if tile < 1 {
		return fmt.Errorf("scratchpad too small for %d buffers", nBuf)
	}
	tiles := int64(inner) / tile
	rem := int64(inner) % tile

	if tiles > 0 {
		if err := b.emitMapNest(st, ep, outShape, tile, tiles, 0); err != nil {
			return err
		}
	}
	if rem > 0 {
		b.resetNest()
		if err := b.emitMapNest(st, ep, outShape, rem, 0, tiles*tile); err != nil {
			return err
		}
	}
	return nil
}

// emitMapNest emits one loop nest covering either the main tiles
// (tiles > 0, tileOffset 0) or the remainder (tiles == 0, offset set).
func (b *builder) emitMapNest(st *restructure.MapStage, ep *exprProgram,
	outShape []int, tileLen, tiles, tileOffset int64) error {

	r := len(outShape)
	withTileLoop := tiles > 1
	levels := r - 1
	if withTileLoop {
		levels++
	}

	// Place tile buffers.
	bufBase := make([]int64, ep.bufCount())
	for i := range bufBase {
		base, err := b.allocScratch(tileLen)
		if err != nil {
			return err
		}
		bufBase[i] = base
	}
	// Scratch streams, one per buffer (fixed address, unit stride).
	bufStream := make([]int32, ep.bufCount())
	for i, base := range bufBase {
		id, err := b.stream(isa.Scratch, isa.F32, base, 1, nil)
		if err != nil {
			return err
		}
		bufStream[i] = id
	}

	// DRAM streams for each leaf.
	leafDram := make([]int32, len(ep.leaves))
	for i, lk := range ep.leaves {
		id, err := b.leafStream(st, lk, outShape, levels, withTileLoop, tileLen, tileOffset)
		if err != nil {
			return err
		}
		leafDram[i] = id
	}

	// Output stream.
	out := b.param(st.Out)
	odt, err := mapDT(out.DType)
	if err != nil {
		return fmt.Errorf("output %q: %w", st.Out, err)
	}
	ostr := rowMajor(outShape)
	strides := make([]int32, levels)
	for j := 0; j < r-1; j++ {
		strides[j] = int32(ostr[j])
	}
	if withTileLoop {
		strides[levels-1] = int32(tileLen)
	}
	outDram, err := b.stream(isa.DRAM, odt, b.baseElems(st.Out, odt.Size())+tileOffset, 1, strides)
	if err != nil {
		return err
	}

	// Loop nest.
	open := 0
	for j := 0; j < r-1; j++ {
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(outShape[j])})
		open++
	}
	if withTileLoop {
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(tiles)})
		open++
	}

	// Body: load leaves, run the expression, store the result.
	for i := range ep.leaves {
		b.emit(isa.Instr{Op: isa.Load, Dst: bufStream[ep.bufIndex(i)], Src1: leafDram[i], N: int32(tileLen)})
	}
	for _, op := range ep.ops {
		in := isa.Instr{Op: op.op, Dst: bufStream[ep.bufIndex(op.dst)],
			Src1: bufStream[ep.bufIndex(op.a)], N: int32(tileLen), Imm: op.imm}
		if op.b != noBuf {
			in.Src2 = bufStream[ep.bufIndex(op.b)]
		}
		b.emit(in)
	}
	b.emit(isa.Instr{Op: isa.Store, Dst: outDram, Src1: bufStream[ep.bufIndex(ep.result)], N: int32(tileLen)})

	for ; open > 0; open-- {
		b.emit(isa.Instr{Op: isa.LoopEnd})
	}
	return nil
}

// leafStream builds the DRAM stream for one expression leaf by composing
// the stage's affine access with the input tensor's row-major layout.
func (b *builder) leafStream(st *restructure.MapStage, lk leafKey,
	outShape []int, levels int, withTileLoop bool, tileLen, tileOffset int64) (int32, error) {

	name := st.Ins[lk.input]
	acc := st.Accs[lk.input]
	p := b.param(name)
	ts := rowMajor(p.Shape)
	r := len(outShape)

	// Linear offset and per-output-dim coefficients in input elements.
	var off int64
	coef := make([]int64, r)
	for d := range acc.Offset {
		off += int64(acc.Offset[d]) * ts[d]
		for j := 0; j < r && j < len(acc.Coef[d]); j++ {
			coef[j] += int64(acc.Coef[d][j]) * ts[d]
		}
	}

	scale := int64(1)
	dt := isa.F32
	esz := 4
	if p.DType == tensor.Complex64 {
		scale = 2 // interleaved (re, im) float32 pairs
	} else {
		var err error
		dt, err = mapDT(p.DType)
		if err != nil {
			return 0, fmt.Errorf("input %q: %w", name, err)
		}
		esz = dt.Size()
		if lk.comp != 0 {
			return 0, fmt.Errorf("input %q: imaginary component of real tensor", name)
		}
	}

	base := b.baseElems(name, esz) + scale*(off+coef[r-1]*tileOffset) + int64(lk.comp)
	strides := make([]int32, levels)
	for j := 0; j < r-1; j++ {
		strides[j] = int32(scale * coef[j])
	}
	if withTileLoop {
		strides[levels-1] = int32(scale * coef[r-1] * tileLen)
	}
	return b.stream(isa.DRAM, dt, base, int32(scale*coef[r-1]), strides)
}
