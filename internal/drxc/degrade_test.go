package drxc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/restructure"
	"dmx/internal/sweep"
	"dmx/internal/tensor"
)

// degradeHopInputs builds domain-valid inputs for a hop kernel: byte
// fields that workload kernels parse as ASCII digits (column-pack's
// key/amount decode) get digit bytes, keeping the decoded integers
// inside float32's exact range — the regime the workloads actually run
// in and the one drxc's own differential tests pin at tolerance zero.
func degradeHopInputs(seed int64, k *restructure.Kernel) map[string]*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	inputs := randHopInputs(seed, k)
	for _, p := range k.Inputs() {
		if p.DType != tensor.Uint8 {
			continue
		}
		in := inputs[p.Name]
		it := tensor.NewIter(p.Shape)
		for it.Next() {
			in.Set(float64('0'+rng.Intn(10)), it.Index()...)
		}
	}
	return inputs
}

// Graceful degradation's functional contract: when a hop falls back to
// CPU-mediated restructuring (dmxsys degradeHop), the software path is
// restructure.Run — so for every workload hop kernel, the CPU reference
// interpreter must reproduce the DRX execution it replaces on
// domain-valid inputs. Pure data-motion outputs (layout, dtype, format
// conversion) are byte-identical; outputs that involve float
// arithmetic agree within the compiler's established differential
// tolerance (the DRX evaluates in float32 lanes while the reference
// interpreter carries float64, so low-bit rounding can differ — the
// same contract drxc's own differential tests assert). A degraded
// request differs from a clean one in timing and energy only, never in
// meaning.
func TestCPUFallbackBitIdenticalToDRX(t *testing.T) {
	hops := allWorkloadHops(t)
	cfg := drx.DefaultConfig()
	kernels := make([]*restructure.Kernel, len(hops))
	for i, h := range hops {
		kernels[i] = h.kernel
	}
	if err := drxc.WarmCompiled(cfg, kernels); err != nil {
		t.Fatal(err)
	}
	err := sweep.Each(len(hops), func(i int) error {
		h := hops[i]
		c, err := drxc.CompileCached(h.kernel, cfg)
		if err != nil {
			return fmt.Errorf("%s hop %d (%s): compile: %w", h.bench, h.hop, h.kernel.Name, err)
		}
		inputs := degradeHopInputs(9000+int64(i), h.kernel)
		m, err := drx.New(cfg)
		if err != nil {
			return err
		}
		drxOut, _, err := drxc.Execute(c, m, inputs)
		if err != nil {
			return fmt.Errorf("%s hop %d (%s): DRX: %w", h.bench, h.hop, h.kernel.Name, err)
		}
		cpuOut, err := restructure.Run(h.kernel, inputs)
		if err != nil {
			return fmt.Errorf("%s hop %d (%s): CPU fallback: %w", h.bench, h.hop, h.kernel.Name, err)
		}
		if len(cpuOut) != len(drxOut) {
			return fmt.Errorf("%s hop %d (%s): CPU fallback produced %d outputs, DRX %d",
				h.bench, h.hop, h.kernel.Name, len(cpuOut), len(drxOut))
		}
		for name, want := range drxOut {
			got, ok := cpuOut[name]
			if !ok {
				return fmt.Errorf("%s hop %d (%s): CPU fallback missing output %q",
					h.bench, h.hop, h.kernel.Name, name)
			}
			if bytes.Equal(got.Bytes(), want.Bytes()) {
				continue
			}
			// Float-compute outputs may differ in low bits; hold them
			// to the same tolerance the compiler's differential tests
			// use for arithmetic kernels.
			if !tensor.AllClose(want, got, 1e-3) {
				return fmt.Errorf("%s hop %d (%s): output %q differs between CPU fallback and DRX beyond tolerance",
					h.bench, h.hop, h.kernel.Name, name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
