package drxc

import (
	"dmx/internal/isa"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// Blocked Map lowering.
//
// The straightforward Map schedule tiles only the innermost output
// dimension, so a kernel like the video quantizer (output [pixels, 3])
// degenerates into millions of 3-element issues. When the inner
// dimension I is narrower than the RE array, this mode merges the last
// two output dimensions and processes R rows per issue (N = R·I lanes),
// choosing one of three strategies per expression leaf:
//
//   - contiguous: the leaf walks the merged block linearly
//     (row coefficient = I × inner coefficient) → one direct DRAM load;
//   - periodic: the leaf depends only on the inner index (a per-channel
//     bias) → its R·I tile is prefilled once, before the loops;
//   - gather: the leaf reads a fixed field of a fixed-width row (digit
//     and payload extraction) → the row panel loads contiguously ONCE
//     per block — shared by every leaf over the same rows — and cheap
//     in-scratch strided VMovs split out each field.
//
// Rank-1 outputs with strided leaves (the hash-join key parser) use the
// same machinery with I = 1.

type leafClass int

const (
	leafContig leafClass = iota
	leafPeriodic
	leafGather
)

// leafLinear composes a leaf's affine access with its parameter's layout:
// the linear stream-element offset and per-output-dim coefficients, plus
// the stream dtype (complex decomposes into stride-scaled f32).
func (b *builder) leafLinear(st *restructure.MapStage, lk leafKey, outRank int) (off int64, coef []int64, dt isa.DT, err error) {
	name := st.Ins[lk.input]
	acc := st.Accs[lk.input]
	p := b.param(name)
	ts := rowMajor(p.Shape)
	coef = make([]int64, outRank)
	for d := range acc.Offset {
		off += int64(acc.Offset[d]) * ts[d]
		for j := 0; j < outRank && j < len(acc.Coef[d]); j++ {
			coef[j] += int64(acc.Coef[d][j]) * ts[d]
		}
	}
	if p.DType == tensor.Complex64 {
		// Interleaved components viewed as f32: absolute stream address.
		off = b.layout[name]/4 + 2*off + int64(lk.comp)
		for j := range coef {
			coef[j] *= 2
		}
		return off, coef, isa.F32, nil
	}
	dt, err = mapDT(p.DType)
	if err != nil {
		return 0, nil, 0, err
	}
	off += b.baseElems(name, dt.Size())
	return off, coef, dt, nil
}

// blockLeaf is the plan for one expression leaf.
type blockLeaf struct {
	class leafClass
	off   int64
	coef  []int64 // full out-rank coefficients
	dt    isa.DT
	leIn  int64 // inner-dimension coefficient, stream elements
	group int   // gather: index into groups; periodic: into periods
}

// gatherGroup is one shared row panel: all member leaves read fields of
// the same fixed-width row.
type gatherGroup struct {
	param  string
	dt     isa.DT
	rowLen int64 // Le_row: stream elements per row
	base   int64 // smallest member offset
	span   int64 // elements covered from base
	outer  []int64
}

// periodGroup is a shared load of the constant values periodic leaves
// replicate: all leaves of one parameter draw from a single contiguous
// span staged once per nest.
type periodGroup struct {
	param  string
	dt     isa.DT
	lo, hi int64 // stream-element range covered
}

// blockPlan is a complete blocked-mode decision.
type blockPlan struct {
	rows    int64 // merged row dimension extent
	inner   int64 // I
	leaves  []blockLeaf
	groups  []gatherGroup
	periods []periodGroup
}

// addToPeriodGroup merges a periodic leaf's span into its parameter's
// shared period load.
func (p *blockPlan) addToPeriodGroup(st *restructure.MapStage, lk leafKey,
	off int64, dt isa.DT, inner, leIn int64) int {

	name := st.Ins[lk.input]
	lo := off
	hi := off + (inner-1)*leIn + 1
	for gi := range p.periods {
		g := &p.periods[gi]
		if g.param != name || g.dt != dt {
			continue
		}
		if lo < g.lo {
			g.lo = lo
		}
		if hi > g.hi {
			g.hi = hi
		}
		return gi
	}
	p.periods = append(p.periods, periodGroup{param: name, dt: dt, lo: lo, hi: hi})
	return len(p.periods) - 1
}

// planBlockedMap decides whether the stage can run in blocked mode.
func (b *builder) planBlockedMap(st *restructure.MapStage, ep *exprProgram, outShape []int) (*blockPlan, bool) {
	r := len(outShape)
	var rows, inner int64
	switch {
	case r >= 2 && int64(outShape[r-1]) < int64(b.cfg.Lanes):
		rows, inner = int64(outShape[r-2]), int64(outShape[r-1])
	case r == 1:
		rows, inner = int64(outShape[0]), 1
	default:
		return nil, false
	}
	plan := &blockPlan{rows: rows, inner: inner}
	strided := false
	for _, lk := range ep.leaves {
		off, coef, dt, err := b.leafLinear(st, lk, r)
		if err != nil {
			return nil, false
		}
		var leIn, leRow int64
		var outer []int64
		if r >= 2 && inner == int64(outShape[r-1]) && r-2 >= 0 && rows == int64(outShape[r-2]) {
			leIn, leRow = coef[r-1], coef[r-2]
			outer = coef[:r-2]
		} else { // rank 1
			leIn, leRow = 0, coef[0]
			outer = nil
		}
		bl := blockLeaf{off: off, coef: coef, dt: dt, leIn: leIn, group: -1}
		switch {
		case allZero(outer) && leRow == 0:
			bl.class = leafPeriodic
			bl.group = plan.addToPeriodGroup(st, lk, off, dt, inner, leIn)
		case leRow == inner*leIn && leIn >= 1:
			bl.class = leafContig
			if leIn != 1 {
				strided = true
			}
		case leRow >= 1 && leIn >= 0 &&
			(inner-1)*leIn+1 <= leRow && leRow*int64(dt.Size()) <= 64:
			bl.class = leafGather
			strided = true
			bl.group = plan.addToGroup(st, b.opts.NoGatherShare, lk, off, leRow, outer, dt, inner, leIn)
			if bl.group < 0 {
				return nil, false
			}
		default:
			return nil, false
		}
		plan.leaves = append(plan.leaves, bl)
	}
	// Rank-1 outputs only benefit when a leaf is strided (otherwise the
	// plain path already issues wide, contiguous operations).
	if r == 1 && !strided {
		return nil, false
	}
	// Stream-register budget: every panel and leaf needs configured
	// streams; an over-budget plan falls back to the plain schedule.
	streams := 2*len(plan.groups) + 2*len(plan.periods) + 1 // panels + output
	for _, l := range plan.leaves {
		if l.class == leafContig {
			streams += 2 // tile + DRAM stream
		} else {
			streams += 3 // tile + mov dst + mov src
		}
	}
	streams += ep.nTemps
	if streams > isa.MaxStreams-2 {
		return nil, false
	}
	return plan, true
}

func allZero(xs []int64) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}

// addToGroup joins a gather leaf to a compatible shared row panel (same
// parameter, row length, outer coefficients, and all member fields within
// one row period), creating one if needed. Returns the group index.
func (p *blockPlan) addToGroup(st *restructure.MapStage, noShare bool, lk leafKey,
	off, rowLen int64, outer []int64, dt isa.DT, inner, leIn int64) int {

	span := (inner-1)*leIn + 1
	name := st.Ins[lk.input]
	if noShare {
		p.groups = append(p.groups, gatherGroup{
			param: name, dt: dt, rowLen: rowLen, base: off, span: span,
			outer: append([]int64(nil), outer...),
		})
		return len(p.groups) - 1
	}
	for gi := range p.groups {
		g := &p.groups[gi]
		if g.param != name || g.rowLen != rowLen || g.dt != dt || !sameCoefs(g.outer, outer) {
			continue
		}
		lo, hi := g.base, g.base+g.span
		if off < lo {
			lo = off
		}
		if off+span > hi {
			hi = off + span
		}
		if hi-lo <= rowLen {
			g.base, g.span = lo, hi-lo
			return gi
		}
	}
	p.groups = append(p.groups, gatherGroup{
		param: name, dt: dt, rowLen: rowLen, base: off, span: span,
		outer: append([]int64(nil), outer...),
	})
	return len(p.groups) - 1
}

func sameCoefs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// emitBlockedMap generates the main block nest and the row remainder.
func (b *builder) emitBlockedMap(st *restructure.MapStage, ep *exprProgram,
	outShape []int, plan *blockPlan) error {

	// Scratch demand per block row: each leaf tile and temp holds I
	// elements per row; each gather panel holds rowLen. Period spans are
	// reserved off the top.
	perRow := int64(ep.bufCount()) * plan.inner
	for _, g := range plan.groups {
		perRow += g.rowLen
	}
	reserve := int64(16)
	for _, g := range plan.periods {
		reserve += g.hi - g.lo
	}
	budget := int64(b.cfg.ScratchElems()) - reserve
	r := budget / perRow
	if r > plan.rows {
		r = plan.rows
	}
	if r*plan.inner > 8192 {
		r = 8192 / plan.inner
	}
	if r < 1 {
		return b.lowerMapPlain(st, ep, outShape)
	}
	blocks := plan.rows / r
	rem := plan.rows % r
	if blocks > 0 {
		if err := b.emitBlockNest(st, ep, outShape, plan, r, blocks, 0); err != nil {
			return err
		}
	}
	if rem > 0 {
		b.resetNest()
		if err := b.emitBlockNest(st, ep, outShape, plan, rem, 1, blocks*r); err != nil {
			return err
		}
	}
	return nil
}

// emitBlockNest emits one nest processing `blocks` blocks of rBlock rows
// starting at rowOffset. Periodic tiles prefill once per nest via a
// hardware loop over the inner index; gather tiles split their shared
// row panel with one strided VMov per leaf inside the same inner loop.
func (b *builder) emitBlockNest(st *restructure.MapStage, ep *exprProgram,
	outShape []int, plan *blockPlan, rBlock, blocks, rowOffset int64) error {

	rr := len(outShape)
	outerDims := 0
	if rr >= 2 {
		outerDims = rr - 2
	}
	levels := outerDims + 1 // outer dims + block loop
	I := plan.inner
	n := rBlock * I

	// Tile buffers for every expression buffer (leaves + temps).
	bufBase := make([]int64, ep.bufCount())
	bufStream := make([]int32, ep.bufCount())
	for i := range bufBase {
		base, err := b.allocScratch(n)
		if err != nil {
			return err
		}
		bufBase[i] = base
		id, err := b.stream(isa.Scratch, isa.F32, base, 1, nil)
		if err != nil {
			return err
		}
		bufStream[i] = id
	}
	// Period spans: loaded once per nest, before the loops.
	periodBase := make([]int64, len(plan.periods))
	for gi, g := range plan.periods {
		base, err := b.allocScratch(g.hi - g.lo)
		if err != nil {
			return err
		}
		periodBase[gi] = base
		pd, err := b.stream(isa.DRAM, g.dt, g.lo, 1, nil)
		if err != nil {
			return err
		}
		ps, err := b.stream(isa.Scratch, isa.F32, base, 1, nil)
		if err != nil {
			return err
		}
		b.emit(isa.Instr{Op: isa.Load, Dst: ps, Src1: pd, N: int32(g.hi - g.lo)})
	}
	// Gather panels.
	groupRaw := make([]int64, len(plan.groups))
	groupScr := make([]int32, len(plan.groups))
	groupDram := make([]int32, len(plan.groups))
	for gi, g := range plan.groups {
		size := (rBlock-1)*g.rowLen + g.span
		base, err := b.allocScratch(size)
		if err != nil {
			return err
		}
		groupRaw[gi] = base
		strides := make([]int32, levels)
		for j := 0; j < outerDims; j++ {
			strides[j] = int32(g.outer[j])
		}
		strides[levels-1] = int32(rBlock * g.rowLen)
		id, err := b.stream(isa.DRAM, g.dt, g.base+rowOffset*g.rowLen, 1, strides)
		if err != nil {
			return err
		}
		groupDram[gi] = id
		scr, err := b.stream(isa.Scratch, isa.F32, base, 1, nil)
		if err != nil {
			return err
		}
		groupScr[gi] = scr
	}

	// Per-leaf resources: direct loads (contiguous), one-time prefill
	// movs (periodic), and per-block gather movs.
	type mov struct{ dst, src int32 }
	leafLoads := make([]isa.Instr, 0, len(plan.leaves))
	var prefill []mov
	var gathers []mov
	for li, lf := range plan.leaves {
		tile := bufStream[ep.bufIndex(li)]
		tileBase := bufBase[ep.bufIndex(li)]
		switch lf.class {
		case leafContig:
			strides := make([]int32, levels)
			for j := 0; j < outerDims; j++ {
				strides[j] = int32(lf.coef[j])
			}
			rowCo := lf.coef[0]
			if rr >= 2 {
				rowCo = lf.coef[rr-2]
			}
			strides[levels-1] = int32(rBlock * rowCo)
			id, err := b.stream(isa.DRAM, lf.dt, lf.off+rowOffset*rowCo, int32(maxI64(lf.leIn, 1)), strides)
			if err != nil {
				return err
			}
			leafLoads = append(leafLoads, isa.Instr{Op: isa.Load, Dst: tile, Src1: id, N: int32(n)})
		case leafPeriodic:
			// Prefill loop over c: tile[i·I+c] = period[off-lo + c·leIn].
			g := plan.periods[lf.group]
			dst, err := b.stream(isa.Scratch, isa.F32, tileBase, int32(I), []int32{1})
			if err != nil {
				return err
			}
			src, err := b.stream(isa.Scratch, isa.F32, periodBase[lf.group]+(lf.off-g.lo), 0, []int32{int32(lf.leIn)})
			if err != nil {
				return err
			}
			prefill = append(prefill, mov{dst, src})
		case leafGather:
			// Per-block loop over c: tile[i·I+c] = raw[field + c·leIn + i·rowLen].
			g := plan.groups[lf.group]
			dstStr := make([]int32, levels+1)
			dstStr[levels] = 1
			dst, err := b.stream(isa.Scratch, isa.F32, tileBase, int32(I), dstStr)
			if err != nil {
				return err
			}
			srcStr := make([]int32, levels+1)
			srcStr[levels] = int32(lf.leIn)
			src, err := b.stream(isa.Scratch, isa.F32, groupRaw[lf.group]+(lf.off-g.base), int32(g.rowLen), srcStr)
			if err != nil {
				return err
			}
			gathers = append(gathers, mov{dst, src})
		}
	}

	// Output stream: row-major, so the merged block is contiguous.
	out := b.param(st.Out)
	odt, err := mapDT(out.DType)
	if err != nil {
		return err
	}
	ostr := rowMajor(outShape)
	strides := make([]int32, levels)
	for j := 0; j < outerDims; j++ {
		strides[j] = int32(ostr[j])
	}
	strides[levels-1] = int32(rBlock * I)
	outDram, err := b.stream(isa.DRAM, odt, b.baseElems(st.Out, odt.Size())+rowOffset*I, 1, strides)
	if err != nil {
		return err
	}

	// Prefill periodic tiles once per nest, outside all loops.
	if len(prefill) > 0 {
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(I)})
		for _, mv := range prefill {
			b.emit(isa.Instr{Op: isa.VMov, Dst: mv.dst, Src1: mv.src, N: int32(rBlock)})
		}
		b.emit(isa.Instr{Op: isa.LoopEnd})
	}
	for j := 0; j < outerDims; j++ {
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(outShape[j])})
	}
	b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(blocks)})
	for gi := range plan.groups {
		g := plan.groups[gi]
		b.emit(isa.Instr{Op: isa.Load, Dst: groupScr[gi], Src1: groupDram[gi],
			N: int32((rBlock-1)*g.rowLen + g.span)})
	}
	for _, in := range leafLoads {
		b.emit(in)
	}
	if len(gathers) > 0 {
		b.emit(isa.Instr{Op: isa.LoopBegin, N: int32(I)})
		for _, mv := range gathers {
			b.emit(isa.Instr{Op: isa.VMov, Dst: mv.dst, Src1: mv.src, N: int32(rBlock)})
		}
		b.emit(isa.Instr{Op: isa.LoopEnd})
	}
	for _, op := range ep.ops {
		in := isa.Instr{Op: op.op, Dst: bufStream[ep.bufIndex(op.dst)],
			Src1: bufStream[ep.bufIndex(op.a)], N: int32(n), Imm: op.imm}
		if op.b != noBuf {
			in.Src2 = bufStream[ep.bufIndex(op.b)]
		}
		b.emit(in)
	}
	b.emit(isa.Instr{Op: isa.Store, Dst: outDram, Src1: bufStream[ep.bufIndex(ep.result)], N: int32(n)})
	b.emit(isa.Instr{Op: isa.LoopEnd})
	for j := 0; j < outerDims; j++ {
		b.emit(isa.Instr{Op: isa.LoopEnd})
	}
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
