package drxc

import (
	"testing"

	"dmx/internal/drx"
	"dmx/internal/restructure"
)

func TestFusedKernelCanonical(t *testing.T) {
	// Separately constructed but structurally identical pairs must yield
	// the same *Kernel, so every plan shares one fingerprint memo and one
	// compile-cache entry.
	f1, err := FusedKernel(restructure.RecordFrame(8, 16), restructure.NERPrep(8, 16, 32))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FusedKernel(restructure.RecordFrame(8, 16), restructure.NERPrep(8, 16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("FusedKernel returned distinct kernels for an identical pair")
	}
}

func TestCompileFusedSharesCache(t *testing.T) {
	cfg := drx.DefaultConfig()
	c1, err := CompileFused(restructure.RecordFrame(4, 8), restructure.NERPrep(4, 8, 16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileFused(restructure.RecordFrame(4, 8), restructure.NERPrep(4, 8, 16), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("repeat CompileFused of an identical pair returned a distinct compilation")
	}
}

func TestCompileFusedPaperScale(t *testing.T) {
	// The stock fusible pair at the paper's 10 MB PIR batch geometry
	// (pir-ner's two hops) must actually compile — the tuner's fusion
	// axis depends on it.
	if testing.Short() {
		t.Skip("paper-scale compile")
	}
	_, err := CompileFused(
		restructure.RecordFrame(40960, 256),
		restructure.NERPrep(40960, 256, 128),
		drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompileFusedRejectsInfusible(t *testing.T) {
	// Mismatched geometry between the chained params must surface as an
	// error, not a cache entry.
	if _, err := CompileFused(restructure.RecordFrame(4, 8), restructure.NERPrep(4, 16, 16),
		drx.DefaultConfig()); err == nil {
		t.Fatal("infusible pair compiled")
	}
}
