// Package drxc compiles restructuring kernels (internal/restructure) to
// DRX programs (internal/isa).
//
// The compiler mirrors the paper's description (Sec. IV-B): it maps the
// high-level kernel to an intermediate form, picks tile sizes against the
// scratchpad capacity and lane count from the hardware configuration,
// partitions multidimensional arrays across the REs (so no pack/unpack
// instructions are needed), and emits hardware-loop nests whose stream
// configurations drive the Strided Scratchpad Address Calculator and the
// Off-chip Data Access Engine.
package drxc
