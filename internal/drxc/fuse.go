package drxc

import (
	"sync"

	"dmx/internal/drx"
	"dmx/internal/restructure"
)

// The process-wide fused-kernel memo. restructure.Fuse is cheap, but the
// compile cache keys on *Kernel fingerprints whose memoization lives in
// the kernel value: handing every plan its own freshly fused *Kernel
// would still compile once per fingerprint, yet re-render the
// fingerprint per plan. Sharing one canonical fused kernel per source
// pair keeps both memos (fingerprint and compiled program) process-wide,
// exactly like the unfused library kernels that pipelines share.
var fusedKernels sync.Map // string (fp1 + "\x00" + fp2) → *restructure.Kernel

// FusedKernel returns the canonical fusion of k1 followed by k2,
// memoized process-wide by the pair's fingerprints. Errors are not
// cached: an infusible pair fails identically on retry.
func FusedKernel(k1, k2 *restructure.Kernel) (*restructure.Kernel, error) {
	key := k1.Fingerprint() + "\x00" + k2.Fingerprint()
	if v, ok := fusedKernels.Load(key); ok {
		return v.(*restructure.Kernel), nil
	}
	f, err := restructure.Fuse(k1, k2)
	if err != nil {
		return nil, err
	}
	actual, _ := fusedKernels.LoadOrStore(key, f)
	return actual.(*restructure.Kernel), nil
}

// CompileFused fuses k1+k2 and compiles the result through the
// process-wide program cache. Because FusedKernel returns one canonical
// kernel per pair, every plan that fuses the same hops shares a single
// cache entry.
func CompileFused(k1, k2 *restructure.Kernel, cfg drx.Config) (*Compiled, error) {
	f, err := FusedKernel(k1, k2)
	if err != nil {
		return nil, err
	}
	return CompileCached(f, cfg)
}
