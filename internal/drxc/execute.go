package drxc

import (
	"fmt"

	"dmx/internal/drx"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// Execute runs a compiled kernel on a machine: inputs are placed at their
// layout addresses, the program runs, and the Out parameters are read
// back as tensors. The machine must have been created with (at least) the
// configuration the kernel was compiled for.
func Execute(c *Compiled, m *drx.Machine, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, drx.Result, error) {
	if m.Config().ScratchBytes < c.cfg.ScratchBytes {
		return nil, drx.Result{}, fmt.Errorf("drxc: machine scratchpad smaller than compiled target")
	}
	k := c.kernel
	for _, p := range k.Inputs() {
		t, ok := inputs[p.Name]
		if !ok {
			return nil, drx.Result{}, fmt.Errorf("drxc: missing input %q", p.Name)
		}
		if t.DType() != p.DType {
			return nil, drx.Result{}, fmt.Errorf("drxc: input %q dtype %v, want %v", p.Name, t.DType(), p.DType)
		}
		if err := m.WriteDRAM(c.Layout[p.Name], t.Contiguous().Bytes()); err != nil {
			return nil, drx.Result{}, err
		}
	}
	res, err := m.Run(c.Prog)
	if err != nil {
		return nil, drx.Result{}, err
	}
	outs := make(map[string]*tensor.Tensor)
	for _, p := range k.Outputs() {
		raw, err := m.ReadDRAM(c.Layout[p.Name], int64(p.SizeBytes()))
		if err != nil {
			return nil, drx.Result{}, err
		}
		t := tensor.FromBytes(raw, p.SizeBytes()).Reinterpret(p.DType, p.Shape...)
		outs[p.Name] = t
	}
	return outs, res, nil
}

// CompileAndRun is a convenience wrapper: compile the kernel for the
// machine's configuration (through the process-wide program cache, so
// repeat dispatches of one kernel compile once), execute it, and return
// outputs plus timing.
func CompileAndRun(k *restructure.Kernel, m *drx.Machine, inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, drx.Result, error) {
	c, err := CompileCached(k, m.Config())
	if err != nil {
		return nil, drx.Result{}, err
	}
	return Execute(c, m, inputs)
}
