package dmxsys

import (
	"strings"
	"testing"

	"dmx/internal/accel"
	"dmx/internal/faults"
	"dmx/internal/restructure"
	"dmx/internal/sim"
	"dmx/internal/traffic"
)

// fusiblePipeline is a three-stage chain whose two hops share a chained
// intermediate (RecordFrame's "records" feeds NERPrep) — the stock
// fusible pair, at a small geometry so DRX timing runs stay fast.
func fusiblePipeline(name string) *Pipeline {
	const nrec, reclen, seqlen, dim = 512, 64, 32, 8
	batch := int64(nrec * reclen)
	nseq := nrec * reclen / seqlen
	tokBytes := int64(nseq * seqlen * 4)
	aes, err := accel.NewAESGCM("fuse-test")
	if err != nil {
		panic(err)
	}
	re := accel.NewRegexRedact(nrec, reclen)
	ner := accel.NewBERTNER(nseq, seqlen, dim, 11)
	return &Pipeline{
		Name: name,
		Stages: []Stage{
			{Accel: aes, InBytes: batch + 16},
			{Accel: re, InBytes: batch},
			{Accel: ner, InBytes: tokBytes},
		},
		Hops: []Hop{
			{Kernel: restructure.RecordFrame(nrec, reclen), InBytes: batch, OutBytes: batch},
			{Kernel: restructure.NERPrep(nrec, reclen, seqlen), InBytes: batch, OutBytes: tokBytes},
		},
		InputBytes:  batch + 16,
		OutputBytes: tokBytes,
	}
}

func TestFuseHopsValidation(t *testing.T) {
	base := func() Config {
		c := DefaultConfig(Integrated)
		c.FuseHops = []FusePair{{App: 0, Hop: 0}}
		return c
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"legal", func(c *Config) {}, ""},
		{"with batching", func(c *Config) { c.BatchWindow = 100 * sim.Microsecond }, "mutually exclusive"},
		{"bump placement", func(c *Config) { c.Placement = BumpInTheWire }, "shared DRX unit"},
		{"allcpu placement", func(c *Config) { c.Placement = AllCPU }, "shared DRX unit"},
		{"negative hop", func(c *Config) { c.FuseHops = []FusePair{{App: 0, Hop: -1}} }, "negative"},
		{"duplicate", func(c *Config) { c.FuseHops = []FusePair{{App: 0, Hop: 0}, {App: 0, Hop: 0}} }, "duplicate"},
		{"overlap", func(c *Config) { c.FuseHops = []FusePair{{App: 0, Hop: 0}, {App: 0, Hop: 1}} }, "overlapping"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestFuseHopsPlanRejectsOutOfRange(t *testing.T) {
	pipes := []*Pipeline{fusiblePipeline("app")}
	cfg := DefaultConfig(Integrated)
	cfg.FuseHops = []FusePair{{App: 1, Hop: 0}}
	if _, err := NewPlan(cfg, pipes); err == nil || !strings.Contains(err.Error(), "pipelines") {
		t.Errorf("out-of-range app: %v", err)
	}
	cfg.FuseHops = []FusePair{{App: 0, Hop: 1}}
	if _, err := NewPlan(cfg, pipes); err == nil || !strings.Contains(err.Error(), "adjacent pair") {
		t.Errorf("out-of-range hop: %v", err)
	}
	// Non-chaining kernels: hop 0 of testPipeline has no partner, and a
	// mismatched pair must surface restructure.Fuse's error.
	mixed := fusiblePipeline("app")
	mixed.Hops[1].Kernel = restructure.NERPrep(256, 64, 32) // wrong geometry
	cfg.FuseHops = []FusePair{{App: 0, Hop: 0}}
	if _, err := NewPlan(cfg, []*Pipeline{mixed}); err == nil || !strings.Contains(err.Error(), "fuse") {
		t.Errorf("infusible pair: %v", err)
	}
}

func TestFusionCandidates(t *testing.T) {
	for _, p := range []Placement{Integrated, Standalone, PCIeIntegrated} {
		plan, err := NewPlan(DefaultConfig(p), []*Pipeline{fusiblePipeline("app")})
		if err != nil {
			t.Fatal(err)
		}
		cands := plan.FusionCandidates()
		if len(cands) != 1 {
			t.Fatalf("%v: %d candidates, want 1", p, len(cands))
		}
		c := cands[0]
		if c.App != 0 || c.Hop != 0 || c.Fused <= 0 || c.Unfused <= 0 {
			t.Errorf("%v: candidate %+v", p, c)
		}
	}
	// No shared unit → no candidates.
	plan, err := NewPlan(DefaultConfig(BumpInTheWire), []*Pipeline{fusiblePipeline("app")})
	if err != nil {
		t.Fatal(err)
	}
	if cands := plan.FusionCandidates(); cands != nil {
		t.Errorf("bump candidates %v, want none", cands)
	}
	// A single-hop pipeline has no adjacent pair.
	plan, err = NewPlan(DefaultConfig(Integrated), []*Pipeline{testPipeline("app")})
	if err != nil {
		t.Fatal(err)
	}
	if cands := plan.FusionCandidates(); cands != nil {
		t.Errorf("single-hop candidates %v, want none", cands)
	}
}

// Fusing the pair must help an uncontended request: one saved driver
// round-trip plus the merged program's launch amortization.
func TestFusedRunFasterUncontended(t *testing.T) {
	for _, p := range []Placement{Integrated, Standalone, PCIeIntegrated} {
		pipes := []*Pipeline{fusiblePipeline("app")}
		unfusedSys, err := New(DefaultConfig(p), pipes)
		if err != nil {
			t.Fatal(err)
		}
		unfused, err := unfusedSys.Run()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(p)
		cfg.FuseHops = []FusePair{{App: 0, Hop: 0}}
		fusedSys, err := New(cfg, pipes)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := fusedSys.Run()
		if err != nil {
			t.Fatal(err)
		}
		if fused.MeanTotal() >= unfused.MeanTotal() {
			t.Errorf("%v: fused %v not faster than unfused %v", p, fused.MeanTotal(), unfused.MeanTotal())
		}
	}
}

// Under load with fusion on, every request must retire — a leaked hold
// would wedge the single DRX unit and deadlock the drive loop.
func TestFusedLoadCompletes(t *testing.T) {
	cfg := DefaultConfig(Integrated)
	cfg.Sched = SchedSRS
	cfg.FuseHops = []FusePair{{App: 0, Hop: 0}, {App: 1, Hop: 0}}
	pipes := []*Pipeline{fusiblePipeline("app"), fusiblePipeline("app")}
	s, err := New(cfg, pipes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLoad(traffic.Spec{Arrival: traffic.Poisson, Rate: 3000, Requests: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rep.PerApp {
		if a.Completed != a.Requests {
			t.Errorf("%s: %d/%d completed", a.App, a.Completed, a.Requests)
		}
	}
}

// Fusion under fault injection: holds must never leak across watchdog
// degradation, transient retries, or abandonment — every request still
// retires and the run stays deterministic.
func TestFusedFaultedLoadCompletes(t *testing.T) {
	run := func() traffic.LoadReport {
		cfg := DefaultConfig(Integrated)
		cfg.FuseHops = []FusePair{{App: 0, Hop: 0}}
		cfg.Faults = &faults.Plan{
			Seed:          5,
			DRXMTBF:       2 * sim.Millisecond,
			DRXRepair:     500 * sim.Microsecond,
			TransientProb: 0.10,
		}
		r := faults.DefaultRetry()
		cfg.Retry = r
		s, err := New(cfg, []*Pipeline{fusiblePipeline("app")})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.RunLoad(traffic.Spec{Arrival: traffic.Poisson, Rate: 4000, Requests: 32, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	a := rep.PerApp[0]
	if a.Completed+a.Abandoned != a.Requests {
		t.Fatalf("requests leaked: completed %d + abandoned %d != %d", a.Completed, a.Abandoned, a.Requests)
	}
	if a.Degraded == 0 && a.Retries == 0 {
		t.Error("fault plan never fired; the test exercises nothing")
	}
	if got := run(); got.String() != rep.String() {
		t.Error("faulted fused run is not deterministic")
	}
}

// With FuseHops empty the flow must stay bit-for-bit the historical
// unfused behavior: same report, same trace-relevant occupancy.
func TestEmptyFuseHopsBitIdentical(t *testing.T) {
	run := func(cfg Config) string {
		s, err := New(cfg, []*Pipeline{fusiblePipeline("app")})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.RunLoad(traffic.Spec{Arrival: traffic.Poisson, Rate: 2000, Requests: 16, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	base := run(DefaultConfig(Integrated))
	cfg := DefaultConfig(Integrated)
	cfg.FuseHops = []FusePair{}
	if got := run(cfg); got != base {
		t.Error("empty FuseHops changed the serving report")
	}
}
