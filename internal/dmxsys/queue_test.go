package dmxsys

import (
	"strings"
	"testing"
	"testing/quick"

	"dmx/internal/accel"
	"dmx/internal/restructure"
	"dmx/internal/sim"
)

func TestQueueProvisioningMatchesPaper(t *testing.T) {
	// Sec. V: 8 GB of queue memory at 100 MB per queue pair supports up
	// to 40 accelerators.
	if MaxPeers != 40 {
		t.Errorf("MaxPeers = %d, want 40", MaxPeers)
	}
}

func TestDataQueueHeadTail(t *testing.T) {
	q := &DataQueue{name: "q", capacity: 100}
	if err := q.Enqueue(60); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(50); err == nil {
		t.Error("overfill accepted")
	}
	if q.Used() != 60 || q.Free() != 40 {
		t.Errorf("used/free = %d/%d", q.Used(), q.Free())
	}
	if err := q.Dequeue(60); err != nil {
		t.Fatal(err)
	}
	// Ring reuse: capacity is fully available again.
	if err := q.Enqueue(100); err != nil {
		t.Errorf("ring reuse failed: %v", err)
	}
	if q.HighWater != 100 {
		t.Errorf("HighWater = %d, want 100", q.HighWater)
	}
	if err := q.Dequeue(200); err == nil {
		t.Error("over-dequeue accepted")
	}
	if err := q.Enqueue(-1); err == nil {
		t.Error("negative enqueue accepted")
	}
}

// Property: any sequence of admissible enqueue/dequeue operations keeps
// 0 ≤ Used ≤ capacity.
func TestDataQueueInvariantProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		q := &DataQueue{name: "p", capacity: 1000}
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if n <= q.Free() {
					if err := q.Enqueue(n); err != nil {
						return false
					}
				}
			} else if -n <= q.Used() {
				if err := q.Dequeue(-n); err != nil {
					return false
				}
			}
			if q.Used() < 0 || q.Used() > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueSetPeers(t *testing.T) {
	qs, err := NewQueueSet("drx.a0", []string{"a0", "a1"})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := qs.RX("a1")
	if err != nil {
		t.Fatal(err)
	}
	if rx.Free() != QueuePairBytes {
		t.Errorf("fresh queue free = %d", rx.Free())
	}
	if _, err := qs.TX("ghost"); err == nil {
		t.Error("unknown peer accepted")
	}
	peers := make([]string, MaxPeers+1)
	for i := range peers {
		peers[i] = strings.Repeat("x", i+1)
	}
	if _, err := NewQueueSet("drx.big", peers); err == nil {
		t.Error("over-provisioned queue set accepted")
	}
}

func TestBumpFlowDrainsQueues(t *testing.T) {
	s, err := New(DefaultConfig(BumpInTheWire), pipelines(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	for name, qs := range s.queueSets {
		for peer := range qs.rx {
			rx, _ := qs.RX(peer)
			tx, _ := qs.TX(peer)
			if rx.Used() != 0 || tx.Used() != 0 {
				t.Errorf("%s: queues not drained after run: rx %d tx %d", name, rx.Used(), tx.Used())
			}
		}
	}
	// The hop queues actually carried the payload.
	var high int64
	for _, qs := range s.queueSets {
		for _, q := range qs.rx {
			if q.HighWater > high {
				high = q.HighWater
			}
		}
	}
	if high == 0 {
		t.Error("no payload ever entered an RX queue")
	}
}

func TestPipelinePayloadExceedingQueueRejected(t *testing.T) {
	p := testPipeline("huge")
	p.Hops[0].InBytes = QueuePairBytes + 1
	if _, err := New(DefaultConfig(BumpInTheWire), []*Pipeline{p}); err == nil ||
		!strings.Contains(err.Error(), "data queue") {
		t.Fatalf("want queue-size rejection, got %v", err)
	}
}

// threeStagePipeline builds a 3-kernel chain (the Fig. 16 shape) without
// importing workload (which would cycle).
func threeStagePipeline() *Pipeline {
	const nrec, reclen, seqlen = 512, 128, 64
	batch := int64(nrec * reclen)
	aes, err := accel.NewAESGCM("three-stage")
	if err != nil {
		panic(err)
	}
	re := accel.NewRegexRedact(nrec, reclen)
	nseq := nrec * reclen / seqlen
	ner := accel.NewBERTNER(nseq, seqlen, 8, 1)
	tokBytes := int64(nseq * seqlen * 4)
	return &Pipeline{
		Name: "three-stage",
		Stages: []Stage{
			{Accel: aes, InBytes: batch + 16},
			{Accel: re, InBytes: batch},
			{Accel: ner, InBytes: tokBytes},
		},
		Hops: []Hop{
			{Kernel: restructure.RecordFrame(nrec, reclen), InBytes: batch, OutBytes: batch},
			{Kernel: restructure.NERPrep(nrec, reclen, seqlen), InBytes: batch, OutBytes: tokBytes},
		},
		InputBytes:  batch + 16,
		OutputBytes: 4096,
	}
}

func TestThreeStagePipelineUnderEveryPlacement(t *testing.T) {
	for _, p := range []Placement{AllCPU, MultiAxl, Integrated, Standalone, PCIeIntegrated, BumpInTheWire} {
		pipes := []*Pipeline{threeStagePipeline(), threeStagePipeline()}
		s, err := New(DefaultConfig(p), pipes)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range rep.Apps {
			if a.Total <= 0 || a.KernelTime <= 0 || a.RestructureTime <= 0 {
				t.Errorf("%v: incomplete 3-stage report: %+v", p, a)
			}
		}
	}
}

func TestThreeStageDMXBeatsBaseline(t *testing.T) {
	mk := func(p Placement) RunReport {
		s, err := New(DefaultConfig(p), []*Pipeline{threeStagePipeline()})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := mk(MultiAxl)
	dmxRep := mk(BumpInTheWire)
	if dmxRep.MeanTotal() >= base.MeanTotal() {
		t.Errorf("3-stage DMX (%v) not faster than baseline (%v)", dmxRep.MeanTotal(), base.MeanTotal())
	}
}

func TestDriverCoalescingIsRateBased(t *testing.T) {
	s, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	// Sparse completions: always interrupt mode.
	for i := 0; i < 20; i++ {
		if d := s.driverDelay(); d != InterruptLatency {
			t.Fatalf("sparse completion %d got %v, want interrupt latency", i, d)
		}
		s.Eng.RunUntil(s.Eng.Now().Add(2 * CoalesceWindow))
	}
	// A burst within one window must flip the driver to polling...
	var last sim.Duration
	for i := 0; i < CoalesceThreshold+2; i++ {
		last = s.driverDelay()
	}
	if last != PollLatency {
		t.Fatalf("burst did not trigger polling: got %v", last)
	}
	// ...and quiescence must restore interrupts.
	s.Eng.RunUntil(s.Eng.Now().Add(2 * CoalesceWindow))
	if d := s.driverDelay(); d != InterruptLatency {
		t.Fatalf("driver stuck in polling after quiescence: %v", d)
	}
}
