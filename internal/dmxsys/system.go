package dmxsys

import (
	"fmt"
	"sync"

	"dmx/internal/cpu"
	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/energy"
	"dmx/internal/faults"
	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/restructure"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/tensor"
)

// System is one assembled server: fabric, host resources, per-device
// service stations, and the application instances placed on it.
type System struct {
	Eng    *sim.Engine
	Fabric *pcie.Fabric
	cfg    Config

	// Host execution resources. The two channels model a malleable
	// parallel machine: a job posts its arithmetic work on cpuCompute
	// (ops at the socket's effective vector rate) and its traffic on
	// cpuMem (bytes at the socket bandwidth); fair sharing across jobs
	// gives each concurrent restructuring its 1/n of both, matching the
	// contention behavior of Fig. 3.
	cpuCompute *sim.Channel
	cpuMem     *sim.Channel

	apps    []*appInstance
	servers map[string]*sim.Server // accel and DRX service stations
	// queueSets holds each bump-in-the-wire DRX's RX/TX data queues,
	// keyed like its server ("drx.<accel device>").
	queueSets map[string]*QueueSet
	nSwitches int
	nDRX      int
	// localBytes counts bump-in-the-wire DRX↔accel movement that stays
	// off the fabric but still costs transfer energy.
	localBytes int64
	// irqTimes is the sliding window of recent completion events driving
	// the interrupt/polling decision.
	irqTimes []sim.Time

	// plan is the immutable topology/timing plan this replica was
	// materialized from (shared across fleet replicas).
	plan *Plan
	// prefix namespaces every station, link, and trace track of this
	// replica ("" single-host, "h3/" in a fleet).
	prefix string
	// drxServers lists the DRX service stations for energy metering
	// (identifying them by name breaks under host prefixes).
	drxServers []*sim.Server

	// rec is the structured event sink (nil = tracing disabled). It is
	// cfg.Obs, or an internal recorder when only the text Trace hook is
	// configured.
	rec *obs.Recorder

	// batchPool recycles retired batch shells (members slice and
	// completion closures included) so steady-state batching never
	// allocates beyond the requests themselves.
	batchPool []*batch
	// admitting is true while RunLoad drives the system; admission
	// control applies only there (Run and RunStream issue fixed request
	// sets whose reports have no rejection channel).
	admitting bool

	// inj is the fault injector (nil = no faults). hazardous is true
	// when faults or a retry policy are active; every fault/retry check
	// in the request machine is gated on it so the fault-free flow
	// stays bit-for-bit identical to the historical behavior.
	inj       *faults.Injector
	hazardous bool

	// err is the first flow error (invalid fabric route, queue
	// accounting violation, DRX timing failure). The request machine
	// records it via fail instead of panicking; Run/RunStream/RunLoad
	// surface it after the engine drains.
	err error
}

// fail records the first flow error.
func (s *System) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// appInstance is one running application.
type appInstance struct {
	id   int
	pipe *Pipeline
	// accelDev[k] is the fabric device of stage k (empty for AllCPU).
	accelDev []string
	// drxServer[k] serves hop k's restructuring (nil when on CPU).
	drxServer []*sim.Server
	// standalone DRX device name, when applicable.
	sdrxDev string
	// switch the app's devices live on.
	sw string

	// track is the app instance's trace timeline name.
	track string
	// requests counts admitted requests, giving each streamed request
	// its own trace track (spans of one track must nest).
	requests int

	// inflight counts requests admitted and not yet retired; admission
	// control (Config.AdmitLimit) rejects arrivals past the limit.
	inflight int

	// Continuous-batching state. pending holds the open accumulation
	// window's members (in arrival order); flushRef/flushArmed track the
	// pending window-expiry event and flushFn is its preallocated
	// closure so re-arming the window never allocates. nbatches and
	// batchedReqs feed the LoadReport batching line; maxBatch caps the
	// batch size so a bump-in-the-wire batch's hop payload always fits
	// the inline DRX data queues (0 = uncapped).
	pending     []*request
	flushRef    sim.EventRef
	flushArmed  bool
	flushFn     func()
	nbatches    int
	batchedReqs int
	maxBatch    int

	// remAtKernel[k] / remAtHop[k] are the precomputed station service
	// demands still ahead of a request when it submits stage k's kernel
	// / hop k's restructure — the SchedSRS scheduling keys, derived from
	// the same per-stage model as the capacity bound (nil for AllCPU,
	// which has no contended stations).
	remAtKernel []sim.Duration
	remAtHop    []sim.Duration

	// fusion[k] is hop k's role in a fused pair (nil when Config.FuseHops
	// is empty — the unfused flow, bit-for-bit). Plan state, shared
	// read-only across replicas.
	fusion []hopFusion

	// occ accumulates, per shared resource (server, link, or host
	// channel), the exclusive occupancy the app's requests charged it.
	// Divided by the request count it is the per-request occupancy whose
	// maximum bounds steady-state throughput (AppReport.Bottleneck).
	occ map[string]sim.Duration

	rep AppReport
}

// occupy charges one request's exclusive use of a named resource.
func (a *appInstance) occupy(name string, d sim.Duration) {
	a.occ[name] += d
}

// occupyPath charges a payload's serialization time against every link
// of a fabric route. Route errors are ignored here: the transfer itself
// reports them through the request machine.
func (s *System) occupyPath(a *appInstance, from, to string, n int64) {
	links, err := s.Fabric.PathLinks(from, to)
	if err != nil {
		return
	}
	for _, l := range links {
		a.occupy(l.Name, sim.BytesAt(n, l.Bandwidth))
	}
}

// occupyCPU charges a host job's drain time on the two shared CPU
// channels.
func (s *System) occupyCPU(a *appInstance, ops, bytes int64) {
	a.occupy(s.cpuCompute.Name(), sim.BytesAt(ops, s.cpuCompute.Capacity()))
	a.occupy(s.cpuMem.Name(), sim.BytesAt(bytes, s.cpuMem.Capacity()))
}

// occupyServer charges a service-station job, spread across the
// station's slots (a k-slot server serves k requests concurrently).
func (a *appInstance) occupyServer(srv *sim.Server, d sim.Duration) {
	a.occupy(srv.Name(), d/sim.Duration(srv.Slots()))
}

// bottleneck reports the largest per-request occupancy across the
// resources the app's requests used, with a deterministic (lexicographic)
// tie-break on the resource name.
func (a *appInstance) bottleneck() (sim.Duration, string) {
	if a.requests == 0 {
		return 0, ""
	}
	var max sim.Duration
	name := ""
	for res, d := range a.occ {
		per := d / sim.Duration(a.requests)
		if per > max || (per == max && (name == "" || res < name)) {
			max, name = per, res
		}
	}
	return max, name
}

// Plan is the shareable immutable half of a System: validated layout
// (switch/device/card packing), warmed DRX timings, scheduling tables,
// and analytic capacity bounds — everything that depends only on
// (Config, pipelines). One Plan materializes any number of cheap
// replicas via Instantiate; New is the single-host shorthand.
type Plan struct {
	cfg   Config
	pipes []*Pipeline

	apps      []planApp
	nSwitches int
	nDRX      int
	nCards    int

	// drxTimes maps kernel signature → simulated DRX duration under
	// cfg.DRX, fully warmed at plan time. Read-only after NewPlan, so
	// replicas (and parallel sweep workers) share it without locking.
	drxTimes map[string]sim.Duration
}

// planApp is one pipeline's placement decisions and precomputed tables.
type planApp struct {
	// sw is the plain (unprefixed) switch the app's devices live on
	// ("" for AllCPU); newSwitch is true when this app opens it.
	sw        string
	newSwitch bool
	// cardDev is the plain standalone DRX card device ("" unless the
	// Standalone placement); newCard is true when this app brings it up.
	cardDev string
	newCard bool

	remAtKernel []sim.Duration
	remAtHop    []sim.Duration
	maxBatch    int
	fusion      []hopFusion

	cap Capacity
}

// fuseRole tags a hop's part in a fused pair.
type fuseRole uint8

const (
	fuseNone fuseRole = iota
	// fuseLeader runs the fused program's first segment, then holds the
	// DRX unit (resident context) until its follower resumes.
	fuseLeader
	// fuseFollower resumes the fused program's second segment on the
	// held unit, skipping driver and DMA-descriptor setup.
	fuseFollower
)

// hopFusion is one hop's role and service segment under fusion. The
// fused program's total service splits across the pair proportionally to
// the two unfused times, so each hop's segment reflects its share of the
// merged program's work.
type hopFusion struct {
	role fuseRole
	part sim.Duration
}

// fusionAt reports hop k's fusion role (fuseNone when fusion is off).
func (a *appInstance) fusionAt(k int) hopFusion {
	if a.fusion == nil {
		return hopFusion{}
	}
	return a.fusion[k]
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Apps reports how many pipelines the plan places.
func (p *Plan) Apps() int { return len(p.pipes) }

// Pipeline returns app i's pipeline.
func (p *Plan) Pipeline(i int) *Pipeline { return p.pipes[i] }

// NewPlan validates the configuration and pipelines and computes the
// shareable half of a System: layout, warmed DRX timings, scheduling
// tables, and capacity bounds.
func NewPlan(cfg Config, pipelines []*Pipeline) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pipelines) == 0 {
		return nil, fmt.Errorf("dmxsys: no pipelines")
	}
	p := &Plan{cfg: cfg, pipes: pipelines, drxTimes: make(map[string]sim.Duration)}
	for _, fp := range cfg.FuseHops {
		if fp.App >= len(pipelines) {
			return nil, fmt.Errorf("dmxsys: fuse pair app=%d hop=%d: only %d pipelines", fp.App, fp.Hop, len(pipelines))
		}
	}
	if cfg.Placement == Integrated {
		p.nDRX = 1
	}
	curSwitch := ""
	slotsLeft := 0
	// Standalone cards are shared by up to AppsPerStandaloneCard apps on
	// the same switch.
	cardDev := ""
	cardAppsLeft := 0
	for i, pipe := range pipelines {
		if err := pipe.Validate(); err != nil {
			return nil, err
		}
		pa := planApp{}
		// Slot accounting covers accelerator ports; standalone DRX cards
		// ride dedicated card slots on the same switch so every placement
		// packs applications identically (the comparison isolates data
		// motion, not topology density).
		needCard := cfg.Placement == Standalone && cardAppsLeft == 0
		need := len(pipe.Stages)
		if need > cfg.SlotsPerSwitch {
			return nil, fmt.Errorf("dmxsys: %s needs %d slots, switch has %d", pipe.Name, need, cfg.SlotsPerSwitch)
		}
		if cfg.Placement != AllCPU && need > slotsLeft {
			// A fresh switch also forces a fresh card: point-to-point DMA
			// to the card must stay under one switch.
			if cfg.Placement == Standalone {
				needCard = true
			}
			curSwitch = fmt.Sprintf("sw%d", p.nSwitches)
			pa.newSwitch = true
			p.nSwitches++
			slotsLeft = cfg.SlotsPerSwitch
			if cfg.Placement == PCIeIntegrated {
				p.nDRX++
			}
		}
		pa.sw = curSwitch
		if cfg.Placement != AllCPU {
			slotsLeft -= need
		}

		switch cfg.Placement {
		case Standalone:
			if needCard {
				cardDev = fmt.Sprintf("sdrx%d", p.nCards)
				pa.newCard = true
				p.nCards++
				p.nDRX++
				cardAppsLeft = cfg.AppsPerStandaloneCard
			}
			cardAppsLeft--
			pa.cardDev = cardDev
		case BumpInTheWire:
			// One DRX inline with every accelerator; the terminal
			// accelerator's DRX exists too (pass-through in Fig. 10
			// step 10) and counts for energy.
			for k := range pipe.Hops {
				p.nDRX++
				if pipe.Hops[k].InBytes > QueuePairBytes || pipe.Hops[k].OutBytes > QueuePairBytes {
					return nil, fmt.Errorf("dmxsys: %s hop %d payload exceeds the %d MB data queue",
						pipe.Name, k, QueuePairBytes>>20)
				}
			}
			p.nDRX++
		}

		// Warm the DRX service-time cache.
		if cfg.Placement.UsesDRX() {
			for _, h := range pipe.Hops {
				if _, err := p.drxTime(h.Kernel); err != nil {
					return nil, err
				}
			}
		}

		// Resolve this app's fused pairs: compile the merged program, time
		// it, and split its service across the pair proportionally to the
		// unfused times. Must precede the SRS tables and the capacity
		// bound, which both consume the split.
		for _, fp := range cfg.FuseHops {
			if fp.App != i {
				continue
			}
			if fp.Hop+1 >= len(pipe.Hops) {
				return nil, fmt.Errorf("dmxsys: fuse pair app=%d hop=%d: %s has %d hops (need an adjacent pair)",
					fp.App, fp.Hop, pipe.Name, len(pipe.Hops))
			}
			k1, k2 := pipe.Hops[fp.Hop].Kernel, pipe.Hops[fp.Hop+1].Kernel
			fused, err := drxc.FusedKernel(k1, k2)
			if err != nil {
				return nil, fmt.Errorf("dmxsys: fuse pair app=%d hop=%d: %w", fp.App, fp.Hop, err)
			}
			ft, err := p.drxTime(fused)
			if err != nil {
				return nil, fmt.Errorf("dmxsys: fuse pair app=%d hop=%d: %w", fp.App, fp.Hop, err)
			}
			if pa.fusion == nil {
				pa.fusion = make([]hopFusion, len(pipe.Hops))
			}
			t1, t2 := p.drxTimes[k1.Signature()], p.drxTimes[k2.Signature()]
			part1 := ft / 2
			if t1+t2 > 0 {
				part1 = sim.Duration(float64(ft) * float64(t1) / float64(t1+t2))
			}
			pa.fusion[fp.Hop] = hopFusion{role: fuseLeader, part: part1}
			pa.fusion[fp.Hop+1] = hopFusion{role: fuseFollower, part: ft - part1}
		}

		// Remaining-service tables (the SchedSRS keys): walk the pipeline
		// backwards accumulating each station's precomputed service
		// demand. MultiAxl hops restructure on the uncontended CPU
		// channels, so they contribute nothing to station demand.
		if cfg.Placement != AllCPU {
			n := len(pipe.Stages)
			pa.remAtKernel = make([]sim.Duration, n)
			pa.remAtHop = make([]sim.Duration, len(pipe.Hops))
			for k := n - 1; k >= 0; k-- {
				svc := pipe.Stages[k].Accel.Latency(pipe.Stages[k].InBytes)
				if k < len(pipe.Hops) {
					hop := sim.Duration(0)
					if cfg.Placement.UsesDRX() {
						hop = p.drxTimes[pipe.Hops[k].Kernel.Signature()]
						if pa.fusion != nil && pa.fusion[k].role != fuseNone {
							// A fused hop's station demand is its segment of
							// the merged program.
							hop = pa.fusion[k].part
						}
					}
					pa.remAtHop[k] = hop + pa.remAtKernel[k+1]
					pa.remAtKernel[k] = svc + pa.remAtHop[k]
				} else {
					pa.remAtKernel[k] = svc
				}
			}
		}

		// Batch-size ceiling: a bump-in-the-wire batch moves n× a hop's
		// payload through the inline DRX data queues, so cap n where the
		// scaled payload would exceed a queue (otherwise the batch could
		// never be admitted and the flow would deadlock).
		if cfg.Placement == BumpInTheWire && cfg.BatchWindow > 0 {
			for _, h := range pipe.Hops {
				per := h.InBytes
				if h.OutBytes > per {
					per = h.OutBytes
				}
				if per <= 0 {
					continue
				}
				cap := int(QueuePairBytes / per)
				if cap < 1 {
					cap = 1
				}
				if pa.maxBatch == 0 || cap < pa.maxBatch {
					pa.maxBatch = cap
				}
			}
		}

		pa.cap = p.appCapacity(i, &pa)
		p.apps = append(p.apps, pa)
	}
	return p, nil
}

// HostOpts parameterizes one replica materialized from a Plan.
type HostOpts struct {
	// Prefix namespaces every station, link, and trace track of the
	// replica ("h3/" in a fleet). Empty reproduces the single-host
	// names bit-for-bit.
	Prefix string
	// Obs, when set, overrides cfg.Obs as the replica's event sink
	// (fleet replicas share one recorder on one engine).
	Obs *obs.Recorder
}

// Instantiate materializes one replica of the plan on the engine:
// fabric, channels, service stations, queues, and per-app runtime
// state. The expensive plan-time work (validation, DRX timing,
// scheduling tables) is shared; replicas are cheap. Several replicas
// may share one engine when their prefixes differ.
func (p *Plan) Instantiate(eng *sim.Engine, opts HostOpts) (*System, error) {
	cfg := p.cfg
	pfx := opts.Prefix
	s := &System{
		Eng:       eng,
		Fabric:    pcie.New(eng),
		cfg:       cfg,
		plan:      p,
		prefix:    pfx,
		servers:   make(map[string]*sim.Server),
		queueSets: make(map[string]*QueueSet),
		nSwitches: p.nSwitches,
		nDRX:      p.nDRX,
	}
	// Wire the structured trace sink. A text-only Trace hook gets an
	// internal recorder; the classic line log is a streamed rendering of
	// the structured events (obs.RenderText), so both sinks always agree.
	s.rec = opts.Obs
	if s.rec == nil {
		s.rec = cfg.Obs
	}
	if s.rec == nil && cfg.Trace != nil {
		s.rec = obs.New()
	}
	if s.rec != nil {
		if trace := cfg.Trace; trace != nil {
			prev := s.rec.OnEvent
			s.rec.OnEvent = func(ev *obs.Event) {
				if prev != nil {
					prev(ev)
				}
				if line, ok := obs.RenderText(ev); ok {
					trace(sim.Time(ev.TS), ev.App, line)
				}
			}
		}
		eng.Obs = s.rec
	}

	// Fault injection: a disabled plan yields a nil injector, and every
	// downstream query is nil-safe, so the fault-free build is
	// unchanged. Station names are host-prefixed, and the injector's
	// timelines key off the station name, so fleet replicas draw
	// independent incident streams from the same seed.
	s.inj = faults.New(cfg.Faults, s.rec)
	s.inj.Bind(eng)
	s.hazardous = s.inj.Enabled() || cfg.Retry.Enabled()
	if s.inj.Enabled() {
		s.Fabric.SetFaults(s.inj)
	}

	m := cfg.CPU
	opsPerSec := float64(m.Cores) * m.FreqHz * float64(m.SIMDLanes) * m.IssueEff
	s.cpuCompute = sim.NewChannel(eng, pfx+"cpu.compute", opsPerSec)
	s.cpuMem = sim.NewChannel(eng, pfx+"cpu.mem", m.MemBWBytes)

	accelLink := pcie.LinkConfig{Gen: cfg.Gen, Lanes: cfg.AccelLanes}
	uplink := pcie.LinkConfig{Gen: cfg.Gen, Lanes: cfg.UplinkLanes}

	integratedDRX := (*sim.Server)(nil)
	if cfg.Placement == Integrated {
		integratedDRX = sim.NewServerDisc(eng, pfx+"drx.integrated", 1, cfg.discipline())
		s.servers[pfx+"drx.integrated"] = integratedDRX
		s.drxServers = append(s.drxServers, integratedDRX)
	}
	var card *sim.Server

	for i, pipe := range p.pipes {
		pa := &p.apps[i]
		a := &appInstance{id: i, pipe: pipe, occ: make(map[string]sim.Duration)}
		a.rep.App = pipe.Name
		a.track = fmt.Sprintf("%s%s#%d", pfx, pipe.Name, i)
		if pa.sw != "" {
			a.sw = pfx + pa.sw
		}
		if pa.newSwitch {
			if err := s.Fabric.AddSwitch(a.sw, uplink); err != nil {
				return nil, err
			}
			if cfg.Placement == PCIeIntegrated {
				unit := sim.NewServerDisc(eng, "drx."+a.sw, cfg.PCIeIntegratedSlots, cfg.discipline())
				s.servers["drx."+a.sw] = unit
				s.drxServers = append(s.drxServers, unit)
			}
		}

		if cfg.Placement != AllCPU {
			for k, st := range pipe.Stages {
				dev := fmt.Sprintf("%sa%d.%d", pfx, i, k)
				if err := s.Fabric.AddDevice(dev, a.sw, accelLink); err != nil {
					return nil, err
				}
				a.accelDev = append(a.accelDev, dev)
				s.servers[dev] = sim.NewServerDisc(eng, dev+":"+st.Accel.Name, 1, cfg.discipline())
			}
		}

		a.drxServer = make([]*sim.Server, len(pipe.Hops))
		switch cfg.Placement {
		case Integrated:
			for k := range pipe.Hops {
				a.drxServer[k] = integratedDRX
			}
		case Standalone:
			if pa.newCard {
				dev := pfx + pa.cardDev
				if err := s.Fabric.AddDevice(dev, a.sw, accelLink); err != nil {
					return nil, err
				}
				card = sim.NewServerDisc(eng, dev, 1, cfg.discipline())
				s.servers[dev] = card
				s.drxServers = append(s.drxServers, card)
			}
			a.sdrxDev = pfx + pa.cardDev
			for k := range pipe.Hops {
				a.drxServer[k] = card
			}
		case PCIeIntegrated:
			unit := s.servers["drx."+a.sw]
			for k := range pipe.Hops {
				a.drxServer[k] = unit
			}
		case BumpInTheWire:
			// One DRX inline with every accelerator; hop k runs on the
			// upstream accelerator's DRX (Fig. 10: DRX_1 restructures).
			// Each DRX statically partitions its queue memory across the
			// chain's peers (Sec. V).
			for k := range pipe.Hops {
				name := "drx." + a.accelDev[k]
				unit := sim.NewServerDisc(eng, name, 1, cfg.discipline())
				s.servers[name] = unit
				a.drxServer[k] = unit
				s.drxServers = append(s.drxServers, unit)
				qs, err := NewQueueSet(name, a.accelDev)
				if err != nil {
					return nil, err
				}
				s.queueSets[name] = qs
			}
		}

		// The scheduling tables, batch ceiling, and fusion table are plan
		// state: shared read-only across replicas.
		a.remAtKernel = pa.remAtKernel
		a.remAtHop = pa.remAtHop
		a.maxBatch = pa.maxBatch
		a.fusion = pa.fusion

		// Preallocated window-expiry closure: arming the batch window in
		// steady state reuses it instead of allocating per window.
		a.flushFn = func() {
			a.flushArmed = false
			s.flush(a)
		}

		s.apps = append(s.apps, a)
	}
	return s, nil
}

// New assembles a system running the given pipelines concurrently (one
// app instance per entry). It is NewPlan + Instantiate on a fresh
// engine — bit-for-bit the historical single-host build.
func New(cfg Config, pipelines []*Pipeline) (*System, error) {
	p, err := NewPlan(cfg, pipelines)
	if err != nil {
		return nil, err
	}
	return p.Instantiate(sim.NewEngine(), HostOpts{})
}

// drxTimeCache memoizes simulated DRX durations across System builds:
// experiments sweep placements and concurrency over the same kernels,
// and the machine-level simulation is deterministic per (kernel
// signature, hardware config). The sync.Map makes the cache safe under
// the harness's parallel sweeps; a duplicated concurrent compute stores
// the same deterministic value, so last-write-wins is harmless.
var drxTimeCache sync.Map // drxTimeKey → sim.Duration

// drxTimeKey identifies a (kernel, DRX hardware) timing in the
// process-wide cache. The full drx.Config is embedded in the key: a
// fleet may mix per-host DRX geometries, and hosts differing in any
// field — clock, lanes, scratchpad, instruction cache, DRAM size or
// bandwidth — must never cross-serve each other's cached times, while
// N identical replicas all hit the same entry.
type drxTimeKey struct {
	sig string
	cfg drx.Config
}

// drxTime resolves one kernel's DRX duration at plan time: the plan's
// own map first, then the process-wide cache, then compile + simulate.
func (p *Plan) drxTime(k *restructure.Kernel) (sim.Duration, error) {
	if d, ok := p.drxTimes[k.Signature()]; ok {
		return d, nil
	}
	key := drxTimeKey{sig: k.Signature(), cfg: p.cfg.DRX}
	if d, ok := drxTimeCache.Load(key); ok {
		p.drxTimes[k.Signature()] = d.(sim.Duration)
		return d.(sim.Duration), nil
	}
	d, err := drxTimeFor(p.cfg.DRX, k)
	if err != nil {
		return 0, err
	}
	p.drxTimes[k.Signature()] = d
	drxTimeCache.Store(key, d)
	return d, nil
}

// FusionCandidate is one legal adjacent-hop fusion under the plan's
// placement, with the analytic DRX service times a search seeds from:
// fusing trades (Unfused − Fused) of execution plus one saved driver
// round trip against holding the unit across the intermediate stage.
type FusionCandidate struct {
	App, Hop int
	// Unfused is the pair's summed standalone DRX service.
	Unfused sim.Duration
	// Fused is the merged program's single DRX service.
	Fused sim.Duration
}

// FusionCandidates enumerates every adjacent hop pair that could legally
// fuse under the plan's placement: the placement shares one DRX unit
// across adjacent hops, the two kernels chain (restructure.Fuse accepts
// them), and the merged program compiles. Illegal or infusible pairs are
// silently skipped — the enumeration answers "what could a search try",
// not "what did the user ask for" (NewPlan errors on explicit FuseHops
// that do not apply). Safe after NewPlan: timings resolve through the
// process-wide cache, never by mutating shared plan state.
func (p *Plan) FusionCandidates() []FusionCandidate {
	switch p.cfg.Placement {
	case Integrated, Standalone, PCIeIntegrated:
	default:
		return nil
	}
	var out []FusionCandidate
	for i, pipe := range p.pipes {
		for k := 0; k+1 < len(pipe.Hops); k++ {
			k1, k2 := pipe.Hops[k].Kernel, pipe.Hops[k+1].Kernel
			fused, err := drxc.FusedKernel(k1, k2)
			if err != nil {
				continue
			}
			ft, err := drxTimeShared(p.cfg.DRX, fused)
			if err != nil {
				continue
			}
			out = append(out, FusionCandidate{
				App:     i,
				Hop:     k,
				Unfused: p.drxTimes[k1.Signature()] + p.drxTimes[k2.Signature()],
				Fused:   ft,
			})
		}
	}
	return out
}

// drxTimeShared resolves a kernel's DRX duration through the
// process-wide cache only, never touching plan-local state — the
// post-NewPlan-safe path (plan maps are shared read-only by replicas).
func drxTimeShared(dcfg drx.Config, k *restructure.Kernel) (sim.Duration, error) {
	key := drxTimeKey{sig: k.Signature(), cfg: dcfg}
	if d, ok := drxTimeCache.Load(key); ok {
		return d.(sim.Duration), nil
	}
	d, err := drxTimeFor(dcfg, k)
	if err != nil {
		return 0, err
	}
	drxTimeCache.Store(key, d)
	return d, nil
}

// drxTimeFor compiles and simulates a restructuring kernel on a DRX
// configuration. DRX execution is data-independent, so zero-filled
// inputs time identically to real data. The compile goes through drxc's
// process-wide program cache (shared with dmxrt's enqueue path and
// populated by warm-up), and the machine run is entirely local state, so
// concurrent calls (for distinct or even equal kernels) are race-free.
func drxTimeFor(dcfg drx.Config, k *restructure.Kernel) (sim.Duration, error) {
	c, err := drxc.CompileCached(k, dcfg)
	if err != nil {
		return 0, fmt.Errorf("dmxsys: compiling %s for DRX: %w", k.Name, err)
	}
	m, err := drx.New(dcfg)
	if err != nil {
		return 0, err
	}
	inputs := make(map[string]*tensor.Tensor)
	for _, p := range k.Inputs() {
		inputs[p.Name] = tensor.New(p.DType, p.Shape...)
	}
	_, res, err := drxc.Execute(c, m, inputs)
	if err != nil {
		return 0, fmt.Errorf("dmxsys: timing %s on DRX: %w", k.Name, err)
	}
	return sim.FromSeconds(res.Seconds(dcfg.ClockHz)), nil
}

// WarmDRXTimes pre-computes the process-wide DRX timing cache for every
// distinct kernel of the given pipelines under one DRX configuration,
// compiling kernels concurrently on the sweep worker pool. Call it once
// before a parallel sweep so workers hit a warm cache instead of
// serializing on (or duplicating) the compile/simulate step.
func WarmDRXTimes(dcfg drx.Config, pipelines []*Pipeline) error {
	var kernels []*restructure.Kernel
	seen := make(map[drxTimeKey]struct{})
	for _, p := range pipelines {
		for _, h := range p.Hops {
			key := drxTimeKey{sig: h.Kernel.Signature(), cfg: dcfg}
			if _, ok := seen[key]; ok {
				continue
			}
			if _, ok := drxTimeCache.Load(key); ok {
				continue
			}
			seen[key] = struct{}{}
			kernels = append(kernels, h.Kernel)
		}
	}
	return sweep.Each(len(kernels), func(i int) error {
		k := kernels[i]
		d, err := drxTimeFor(dcfg, k)
		if err != nil {
			return err
		}
		drxTimeCache.Store(drxTimeKey{sig: k.Signature(), cfg: dcfg}, d)
		return nil
	})
}

// drxServiceTime resolves a kernel's DRX duration at run time. The
// plan's warmed map covers every pipeline kernel; the global-cache and
// compute paths remain for ad-hoc kernels (reports, tests). The plan
// map is never written here, so replicas share it race-free.
func (s *System) drxServiceTime(k *restructure.Kernel) (sim.Duration, error) {
	if d, ok := s.plan.drxTimes[k.Signature()]; ok {
		return d, nil
	}
	key := drxTimeKey{sig: k.Signature(), cfg: s.cfg.DRX}
	if d, ok := drxTimeCache.Load(key); ok {
		return d.(sim.Duration), nil
	}
	d, err := drxTimeFor(s.cfg.DRX, k)
	if err != nil {
		return 0, err
	}
	drxTimeCache.Store(key, d)
	return d, nil
}

// DRXServiceTime exposes the cached DRX duration for reports and tests.
func (s *System) DRXServiceTime(k *restructure.Kernel) (sim.Duration, error) {
	return s.drxServiceTime(k)
}

// driverDelay models completion signaling NAPI-style (Sec. V): each
// completion is normally an interrupt, but when the recent arrival rate
// crosses the coalescing threshold the driver switches to polling and
// per-completion cost drops. The recent-event window is pruned on every
// call, so the mode tracks load dynamically and deterministically.
func (s *System) driverDelay() sim.Duration {
	now := s.Eng.Now()
	cutoff := now.Add(-CoalesceWindow)
	keep := s.irqTimes[:0]
	for _, t := range s.irqTimes {
		if t >= cutoff {
			keep = append(keep, t)
		}
	}
	s.irqTimes = append(keep, now)
	if len(s.irqTimes) > CoalesceThreshold {
		return PollLatency
	}
	return InterruptLatency
}

// cpuJob posts a restructuring (or software kernel) job on the host's
// two shared channels and fires done when both drains complete.
func (s *System) cpuJob(ops int64, bytes int64, done func()) {
	pending := 2
	finish := func() {
		pending--
		if pending == 0 {
			done()
		}
	}
	s.cpuCompute.Start(ops, finish)
	s.cpuMem.Start(bytes, finish)
}

// restructureWork computes the CPU channel work for one kernel.
func (s *System) restructureWork(k *restructure.Kernel) (ops, bytes int64) {
	return restructureWorkFor(s.cfg.CPU, k)
}

// restructureWorkFor is the model-level form shared with the plan-time
// capacity bound.
func restructureWorkFor(m *cpu.Model, k *restructure.Kernel) (ops, bytes int64) {
	for _, st := range k.Stages {
		stats := st.Stats(k)
		ops += stats.Ops
		traffic := float64(stats.BytesIn+stats.BytesOut) * m.ThrashFactor
		if !stats.VectorFriendly {
			traffic *= m.NonStreamPenalty
		}
		bytes += int64(traffic)
	}
	if ops < 1 {
		ops = 1
	}
	if bytes < 1 {
		bytes = 1
	}
	return ops, bytes
}

// Switches reports how many PCIe switches the build instantiated.
func (s *System) Switches() int { return s.nSwitches }

// FaultCounts reports the incidents the injector observed during the
// run (all zero without a fault plan).
func (s *System) FaultCounts() faults.Counts {
	if s.inj == nil {
		return faults.Counts{}
	}
	return s.inj.Counts
}

// OnFaultIncident registers fn to observe every fresh fault incident
// (outage, link window, stall, transient) this host records, called
// synchronously on the host's engine right after the count increments.
// A system without fault injection ignores the hook.
func (s *System) OnFaultIncident(fn func()) {
	if s.inj != nil {
		s.inj.OnIncident = fn
	}
}

// DRXCount reports how many DRX instances the placement deployed.
func (s *System) DRXCount() int { return s.nDRX }

// Energy meters the completed run (call after Run).
func (s *System) energyReport(makespan sim.Duration) (float64, map[string]float64) {
	meter := energy.NewMeter(s.cfg.Energy)
	cpuBusy := s.cpuCompute.BusyTime
	if s.cpuMem.BusyTime > cpuBusy {
		cpuBusy = s.cpuMem.BusyTime
	}
	meter.AddCPU(cpuBusy, makespan)
	for _, a := range s.apps {
		for k, st := range a.pipe.Stages {
			if len(a.accelDev) == 0 {
				continue
			}
			srv := s.servers[a.accelDev[k]]
			meter.AddAccelerator(st.Accel.Name, st.Accel.PowerW, srv.BusyTime)
		}
	}
	if s.nDRX > 0 {
		// drxServers is collected at build time: name-prefix matching
		// breaks once host prefixes namespace the stations.
		var drxBusy sim.Duration
		for _, srv := range s.drxServers {
			drxBusy += srv.BusyTime
		}
		avg := sim.Duration(0)
		if n := len(s.drxServers); n > 0 {
			avg = drxBusy / sim.Duration(n)
		}
		meter.AddDRX(s.nDRX, avg, makespan)
	}
	meter.AddSwitches(s.nSwitches, makespan)
	meter.AddTraffic(s.Fabric.TotalBytes() + s.localBytes)
	return meter.Total(), meter.Breakdown()
}
