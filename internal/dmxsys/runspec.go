package dmxsys

import (
	"fmt"

	"dmx/internal/traffic"
)

// RunSpec unifies the three execution front-ends behind one entry
// point: a single-request latency run, a closed-loop stream, or a
// traffic-generated load. The zero value is a single-request run, so
// the simplest call sites need no spec at all.
type RunSpec struct {
	// Mode selects the front-end.
	Mode RunMode
	// Requests is the closed-loop train length under ModeStream
	// (at least 2, to measure a steady-state rate).
	Requests int
	// Traffic parameterizes ModeLoad (arrival process, rate, request
	// count, seed, deadline).
	Traffic traffic.Spec
}

// RunMode selects which execution front-end Execute uses.
type RunMode uint8

// Execution modes.
const (
	// ModeSingle runs one request per application and reports the
	// latency/energy decomposition (the historical Simulate).
	ModeSingle RunMode = iota
	// ModeStream issues a closed-loop burst of Requests per application
	// and reports steady-state throughput (SimulateStream).
	ModeStream
	// ModeLoad drives the system with the Traffic spec's arrival
	// process and reports the serving summary (SimulateLoad).
	ModeLoad
)

var modeNames = [...]string{
	ModeSingle: "single",
	ModeStream: "stream",
	ModeLoad:   "load",
}

func (m RunMode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("RunMode(%d)", int(m))
}

// Validate sanity-checks the spec.
func (sp RunSpec) Validate() error {
	switch sp.Mode {
	case ModeSingle:
		return nil
	case ModeStream:
		if sp.Requests < 2 {
			return fmt.Errorf("dmxsys: stream runs need at least 2 requests to measure a rate (got %d)", sp.Requests)
		}
		return nil
	case ModeLoad:
		return sp.Traffic.Validate()
	}
	return fmt.Errorf("dmxsys: unknown run mode %d", int(sp.Mode))
}

// SingleSpec is a one-request-per-app latency run.
func SingleSpec() RunSpec { return RunSpec{Mode: ModeSingle} }

// StreamSpec is a closed-loop run of n requests per app.
func StreamSpec(n int) RunSpec { return RunSpec{Mode: ModeStream, Requests: n} }

// LoadSpec is a traffic-driven serving run.
func LoadSpec(spec traffic.Spec) RunSpec { return RunSpec{Mode: ModeLoad, Traffic: spec} }

// Report is the union result of Execute: exactly one of the three
// fields is non-nil, matching the spec's mode.
type Report struct {
	// Single is the latency/energy decomposition (ModeSingle).
	Single *RunReport
	// Stream is the steady-state throughput summary (ModeStream).
	Stream *StreamReport
	// Load is the serving summary with failure accounting (ModeLoad).
	Load *traffic.LoadReport
}

// String renders whichever report the run produced.
func (r Report) String() string {
	switch {
	case r.Single != nil:
		return r.Single.String()
	case r.Stream != nil:
		return fmt.Sprintf("stream(%v): %d apps, makespan %v",
			r.Stream.Placement, len(r.Stream.PerApp), r.Stream.Makespan)
	case r.Load != nil:
		return r.Load.String()
	}
	return "report(empty)"
}

// Execute runs the system under the spec. Like Run, RunStream, and
// RunLoad — which it dispatches to — it consumes the engine: build a
// fresh System per call.
func (s *System) Execute(spec RunSpec) (Report, error) {
	if err := spec.Validate(); err != nil {
		return Report{}, err
	}
	switch spec.Mode {
	case ModeStream:
		rep, err := s.RunStream(spec.Requests)
		if err != nil {
			return Report{}, err
		}
		return Report{Stream: &rep}, nil
	case ModeLoad:
		rep, err := s.RunLoad(spec.Traffic)
		if err != nil {
			return Report{}, err
		}
		return Report{Load: &rep}, nil
	}
	rep, err := s.Run()
	if err != nil {
		return Report{}, err
	}
	return Report{Single: &rep}, nil
}
