package dmxsys

import (
	"strings"
	"testing"

	"dmx/internal/sim"
)

func TestRunStreamPipelines(t *testing.T) {
	s, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunStream(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerApp) != 1 {
		t.Fatalf("%d app streams", len(rep.PerApp))
	}
	as := rep.PerApp[0]
	if as.Throughput <= 0 {
		t.Fatal("no throughput measured")
	}
	// Pipelining: 8 requests must finish in well under 8× a single
	// request's latency.
	single, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	singleRep, err := single.Run()
	if err != nil {
		t.Fatal(err)
	}
	lat := singleRep.Apps[0].Total
	if float64(rep.Makespan) > 7.5*float64(lat) {
		t.Errorf("streamed makespan %v shows no pipelining vs single latency %v", rep.Makespan, lat)
	}
}

func TestStreamedThroughputValidatesStageAnalysis(t *testing.T) {
	// The analytic throughput (1 / slowest stage) and the measured
	// streamed rate must agree within a factor of two in both
	// directions — they are different estimators of the same pipeline.
	for _, p := range []Placement{MultiAxl, BumpInTheWire} {
		lat, err := New(DefaultConfig(p), pipelines(1))
		if err != nil {
			t.Fatal(err)
		}
		latRep, err := lat.Run()
		if err != nil {
			t.Fatal(err)
		}
		analytic := latRep.Apps[0].Throughput(2)

		str, err := New(DefaultConfig(p), pipelines(1))
		if err != nil {
			t.Fatal(err)
		}
		strRep, err := str.RunStream(12)
		if err != nil {
			t.Fatal(err)
		}
		measured := strRep.PerApp[0].Throughput
		if measured <= 0 {
			t.Fatalf("%v: no measured throughput", p)
		}
		ratio := measured / analytic
		if ratio < 0.5 || ratio > 2.5 {
			t.Errorf("%v: measured %.1f req/s vs analytic %.1f req/s (ratio %.2f)",
				p, measured, analytic, ratio)
		}
	}
}

func TestStreamedDMXThroughputBeatsBaseline(t *testing.T) {
	run := func(p Placement) float64 {
		s, err := New(DefaultConfig(p), pipelines(2))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.RunStream(8)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, a := range rep.PerApp {
			sum += a.Throughput
		}
		return sum
	}
	base := run(MultiAxl)
	dmxT := run(BumpInTheWire)
	if dmxT <= base {
		t.Errorf("streamed DMX throughput %.1f not above baseline %.1f", dmxT, base)
	}
}

func TestRunStreamValidation(t *testing.T) {
	s, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunStream(1); err == nil {
		t.Error("RunStream(1) did not return an error")
	} else if !strings.Contains(err.Error(), "at least 2 requests") {
		t.Errorf("unexpected RunStream(1) error: %v", err)
	}
}

func TestTraceFollowsFig10Sequence(t *testing.T) {
	cfg := DefaultConfig(BumpInTheWire)
	var events []string
	cfg.Trace = func(_ sim.Time, app, event string) {
		events = append(events, event)
	}
	s, err := New(cfg, pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// The Fig. 10 order: input DMA, kernel 1, P2P into the DRX RX queue,
	// restructuring, TX, P2P to the peer, kernel 2.
	wantOrder := []string{
		"request input DMA",
		"kernel aes-gcm enqueued",
		"kernel aes-gcm finished",
		"P2P DMA a0.0→RX queue",
		"DRX restructuring record-frame",
		"restructured into TX queue",
		"P2P DMA a0.0→a0.1",
		"kernel regex enqueued",
		"kernel regex finished",
	}
	pos := 0
	for _, ev := range events {
		if pos < len(wantOrder) && strings.Contains(ev, wantOrder[pos]) {
			pos++
		}
	}
	if pos != len(wantOrder) {
		t.Fatalf("trace missing step %d (%q); got:\n%s", pos, wantOrder[pos], strings.Join(events, "\n"))
	}
}

func TestTraceDoesNotPerturbTiming(t *testing.T) {
	quiet, err := New(DefaultConfig(BumpInTheWire), pipelines(2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := quiet.Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(BumpInTheWire)
	cfg.Trace = func(sim.Time, string, string) {}
	traced, err := New(cfg, pipelines(2))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}
	if q.Makespan != tr.Makespan || q.MeanTotal() != tr.MeanTotal() {
		t.Errorf("tracing changed timing: %v/%v vs %v/%v", q.Makespan, q.MeanTotal(), tr.Makespan, tr.MeanTotal())
	}
}
