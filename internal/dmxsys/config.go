package dmxsys

import (
	"fmt"

	"dmx/internal/cpu"
	"dmx/internal/drx"
	"dmx/internal/energy"
	"dmx/internal/faults"
	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/sim"
)

// Placement selects the system configuration.
type Placement int

// System configurations.
const (
	// AllCPU runs application kernels and restructuring on the host.
	AllCPU Placement = iota
	// MultiAxl accelerates kernels but restructures on the host CPU.
	MultiAxl
	// Integrated attaches one shared DRX to the CPU.
	Integrated
	// Standalone gives each application a DRX PCIe card.
	Standalone
	// PCIeIntegrated embeds a DRX into each PCIe switch.
	PCIeIntegrated
	// BumpInTheWire pairs every accelerator with its own inline DRX.
	BumpInTheWire
)

var placementNames = [...]string{
	AllCPU:         "All-CPU",
	MultiAxl:       "Multi-Axl",
	Integrated:     "Integrated",
	Standalone:     "Standalone",
	PCIeIntegrated: "PCIe-Integrated",
	BumpInTheWire:  "Bump-in-the-Wire",
}

func (p Placement) String() string {
	if int(p) < len(placementNames) {
		return placementNames[p]
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// UsesDRX reports whether the placement restructures on DRX hardware.
func (p Placement) UsesDRX() bool { return p >= Integrated }

// Driver timing constants (Sec. V: GEM/ioctl command execution,
// interrupt-mode completion signaling with coalescing, NAPI-style
// fallback to polling under bursty arrivals).
const (
	// InterruptLatency is the cost of one interrupt delivery plus driver
	// handler execution on the host.
	InterruptLatency = 5 * sim.Microsecond
	// PollLatency replaces InterruptLatency once the arrival rate
	// crosses the coalescing threshold.
	PollLatency = 1 * sim.Microsecond
	// DMASetupLatency is the driver's cost to program one point-to-point
	// DMA descriptor (dma-buf handshake included).
	DMASetupLatency = 2 * sim.Microsecond
	// CoalesceThreshold is the number of completions within
	// CoalesceWindow above which drivers switch from interrupts to
	// polling.
	CoalesceThreshold = 8
	// CoalesceWindow is the sliding window over which the completion
	// rate is assessed.
	CoalesceWindow = 200 * sim.Microsecond
)

// SchedPolicy selects the service discipline every contended station
// (accelerator engines, DRX units) uses to order waiting jobs.
type SchedPolicy uint8

// Service disciplines.
const (
	// SchedFIFO serves jobs strictly in arrival order (the default; the
	// historical behavior, preserved bit-for-bit).
	SchedFIFO SchedPolicy = iota
	// SchedPriority serves the waiting app with the smallest
	// Config.AppPriority value first.
	SchedPriority
	// SchedWFQ is weighted-fair round-robin across apps with
	// Config.AppWeight shares.
	SchedWFQ
	// SchedEDF is earliest-deadline-first: every contended station
	// serves the waiting job whose request has the nearest absolute
	// deadline (requests without a deadline sort last). Deadlines come
	// from the load spec (traffic.Spec.Deadline / AppDeadlines).
	SchedEDF
	// SchedSRS is shortest-remaining-service: stations serve the waiting
	// job whose request has the least precomputed service demand still
	// ahead of it in its pipeline (the per-stage occupancy model that
	// also drives AppReport.Bottleneck). Short requests overtake long
	// ones, which minimizes mean sojourn time under mixed request sizes.
	SchedSRS
)

var schedNames = [...]string{
	SchedFIFO:     "fifo",
	SchedPriority: "priority",
	SchedWFQ:      "wfq",
	SchedEDF:      "edf",
	SchedSRS:      "srs",
}

func (p SchedPolicy) String() string {
	if int(p) < len(schedNames) {
		return schedNames[p]
	}
	return fmt.Sprintf("SchedPolicy(%d)", int(p))
}

// ParseSched maps a CLI token to a scheduling policy.
func ParseSched(s string) (SchedPolicy, error) {
	for i, name := range schedNames {
		if s == name {
			return SchedPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("dmxsys: unknown discipline %q (want fifo, priority, wfq, edf, or srs)", s)
}

// Config parameterizes a system build.
type Config struct {
	Placement Placement
	// Gen and lane widths set the fabric (Fig. 19 sweeps Gen).
	Gen            pcie.Gen
	AccelLanes     int // downstream link width per accelerator (x16)
	UplinkLanes    int // switch upstream width (x8: the paper's bottleneck)
	SlotsPerSwitch int // devices per switch before a new one is added
	// DRX is the hardware configuration of every DRX instance.
	DRX drx.Config
	// CPU is the host model.
	CPU *cpu.Model
	// Energy holds the power calibration.
	Energy energy.Params
	// PCIeIntegratedSlots is the line-rate processing parallelism of a
	// switch-integrated DRX.
	PCIeIntegratedSlots int
	// StartStagger offsets each application's request by i·StartStagger.
	// Real co-running services are not phase-locked; a deterministic
	// stagger avoids the measurement artifact where every app hits every
	// shared resource at the same instant.
	StartStagger sim.Duration
	// Obs, when set, receives the structured event stream: typed Fig. 10
	// protocol instants, per-device occupancy spans, DMA spans with flow
	// arrows, per-app phase attribution spans, and link occupancy
	// counters. Feed the recorded stream to obs.WriteTrace for a
	// Perfetto-loadable trace or obs.Aggregate for metrics (RunReport
	// carries the aggregate automatically). Tracing never perturbs
	// timing: emission only appends, and a nil recorder costs one branch.
	Obs *obs.Recorder
	// Trace, when set, receives one line per protocol event (kernel
	// start/finish, DMA, restructuring, queue operations) with the
	// virtual timestamp — the Fig. 10 interaction sequence as a log. It
	// is a text renderer over the structured stream (obs.RenderText
	// streamed through the recorder's OnEvent hook); when only Trace is
	// set, the System creates the recorder internally. Tracing does not
	// perturb timing.
	Trace func(at sim.Time, app, event string)
	// Sched is the service discipline of every contended station. The
	// zero value (SchedFIFO) preserves the classic arrival-order
	// behavior exactly.
	Sched SchedPolicy
	// AppPriority maps app index → priority under SchedPriority (lower
	// is served first; apps beyond the slice get sim.DefaultPriority).
	AppPriority []int
	// AppWeight maps app index → jobs-per-turn share under SchedWFQ
	// (values below 1, and apps beyond the slice, act as 1).
	AppWeight []int
	// AppsPerStandaloneCard is how many applications share one standalone
	// DRX PCIe card. Sharing is what makes the standalone placement
	// oversubscribe its card link and unit (Sec. III: "the PCIe link to a
	// shared, Standalone DRX card can become the bottleneck") while
	// spending less idle DRX power than bump-in-the-wire (Fig. 15).
	AppsPerStandaloneCard int
	// Faults, when set and enabled, injects seeded deterministic
	// failures: DRX unit outages, transient restructure errors, PCIe
	// link degradation/loss, and accelerator stalls. nil (or a disabled
	// plan) preserves the fault-free flow bit-for-bit.
	Faults *faults.Plan
	// Retry is the recovery policy: per-stage watchdog deadline,
	// bounded re-attempts with deterministic exponential backoff, and
	// graceful degradation to CPU-mediated restructuring when a hop's
	// DRX path is unavailable. The zero value disables retry and the
	// watchdog.
	Retry faults.RetryPolicy
	// BatchWindow enables continuous batching: requests of one
	// application that arrive within BatchWindow of the first pending
	// request coalesce into a single batch that walks the pipeline as
	// one unit (one driver round trip, one DMA descriptor, and one
	// kernel/DRX dispatch per station, with payloads scaled by the batch
	// size). Completions split back out per request, so latency
	// accounting stays per-request: early members pay the residual
	// window as queueing delay. Zero (the default) disables batching
	// and preserves the unbatched serving path bit-for-bit.
	BatchWindow sim.Duration
	// BatchMax caps how many requests one batch may carry; reaching the
	// cap flushes the window early. Zero means no cap (the window alone
	// closes batches). Bump-in-the-wire placements additionally cap
	// batches so a batch's hop payload never exceeds an inline DRX data
	// queue.
	BatchMax int
	// AdmitLimit enables per-app admission control under RunLoad: an
	// arrival that finds AdmitLimit of its app's requests already
	// outstanding (queued, batching, or executing) is rejected
	// immediately instead of deepening the backlog, and counts in
	// LoadReport as Rejected. Zero disables admission control.
	AdmitLimit int
	// FuseHops selects adjacent DRX hop pairs to fuse: for each entry,
	// hop Hop and hop Hop+1 of app App's pipeline compile into one DRX
	// program that pays one driver/launch round trip. The fused program
	// runs its first half at the leading hop, stays resident on the DRX
	// unit while the intermediate accelerator stage executes, and resumes
	// its second half when the trailing hop arrives — so the trailing hop
	// skips driver and DMA-descriptor setup entirely, at the cost of the
	// unit being held (unavailable to other work) across the gap. Legal
	// only under placements where adjacent hops share one DRX unit
	// (Integrated, Standalone, PCIe-Integrated) and only when the two
	// kernels chain (restructure.Fuse accepts them). Mutually exclusive
	// with BatchWindow: batches re-plan hop payloads per batch, which a
	// resident half-executed program cannot express. Empty preserves the
	// unfused flow bit-for-bit.
	FuseHops []FusePair
}

// FusePair names one fused hop pair: hops Hop and Hop+1 of the pipeline
// at index App fuse into a single DRX program.
type FusePair struct {
	App int `json:"app"`
	Hop int `json:"hop"`
}

// DefaultConfig mirrors the paper's testbed: PCIe Gen3, x16 device
// links, x8 uplinks, 8 devices per switch, the default DRX ASIC, and the
// calibrated Xeon host.
func DefaultConfig(p Placement) Config {
	return Config{
		Placement:             p,
		Gen:                   pcie.Gen3,
		AccelLanes:            16,
		UplinkLanes:           8,
		SlotsPerSwitch:        8,
		DRX:                   drx.DefaultConfig(),
		CPU:                   cpu.DefaultModel(),
		Energy:                energy.Default(),
		PCIeIntegratedSlots:   4,
		StartStagger:          50 * sim.Microsecond,
		AppsPerStandaloneCard: 2,
	}
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if int(c.Placement) >= len(placementNames) || c.Placement < 0 {
		return fmt.Errorf("dmxsys: unknown placement %d", int(c.Placement))
	}
	switch c.Gen {
	case pcie.Gen3, pcie.Gen4, pcie.Gen5:
	default:
		return fmt.Errorf("dmxsys: unsupported PCIe generation %v", c.Gen)
	}
	if c.AccelLanes <= 0 || c.UplinkLanes <= 0 {
		return fmt.Errorf("dmxsys: non-positive lane widths")
	}
	if c.SlotsPerSwitch < 2 {
		return fmt.Errorf("dmxsys: switches need at least 2 slots")
	}
	if c.CPU == nil {
		return fmt.Errorf("dmxsys: nil CPU model")
	}
	if err := c.DRX.Validate(); err != nil {
		return err
	}
	if c.Placement == PCIeIntegrated && c.PCIeIntegratedSlots < 1 {
		return fmt.Errorf("dmxsys: PCIe-integrated DRX needs at least 1 slot")
	}
	if c.Placement == Standalone && c.AppsPerStandaloneCard < 1 {
		return fmt.Errorf("dmxsys: standalone cards must serve at least 1 app")
	}
	switch c.Sched {
	case SchedFIFO, SchedPriority, SchedWFQ, SchedEDF, SchedSRS:
	default:
		return fmt.Errorf("dmxsys: unknown scheduling policy %d", int(c.Sched))
	}
	if c.BatchWindow < 0 {
		return fmt.Errorf("dmxsys: negative batch window %v", c.BatchWindow)
	}
	if c.BatchMax < 0 {
		return fmt.Errorf("dmxsys: negative batch cap %d", c.BatchMax)
	}
	if c.AdmitLimit < 0 {
		return fmt.Errorf("dmxsys: negative admission limit %d", c.AdmitLimit)
	}
	if len(c.FuseHops) > 0 {
		if c.BatchWindow > 0 {
			return fmt.Errorf("dmxsys: hop fusion and batching are mutually exclusive")
		}
		switch c.Placement {
		case Integrated, Standalone, PCIeIntegrated:
		default:
			return fmt.Errorf("dmxsys: hop fusion needs a shared DRX unit (placement %v has none)", c.Placement)
		}
		seen := make(map[FusePair]bool, len(c.FuseHops))
		for _, fp := range c.FuseHops {
			if fp.App < 0 || fp.Hop < 0 {
				return fmt.Errorf("dmxsys: negative fuse pair app=%d hop=%d", fp.App, fp.Hop)
			}
			if seen[fp] {
				return fmt.Errorf("dmxsys: duplicate fuse pair app=%d hop=%d", fp.App, fp.Hop)
			}
			seen[fp] = true
			if seen[FusePair{App: fp.App, Hop: fp.Hop - 1}] || seen[FusePair{App: fp.App, Hop: fp.Hop + 1}] {
				return fmt.Errorf("dmxsys: overlapping fuse pairs at app=%d hop=%d", fp.App, fp.Hop)
			}
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	return nil
}

// discipline builds a fresh Discipline instance for one station (each
// server orders its own backlog independently).
func (c Config) discipline() sim.Discipline {
	switch c.Sched {
	case SchedPriority:
		return sim.NewPriority(c.AppPriority)
	case SchedWFQ:
		return sim.NewWRR(c.AppWeight)
	case SchedEDF:
		return sim.NewEDF()
	case SchedSRS:
		return sim.NewSRS()
	}
	return sim.NewFIFO()
}
