package dmxsys

import (
	"math"
	"strings"
	"testing"

	"dmx/internal/accel"
	"dmx/internal/restructure"
	"dmx/internal/sim"
)

// testPipeline builds a small but nontrivial two-kernel pipeline: a
// synthetic "decrypt → frame records → scan" chain sized so one DRX
// timing run stays fast.
func testPipeline(name string) *Pipeline {
	const nrec, reclen = 4096, 256 // 1 MiB batch: big enough to be wire/DRAM-bound
	batch := int64(nrec * reclen)
	aes, err := accel.NewAESGCM("sys-test")
	if err != nil {
		panic(err)
	}
	re := accel.NewRegexRedact(nrec, reclen)
	return &Pipeline{
		Name:   name,
		Stages: []Stage{{Accel: aes, InBytes: batch + 16}, {Accel: re, InBytes: batch}},
		Hops: []Hop{{
			Kernel:   restructure.RecordFrame(nrec, reclen),
			InBytes:  batch,
			OutBytes: batch,
		}},
		InputBytes:  batch + 16,
		OutputBytes: 4096, // per-record match summary back to the host
	}
}

func pipelines(n int) []*Pipeline {
	out := make([]*Pipeline, n)
	for i := range out {
		out[i] = testPipeline("app")
	}
	return out
}

func run(t *testing.T, p Placement, napps int) RunReport {
	t.Helper()
	s, err := New(DefaultConfig(p), pipelines(napps))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAllPlacementsCompleteAndAttributeTime(t *testing.T) {
	for _, p := range []Placement{AllCPU, MultiAxl, Integrated, Standalone, PCIeIntegrated, BumpInTheWire} {
		rep := run(t, p, 2)
		if len(rep.Apps) != 2 {
			t.Fatalf("%v: %d app reports", p, len(rep.Apps))
		}
		for _, a := range rep.Apps {
			if a.Total <= 0 {
				t.Errorf("%v: zero total", p)
			}
			if a.KernelTime <= 0 || a.RestructureTime <= 0 {
				t.Errorf("%v: missing kernel/restructure attribution: %+v", p, a)
			}
			sum := a.KernelTime + a.RestructureTime + a.MovementTime
			// Components must cover nearly all of the timeline (driver
			// delays are inside movement; queueing is inside the phases).
			if float64(sum) < 0.95*float64(a.Total) || sum > a.Total {
				t.Errorf("%v: components %v do not cover total %v", p, sum, a.Total)
			}
			if p == AllCPU && a.MovementTime != 0 {
				t.Errorf("AllCPU reported movement time %v", a.MovementTime)
			}
			if p != AllCPU && a.MovementTime <= 0 {
				t.Errorf("%v: no movement time", p)
			}
		}
		if rep.EnergyJ <= 0 {
			t.Errorf("%v: no energy accounted", p)
		}
	}
}

func TestMultiAxlFasterThanAllCPU(t *testing.T) {
	allcpu := run(t, AllCPU, 1)
	axl := run(t, MultiAxl, 1)
	if axl.MeanTotal() >= allcpu.MeanTotal() {
		t.Errorf("Multi-Axl (%v) not faster than All-CPU (%v)", axl.MeanTotal(), allcpu.MeanTotal())
	}
}

func TestDMXFasterThanMultiAxl(t *testing.T) {
	axl := run(t, MultiAxl, 4)
	dmx := run(t, BumpInTheWire, 4)
	if dmx.MeanTotal() >= axl.MeanTotal() {
		t.Errorf("Bump-in-the-Wire (%v) not faster than Multi-Axl (%v)", dmx.MeanTotal(), axl.MeanTotal())
	}
	// And absolute restructuring time must collapse (Fig. 12's story).
	var reAxl, reDMX sim.Duration
	for i := range axl.Apps {
		reAxl += axl.Apps[i].RestructureTime
		reDMX += dmx.Apps[i].RestructureTime
	}
	if reDMX >= reAxl {
		t.Errorf("restructure time did not shrink: baseline %v, DMX %v", reAxl, reDMX)
	}
}

func TestPlacementOrderingAtScale(t *testing.T) {
	// Fig. 14: Integrated ≤ Standalone ≤ Bump-in-the-Wire ≤ PCIe-Integrated
	// (in speedup, i.e. reversed in latency), with many concurrent apps.
	const napps = 8
	integrated := run(t, Integrated, napps).MeanTotal()
	standalone := run(t, Standalone, napps).MeanTotal()
	bump := run(t, BumpInTheWire, napps).MeanTotal()
	pcieInt := run(t, PCIeIntegrated, napps).MeanTotal()
	if !(pcieInt <= bump && bump <= standalone && standalone <= integrated) {
		t.Errorf("placement latency ordering violated: integ=%v standalone=%v bump=%v pcie=%v",
			integrated, standalone, bump, pcieInt)
	}
}

func TestContentionGrowsMultiAxlLatency(t *testing.T) {
	one := run(t, MultiAxl, 1).MeanTotal()
	eight := run(t, MultiAxl, 8).MeanTotal()
	if eight <= one {
		t.Errorf("8-app Multi-Axl latency (%v) not above 1-app (%v)", eight, one)
	}
}

func TestBumpInTheWireScalesBetterThanIntegrated(t *testing.T) {
	// Integrated's single DRX serializes all apps; bump-in-the-wire gives
	// each chain its own. The gap must widen with concurrency.
	gap := func(n int) float64 {
		return float64(run(t, Integrated, n).MeanTotal()) / float64(run(t, BumpInTheWire, n).MeanTotal())
	}
	if g1, g8 := gap(1), gap(8); g8 <= g1 {
		t.Errorf("Integrated/BumpWire gap did not grow: 1 app %.2f, 8 apps %.2f", g1, g8)
	}
}

func TestEnergyBumpWireHasMoreDRXThanStandalone(t *testing.T) {
	bump, err := New(DefaultConfig(BumpInTheWire), pipelines(4))
	if err != nil {
		t.Fatal(err)
	}
	std, err := New(DefaultConfig(Standalone), pipelines(4))
	if err != nil {
		t.Fatal(err)
	}
	if bump.DRXCount() <= std.DRXCount() {
		t.Errorf("bump-in-the-wire DRX count %d not above standalone %d (per-accelerator vs per-app)",
			bump.DRXCount(), std.DRXCount())
	}
}

func TestDRXServiceTimeCached(t *testing.T) {
	s, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	k := restructure.RecordFrame(256, 256)
	d1, err := s.DRXServiceTime(k)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.DRXServiceTime(k)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || d1 <= 0 {
		t.Errorf("cached DRX times differ or non-positive: %v vs %v", d1, d2)
	}
}

func TestDRXMuchFasterThanCPURestructure(t *testing.T) {
	// The core claim: restructuring on DRX beats the host by a wide
	// margin for a solo app.
	axl := run(t, MultiAxl, 1)
	bump := run(t, BumpInTheWire, 1)
	rAxl := axl.Apps[0].RestructureTime
	rBump := bump.Apps[0].RestructureTime
	if float64(rAxl) < 2*float64(rBump) {
		t.Errorf("DRX restructure (%v) not ≥2x faster than CPU (%v)", rBump, rAxl)
	}
}

func TestThroughputMetric(t *testing.T) {
	rep := run(t, BumpInTheWire, 1)
	a := rep.Apps[0]
	thr := a.Throughput(2)
	if thr <= 0 {
		t.Fatal("non-positive throughput")
	}
	// Stage-max bound: throughput cannot exceed 1/max-stage and cannot
	// be below 1/total.
	if thr < 1/a.Total.Seconds() {
		t.Errorf("throughput %v below 1/total %v", thr, 1/a.Total.Seconds())
	}
}

func TestRunDeterminism(t *testing.T) {
	a := run(t, BumpInTheWire, 4)
	b := run(t, BumpInTheWire, 4)
	if a.Makespan != b.Makespan || a.MeanTotal() != b.MeanTotal() {
		t.Errorf("nondeterministic run: %v/%v vs %v/%v", a.Makespan, a.MeanTotal(), b.Makespan, b.MeanTotal())
	}
	if math.Abs(a.EnergyJ-b.EnergyJ) > 1e-9 {
		t.Errorf("nondeterministic energy: %v vs %v", a.EnergyJ, b.EnergyJ)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(MultiAxl)
	bad.SlotsPerSwitch = 1
	if _, err := New(bad, pipelines(1)); err == nil {
		t.Error("accepted 1-slot switches")
	}
	cfg := DefaultConfig(MultiAxl)
	if _, err := New(cfg, nil); err == nil {
		t.Error("accepted empty pipeline list")
	}
	p := testPipeline("broken")
	p.Hops[0].Kernel = nil
	if _, err := New(cfg, []*Pipeline{p}); err == nil {
		t.Error("accepted pipeline with nil hop kernel")
	}
}

func TestSwitchAllocationGrowsWithApps(t *testing.T) {
	small, _ := New(DefaultConfig(BumpInTheWire), pipelines(2))
	big, _ := New(DefaultConfig(BumpInTheWire), pipelines(12))
	if big.Switches() <= small.Switches() {
		t.Errorf("12 apps on %d switches, 2 apps on %d", big.Switches(), small.Switches())
	}
}

func TestCollectiveBroadcastDMXFaster(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		mk := func(useDMX bool) sim.Duration {
			cs, err := NewCollective(CollectiveConfig{
				Accels: n,
				Bytes:  4 << 20,
				UseDMX: useDMX,
				Sys:    DefaultConfig(BumpInTheWire),
			})
			if err != nil {
				t.Fatal(err)
			}
			d, err := cs.Broadcast()
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
		base, dmx := mk(false), mk(true)
		if dmx >= base {
			t.Errorf("broadcast n=%d: DMX (%v) not faster than baseline (%v)", n, dmx, base)
		}
	}
}

func TestCollectiveAllReduceDMXFaster(t *testing.T) {
	for _, n := range []int{4, 16} {
		mk := func(useDMX bool) sim.Duration {
			cs, err := NewCollective(CollectiveConfig{
				Accels: n,
				Bytes:  4 << 20,
				Reduce: true,
				UseDMX: useDMX,
				Sys:    DefaultConfig(BumpInTheWire),
			})
			if err != nil {
				t.Fatal(err)
			}
			d, err := cs.AllReduce()
			if err != nil {
				t.Fatal(err)
			}
			return d
		}
		base, dmx := mk(false), mk(true)
		if dmx >= base {
			t.Errorf("all-reduce n=%d: DMX (%v) not faster than baseline (%v)", n, dmx, base)
		}
	}
}

func TestCollectiveErrors(t *testing.T) {
	if _, err := NewCollective(CollectiveConfig{Accels: 1, Bytes: 1, Sys: DefaultConfig(MultiAxl)}); err == nil {
		t.Error("accepted 1-accelerator collective")
	}
	if _, err := NewCollective(CollectiveConfig{Accels: 4, Bytes: 0, Sys: DefaultConfig(MultiAxl)}); err == nil {
		t.Error("accepted zero-byte collective")
	}
}

func TestEnergyBreakdownComponents(t *testing.T) {
	rep := run(t, BumpInTheWire, 2)
	for _, key := range []string{"cpu", "drx", "switch", "link"} {
		if rep.EnergyBreakdown[key] <= 0 {
			t.Errorf("energy component %q missing or zero: %v", key, rep.EnergyBreakdown)
		}
	}
	var accelSeen bool
	for k := range rep.EnergyBreakdown {
		if strings.HasPrefix(k, "accel:") {
			accelSeen = true
		}
	}
	if !accelSeen {
		t.Error("no accelerator energy components")
	}
	if s := rep.String(); !strings.Contains(s, "Bump-in-the-Wire") || !strings.Contains(s, "shares:") {
		t.Errorf("RunReport.String incomplete: %q", s)
	}
}
