package dmxsys_test

// The flow.go state-machine refactor must not move a single event: the
// acceptance gate is that RunStream's report values and rendered text
// trace are byte-identical before and after for all five Table I
// applications under every placement. This golden test pins that
// equivalence: each (app, placement) cell's full dump — every rendered
// trace line plus the StreamReport fields — is hashed, and the hashes
// were captured from the pre-refactor nested-closure implementation.
// Run with -update only to regenerate after an *intentional* timing
// change.

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the stream golden file")

const goldenRequests = 4

// streamDump renders one streamed run as a stable text form: the exact
// trace-line sequence followed by every StreamReport value.
func streamDump(t *testing.T, b *workload.Benchmark, p dmxsys.Placement) string {
	t.Helper()
	cfg := dmxsys.DefaultConfig(p)
	var sb strings.Builder
	cfg.Trace = func(at sim.Time, app, event string) {
		fmt.Fprintf(&sb, "[%d] %s %s\n", int64(at), app, event)
	}
	s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{b.Pipeline})
	if err != nil {
		t.Fatalf("%s/%v: %v", b.Name, p, err)
	}
	rep, err := s.RunStream(goldenRequests)
	if err != nil {
		t.Fatalf("%s/%v: %v", b.Name, p, err)
	}
	fmt.Fprintf(&sb, "placement=%v makespan=%d\n", rep.Placement, int64(rep.Makespan))
	for _, a := range rep.PerApp {
		fmt.Fprintf(&sb, "app=%s requests=%d first=%d last=%d throughput=%.9g\n",
			a.App, a.Requests, int64(a.First), int64(a.Last), a.Throughput)
	}
	return sb.String()
}

func goldenKey(app string, p dmxsys.Placement) string {
	return app + "/" + strings.ReplaceAll(p.String(), " ", "-")
}

func hashDump(dump string) string {
	h := fnv.New64a()
	h.Write([]byte(dump))
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestRunStreamGoldenAcrossAppsAndPlacements(t *testing.T) {
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	placements := []dmxsys.Placement{
		dmxsys.AllCPU, dmxsys.MultiAxl, dmxsys.Integrated,
		dmxsys.Standalone, dmxsys.PCIeIntegrated, dmxsys.BumpInTheWire,
	}
	got := make(map[string]string)
	var keys []string
	for _, b := range benches {
		for _, p := range placements {
			key := goldenKey(b.Name, p)
			got[key] = hashDump(streamDump(t, b, p))
			keys = append(keys, key)
		}
	}

	golden := filepath.Join("testdata", "stream_golden.txt")
	if *update {
		var sb strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s %s\n", k, got[k])
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 {
			want[fields[0]] = fields[1]
		}
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cells, run produced %d", len(want), len(got))
	}
	for _, k := range keys {
		if want[k] == "" {
			t.Errorf("%s: missing from golden file", k)
			continue
		}
		if got[k] != want[k] {
			t.Errorf("%s: stream output changed: hash %s, golden %s", k, got[k], want[k])
		}
	}
}
