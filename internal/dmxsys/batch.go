package dmxsys

import (
	"errors"
	"fmt"

	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/sim"
	"dmx/internal/traffic"
)

// Continuous batching. With Config.BatchWindow set, arrivals of one
// application accumulate in a deterministic window (opened by the first
// pending request, flushed BatchWindow later or when BatchMax fills)
// and walk the pipeline as a single batch: one driver round trip, one
// DMA descriptor, and one kernel/DRX dispatch per station, with
// payloads scaled by the batch size. Requests of one app always share a
// pipeline and placement, so app identity is the compatibility key.
//
// What amortizes and what does not follows the hardware model:
// accelerator kernels pay their launch overhead once per dispatch
// (accel.Spec.Latency is concave in bytes), and each leg pays one
// interrupt/poll plus one DMA-descriptor setup instead of one per
// request. DRX restructuring and CPU fallback work stream the payload,
// so a batch costs n× their per-request service — coalescing wins
// nothing there, and link serialization is byte-proportional either
// way. Occupancy accounting charges the batch totals, so the capacity
// bound sees exactly the per-request amortization.
//
// Completions split back out per member: each member's latency runs
// from its own arrival (so early members pay the residual window as
// queueing delay), and failure handling stays per-request — a member
// whose restructure rolls a transient fault peels out of the batch and
// retries alone on the PR 5 recovery ladder, while its batchmates
// continue unharmed. Device-level incidents (a DRX outage window, a
// dead link after retries) degrade or abandon the batch as a whole,
// because every member's payload sits on the same hardware.
//
// The walk below mirrors flow.go step for step at n× payload; batch
// shells recycle through System.batchPool, so steady-state
// accumulation allocates only the requests themselves.

// batch is one coalesced group of requests walking the pipeline as a
// unit.
type batch struct {
	s *System
	a *appInstance

	// members are the live members in arrival order. Members leave the
	// slice by peeling (solo retry) or when the batch retires.
	members []*request

	// k is the stage cursor, as in request.
	k int

	// track is the batch's trace timeline; mark the phase tracker;
	// legBegin the start of the DMA leg in flight.
	track    string
	mark     sim.Time
	legBegin sim.Time

	// rx, tx mirror request's bump-in-the-wire queue reservations, at
	// batch scale.
	rx, tx         *DataQueue
	rxHeld, txHeld int64

	// Fault-handling state, mirroring request: attempt numbers the
	// tries of the stage operation in progress, epoch invalidates
	// in-flight completions after a watchdog fires, dead marks a
	// retired (or failed) batch so stale completions drop.
	attempt  int
	epoch    int
	dead     bool
	watchdog sim.EventRef
	wdArmed  bool
}

// n is the live batch size.
func (b *batch) n() int64 { return int64(len(b.members)) }

// enqueueBatch parks one arrival in app a's accumulation window,
// opening the window when it is the first pending request and flushing
// early when the size cap fills.
func (s *System) enqueueBatch(a *appInstance, deadline sim.Duration, done func(*request)) {
	r := s.newRequest(a, deadline, done)
	a.pending = append(a.pending, r)
	if len(a.pending) == 1 {
		a.flushRef = s.Eng.Schedule(s.cfg.BatchWindow, a.flushFn)
		a.flushArmed = true
	}
	if max := s.batchCap(a); max > 0 && len(a.pending) >= max {
		if a.flushArmed {
			a.flushRef.Cancel()
			a.flushArmed = false
		}
		s.flush(a)
	}
}

// batchCap is the effective batch-size cap for app a: the configured
// BatchMax tightened by the placement's queue-capacity ceiling
// (appInstance.maxBatch, nonzero only under bump-in-the-wire). Zero
// means uncapped.
func (s *System) batchCap(a *appInstance) int {
	max := s.cfg.BatchMax
	if a.maxBatch > 0 && (max == 0 || a.maxBatch < max) {
		max = a.maxBatch
	}
	return max
}

// flush closes app a's window: the pending requests coalesce into one
// batch (or several consecutive ones when the size cap splits them) and
// dispatch immediately.
func (s *System) flush(a *appInstance) {
	pending := a.pending
	max := s.batchCap(a)
	for len(pending) > 0 {
		n := len(pending)
		if max > 0 && n > max {
			n = max
		}
		s.dispatchBatch(a, pending[:n])
		pending = pending[n:]
	}
	a.pending = a.pending[:0]
}

// dispatchBatch launches one closed batch. A singleton gains nothing
// from coalescing (its "batch" would time identically), so it takes the
// solo state machine — which also keeps the window=0 and window>0
// low-load paths on the same pinned code.
func (s *System) dispatchBatch(a *appInstance, members []*request) {
	if len(members) == 1 {
		members[0].launch()
		return
	}
	b := s.newBatch(a)
	b.members = append(b.members, members...)
	b.mark = s.Eng.Now()
	b.track = a.track
	if s.rec != nil {
		b.track = fmt.Sprintf("%s/b%d", a.track, a.nbatches)
	}
	a.nbatches++
	a.batchedReqs += len(members)
	s.obsInstant(a, obs.TypeBatch, 0, b.track, "", "", b.n())
	b.stepInput()
}

// newBatch takes a recycled batch shell from the pool (or allocates the
// first time). A pooled shell comes back dead (so stale completions
// from its previous life drop); revive it here, keeping the epoch —
// which release bumped past every guard captured before — monotone
// across lives.
func (s *System) newBatch(a *appInstance) *batch {
	var b *batch
	if n := len(s.batchPool); n > 0 {
		b = s.batchPool[n-1]
		s.batchPool = s.batchPool[:n-1]
	} else {
		b = &batch{}
	}
	b.s, b.a = s, a
	b.dead = false
	return b
}

// release retires the batch shell back to the pool: dead until newBatch
// revives it, and the epoch advanced past every closure captured in
// this life, so a stale guarded callback (say an abandoned batch's
// kernel job still queued in a sim.Server) can never match the shell's
// next incarnation.
func (b *batch) release() {
	s := b.s
	members := b.members[:0]
	e := b.epoch + 1
	*b = batch{members: members, epoch: e, dead: true}
	s.batchPool = append(s.batchPool, b)
}

// guard wraps a completion callback with the batch's liveness and
// epoch, mirroring request.guard. Untouched on the fault-free path.
func (b *batch) guard(f func()) func() {
	if !b.s.hazardous {
		return f
	}
	e := b.epoch
	return func() {
		if !b.dead && b.epoch == e {
			f()
		}
	}
}

// arm starts the per-stage watchdog for the batch's in-flight
// operation; timeouts are accounted to the batch leader.
func (b *batch) arm(name string, onTimeout func()) {
	s := b.s
	if !s.hazardous || s.cfg.Retry.StageDeadline <= 0 {
		return
	}
	e := b.epoch
	b.watchdog = s.Eng.Schedule(s.cfg.Retry.StageDeadline, func() {
		if b.dead || b.epoch != e {
			return
		}
		b.epoch++
		b.wdArmed = false
		b.members[0].timeouts++
		s.obsInstant(b.a, obs.TypeTimeout, 0, b.track, "", name, 0)
		onTimeout()
	})
	b.wdArmed = true
}

// disarm cancels a pending watchdog.
func (b *batch) disarm() {
	if b.wdArmed {
		b.watchdog.Cancel()
		b.wdArmed = false
	}
}

// fail records a flow error and freezes the batch (the run surfaces the
// error after the drain, exactly like a solo request failure).
func (b *batch) fail(err error) {
	b.s.fail(err)
	b.dead = true
}

// releaseQueues returns the batch's bump-in-the-wire reservations.
func (b *batch) releaseQueues() {
	if b.rxHeld > 0 && b.rx != nil {
		if err := b.rx.Dequeue(b.rxHeld); err != nil {
			b.fail(fmt.Errorf("dmxsys: %w", err))
		}
		b.rxHeld = 0
	}
	if b.txHeld > 0 && b.tx != nil {
		if err := b.tx.Dequeue(b.txHeld); err != nil {
			b.fail(fmt.Errorf("dmxsys: %w", err))
		}
		b.txHeld = 0
	}
}

// abandon retires every member unfinished (a dead link after retries, a
// kernel watchdog out of budget): the hardware incident is shared, so
// the whole batch is.
func (b *batch) abandon() {
	b.disarm()
	b.epoch++
	b.releaseQueues()
	s, a := b.s, b.a
	for _, m := range b.members {
		m.outcome = traffic.OutcomeAbandoned
		s.obsInstant(a, obs.TypeAbandon, 0, m.track, "", "", 0)
		m.finish()
	}
	b.members = b.members[:0]
	b.release()
}

// lap mirrors request.lap on the batch's phase tracker. Phase time is
// wall-clock per batch (not per member): the report's phase components
// measure resource time, which the batch spends once.
func (b *batch) lap(p phase) {
	now := b.s.Eng.Now()
	d := now.Sub(b.mark)
	if d > 0 {
		op := p.obsPhase()
		b.s.sink().Span(obs.Time(b.mark), obs.Duration(d), obs.TypePhase, op, 0,
			b.track, b.a.pipe.Name, op.String(), 0)
	}
	b.mark = now
	switch p {
	case phaseKernel:
		b.a.rep.KernelTime += d
	case phaseRestructure:
		b.a.rep.RestructureTime += d
	case phaseMovement:
		b.a.rep.MovementTime += d
	}
}

// obsDMA mirrors request.obsDMA on the batch track.
func (b *batch) obsDMA(typ obs.Type, step uint8, from, to string, n int64, begin sim.Time) {
	s := b.s
	if s.rec == nil {
		return
	}
	now := s.Eng.Now()
	s.sink().Span(obs.Time(begin), obs.Duration(now.Sub(begin)), typ, obs.PhaseNone,
		step, b.track, b.a.pipe.Name, "", n)
	if from != to {
		s.sink().FlowPair(obs.Time(begin), obs.Time(now), typ, from, to, b.a.pipe.Name, "", n)
	}
}

// transfer mirrors request.transfer: link outages retry the whole batch
// under the policy, then abandon it.
func (b *batch) transfer(from, to string, n int64, done func()) {
	done = b.guard(done)
	b.fabricAttempt(from, to, 1, func() error {
		return b.s.Fabric.Transfer(from, to, n, done)
	})
}

func (b *batch) fabricAttempt(from, to string, attempt int, start func() error) {
	err := start()
	if err == nil {
		return
	}
	s := b.s
	if s.hazardous && errors.Is(err, pcie.ErrLinkDown) {
		if attempt < s.cfg.Retry.Attempts() {
			next := attempt + 1
			b.members[0].retries++
			s.obsInstant(b.a, obs.TypeRetry, 0, b.track, "", from+"→"+to, int64(next))
			s.Eng.Schedule(s.inj.RetryBackoff(s.cfg.Retry, next), b.guard(func() {
				b.fabricAttempt(from, to, next, start)
			}))
			return
		}
		b.abandon()
		return
	}
	b.fail(fmt.Errorf("dmxsys: transfer %s→%s: %w", from, to, err))
}

// Scheduling keys, mirroring request.kernelKey/hopKey at batch scale:
// EDF uses the most urgent member's deadline; SRS uses the batch's
// total remaining station demand (n× the per-request table).

func (b *batch) minDeadlineKey() int64 {
	key := deadlineKey(0)
	for _, m := range b.members {
		if k := deadlineKey(m.deadline); k < key {
			key = k
		}
	}
	return key
}

func (b *batch) kernelKey() int64 {
	switch b.s.cfg.Sched {
	case SchedEDF:
		return b.minDeadlineKey()
	case SchedSRS:
		return int64(b.a.remAtKernel[b.k]) * b.n()
	}
	return 0
}

func (b *batch) hopKey() int64 {
	switch b.s.cfg.Sched {
	case SchedEDF:
		return b.minDeadlineKey()
	case SchedSRS:
		return int64(b.a.remAtHop[b.k]) * b.n()
	}
	return 0
}

// stepInput ships the coalesced payload host → first accelerator.
func (b *batch) stepInput() {
	s, a := b.s, b.a
	bytes := b.n() * a.pipe.InputBytes
	s.occupyPath(a, pcie.Root, a.accelDev[0], bytes)
	s.obsInstant(a, obs.TypeInputDMA, 0, pcie.Root, a.accelDev[0], "", bytes)
	b.legBegin = s.Eng.Now()
	b.transfer(pcie.Root, a.accelDev[0], bytes, b.inputArrived)
}

func (b *batch) inputArrived() {
	a := b.a
	b.obsDMA(obs.TypeInputDMA, 0, pcie.Root, a.accelDev[0], b.n()*a.pipe.InputBytes, b.legBegin)
	b.lap(phaseMovement)
	b.stepKernel()
}

// stepKernel enqueues stage k's kernel once for the whole batch: the
// accelerator sees one launch over n× the bytes, which is where the
// launch-overhead amortization comes from.
func (b *batch) stepKernel() {
	b.attempt = 1
	b.kernelAttempt()
}

func (b *batch) kernelAttempt() {
	s, a, k := b.s, b.a, b.k
	st := a.pipe.Stages[k]
	dev := a.accelDev[k]
	if s.hazardous {
		if stall := s.inj.StallUntil(dev, s.Eng.Now()); stall > 0 {
			s.obsInstant(a, obs.TypeStall, 0, dev, "", st.Accel.Name, int64(stall))
			s.Eng.Schedule(stall, b.guard(b.kernelAttempt))
			return
		}
	}
	step := uint8(0)
	if k > 0 {
		step = obs.StepNextKernel
	}
	bytes := b.n() * st.InBytes
	s.obsInstant(a, obs.TypeKernelEnqueued, step, dev, "", st.Accel.Name, bytes)
	srv := s.servers[dev]
	service := st.Accel.Latency(bytes)
	a.occupyServer(srv, service)
	b.arm(st.Accel.Name, b.kernelTimeout)
	srv.SubmitKeyed(a.id, b.kernelKey(), service, b.guard(b.kernelDone))
}

func (b *batch) kernelTimeout() {
	s := b.s
	if b.attempt < s.cfg.Retry.Attempts() {
		b.attempt++
		b.members[0].retries++
		st := b.a.pipe.Stages[b.k]
		s.obsInstant(b.a, obs.TypeRetry, 0, b.track, "", st.Accel.Name, int64(b.attempt))
		s.Eng.Schedule(s.inj.RetryBackoff(s.cfg.Retry, b.attempt), b.guard(b.kernelAttempt))
		return
	}
	b.abandon()
}

func (b *batch) kernelDone() {
	s, a, k := b.s, b.a, b.k
	st := a.pipe.Stages[k]
	b.disarm()
	b.lap(phaseKernel)
	s.obsInstant(a, obs.TypeKernelDone, obs.StepKernelDone, a.accelDev[k], "", st.Accel.Name, 0)
	if k == len(a.pipe.Stages)-1 {
		b.stepOutput()
		return
	}
	b.stepHop()
}

func (b *batch) nextStage() {
	b.k++
	b.stepKernel()
}

// stepOutput returns the coalesced result to the host, then splits the
// completion back out per member.
func (b *batch) stepOutput() {
	s, a := b.s, b.a
	last := a.accelDev[len(a.accelDev)-1]
	bytes := b.n() * a.pipe.OutputBytes
	s.occupyPath(a, last, pcie.Root, bytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeOutputDMA, 0, last, pcie.Root, "", bytes)
		b.legBegin = s.Eng.Now()
		b.transfer(last, pcie.Root, bytes, b.outputDone)
	})
}

func (b *batch) outputDone() {
	a := b.a
	last := a.accelDev[len(a.accelDev)-1]
	b.obsDMA(obs.TypeOutputDMA, 0, last, pcie.Root, b.n()*a.pipe.OutputBytes, b.legBegin)
	b.lap(phaseMovement)
	// Per-member retirement: each member's latency runs from its own
	// arrival, and outcome/retry counters are whatever the member
	// accumulated (batch-level events were accounted to the leader).
	for _, m := range b.members {
		m.finish()
	}
	b.members = b.members[:0]
	b.release()
}

// stepHop mirrors request.stepHop.
func (b *batch) stepHop() {
	switch b.s.cfg.Placement {
	case MultiAxl, Integrated:
		b.hopHostIn()
	case Standalone:
		b.hopCardIn()
	case PCIeIntegrated:
		b.hopSwitchIn()
	case BumpInTheWire:
		b.hopBumpIn()
	default:
		b.fail(fmt.Errorf("dmxsys: hop under %v", b.s.cfg.Placement))
	}
}

// hopHostIn: one interrupt and one descriptor for the whole batch, then
// the coalesced DMA accel → host.
func (b *batch) hopHostIn() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	bytes := b.n() * h.InBytes
	s.occupyPath(a, from, pcie.Root, bytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, from, pcie.Root, "", bytes)
		b.legBegin = s.Eng.Now()
		b.transfer(from, pcie.Root, bytes, b.hopHostArrived)
	})
}

func (b *batch) hopHostArrived() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeHostDMA, 0, a.accelDev[k], pcie.Root, b.n()*h.InBytes, b.legBegin)
	b.lap(phaseMovement)
	b.restructureHost(b.hopHostRestructured)
}

func (b *batch) hopHostRestructured() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	bytes := b.n() * h.OutBytes
	b.lap(phaseRestructure)
	s.occupyPath(a, pcie.Root, to, bytes)
	s.Eng.Schedule(DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, pcie.Root, to, "", bytes)
		b.legBegin = s.Eng.Now()
		b.transfer(pcie.Root, to, bytes, b.hopHostDone)
	})
}

func (b *batch) hopHostDone() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeHostDMA, 0, pcie.Root, a.accelDev[k+1], b.n()*h.OutBytes, b.legBegin)
	b.lap(phaseMovement)
	b.nextStage()
}

// hopCardIn: coalesced P2P DMA to the app's standalone DRX card.
func (b *batch) hopCardIn() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	bytes := b.n() * h.InBytes
	s.occupyPath(a, from, a.sdrxDev, bytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepRXDMA, from, a.sdrxDev, "", bytes)
		b.legBegin = s.Eng.Now()
		b.transfer(from, a.sdrxDev, bytes, b.hopCardArrived)
	})
}

func (b *batch) hopCardArrived() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeP2PDMA, obs.StepRXDMA, a.accelDev[k], a.sdrxDev, b.n()*h.InBytes, b.legBegin)
	b.lap(phaseMovement)
	b.restructureDRX(b.hopCardRestructured)
}

func (b *batch) hopCardRestructured() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	bytes := b.n() * h.OutBytes
	b.lap(phaseRestructure)
	s.occupyPath(a, a.sdrxDev, to, bytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, a.sdrxDev, to, "", bytes)
		b.legBegin = s.Eng.Now()
		b.transfer(a.sdrxDev, to, bytes, b.hopCardDone)
	})
}

func (b *batch) hopCardDone() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeP2PDMA, obs.StepP2PDMA, a.sdrxDev, a.accelDev[k+1], b.n()*h.OutBytes, b.legBegin)
	b.lap(phaseMovement)
	b.nextStage()
}

// hopSwitchIn: coalesced up-leg into the switch-integrated DRX.
func (b *batch) hopSwitchIn() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	drxTrack := "drx." + a.sw
	bytes := b.n() * h.InBytes
	if l, err := s.Fabric.UpLink(from); err == nil {
		a.occupy(l.Name, sim.BytesAt(bytes, l.Bandwidth))
	}
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepRXDMA, from, drxTrack, "", bytes)
		b.legBegin = s.Eng.Now()
		arrived := b.guard(b.hopSwitchArrived)
		b.fabricAttempt(from, drxTrack, 1, func() error {
			return s.Fabric.TransferUp(from, bytes, arrived)
		})
	})
}

func (b *batch) hopSwitchArrived() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeP2PDMA, obs.StepRXDMA, a.accelDev[k], "drx."+a.sw, b.n()*h.InBytes, b.legBegin)
	b.lap(phaseMovement)
	b.restructureDRX(b.hopSwitchRestructured)
}

func (b *batch) hopSwitchRestructured() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	bytes := b.n() * h.OutBytes
	b.lap(phaseRestructure)
	if l, err := s.Fabric.DownLink(to); err == nil {
		a.occupy(l.Name, sim.BytesAt(bytes, l.Bandwidth))
	}
	s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, "drx."+a.sw, to, "", bytes)
	b.legBegin = s.Eng.Now()
	done := b.guard(b.hopSwitchDone)
	b.fabricAttempt("drx."+a.sw, to, 1, func() error {
		return s.Fabric.TransferDown(to, bytes, done)
	})
}

func (b *batch) hopSwitchDone() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeP2PDMA, obs.StepP2PDMA, "drx."+a.sw, a.accelDev[k+1], b.n()*h.OutBytes, b.legBegin)
	b.lap(phaseMovement)
	b.nextStage()
}

// hopBumpIn: the Fig. 10 inline sequence at batch scale. The batch-size
// cap (appInstance.maxBatch, computed at build) guarantees the scaled
// payload fits the inline DRX data queues, so queueAdmit can always
// eventually succeed.
func (b *batch) hopBumpIn() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	rx, tx, err := s.hopQueues(a, k)
	if err != nil {
		b.fail(fmt.Errorf("dmxsys: %w", err))
		return
	}
	b.rx, b.tx = rx, tx
	from := a.accelDev[k]
	drxTrack := "drx." + from
	link := pcie.LinkConfig{Gen: s.cfg.Gen, Lanes: s.cfg.AccelLanes}
	inBytes := b.n() * h.InBytes
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.queueAdmit(b.rx, inBytes, func() {
			b.rxHeld = inBytes
			s.obsInstant(a, obs.TypeQueueDMA, obs.StepRXDMA, from, drxTrack, "", inBytes)
			b.legBegin = s.Eng.Now()
			s.localBytes += inBytes
			s.Eng.Schedule(sim.BytesAt(inBytes, link.Bandwidth()), b.guard(b.hopBumpAtDRX))
		})
	})
}

func (b *batch) hopBumpAtDRX() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeQueueDMA, obs.StepRXDMA, a.accelDev[k], "drx."+a.accelDev[k], b.n()*h.InBytes, b.legBegin)
	b.lap(phaseMovement)
	b.restructureDRX(b.hopBumpRestructured)
}

func (b *batch) hopBumpRestructured() {
	h := b.a.pipe.Hops[b.k]
	b.s.queueAdmit(b.tx, b.n()*h.OutBytes, b.guard(b.hopBumpTXAdmitted))
}

func (b *batch) hopBumpTXAdmitted() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	to := a.accelDev[k+1]
	outBytes := b.n() * h.OutBytes
	b.txHeld = outBytes
	if b.rx != nil && b.rxHeld > 0 {
		// Release whatever RX share the batch still holds (peeled
		// members took their per-request share with them).
		if err := b.rx.Dequeue(b.rxHeld); err != nil {
			b.fail(fmt.Errorf("dmxsys: %w", err))
			return
		}
		b.rxHeld = 0
	}
	b.lap(phaseRestructure)
	s.occupyPath(a, from, to, outBytes)
	s.obsInstant(a, obs.TypeTXReady, obs.StepTXReady, "drx."+from, "", "", outBytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, from, to, "", outBytes)
		b.legBegin = s.Eng.Now()
		b.transfer(from, to, outBytes, b.hopBumpDone)
	})
}

func (b *batch) hopBumpDone() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	to := a.accelDev[k+1]
	if b.tx != nil && b.txHeld > 0 {
		if err := b.tx.Dequeue(b.txHeld); err != nil {
			b.fail(fmt.Errorf("dmxsys: %w", err))
			return
		}
		b.txHeld = 0
	}
	b.obsDMA(obs.TypeP2PDMA, obs.StepP2PDMA, from, to, b.n()*h.OutBytes, b.legBegin)
	b.lap(phaseMovement)
	b.nextStage()
}

// restructureHost dispatches hop k's restructuring at the host for the
// whole batch: CPU work and traffic scale with the member count
// (restructuring streams the payload; nothing amortizes).
func (b *batch) restructureHost(done func()) {
	s, a, k := b.s, b.a, b.k
	if s.cfg.Placement == Integrated {
		b.restructureDRX(done)
		return
	}
	h := a.pipe.Hops[k]
	s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, b.n()*h.InBytes)
	ops, bytes := s.restructureWork(h.Kernel)
	ops *= b.n()
	bytes *= b.n()
	s.occupyCPU(a, ops, bytes)
	s.cpuJob(ops, bytes, done)
}

// restructureDRX queues hop k's kernel on the DRX once for the whole
// batch, at n× the per-request service (DRX execution streams data; a
// batch buys one dispatch, not faster restructuring). Fault handling is
// where batching meets the PR 5 recovery ladder:
//
//   - a unit inside an outage window degrades the whole batch (the
//     incident is device-level; every member's payload is on it);
//   - a transient restructure error is rolled per member, in arrival
//     order: faulted members peel out and retry alone on the solo
//     ladder, clean members continue in the (smaller) batch;
//   - the stage watchdog degrades the whole batch, like the outage.
func (b *batch) restructureDRX(done func()) {
	b.attempt = 1
	s, a, k := b.s, b.a, b.k
	kern := a.pipe.Hops[k].Kernel
	unit := a.drxServer[k].Name()
	if s.hazardous {
		if down, _ := s.inj.DRXDown(unit, s.Eng.Now()); down {
			b.degrade()
			return
		}
	}
	s.obsInstant(a, obs.TypeRestructure, obs.StepRestructure,
		unit, "", kern.Name, b.n()*a.pipe.Hops[k].InBytes)
	d, err := s.drxServiceTime(kern)
	if err != nil {
		b.fail(fmt.Errorf("dmxsys: %w", err))
		return
	}
	d *= sim.Duration(b.n())
	a.occupyServer(a.drxServer[k], d)
	b.arm(unit, b.degrade)
	a.drxServer[k].SubmitKeyed(a.id, b.hopKey(), d, b.guard(func() {
		b.disarm()
		if s.hazardous {
			b.peelTransients(unit)
			if len(b.members) == 0 {
				// Every member faulted and peeled; the batch is empty
				// and retires without walking further.
				b.release()
				return
			}
		}
		done()
	}))
}

// peelTransients rolls the unit's transient-fault odds once per member,
// in arrival order, and peels the failures out of the batch.
func (b *batch) peelTransients(unit string) {
	ms := b.members
	kept := ms[:0]
	for _, m := range ms {
		if b.s.inj.TransientFault(unit) {
			b.peel(m)
			continue
		}
		kept = append(kept, m)
	}
	b.members = kept
	for i := len(kept); i < len(ms); i++ {
		ms[i] = nil
	}
}

// peel detaches one member whose restructure rolled a transient fault:
// it resumes alone on the solo retry ladder at the current hop (the
// batch dispatch counts as its first attempt), taking its per-request
// RX-queue share with it under bump-in-the-wire, and its batchmates
// are untouched.
func (b *batch) peel(m *request) {
	s, a, k := b.s, b.a, b.k
	m.k = k
	m.mark = s.Eng.Now()
	m.attempt = 1
	if b.rx != nil {
		h := a.pipe.Hops[k]
		m.rx, m.tx = b.rx, b.tx
		m.rxHeld = h.InBytes
		b.rxHeld -= h.InBytes
	}
	m.retryRestructure(m.restructureContinuation())
}

// degrade reroutes the whole batch's hop to CPU-mediated restructuring
// after its DRX path proved unavailable (outage window, watchdog, or a
// peel ladder exhausting below — the CPU fallback itself mirrors
// request.degradeHop at n× payload).
func (b *batch) degrade() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	for _, m := range b.members {
		if m.outcome == traffic.OutcomeClean {
			m.outcome = traffic.OutcomeDegraded
		}
	}
	b.releaseQueues()
	s.obsInstant(a, obs.TypeDegrade, 0, b.track, "", a.drxServer[k].Name(), b.n()*h.InBytes)
	b.lap(phaseRestructure)
	if s.cfg.Placement == Integrated {
		ops, bytes := s.restructureWork(h.Kernel)
		ops *= b.n()
		bytes *= b.n()
		s.occupyCPU(a, ops, bytes)
		s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, b.n()*h.InBytes)
		s.cpuJob(ops, bytes, b.guard(b.hopHostRestructured))
		return
	}
	from := a.accelDev[k]
	inBytes := b.n() * h.InBytes
	s.occupyPath(a, from, pcie.Root, inBytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, b.guard(func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, from, pcie.Root, "", inBytes)
		b.legBegin = s.Eng.Now()
		b.transfer(from, pcie.Root, inBytes, b.degradeAtHost)
	}))
}

func (b *batch) degradeAtHost() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeHostDMA, 0, a.accelDev[k], pcie.Root, b.n()*h.InBytes, b.legBegin)
	b.lap(phaseMovement)
	ops, bytes := s.restructureWork(h.Kernel)
	ops *= b.n()
	bytes *= b.n()
	s.occupyCPU(a, ops, bytes)
	s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, b.n()*h.InBytes)
	s.cpuJob(ops, bytes, b.guard(b.degradeRestructured))
}

func (b *batch) degradeRestructured() {
	s, a, k := b.s, b.a, b.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	outBytes := b.n() * h.OutBytes
	b.lap(phaseRestructure)
	s.occupyPath(a, pcie.Root, to, outBytes)
	s.Eng.Schedule(DMASetupLatency, b.guard(func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, pcie.Root, to, "", outBytes)
		b.legBegin = s.Eng.Now()
		b.transfer(pcie.Root, to, outBytes, b.degradeDone)
	}))
}

func (b *batch) degradeDone() {
	a, k := b.a, b.k
	h := a.pipe.Hops[k]
	b.obsDMA(obs.TypeHostDMA, 0, pcie.Root, a.accelDev[k+1], b.n()*h.OutBytes, b.legBegin)
	b.lap(phaseMovement)
	b.nextStage()
}
