package dmxsys

import (
	"fmt"
	"testing"

	"dmx/internal/sweep"
	"dmx/internal/traffic"
)

func TestRunLoadRejectsInvalidSpec(t *testing.T) {
	s, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunLoad(traffic.Spec{Arrival: traffic.OpenLoop, Requests: 1, Rate: 100}); err == nil {
		t.Fatal("RunLoad accepted a 1-request spec")
	}
}

// loadReportFor builds a fresh system and runs one Poisson load, so the
// determinism test can replay the identical work under different sweep
// pool widths.
func loadReportFor(seed uint64) (string, error) {
	s, err := New(DefaultConfig(BumpInTheWire), pipelines(2))
	if err != nil {
		return "", err
	}
	rep, err := s.RunLoad(traffic.Spec{
		Arrival:  traffic.Poisson,
		Rate:     2000,
		Requests: 12,
		Seed:     seed,
	})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// TestRunLoadDeterministicAcrossWorkers is the serving determinism
// contract: the same seed and spec must produce a byte-identical
// LoadReport whether the sweep harness runs sequentially (-j 1) or on
// eight workers.
func TestRunLoadDeterministicAcrossWorkers(t *testing.T) {
	seeds := []uint64{1, 2, 3, 7}
	runAll := func(workers int) []string {
		prev := sweep.SetWorkers(workers)
		defer sweep.SetWorkers(prev)
		out, err := sweep.Map(seeds, func(_ int, seed uint64) (string, error) {
			return loadReportFor(seed)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := runAll(1)
	par := runAll(8)
	for i := range seeds {
		if seq[i] != par[i] {
			t.Errorf("seed %d: report differs between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s",
				seeds[i], seq[i], par[i])
		}
	}
	// Different seeds must actually change the Poisson timeline, or the
	// comparison above proves nothing.
	if seq[0] == seq[1] {
		t.Error("different seeds produced identical reports")
	}
}

// TestRunLoadSaturationMatchesCapacity drives one app far past its
// capacity and checks that the achieved completion rate plateaus at the
// AppReport.Throughput bound (the inverse of the measured bottleneck
// occupancy). Bump-in-the-wire keeps restructuring off the shared host,
// so the bound is tight there.
func TestRunLoadSaturationMatchesCapacity(t *testing.T) {
	probe, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := probe.Run()
	if err != nil {
		t.Fatal(err)
	}
	ar := rep.Apps[0]
	if ar.Bottleneck <= 0 {
		t.Fatalf("run recorded no bottleneck occupancy (resource %q)", ar.BottleneckResource)
	}
	capacity := ar.Throughput(len(pipelines(1)[0].Stages))

	sys, err := New(DefaultConfig(BumpInTheWire), pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	lr, err := sys.RunLoad(traffic.Spec{
		Arrival:  traffic.OpenLoop,
		Rate:     3 * capacity,
		Requests: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	al := lr.PerApp[0]
	if al.Completed != 64 {
		t.Fatalf("%d/64 requests completed", al.Completed)
	}
	if rel := (al.Achieved - capacity) / capacity; rel > 0.01 || rel < -0.01 {
		t.Errorf("achieved %.4g req/s vs capacity bound %.4g req/s (%.2f%% off, bottleneck %s)",
			al.Achieved, capacity, 100*rel, ar.BottleneckResource)
	}
	// Overload must show up as queueing: the tail has to sit well above
	// the mean of an unloaded run.
	if al.P99 <= al.Mean {
		t.Errorf("p99 %v not above mean %v under 3x overload", al.P99, al.Mean)
	}
}

// TestPrioritySchedulingCutsTailLatency puts four apps behind one shared
// integrated DRX at 2x its capacity and checks that priority scheduling
// moves the favored app's tail latency below its FIFO tail. The DRX is
// deliberately slowed (1 GB/s DRAM) so the shared station — where the
// discipline acts — is the bottleneck rather than the fabric.
func TestPrioritySchedulingCutsTailLatency(t *testing.T) {
	const napps = 4
	slowCfg := func(sched SchedPolicy) Config {
		cfg := DefaultConfig(Integrated)
		cfg.DRX.DRAMBytesPerSec = 1e9
		cfg.Sched = sched
		cfg.AppPriority = []int{0, 1, 1, 1}
		return cfg
	}

	probe, err := New(slowCfg(SchedFIFO), pipelines(napps))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := probe.Run()
	if err != nil {
		t.Fatal(err)
	}
	ar := rep.Apps[0]
	if ar.BottleneckResource != "drx.integrated" {
		t.Fatalf("contention test wants the shared DRX as bottleneck, got %q", ar.BottleneckResource)
	}
	// Half of one app's solo capacity, offered by four apps at once: the
	// shared DRX sees 2x its service rate and builds a backlog.
	rate := 0.5 * ar.Throughput(len(pipelines(1)[0].Stages))

	p99 := func(sched SchedPolicy) traffic.AppLoad {
		sys, err := New(slowCfg(sched), pipelines(napps))
		if err != nil {
			t.Fatal(err)
		}
		lr, err := sys.RunLoad(traffic.Spec{
			Arrival:  traffic.Poisson,
			Rate:     rate,
			Requests: 24,
			Seed:     11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return lr.PerApp[0]
	}
	fifo := p99(SchedFIFO)
	prio := p99(SchedPriority)
	if prio.P99 >= fifo.P99 {
		t.Errorf("priority p99 %v not below FIFO p99 %v at %s2x shared-DRX overload",
			prio.P99, fifo.P99, fmt.Sprintf("%.0f req/s/app = ", rate))
	}
	if prio.Mean >= fifo.Mean {
		t.Errorf("priority mean %v not below FIFO mean %v", prio.Mean, fifo.Mean)
	}
}
