// Package dmxsys integrates the DMX system model: it assembles the PCIe
// topology for each DRX placement, runs chained-accelerator applications
// through a discrete-event simulation of kernels, data restructuring,
// drivers, and DMA, and reports the latency/throughput/energy metrics
// the paper's evaluation section is built from.
//
// The five system configurations correspond to the paper's:
//
//   - AllCPU: every kernel and every restructuring step on the host
//     (Fig. 3's All-CPU bar);
//   - MultiAxl: kernels on accelerators, restructuring on the host CPU
//     with CPU-mediated DMA (the baseline everywhere);
//   - Integrated / Standalone / PCIeIntegrated / BumpInTheWire: the four
//     DRX placements of Sec. III (Fig. 4).
//
// Every run can be observed through internal/obs: set Config.Obs and the
// flow emits the Fig. 10 protocol sequence as typed instants (with step
// ids ①–⑪), per-request phase-attribution spans (kernel / restructure /
// movement, the Fig. 12 components), DMA spans with flow arrows between
// device tracks, and — via the sim layer — device service spans and link
// occupancy counters. Config.Trace, the human-readable event log, is a
// text rendering of the same stream; RunReport.Metrics is its aggregate.
//
// The serving layer turns one-shot runs into request streams: RunLoad
// drives a traffic.Spec arrival process through per-request state
// machines (flow.go) and reports per-app rates, latency quantiles, and
// outcome counters. In front of the state machine sits an optional
// continuous-batching accumulator (batch.go): arrivals of an app inside
// Config.BatchWindow coalesce and walk the pipeline as one batch — one
// kernel launch, one driver round trip, and one DMA descriptor per
// transfer leg — then split back out per request for latency and
// deadline accounting. Contended stations order their backlogs by
// Config.Sched (FIFO, priority, weighted fair, earliest-deadline-first,
// shortest-remaining-service), and Config.AdmitLimit sheds arrivals
// past a per-app outstanding cap as rejections. Batching off
// (BatchWindow 0) is byte-identical to the unbatched path; batched
// members under fault injection retry and degrade individually.
package dmxsys
