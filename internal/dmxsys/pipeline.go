package dmxsys

import (
	"fmt"

	"dmx/internal/accel"
	"dmx/internal/restructure"
)

// Stage is one application kernel in a chained pipeline.
type Stage struct {
	// Accel is the kernel's accelerator (performance + functional model).
	Accel *accel.Spec
	// InBytes is the batch payload entering this kernel, which drives
	// the accelerator latency model.
	InBytes int64
}

// Hop is the data motion between two consecutive stages.
type Hop struct {
	// Kernel is the restructuring program chaining the two kernels.
	Kernel *restructure.Kernel
	// InBytes is the wire payload from the upstream accelerator to the
	// restructuring site; OutBytes is the restructured payload forwarded
	// to the downstream accelerator.
	InBytes  int64
	OutBytes int64
}

// Pipeline is one end-to-end application: N kernels chained by N-1
// restructuring hops (Table I's rows are two-kernel pipelines; the
// Fig. 16 extension has three).
type Pipeline struct {
	Name   string
	Stages []Stage
	Hops   []Hop
	// InputBytes is the request payload shipped from the host to the
	// first accelerator; OutputBytes returns the final result.
	InputBytes  int64
	OutputBytes int64
}

// Validate checks structural consistency.
func (p *Pipeline) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("dmxsys: pipeline without a name")
	}
	if len(p.Stages) < 1 {
		return fmt.Errorf("dmxsys: %s: no stages", p.Name)
	}
	if len(p.Hops) != len(p.Stages)-1 {
		return fmt.Errorf("dmxsys: %s: %d hops for %d stages", p.Name, len(p.Hops), len(p.Stages))
	}
	for i, st := range p.Stages {
		if st.Accel == nil {
			return fmt.Errorf("dmxsys: %s: stage %d has no accelerator", p.Name, i)
		}
		if st.InBytes <= 0 {
			return fmt.Errorf("dmxsys: %s: stage %d InBytes %d", p.Name, i, st.InBytes)
		}
	}
	for i, h := range p.Hops {
		if h.Kernel == nil {
			return fmt.Errorf("dmxsys: %s: hop %d has no restructuring kernel", p.Name, i)
		}
		if err := h.Kernel.Validate(); err != nil {
			return fmt.Errorf("dmxsys: %s: hop %d: %w", p.Name, i, err)
		}
		if h.InBytes <= 0 || h.OutBytes <= 0 {
			return fmt.Errorf("dmxsys: %s: hop %d byte counts %d/%d", p.Name, i, h.InBytes, h.OutBytes)
		}
	}
	if p.InputBytes <= 0 {
		return fmt.Errorf("dmxsys: %s: InputBytes %d", p.Name, p.InputBytes)
	}
	if p.OutputBytes <= 0 {
		return fmt.Errorf("dmxsys: %s: OutputBytes %d", p.Name, p.OutputBytes)
	}
	return nil
}
