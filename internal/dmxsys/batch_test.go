package dmxsys_test

// Continuous batching, SLO scheduling, and admission control. The
// acceptance gates: window=0 is byte-identical to the unbatched serving
// path; batched runs are byte-identical at any sweep worker count; the
// batch accumulator adds no steady-state allocations over the solo
// path; a member's transient fault peels it out of the batch without
// poisoning batchmates; EDF beats FIFO on deadline-miss rate; and
// admission control bounds backlog growth past the capacity bound.

import (
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// batchedLoad builds a fresh system with the given mutations applied to
// a bump-in-the-wire config and runs one Poisson load.
func batchedLoad(t *testing.T, mut func(*dmxsys.Config), spec traffic.Spec) traffic.LoadReport {
	t.Helper()
	b := faultBench(t)
	cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	if mut != nil {
		mut(&cfg)
	}
	s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{b.Pipeline, b.Pipeline})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLoad(spec)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func poissonSpec(seed uint64) traffic.Spec {
	return traffic.Spec{Arrival: traffic.Poisson, Rate: 20000, Requests: 48, Seed: seed}
}

// TestBatchWindowZeroByteIdenticalToUnbatched pins the window=0 escape
// hatch: a config that names BatchWindow: 0 explicitly must take the
// historical per-request path bit-for-bit (the golden stream test pins
// those bytes; this test pins that zero-window routing reaches them).
func TestBatchWindowZeroByteIdenticalToUnbatched(t *testing.T) {
	base := batchedLoad(t, nil, poissonSpec(5)).String()
	zero := batchedLoad(t, func(c *dmxsys.Config) { c.BatchWindow = 0; c.BatchMax = 0 }, poissonSpec(5)).String()
	if base != zero {
		t.Fatalf("window=0 diverged from the unbatched path:\n%s\nwant:\n%s", zero, base)
	}
}

// TestBatchedLoadCompletesEveryPlacement walks the batched machine over
// every DRX placement and checks per-request completion accounting.
func TestBatchedLoadCompletesEveryPlacement(t *testing.T) {
	b := faultBench(t)
	for _, p := range []dmxsys.Placement{
		dmxsys.MultiAxl, dmxsys.Integrated, dmxsys.Standalone,
		dmxsys.PCIeIntegrated, dmxsys.BumpInTheWire,
	} {
		cfg := dmxsys.DefaultConfig(p)
		cfg.BatchWindow = 200 * sim.Microsecond
		s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{b.Pipeline, b.Pipeline})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.RunLoad(traffic.Spec{Arrival: traffic.OpenLoop, Rate: 50000, Requests: 32})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for _, al := range rep.PerApp {
			if al.Completed != al.Requests {
				t.Errorf("%v %s: %d/%d completed", p, al.App, al.Completed, al.Requests)
			}
			if al.Batches == 0 || al.BatchedRequests == 0 {
				t.Errorf("%v %s: no batches formed under a 200us window at 50k req/s", p, al.App)
			}
			if al.BatchedRequests > al.Requests {
				t.Errorf("%v %s: %d batched members exceed %d issued",
					p, al.App, al.BatchedRequests, al.Requests)
			}
		}
	}
}

// batchedLoadReportFor replays one fully-loaded serving configuration —
// batching window, EDF with per-app deadlines, admission control — so
// the determinism test can compare across worker counts.
func batchedLoadReportFor(seed uint64) (string, error) {
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		return "", err
	}
	cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	cfg.BatchWindow = 150 * sim.Microsecond
	cfg.BatchMax = 8
	cfg.Sched = dmxsys.SchedEDF
	cfg.AdmitLimit = 24
	s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{benches[0].Pipeline, benches[1].Pipeline})
	if err != nil {
		return "", err
	}
	rep, err := s.RunLoad(traffic.Spec{
		Arrival:      traffic.Poisson,
		Rate:         30000,
		Requests:     40,
		Seed:         seed,
		Deadline:     2 * sim.Millisecond,
		AppDeadlines: []sim.Duration{500 * sim.Microsecond},
	})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// TestBatchedRunLoadDeterministicAcrossWorkers extends the serving
// determinism contract to the batched path: the same seed and spec must
// produce a byte-identical LoadReport at any sweep pool width.
func TestBatchedRunLoadDeterministicAcrossWorkers(t *testing.T) {
	seeds := []uint64{1, 2, 3, 7}
	runAll := func(workers int) []string {
		prev := sweep.SetWorkers(workers)
		defer sweep.SetWorkers(prev)
		out, err := sweep.Map(seeds, func(_ int, seed uint64) (string, error) {
			return batchedLoadReportFor(seed)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := runAll(1)
	par := runAll(8)
	for i := range seeds {
		if seq[i] != par[i] {
			t.Errorf("seed %d: batched report differs between -j 1 and -j 8:\n-j1:\n%s\n-j8:\n%s",
				seeds[i], seq[i], par[i])
		}
	}
	if seq[0] == seq[1] {
		t.Error("different seeds produced identical batched reports")
	}
}

// TestBatchMemberTransientPeelsAlone is the fault-isolation contract:
// when one member of a batch rolls a transient restructure fault, that
// member alone retries/degrades on the solo ladder while its batchmates
// complete clean. A closed-loop burst under one wide window forms the
// batch; MaxAttempts=1 turns each peeled member's retry straight into
// CPU degradation, making the split observable in the outcome counts.
func TestBatchMemberTransientPeelsAlone(t *testing.T) {
	b := faultBench(t)
	cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	cfg.BatchWindow = 500 * sim.Microsecond
	cfg.Faults = &faults.Plan{Seed: 9, TransientProb: 0.2}
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 1}
	s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{b.Pipeline})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLoad(traffic.Spec{Arrival: traffic.ClosedLoop, Requests: 16})
	if err != nil {
		t.Fatal(err)
	}
	al := rep.PerApp[0]
	if al.Batches == 0 {
		t.Fatal("burst formed no batch under a 500us window")
	}
	if al.Completed != al.Requests || al.Abandoned != 0 {
		t.Fatalf("%d/%d completed, %d abandoned; transients must degrade, never lose requests",
			al.Completed, al.Requests, al.Abandoned)
	}
	if al.Degraded == 0 {
		t.Fatal("no member degraded under a 20% transient fault rate (seed too lucky: pick another)")
	}
	if al.Degraded == al.Requests {
		t.Fatal("every member degraded: a single transient poisoned the whole batch")
	}
	if al.CleanLat.Count == 0 {
		t.Error("clean batchmates missing from the clean latency histogram")
	}
}

// TestBatchShellRecyclingStaysLive is the regression test for two
// recycling bugs in the batch pool. First, a shell returned to the pool
// is marked dead so stale completions from its old life drop — but
// newBatch must revive it, or every completion guard of a batch built
// on a recycled shell is silently discarded and the run deadlocks.
// Second, the epoch must stay monotone across lives: if release reset
// it to zero, a guarded closure captured in a previous life (a stale
// kernel job still queued in a server) could match the fresh shell's
// epoch and corrupt the new batch (ABA). A retry policy alone makes the
// system hazardous — guard() is live without any injected fault — and
// an open-loop burst under a 200us window closes several batches per
// app, so shells recycle.
func TestBatchShellRecyclingStaysLive(t *testing.T) {
	rep := batchedLoad(t, func(c *dmxsys.Config) {
		c.BatchWindow = 200 * sim.Microsecond
		c.Retry = faults.RetryPolicy{MaxAttempts: 3, Backoff: 10 * sim.Microsecond}
	}, traffic.Spec{Arrival: traffic.OpenLoop, Rate: 50000, Requests: 32})
	for _, al := range rep.PerApp {
		if al.Batches < 2 {
			t.Fatalf("%s: only %d batch formed; the repro needs recycled shells",
				al.App, al.Batches)
		}
		if al.Completed != al.Requests {
			t.Fatalf("%s: %d/%d completed; a recycled batch shell dropped completions",
				al.App, al.Completed, al.Requests)
		}
	}
}

// TestEDFBeatsFIFOOnMissRate pins the SLO win. Disciplines only
// reorder work where a station is actually shared and backlogged, so
// the scenario is built for contention: the integrated placement (one
// DRX serving every app), four apps hammering it, the DRX narrowed to
// 2 RE lanes so restructuring — not the per-app accelerators — is the
// bottleneck, and one app holding a deadline an order of magnitude
// tighter than the rest. Under arrival order the tight app's requests
// wait behind the loose apps' backlog and blow their budget;
// earliest-deadline-first must strictly reduce total misses.
func TestEDFBeatsFIFOOnMissRate(t *testing.T) {
	bench := faultBench(t)
	missed := func(sched dmxsys.SchedPolicy) int {
		cfg := dmxsys.DefaultConfig(dmxsys.Integrated)
		cfg.Sched = sched
		cfg.DRX = cfg.DRX.WithLanes(2)
		pipes := make([]*dmxsys.Pipeline, 4)
		for i := range pipes {
			pipes[i] = bench.Pipeline
		}
		s, err := dmxsys.New(cfg, pipes)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.RunLoad(traffic.Spec{
			Arrival:      traffic.Poisson,
			Rate:         100000,
			Requests:     64,
			Seed:         11,
			Deadline:     500 * sim.Millisecond,
			AppDeadlines: []sim.Duration{sim.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, al := range rep.PerApp {
			total += al.Missed
		}
		return total
	}
	fifo := missed(dmxsys.SchedFIFO)
	edf := missed(dmxsys.SchedEDF)
	if fifo == 0 {
		t.Fatal("FIFO missed nothing: the load is too light to differentiate disciplines")
	}
	if edf >= fifo {
		t.Fatalf("EDF missed %d deadlines, FIFO %d; EDF must strictly win", edf, fifo)
	}
}

// TestSRSCompletesAndReordersByRemainingService sanity-checks the
// second SLO discipline end to end: shortest-remaining-service keeps
// the serving contract (everything completes, reports stay
// deterministic) while ordering by the per-stage occupancy model.
func TestSRSCompletesAndReordersByRemainingService(t *testing.T) {
	rep := batchedLoad(t, func(c *dmxsys.Config) { c.Sched = dmxsys.SchedSRS }, poissonSpec(3))
	for _, al := range rep.PerApp {
		if al.Completed != al.Requests {
			t.Fatalf("%s: %d/%d completed under SRS", al.App, al.Completed, al.Requests)
		}
	}
	again := batchedLoad(t, func(c *dmxsys.Config) { c.Sched = dmxsys.SchedSRS }, poissonSpec(3))
	if rep.String() != again.String() {
		t.Fatal("SRS runs are not deterministic")
	}
}

// TestAdmissionControlCapsBacklog drives an app at several times its
// capacity and checks that AdmitLimit holds the line: arrivals beyond
// the outstanding cap are rejected (counted, never executed), nothing
// is lost silently, and the worst-case latency stays strictly below the
// uncontrolled run's (bounded backlog instead of unbounded queueing).
func TestAdmissionControlCapsBacklog(t *testing.T) {
	spec := traffic.Spec{Arrival: traffic.OpenLoop, Rate: 60000, Requests: 64}
	open := batchedLoad(t, nil, spec)
	capped := batchedLoad(t, func(c *dmxsys.Config) { c.AdmitLimit = 8 }, spec)
	for i, al := range capped.PerApp {
		if al.Rejected == 0 {
			t.Fatalf("%s: no rejections at several times capacity with AdmitLimit=8", al.App)
		}
		if al.Completed+al.Rejected != al.Requests {
			t.Fatalf("%s: %d completed + %d rejected != %d issued",
				al.App, al.Completed, al.Rejected, al.Requests)
		}
		if al.Max >= open.PerApp[i].Max {
			t.Errorf("%s: admission-controlled max latency %v is no better than uncontrolled %v",
				al.App, al.Max, open.PerApp[i].Max)
		}
	}
}

// TestBatchAccumulatorSteadyStateAllocs pins the accumulator's
// allocation behavior: a batched load may not allocate more than the
// unbatched serving path plus a small one-time budget (the first
// window's pending slice and the first batch shells; both recycle).
func TestBatchAccumulatorSteadyStateAllocs(t *testing.T) {
	b := faultBench(t)
	spec := traffic.Spec{Arrival: traffic.OpenLoop, Rate: 50000, Requests: 64}
	measure := func(window sim.Duration) float64 {
		return testing.AllocsPerRun(3, func() {
			cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
			cfg.BatchWindow = window
			s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{b.Pipeline})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.RunLoad(spec); err != nil {
				t.Fatal(err)
			}
		})
	}
	unbatched := measure(0)
	batched := measure(200 * sim.Microsecond)
	// The batched walk amortizes per-request step closures across
	// members, so steady state must come out at or below the solo path
	// plus the one-time accumulator budget.
	if slack := unbatched*0.05 + 32; batched > unbatched+slack {
		t.Errorf("batched run allocates %.0f objects, unbatched %.0f (+%.0f allowed)",
			batched, unbatched, slack)
	}
}
