package dmxsys_test

// Fault-injection behavior and determinism. The acceptance gates:
// a fixed fault seed produces byte-identical LoadReports across repeated
// runs and across sweep worker counts; requests complete (degraded, not
// failed) under DRX outages; and a disabled fault plan leaves the
// serving output byte-identical to a build with no plan at all.

import (
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// faultBench returns one chained benchmark for serving tests.
func faultBench(t *testing.T) *workload.Benchmark {
	t.Helper()
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		if len(b.Pipeline.Hops) > 0 {
			return b
		}
	}
	t.Fatal("no chained benchmark in suite")
	return nil
}

// stressPlan injects every fault mechanism at rates high enough that a
// short load run observes incidents.
func stressPlan(seed uint64) *faults.Plan {
	return &faults.Plan{
		Seed:              seed,
		DRXMTBF:           2 * sim.Millisecond,
		DRXRepair:         500 * sim.Microsecond,
		TransientProb:     0.05,
		LinkMTBF:          5 * sim.Millisecond,
		LinkRepair:        200 * sim.Microsecond,
		LinkDegradeFactor: 0.25,
		StallMTBF:         5 * sim.Millisecond,
		StallRepair:       200 * sim.Microsecond,
	}
}

func faultLoad(t *testing.T, p dmxsys.Placement, plan *faults.Plan, retry faults.RetryPolicy) traffic.LoadReport {
	t.Helper()
	b := faultBench(t)
	cfg := dmxsys.DefaultConfig(p)
	cfg.Faults = plan
	cfg.Retry = retry
	s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{b.Pipeline})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLoad(traffic.Spec{
		Arrival:  traffic.Poisson,
		Rate:     4000,
		Requests: 60,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFaultedLoadCompletesEveryPlacement(t *testing.T) {
	for _, p := range []dmxsys.Placement{
		dmxsys.Integrated, dmxsys.Standalone, dmxsys.PCIeIntegrated, dmxsys.BumpInTheWire,
	} {
		rep := faultLoad(t, p, stressPlan(11), faults.DefaultRetry())
		al := rep.PerApp[0]
		if al.Completed+al.Abandoned != al.Requests {
			t.Errorf("%v: %d completed + %d abandoned != %d issued",
				p, al.Completed, al.Abandoned, al.Requests)
		}
		if al.Completed == 0 {
			t.Errorf("%v: nothing completed under faults", p)
		}
	}
}

func TestDRXOutagesDegradeInsteadOfFailing(t *testing.T) {
	// Outage-only plan with a long repair window: hops that land in a
	// window must fall back to CPU restructuring and still complete.
	plan := &faults.Plan{Seed: 3, DRXMTBF: sim.Millisecond, DRXRepair: 2 * sim.Millisecond}
	rep := faultLoad(t, dmxsys.BumpInTheWire, plan, faults.DefaultRetry())
	al := rep.PerApp[0]
	if al.Degraded == 0 {
		t.Fatalf("no degraded completions under a %v/%v DRX outage plan", plan.DRXMTBF, plan.DRXRepair)
	}
	if al.Completed != al.Requests {
		t.Errorf("%d/%d completed; DRX outages alone must never lose requests",
			al.Completed, al.Requests)
	}
	if al.DegradedLat.Count != int64(al.Degraded) {
		t.Errorf("degraded histogram holds %d samples, %d degraded completions",
			al.DegradedLat.Count, al.Degraded)
	}
	if al.Degraded < al.Requests && al.CleanLat.Count == 0 {
		t.Error("clean completions missing from the clean histogram")
	}
}

func TestFaultSeedDeterminism(t *testing.T) {
	want := faultLoad(t, dmxsys.BumpInTheWire, stressPlan(42), faults.DefaultRetry()).String()
	for i := 0; i < 2; i++ {
		if got := faultLoad(t, dmxsys.BumpInTheWire, stressPlan(42), faults.DefaultRetry()).String(); got != want {
			t.Fatalf("run %d diverged:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

func TestFaultDeterminismAcrossSweepWorkers(t *testing.T) {
	// The same faulted cells must render byte-identical reports no
	// matter how many sweep workers execute them: each system owns its
	// engine and injector, and all randomness is seeded per station.
	run := func(workers int) []string {
		prev := sweep.SetWorkers(workers)
		defer sweep.SetWorkers(prev)
		seeds := []uint64{1, 2, 3, 4}
		out, err := sweep.Map(seeds, func(i int, seed uint64) (string, error) {
			return faultLoad(t, dmxsys.BumpInTheWire, stressPlan(seed), faults.DefaultRetry()).String(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("cell %d: -j1 and -j4 reports differ:\n%s\nvs:\n%s", i, serial[i], parallel[i])
		}
	}
}

func TestDisabledFaultsAreByteIdentical(t *testing.T) {
	// nil plan, a zero (disabled) plan, and a retry policy with nothing
	// to retry must all produce the exact bytes of the historical
	// fault-free serving path.
	base := faultLoad(t, dmxsys.BumpInTheWire, nil, faults.RetryPolicy{})
	zero := faultLoad(t, dmxsys.BumpInTheWire, &faults.Plan{}, faults.RetryPolicy{})
	retryOnly := faultLoad(t, dmxsys.BumpInTheWire, nil, faults.DefaultRetry())
	watchdogOnly := faultLoad(t, dmxsys.BumpInTheWire, nil, faults.RetryPolicy{StageDeadline: sim.FromSeconds(1)})
	if zero.String() != base.String() {
		t.Errorf("disabled plan changed the report:\n%s\nvs:\n%s", zero, base)
	}
	if retryOnly.String() != base.String() {
		t.Errorf("idle retry policy changed the report:\n%s\nvs:\n%s", retryOnly, base)
	}
	if watchdogOnly.String() != base.String() {
		t.Errorf("never-firing watchdog changed the report:\n%s\nvs:\n%s", watchdogOnly, base)
	}
	if base.PerApp[0].Degraded != 0 || base.PerApp[0].Retries != 0 {
		t.Error("fault accounting nonzero on a fault-free run")
	}
}

func TestStageWatchdogAbandonsStalledRequests(t *testing.T) {
	// A stage deadline far below the kernel service time times every
	// kernel out; with the retry budget exhausted the request must be
	// abandoned — and still retire, so the run drains.
	b := faultBench(t)
	cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	cfg.Retry = faults.RetryPolicy{
		MaxAttempts:   2,
		Backoff:       sim.Microsecond,
		StageDeadline: sim.Nanosecond,
	}
	s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{b.Pipeline})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLoad(traffic.Spec{Arrival: traffic.OpenLoop, Rate: 1000, Requests: 5})
	if err != nil {
		t.Fatal(err)
	}
	al := rep.PerApp[0]
	if al.Abandoned != al.Requests {
		t.Errorf("%d/%d abandoned under an impossible stage deadline", al.Abandoned, al.Requests)
	}
	if al.Timeouts == 0 || al.Retries == 0 {
		t.Errorf("timeouts=%d retries=%d; expected watchdog activity", al.Timeouts, al.Retries)
	}
}
