package dmxsys_test

// The Plan/Instantiate split's own gates: the analytic capacity bound
// must agree exactly with the occupancy the request machine measures
// (they are the same charges, computed statically vs. dynamically), and
// the process-wide DRX timing cache must never serve one host's times
// to a host with different DRX hardware.

import (
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/workload"
)

func suitePipelines(t *testing.T) []*dmxsys.Pipeline {
	t.Helper()
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	var pipes []*dmxsys.Pipeline
	for _, b := range benches {
		pipes = append(pipes, b.Pipeline)
	}
	return pipes
}

func TestPlanCapacityMatchesMeasured(t *testing.T) {
	pipes := suitePipelines(t)
	for _, p := range []dmxsys.Placement{
		dmxsys.MultiAxl, dmxsys.Integrated, dmxsys.Standalone,
		dmxsys.PCIeIntegrated, dmxsys.BumpInTheWire, dmxsys.AllCPU,
	} {
		t.Run(p.String(), func(t *testing.T) {
			plan, err := dmxsys.NewPlan(dmxsys.DefaultConfig(p), pipes)
			if err != nil {
				t.Fatal(err)
			}
			s, err := plan.Instantiate(sim.NewEngine(), dmxsys.HostOpts{})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			for i, ar := range rep.Apps {
				c := plan.Capacity(i)
				if c.PerRequest <= 0 || c.PerSecond <= 0 {
					t.Fatalf("app %d: degenerate capacity %+v", i, c)
				}
				if ar.Bottleneck != c.PerRequest || ar.BottleneckResource != c.Resource {
					t.Errorf("app %d: measured bottleneck %v on %q, plan predicts %v on %q",
						i, ar.Bottleneck, ar.BottleneckResource, c.PerRequest, c.Resource)
				}
			}
		})
	}
}

func TestPlanReplicasIndependent(t *testing.T) {
	// Two replicas of one plan on one engine must not share mutable
	// state: loading one replica cannot change the other's report.
	pipes := suitePipelines(t)[:1]
	cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	plan, err := dmxsys.NewPlan(cfg, pipes)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	a, err := plan.Instantiate(eng, dmxsys.HostOpts{Prefix: "h0/"})
	if err != nil {
		t.Fatal(err)
	}
	bSys, err := plan.Instantiate(eng, dmxsys.HostOpts{Prefix: "h1/"})
	if err != nil {
		t.Fatal(err)
	}
	var aDone, bDone int
	for i := 0; i < 6; i++ {
		a.Admit(0, 0, func(dmxsys.Retired) { aDone++ })
	}
	bSys.Admit(0, 0, func(dmxsys.Retired) { bDone++ })
	eng.Run()
	if a.Err() != nil || bSys.Err() != nil {
		t.Fatal(a.Err(), bSys.Err())
	}
	if aDone != 6 || bDone != 1 {
		t.Fatalf("replica retirements crossed: %d and %d", aDone, bDone)
	}
}

func TestDRXClockCacheRegression(t *testing.T) {
	// Two hosts differing only in DRX clock must compute different
	// restructuring times. Before the cache key carried the full DRX
	// config, the process-wide cache could serve host A's time to host
	// B whenever only an unkeyed field (clock, instruction cache, DRAM
	// size) differed.
	pipes := suitePipelines(t)
	var kernel = func() *dmxsys.Pipeline {
		for _, p := range pipes {
			if len(p.Hops) > 0 {
				return p
			}
		}
		t.Fatal("no chained pipeline in suite")
		return nil
	}()
	k := kernel.Hops[0].Kernel

	fast := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	slow := fast
	slow.DRX.ClockHz = fast.DRX.ClockHz / 4

	fastSys, err := dmxsys.New(fast, []*dmxsys.Pipeline{kernel})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := fastSys.DRXServiceTime(k)
	if err != nil {
		t.Fatal(err)
	}
	// Built second, so a mis-keyed cache would serve it the fast host's
	// entry for the same kernel signature.
	slowSys, err := dmxsys.New(slow, []*dmxsys.Pipeline{kernel})
	if err != nil {
		t.Fatal(err)
	}
	st, err := slowSys.DRXServiceTime(k)
	if err != nil {
		t.Fatal(err)
	}
	if st <= ft {
		t.Fatalf("quarter-clock DRX served %q in %v, fast host in %v: cached time crossed hosts",
			k.Signature(), st, ft)
	}
}
