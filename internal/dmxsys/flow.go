package dmxsys

import (
	"fmt"

	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/sim"
)

// This file implements the end-to-end request flow for every system
// configuration. A request walks its pipeline as a chain of callbacks on
// the event engine: kernel → data motion hop → kernel → ... with each
// segment's duration attributed to one of the three runtime components
// the paper's breakdowns use (kernel, restructuring, movement).
//
// Every protocol step also emits a structured obs event (see
// internal/obs): an instant at the moment the old text trace logged a
// line, a span when an interval closes (DMA legs, per-phase laps), and a
// flow pair linking the two endpoints of a DMA. The text trace is a
// rendering of these events, never a separate code path.

// phase tags attribute elapsed time in the app report.
type phase int

const (
	phaseKernel phase = iota
	phaseRestructure
	phaseMovement
)

// obsPhase maps the report phase onto the obs taxonomy.
func (p phase) obsPhase() obs.Phase {
	switch p {
	case phaseKernel:
		return obs.PhaseKernel
	case phaseRestructure:
		return obs.PhaseRestructure
	}
	return obs.PhaseMovement
}

// obsInstant emits one protocol instant (a Fig. 10 moment) for app a.
func (s *System) obsInstant(a *appInstance, typ obs.Type, step uint8, track, peer, name string, bytes int64) {
	s.rec.Instant(obs.Time(s.Eng.Now()), typ, step, track, peer, a.pipe.Name, name, bytes)
}

// obsDMA records a completed DMA leg: a span on the request's trace
// track plus a flow arrow between the source and destination device
// tracks. Call it from the transfer's completion callback with the
// leg's start time.
func (s *System) obsDMA(tr *tracker, typ obs.Type, step uint8, from, to string, n int64, begin sim.Time) {
	if s.rec == nil {
		return
	}
	now := s.Eng.Now()
	s.rec.Span(obs.Time(begin), obs.Duration(now.Sub(begin)), typ, obs.PhaseNone,
		step, tr.track, tr.a.pipe.Name, "", n)
	if from != to {
		s.rec.FlowPair(obs.Time(begin), obs.Time(now), typ, from, to, tr.a.pipe.Name, "", n)
	}
}

// tracker measures contiguous segments of one request's timeline.
type tracker struct {
	s *System
	a *appInstance
	// track is the request's trace timeline (the app track, suffixed
	// with a request ordinal under streamed execution so concurrent
	// requests never interleave spans on one track).
	track string
	mark  sim.Time
}

func (t *tracker) lap(p phase) {
	now := t.s.Eng.Now()
	d := now.Sub(t.mark)
	if d > 0 {
		op := p.obsPhase()
		t.s.rec.Span(obs.Time(t.mark), obs.Duration(d), obs.TypePhase, op, 0,
			t.track, t.a.pipe.Name, op.String(), 0)
	}
	t.mark = now
	switch p {
	case phaseKernel:
		t.a.rep.KernelTime += d
	case phaseRestructure:
		t.a.rep.RestructureTime += d
	case phaseMovement:
		t.a.rep.MovementTime += d
	}
}

// startApp launches one request through an app's pipeline, calling done
// at completion.
func (s *System) startApp(a *appInstance, done func()) {
	a.start = s.Eng.Now()
	track := a.track
	if a.requests > 0 {
		track = fmt.Sprintf("%s/r%d", a.track, a.requests)
	}
	a.requests++
	tr := &tracker{s: s, a: a, track: track, mark: s.Eng.Now()}
	finish := func() {
		a.rep.Total = s.Eng.Now().Sub(a.start)
		done()
	}
	if s.cfg.Placement == AllCPU {
		s.runAllCPU(a, tr, finish)
		return
	}
	// Ship the request payload host → first accelerator, then enter the
	// kernel/hop chain.
	var runStage func(k int)
	runStage = func(k int) {
		st := a.pipe.Stages[k]
		step := uint8(0)
		if k > 0 {
			step = obs.StepNextKernel
		}
		s.obsInstant(a, obs.TypeKernelEnqueued, step, a.accelDev[k], "", st.Accel.Name, st.InBytes)
		s.servers[a.accelDev[k]].Submit(st.Accel.Latency(st.InBytes), func() {
			tr.lap(phaseKernel)
			s.obsInstant(a, obs.TypeKernelDone, obs.StepKernelDone, a.accelDev[k], "", st.Accel.Name, 0)
			if k == len(a.pipe.Stages)-1 {
				// Return the final result to the host.
				s.transferToHost(a, tr, finish)
				return
			}
			s.runHop(a, tr, k, func() { runStage(k + 1) })
		})
	}
	s.obsInstant(a, obs.TypeInputDMA, 0, pcie.Root, a.accelDev[0], "", a.pipe.InputBytes)
	begin := s.Eng.Now()
	if err := s.Fabric.Transfer(pcie.Root, a.accelDev[0], a.pipe.InputBytes, func() {
		s.obsDMA(tr, obs.TypeInputDMA, 0, pcie.Root, a.accelDev[0], a.pipe.InputBytes, begin)
		tr.lap(phaseMovement)
		runStage(0)
	}); err != nil {
		panic(fmt.Sprintf("dmxsys: input transfer: %v", err))
	}
}

func (s *System) transferToHost(a *appInstance, tr *tracker, done func()) {
	last := a.accelDev[len(a.accelDev)-1]
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeOutputDMA, 0, last, pcie.Root, "", a.pipe.OutputBytes)
		begin := s.Eng.Now()
		if err := s.Fabric.Transfer(last, pcie.Root, a.pipe.OutputBytes, func() {
			s.obsDMA(tr, obs.TypeOutputDMA, 0, last, pcie.Root, a.pipe.OutputBytes, begin)
			tr.lap(phaseMovement)
			done()
		}); err != nil {
			panic(fmt.Sprintf("dmxsys: output transfer: %v", err))
		}
	})
}

// runAllCPU executes every kernel and every restructuring in software on
// the shared host channels; there is no device data movement.
func (s *System) runAllCPU(a *appInstance, tr *tracker, done func()) {
	opsCap := s.cpuCompute.Capacity()
	var step func(k int)
	step = func(k int) {
		st := a.pipe.Stages[k]
		// The kernel's software runtime expressed as compute work: its
		// calibrated 16-core CPU latency times the socket's ops rate.
		work := int64(st.Accel.CPULatency(st.InBytes).Seconds() * opsCap)
		if work < 1 {
			work = 1
		}
		s.obsInstant(a, obs.TypeKernelEnqueued, 0, pcie.Root, "", st.Accel.Name, st.InBytes)
		s.cpuJob(work, st.InBytes, func() {
			tr.lap(phaseKernel)
			s.obsInstant(a, obs.TypeKernelDone, 0, pcie.Root, "", st.Accel.Name, 0)
			if k == len(a.pipe.Stages)-1 {
				a.rep.Total = s.Eng.Now().Sub(a.start)
				done()
				return
			}
			h := a.pipe.Hops[k]
			ops, bytes := s.restructureWork(h.Kernel)
			s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, h.InBytes)
			s.cpuJob(ops, bytes, func() {
				tr.lap(phaseRestructure)
				step(k + 1)
			})
		})
	}
	step(0)
}

// runHop executes the data motion between stage k and k+1 under the
// system's placement.
func (s *System) runHop(a *appInstance, tr *tracker, k int, done func()) {
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	to := a.accelDev[k+1]
	switch s.cfg.Placement {
	case MultiAxl, Integrated:
		// (S1) interrupt; DMA accel → host memory.
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.obsInstant(a, obs.TypeHostDMA, 0, from, pcie.Root, "", h.InBytes)
			begin := s.Eng.Now()
			s.mustTransfer(from, pcie.Root, h.InBytes, func() {
				s.obsDMA(tr, obs.TypeHostDMA, 0, from, pcie.Root, h.InBytes, begin)
				tr.lap(phaseMovement)
				// (S2) restructure on the host (CPU or integrated DRX).
				s.hostRestructure(a, k, func() {
					tr.lap(phaseRestructure)
					// (S3) DMA host → next accelerator; (S4) kernel fires.
					s.Eng.Schedule(DMASetupLatency, func() {
						s.obsInstant(a, obs.TypeHostDMA, 0, pcie.Root, to, "", h.OutBytes)
						begin := s.Eng.Now()
						s.mustTransfer(pcie.Root, to, h.OutBytes, func() {
							s.obsDMA(tr, obs.TypeHostDMA, 0, pcie.Root, to, h.OutBytes, begin)
							tr.lap(phaseMovement)
							done()
						})
					})
				})
			})
		})
	case Standalone:
		// P2P DMA accel → the app's DRX card, restructure, P2P to next.
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.obsInstant(a, obs.TypeP2PDMA, obs.StepRXDMA, from, a.sdrxDev, "", h.InBytes)
			begin := s.Eng.Now()
			s.mustTransfer(from, a.sdrxDev, h.InBytes, func() {
				s.obsDMA(tr, obs.TypeP2PDMA, obs.StepRXDMA, from, a.sdrxDev, h.InBytes, begin)
				tr.lap(phaseMovement)
				s.drxRestructure(a, k, func() {
					tr.lap(phaseRestructure)
					s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
						s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, a.sdrxDev, to, "", h.OutBytes)
						begin := s.Eng.Now()
						s.mustTransfer(a.sdrxDev, to, h.OutBytes, func() {
							s.obsDMA(tr, obs.TypeP2PDMA, obs.StepP2PDMA, a.sdrxDev, to, h.OutBytes, begin)
							tr.lap(phaseMovement)
							done()
						})
					})
				})
			})
		})
	case PCIeIntegrated:
		// Up into the switch, restructure at line rate, down to the peer
		// (saves the DRX round trip; Sec. VII-B).
		drxTrack := "drx." + a.sw
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.obsInstant(a, obs.TypeP2PDMA, obs.StepRXDMA, from, drxTrack, "", h.InBytes)
			begin := s.Eng.Now()
			s.mustUp(from, h.InBytes, func() {
				s.obsDMA(tr, obs.TypeP2PDMA, obs.StepRXDMA, from, drxTrack, h.InBytes, begin)
				tr.lap(phaseMovement)
				s.drxRestructure(a, k, func() {
					tr.lap(phaseRestructure)
					s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, drxTrack, to, "", h.OutBytes)
					begin := s.Eng.Now()
					s.mustDown(to, h.OutBytes, func() {
						s.obsDMA(tr, obs.TypeP2PDMA, obs.StepP2PDMA, drxTrack, to, h.OutBytes, begin)
						tr.lap(phaseMovement)
						done()
					})
				})
			})
		})
	case BumpInTheWire:
		// Fig. 10: ① kernel done ② interrupt ③④ local move into the
		// inline DRX's RX queue ⑤–⑦ restructure into the TX queue
		// ⑧ interrupt ⑨⑩ P2P DMA through the fabric to the peer
		// accelerator (its own DRX is a pass-through) ⑪ kernel fires.
		// Queue head/tail bookkeeping backpressures if a queue fills.
		rx, tx, err := s.hopQueues(a, k)
		if err != nil {
			panic(fmt.Sprintf("dmxsys: %v", err))
		}
		drxTrack := "drx." + from
		link := pcie.LinkConfig{Gen: s.cfg.Gen, Lanes: s.cfg.AccelLanes}
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.queueAdmit(rx, h.InBytes, func() {
				s.obsInstant(a, obs.TypeQueueDMA, obs.StepRXDMA, from, drxTrack, "", h.InBytes)
				begin := s.Eng.Now()
				s.localBytes += h.InBytes
				s.Eng.Schedule(sim.BytesAt(h.InBytes, link.Bandwidth()), func() {
					s.obsDMA(tr, obs.TypeQueueDMA, obs.StepRXDMA, from, drxTrack, h.InBytes, begin)
					tr.lap(phaseMovement)
					s.drxRestructure(a, k, func() {
						s.queueAdmit(tx, h.OutBytes, func() {
							if rx != nil {
								if err := rx.Dequeue(h.InBytes); err != nil {
									panic(fmt.Sprintf("dmxsys: %v", err))
								}
							}
							tr.lap(phaseRestructure)
							s.obsInstant(a, obs.TypeTXReady, obs.StepTXReady, drxTrack, "", "", h.OutBytes)
							s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
								s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, from, to, "", h.OutBytes)
								begin := s.Eng.Now()
								s.mustTransfer(from, to, h.OutBytes, func() {
									if tx != nil {
										if err := tx.Dequeue(h.OutBytes); err != nil {
											panic(fmt.Sprintf("dmxsys: %v", err))
										}
									}
									s.obsDMA(tr, obs.TypeP2PDMA, obs.StepP2PDMA, from, to, h.OutBytes, begin)
									tr.lap(phaseMovement)
									done()
								})
							})
						})
					})
				})
			})
		})
	default:
		panic(fmt.Sprintf("dmxsys: runHop under %v", s.cfg.Placement))
	}
}

// hostRestructure dispatches hop k's restructuring at the host: on the
// shared CPU channels for MultiAxl, on the single integrated DRX
// otherwise.
func (s *System) hostRestructure(a *appInstance, k int, done func()) {
	if s.cfg.Placement == Integrated {
		s.drxRestructure(a, k, done)
		return
	}
	h := a.pipe.Hops[k]
	s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, h.InBytes)
	ops, bytes := s.restructureWork(h.Kernel)
	s.cpuJob(ops, bytes, done)
}

// drxRestructure queues hop k's kernel on the app's DRX unit.
func (s *System) drxRestructure(a *appInstance, k int, done func()) {
	kern := a.pipe.Hops[k].Kernel
	s.obsInstant(a, obs.TypeRestructure, obs.StepRestructure,
		a.drxServer[k].Name(), "", kern.Name, a.pipe.Hops[k].InBytes)
	d, err := s.drxServiceTime(kern)
	if err != nil {
		panic(fmt.Sprintf("dmxsys: %v", err)) // cache warmed in New; unreachable
	}
	a.drxServer[k].Submit(d, done)
}

func (s *System) mustTransfer(from, to string, n int64, done func()) {
	if err := s.Fabric.Transfer(from, to, n, done); err != nil {
		panic(fmt.Sprintf("dmxsys: transfer %s→%s: %v", from, to, err))
	}
}

func (s *System) mustUp(dev string, n int64, done func()) {
	if err := s.Fabric.TransferUp(dev, n, done); err != nil {
		panic(fmt.Sprintf("dmxsys: transfer up %s: %v", dev, err))
	}
}

func (s *System) mustDown(dev string, n int64, done func()) {
	if err := s.Fabric.TransferDown(dev, n, done); err != nil {
		panic(fmt.Sprintf("dmxsys: transfer down %s: %v", dev, err))
	}
}
