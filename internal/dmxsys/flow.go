package dmxsys

import (
	"fmt"

	"dmx/internal/pcie"
	"dmx/internal/sim"
)

// This file implements the end-to-end request flow for every system
// configuration. A request walks its pipeline as a chain of callbacks on
// the event engine: kernel → data motion hop → kernel → ... with each
// segment's duration attributed to one of the three runtime components
// the paper's breakdowns use (kernel, restructuring, movement).

// phase tags attribute elapsed time in the app report.
type phase int

const (
	phaseKernel phase = iota
	phaseRestructure
	phaseMovement
)

// trace emits an event to the configured trace hook.
func (s *System) trace(a *appInstance, format string, args ...any) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace(s.Eng.Now(), a.pipe.Name, fmt.Sprintf(format, args...))
}

// tracker measures contiguous segments of one app's timeline.
type tracker struct {
	s    *System
	a    *appInstance
	mark sim.Time
}

func (t *tracker) lap(p phase) {
	now := t.s.Eng.Now()
	d := now.Sub(t.mark)
	t.mark = now
	switch p {
	case phaseKernel:
		t.a.rep.KernelTime += d
	case phaseRestructure:
		t.a.rep.RestructureTime += d
	case phaseMovement:
		t.a.rep.MovementTime += d
	}
}

// startApp launches one request through an app's pipeline, calling done
// at completion.
func (s *System) startApp(a *appInstance, done func()) {
	a.start = s.Eng.Now()
	tr := &tracker{s: s, a: a, mark: s.Eng.Now()}
	finish := func() {
		a.rep.Total = s.Eng.Now().Sub(a.start)
		done()
	}
	if s.cfg.Placement == AllCPU {
		s.runAllCPU(a, tr, finish)
		return
	}
	// Ship the request payload host → first accelerator, then enter the
	// kernel/hop chain.
	var runStage func(k int)
	runStage = func(k int) {
		st := a.pipe.Stages[k]
		s.trace(a, "kernel %s enqueued on %s", st.Accel.Name, a.accelDev[k])
		s.servers[a.accelDev[k]].Submit(st.Accel.Latency(st.InBytes), func() {
			tr.lap(phaseKernel)
			s.trace(a, "kernel %s finished; interrupt raised", st.Accel.Name)
			if k == len(a.pipe.Stages)-1 {
				// Return the final result to the host.
				s.transferToHost(a, tr, finish)
				return
			}
			s.runHop(a, tr, k, func() { runStage(k + 1) })
		})
	}
	s.trace(a, "request input DMA host→%s (%d B)", a.accelDev[0], a.pipe.InputBytes)
	if err := s.Fabric.Transfer(pcie.Root, a.accelDev[0], a.pipe.InputBytes, func() {
		tr.lap(phaseMovement)
		runStage(0)
	}); err != nil {
		panic(fmt.Sprintf("dmxsys: input transfer: %v", err))
	}
}

func (s *System) transferToHost(a *appInstance, tr *tracker, done func()) {
	last := a.accelDev[len(a.accelDev)-1]
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		if err := s.Fabric.Transfer(last, pcie.Root, a.pipe.OutputBytes, func() {
			tr.lap(phaseMovement)
			done()
		}); err != nil {
			panic(fmt.Sprintf("dmxsys: output transfer: %v", err))
		}
	})
}

// runAllCPU executes every kernel and every restructuring in software on
// the shared host channels; there is no device data movement.
func (s *System) runAllCPU(a *appInstance, tr *tracker, done func()) {
	opsCap := s.cpuCompute.Capacity()
	var step func(k int)
	step = func(k int) {
		st := a.pipe.Stages[k]
		// The kernel's software runtime expressed as compute work: its
		// calibrated 16-core CPU latency times the socket's ops rate.
		work := int64(st.Accel.CPULatency(st.InBytes).Seconds() * opsCap)
		if work < 1 {
			work = 1
		}
		s.cpuJob(work, st.InBytes, func() {
			tr.lap(phaseKernel)
			if k == len(a.pipe.Stages)-1 {
				a.rep.Total = s.Eng.Now().Sub(a.start)
				done()
				return
			}
			h := a.pipe.Hops[k]
			ops, bytes := s.restructureWork(h.Kernel)
			s.cpuJob(ops, bytes, func() {
				tr.lap(phaseRestructure)
				step(k + 1)
			})
		})
	}
	step(0)
}

// runHop executes the data motion between stage k and k+1 under the
// system's placement.
func (s *System) runHop(a *appInstance, tr *tracker, k int, done func()) {
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	to := a.accelDev[k+1]
	switch s.cfg.Placement {
	case MultiAxl, Integrated:
		// (S1) interrupt; DMA accel → host memory.
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.mustTransfer(from, pcie.Root, h.InBytes, func() {
				tr.lap(phaseMovement)
				// (S2) restructure on the host (CPU or integrated DRX).
				s.hostRestructure(a, k, func() {
					tr.lap(phaseRestructure)
					// (S3) DMA host → next accelerator; (S4) kernel fires.
					s.Eng.Schedule(DMASetupLatency, func() {
						s.mustTransfer(pcie.Root, to, h.OutBytes, func() {
							tr.lap(phaseMovement)
							done()
						})
					})
				})
			})
		})
	case Standalone:
		// P2P DMA accel → the app's DRX card, restructure, P2P to next.
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.mustTransfer(from, a.sdrxDev, h.InBytes, func() {
				tr.lap(phaseMovement)
				s.drxRestructure(a, k, func() {
					tr.lap(phaseRestructure)
					s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
						s.mustTransfer(a.sdrxDev, to, h.OutBytes, func() {
							tr.lap(phaseMovement)
							done()
						})
					})
				})
			})
		})
	case PCIeIntegrated:
		// Up into the switch, restructure at line rate, down to the peer
		// (saves the DRX round trip; Sec. VII-B).
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.mustUp(from, h.InBytes, func() {
				tr.lap(phaseMovement)
				s.drxRestructure(a, k, func() {
					tr.lap(phaseRestructure)
					s.mustDown(to, h.OutBytes, func() {
						tr.lap(phaseMovement)
						done()
					})
				})
			})
		})
	case BumpInTheWire:
		// Fig. 10: ① kernel done ② interrupt ③④ local move into the
		// inline DRX's RX queue ⑤–⑦ restructure into the TX queue
		// ⑧ interrupt ⑨⑩ P2P DMA through the fabric to the peer
		// accelerator (its own DRX is a pass-through) ⑪ kernel fires.
		// Queue head/tail bookkeeping backpressures if a queue fills.
		rx, tx, err := s.hopQueues(a, k)
		if err != nil {
			panic(fmt.Sprintf("dmxsys: %v", err))
		}
		link := pcie.LinkConfig{Gen: s.cfg.Gen, Lanes: s.cfg.AccelLanes}
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.queueAdmit(rx, h.InBytes, func() {
				s.trace(a, "P2P DMA %s→RX queue of DRX (%d B)", from, h.InBytes)
				s.localBytes += h.InBytes
				s.Eng.Schedule(sim.BytesAt(h.InBytes, link.Bandwidth()), func() {
					tr.lap(phaseMovement)
					s.trace(a, "DRX restructuring %s", h.Kernel.Name)
					s.drxRestructure(a, k, func() {
						s.queueAdmit(tx, h.OutBytes, func() {
							if rx != nil {
								if err := rx.Dequeue(h.InBytes); err != nil {
									panic(fmt.Sprintf("dmxsys: %v", err))
								}
							}
							tr.lap(phaseRestructure)
							s.trace(a, "restructured into TX queue; interrupt raised")
							s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
								s.trace(a, "P2P DMA %s→%s (%d B)", from, to, h.OutBytes)
								s.mustTransfer(from, to, h.OutBytes, func() {
									if tx != nil {
										if err := tx.Dequeue(h.OutBytes); err != nil {
											panic(fmt.Sprintf("dmxsys: %v", err))
										}
									}
									tr.lap(phaseMovement)
									done()
								})
							})
						})
					})
				})
			})
		})
	default:
		panic(fmt.Sprintf("dmxsys: runHop under %v", s.cfg.Placement))
	}
}

// hostRestructure dispatches hop k's restructuring at the host: on the
// shared CPU channels for MultiAxl, on the single integrated DRX
// otherwise.
func (s *System) hostRestructure(a *appInstance, k int, done func()) {
	if s.cfg.Placement == Integrated {
		s.drxRestructure(a, k, done)
		return
	}
	ops, bytes := s.restructureWork(a.pipe.Hops[k].Kernel)
	s.cpuJob(ops, bytes, done)
}

// drxRestructure queues hop k's kernel on the app's DRX unit.
func (s *System) drxRestructure(a *appInstance, k int, done func()) {
	d, err := s.drxServiceTime(a.pipe.Hops[k].Kernel)
	if err != nil {
		panic(fmt.Sprintf("dmxsys: %v", err)) // cache warmed in New; unreachable
	}
	a.drxServer[k].Submit(d, done)
}

func (s *System) mustTransfer(from, to string, n int64, done func()) {
	if err := s.Fabric.Transfer(from, to, n, done); err != nil {
		panic(fmt.Sprintf("dmxsys: transfer %s→%s: %v", from, to, err))
	}
}

func (s *System) mustUp(dev string, n int64, done func()) {
	if err := s.Fabric.TransferUp(dev, n, done); err != nil {
		panic(fmt.Sprintf("dmxsys: transfer up %s: %v", dev, err))
	}
}

func (s *System) mustDown(dev string, n int64, done func()) {
	if err := s.Fabric.TransferDown(dev, n, done); err != nil {
		panic(fmt.Sprintf("dmxsys: transfer down %s: %v", dev, err))
	}
}
