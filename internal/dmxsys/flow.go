package dmxsys

import (
	"errors"
	"fmt"
	"math"

	"dmx/internal/obs"
	"dmx/internal/pcie"
	"dmx/internal/sim"
	"dmx/internal/traffic"
)

// This file implements the end-to-end request flow for every system
// configuration as an explicit state machine. Each in-flight request is
// a *request value carrying its own cursor through the pipeline (the
// stage index), its phase tracker, and its deadline; the machine
// advances through small step methods, one per protocol action:
//
//	stepInput → stepKernel → kernelDone → hop* → (k++) stepKernel → ... → stepOutput → finish
//
// with a placement-specific hop sequence between kernels and a pure-CPU
// chain (stepCPUKernel/cpuKernelDone/cpuRestructured) for the AllCPU
// baseline. Run, RunStream, and RunLoad are thin front-ends over the
// same machine: they differ only in the arrival offsets they feed the
// shared drive loop.
//
// Every protocol step also emits a structured obs event (see
// internal/obs): an instant at the moment the old text trace logged a
// line, a span when an interval closes (DMA legs, per-phase laps), and a
// flow pair linking the two endpoints of a DMA. The text trace is a
// rendering of these events, never a separate code path.
//
// Errors (fabric transfer failures, queue accounting violations, DRX
// timing failures) do not panic: the request records the first error on
// the System via fail and stops advancing; the drive loop surfaces it
// from Run/RunStream/RunLoad after the engine drains.

// phase tags attribute elapsed time in the app report.
type phase int

const (
	phaseKernel phase = iota
	phaseRestructure
	phaseMovement
)

// obsPhase maps the report phase onto the obs taxonomy.
func (p phase) obsPhase() obs.Phase {
	switch p {
	case phaseKernel:
		return obs.PhaseKernel
	case phaseRestructure:
		return obs.PhaseRestructure
	}
	return obs.PhaseMovement
}

// sink is the live trace emission target: the engine's current
// recorder. Sharded fleets swap each lane's recorder for a private
// capture buffer during lookahead windows, so emission sites must read
// it at emission time — s.rec stays the report-time aggregate source
// (and the "is tracing on" gate); sequentially they are one recorder.
func (s *System) sink() *obs.Recorder { return s.Eng.Obs }

// obsInstant emits one protocol instant (a Fig. 10 moment) for app a.
func (s *System) obsInstant(a *appInstance, typ obs.Type, step uint8, track, peer, name string, bytes int64) {
	s.sink().Instant(obs.Time(s.Eng.Now()), typ, step, track, peer, a.pipe.Name, name, bytes)
}

// request is one in-flight request walking its application's pipeline.
type request struct {
	s *System
	a *appInstance

	// k is the stage cursor: the index of the pipeline stage the request
	// is currently executing (or moving its output away from).
	k int

	// track is the request's trace timeline (the app track, suffixed
	// with a request ordinal under streamed execution so concurrent
	// requests never interleave spans on one track).
	track string
	// mark is the phase tracker: the start of the current contiguous
	// segment, closed by lap into one of the three report components.
	mark sim.Time

	// start is the admission instant; deadline is the absolute latency
	// budget (zero = none). RunLoad reads both when the request retires.
	start    sim.Time
	deadline sim.Time

	// legBegin is the start time of the DMA leg currently in flight
	// (legs within one request are strictly sequential).
	legBegin sim.Time
	// rx, tx are the bump-in-the-wire data queues of the hop in
	// progress; rxHeld/txHeld mirror the bytes currently reserved so a
	// degrade or abandon mid-hop can release them (a held reservation
	// would deadlock peer requests waiting on queue space).
	rx, tx         *DataQueue
	rxHeld, txHeld int64

	// Fault-handling state, all zero on the fault-free path. attempt
	// numbers the tries of the stage operation in progress; epoch
	// invalidates in-flight completions after a watchdog fires;
	// retries/timeouts accumulate for the report; outcome classifies
	// how the request retired.
	attempt  int
	epoch    int
	retries  int
	timeouts int
	outcome  traffic.Outcome
	watchdog sim.EventRef
	wdArmed  bool

	// hold is the DRX slot a fused leader hop retained (nil otherwise);
	// holdAt is the instant the hold was delivered. The follower hop
	// resumes the resident program on it, or degradation releases it.
	hold   *sim.Hold
	holdAt sim.Time

	// done retires the request (nil once failed or retired).
	done func(*request)
}

// guard wraps a completion callback with the request's liveness and
// epoch: a completion that lost a watchdog race, or that arrived after
// the request retired, is dropped. On the fault-free path the callback
// is returned untouched, so timing and allocation behavior are
// unchanged.
func (r *request) guard(f func()) func() {
	if !r.s.hazardous {
		return f
	}
	e := r.epoch
	return func() {
		if r.done != nil && r.epoch == e {
			f()
		}
	}
}

// arm starts the per-stage watchdog, when one is configured: if the
// guarded operation has not completed within Retry.StageDeadline, the
// in-flight completion is invalidated (epoch bump) and onTimeout runs.
// The stalled station keeps its slot busy — injected faults wedge
// devices, they do not recall submitted work.
func (r *request) arm(name string, onTimeout func()) {
	s := r.s
	if !s.hazardous || s.cfg.Retry.StageDeadline <= 0 {
		return
	}
	e := r.epoch
	r.watchdog = s.Eng.Schedule(s.cfg.Retry.StageDeadline, func() {
		if r.done == nil || r.epoch != e {
			return
		}
		r.epoch++
		r.wdArmed = false
		r.timeouts++
		s.obsInstant(r.a, obs.TypeTimeout, 0, r.track, "", name, 0)
		onTimeout()
	})
	r.wdArmed = true
}

// disarm cancels a pending watchdog (no-op when none is armed).
func (r *request) disarm() {
	if r.wdArmed {
		r.watchdog.Cancel()
		r.wdArmed = false
	}
}

// releaseQueues returns any bump-in-the-wire queue reservations the
// request still holds.
func (r *request) releaseQueues() {
	if r.rxHeld > 0 && r.rx != nil {
		if err := r.rx.Dequeue(r.rxHeld); err != nil {
			r.fail(fmt.Errorf("dmxsys: %w", err))
		}
		r.rxHeld = 0
	}
	if r.txHeld > 0 && r.tx != nil {
		if err := r.tx.Dequeue(r.txHeld); err != nil {
			r.fail(fmt.Errorf("dmxsys: %w", err))
		}
		r.txHeld = 0
	}
}

// releaseHold returns a fused leader's retained DRX slot (no-op when
// none is held). Every path that diverts a request off the fused flow —
// abandon, degradation — must call it, or the held slot would starve
// every other request of the unit.
func (r *request) releaseHold() {
	if r.hold != nil {
		r.hold.Release()
		r.hold = nil
	}
}

// abandon retires the request unfinished after its retry budget is
// exhausted. It still retires through done so the drive loop's
// outstanding count drains and the run completes.
func (r *request) abandon() {
	r.disarm()
	r.epoch++ // drop any completion still in flight
	r.releaseQueues()
	r.releaseHold()
	r.outcome = traffic.OutcomeAbandoned
	r.s.obsInstant(r.a, obs.TypeAbandon, 0, r.track, "", "", 0)
	r.finish()
}

// admit is the serving front door for one arrival: admission control
// first (RunLoad only), then the batching window when one is
// configured, then the solo per-request state machine. With admission
// control and batching both disabled it is startRequest, bit-for-bit.
func (s *System) admit(a *appInstance, deadline sim.Duration, done func(*request)) {
	if s.admitting && s.cfg.AdmitLimit > 0 && a.inflight >= s.cfg.AdmitLimit {
		s.obsInstant(a, obs.TypeReject, 0, a.track, "", "", int64(a.inflight))
		r := &request{s: s, a: a, track: a.track, outcome: traffic.OutcomeRejected}
		// The request never executes: retire it through done directly so
		// the drive loop's outstanding count drains, without touching
		// a.requests (occupancy and report totals cover executed
		// requests only).
		done(r)
		return
	}
	if s.cfg.BatchWindow > 0 && s.cfg.Placement != AllCPU {
		s.enqueueBatch(a, deadline, done)
		return
	}
	s.startRequest(a, deadline, done)
}

// startRequest admits one request into app a's pipeline, calling done at
// completion. deadline, when positive, is the per-request latency
// budget relative to now.
func (s *System) startRequest(a *appInstance, deadline sim.Duration, done func(*request)) {
	s.newRequest(a, deadline, done).launch()
}

// newRequest creates one request of app a without dispatching it (a
// batched member parks in the accumulation window instead).
func (s *System) newRequest(a *appInstance, deadline sim.Duration, done func(*request)) *request {
	now := s.Eng.Now()
	track := a.track
	// Per-request trace tracks matter only when a recorder is attached;
	// skipping the format keeps the headless serving path free of
	// per-request string allocations.
	if s.rec != nil && a.requests > 0 {
		track = fmt.Sprintf("%s/r%d", a.track, a.requests)
	}
	a.requests++
	a.inflight++
	r := &request{s: s, a: a, track: track, mark: now, start: now, done: done}
	if deadline > 0 {
		r.deadline = now.Add(deadline)
	}
	return r
}

// launch dispatches the request into its placement's walk.
func (r *request) launch() {
	if r.s.cfg.Placement == AllCPU {
		r.stepCPUKernel()
		return
	}
	r.stepInput()
}

// deadlineKey is the EDF scheduling key shared by solo requests and
// batches: the absolute deadline, or MaxInt64 for "no deadline" so
// deadline-carrying work always overtakes best-effort work.
func deadlineKey(deadline sim.Time) int64 {
	if deadline == 0 {
		return math.MaxInt64
	}
	return int64(deadline)
}

// kernelKey is the request's scheduling key when submitting stage k's
// kernel: its absolute deadline under EDF, the precomputed station
// service still ahead of it under SRS, 0 (ignored) otherwise.
func (r *request) kernelKey() int64 {
	switch r.s.cfg.Sched {
	case SchedEDF:
		return deadlineKey(r.deadline)
	case SchedSRS:
		return int64(r.a.remAtKernel[r.k])
	}
	return 0
}

// hopKey is the analogous key when submitting hop k's restructuring.
func (r *request) hopKey() int64 {
	switch r.s.cfg.Sched {
	case SchedEDF:
		return deadlineKey(r.deadline)
	case SchedSRS:
		return int64(r.a.remAtHop[r.k])
	}
	return 0
}

// lap closes the current contiguous segment, attributing it to phase p.
func (r *request) lap(p phase) {
	now := r.s.Eng.Now()
	d := now.Sub(r.mark)
	if d > 0 {
		op := p.obsPhase()
		r.s.sink().Span(obs.Time(r.mark), obs.Duration(d), obs.TypePhase, op, 0,
			r.track, r.a.pipe.Name, op.String(), 0)
	}
	r.mark = now
	switch p {
	case phaseKernel:
		r.a.rep.KernelTime += d
	case phaseRestructure:
		r.a.rep.RestructureTime += d
	case phaseMovement:
		r.a.rep.MovementTime += d
	}
}

// obsDMA records a completed DMA leg: a span on the request's trace
// track plus a flow arrow between the source and destination device
// tracks. Call it from the transfer's completion callback with the
// leg's start time.
func (r *request) obsDMA(typ obs.Type, step uint8, from, to string, n int64, begin sim.Time) {
	s := r.s
	if s.rec == nil {
		return
	}
	now := s.Eng.Now()
	s.sink().Span(obs.Time(begin), obs.Duration(now.Sub(begin)), typ, obs.PhaseNone,
		step, r.track, r.a.pipe.Name, "", n)
	if from != to {
		s.sink().FlowPair(obs.Time(begin), obs.Time(now), typ, from, to, r.a.pipe.Name, "", n)
	}
}

// fail records the request's error on the System and stops the machine:
// the request never retires, and the drive loop reports the error after
// the engine drains.
func (r *request) fail(err error) {
	r.s.fail(err)
	r.done = nil
}

// finish retires the request.
func (r *request) finish() {
	a := r.a
	a.inflight--
	a.rep.Total = r.s.Eng.Now().Sub(r.start)
	a.rep.Retries += r.retries
	a.rep.Timeouts += r.timeouts
	switch r.outcome {
	case traffic.OutcomeDegraded:
		a.rep.Degraded++
	case traffic.OutcomeAbandoned:
		a.rep.Abandoned++
	}
	if done := r.done; done != nil {
		r.done = nil
		done(r)
	}
}

// transfer starts a fabric DMA with link-fault handling: a start that
// fails because an injected link outage is in effect is re-attempted
// under the retry policy, and the request is abandoned once attempts
// run out; any other error is a hard flow error, exactly as before.
func (r *request) transfer(from, to string, n int64, done func()) {
	done = r.guard(done)
	r.fabricAttempt(from, to, 1, func() error {
		return r.s.Fabric.Transfer(from, to, n, done)
	})
}

func (r *request) fabricAttempt(from, to string, attempt int, start func() error) {
	err := start()
	if err == nil {
		return
	}
	s := r.s
	if s.hazardous && errors.Is(err, pcie.ErrLinkDown) {
		if attempt < s.cfg.Retry.Attempts() {
			next := attempt + 1
			r.retries++
			s.obsInstant(r.a, obs.TypeRetry, 0, r.track, "", from+"→"+to, int64(next))
			s.Eng.Schedule(s.inj.RetryBackoff(s.cfg.Retry, next), r.guard(func() {
				r.fabricAttempt(from, to, next, start)
			}))
			return
		}
		r.abandon()
		return
	}
	r.fail(fmt.Errorf("dmxsys: transfer %s→%s: %w", from, to, err))
}

// stepInput ships the request payload host → first accelerator, then
// enters the kernel/hop chain.
func (r *request) stepInput() {
	s, a := r.s, r.a
	s.occupyPath(a, pcie.Root, a.accelDev[0], a.pipe.InputBytes)
	s.obsInstant(a, obs.TypeInputDMA, 0, pcie.Root, a.accelDev[0], "", a.pipe.InputBytes)
	r.legBegin = s.Eng.Now()
	r.transfer(pcie.Root, a.accelDev[0], a.pipe.InputBytes, r.inputArrived)
}

func (r *request) inputArrived() {
	a := r.a
	r.obsDMA(obs.TypeInputDMA, 0, pcie.Root, a.accelDev[0], a.pipe.InputBytes, r.legBegin)
	r.lap(phaseMovement)
	r.stepKernel()
}

// stepKernel enqueues stage k's kernel on its accelerator.
func (r *request) stepKernel() {
	r.attempt = 1
	r.kernelAttempt()
}

func (r *request) kernelAttempt() {
	s, a, k := r.s, r.a, r.k
	st := a.pipe.Stages[k]
	dev := a.accelDev[k]
	if s.hazardous {
		// An accelerator in a stall window holds the submission until
		// the window closes (the device is wedged, not the driver).
		if stall := s.inj.StallUntil(dev, s.Eng.Now()); stall > 0 {
			s.obsInstant(a, obs.TypeStall, 0, dev, "", st.Accel.Name, int64(stall))
			s.Eng.Schedule(stall, r.guard(r.kernelAttempt))
			return
		}
	}
	step := uint8(0)
	if k > 0 {
		step = obs.StepNextKernel
	}
	s.obsInstant(a, obs.TypeKernelEnqueued, step, dev, "", st.Accel.Name, st.InBytes)
	srv := s.servers[dev]
	service := st.Accel.Latency(st.InBytes)
	a.occupyServer(srv, service)
	r.arm(st.Accel.Name, r.kernelTimeout)
	srv.SubmitKeyed(a.id, r.kernelKey(), service, r.guard(r.kernelDone))
}

// kernelTimeout handles a stage watchdog firing on a kernel execution:
// re-attempt while the budget lasts (the stale execution's completion
// is already invalidated by the epoch bump), else abandon.
func (r *request) kernelTimeout() {
	s := r.s
	if r.attempt < s.cfg.Retry.Attempts() {
		r.attempt++
		r.retries++
		st := r.a.pipe.Stages[r.k]
		s.obsInstant(r.a, obs.TypeRetry, 0, r.track, "", st.Accel.Name, int64(r.attempt))
		s.Eng.Schedule(s.inj.RetryBackoff(s.cfg.Retry, r.attempt), r.guard(r.kernelAttempt))
		return
	}
	r.abandon()
}

func (r *request) kernelDone() {
	s, a, k := r.s, r.a, r.k
	st := a.pipe.Stages[k]
	r.disarm()
	r.lap(phaseKernel)
	s.obsInstant(a, obs.TypeKernelDone, obs.StepKernelDone, a.accelDev[k], "", st.Accel.Name, 0)
	if k == len(a.pipe.Stages)-1 {
		r.stepOutput()
		return
	}
	r.stepHop()
}

// nextStage advances the cursor past the completed hop and fires the
// next kernel.
func (r *request) nextStage() {
	r.k++
	r.stepKernel()
}

// stepOutput returns the final result to the host.
func (r *request) stepOutput() {
	s, a := r.s, r.a
	last := a.accelDev[len(a.accelDev)-1]
	s.occupyPath(a, last, pcie.Root, a.pipe.OutputBytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeOutputDMA, 0, last, pcie.Root, "", a.pipe.OutputBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(last, pcie.Root, a.pipe.OutputBytes, r.outputDone)
	})
}

func (r *request) outputDone() {
	a := r.a
	last := a.accelDev[len(a.accelDev)-1]
	r.obsDMA(obs.TypeOutputDMA, 0, last, pcie.Root, a.pipe.OutputBytes, r.legBegin)
	r.lap(phaseMovement)
	r.finish()
}

// stepCPUKernel executes stage k's kernel in software on the shared
// host channels (the AllCPU baseline; there is no device data
// movement).
func (r *request) stepCPUKernel() {
	s, a, k := r.s, r.a, r.k
	st := a.pipe.Stages[k]
	// The kernel's software runtime expressed as compute work: its
	// calibrated 16-core CPU latency times the socket's ops rate.
	work := int64(st.Accel.CPULatency(st.InBytes).Seconds() * s.cpuCompute.Capacity())
	if work < 1 {
		work = 1
	}
	s.occupyCPU(a, work, st.InBytes)
	s.obsInstant(a, obs.TypeKernelEnqueued, 0, pcie.Root, "", st.Accel.Name, st.InBytes)
	s.cpuJob(work, st.InBytes, r.cpuKernelDone)
}

func (r *request) cpuKernelDone() {
	s, a, k := r.s, r.a, r.k
	st := a.pipe.Stages[k]
	r.lap(phaseKernel)
	s.obsInstant(a, obs.TypeKernelDone, 0, pcie.Root, "", st.Accel.Name, 0)
	if k == len(a.pipe.Stages)-1 {
		r.finish()
		return
	}
	h := a.pipe.Hops[k]
	ops, bytes := s.restructureWork(h.Kernel)
	s.occupyCPU(a, ops, bytes)
	s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, h.InBytes)
	s.cpuJob(ops, bytes, r.cpuRestructured)
}

func (r *request) cpuRestructured() {
	r.lap(phaseRestructure)
	r.k++
	r.stepCPUKernel()
}

// hopEntryDelay is the driver cost to enter hop k: a full driver
// round-trip plus DMA-descriptor programming normally, zero when the
// fused program from the previous hop still holds the DRX unit — the
// resident program chained the follower's descriptors when it loaded, so
// no interrupt is taken and no descriptor is programmed.
func (r *request) hopEntryDelay() sim.Duration {
	if r.hold != nil {
		return 0
	}
	return r.s.driverDelay() + DMASetupLatency
}

// stepHop executes the data motion between stage k and k+1 under the
// system's placement.
func (r *request) stepHop() {
	switch r.s.cfg.Placement {
	case MultiAxl, Integrated:
		r.hopHostIn()
	case Standalone:
		r.hopCardIn()
	case PCIeIntegrated:
		r.hopSwitchIn()
	case BumpInTheWire:
		r.hopBumpIn()
	default:
		r.fail(fmt.Errorf("dmxsys: hop under %v", r.s.cfg.Placement))
	}
}

// hopHostIn: (S1) interrupt; DMA accel → host memory.
func (r *request) hopHostIn() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	s.occupyPath(a, from, pcie.Root, h.InBytes)
	s.Eng.Schedule(r.hopEntryDelay(), func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, from, pcie.Root, "", h.InBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(from, pcie.Root, h.InBytes, r.hopHostArrived)
	})
}

// hopHostArrived: (S2) restructure on the host (CPU or integrated DRX).
func (r *request) hopHostArrived() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeHostDMA, 0, a.accelDev[k], pcie.Root, h.InBytes, r.legBegin)
	r.lap(phaseMovement)
	r.restructureHost(r.hopHostRestructured)
}

// hopHostRestructured: (S3) DMA host → next accelerator; (S4) the next
// kernel fires.
func (r *request) hopHostRestructured() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	r.lap(phaseRestructure)
	s.occupyPath(a, pcie.Root, to, h.OutBytes)
	s.Eng.Schedule(DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, pcie.Root, to, "", h.OutBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(pcie.Root, to, h.OutBytes, r.hopHostDone)
	})
}

func (r *request) hopHostDone() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeHostDMA, 0, pcie.Root, a.accelDev[k+1], h.OutBytes, r.legBegin)
	r.lap(phaseMovement)
	r.nextStage()
}

// hopCardIn: P2P DMA accel → the app's standalone DRX card.
func (r *request) hopCardIn() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	s.occupyPath(a, from, a.sdrxDev, h.InBytes)
	s.Eng.Schedule(r.hopEntryDelay(), func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepRXDMA, from, a.sdrxDev, "", h.InBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(from, a.sdrxDev, h.InBytes, r.hopCardArrived)
	})
}

func (r *request) hopCardArrived() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeP2PDMA, obs.StepRXDMA, a.accelDev[k], a.sdrxDev, h.InBytes, r.legBegin)
	r.lap(phaseMovement)
	r.restructureDRX(r.hopCardRestructured)
}

// hopCardRestructured: P2P from the card to the next accelerator.
func (r *request) hopCardRestructured() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	r.lap(phaseRestructure)
	s.occupyPath(a, a.sdrxDev, to, h.OutBytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, a.sdrxDev, to, "", h.OutBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(a.sdrxDev, to, h.OutBytes, r.hopCardDone)
	})
}

func (r *request) hopCardDone() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeP2PDMA, obs.StepP2PDMA, a.sdrxDev, a.accelDev[k+1], h.OutBytes, r.legBegin)
	r.lap(phaseMovement)
	r.nextStage()
}

// hopSwitchIn: up into the switch, restructure at line rate, down to
// the peer (saves the DRX round trip; Sec. VII-B).
func (r *request) hopSwitchIn() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	drxTrack := "drx." + a.sw
	if l, err := s.Fabric.UpLink(from); err == nil {
		a.occupy(l.Name, sim.BytesAt(h.InBytes, l.Bandwidth))
	}
	s.Eng.Schedule(r.hopEntryDelay(), func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepRXDMA, from, drxTrack, "", h.InBytes)
		r.legBegin = s.Eng.Now()
		arrived := r.guard(r.hopSwitchArrived)
		r.fabricAttempt(from, drxTrack, 1, func() error {
			return s.Fabric.TransferUp(from, h.InBytes, arrived)
		})
	})
}

func (r *request) hopSwitchArrived() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeP2PDMA, obs.StepRXDMA, a.accelDev[k], "drx."+a.sw, h.InBytes, r.legBegin)
	r.lap(phaseMovement)
	r.restructureDRX(r.hopSwitchRestructured)
}

// hopSwitchRestructured: straight down to the peer — no driver round
// trip between the in-switch restructure and the down leg.
func (r *request) hopSwitchRestructured() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	r.lap(phaseRestructure)
	if l, err := s.Fabric.DownLink(to); err == nil {
		a.occupy(l.Name, sim.BytesAt(h.OutBytes, l.Bandwidth))
	}
	s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, "drx."+a.sw, to, "", h.OutBytes)
	r.legBegin = s.Eng.Now()
	done := r.guard(r.hopSwitchDone)
	r.fabricAttempt("drx."+a.sw, to, 1, func() error {
		return s.Fabric.TransferDown(to, h.OutBytes, done)
	})
}

func (r *request) hopSwitchDone() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeP2PDMA, obs.StepP2PDMA, "drx."+a.sw, a.accelDev[k+1], h.OutBytes, r.legBegin)
	r.lap(phaseMovement)
	r.nextStage()
}

// hopBumpIn begins the Fig. 10 inline sequence: ① kernel done
// ② interrupt ③④ local move into the inline DRX's RX queue ⑤–⑦
// restructure into the TX queue ⑧ interrupt ⑨⑩ P2P DMA through the
// fabric to the peer accelerator (its own DRX is a pass-through)
// ⑪ kernel fires. Queue head/tail bookkeeping backpressures if a queue
// fills.
func (r *request) hopBumpIn() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	rx, tx, err := s.hopQueues(a, k)
	if err != nil {
		r.fail(fmt.Errorf("dmxsys: %w", err))
		return
	}
	r.rx, r.tx = rx, tx
	from := a.accelDev[k]
	drxTrack := "drx." + from
	link := pcie.LinkConfig{Gen: s.cfg.Gen, Lanes: s.cfg.AccelLanes}
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.queueAdmit(r.rx, h.InBytes, func() {
			r.rxHeld = h.InBytes
			s.obsInstant(a, obs.TypeQueueDMA, obs.StepRXDMA, from, drxTrack, "", h.InBytes)
			r.legBegin = s.Eng.Now()
			s.localBytes += h.InBytes
			s.Eng.Schedule(sim.BytesAt(h.InBytes, link.Bandwidth()), r.guard(r.hopBumpAtDRX))
		})
	})
}

func (r *request) hopBumpAtDRX() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeQueueDMA, obs.StepRXDMA, a.accelDev[k], "drx."+a.accelDev[k], h.InBytes, r.legBegin)
	r.lap(phaseMovement)
	r.restructureDRX(r.hopBumpRestructured)
}

// hopBumpRestructured: the restructured payload claims TX queue space
// before the RX slot is released.
func (r *request) hopBumpRestructured() {
	h := r.a.pipe.Hops[r.k]
	r.s.queueAdmit(r.tx, h.OutBytes, r.guard(r.hopBumpTXAdmitted))
}

func (r *request) hopBumpTXAdmitted() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	to := a.accelDev[k+1]
	r.txHeld = h.OutBytes
	if r.rx != nil {
		if err := r.rx.Dequeue(h.InBytes); err != nil {
			r.fail(fmt.Errorf("dmxsys: %w", err))
			return
		}
		r.rxHeld = 0
	}
	r.lap(phaseRestructure)
	s.occupyPath(a, from, to, h.OutBytes)
	s.obsInstant(a, obs.TypeTXReady, obs.StepTXReady, "drx."+from, "", "", h.OutBytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		s.obsInstant(a, obs.TypeP2PDMA, obs.StepP2PDMA, from, to, "", h.OutBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(from, to, h.OutBytes, r.hopBumpDone)
	})
}

func (r *request) hopBumpDone() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	from := a.accelDev[k]
	to := a.accelDev[k+1]
	if r.tx != nil {
		if err := r.tx.Dequeue(h.OutBytes); err != nil {
			r.fail(fmt.Errorf("dmxsys: %w", err))
			return
		}
		r.txHeld = 0
	}
	r.obsDMA(obs.TypeP2PDMA, obs.StepP2PDMA, from, to, h.OutBytes, r.legBegin)
	r.lap(phaseMovement)
	r.nextStage()
}

// restructureHost dispatches hop k's restructuring at the host: on the
// shared CPU channels for MultiAxl, on the single integrated DRX
// otherwise.
func (r *request) restructureHost(done func()) {
	s, a, k := r.s, r.a, r.k
	if s.cfg.Placement == Integrated {
		r.restructureDRX(done)
		return
	}
	h := a.pipe.Hops[k]
	s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, h.InBytes)
	ops, bytes := s.restructureWork(h.Kernel)
	s.occupyCPU(a, ops, bytes)
	s.cpuJob(ops, bytes, done)
}

// restructureDRX queues hop k's kernel on the app's DRX unit, handling
// injected faults: a unit inside an outage window degrades the hop to
// the CPU fallback immediately; a transient restructure error is
// retried with backoff until the attempt budget runs out, then
// degrades; a configured stage watchdog degrades a restructure that
// overstays its deadline (e.g. parked behind a retry storm).
func (r *request) restructureDRX(done func()) {
	r.attempt = 1
	r.restructureAttempt(done)
}

func (r *request) restructureAttempt(done func()) {
	s, a, k := r.s, r.a, r.k
	kern := a.pipe.Hops[k].Kernel
	unit := a.drxServer[k].Name()
	if s.hazardous {
		if down, _ := s.inj.DRXDown(unit, s.Eng.Now()); down {
			r.degradeHop()
			return
		}
	}
	s.obsInstant(a, obs.TypeRestructure, obs.StepRestructure,
		unit, "", kern.Name, a.pipe.Hops[k].InBytes)
	switch f := a.fusionAt(k); f.role {
	case fuseLeader:
		r.fusedLeader(f, done)
		return
	case fuseFollower:
		if r.hold != nil {
			r.fusedResume(f, done)
			return
		}
		// No resident program (the leader degraded, or a transient retry
		// released the hold): fall through to the standalone submit of
		// this hop's unfused kernel.
	}
	d, err := s.drxServiceTime(kern)
	if err != nil {
		// Cache warmed in New; reachable only on a mutated config.
		r.fail(fmt.Errorf("dmxsys: %w", err))
		return
	}
	a.occupyServer(a.drxServer[k], d)
	r.arm(unit, r.degradeHop)
	a.drxServer[k].SubmitKeyed(a.id, r.hopKey(), d, r.guard(func() {
		r.disarm()
		if s.hazardous && s.inj.TransientFault(unit) {
			r.retryRestructure(done)
			return
		}
		done()
	}))
}

// fusedLeader submits the fused program's first segment and retains the
// DRX slot when it completes: the merged program stays loaded (resident
// context) while the intermediate accelerator stage runs, and the
// follower hop resumes its second segment without re-arbitrating.
func (r *request) fusedLeader(f hopFusion, done func()) {
	s, a, k := r.s, r.a, r.k
	unit := a.drxServer[k].Name()
	a.occupyServer(a.drxServer[k], f.part)
	r.arm(unit, r.degradeHop)
	// The hold callback bypasses guard: a guarded drop (watchdog fired,
	// request retired) would leak the retained slot and wedge the unit,
	// so staleness must release it explicitly.
	e := r.epoch
	a.drxServer[k].SubmitKeyedHold(a.id, r.hopKey(), f.part, func(h *sim.Hold) {
		if r.done == nil || r.epoch != e {
			h.Release()
			return
		}
		r.disarm()
		if s.hazardous && s.inj.TransientFault(unit) {
			// The fused program faulted in its first half: drop residency
			// and rejoin the standard transient-retry path (the retry
			// reloads and resubmits the program as a leader again).
			h.Release()
			r.retryRestructure(done)
			return
		}
		r.hold = h
		r.holdAt = s.Eng.Now()
		done()
	})
}

// fusedResume runs the fused program's second segment on the slot the
// leader hop retained. The unit was held (occupied but idle) across the
// gap; the request charges that residency plus the segment, which is
// exactly what the station's slot could not serve others for.
func (r *request) fusedResume(f hopFusion, done func()) {
	s, a, k := r.s, r.a, r.k
	unit := a.drxServer[k].Name()
	hold := r.hold
	r.hold = nil
	a.occupyServer(a.drxServer[k], s.Eng.Now().Sub(r.holdAt)+f.part)
	r.arm(unit, r.degradeHop)
	hold.Resume(f.part, r.guard(func() {
		r.disarm()
		if s.hazardous && s.inj.TransientFault(unit) {
			// The resident context is spent; the retry resubmits this
			// hop's unfused kernel standalone.
			r.retryRestructure(done)
			return
		}
		done()
	}))
}

// restructureContinuation is the step that follows hop k's successful
// DRX restructuring under the current placement — the continuation a
// request peeled out of a failing batch resumes with once its solo
// retry of the restructure succeeds.
func (r *request) restructureContinuation() func() {
	switch r.s.cfg.Placement {
	case Integrated:
		return r.hopHostRestructured
	case Standalone:
		return r.hopCardRestructured
	case PCIeIntegrated:
		return r.hopSwitchRestructured
	case BumpInTheWire:
		return r.hopBumpRestructured
	}
	return func() { r.fail(fmt.Errorf("dmxsys: restructure under %v", r.s.cfg.Placement)) }
}

// retryRestructure handles a transient restructure fault: re-attempt
// after backoff while the budget lasts, then fall back to the CPU path.
func (r *request) retryRestructure(done func()) {
	s := r.s
	if r.attempt < s.cfg.Retry.Attempts() {
		r.attempt++
		r.retries++
		s.obsInstant(r.a, obs.TypeRetry, 0, r.track, "", r.a.drxServer[r.k].Name(), int64(r.attempt))
		s.Eng.Schedule(s.inj.RetryBackoff(s.cfg.Retry, r.attempt), r.guard(func() {
			r.restructureAttempt(done)
		}))
		return
	}
	r.degradeHop()
}

// degradeHop completes hop k via CPU-mediated restructuring after its
// DRX path proved unavailable: the driver re-fetches the producer
// accelerator's still-valid output buffer over the host bridge,
// restructures in software (restructure.Run semantics — bit-identical
// to the DRX result), and ships it to the consumer. This is the
// paper's Multi-Axl baseline path grafted onto one hop: the request
// completes slower instead of failing.
func (r *request) degradeHop() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	if r.outcome == traffic.OutcomeClean {
		r.outcome = traffic.OutcomeDegraded
	}
	r.releaseQueues()
	r.releaseHold()
	s.obsInstant(a, obs.TypeDegrade, 0, r.track, "", a.drxServer[k].Name(), h.InBytes)
	// Time burned on the failed DRX attempts counts as restructuring.
	r.lap(phaseRestructure)
	if s.cfg.Placement == Integrated {
		// The hop's payload is already in host memory (hopHostIn
		// brought it there); restructure in software and rejoin the
		// normal host-mediated continuation.
		ops, bytes := s.restructureWork(h.Kernel)
		s.occupyCPU(a, ops, bytes)
		s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, h.InBytes)
		s.cpuJob(ops, bytes, r.guard(r.hopHostRestructured))
		return
	}
	from := a.accelDev[k]
	s.occupyPath(a, from, pcie.Root, h.InBytes)
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, r.guard(func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, from, pcie.Root, "", h.InBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(from, pcie.Root, h.InBytes, r.degradeAtHost)
	}))
}

func (r *request) degradeAtHost() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeHostDMA, 0, a.accelDev[k], pcie.Root, h.InBytes, r.legBegin)
	r.lap(phaseMovement)
	ops, bytes := s.restructureWork(h.Kernel)
	s.occupyCPU(a, ops, bytes)
	s.obsInstant(a, obs.TypeHostRestructure, 0, pcie.Root, "", h.Kernel.Name, h.InBytes)
	s.cpuJob(ops, bytes, r.guard(r.degradeRestructured))
}

func (r *request) degradeRestructured() {
	s, a, k := r.s, r.a, r.k
	h := a.pipe.Hops[k]
	to := a.accelDev[k+1]
	r.lap(phaseRestructure)
	s.occupyPath(a, pcie.Root, to, h.OutBytes)
	s.Eng.Schedule(DMASetupLatency, r.guard(func() {
		s.obsInstant(a, obs.TypeHostDMA, 0, pcie.Root, to, "", h.OutBytes)
		r.legBegin = s.Eng.Now()
		r.transfer(pcie.Root, to, h.OutBytes, r.degradeDone)
	}))
}

func (r *request) degradeDone() {
	a, k := r.a, r.k
	h := a.pipe.Hops[k]
	r.obsDMA(obs.TypeHostDMA, 0, pcie.Root, a.accelDev[k+1], h.OutBytes, r.legBegin)
	r.lap(phaseMovement)
	r.nextStage()
}

// drive is the shared load driver under Run, RunStream, and RunLoad:
// app i's request j is admitted at i·StartStagger + offsets(i)[j], the
// engine runs to completion, and every retirement invokes onDone.
// deadline is app i's per-request latency budget (nil = none). The
// first flow error (or a deadlocked request train) is returned after
// the drain.
func (s *System) drive(offsets func(app int) []sim.Duration, deadline func(app int) sim.Duration, onDone func(app, req int, r *request)) error {
	remaining := 0
	for i, a := range s.apps {
		i, a := i, a
		start := sim.Duration(i) * s.cfg.StartStagger
		dl := sim.Duration(0)
		if deadline != nil {
			dl = deadline(i)
		}
		for j, off := range offsets(i) {
			j := j
			remaining++
			s.Eng.Schedule(start+off, func() {
				s.admit(a, dl, func(r *request) {
					remaining--
					onDone(i, j, r)
				})
			})
		}
	}
	s.Eng.Run()
	if s.err != nil {
		return s.err
	}
	if remaining != 0 {
		return fmt.Errorf("dmxsys: %d requests never completed (deadlocked flow)", remaining)
	}
	return nil
}
