package dmxsys

import (
	"dmx/internal/obs"
	"dmx/internal/sim"
	"dmx/internal/traffic"
)

// Load-generated execution: RunLoad drives the system with an explicit
// arrival process (internal/traffic) instead of RunStream's closed-loop
// burst. Open-loop and Poisson arrivals admit requests on their own
// clock regardless of completions, so offered load above the pipeline's
// capacity builds queueing delay — the latency-vs-offered-load curves
// of the serving experiments.

// RunLoad issues spec.Requests requests per application under the
// spec's arrival process and simulates to completion. The system must
// be freshly built (Run, RunStream, and RunLoad consume the engine).
func (s *System) RunLoad(spec traffic.Spec) (traffic.LoadReport, error) {
	if err := spec.Validate(); err != nil {
		return traffic.LoadReport{}, err
	}
	rep := traffic.LoadReport{Arrival: spec.Arrival, Seed: spec.Seed}
	rep.PerApp = make([]traffic.AppLoad, len(s.apps))
	firsts := make([]sim.Time, len(s.apps))
	lasts := make([]sim.Time, len(s.apps))
	for i, a := range s.apps {
		al := &rep.PerApp[i]
		al.App = a.pipe.Name
		al.Requests = spec.Requests
		if spec.Arrival != traffic.ClosedLoop {
			al.Offered = spec.Rate
		}
	}
	arrivals := make([][]sim.Duration, len(s.apps))
	for i := range s.apps {
		arrivals[i] = spec.Arrivals(i)
	}
	// Admission control is a serving-layer behavior: only RunLoad has a
	// rejection channel in its report, so the limit gates here and not
	// under Run/RunStream.
	s.admitting = true
	err := s.drive(func(app int) []sim.Duration { return arrivals[app] }, spec.DeadlineFor,
		func(app, req int, r *request) {
			now := s.Eng.Now()
			al := &rep.PerApp[app]
			al.Retries += r.retries
			al.Timeouts += r.timeouts
			if r.outcome == traffic.OutcomeRejected {
				// Rejected requests never executed: no latency sample,
				// no completion.
				al.Rejected++
				return
			}
			if r.outcome == traffic.OutcomeAbandoned {
				// Abandoned requests retire without completing: no
				// latency sample, no completion, no rate contribution.
				al.Abandoned++
				return
			}
			lat := obs.Duration(now.Sub(r.start))
			al.Latency.Add(lat)
			if r.outcome == traffic.OutcomeDegraded {
				al.Degraded++
				al.DegradedLat.Add(lat)
			} else {
				al.CleanLat.Add(lat)
			}
			if r.deadline != 0 && now > r.deadline {
				al.Missed++
			}
			if al.Completed == 0 || now < firsts[app] {
				firsts[app] = now
			}
			if now > lasts[app] {
				lasts[app] = now
			}
			al.Completed++
		})
	if err != nil {
		return traffic.LoadReport{}, err
	}
	rep.Makespan = sim.Duration(s.Eng.Now())
	for i := range rep.PerApp {
		al := &rep.PerApp[i]
		if span := lasts[i].Sub(firsts[i]).Seconds(); al.Completed > 1 && span > 0 {
			al.Achieved = float64(al.Completed-1) / span
		}
		al.Batches = s.apps[i].nbatches
		al.BatchedRequests = s.apps[i].batchedReqs
	}
	rep.Finalize()
	return rep, nil
}

// Retired summarizes one request's retirement for an external driver —
// exactly the fields RunLoad reads off a retiring *request. The caller
// owns the clock (the shared engine) and computes latency itself.
type Retired struct {
	Outcome  traffic.Outcome
	Retries  int
	Timeouts int
}

// Admit injects one request of app into the serving machine at the
// current engine time and calls done when it retires. Admission
// control, batching, scheduling, and fault recovery behave exactly as
// under RunLoad; this is the cluster front door, and with an empty host
// prefix a fleet of one driving Admit per arrival reproduces RunLoad's
// engine timeline event for event.
func (s *System) Admit(app int, deadline sim.Duration, done func(Retired)) {
	s.admitting = true
	s.admit(s.apps[app], deadline, func(r *request) {
		done(Retired{Outcome: r.outcome, Retries: r.retries, Timeouts: r.timeouts})
	})
}

// BatchStats reports how many coalesced dispatch groups the app's
// requests rode and how many requests they carried.
func (s *System) BatchStats(app int) (batches, requests int) {
	a := s.apps[app]
	return a.nbatches, a.batchedReqs
}

// Apps reports how many applications the system hosts.
func (s *System) Apps() int { return len(s.apps) }

// Err surfaces the first flow error after the engine drains (nil on a
// clean run). External drivers sharing the engine check it where
// RunLoad would have.
func (s *System) Err() error { return s.err }
