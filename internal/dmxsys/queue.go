package dmxsys

import (
	"fmt"

	"dmx/internal/sim"
)

// Data-queue provisioning constants from Sec. V: each DRX reserves 8 GB
// of its device memory for data queues, statically partitioned into one
// RX/TX pair of 100 MB queues per peer, which supports up to 40
// accelerators per server.
const (
	// QueueMemoryBytes is the device memory a DRX provisions for queues.
	QueueMemoryBytes = 8 << 30
	// QueuePairBytes is the size of one RX or TX data queue.
	QueuePairBytes = 100 << 20
	// MaxPeers is the accelerator count the provisioning supports
	// (8 GB / (2 × 100 MB) = 40, the paper's figure).
	MaxPeers = QueueMemoryBytes / (2 * QueuePairBytes)
)

// DataQueue is one direction of a DRX peer queue: a ring of buffers
// tracked by head/tail byte offsets, as the DRX driver maintains them.
type DataQueue struct {
	name     string
	capacity int64
	head     int64 // total bytes ever dequeued
	tail     int64 // total bytes ever enqueued
	// HighWater records the maximum occupancy reached, for reports.
	HighWater int64
}

// Used reports the bytes currently enqueued.
func (q *DataQueue) Used() int64 { return q.tail - q.head }

// Free reports the remaining capacity.
func (q *DataQueue) Free() int64 { return q.capacity - q.Used() }

// Enqueue reserves space for an incoming payload (the point-to-point DMA
// target). It fails when the queue cannot hold the payload — the
// backpressure condition a driver must handle.
func (q *DataQueue) Enqueue(n int64) error {
	if n < 0 {
		return fmt.Errorf("dmxsys: %s: negative payload %d", q.name, n)
	}
	if n > q.Free() {
		return fmt.Errorf("dmxsys: %s: queue full (%d used of %d, payload %d)",
			q.name, q.Used(), q.capacity, n)
	}
	q.tail += n
	if u := q.Used(); u > q.HighWater {
		q.HighWater = u
	}
	return nil
}

// Dequeue releases a consumed payload.
func (q *DataQueue) Dequeue(n int64) error {
	if n < 0 || n > q.Used() {
		return fmt.Errorf("dmxsys: %s: dequeue %d with %d used", q.name, n, q.Used())
	}
	q.head += n
	return nil
}

// QueueSet is one DRX's statically partitioned queue memory: an RX/TX
// pair per peer, allocated at enumeration time.
type QueueSet struct {
	owner string
	rx    map[string]*DataQueue
	tx    map[string]*DataQueue
}

// NewQueueSet partitions a DRX's queue memory across the given peers.
func NewQueueSet(owner string, peers []string) (*QueueSet, error) {
	if len(peers) > MaxPeers {
		return nil, fmt.Errorf("dmxsys: %s: %d peers exceed the %d the 8 GB partition supports",
			owner, len(peers), MaxPeers)
	}
	qs := &QueueSet{
		owner: owner,
		rx:    make(map[string]*DataQueue, len(peers)),
		tx:    make(map[string]*DataQueue, len(peers)),
	}
	for _, p := range peers {
		qs.rx[p] = &DataQueue{name: owner + ".rx." + p, capacity: QueuePairBytes}
		qs.tx[p] = &DataQueue{name: owner + ".tx." + p, capacity: QueuePairBytes}
	}
	return qs, nil
}

// RX returns the receive queue for a peer.
func (qs *QueueSet) RX(peer string) (*DataQueue, error) {
	q, ok := qs.rx[peer]
	if !ok {
		return nil, fmt.Errorf("dmxsys: %s: no RX queue for peer %q", qs.owner, peer)
	}
	return q, nil
}

// TX returns the transmit queue for a peer.
func (qs *QueueSet) TX(peer string) (*DataQueue, error) {
	q, ok := qs.tx[peer]
	if !ok {
		return nil, fmt.Errorf("dmxsys: %s: no TX queue for peer %q", qs.owner, peer)
	}
	return q, nil
}

// hopQueues is the bump-in-the-wire flow's use of the queue machinery:
// stage k's output lands in DRX_k's RX queue for the downstream peer
// (Fig. 10 step ④), is restructured into the TX queue (step ⑦), and the
// TX entry releases when the P2P DMA to the peer completes (step ⑩).
func (s *System) hopQueues(a *appInstance, k int) (*DataQueue, *DataQueue, error) {
	qs := s.queueSets["drx."+a.accelDev[k]]
	if qs == nil {
		return nil, nil, nil // placement without per-accelerator queues
	}
	peer := a.accelDev[k+1]
	rx, err := qs.RX(peer)
	if err != nil {
		return nil, nil, err
	}
	tx, err := qs.TX(peer)
	if err != nil {
		return nil, nil, err
	}
	return rx, tx, nil
}

// queueAdmit reserves RX space for an arriving payload, retrying after a
// backoff if the queue is momentarily full (payloads far larger than
// 100 MB are rejected during pipeline validation, so waiting always
// terminates).
func (s *System) queueAdmit(q *DataQueue, n int64, then func()) {
	if q == nil {
		then()
		return
	}
	if err := q.Enqueue(n); err == nil {
		then()
		return
	}
	s.Eng.Schedule(100*sim.Microsecond, func() { s.queueAdmit(q, n, then) })
}
