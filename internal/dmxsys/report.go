package dmxsys

import (
	"fmt"
	"strings"

	"dmx/internal/obs"
	"dmx/internal/sim"
)

// AppReport is one application's measured runtime decomposition — the
// three components of the paper's Fig. 12 breakdown.
type AppReport struct {
	App             string
	KernelTime      sim.Duration
	RestructureTime sim.Duration
	MovementTime    sim.Duration
	Total           sim.Duration

	// Bottleneck is the largest per-request occupancy across the shared
	// resources the request path uses (each accelerator station, DRX
	// unit, fabric link, and host channel), measured during the run. Its
	// inverse is the app's steady-state capacity: requests pipeline
	// through distinct resources, so the slowest single resource gates
	// throughput. BottleneckResource names it.
	Bottleneck         sim.Duration
	BottleneckResource string

	// Fault accounting (all zero on fault-free runs): total re-attempts
	// and watchdog firings across the app's requests, plus how many
	// requests completed degraded (CPU-fallback restructuring) or
	// retired abandoned.
	Retries   int
	Timeouts  int
	Degraded  int
	Abandoned int
}

// StageMax reports the slowest of the app's three logical pipeline
// stages (first kernel, data motion, second kernel approximated by the
// aggregate components), which bounds steady-state throughput (Sec.
// VII-A: "the throughput of an application is determined by the latency
// of the slowest stage").
func (r AppReport) StageMax(nKernels int) sim.Duration {
	if nKernels < 1 {
		nKernels = 1
	}
	perKernel := r.KernelTime / sim.Duration(nKernels)
	motion := r.RestructureTime + r.MovementTime
	nHops := nKernels - 1
	if nHops >= 1 {
		motion /= sim.Duration(nHops)
	}
	if perKernel > motion {
		return perKernel
	}
	return motion
}

// Throughput reports requests/second at steady state for the app: the
// inverse of the measured per-request bottleneck occupancy when the run
// recorded one, else the coarse stage-analysis estimate (StageMax) as a
// fallback for hand-built reports.
func (r AppReport) Throughput(nKernels int) float64 {
	if r.Bottleneck > 0 {
		return 1 / r.Bottleneck.Seconds()
	}
	sm := r.StageMax(nKernels)
	if sm <= 0 {
		return 0
	}
	return 1 / sm.Seconds()
}

// RunReport aggregates one system run.
type RunReport struct {
	Placement       Placement
	Apps            []AppReport
	Makespan        sim.Duration
	EnergyJ         float64
	EnergyBreakdown map[string]float64
	Switches        int
	DRXCount        int
	// Metrics is the observability aggregate (per-device utilization,
	// per-stage latency histograms, bytes moved), populated when the run
	// was traced (Config.Obs or Config.Trace set); nil otherwise.
	Metrics *obs.Metrics
}

// MeanTotal reports the arithmetic mean end-to-end latency across apps.
func (r RunReport) MeanTotal() sim.Duration {
	if len(r.Apps) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, a := range r.Apps {
		sum += a.Total
	}
	return sum / sim.Duration(len(r.Apps))
}

// ComponentShares reports the average runtime fractions (kernel,
// restructure, movement) across apps — the Fig. 3(a)/Fig. 12 bars.
func (r RunReport) ComponentShares() (kernel, restructure, movement float64) {
	var k, re, mv, tot float64
	for _, a := range r.Apps {
		k += a.KernelTime.Seconds()
		re += a.RestructureTime.Seconds()
		mv += a.MovementTime.Seconds()
		tot += a.Total.Seconds()
	}
	if tot == 0 {
		return 0, 0, 0
	}
	return k / tot, re / tot, mv / tot
}

// String renders a compact multi-line summary.
func (r RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %d apps, makespan %v, %.1f J, %d switches, %d DRX\n",
		r.Placement, len(r.Apps), r.Makespan, r.EnergyJ, r.Switches, r.DRXCount)
	k, re, mv := r.ComponentShares()
	fmt.Fprintf(&b, "  shares: kernel %.1f%% restructure %.1f%% movement %.1f%%",
		100*k, 100*re, 100*mv)
	return b.String()
}

// Run launches one request per app at its stagger instant and simulates
// to completion, returning the aggregated report. Flow errors (invalid
// fabric routes, queue accounting violations) are returned, not
// panicked.
func (s *System) Run() (RunReport, error) {
	one := []sim.Duration{0}
	err := s.drive(func(int) []sim.Duration { return one }, nil, func(int, int, *request) {})
	if err != nil {
		return RunReport{}, err
	}
	rep := RunReport{
		Placement: s.cfg.Placement,
		Makespan:  sim.Duration(s.Eng.Now()),
		Switches:  s.nSwitches,
		DRXCount:  s.nDRX,
	}
	for _, a := range s.apps {
		ar := a.rep
		ar.Bottleneck, ar.BottleneckResource = a.bottleneck()
		rep.Apps = append(rep.Apps, ar)
	}
	rep.EnergyJ, rep.EnergyBreakdown = s.energyReport(rep.Makespan)
	if s.rec != nil {
		rep.Metrics = obs.Aggregate(s.rec.Events(), obs.Duration(rep.Makespan))
	}
	return rep, nil
}
