package dmxsys_test

import (
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// servingBench drives one full RunLoad over the first test-scale
// benchmark with the given config mutation. Building the system is
// inside the timed loop on purpose: the serving benchmarks gate
// allocs/op end to end (construction + drive + report), the regime the
// batch-accumulator steady state must not regress.
func servingBench(b *testing.B, mut func(*dmxsys.Config)) {
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		b.Fatal(err)
	}
	spec := traffic.Spec{
		Arrival:  traffic.Poisson,
		Rate:     30000,
		Requests: 64,
		Seed:     5,
	}
	run := func() {
		cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
		if mut != nil {
			mut(&cfg)
		}
		s, err := dmxsys.New(cfg, []*dmxsys.Pipeline{benches[0].Pipeline})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunLoad(spec); err != nil {
			b.Fatal(err)
		}
	}
	// One cold pass outside the timer warms the process-wide DRX
	// timing cache and the event/shell pools, so allocs/op measures the
	// steady state the CI snapshot gate can hold exactly.
	run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkRunLoadUnbatched is the per-request serving baseline: every
// arrival walks the state machine alone.
func BenchmarkRunLoadUnbatched(b *testing.B) {
	servingBench(b, nil)
}

// BenchmarkRunLoadBatched runs the same load through the continuous
// batching accumulator: arrivals coalesce inside a 200 µs window and
// walk the pipeline as pooled batch shells. Allocs/op must stay in the
// same regime as the unbatched path — the accumulator and shells
// recycle, they do not grow with batch count.
func BenchmarkRunLoadBatched(b *testing.B) {
	servingBench(b, func(c *dmxsys.Config) {
		c.BatchWindow = 200 * sim.Microsecond
		c.BatchMax = 8
	})
}

// BenchmarkRunLoadBatchedEDF adds the keyed discipline on top of
// batching: contended stations pop earliest-deadline-first from the
// keyed heap instead of shifting a FIFO.
func BenchmarkRunLoadBatchedEDF(b *testing.B) {
	servingBench(b, func(c *dmxsys.Config) {
		c.BatchWindow = 200 * sim.Microsecond
		c.BatchMax = 8
		c.Sched = dmxsys.SchedEDF
	})
}
