package dmxsys

import (
	"fmt"

	"dmx/internal/sim"
)

// Streamed execution: Sec. VII-A's throughput experiments assume
// "continuous arrival of requests for each application". RunStream
// issues a train of back-to-back requests per application; requests
// pipeline naturally through the accelerator servers, DRX units, links,
// and host channels, and the measured steady-state rate validates the
// stage-analysis throughput of AppReport.Throughput.

// StreamReport summarizes one streamed run.
type StreamReport struct {
	Placement Placement
	PerApp    []AppStream
	Makespan  sim.Duration
}

// AppStream is one application's streamed measurement.
type AppStream struct {
	App      string
	Requests int
	// First and Last are the completion times of the first and final
	// requests; Throughput is the steady-state rate between them.
	First, Last sim.Time
	Throughput  float64 // requests/second
}

// RunStream issues `requests` back-to-back requests per application and
// simulates to completion. The system must be freshly built (Run and
// RunStream consume the engine).
func (s *System) RunStream(requests int) StreamReport {
	if requests < 2 {
		panic("dmxsys: RunStream needs at least 2 requests to measure a rate")
	}
	completions := make([][]sim.Time, len(s.apps))
	remaining := len(s.apps) * requests
	for i, a := range s.apps {
		i, a := i, a
		start := sim.Duration(i) * s.cfg.StartStagger
		for r := 0; r < requests; r++ {
			s.Eng.Schedule(start, func() {
				s.startApp(a, func() {
					completions[i] = append(completions[i], s.Eng.Now())
					remaining--
				})
			})
		}
	}
	s.Eng.Run()
	if remaining != 0 {
		panic(fmt.Sprintf("dmxsys: %d streamed requests never completed", remaining))
	}
	rep := StreamReport{
		Placement: s.cfg.Placement,
		Makespan:  sim.Duration(s.Eng.Now()),
	}
	for i, a := range s.apps {
		cs := completions[i]
		first, last := cs[0], cs[0]
		for _, c := range cs {
			if c < first {
				first = c
			}
			if c > last {
				last = c
			}
		}
		as := AppStream{App: a.pipe.Name, Requests: requests, First: first, Last: last}
		if span := last.Sub(first).Seconds(); span > 0 {
			as.Throughput = float64(requests-1) / span
		}
		rep.PerApp = append(rep.PerApp, as)
	}
	return rep
}
