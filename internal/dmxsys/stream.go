package dmxsys

import (
	"fmt"

	"dmx/internal/sim"
)

// Streamed execution: Sec. VII-A's throughput experiments assume
// "continuous arrival of requests for each application". RunStream
// issues a train of back-to-back requests per application; requests
// pipeline naturally through the accelerator servers, DRX units, links,
// and host channels, and the measured steady-state rate validates the
// stage-analysis throughput of AppReport.Throughput.

// StreamReport summarizes one streamed run.
type StreamReport struct {
	Placement Placement
	PerApp    []AppStream
	Makespan  sim.Duration
}

// AppStream is one application's streamed measurement.
type AppStream struct {
	App      string
	Requests int
	// First and Last are the completion times of the first and final
	// requests; Throughput is the steady-state rate between them.
	First, Last sim.Time
	Throughput  float64 // requests/second
}

// RunStream issues `requests` back-to-back requests per application and
// simulates to completion. The system must be freshly built (Run,
// RunStream, and RunLoad consume the engine).
func (s *System) RunStream(requests int) (StreamReport, error) {
	if requests < 2 {
		return StreamReport{}, fmt.Errorf("dmxsys: RunStream needs at least 2 requests to measure a rate (got %d)", requests)
	}
	// A closed-loop burst: every request of app i is admitted at the
	// app's stagger instant and the pipeline drains them back to back.
	offsets := make([]sim.Duration, requests)
	completions := make([][]sim.Time, len(s.apps))
	err := s.drive(func(int) []sim.Duration { return offsets }, nil, func(app, req int, r *request) {
		completions[app] = append(completions[app], s.Eng.Now())
	})
	if err != nil {
		return StreamReport{}, err
	}
	rep := StreamReport{
		Placement: s.cfg.Placement,
		Makespan:  sim.Duration(s.Eng.Now()),
	}
	for i, a := range s.apps {
		cs := completions[i]
		first, last := cs[0], cs[0]
		for _, c := range cs {
			if c < first {
				first = c
			}
			if c > last {
				last = c
			}
		}
		as := AppStream{App: a.pipe.Name, Requests: requests, First: first, Last: last}
		if span := last.Sub(first).Seconds(); span > 0 {
			as.Throughput = float64(requests-1) / span
		}
		rep.PerApp = append(rep.PerApp, as)
	}
	return rep, nil
}
