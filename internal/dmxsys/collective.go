package dmxsys

import (
	"fmt"

	"dmx/internal/pcie"
	"dmx/internal/restructure"
	"dmx/internal/sim"
)

// Collective latency experiments (Fig. 17): broadcast (one-to-many) and
// all-reduce (many-to-one reduction + all-gather) across N accelerators,
// compared between the Multi-Axl baseline (CPU-mediated) and DMX with
// bump-in-the-wire DRXs (Sec. V, "One-to-many and many-to-one data
// movement").

// CollectiveConfig parameterizes one collective run.
type CollectiveConfig struct {
	// Accels is the endpoint count (4–32 in Fig. 17).
	Accels int
	// Bytes is the per-endpoint payload (float32 vectors).
	Bytes int64
	// Reduce selects all-reduce semantics: whoever gathers partials also
	// sums them (a SumReduce restructuring kernel sized to the fan-in).
	Reduce bool
	// UseDMX selects bump-in-the-wire DRX (true) or the CPU baseline.
	UseDMX bool
	// System build parameters.
	Sys Config
}

// CollectiveSystem builds a fabric with n accelerators (bump-in-the-wire
// DRXs when DMX) for collective experiments.
type CollectiveSystem struct {
	sys  *System
	cfg  CollectiveConfig
	devs []string
}

// NewCollective assembles the system.
func NewCollective(cfg CollectiveConfig) (*CollectiveSystem, error) {
	if cfg.Accels < 2 {
		return nil, fmt.Errorf("dmxsys: collective needs ≥2 accelerators, got %d", cfg.Accels)
	}
	if cfg.Bytes <= 0 {
		return nil, fmt.Errorf("dmxsys: collective payload %d", cfg.Bytes)
	}
	if err := cfg.Sys.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	s := &System{
		Eng:     eng,
		Fabric:  pcie.New(eng),
		cfg:     cfg.Sys,
		servers: make(map[string]*sim.Server),
		// A minimal plan shell: collective timing resolves kernels
		// through the process-wide cache.
		plan: &Plan{cfg: cfg.Sys, drxTimes: make(map[string]sim.Duration)},
	}
	m := cfg.Sys.CPU
	opsPerSec := float64(m.Cores) * m.FreqHz * float64(m.SIMDLanes) * m.IssueEff
	s.cpuCompute = sim.NewChannel(eng, "cpu.compute", opsPerSec)
	s.cpuMem = sim.NewChannel(eng, "cpu.mem", m.MemBWBytes)

	accelLink := pcie.LinkConfig{Gen: cfg.Sys.Gen, Lanes: cfg.Sys.AccelLanes}
	uplink := pcie.LinkConfig{Gen: cfg.Sys.Gen, Lanes: cfg.Sys.UplinkLanes}
	cs := &CollectiveSystem{sys: s, cfg: cfg}
	slotsLeft := 0
	curSwitch := ""
	for i := 0; i < cfg.Accels; i++ {
		if slotsLeft == 0 {
			curSwitch = fmt.Sprintf("sw%d", s.nSwitches)
			if err := s.Fabric.AddSwitch(curSwitch, uplink); err != nil {
				return nil, err
			}
			s.nSwitches++
			slotsLeft = cfg.Sys.SlotsPerSwitch
		}
		dev := fmt.Sprintf("a%d", i)
		if err := s.Fabric.AddDevice(dev, curSwitch, accelLink); err != nil {
			return nil, err
		}
		slotsLeft--
		cs.devs = append(cs.devs, dev)
		if cfg.UseDMX {
			name := "drx." + dev
			s.servers[name] = sim.NewServer(eng, name, 1)
			s.nDRX++
		}
	}
	return cs, nil
}

// reduceDelay models summing fanIn partial vectors at the gathering
// site: a SumReduce restructuring kernel on the DRX, or the equivalent
// software reduction on the host channels. A no-op unless Reduce is set
// and fanIn ≥ 2.
func (cs *CollectiveSystem) reduceDelay(onDRX bool, fanIn int, done func()) {
	s := cs.sys
	if !cs.cfg.Reduce || fanIn < 2 {
		s.Eng.Schedule(0, done)
		return
	}
	k := restructure.SumReduce(fanIn, int(cs.cfg.Bytes/4))
	if onDRX {
		d, err := s.drxServiceTime(k)
		if err != nil {
			s.fail(fmt.Errorf("dmxsys: collective DRX timing: %w", err))
			return
		}
		s.Eng.Schedule(d, done)
		return
	}
	ops, bytes := s.restructureWork(k)
	s.cpuJob(ops, bytes, done)
}

// switchGroups partitions the accelerators by switch, preserving order;
// the first device of each group acts as the relay for hierarchical
// (tree) collectives — the DRX-to-DRX forwarding Sec. V's multicast
// support enables.
func (cs *CollectiveSystem) switchGroups() [][]string {
	var groups [][]string
	index := make(map[string]int)
	for _, dev := range cs.devs {
		sw, _ := cs.sys.Fabric.SwitchOf(dev)
		gi, ok := index[sw]
		if !ok {
			gi = len(groups)
			index[sw] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], dev)
	}
	return groups
}

// fanout sends the payload from src to each destination with
// back-to-back DMA setups; each completion invokes done once.
func (cs *CollectiveSystem) fanout(src string, dsts []string, done func()) {
	s := cs.sys
	for i, dst := range dsts {
		dst := dst
		s.Eng.Schedule(DMASetupLatency*sim.Duration(i+1), func() {
			s.transferOrFail(src, dst, cs.cfg.Bytes, done)
		})
	}
}

// transferOrFail starts a fabric DMA, recording a flow error on an
// invalid route (surfaced by Broadcast/AllReduce after the drain).
func (s *System) transferOrFail(from, to string, n int64, done func()) {
	if err := s.Fabric.Transfer(from, to, n, done); err != nil {
		s.fail(fmt.Errorf("dmxsys: transfer %s→%s: %w", from, to, err))
	}
}

// Broadcast runs a one-to-many transfer from accelerator 0 to all others
// and returns the completion latency.
func (cs *CollectiveSystem) Broadcast() (sim.Duration, error) {
	s := cs.sys
	n := len(cs.devs)
	remaining := n - 1
	var finished sim.Time
	complete := func() {
		remaining--
		if remaining == 0 {
			finished = s.Eng.Now()
		}
	}
	if cs.cfg.UseDMX {
		// Hierarchical multicast over bump-in-the-wire DRXs: the source
		// restructures once, forwards one copy to a relay DRX on every
		// remote switch, and each relay re-broadcasts under its own
		// switch — cross-switch uplinks carry one payload per switch
		// instead of one per destination.
		groups := cs.switchGroups()
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			func(after func()) { after() }(func() {
				for _, group := range groups {
					group := group
					if group[0] == cs.devs[0] {
						// Source's own switch: direct local fanout.
						cs.fanout(cs.devs[0], group[1:], complete)
						continue
					}
					// Remote switch: relay receives, then re-broadcasts.
					relay := group[0]
					s.Eng.Schedule(DMASetupLatency, func() {
						s.transferOrFail(cs.devs[0], relay, cs.cfg.Bytes, func() {
							complete()
							cs.fanout(relay, group[1:], complete)
						})
					})
				}
			})
		})
	} else {
		// Baseline (Sec. VII-C): source → CPU memory, restructure on the
		// host, then for each destination the driver memcpys the payload
		// into a DMA buffer and initiates the transfer, sequentially.
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			s.transferOrFail(cs.devs[0], pcie.Root, cs.cfg.Bytes, func() {
				func(after func()) { after() }(func() {
					var next func(i int)
					next = func(i int) {
						if i >= n {
							return
						}
						s.cpuJob(1, 2*cs.cfg.Bytes, func() { // driver buffer copy
							s.Eng.Schedule(DMASetupLatency, func() {
								s.transferOrFail(pcie.Root, cs.devs[i], cs.cfg.Bytes, func() {
									s.Eng.Schedule(s.driverDelay(), func() {
										complete()
										next(i + 1)
									})
								})
							})
						})
					}
					next(1)
				})
			})
		})
	}
	s.Eng.Run()
	if s.err != nil {
		return 0, s.err
	}
	if remaining != 0 {
		return 0, fmt.Errorf("dmxsys: broadcast never completed (%d transfers pending)", remaining)
	}
	return sim.Duration(finished), nil
}

// AllReduce runs scatter-reduce + all-gather across the accelerators and
// returns the completion latency.
func (cs *CollectiveSystem) AllReduce() (sim.Duration, error) {
	s := cs.sys
	n := len(cs.devs)
	var finished sim.Time
	if cs.cfg.UseDMX {
		// Hierarchical reduction: each switch's members send partials to
		// the local relay DRX, which reduces; relays forward their
		// partials to the root relay for the final reduction; the result
		// multicasts back through the same tree.
		groups := cs.switchGroups()
		rootRelay := cs.devs[0]
		arrivedAtRoot := 0
		gathered := 0
		complete := func() {
			gathered++
			if gathered == n-1 {
				finished = s.Eng.Now()
			}
		}
		broadcastResult := func() {
			for _, group := range groups {
				group := group
				if group[0] == rootRelay {
					cs.fanout(rootRelay, group[1:], complete)
					continue
				}
				relay := group[0]
				s.Eng.Schedule(DMASetupLatency, func() {
					s.transferOrFail(rootRelay, relay, cs.cfg.Bytes, func() {
						complete()
						cs.fanout(relay, group[1:], complete)
					})
				})
			}
		}
		rootReduce := func() {
			cs.reduceDelay(true, len(groups), broadcastResult)
		}
		s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
			for _, group := range groups {
				group := group
				relay := group[0]
				localArrived := 0
				localDone := func() {
					localArrived++
					if localArrived < len(group)-1 {
						return
					}
					// Local partials reduced at the relay DRX.
					cs.reduceDelay(true, len(group), func() {
						if relay == rootRelay {
							arrivedAtRoot++
							if arrivedAtRoot == len(groups) {
								rootReduce()
							}
							return
						}
						s.Eng.Schedule(DMASetupLatency, func() {
							s.transferOrFail(relay, rootRelay, cs.cfg.Bytes, func() {
								arrivedAtRoot++
								if arrivedAtRoot == len(groups) {
									rootReduce()
								}
							})
						})
					})
				}
				if len(group) == 1 {
					// Lone member: its "local reduction" is itself.
					localArrived = -1
					localDone()
					continue
				}
				for _, dev := range group[1:] {
					dev := dev
					s.Eng.Schedule(DMASetupLatency, func() {
						s.transferOrFail(dev, relay, cs.cfg.Bytes, localDone)
					})
				}
			}
		})
		s.Eng.Run()
		if s.err != nil {
			return 0, s.err
		}
		if finished == 0 {
			return 0, fmt.Errorf("dmxsys: all-reduce never completed")
		}
		return sim.Duration(finished), nil
	}
	// Baseline: every accelerator DMAs to the host, the CPU sums and
	// restructures, then the driver memcpys and scatters sequentially.
	arrived := 0
	gathered := 0
	s.Eng.Schedule(s.driverDelay()+DMASetupLatency, func() {
		for i := 0; i < n; i++ {
			src := cs.devs[i]
			s.transferOrFail(src, pcie.Root, cs.cfg.Bytes, func() {
				arrived++
				if arrived == n {
					cs.reduceDelay(false, n, func() {
						var next func(j int)
						next = func(j int) {
							if j >= n {
								return
							}
							s.cpuJob(1, 2*cs.cfg.Bytes, func() {
								s.Eng.Schedule(DMASetupLatency, func() {
									s.transferOrFail(pcie.Root, cs.devs[j], cs.cfg.Bytes, func() {
										s.Eng.Schedule(s.driverDelay(), func() {
											gathered++
											if gathered == n {
												finished = s.Eng.Now()
											}
											next(j + 1)
										})
									})
								})
							})
						}
						next(0)
					})
				}
			})
		}
	})
	s.Eng.Run()
	if s.err != nil {
		return 0, s.err
	}
	if finished == 0 {
		return 0, fmt.Errorf("dmxsys: all-reduce never completed")
	}
	return sim.Duration(finished), nil
}
