package dmxsys

import (
	"bytes"
	"testing"

	"dmx/internal/obs"
	"dmx/internal/sweep"
)

// captureTrace runs one traced simulation and returns the recorder and
// report.
func captureTrace(t *testing.T, p Placement, napps int) (*obs.Recorder, RunReport) {
	t.Helper()
	cfg := DefaultConfig(p)
	cfg.Obs = obs.New()
	s, err := New(cfg, pipelines(napps))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Obs, rep
}

// Every placement's structured trace must render to valid Chrome
// trace-event JSON with properly nested slices — the CI trace job's
// check, run across the whole placement matrix.
func TestStructuredTraceValidatesForEveryPlacement(t *testing.T) {
	for _, p := range []Placement{AllCPU, MultiAxl, Integrated, Standalone, PCIeIntegrated, BumpInTheWire} {
		rec, _ := captureTrace(t, p, 2)
		if rec.Len() == 0 {
			t.Fatalf("%v: no events recorded", p)
		}
		var buf bytes.Buffer
		if err := obs.WriteTrace(&buf, rec.Events()); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		sum, err := obs.ValidateTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("%v: trace does not validate: %v", p, err)
		}
		if sum.Slices == 0 {
			t.Errorf("%v: no slices in trace", p)
		}
	}
}

// The bump-in-the-wire trace must contain the full Fig. 10 vocabulary:
// protocol instants with step ids, per-device service spans, DMA flow
// arrows, and link occupancy counters.
func TestBumpTraceCarriesFig10Vocabulary(t *testing.T) {
	rec, _ := captureTrace(t, BumpInTheWire, 1)
	var haveSteps = map[uint8]bool{}
	var service, flows, counters, phases int
	for _, ev := range rec.Events() {
		if ev.Step != 0 {
			haveSteps[ev.Step] = true
		}
		switch {
		case ev.Kind == obs.KindSpan && ev.Type == obs.TypeService:
			service++
		case ev.Kind == obs.KindFlowBegin:
			flows++
		case ev.Kind == obs.KindCounter:
			counters++
		case ev.Kind == obs.KindSpan && ev.Type == obs.TypePhase:
			phases++
		}
	}
	for _, step := range []uint8{obs.StepKernelDone, obs.StepRXDMA,
		obs.StepRestructure, obs.StepTXReady, obs.StepP2PDMA, obs.StepNextKernel} {
		if !haveSteps[step] {
			t.Errorf("no event carries Fig. 10 step %d", step)
		}
	}
	if service == 0 || flows == 0 || counters == 0 || phases == 0 {
		t.Errorf("vocabulary incomplete: %d service spans, %d flows, %d counters, %d phase spans",
			service, flows, counters, phases)
	}
}

// The recorder sink must not perturb timing — the structured-sink
// extension of TestTraceDoesNotPerturbTiming: traced and untraced runs
// produce identical reports, component by component.
func TestRecorderSinkDoesNotPerturbTiming(t *testing.T) {
	for _, p := range []Placement{MultiAxl, BumpInTheWire} {
		quiet, err := New(DefaultConfig(p), pipelines(2))
		if err != nil {
			t.Fatal(err)
		}
		q, err := quiet.Run()
		if err != nil {
			t.Fatal(err)
		}
		_, tr := captureTrace(t, p, 2)
		if q.Makespan != tr.Makespan {
			t.Errorf("%v: recorder changed makespan: %v vs %v", p, q.Makespan, tr.Makespan)
		}
		for i := range q.Apps {
			a, b := q.Apps[i], tr.Apps[i]
			if a.KernelTime != b.KernelTime || a.RestructureTime != b.RestructureTime ||
				a.MovementTime != b.MovementTime || a.Total != b.Total {
				t.Errorf("%v app %d: breakdown diverged: %+v vs %+v", p, i, a, b)
			}
		}
	}
}

// Trace bytes must be identical whether simulations run sequentially or
// on the parallel sweep pool — each engine owns its recorder, so worker
// count can never interleave streams.
func TestTraceBytesIdenticalSequentialVsParallel(t *testing.T) {
	render := func(workers int) [][]byte {
		old := sweep.SetWorkers(workers)
		defer sweep.SetWorkers(old)
		out := make([][]byte, 4)
		err := sweep.Each(len(out), func(i int) error {
			cfg := DefaultConfig(BumpInTheWire)
			cfg.Obs = obs.New()
			s, err := New(cfg, pipelines(1+i%2))
			if err != nil {
				return err
			}
			if _, err := s.Run(); err != nil {
				return err
			}
			var buf bytes.Buffer
			if err := obs.WriteTrace(&buf, cfg.Obs.Events()); err != nil {
				return err
			}
			out[i] = buf.Bytes()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := render(1)
	par := render(4)
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Fatalf("trace %d differs between sequential and parallel runs", i)
		}
	}
}

func TestReportCarriesMetricsWhenTraced(t *testing.T) {
	_, rep := captureTrace(t, BumpInTheWire, 2)
	m := rep.Metrics
	if m == nil {
		t.Fatal("traced run has nil Metrics")
	}
	if m.Makespan != obs.Duration(rep.Makespan) {
		t.Errorf("metrics makespan %d != report %d", m.Makespan, rep.Makespan)
	}
	if len(m.Devices) == 0 || m.BytesMoved == 0 {
		t.Errorf("metrics empty: %+v", m)
	}
	var busy bool
	for _, d := range m.Devices {
		if d.Utilization > 0 {
			busy = true
		}
		if d.Utilization > 1.0000001 {
			t.Errorf("device %s utilization %f > 1", d.Name, d.Utilization)
		}
	}
	if !busy {
		t.Error("no device shows utilization")
	}
	for _, ph := range m.Phases {
		if ph.Hist.Count == 0 {
			t.Errorf("phase %v has empty histogram", ph.Phase)
		}
	}

	quiet, err := New(DefaultConfig(BumpInTheWire), pipelines(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := quiet.Run(); err != nil {
		t.Fatal(err)
	} else if rep.Metrics != nil {
		t.Error("untraced run carries Metrics")
	}
}

// Streamed execution gives every request its own trace track, so spans
// still nest and the trace still validates under pipelined requests.
func TestStreamedTraceValidates(t *testing.T) {
	cfg := DefaultConfig(BumpInTheWire)
	cfg.Obs = obs.New()
	s, err := New(cfg, pipelines(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunStream(6); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, cfg.Obs.Events()); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("streamed trace does not validate: %v", err)
	}
}
