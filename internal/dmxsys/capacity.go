package dmxsys

import (
	"fmt"

	"dmx/internal/pcie"
	"dmx/internal/sim"
)

// Capacity is the analytic steady-state throughput bound of one app on
// one replica of the plan: the largest per-request exclusive occupancy
// any shared resource (service station, fabric link, or host channel)
// would accumulate, and its inverse, the request rate at which that
// resource saturates. It mirrors, charge for charge, the occupancy the
// request machine records at run time, so a measured fault-free
// bottleneck (AppReport.Bottleneck) matches it exactly — and the
// cluster router uses it as the placement-aware routing score.
type Capacity struct {
	// PerRequest is the bottleneck resource's occupancy per request.
	PerRequest sim.Duration
	// Resource names the bottleneck (plain, unprefixed name).
	Resource string
	// PerSecond is the bound: 1 / PerRequest (0 when PerRequest is 0).
	PerSecond float64
}

// Capacity reports app i's analytic throughput bound.
func (p *Plan) Capacity(i int) Capacity { return p.apps[i].cap }

// appCapacity statically accumulates the per-request occupancy charges
// of one request walking app i's pipeline — the same charges flow.go's
// occupy calls record — and picks the maximum with the same
// lexicographic tie-break as appInstance.bottleneck.
func (p *Plan) appCapacity(i int, pa *planApp) Capacity {
	cfg := p.cfg
	pipe := p.pipes[i]
	occ := make(map[string]sim.Duration)
	charge := func(name string, d sim.Duration) { occ[name] += d }
	chargeBytes := func(name string, n int64, bw float64) { occ[name] += sim.BytesAt(n, bw) }

	accelBW := pcie.LinkConfig{Gen: cfg.Gen, Lanes: cfg.AccelLanes}.Bandwidth()
	upBW := pcie.LinkConfig{Gen: cfg.Gen, Lanes: cfg.UplinkLanes}.Bandwidth()
	m := cfg.CPU
	opsPerSec := float64(m.Cores) * m.FreqHz * float64(m.SIMDLanes) * m.IssueEff
	cpuJob := func(ops, bytes int64) {
		chargeBytes("cpu.compute", ops, opsPerSec)
		chargeBytes("cpu.mem", bytes, m.MemBWBytes)
	}

	dev := func(k int) string { return fmt.Sprintf("a%d.%d", i, k) }
	// Route charges mirror pcie.Fabric's paths. All of an app's devices
	// and its standalone card share one switch, so device-to-device DMA
	// is always the two-link peer-to-peer route.
	rootToDev := func(d string, n int64) {
		chargeBytes(pa.sw+".down", n, upBW)
		chargeBytes(d+".down", n, accelBW)
	}
	devToRoot := func(d string, n int64) {
		chargeBytes(d+".up", n, accelBW)
		chargeBytes(pa.sw+".up", n, upBW)
	}
	p2p := func(src, dst string, n int64) {
		chargeBytes(src+".up", n, accelBW)
		chargeBytes(dst+".down", n, accelBW)
	}

	if cfg.Placement == AllCPU {
		for _, st := range pipe.Stages {
			work := int64(st.Accel.CPULatency(st.InBytes).Seconds() * opsPerSec)
			if work < 1 {
				work = 1
			}
			cpuJob(work, st.InBytes)
		}
		for _, h := range pipe.Hops {
			cpuJob(restructureWorkFor(m, h.Kernel))
		}
		return pickBottleneck(occ)
	}

	rootToDev(dev(0), pipe.InputBytes)
	for k, st := range pipe.Stages {
		charge(dev(k)+":"+st.Accel.Name, st.Accel.Latency(st.InBytes))
		if k >= len(pipe.Hops) {
			continue
		}
		h := pipe.Hops[k]
		hop := sim.Duration(0)
		if cfg.Placement.UsesDRX() {
			hop = p.drxTimes[h.Kernel.Signature()]
		}
		if pa.fusion != nil {
			// Fusion changes what the DRX unit is charged: the leader hop
			// occupies it for the whole fused program plus the residency
			// gap while the intermediate stage runs (the unit is held, not
			// free), and the follower hop charges nothing. The gap here is
			// an uncontended estimate — transfer legs at line rate plus the
			// intermediate accelerator's service — so fused capacity is a
			// seeding bound, not the exact measured-occupancy identity the
			// unfused placements keep.
			switch pa.fusion[k].role {
			case fuseLeader:
				next := pipe.Stages[k+1]
				bw := upBW
				if cfg.Placement != Integrated {
					bw = accelBW
				}
				gap := DMASetupLatency + sim.BytesAt(h.OutBytes, bw) +
					next.Accel.Latency(next.InBytes) + sim.BytesAt(pipe.Hops[k+1].InBytes, bw)
				hop = pa.fusion[k].part + gap + pa.fusion[k+1].part
			case fuseFollower:
				hop = 0
			}
		}
		switch cfg.Placement {
		case MultiAxl:
			devToRoot(dev(k), h.InBytes)
			cpuJob(restructureWorkFor(m, h.Kernel))
			rootToDev(dev(k+1), h.OutBytes)
		case Integrated:
			devToRoot(dev(k), h.InBytes)
			charge("drx.integrated", hop)
			rootToDev(dev(k+1), h.OutBytes)
		case Standalone:
			p2p(dev(k), pa.cardDev, h.InBytes)
			charge(pa.cardDev, hop)
			p2p(pa.cardDev, dev(k+1), h.OutBytes)
		case PCIeIntegrated:
			chargeBytes(dev(k)+".up", h.InBytes, accelBW)
			charge("drx."+pa.sw, hop/sim.Duration(cfg.PCIeIntegratedSlots))
			chargeBytes(dev(k+1)+".down", h.OutBytes, accelBW)
		case BumpInTheWire:
			charge("drx."+dev(k), hop)
			p2p(dev(k), dev(k+1), h.OutBytes)
		}
	}
	devToRoot(dev(len(pipe.Stages)-1), pipe.OutputBytes)
	return pickBottleneck(occ)
}

// pickBottleneck selects the largest charge with appInstance.bottleneck's
// deterministic lexicographic tie-break.
func pickBottleneck(occ map[string]sim.Duration) Capacity {
	var c Capacity
	for res, d := range occ {
		if d > c.PerRequest || (d == c.PerRequest && (c.Resource == "" || res < c.Resource)) {
			c.PerRequest, c.Resource = d, res
		}
	}
	if c.PerRequest > 0 {
		c.PerSecond = 1 / c.PerRequest.Seconds()
	}
	return c
}
