package drx

import (
	"math"
	"math/rand"
	"testing"
)

// TestClampRoundMatchesMathRound checks the trunc-based rounding in
// clampRound against math.Round (half away from zero) over the float32
// range: every boundary region where the two formulations could diverge
// — half-integers, values one ulp on either side of them, subnormals,
// and huge values where x+0.5 is inexact — plus a large uniform sample
// of bit patterns.
func TestClampRoundMatchesMathRound(t *testing.T) {
	check := func(v float32) {
		t.Helper()
		got := clampRound(v, math.Inf(-1), math.Inf(1))
		want := math.Round(float64(v))
		// NaN compares unequal to itself; both must propagate it.
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("clampRound(%v) = %v, math.Round = %v (bits %#x)", v, got, want, math.Float32bits(v))
		}
	}
	// Half-integer boundaries and their float32 neighbors.
	for i := -1000; i <= 1000; i++ {
		h := float32(i) + 0.5
		check(h)
		check(math.Nextafter32(h, float32(math.Inf(1))))
		check(math.Nextafter32(h, float32(math.Inf(-1))))
		check(float32(i))
	}
	// Subnormals and tiny values: x ± 0.5 is inexact there.
	for _, bits := range []uint32{0, 1, 2, 0x7fffff, 0x800000, 0x800001} {
		check(math.Float32frombits(bits))
		check(math.Float32frombits(bits | 0x80000000))
	}
	// Huge values: for |x| in [2^52, 2^53) the +0.5 is an exact tie.
	for _, v := range []float64{1 << 52, 1<<52 + 1<<29, 1 << 53, 1 << 60, math.MaxFloat32} {
		check(float32(v))
		check(float32(-v))
	}
	check(float32(math.Inf(1)))
	check(float32(math.Inf(-1)))
	check(float32(math.NaN()))
	// Uniform sample over all bit patterns.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2_000_000; i++ {
		check(math.Float32frombits(rng.Uint32()))
	}
}

func TestClampRoundSaturates(t *testing.T) {
	cases := []struct {
		v      float32
		lo, hi float64
		want   float64
	}{
		{1000, -128, 127, 127},
		{-1000, -128, 127, -128},
		{126.5, -128, 127, 127},
		{-126.5, -128, 127, -127},
		{-128.5, -128, 127, -128},
		{0.5, -128, 127, 1},
		{-0.5, -128, 127, -1},
		{0.49999997, -128, 127, 0},
	}
	for _, c := range cases {
		if got := clampRound(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("clampRound(%v, %v, %v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
