package drx

import (
	"encoding/binary"
	"math"

	"dmx/internal/isa"
)

// Bulk operand fast paths. The paper's whole case for the DRX is that
// restructuring throughput comes from wide contiguous DRAM bursts; the
// interpreter's per-element readElem/writeElem — with a bounds check, a
// dtype switch, and a float32 round-trip per element — is the exact
// opposite. When a Load/Store moves a unit-stride span that is provably
// in-bounds, these paths move the whole span with one bounds check and
// one dtype dispatch, then a tight typed loop.
//
// Bit-identity is the invariant: the loops below perform the same
// conversions (widening to f32 lanes, clampRound saturation on
// narrowing) in the same element order as the element interpreter, and
// the caller's cycle/energy accounting (BytesLoaded/Stored, MemCycles)
// is computed identically for both paths. Any case the fast path cannot
// prove safe — non-unit strides, out-of-range addresses, unknown dtypes
// — returns false and falls back to the element interpreter, which also
// keeps error behavior byte-for-byte identical.

// loadSpan moves n elements DRAM→scratch if the transfer is unit-stride
// on both sides and fully in-bounds. Reports whether it handled the move.
func (m *Machine) loadSpan(dt isa.DT, sa int64, sstride int32, da int64, dstride int32, n int64) bool {
	if m.noFast || sstride != 1 || dstride != 1 || n <= 0 {
		return false
	}
	esz := int64(dt.Size())
	// Huge (but Validate-legal) bases can wrap these products negative;
	// a wrapped off or end would slip past the DRAMBytes check and panic
	// on the slice below, where the element interpreter returns an "out
	// of range" error. off < 0 and end < off detect the wraps (esz and n
	// are small positives, so neither product overflows otherwise) and
	// route such programs to the interpreter for the identical error.
	off := sa * esz
	end := off + n*esz
	if sa < 0 || off < 0 || end < off || end > m.cfg.DRAMBytes {
		return false
	}
	if da < 0 || da+n < da || da+n > int64(len(m.scratch)) {
		return false
	}
	m.ensure(end)
	src := m.dram[off:end:end]
	dst := m.scratch[da : da+n : da+n]
	switch dt {
	case isa.U8:
		for i, b := range src {
			dst[i] = float32(b)
		}
	case isa.I8:
		for i, b := range src {
			dst[i] = float32(int8(b))
		}
	case isa.I16:
		for i := range dst {
			dst[i] = float32(int16(binary.LittleEndian.Uint16(src[2*i:])))
		}
	case isa.I32:
		for i := range dst {
			dst[i] = float32(int32(binary.LittleEndian.Uint32(src[4*i:])))
		}
	case isa.F32:
		// Two lanes per 8-byte load: the dominant case (f32 is the
		// scratchpad's native type), worth the unroll.
		i := 0
		for ; i+2 <= len(dst); i += 2 {
			u := binary.LittleEndian.Uint64(src[4*i:])
			dst[i] = math.Float32frombits(uint32(u))
			dst[i+1] = math.Float32frombits(uint32(u >> 32))
		}
		if i < len(dst) {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
		}
	case isa.F64:
		for i := range dst {
			dst[i] = float32(math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:])))
		}
	default:
		return false
	}
	return true
}

// storeSpan moves n elements scratch→DRAM (narrowing with saturation) if
// the transfer is unit-stride on both sides and fully in-bounds. Reports
// whether it handled the move.
func (m *Machine) storeSpan(dt isa.DT, da int64, dstride int32, sa int64, sstride int32, n int64) bool {
	if m.noFast || dstride != 1 || sstride != 1 || n <= 0 {
		return false
	}
	esz := int64(dt.Size())
	// Overflow guards mirror loadSpan: wrapped offsets fall back to the
	// element interpreter so adversarial bases error instead of panic.
	off := da * esz
	end := off + n*esz
	if da < 0 || off < 0 || end < off || end > m.cfg.DRAMBytes {
		return false
	}
	if sa < 0 || sa+n < sa || sa+n > int64(len(m.scratch)) {
		return false
	}
	m.ensure(end)
	dst := m.dram[off:end:end]
	src := m.scratch[sa : sa+n : sa+n]
	switch dt {
	case isa.U8:
		for i, v := range src {
			dst[i] = uint8(clampRound(v, 0, 255))
		}
	case isa.I8:
		for i, v := range src {
			dst[i] = byte(int8(clampRound(v, -128, 127)))
		}
	case isa.I16:
		for i, v := range src {
			binary.LittleEndian.PutUint16(dst[2*i:], uint16(int16(clampRound(v, math.MinInt16, math.MaxInt16))))
		}
	case isa.I32:
		for i, v := range src {
			binary.LittleEndian.PutUint32(dst[4*i:], uint32(int32(clampRound(v, math.MinInt32, math.MaxInt32))))
		}
	case isa.F32:
		i := 0
		for ; i+2 <= len(src); i += 2 {
			u := uint64(math.Float32bits(src[i])) | uint64(math.Float32bits(src[i+1]))<<32
			binary.LittleEndian.PutUint64(dst[4*i:], u)
		}
		if i < len(src) {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(src[i]))
		}
	case isa.F64:
		for i, v := range src {
			binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(float64(v)))
		}
	default:
		return false
	}
	m.touch(end)
	return true
}
