package drx

import (
	"fmt"
	"math"

	"dmx/internal/isa"
)

// Timing constants of the fixed-function units, in core cycles.
const (
	// barrierCycles drains the decoupled pipelines at a Barrier.
	barrierCycles = 16
	// dmaIssueCycles configures the DMA engine for a peer transfer.
	dmaIssueCycles = 32
	// transFixedCycles is the Transposition Engine setup cost per tile.
	transFixedCycles = 4
	// memIssueCycles is the Off-chip Data Access Engine's per-request
	// cost; the decoupled front-end hides DRAM latency beyond it.
	memIssueCycles = 4
	// reduceTreeDepthOf covers the lane-combining tree of VRSum/VRMax.
	dramBurstBytes = 64
)

// memCycles converts an off-chip transfer into access-engine cycles.
// Non-unit element strides waste DRAM burst bandwidth: each 64-byte burst
// yields only one element when the stride exceeds the burst.
func (m *Machine) memCycles(bytes int64, elemStride int32, dt isa.DT) int64 {
	stride := int64(elemStride)
	if stride < 0 {
		stride = -stride
	}
	if stride == 0 {
		stride = 1
	}
	span := stride * int64(dt.Size())
	if span > dramBurstBytes {
		span = dramBurstBytes
	}
	effective := bytes / int64(dt.Size()) * span
	cycles := ceilDiv(effective*int64(m.cfg.ClockHz/1e6), int64(m.cfg.DRAMBytesPerSec/1e6))
	return cycles + memIssueCycles
}

// vector executes one RE-lane instruction over N elements.
func (ex *execution) vector(in isa.Instr, loopIdx []int32) error {
	m := ex.m
	dst, err := ex.streamRef(in.Dst)
	if err != nil {
		return err
	}
	src1, err := ex.streamRef(in.Src1)
	if err != nil {
		return err
	}
	if dst.space != isa.Scratch || src1.space != isa.Scratch {
		return fmt.Errorf("%s: operands must be scratch streams", in.Op)
	}
	var src2 *stream
	if !in.Op.IsUnary() && !in.Op.HasImm() {
		if src2, err = ex.streamRef(in.Src2); err != nil {
			return err
		}
		if src2.space != isa.Scratch {
			return fmt.Errorf("%s: src2 must be a scratch stream", in.Op)
		}
	}
	n := int64(in.N)
	da, sa := dst.addr(loopIdx), src1.addr(loopIdx)
	lanes := int64(m.cfg.Lanes)

	readS1 := func(i int64) (float32, error) { return m.scratchAt(sa + i*int64(src1.elemStride)) }
	writeD := func(i int64, v float32) error { return m.scratchSet(da+i*int64(dst.elemStride), v) }

	switch in.Op {
	case isa.VRSum, isa.VRMax:
		var acc float32
		for i := int64(0); i < n; i++ {
			v, err := readS1(i)
			if err != nil {
				return err
			}
			if in.Op == isa.VRSum {
				acc += v
			} else if i == 0 || v > acc {
				acc = v
			}
		}
		if err := writeD(0, acc); err != nil {
			return err
		}
		ex.res.ComputeCycles += ceilDiv(n, lanes) + log2i(lanes)
		return nil
	case isa.VMacS:
		scalar, err := m.scratchAt(src2.addr(loopIdx))
		if err != nil {
			return err
		}
		for i := int64(0); i < n; i++ {
			v, err := readS1(i)
			if err != nil {
				return err
			}
			old, err := m.scratchAt(da + i*int64(dst.elemStride))
			if err != nil {
				return err
			}
			if err := writeD(i, old+v*scalar); err != nil {
				return err
			}
		}
		ex.res.ComputeCycles += ceilDiv(n, lanes)
		return nil
	}

	for i := int64(0); i < n; i++ {
		a, err := readS1(i)
		if err != nil {
			return err
		}
		var out float32
		switch {
		case in.Op.IsUnary():
			out = unaryOp(in.Op, a)
		case in.Op.HasImm():
			out = binOp(immBase(in.Op), a, in.Imm)
		default:
			sb := src2.addr(loopIdx) + i*int64(src2.elemStride)
			b, err := m.scratchAt(sb)
			if err != nil {
				return err
			}
			out = binOp(in.Op, a, b)
		}
		if err := writeD(i, out); err != nil {
			return err
		}
	}
	ex.res.ComputeCycles += ceilDiv(n, lanes)
	return nil
}

func (m *Machine) scratchAt(i int64) (float32, error) {
	if i < 0 || i >= int64(len(m.scratch)) {
		return 0, fmt.Errorf("scratch read %d out of range (size %d)", i, len(m.scratch))
	}
	return m.scratch[i], nil
}

func (m *Machine) scratchSet(i int64, v float32) error {
	if i < 0 || i >= int64(len(m.scratch)) {
		return fmt.Errorf("scratch write %d out of range (size %d)", i, len(m.scratch))
	}
	m.scratch[i] = v
	return nil
}

// immBase maps an immediate opcode to its two-operand form.
func immBase(op isa.Opcode) isa.Opcode {
	switch op {
	case isa.VAddI:
		return isa.VAdd
	case isa.VSubI:
		return isa.VSub
	case isa.VMulI:
		return isa.VMul
	case isa.VDivI:
		return isa.VDiv
	case isa.VMinI:
		return isa.VMin
	case isa.VMaxI:
		return isa.VMax
	}
	panic(fmt.Sprintf("drx: %v has no immediate form", op))
}

func binOp(op isa.Opcode, a, b float32) float32 {
	switch op {
	case isa.VAdd:
		return a + b
	case isa.VSub:
		return a - b
	case isa.VMul:
		return a * b
	case isa.VDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.VMin:
		return float32(math.Min(float64(a), float64(b)))
	case isa.VMax:
		return float32(math.Max(float64(a), float64(b)))
	case isa.VMod:
		if b == 0 {
			return 0
		}
		return float32(math.Mod(float64(a), float64(b)))
	}
	panic(fmt.Sprintf("drx: not a binary op: %v", op))
}

func unaryOp(op isa.Opcode, a float32) float32 {
	switch op {
	case isa.VMov:
		return a
	case isa.VNeg:
		return -a
	case isa.VAbs:
		return float32(math.Abs(float64(a)))
	case isa.VSqrt:
		if a < 0 {
			return 0
		}
		return float32(math.Sqrt(float64(a)))
	case isa.VLog:
		x := float64(a)
		if x < 1e-30 {
			x = 1e-30
		}
		return float32(math.Log(x))
	case isa.VExp:
		return float32(math.Exp(float64(a)))
	case isa.VFloor:
		return float32(math.Floor(float64(a)))
	}
	panic(fmt.Sprintf("drx: not a unary op: %v", op))
}

func log2i(n int64) int64 {
	var l int64
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
