package drx

import (
	"bytes"
	"testing"

	"dmx/internal/isa"
)

// FuzzFastPathMatchesInterpreter is the machine-level differential net
// under the bulk operand fast paths: arbitrary load/store programs —
// random dtypes, strides (unit, strided, negative, zero), bases, span
// lengths, repeat counts — must behave identically with the fast paths
// on and off. "Identically" is total: same error (text included) or, on
// success, the same Result accounting and byte-for-byte the same DRAM
// image. The machine is deliberately small (16 KB DRAM, 4 KB scratch)
// so the fuzzer reaches the out-of-range fallbacks easily.
func FuzzFastPathMatchesInterpreter(f *testing.F) {
	// Unit-stride in-bounds spans of every dtype pair (fast path fires).
	f.Add(uint8(4), uint8(4), int8(1), int8(1), int8(1), uint8(63), uint8(3), uint16(0), uint16(512), []byte("seed"))
	f.Add(uint8(0), uint8(5), int8(1), int8(1), int8(1), uint8(32), uint8(2), uint16(64), uint16(1024), []byte{1, 2, 3})
	f.Add(uint8(2), uint8(1), int8(1), int8(1), int8(1), uint8(16), uint8(4), uint16(128), uint16(900), []byte{0xff, 0x80})
	// Strided / negative / zero strides (element fallback).
	f.Add(uint8(4), uint8(4), int8(2), int8(1), int8(1), uint8(40), uint8(2), uint16(0), uint16(700), []byte("s"))
	f.Add(uint8(3), uint8(3), int8(-1), int8(1), int8(1), uint8(24), uint8(2), uint16(800), uint16(1200), []byte("n"))
	f.Add(uint8(5), uint8(0), int8(0), int8(3), int8(-2), uint8(20), uint8(3), uint16(40), uint16(1500), []byte("z"))
	// Bases near the end of the small DRAM (out-of-range errors).
	f.Add(uint8(4), uint8(4), int8(1), int8(1), int8(1), uint8(63), uint8(4), uint16(4000), uint16(4050), []byte("e"))

	f.Fuzz(func(t *testing.T, srcSel, dstSel uint8, srcStride, dstStride, scrStride int8, nSel, repSel uint8, srcBase, dstBase uint16, data []byte) {
		dts := []isa.DT{isa.U8, isa.I8, isa.I16, isa.I32, isa.F32, isa.F64}
		srcDT := dts[int(srcSel)%len(dts)]
		dstDT := dts[int(dstSel)%len(dts)]
		n := int32(nSel%64) + 1
		reps := int32(repSel%4) + 1

		cfg := DefaultConfig()
		cfg.DRAMBytes = 16 << 10
		cfg.ScratchBytes = 4 << 10

		prog := copyProgram(srcDT, dstDT,
			int64(srcBase%4096), int64(dstBase%4096),
			int32(srcStride), int32(dstStride), int32(scrStride), n, reps)

		// Deterministic DRAM image derived from the fuzz payload. NaN bit
		// patterns round-trip identically through both paths but convert
		// to integers platform-dependently, so scrub them (see
		// fastpath_test.go).
		image := make([]byte, 8<<10)
		if len(data) == 0 {
			data = []byte{0x5a}
		}
		for i := range image {
			image[i] = data[i%len(data)] ^ byte(i*131>>3)
		}
		scrubNaN(image)

		var results [2]Result
		var errs [2]error
		var dram [2][]byte
		for i := 0; i < 2; i++ {
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.SetFastPath(i == 0)
			if err := m.WriteDRAM(0, image); err != nil {
				t.Fatal(err)
			}
			results[i], errs[i] = m.Run(prog)
			if dram[i], err = m.ReadDRAM(0, cfg.DRAMBytes); err != nil {
				t.Fatal(err)
			}
		}
		if (errs[0] == nil) != (errs[1] == nil) {
			t.Fatalf("error divergence: fast=%v interp=%v", errs[0], errs[1])
		}
		if errs[0] != nil && errs[0].Error() != errs[1].Error() {
			t.Fatalf("error text divergence:\nfast:   %v\ninterp: %v", errs[0], errs[1])
		}
		if errs[0] == nil && results[0] != results[1] {
			t.Fatalf("Result divergence:\nfast:   %+v\ninterp: %+v", results[0], results[1])
		}
		if !bytes.Equal(dram[0], dram[1]) {
			for i := range dram[0] {
				if dram[0][i] != dram[1][i] {
					t.Fatalf("DRAM divergence at byte %d: fast=%#x interp=%#x", i, dram[0][i], dram[1][i])
				}
			}
		}
	})
}
