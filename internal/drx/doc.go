// Package drx simulates the Data Restructuring Accelerator
// microarchitecture.
//
// The machine follows Sec. IV-B of the paper: a decoupled access-execute
// pipeline with a programmable front-end (hardware loops in an
// Instruction Repeater, a Strided Scratchpad Address Calculator), a
// configurable number of vector Restructuring Engine (RE) lanes, a
// Transposition Engine, and an Off-chip Data Access Engine over a single
// DDR4-3200 channel. Programs (internal/isa) execute *functionally* —
// real bytes move between DRAM and the scratchpad and real arithmetic
// runs on the lanes — while the machine accounts cycles per unit, so the
// same run yields both a verifiable output buffer and a latency estimate.
package drx
