package drx

import (
	"fmt"
	"testing"

	"dmx/internal/isa"
)

// BenchmarkBulkLoadStore isolates the operand data plane: a program that
// streams spans DRAM→scratch→DRAM with unit stride, which is exactly the
// access pattern compiled restructuring kernels emit for their tiles.
// "fast" takes the bulk span paths; "interp" forces the per-element
// reference interpreter. The ratio is the fast paths' speedup with no
// compile, dispatch, or host-copy overhead in the frame.
func BenchmarkBulkLoadStore(b *testing.B) {
	cfg := DefaultConfig()
	cfg.DRAMBytes = 8 << 20
	for _, dt := range []isa.DT{isa.F32, isa.U8, isa.I16} {
		// One scratch-sized tile per pass, 64 passes ≈ ½ M elements round
		// trip. The scratch stream's loop advance is 0 so every pass reuses
		// the same span — the same shape a compiled kernel's tile loop has.
		n, reps := int32(8192), int32(64)
		prog := &isa.Program{
			Name: "bulktest",
			Instrs: []isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: dt,
					Base: 0, ElemStride: 1, Strides: []int32{n}},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32,
					Base: 0, ElemStride: 1, Strides: []int32{0}},
				{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: dt,
					Base: 1 << 20, ElemStride: 1, Strides: []int32{n}},
				{Op: isa.LoopBegin, N: reps},
				{Op: isa.Load, Dst: 1, Src1: 0, N: n},
				{Op: isa.Store, Dst: 2, Src1: 1, N: n},
				{Op: isa.LoopEnd},
				{Op: isa.Halt},
			},
		}
		for _, mode := range []struct {
			name string
			fast bool
		}{{"fast", true}, {"interp", false}} {
			b.Run(fmt.Sprintf("%v/%s", dt, mode.name), func(b *testing.B) {
				m, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				m.SetFastPath(mode.fast)
				fillDRAM(b, m, 1<<16)
				if _, err := m.Run(prog); err != nil {
					b.Fatal(err)
				}
				bytesPerOp := int64(n) * int64(reps) * int64(dt.Size()) * 2
				b.SetBytes(bytesPerOp)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := m.Run(prog); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
