package drx

import "fmt"

// Config fixes the hardware parameters of one DRX instance. The defaults
// are the paper's evaluation configuration: 128 RE lanes, 64 KB
// instruction cache, 64 KB data scratchpad, 8 GB DDR4 whose single
// channel sustains ~25 GB/s (matching an x8 PCIe Gen 4 link), at 1 GHz
// for the ASIC implementation (250 MHz for the FPGA prototype).
type Config struct {
	// Lanes is the number of RE vector lanes (32–256 in the Fig. 18 sweep).
	Lanes int
	// ScratchBytes is the software-managed data scratchpad capacity.
	ScratchBytes int
	// ICacheBytes bounds the encoded program size (the 64 KB instruction
	// cache; data restructuring kernels fit easily, Sec. IV-A).
	ICacheBytes int
	// ClockHz is the core clock.
	ClockHz float64
	// DRAMBytesPerSec is the sustained off-chip bandwidth.
	DRAMBytesPerSec float64
	// DRAMBytes is the device memory capacity (data queues + buffers).
	DRAMBytes int64
}

// DefaultConfig returns the paper's ASIC configuration.
func DefaultConfig() Config {
	return Config{
		Lanes:           128,
		ScratchBytes:    64 << 10,
		ICacheBytes:     64 << 10,
		ClockHz:         1e9,
		DRAMBytesPerSec: 25e9,
		DRAMBytes:       8 << 30,
	}
}

// FPGAConfig returns the 250 MHz FPGA prototype configuration.
func FPGAConfig() Config {
	c := DefaultConfig()
	c.ClockHz = 250e6
	return c
}

// WithLanes returns a copy of the config with a different lane count
// (the Fig. 18 sensitivity axis).
func (c Config) WithLanes(lanes int) Config {
	c.Lanes = lanes
	return c
}

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	if c.Lanes <= 0 || c.Lanes&(c.Lanes-1) != 0 {
		return fmt.Errorf("drx: lanes must be a positive power of two, got %d", c.Lanes)
	}
	if c.ScratchBytes < 1024 {
		return fmt.Errorf("drx: scratchpad %d B too small", c.ScratchBytes)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("drx: clock %v Hz", c.ClockHz)
	}
	if c.DRAMBytesPerSec <= 0 {
		return fmt.Errorf("drx: DRAM bandwidth %v B/s", c.DRAMBytesPerSec)
	}
	if c.DRAMBytes <= 0 {
		return fmt.Errorf("drx: DRAM capacity %d", c.DRAMBytes)
	}
	return nil
}

// ScratchElems reports the scratchpad capacity in float32 lane elements.
func (c Config) ScratchElems() int { return c.ScratchBytes / 4 }
