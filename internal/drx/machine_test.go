package drx

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dmx/internal/isa"
)

func newMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func f32bytes(vals ...float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

func readF32s(t *testing.T, m *Machine, addr int64, n int) []float32 {
	t.Helper()
	raw, err := m.ReadDRAM(addr, int64(n*4))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

// scaleProgram: out[i] = in[i]*2 + 1 for 8 f32 elements at fixed addresses.
func scaleProgram(inElem, outElem int64) *isa.Program {
	return &isa.Program{
		Name: "scale",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: inElem, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: isa.F32, Base: outElem, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 8},
			{Op: isa.VMulI, Dst: 1, Src1: 1, Imm: 2, N: 8},
			{Op: isa.VAddI, Dst: 1, Src1: 1, Imm: 1, N: 8},
			{Op: isa.Store, Dst: 2, Src1: 1, N: 8},
			{Op: isa.Halt},
		},
	}
}

func TestRunScaleProgram(t *testing.T) {
	m := newMachine(t)
	in, _ := m.AllocDRAM(32)
	out, _ := m.AllocDRAM(32)
	if err := m.WriteDRAM(in, f32bytes(1, 2, 3, 4, 5, 6, 7, 8)); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(scaleProgram(in/4, out/4))
	if err != nil {
		t.Fatal(err)
	}
	got := readF32s(t, m, out, 8)
	for i, v := range got {
		want := float32(i+1)*2 + 1
		if v != want {
			t.Errorf("out[%d] = %v, want %v", i, v, want)
		}
	}
	if res.BytesLoaded != 32 || res.BytesStored != 32 {
		t.Errorf("bytes = %d/%d, want 32/32", res.BytesLoaded, res.BytesStored)
	}
	if res.Cycles() <= 0 {
		t.Error("no cycles accounted")
	}
}

func TestHardwareLoopWithStrides(t *testing.T) {
	// Process 4 rows of 8 f32: out[r][i] = in[r][i] + 10. Streams advance
	// by 8 elements per outer iteration.
	m := newMachine(t)
	in, _ := m.AllocDRAM(4 * 8 * 4)
	out, _ := m.AllocDRAM(4 * 8 * 4)
	vals := make([]float32, 32)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := m.WriteDRAM(in, f32bytes(vals...)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "rows",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: in / 4, ElemStride: 1, Strides: []int32{8}},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: isa.F32, Base: out / 4, ElemStride: 1, Strides: []int32{8}},
			{Op: isa.LoopBegin, N: 4},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 8},
			{Op: isa.VAddI, Dst: 1, Src1: 1, Imm: 10, N: 8},
			{Op: isa.Store, Dst: 2, Src1: 1, N: 8},
			{Op: isa.LoopEnd},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	got := readF32s(t, m, out, 32)
	for i, v := range got {
		if v != float32(i)+10 {
			t.Errorf("out[%d] = %v, want %v", i, v, float32(i)+10)
		}
	}
}

func TestDTypeWideningAndSaturation(t *testing.T) {
	// u8 in → i8 out with a +100 offset: 200+100=300 saturates to 127.
	m := newMachine(t)
	in, _ := m.AllocDRAM(4)
	out, _ := m.AllocDRAM(4)
	if err := m.WriteDRAM(in, []byte{10, 100, 200, 255}); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "sat",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.U8, Base: in, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: isa.I8, Base: out, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 4},
			{Op: isa.VAddI, Dst: 1, Src1: 1, Imm: 100, N: 4},
			{Op: isa.Store, Dst: 2, Src1: 1, N: 4},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	raw, _ := m.ReadDRAM(out, 4)
	want := []int8{110, 127, 127, 127}
	for i, w := range want {
		if int8(raw[i]) != w {
			t.Errorf("out[%d] = %d, want %d", i, int8(raw[i]), w)
		}
	}
}

func TestVectorReduceSum(t *testing.T) {
	m := newMachine(t)
	in, _ := m.AllocDRAM(16 * 4)
	out, _ := m.AllocDRAM(4)
	vals := make([]float32, 16)
	var want float32
	for i := range vals {
		vals[i] = float32(i + 1)
		want += vals[i]
	}
	if err := m.WriteDRAM(in, f32bytes(vals...)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "rsum",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: in / 4, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 100, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 3, Space: isa.DRAM, DType: isa.F32, Base: out / 4, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 16},
			{Op: isa.VRSum, Dst: 2, Src1: 1, N: 16},
			{Op: isa.Store, Dst: 3, Src1: 2, N: 1},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := readF32s(t, m, out, 1)[0]; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestTranspositionEngine(t *testing.T) {
	// Load a 2x3 tile, transpose to 3x2, store.
	m := newMachine(t)
	in, _ := m.AllocDRAM(24)
	out, _ := m.AllocDRAM(24)
	if err := m.WriteDRAM(in, f32bytes(1, 2, 3, 4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "trans",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: in / 4, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 64, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 3, Space: isa.DRAM, DType: isa.F32, Base: out / 4, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 6},
			{Op: isa.Trans, Dst: 2, Src1: 1, N: 2, M: 3},
			{Op: isa.Store, Dst: 3, Src1: 2, N: 6},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	got := readF32s(t, m, out, 6)
	want := []float32{1, 4, 2, 5, 3, 6}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestStridedLoadComplexComponents(t *testing.T) {
	// complex64 data = interleaved (re, im) f32 pairs; elemStride 2 reads
	// one component. |z|² for z = (3+4i) must come out 25.
	m := newMachine(t)
	in, _ := m.AllocDRAM(8)
	out, _ := m.AllocDRAM(4)
	if err := m.WriteDRAM(in, f32bytes(3, 4)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "mag2",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: in / 4, ElemStride: 2},
			{Op: isa.CfgStream, Dst: 1, Space: isa.DRAM, DType: isa.F32, Base: in/4 + 1, ElemStride: 2},
			{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 3, Space: isa.Scratch, DType: isa.F32, Base: 32, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 4, Space: isa.DRAM, DType: isa.F32, Base: out / 4, ElemStride: 1},
			{Op: isa.Load, Dst: 2, Src1: 0, N: 1},
			{Op: isa.Load, Dst: 3, Src1: 1, N: 1},
			{Op: isa.VMul, Dst: 2, Src1: 2, Src2: 2, N: 1},
			{Op: isa.VMul, Dst: 3, Src1: 3, Src2: 3, N: 1},
			{Op: isa.VAdd, Dst: 2, Src1: 2, Src2: 3, N: 1},
			{Op: isa.Store, Dst: 4, Src1: 2, N: 1},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := readF32s(t, m, out, 1)[0]; got != 25 {
		t.Errorf("|3+4i|² = %v, want 25", got)
	}
}

func TestVMacSAccumulates(t *testing.T) {
	m := newMachine(t)
	p := &isa.Program{
		Name: "macs",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},  // acc
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 10, ElemStride: 1}, // vec
			{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 20, ElemStride: 1}, // scalar
			{Op: isa.CfgStream, Dst: 3, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 4, Space: isa.DRAM, DType: isa.F32, Base: 4, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 3, N: 4},
			{Op: isa.Load, Dst: 2, Src1: 4, N: 1},
			{Op: isa.VMacS, Dst: 0, Src1: 1, Src2: 2, N: 4},
			{Op: isa.VMacS, Dst: 0, Src1: 1, Src2: 2, N: 4},
			{Op: isa.CfgStream, Dst: 5, Space: isa.DRAM, DType: isa.F32, Base: 16, ElemStride: 1},
			{Op: isa.Store, Dst: 5, Src1: 0, N: 4},
			{Op: isa.Halt},
		},
	}
	m.AllocDRAM(64)
	if err := m.WriteDRAM(0, f32bytes(1, 2, 3, 4, 10)); err != nil {
		t.Fatal(err)
	}
	// Note stream 4 base is element 4 of the same region (value 10).
	p.Instrs[4].Base = 4
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	got := readF32s(t, m, 64, 4)
	for i, w := range []float32{20, 40, 60, 80} {
		if got[i] != w {
			t.Errorf("acc[%d] = %v, want %v", i, got[i], w)
		}
	}
}

func TestScalarOps(t *testing.T) {
	m := newMachine(t)
	p := &isa.Program{
		Name: "scalar",
		Instrs: []isa.Instr{
			{Op: isa.SLi, Dst: 1, ImmInt: 6},
			{Op: isa.SLi, Dst: 2, ImmInt: 7},
			{Op: isa.SMul, Dst: 3, Src1: 1, Src2: 2},
			{Op: isa.SAdd, Dst: 4, Src1: 3, Src2: 1},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if m.sregs[3] != 42 || m.sregs[4] != 48 {
		t.Errorf("sregs = %d, %d; want 42, 48", m.sregs[3], m.sregs[4])
	}
}

func TestDMAHook(t *testing.T) {
	m := newMachine(t)
	var gotQ int32
	var gotN int64
	m.OnDMA = func(q int32, n int64) { gotQ, gotN = q, n }
	p := &isa.Program{
		Name: "dma",
		Instrs: []isa.Instr{
			{Op: isa.Dma, Dst: 7, N: 4096},
			{Op: isa.Halt},
		},
	}
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if gotQ != 7 || gotN != 4096 {
		t.Errorf("DMA hook got q%d/%d, want q7/4096", gotQ, gotN)
	}
	if res.DMABytes != 4096 {
		t.Errorf("DMABytes = %d", res.DMABytes)
	}
}

func TestLaneScalingReducesComputeCycles(t *testing.T) {
	run := func(lanes int) int64 {
		cfg := DefaultConfig().WithLanes(lanes)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.AllocDRAM(8192)
		p := &isa.Program{
			Name: "wide",
			Instrs: []isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.Load, Dst: 1, Src1: 0, N: 1024},
				{Op: isa.VMulI, Dst: 1, Src1: 1, Imm: 3, N: 1024},
				{Op: isa.VAddI, Dst: 1, Src1: 1, Imm: 3, N: 1024},
				{Op: isa.VSqrt, Dst: 1, Src1: 1, N: 1024},
				{Op: isa.Halt},
			},
		}
		res, err := m.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.ComputeCycles
	}
	c32, c128 := run(32), run(128)
	if c128 >= c32 {
		t.Errorf("128 lanes (%d cycles) not faster than 32 lanes (%d)", c128, c32)
	}
	if c32 != 4*c128 {
		t.Errorf("compute cycles %d vs %d: want exact 4x scaling", c32, c128)
	}
}

func TestStridedAccessCostsMoreMemCycles(t *testing.T) {
	run := func(stride int32) int64 {
		m := newMachine(t)
		m.AllocDRAM(1 << 20)
		p := &isa.Program{
			Name: "stride",
			Instrs: []isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: stride},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.Load, Dst: 1, Src1: 0, N: 1024},
				{Op: isa.Halt},
			},
		}
		res, err := m.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.MemCycles
	}
	if unit, wide := run(1), run(16); wide <= unit {
		t.Errorf("stride-16 load (%d cycles) not slower than unit stride (%d)", wide, unit)
	}
}

func TestErrorsSurfaceWithContext(t *testing.T) {
	m := newMachine(t)
	cases := []struct {
		name   string
		instrs []isa.Instr
		substr string
	}{
		{
			"unconfigured stream",
			[]isa.Instr{{Op: isa.VAdd, Dst: 0, Src1: 1, Src2: 2, N: 4}, {Op: isa.Halt}},
			"before cfgstream",
		},
		{
			"load from scratch space",
			[]isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.Scratch, DType: isa.F32, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, ElemStride: 1},
				{Op: isa.Load, Dst: 1, Src1: 0, N: 4},
				{Op: isa.Halt},
			},
			"dram→scratch",
		},
		{
			"scratch overflow",
			[]isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 1 << 40, ElemStride: 1},
				{Op: isa.Load, Dst: 1, Src1: 0, N: 4},
				{Op: isa.Halt},
			},
			"out of range",
		},
	}
	for _, c := range cases {
		_, err := m.Run(&isa.Program{Name: c.name, Instrs: c.instrs})
		if err == nil || !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%s: want error containing %q, got %v", c.name, c.substr, err)
		}
	}
}

func TestICacheLimitEnforced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ICacheBytes = 128
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{Name: "big"}
	for i := 0; i < 100; i++ {
		p.Instrs = append(p.Instrs, isa.Instr{Op: isa.Nop})
	}
	p.Instrs = append(p.Instrs, isa.Instr{Op: isa.Halt})
	if _, err := m.Run(p); err == nil || !strings.Contains(err.Error(), "icache") {
		t.Fatalf("want icache error, got %v", err)
	}
}

func TestAllocDRAMBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAMBytes = 1024
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocDRAM(512); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocDRAM(1024); err == nil {
		t.Error("over-allocation succeeded")
	}
	m.ResetDRAM()
	if _, err := m.AllocDRAM(1024); err != nil {
		t.Errorf("alloc after reset: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Lanes: 0, ScratchBytes: 65536, ClockHz: 1e9, DRAMBytesPerSec: 25e9, DRAMBytes: 1 << 30},
		{Lanes: 96, ScratchBytes: 65536, ClockHz: 1e9, DRAMBytesPerSec: 25e9, DRAMBytes: 1 << 30}, // not power of two
		{Lanes: 128, ScratchBytes: 100, ClockHz: 1e9, DRAMBytesPerSec: 25e9, DRAMBytes: 1 << 30},
		{Lanes: 128, ScratchBytes: 65536, ClockHz: 0, DRAMBytesPerSec: 25e9, DRAMBytes: 1 << 30},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := FPGAConfig().Validate(); err != nil {
		t.Errorf("FPGA config invalid: %v", err)
	}
}

// Property: the machine's VAdd agrees with float32 addition for arbitrary
// operands placed in DRAM.
func TestVAddMatchesFloat32Property(t *testing.T) {
	m := newMachine(t)
	m.AllocDRAM(1 << 12)
	prop := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if err := m.WriteDRAM(0, f32bytes(a, b)); err != nil {
			return false
		}
		p := &isa.Program{
			Name: "prop",
			Instrs: []isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 1, Space: isa.DRAM, DType: isa.F32, Base: 1, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 3, Space: isa.Scratch, DType: isa.F32, Base: 8, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 4, Space: isa.DRAM, DType: isa.F32, Base: 16, ElemStride: 1},
				{Op: isa.Load, Dst: 2, Src1: 0, N: 1},
				{Op: isa.Load, Dst: 3, Src1: 1, N: 1},
				{Op: isa.VAdd, Dst: 2, Src1: 2, Src2: 3, N: 1},
				{Op: isa.Store, Dst: 4, Src1: 2, N: 1},
				{Op: isa.Halt},
			},
		}
		if _, err := m.Run(p); err != nil {
			return false
		}
		raw, _ := m.ReadDRAM(64, 4)
		got := math.Float32frombits(binary.LittleEndian.Uint32(raw))
		return got == a+b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
