package drx

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dmx/internal/isa"
)

// fastTestConfig is a small machine so out-of-range fallbacks are easy
// to provoke without multi-gigabyte addresses.
func fastTestConfig() Config {
	cfg := DefaultConfig()
	cfg.DRAMBytes = 1 << 20
	return cfg
}

// copyProgram builds: loop reps { load scratch←dram[src]; store
// dram[dst]←scratch }, with each iteration advancing all streams by n
// elements. srcDT/dstDT may differ, exercising widening and narrowing.
func copyProgram(srcDT, dstDT isa.DT, srcBase, dstBase int64, srcStride, dstStride, scrStride int32, n, reps int32) *isa.Program {
	return &isa.Program{
		Name: "copytest",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: srcDT,
				Base: srcBase, ElemStride: srcStride, Strides: []int32{n * srcStride}},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32,
				Base: 0, ElemStride: scrStride, Strides: []int32{n * scrStride}},
			{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: dstDT,
				Base: dstBase, ElemStride: dstStride, Strides: []int32{n * dstStride}},
			{Op: isa.LoopBegin, N: reps},
			{Op: isa.Load, Dst: 1, Src1: 0, N: n},
			{Op: isa.Store, Dst: 2, Src1: 1, N: n},
			{Op: isa.LoopEnd},
			{Op: isa.Halt},
		},
	}
}

// fillDRAM writes a deterministic byte pattern covering every bit
// pattern an element can take (including float values far outside the
// narrow integer ranges, so narrowing saturation is exercised).
func fillDRAM(t testing.TB, m *Machine, nbytes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, nbytes)
	// Mostly moderate float32 values, interleaved with raw random bytes.
	for i := 0; i+4 <= len(data); i += 4 {
		if i%16 == 0 {
			rng.Read(data[i : i+4])
			continue
		}
		v := float32(rng.Float64()*2e5 - 1e5)
		bits := math.Float32bits(v)
		data[i], data[i+1], data[i+2], data[i+3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
	}
	// Raw random bytes can encode NaN float32/float64 patterns whose
	// integer conversion is platform-defined; both paths run the same
	// code on the same platform, but keep the corpus NaN-free so the
	// test asserts portable semantics.
	scrubNaN(data)
	if err := m.WriteDRAM(0, data); err != nil {
		t.Fatal(err)
	}
}

func scrubNaN(data []byte) {
	for i := 0; i+4 <= len(data); i += 4 {
		u := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		if f := math.Float32frombits(u); f != f {
			data[i+3] = 0 // clear exponent bits → finite
		}
	}
	for i := 0; i+8 <= len(data); i += 8 {
		var u uint64
		for b := 0; b < 8; b++ {
			u |= uint64(data[i+b]) << (8 * b)
		}
		if f := math.Float64frombits(u); f != f {
			data[i+7] = 0
		}
	}
}

// runBoth executes prog on a fast-path machine and an element-interpreter
// machine over identical DRAM images and requires byte- and
// Result-identical outcomes (errors included).
func runBoth(t *testing.T, cfg Config, prog *isa.Program, seedBytes int) {
	t.Helper()
	machines := [2]*Machine{}
	results := [2]Result{}
	errs := [2]error{}
	for i := range machines {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFastPath(i == 0)
		fillDRAM(t, m, seedBytes)
		machines[i] = m
		results[i], errs[i] = m.Run(prog)
	}
	if (errs[0] == nil) != (errs[1] == nil) {
		t.Fatalf("error divergence: fast=%v interp=%v", errs[0], errs[1])
	}
	if errs[0] != nil {
		if errs[0].Error() != errs[1].Error() {
			t.Fatalf("error text divergence:\nfast:   %v\ninterp: %v", errs[0], errs[1])
		}
		return
	}
	if results[0] != results[1] {
		t.Fatalf("Result divergence:\nfast:   %+v\ninterp: %+v", results[0], results[1])
	}
	a, err := machines[0].ReadDRAM(0, cfg.DRAMBytes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := machines[1].ReadDRAM(0, cfg.DRAMBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("DRAM divergence at byte %d: fast=%#x interp=%#x", i, a[i], b[i])
			}
		}
	}
}

func TestFastPathBitIdenticalAcrossDTypes(t *testing.T) {
	cfg := fastTestConfig()
	allDTs := []isa.DT{isa.U8, isa.I8, isa.I16, isa.I32, isa.F32, isa.F64}
	for _, src := range allDTs {
		for _, dst := range allDTs {
			t.Run(fmt.Sprintf("%v_to_%v", src, dst), func(t *testing.T) {
				runBoth(t, cfg, copyProgram(src, dst, 0, 8192, 1, 1, 1, 96, 3), 1<<14)
			})
		}
	}
}

func TestFastPathFallbacksBitIdentical(t *testing.T) {
	cfg := fastTestConfig()
	cases := []struct {
		name string
		prog *isa.Program
	}{
		// Non-unit strides force the element interpreter on each side.
		{"strided_src", copyProgram(isa.F32, isa.F32, 0, 8192, 2, 1, 1, 64, 3)},
		{"strided_dst", copyProgram(isa.F32, isa.I16, 0, 8192, 1, 3, 1, 64, 3)},
		{"strided_scratch", copyProgram(isa.I16, isa.F32, 0, 8192, 1, 1, 2, 64, 3)},
		{"negative_stride", copyProgram(isa.F32, isa.F32, 512, 8192, -1, 1, 1, 64, 2)},
		{"zero_stride", copyProgram(isa.U8, isa.U8, 0, 8192, 0, 1, 1, 64, 2)},
		// Out-of-range transfers must error identically. The source read
		// runs off the end of DRAM; the dst store runs off the scratchpad.
		{"dram_oob", copyProgram(isa.F64, isa.F32, cfg.DRAMBytes/8-16, 0, 1, 1, 1, 64, 2)},
		{"negative_addr", copyProgram(isa.F32, isa.F32, 256, 8192, -8, 1, 1, 64, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runBoth(t, cfg, tc.prog, 1<<13) })
	}
}

// TestFastPathOverflowAddrsIdentical drives stream bases large enough
// that the span byte-offset products wrap negative. isa.Validate admits
// any non-negative base, so these programs must fall back and error
// exactly like the element interpreter instead of panicking on a
// wrapped slice bound.
func TestFastPathOverflowAddrsIdentical(t *testing.T) {
	cfg := fastTestConfig()
	// 3<<60 elements × 4 bytes wraps to a negative DRAM byte offset.
	ovf := int64(3) << 60
	// A scratch base this close to MaxInt64 wraps base+n negative.
	huge := int64(math.MaxInt64) - 16
	scratchProg := func(op isa.Instr) *isa.Program {
		return &isa.Program{
			Name: "scratchovf",
			Instrs: []isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: huge, ElemStride: 1},
				op,
				{Op: isa.Halt},
			},
		}
	}
	cases := []struct {
		name string
		prog *isa.Program
	}{
		{"dram_src_overflow", copyProgram(isa.F32, isa.F32, ovf, 8192, 1, 1, 1, 64, 2)},
		{"dram_dst_overflow", copyProgram(isa.F32, isa.F32, 0, ovf, 1, 1, 1, 64, 2)},
		{"scratch_load_overflow", scratchProg(isa.Instr{Op: isa.Load, Dst: 1, Src1: 0, N: 64})},
		{"scratch_store_overflow", scratchProg(isa.Instr{Op: isa.Store, Dst: 0, Src1: 1, N: 64})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runBoth(t, cfg, tc.prog, 1<<13) })
	}
}

func TestFastPathScratchOOBIdentical(t *testing.T) {
	cfg := fastTestConfig()
	// Scratch walk exceeds the scratchpad after a few iterations: the
	// load's scratch index goes out of range mid-program.
	n := int32(1024)
	reps := int32(cfg.ScratchElems())/n + 2
	runBoth(t, cfg, copyProgram(isa.F32, isa.F32, 0, 1<<16, 1, 1, 1, n, reps), 1<<13)
}

func TestTransposeBitIdentical(t *testing.T) {
	cfg := fastTestConfig()
	prog := &isa.Program{
		Name: "transtest",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 4096, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 3, Space: isa.DRAM, DType: isa.F32, Base: 8192, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 24 * 56},
			{Op: isa.Trans, Dst: 2, Src1: 1, N: 24, M: 56},
			{Op: isa.Store, Dst: 3, Src1: 2, N: 24 * 56},
			{Op: isa.Halt},
		},
	}
	runBoth(t, cfg, prog, 1<<13)
}

// TestRunSteadyStateAllocs pins the hot loop: once a program has run
// once on a machine (metadata memoized, DRAM grown, transpose tile
// sized), re-running it must not allocate at all.
func TestRunSteadyStateAllocs(t *testing.T) {
	cfg := fastTestConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fillDRAM(t, m, 1<<14)
	progs := []*isa.Program{
		copyProgram(isa.F32, isa.I8, 0, 8192, 1, 1, 1, 128, 4),
		{
			Name: "transalloc",
			Instrs: []isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 4096, ElemStride: 1},
				{Op: isa.Trans, Dst: 1, Src1: 0, N: 32, M: 64},
				{Op: isa.Halt},
			},
		},
	}
	for _, prog := range progs {
		if _, err := m.Run(prog); err != nil { // warm: memoize + grow
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := m.Run(prog); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state Run allocates %.1f objects/op, want 0", prog.Name, allocs)
		}
	}
}

// TestResetDRAMDirtyWatermark checks the reset actually clears every
// written byte, both for bulk WriteDRAM and element/fast-path stores.
func TestResetDRAMDirtyWatermark(t *testing.T) {
	cfg := fastTestConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDRAM(300_000, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	fillDRAM(t, m, 1<<12)
	if _, err := m.Run(copyProgram(isa.F32, isa.F32, 0, 100_000, 1, 1, 1, 64, 2)); err != nil {
		t.Fatal(err)
	}
	m.ResetDRAM()
	got, err := m.ReadDRAM(0, cfg.DRAMBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d nonzero (%#x) after ResetDRAM", i, b)
		}
	}
	// The watermark must rebuild after a reset: write again, reset again.
	if err := m.WriteDRAM(128, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	m.ResetDRAM()
	got, err = m.ReadDRAM(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("second ResetDRAM left a written byte")
	}
}
