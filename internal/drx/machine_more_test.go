package drx

import (
	"testing"

	"dmx/internal/isa"
)

func TestBarrierJoinsPipelines(t *testing.T) {
	// A memory-heavy phase then a compute-heavy phase: without the
	// barrier the model would overlap them fully; with it, the total is
	// the sum of the two phases (plus the drain cost).
	m := newMachine(t)
	m.AllocDRAM(1 << 20)
	mk := func(withBarrier bool) Result {
		in := []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 8192}, // memory phase
		}
		if withBarrier {
			in = append(in, isa.Instr{Op: isa.Barrier})
		}
		for i := 0; i < 64; i++ { // compute phase
			in = append(in, isa.Instr{Op: isa.VMulI, Dst: 1, Src1: 1, Imm: 1.5, N: 8192})
		}
		in = append(in, isa.Instr{Op: isa.Halt})
		res, err := m.Run(&isa.Program{Name: "barrier", Instrs: in})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := mk(true)
	without := mk(false)
	if with.Cycles() <= without.Cycles() {
		t.Errorf("barrier (%d cycles) did not serialize phases vs overlap (%d)",
			with.Cycles(), without.Cycles())
	}
}

func TestFPGAConfigSlowsWallClock(t *testing.T) {
	prog := &isa.Program{
		Name: "clk",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.VMulI, Dst: 0, Src1: 0, Imm: 2, N: 4096},
			{Op: isa.Halt},
		},
	}
	asic, _ := New(DefaultConfig())
	fpga, _ := New(FPGAConfig())
	ra, err := asic.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fpga.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Same compute cycles; the 250 MHz prototype is 4x slower in time.
	if ra.ComputeCycles != rf.ComputeCycles {
		t.Errorf("cycle counts differ across clocks: %d vs %d", ra.ComputeCycles, rf.ComputeCycles)
	}
	ta := ra.Seconds(DefaultConfig().ClockHz)
	tf := rf.Seconds(FPGAConfig().ClockHz)
	if r := tf / ta; r < 3.9 || r > 4.1 {
		t.Errorf("FPGA/ASIC time ratio %.2f, want ~4", r)
	}
}

func TestResetDRAMZeroes(t *testing.T) {
	m := newMachine(t)
	addr, err := m.AllocDRAM(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDRAM(addr, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	m.ResetDRAM()
	raw, err := m.ReadDRAM(addr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0 || raw[1] != 0 || raw[2] != 0 {
		t.Error("ResetDRAM left stale bytes")
	}
	if _, err := m.AllocDRAM(64); err != nil {
		t.Errorf("allocator not reset: %v", err)
	}
}

func TestDRAMBoundsChecked(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DRAMBytes = 1024
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDRAM(1020, []byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("out-of-bounds write accepted")
	}
	if _, err := m.ReadDRAM(-1, 4); err == nil {
		t.Error("negative read accepted")
	}
	// Program store past DRAM must fail cleanly, not panic.
	p := &isa.Program{
		Name: "oob",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.DRAM, DType: isa.F32, Base: 1 << 40, ElemStride: 1},
			{Op: isa.Store, Dst: 1, Src1: 0, N: 4},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err == nil {
		t.Error("store past DRAM accepted")
	}
}

func TestHaltInsideLoopStopsExecution(t *testing.T) {
	m := newMachine(t)
	p := &isa.Program{
		Name: "early-halt",
		Instrs: []isa.Instr{
			{Op: isa.LoopBegin, N: 1000},
			{Op: isa.Nop},
			{Op: isa.Halt},
			{Op: isa.LoopEnd},
			{Op: isa.Halt},
		},
	}
	res, err := m.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	// One loop config + one nop + one halt: the loop must not iterate on.
	if res.Instrs > 5 {
		t.Errorf("halt did not stop the repeater: %d dynamic instructions", res.Instrs)
	}
}

func TestVRMaxNegativeValues(t *testing.T) {
	m := newMachine(t)
	m.AllocDRAM(64)
	if err := m.WriteDRAM(0, f32bytes(-5, -2, -9, -3)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "rmax",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 16, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 3, Space: isa.DRAM, DType: isa.F32, Base: 8, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 4},
			{Op: isa.VRMax, Dst: 2, Src1: 1, N: 4},
			{Op: isa.Store, Dst: 3, Src1: 2, N: 1},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := readF32s(t, m, 32, 1)[0]; got != -2 {
		t.Errorf("max of negatives = %v, want -2", got)
	}
}
