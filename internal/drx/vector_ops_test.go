package drx

import (
	"math"
	"testing"

	"dmx/internal/isa"
)

// runBinary executes one two-operand vector op over (a, b) and returns
// the result.
func runBinary(t *testing.T, op isa.Opcode, a, b float32) float32 {
	t.Helper()
	m := newMachine(t)
	m.AllocDRAM(64)
	if err := m.WriteDRAM(0, f32bytes(a, b)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "binop",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.DRAM, DType: isa.F32, Base: 1, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 3, Space: isa.Scratch, DType: isa.F32, Base: 8, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 4, Space: isa.DRAM, DType: isa.F32, Base: 8, ElemStride: 1},
			{Op: isa.Load, Dst: 2, Src1: 0, N: 1},
			{Op: isa.Load, Dst: 3, Src1: 1, N: 1},
			{Op: op, Dst: 2, Src1: 2, Src2: 3, N: 1},
			{Op: isa.Store, Dst: 4, Src1: 2, N: 1},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	return readF32s(t, m, 32, 1)[0]
}

// runImm executes one immediate vector op over a.
func runImm(t *testing.T, op isa.Opcode, a, imm float32) float32 {
	t.Helper()
	m := newMachine(t)
	m.AllocDRAM(64)
	if err := m.WriteDRAM(0, f32bytes(a)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "immop",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: isa.F32, Base: 8, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 1},
			{Op: op, Dst: 1, Src1: 1, Imm: imm, N: 1},
			{Op: isa.Store, Dst: 2, Src1: 1, N: 1},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	return readF32s(t, m, 32, 1)[0]
}

// runUnary executes one unary vector op over a.
func runUnary(t *testing.T, op isa.Opcode, a float32) float32 {
	t.Helper()
	m := newMachine(t)
	m.AllocDRAM(64)
	if err := m.WriteDRAM(0, f32bytes(a)); err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{
		Name: "unop",
		Instrs: []isa.Instr{
			{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
			{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: isa.F32, Base: 8, ElemStride: 1},
			{Op: isa.Load, Dst: 1, Src1: 0, N: 1},
			{Op: op, Dst: 1, Src1: 1, N: 1},
			{Op: isa.Store, Dst: 2, Src1: 1, N: 1},
			{Op: isa.Halt},
		},
	}
	if _, err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	return readF32s(t, m, 32, 1)[0]
}

func TestAllBinaryOps(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a, b float32
		want float32
	}{
		{isa.VAdd, 2, 3, 5},
		{isa.VSub, 2, 3, -1},
		{isa.VMul, 2, 3, 6},
		{isa.VDiv, 7, 2, 3.5},
		{isa.VDiv, 7, 0, 0}, // guarded
		{isa.VMin, 2, 3, 2},
		{isa.VMax, 2, 3, 3},
		{isa.VMod, 7, 3, 1},
		{isa.VMod, 7, 0, 0}, // guarded
	}
	for _, c := range cases {
		if got := runBinary(t, c.op, c.a, c.b); got != c.want {
			t.Errorf("%v(%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestAllImmediateOps(t *testing.T) {
	cases := []struct {
		op     isa.Opcode
		a, imm float32
		want   float32
	}{
		{isa.VAddI, 2, 3, 5},
		{isa.VSubI, 2, 3, -1},
		{isa.VMulI, 2, 3, 6},
		{isa.VDivI, 7, 2, 3.5},
		{isa.VMinI, 2, 3, 2},
		{isa.VMaxI, 2, 3, 3},
	}
	for _, c := range cases {
		if got := runImm(t, c.op, c.a, c.imm); got != c.want {
			t.Errorf("%v(%v, imm %v) = %v, want %v", c.op, c.a, c.imm, got, c.want)
		}
	}
}

func TestAllUnaryOps(t *testing.T) {
	cases := []struct {
		op      isa.Opcode
		a, want float32
	}{
		{isa.VMov, 5, 5},
		{isa.VNeg, 5, -5},
		{isa.VAbs, -5, 5},
		{isa.VSqrt, 9, 3},
		{isa.VSqrt, -1, 0}, // guarded
		{isa.VLog, float32(math.E), 1},
		{isa.VLog, 0, float32(math.Log(1e-30))}, // clamped
		{isa.VExp, 0, 1},
		{isa.VFloor, 2.7, 2},
	}
	for _, c := range cases {
		got := runUnary(t, c.op, c.a)
		if math.Abs(float64(got-c.want)) > 1e-5 {
			t.Errorf("%v(%v) = %v, want %v", c.op, c.a, got, c.want)
		}
	}
}

func TestAllOffChipDTypes(t *testing.T) {
	// Round-trip every ISA dtype through load (widen) + store (narrow).
	m := newMachine(t)
	m.AllocDRAM(256)
	run := func(dt isa.DT, writeRaw []byte, wantBack []byte) {
		m.ResetDRAM()
		m.AllocDRAM(256)
		if err := m.WriteDRAM(0, writeRaw); err != nil {
			t.Fatal(err)
		}
		outBase := int64(128) / int64(dt.Size())
		p := &isa.Program{
			Name: "dtypes",
			Instrs: []isa.Instr{
				{Op: isa.CfgStream, Dst: 0, Space: isa.DRAM, DType: dt, Base: 0, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 1, Space: isa.Scratch, DType: isa.F32, Base: 0, ElemStride: 1},
				{Op: isa.CfgStream, Dst: 2, Space: isa.DRAM, DType: dt, Base: outBase, ElemStride: 1},
				{Op: isa.Load, Dst: 1, Src1: 0, N: 2},
				{Op: isa.Store, Dst: 2, Src1: 1, N: 2},
				{Op: isa.Halt},
			},
		}
		if _, err := m.Run(p); err != nil {
			t.Fatalf("%v: %v", dt, err)
		}
		got, err := m.ReadDRAM(128, int64(len(wantBack)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantBack {
			if got[i] != wantBack[i] {
				t.Fatalf("%v: byte %d = %d, want %d", dt, i, got[i], wantBack[i])
			}
		}
	}
	run(isa.U8, []byte{7, 200}, []byte{7, 200})
	run(isa.I8, []byte{0xFF, 0x7F}, []byte{0xFF, 0x7F}) // -1, 127
	run(isa.I16, []byte{0x34, 0x12, 0xFF, 0xFF}, []byte{0x34, 0x12, 0xFF, 0xFF})
	run(isa.I32, []byte{1, 0, 0, 0, 0xFE, 0xFF, 0xFF, 0xFF}, []byte{1, 0, 0, 0, 0xFE, 0xFF, 0xFF, 0xFF})
	run(isa.F32, f32bytes(1.5, -2.25), f32bytes(1.5, -2.25))
	// F64 round-trips exactly for values representable in f32.
	f64raw := make([]byte, 16)
	for i, v := range []float64{1.5, -2.25} {
		bits := math.Float64bits(v)
		for b := 0; b < 8; b++ {
			f64raw[i*8+b] = byte(bits >> (8 * b))
		}
	}
	run(isa.F64, f64raw, f64raw)
}

func TestMachineConfigGetter(t *testing.T) {
	m := newMachine(t)
	if m.Config().Lanes != 128 {
		t.Errorf("Config().Lanes = %d", m.Config().Lanes)
	}
}
