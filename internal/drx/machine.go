package drx

import (
	"encoding/binary"
	"fmt"
	"math"

	"dmx/internal/isa"
)

// Machine is one DRX device instance: DRAM, scratchpad, stream registers,
// and the cycle counters of the three pipeline domains. A Machine is not
// safe for concurrent use.
type Machine struct {
	cfg     Config
	dram    []byte
	scratch []float32
	streams [isa.MaxStreams]stream
	sregs   [isa.NumScalarRegs]int64
	heap    int64 // bump allocator watermark for AllocDRAM
	// dirty is the high-water mark of DRAM writes since the last
	// ResetDRAM; bytes at and beyond it are guaranteed zero, so a reset
	// zeroes only [0, dirty).
	dirty int64

	// noFast disables the bulk unit-stride operand paths, forcing the
	// reference element interpreter (see fastpath.go).
	noFast bool
	// transBuf is the Transposition Engine's reusable staging tile.
	transBuf []float32
	// meta memoizes per-program execution metadata (encoded size, loop
	// end table) keyed by program identity. Programs are compiled once
	// and immutable, so the memo is sound; the map is bounded by the
	// number of distinct programs this machine runs.
	meta map[*isa.Program]*progMeta

	// OnDMA, when set, observes Dma instructions (queue id and byte
	// count); the system layer uses it to trigger point-to-point
	// transfers. The machine itself moves no data for Dma.
	OnDMA func(queue int32, bytes int64)
}

// progMeta is the per-program execution metadata Run derives once: the
// encoded byte size (for the icache admission check) and, for every
// LoopBegin at index i, the index of its matching LoopEnd — so the
// interpreter's hot loop does not rescan the instruction stream on every
// outer-loop iteration.
type progMeta struct {
	encLen  int
	loopEnd []int32
}

// SetFastPath enables or disables the bulk unit-stride operand paths
// (on by default). The fast paths are bit-identical to the element
// interpreter — cycle accounting included — so this switch exists only
// for the differential checkers and benchmarks that prove it.
func (m *Machine) SetFastPath(on bool) { m.noFast = !on }

// stream is one configured address generator.
type stream struct {
	configured bool
	space      isa.Space
	dtype      isa.DT
	base       int64 // elements
	elemStride int32
	strides    []int32 // per loop level, outermost first
}

// Result reports the cycle accounting of one program execution. The
// access and execute domains are decoupled (Sec. IV-B), so the runtime is
// the slower of the two plus the serial front-end work.
type Result struct {
	ComputeCycles int64 // RE lanes + transposition engine
	MemCycles     int64 // off-chip data access engine
	CtrlCycles    int64 // configuration, sync, scalar ops
	Instrs        int64 // dynamic instruction count
	BytesLoaded   int64
	BytesStored   int64
	DMABytes      int64
}

// Cycles reports the modeled total: max of the overlapped domains plus
// the serial control cycles.
func (r Result) Cycles() int64 {
	c := r.ComputeCycles
	if r.MemCycles > c {
		c = r.MemCycles
	}
	return c + r.CtrlCycles
}

// Seconds converts the total cycles to time at the given clock.
func (r Result) Seconds(clockHz float64) float64 {
	return float64(r.Cycles()) / clockHz
}

// New creates a machine with the given configuration. DRAM is allocated
// lazily by AllocDRAM/WriteDRAM up to cfg.DRAMBytes.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{
		cfg:     cfg,
		scratch: make([]float32, cfg.ScratchElems()),
	}, nil
}

// Config returns the machine's hardware configuration.
func (m *Machine) Config() Config { return m.cfg }

// AllocDRAM reserves n bytes of device memory (16-byte aligned) and
// returns its base address.
func (m *Machine) AllocDRAM(n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("drx: negative allocation %d", n)
	}
	addr := (m.heap + 15) &^ 15
	if addr+n > m.cfg.DRAMBytes {
		return 0, fmt.Errorf("drx: DRAM exhausted (%d of %d bytes)", addr+n, m.cfg.DRAMBytes)
	}
	m.heap = addr + n
	m.ensure(addr + n)
	return addr, nil
}

// ResetDRAM clears the allocator and zeroes device memory. Only the
// written prefix [0, dirty) needs clearing: ensure-grown memory starts
// zeroed and every write advances the dirty watermark, so bytes beyond
// it are already zero.
func (m *Machine) ResetDRAM() {
	m.heap = 0
	end := m.dirty
	if end > int64(len(m.dram)) {
		end = int64(len(m.dram))
	}
	clear(m.dram[:end])
	m.dirty = 0
}

// touch advances the dirty watermark past a write ending at end.
func (m *Machine) touch(end int64) {
	if end > m.dirty {
		m.dirty = end
	}
}

func (m *Machine) ensure(n int64) {
	if int64(len(m.dram)) >= n {
		return
	}
	// Grow geometrically: element-granular stores walk the heap forward,
	// and exact-fit growth would reallocate per element.
	newCap := int64(len(m.dram))*2 + 4096
	if newCap < n {
		newCap = n
	}
	if newCap > m.cfg.DRAMBytes {
		newCap = m.cfg.DRAMBytes
	}
	grown := make([]byte, newCap)
	copy(grown, m.dram)
	m.dram = grown
}

// WriteDRAM copies data into device memory at addr.
func (m *Machine) WriteDRAM(addr int64, data []byte) error {
	if addr < 0 || addr+int64(len(data)) > m.cfg.DRAMBytes {
		return fmt.Errorf("drx: write [%d,%d) outside DRAM", addr, addr+int64(len(data)))
	}
	m.ensure(addr + int64(len(data)))
	copy(m.dram[addr:], data)
	m.touch(addr + int64(len(data)))
	return nil
}

// ReadDRAM copies n bytes of device memory at addr.
func (m *Machine) ReadDRAM(addr, n int64) ([]byte, error) {
	if addr < 0 || addr+n > m.cfg.DRAMBytes {
		return nil, fmt.Errorf("drx: read [%d,%d) outside DRAM", addr, addr+n)
	}
	m.ensure(addr + n)
	out := make([]byte, n)
	copy(out, m.dram[addr:])
	return out, nil
}

// Run executes a program to completion and returns its cycle accounting.
// The program must validate and its encoded form must fit the
// instruction cache. Programs are treated as immutable: per-program
// metadata (encoded size, loop table) is memoized on first execution.
func (m *Machine) Run(p *isa.Program) (Result, error) {
	meta, err := m.progMetaFor(p)
	if err != nil {
		return Result{}, err
	}
	if meta.encLen > m.cfg.ICacheBytes {
		return Result{}, fmt.Errorf("drx: program %s (%d B encoded) exceeds %d B icache",
			p.Name, meta.encLen, m.cfg.ICacheBytes)
	}
	var ex execution
	ex.m = m
	ex.meta = meta
	if err := ex.block(p.Instrs, 0, len(p.Instrs)); err != nil {
		return Result{}, fmt.Errorf("drx: %s: %w", p.Name, err)
	}
	return ex.res, nil
}

// progMetaFor validates p once and derives its execution metadata.
func (m *Machine) progMetaFor(p *isa.Program) (*progMeta, error) {
	if meta, ok := m.meta[p]; ok {
		return meta, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	enc, err := isa.Encode(p)
	if err != nil {
		return nil, err
	}
	meta := &progMeta{encLen: len(enc), loopEnd: make([]int32, len(p.Instrs))}
	var stack [isa.MaxLoopDepth]int32
	depth := 0
	for i, in := range p.Instrs {
		switch in.Op {
		case isa.LoopBegin:
			stack[depth] = int32(i)
			depth++
		case isa.LoopEnd:
			depth--
			meta.loopEnd[stack[depth]] = int32(i)
		}
	}
	if m.meta == nil {
		m.meta = make(map[*isa.Program]*progMeta)
	}
	m.meta[p] = meta
	return meta, nil
}

// execution holds the per-run interpreter state. The loop index stack is
// a fixed array (Validate bounds nesting by isa.MaxLoopDepth), so hot
// loops allocate nothing.
type execution struct {
	m      *Machine
	meta   *progMeta
	res    Result
	halted bool
	depth  int
	idx    [isa.MaxLoopDepth]int32
}

// loopIdx is the live loop index stack, outermost first.
func (ex *execution) loopIdx() []int32 { return ex.idx[:ex.depth] }

// block interprets instrs[from:to) under the current loop index stack.
func (ex *execution) block(instrs []isa.Instr, from, to int) error {
	for pc := from; pc < to && !ex.halted; pc++ {
		in := instrs[pc]
		ex.res.Instrs++
		switch in.Op {
		case isa.Nop:
			ex.res.CtrlCycles++
		case isa.Halt:
			ex.res.CtrlCycles++
			ex.halted = true
			return nil
		case isa.Barrier:
			// Synchronization drains both pipelines: the domains join.
			ex.res.CtrlCycles += barrierCycles
			ex.join()
		case isa.LoopBegin:
			end := int(ex.meta.loopEnd[pc])
			// One cycle to configure the Instruction Repeater; iterations
			// themselves are free of branch overhead (hardware loops).
			ex.res.CtrlCycles++
			ex.idx[ex.depth] = 0
			ex.depth++
			for i := int32(0); i < in.N && !ex.halted; i++ {
				ex.idx[ex.depth-1] = i
				if err := ex.block(instrs, pc+1, end); err != nil {
					return err
				}
			}
			ex.depth--
			pc = end
		case isa.LoopEnd:
			// Reached only when block bounds are wrong.
			return fmt.Errorf("instr %d: stray endloop", pc)
		case isa.CfgStream:
			ex.res.CtrlCycles++
			m := ex.m
			m.streams[in.Dst] = stream{
				configured: true,
				space:      in.Space,
				dtype:      in.DType,
				base:       in.Base,
				elemStride: in.ElemStride,
				strides:    in.Strides,
			}
		case isa.Load:
			if err := ex.load(in, ex.loopIdx()); err != nil {
				return fmt.Errorf("instr %d: %w", pc, err)
			}
		case isa.Store:
			if err := ex.store(in, ex.loopIdx()); err != nil {
				return fmt.Errorf("instr %d: %w", pc, err)
			}
		case isa.Trans:
			if err := ex.transpose(in, ex.loopIdx()); err != nil {
				return fmt.Errorf("instr %d: %w", pc, err)
			}
		case isa.Dma:
			ex.res.CtrlCycles += dmaIssueCycles
			ex.res.DMABytes += int64(in.N)
			if ex.m.OnDMA != nil {
				ex.m.OnDMA(in.Dst, int64(in.N))
			}
		case isa.SLi:
			ex.res.CtrlCycles++
			ex.m.sregs[in.Dst] = in.ImmInt
		case isa.SAdd:
			ex.res.CtrlCycles++
			ex.m.sregs[in.Dst] = ex.m.sregs[in.Src1] + ex.m.sregs[in.Src2]
		case isa.SMul:
			ex.res.CtrlCycles++
			ex.m.sregs[in.Dst] = ex.m.sregs[in.Src1] * ex.m.sregs[in.Src2]
		default:
			if !in.Op.IsVector() {
				return fmt.Errorf("instr %d: unimplemented opcode %s", pc, in.Op)
			}
			if err := ex.vector(in, ex.loopIdx()); err != nil {
				return fmt.Errorf("instr %d: %w", pc, err)
			}
		}
	}
	return nil
}

// join models a pipeline barrier: both decoupled domains advance to the
// max and continue from there.
func (ex *execution) join() {
	mx := ex.res.ComputeCycles
	if ex.res.MemCycles > mx {
		mx = ex.res.MemCycles
	}
	ex.res.ComputeCycles = mx
	ex.res.MemCycles = mx
}

// addr computes a stream's current element address under the loop
// indices, per the <Base, Stride, Iteration> scheme.
func (s *stream) addr(loopIdx []int32) int64 {
	a := s.base
	for l, idx := range loopIdx {
		if l < len(s.strides) {
			a += int64(s.strides[l]) * int64(idx)
		}
	}
	return a
}

func (ex *execution) streamRef(id int32) (*stream, error) {
	s := &ex.m.streams[id]
	if !s.configured {
		return nil, fmt.Errorf("stream s%d used before cfgstream", id)
	}
	return s, nil
}

// load moves N elements DRAM→scratch, widening to f32 lanes.
func (ex *execution) load(in isa.Instr, loopIdx []int32) error {
	dst, err := ex.streamRef(in.Dst)
	if err != nil {
		return err
	}
	src, err := ex.streamRef(in.Src1)
	if err != nil {
		return err
	}
	if src.space != isa.DRAM || dst.space != isa.Scratch {
		return fmt.Errorf("load wants dram→scratch, got %v→%v", src.space, dst.space)
	}
	sa, da := src.addr(loopIdx), dst.addr(loopIdx)
	n := int64(in.N)
	if !ex.m.loadSpan(src.dtype, sa, src.elemStride, da, dst.elemStride, n) {
		for i := int64(0); i < n; i++ {
			v, err := ex.m.readElem(src.dtype, sa+i*int64(src.elemStride))
			if err != nil {
				return err
			}
			si := da + i*int64(dst.elemStride)
			if si < 0 || si >= int64(len(ex.m.scratch)) {
				return fmt.Errorf("load: scratch index %d out of range", si)
			}
			ex.m.scratch[si] = v
		}
	}
	bytes := n * int64(src.dtype.Size())
	ex.res.BytesLoaded += bytes
	ex.res.MemCycles += ex.m.memCycles(bytes, src.elemStride, src.dtype)
	return nil
}

// store moves N elements scratch→DRAM, narrowing with saturation.
func (ex *execution) store(in isa.Instr, loopIdx []int32) error {
	dst, err := ex.streamRef(in.Dst)
	if err != nil {
		return err
	}
	src, err := ex.streamRef(in.Src1)
	if err != nil {
		return err
	}
	if dst.space != isa.DRAM || src.space != isa.Scratch {
		return fmt.Errorf("store wants scratch→dram, got %v→%v", src.space, dst.space)
	}
	sa, da := src.addr(loopIdx), dst.addr(loopIdx)
	n := int64(in.N)
	if !ex.m.storeSpan(dst.dtype, da, dst.elemStride, sa, src.elemStride, n) {
		for i := int64(0); i < n; i++ {
			si := sa + i*int64(src.elemStride)
			if si < 0 || si >= int64(len(ex.m.scratch)) {
				return fmt.Errorf("store: scratch index %d out of range", si)
			}
			if err := ex.m.writeElem(dst.dtype, da+i*int64(dst.elemStride), ex.m.scratch[si]); err != nil {
				return err
			}
		}
	}
	bytes := n * int64(dst.dtype.Size())
	ex.res.BytesStored += bytes
	ex.res.MemCycles += ex.m.memCycles(bytes, dst.elemStride, dst.dtype)
	return nil
}

// transpose runs the Transposition Engine on an N×M scratch tile.
func (ex *execution) transpose(in isa.Instr, loopIdx []int32) error {
	dst, err := ex.streamRef(in.Dst)
	if err != nil {
		return err
	}
	src, err := ex.streamRef(in.Src1)
	if err != nil {
		return err
	}
	if dst.space != isa.Scratch || src.space != isa.Scratch {
		return fmt.Errorf("trans operands must be scratch streams")
	}
	rows, cols := int64(in.N), int64(in.M)
	sa, da := src.addr(loopIdx), dst.addr(loopIdx)
	total := rows * cols
	if sa < 0 || sa+total > int64(len(ex.m.scratch)) || da < 0 || da+total > int64(len(ex.m.scratch)) {
		return fmt.Errorf("trans: tile outside scratchpad")
	}
	// Stage through a reusable tile buffer: the engine's banked SRAM in
	// hardware, and an allocation-free hot loop here.
	if int64(cap(ex.m.transBuf)) < total {
		ex.m.transBuf = make([]float32, total)
	}
	tmp := ex.m.transBuf[:total]
	for r := int64(0); r < rows; r++ {
		row := ex.m.scratch[sa+r*cols : sa+(r+1)*cols]
		for c, v := range row {
			tmp[int64(c)*rows+r] = v
		}
	}
	copy(ex.m.scratch[da:da+total], tmp)
	ex.res.ComputeCycles += ceilDiv(total, int64(ex.m.cfg.Lanes)) + transFixedCycles
	return nil
}

func (m *Machine) readElem(dt isa.DT, elem int64) (float32, error) {
	off := elem * int64(dt.Size())
	if off < 0 || off+int64(dt.Size()) > m.cfg.DRAMBytes {
		return 0, fmt.Errorf("dram read at element %d (%v) out of range", elem, dt)
	}
	m.ensure(off + int64(dt.Size()))
	b := m.dram[off:]
	switch dt {
	case isa.U8:
		return float32(b[0]), nil
	case isa.I8:
		return float32(int8(b[0])), nil
	case isa.I16:
		return float32(int16(binary.LittleEndian.Uint16(b))), nil
	case isa.I32:
		return float32(int32(binary.LittleEndian.Uint32(b))), nil
	case isa.F32:
		return math.Float32frombits(binary.LittleEndian.Uint32(b)), nil
	case isa.F64:
		return float32(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	}
	return 0, fmt.Errorf("unknown stream dtype %v", dt)
}

func (m *Machine) writeElem(dt isa.DT, elem int64, v float32) error {
	off := elem * int64(dt.Size())
	if off < 0 || off+int64(dt.Size()) > m.cfg.DRAMBytes {
		return fmt.Errorf("dram write at element %d (%v) out of range", elem, dt)
	}
	m.ensure(off + int64(dt.Size()))
	m.touch(off + int64(dt.Size()))
	b := m.dram[off:]
	switch dt {
	case isa.U8:
		b[0] = uint8(clampRound(v, 0, 255))
	case isa.I8:
		b[0] = byte(int8(clampRound(v, -128, 127)))
	case isa.I16:
		binary.LittleEndian.PutUint16(b, uint16(int16(clampRound(v, math.MinInt16, math.MaxInt16))))
	case isa.I32:
		binary.LittleEndian.PutUint32(b, uint32(int32(clampRound(v, math.MinInt32, math.MaxInt32))))
	case isa.F32:
		binary.LittleEndian.PutUint32(b, math.Float32bits(v))
	case isa.F64:
		binary.LittleEndian.PutUint64(b, math.Float64bits(float64(v)))
	default:
		return fmt.Errorf("unknown stream dtype %v", dt)
	}
	return nil
}

// clampRound matches the tensor package's half-away-from-zero rounding
// and saturation, so DRX stores agree with the reference executor.
//
// Rounding is computed as trunc(x ± 0.5) rather than math.Round: Trunc
// compiles to a single ROUNDSD instruction while Round is a software
// bit-manipulation routine, and narrowing stores pay this per element.
// For inputs that are exact float32 values the two agree everywhere
// (including subnormals, where x±0.5 rounds to ±0.5 exactly, and huge
// values, where the tie in x+0.5 breaks to the even — unchanged — x);
// TestClampRoundMatchesMathRound checks the equivalence across the
// float32 range.
func clampRound(v float32, lo, hi float64) float64 {
	x := float64(v)
	if x >= 0 {
		x = math.Trunc(x + 0.5)
	} else {
		x = math.Trunc(x - 0.5)
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }
