package cluster

import (
	"fmt"

	"dmx/internal/sim"
	"dmx/internal/traffic"
)

// Policy selects how the router assigns an arrival to a replica.
type Policy uint8

// Routing policies.
const (
	// PolicyScore is placement-aware headroom routing: each arrival goes
	// to the host maximizing cap(host, app) / (outstanding + 1), where
	// cap is the app's analytic capacity bound on that host's plan
	// (dmxsys.Plan.Capacity). On a homogeneous fleet it degrades to
	// least-outstanding; on a heterogeneous one it weights hosts by how
	// well their DRX placement serves the pipeline.
	PolicyScore Policy = iota
	// PolicyRR round-robins each application's arrivals across hosts by
	// arrival index, skipping ineligible hosts.
	PolicyRR
	// PolicyLeast picks the eligible host with the fewest outstanding
	// requests (ties to the lowest index).
	PolicyLeast
)

var policyNames = [...]string{
	PolicyScore: "score",
	PolicyRR:    "rr",
	PolicyLeast: "least",
}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps a CLI token to a routing policy.
func ParsePolicy(s string) (Policy, error) {
	for i, name := range policyNames {
		if s == name {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown router policy %q (want score, rr, or least)", s)
}

// RouterConfig parameterizes the fleet's front door. The zero value
// routes by score with no admission cap and no draining — which, on a
// one-host fleet, always picks host 0 and preserves single-host
// behavior exactly.
type RouterConfig struct {
	Policy Policy
	// HostAdmit, when positive, caps each host's outstanding requests:
	// the router never assigns an arrival to a host already at the cap,
	// and rejects the request outright when every host is at it
	// (counted as Rejected in the report).
	HostAdmit int
	// DrainIncidents, when positive, drains a host — no new
	// assignments — while it has at least this many fault incidents
	// inside the trailing DrainWindow. A zero DrainWindow makes the
	// window unbounded (incidents never age out).
	DrainIncidents int
	DrainWindow    sim.Duration
}

// router is the fleet's load balancer. It is pure bookkeeping driven by
// the simulation clock — no wall time, no randomness — so routing
// decisions are part of the deterministic event timeline.
type router struct {
	cfg RouterConfig
	// caps[h][app] is app's capacity bound on host h (req/s).
	caps [][]float64
	// outstanding[h] counts requests assigned to h and not yet retired.
	outstanding []int
	// seq[app] is the PolicyRR arrival cursor.
	seq []int
	// lastIncidents[h] is the cumulative fault count already folded into
	// the trailing window; incidents[h] holds the timestamps inside it.
	lastIncidents []int
	incidents     [][]sim.Time
}

func newRouter(cfg RouterConfig, caps [][]float64, apps int) *router {
	hosts := len(caps)
	return &router{
		cfg:           cfg,
		caps:          caps,
		outstanding:   make([]int, hosts),
		seq:           make([]int, apps),
		lastIncidents: make([]int, hosts),
		incidents:     make([][]sim.Time, hosts),
	}
}

// observe folds host h's cumulative fault count into the trailing
// incident window and ages out entries older than DrainWindow.
func (r *router) observe(h, total int, now sim.Time) {
	for i := r.lastIncidents[h]; i < total; i++ {
		r.incidents[h] = append(r.incidents[h], now)
	}
	r.lastIncidents[h] = total
	if r.cfg.DrainWindow > 0 {
		cut := now.Add(-r.cfg.DrainWindow)
		keep := r.incidents[h][:0]
		for _, t := range r.incidents[h] {
			if t > cut {
				keep = append(keep, t)
			}
		}
		r.incidents[h] = keep
	}
}

// drained reports whether host h is currently refusing new work.
func (r *router) drained(h int) bool {
	return r.cfg.DrainIncidents > 0 && len(r.incidents[h]) >= r.cfg.DrainIncidents
}

// eligible reports whether host h may receive an arrival right now.
func (r *router) eligible(h int) bool {
	if r.drained(h) {
		return false
	}
	if r.cfg.HostAdmit > 0 && r.outstanding[h] >= r.cfg.HostAdmit {
		return false
	}
	return true
}

// pick assigns one arrival of app to a host, or returns -1 when every
// host is drained or at its admission cap. Ties break to the lowest
// host index, keeping the choice deterministic.
func (r *router) pick(app int) int {
	n := len(r.outstanding)
	switch r.cfg.Policy {
	case PolicyRR:
		start := traffic.RoundRobin(r.seq[app], n)
		r.seq[app]++
		for i := 0; i < n; i++ {
			h := (start + i) % n
			if r.eligible(h) {
				return h
			}
		}
		return -1
	case PolicyLeast:
		best := -1
		for h := 0; h < n; h++ {
			if !r.eligible(h) {
				continue
			}
			if best < 0 || r.outstanding[h] < r.outstanding[best] {
				best = h
			}
		}
		return best
	default: // PolicyScore
		best, bestScore := -1, 0.0
		for h := 0; h < n; h++ {
			if !r.eligible(h) {
				continue
			}
			if score := r.caps[h][app] / float64(r.outstanding[h]+1); best < 0 || score > bestScore {
				best, bestScore = h, score
			}
		}
		return best
	}
}
