package cluster

import (
	"fmt"

	"dmx/internal/sim"
)

// NetConfig models the fleet's inter-host network as a two-level tree:
// every message crosses the shared core once and its host's NIC once,
// each direction a separate fair-share channel — exactly how pcie
// models a switch uplink over a device link, reused at datacenter
// scale. The zero value disables the fabric entirely: requests reach
// hosts instantaneously, which is what preserves the single-host
// byte-identity of a one-host fleet.
type NetConfig struct {
	// NICBytesPerSec is each host's NIC bandwidth per direction
	// (0 = unmodeled: no NIC contention).
	NICBytesPerSec float64
	// CoreBytesPerSec is the shared core/aggregation bandwidth per
	// direction that all hosts contend on (0 = unmodeled).
	CoreBytesPerSec float64
	// Latency is the one-way propagation delay added to every message
	// after its bandwidth share drains.
	Latency sim.Duration
}

// enabled reports whether any part of the fabric is modeled.
func (c NetConfig) enabled() bool {
	return c.NICBytesPerSec > 0 || c.CoreBytesPerSec > 0 || c.Latency > 0
}

// Validate sanity-checks the configuration.
func (c NetConfig) Validate() error {
	if c.NICBytesPerSec < 0 {
		return fmt.Errorf("cluster: negative NIC bandwidth %g", c.NICBytesPerSec)
	}
	if c.CoreBytesPerSec < 0 {
		return fmt.Errorf("cluster: negative core bandwidth %g", c.CoreBytesPerSec)
	}
	if c.Latency < 0 {
		return fmt.Errorf("cluster: negative network latency %v", c.Latency)
	}
	return nil
}

// netFabric is the instantiated network: shared core channels on the
// fleet's global lane plus one NIC channel pair per host on the host's
// lane, joined store-and-forward by the propagation delay. The delay is
// exactly the sharded engine's lookahead, so every fabric crossing is a
// legal cross-lane send at any shard count (and a plain Schedule when
// the fleet runs sequentially). A nil *netFabric means the config was
// disabled and callers deliver synchronously.
type netFabric struct {
	lat              sim.Duration
	eng0             *sim.Engine   // global lane: router + core channels
	hostEng          []*sim.Engine // per-host lane engines: NIC channels
	coreDown, coreUp *sim.Channel
	nicDown, nicUp   []*sim.Channel
}

func newNetFabric(cfg NetConfig, eng0 *sim.Engine, hostEng []*sim.Engine) *netFabric {
	if !cfg.enabled() {
		return nil
	}
	f := &netFabric{lat: cfg.Latency, eng0: eng0, hostEng: hostEng}
	if cfg.CoreBytesPerSec > 0 {
		f.coreDown = sim.NewChannel(eng0, "net.core.down", cfg.CoreBytesPerSec)
		f.coreUp = sim.NewChannel(eng0, "net.core.up", cfg.CoreBytesPerSec)
	}
	if cfg.NICBytesPerSec > 0 {
		f.nicDown = make([]*sim.Channel, len(hostEng))
		f.nicUp = make([]*sim.Channel, len(hostEng))
		for h, he := range hostEng {
			f.nicDown[h] = sim.NewChannel(he, fmt.Sprintf("net.h%d.down", h), cfg.NICBytesPerSec)
			f.nicUp[h] = sim.NewChannel(he, fmt.Sprintf("net.h%d.up", h), cfg.NICBytesPerSec)
		}
	}
	return f
}

// down ships n bytes router → host h store-and-forward: the shared core
// drains the message on the global lane, the propagation delay carries
// it across lanes, host h's NIC drains it on the host's lane, and done
// runs there. (A zero latency implies a sequential fleet — the lookahead
// is gone — so the hop continues synchronously on the shared engine.)
func (f *netFabric) down(h int, n int64, done func()) {
	nic := func() {
		if f.nicDown != nil {
			f.nicDown[h].Start(n, done)
			return
		}
		done()
	}
	cross := func() {
		if f.lat > 0 {
			f.eng0.Send(f.hostEng[h], f.lat, nic)
			return
		}
		nic()
	}
	if f.coreDown != nil {
		f.coreDown.Start(n, cross)
		return
	}
	cross()
}

// up ships n bytes host h → router: NIC on the host's lane, propagation
// across lanes, core on the global lane, done at the router.
func (f *netFabric) up(h int, n int64, done func()) {
	core := func() {
		if f.coreUp != nil {
			f.coreUp.Start(n, done)
			return
		}
		done()
	}
	cross := func() {
		if f.lat > 0 {
			f.hostEng[h].Send(f.eng0, f.lat, core)
			return
		}
		core()
	}
	if f.nicUp != nil {
		f.nicUp[h].Start(n, cross)
		return
	}
	cross()
}
