package cluster

import (
	"fmt"

	"dmx/internal/sim"
)

// NetConfig models the fleet's inter-host network as a two-level tree:
// every message crosses the shared core once and its host's NIC once,
// each direction a separate fair-share channel — exactly how pcie
// models a switch uplink over a device link, reused at datacenter
// scale. The zero value disables the fabric entirely: requests reach
// hosts instantaneously, which is what preserves the single-host
// byte-identity of a one-host fleet.
type NetConfig struct {
	// NICBytesPerSec is each host's NIC bandwidth per direction
	// (0 = unmodeled: no NIC contention).
	NICBytesPerSec float64
	// CoreBytesPerSec is the shared core/aggregation bandwidth per
	// direction that all hosts contend on (0 = unmodeled).
	CoreBytesPerSec float64
	// Latency is the one-way propagation delay added to every message
	// after its bandwidth share drains.
	Latency sim.Duration
}

// enabled reports whether any part of the fabric is modeled.
func (c NetConfig) enabled() bool {
	return c.NICBytesPerSec > 0 || c.CoreBytesPerSec > 0 || c.Latency > 0
}

// Validate sanity-checks the configuration.
func (c NetConfig) Validate() error {
	if c.NICBytesPerSec < 0 {
		return fmt.Errorf("cluster: negative NIC bandwidth %g", c.NICBytesPerSec)
	}
	if c.CoreBytesPerSec < 0 {
		return fmt.Errorf("cluster: negative core bandwidth %g", c.CoreBytesPerSec)
	}
	if c.Latency < 0 {
		return fmt.Errorf("cluster: negative network latency %v", c.Latency)
	}
	return nil
}

// netFabric is the instantiated network: shared core channels plus one
// NIC channel pair per host, all on the fleet's engine. A nil
// *netFabric means the config was disabled and callers deliver
// synchronously.
type netFabric struct {
	eng              *sim.Engine
	lat              sim.Duration
	coreDown, coreUp *sim.Channel
	nicDown, nicUp   []*sim.Channel
}

func newNetFabric(eng *sim.Engine, cfg NetConfig, hosts int) *netFabric {
	if !cfg.enabled() {
		return nil
	}
	f := &netFabric{eng: eng, lat: cfg.Latency}
	if cfg.CoreBytesPerSec > 0 {
		f.coreDown = sim.NewChannel(eng, "net.core.down", cfg.CoreBytesPerSec)
		f.coreUp = sim.NewChannel(eng, "net.core.up", cfg.CoreBytesPerSec)
	}
	if cfg.NICBytesPerSec > 0 {
		f.nicDown = make([]*sim.Channel, hosts)
		f.nicUp = make([]*sim.Channel, hosts)
		for h := 0; h < hosts; h++ {
			f.nicDown[h] = sim.NewChannel(eng, fmt.Sprintf("net.h%d.down", h), cfg.NICBytesPerSec)
			f.nicUp[h] = sim.NewChannel(eng, fmt.Sprintf("net.h%d.up", h), cfg.NICBytesPerSec)
		}
	}
	return f
}

// down ships n bytes router → host h, then calls done.
func (f *netFabric) down(h int, n int64, done func()) {
	var links []*sim.Channel
	if f.coreDown != nil {
		links = append(links, f.coreDown)
	}
	if f.nicDown != nil {
		links = append(links, f.nicDown[h])
	}
	f.xfer(links, n, done)
}

// up ships n bytes host h → router, then calls done.
func (f *netFabric) up(h int, n int64, done func()) {
	var links []*sim.Channel
	if f.nicUp != nil {
		links = append(links, f.nicUp[h])
	}
	if f.coreUp != nil {
		links = append(links, f.coreUp)
	}
	f.xfer(links, n, done)
}

// xfer drains n bytes through every hop's fair-share channel
// concurrently (the pcie.Transfer countdown pattern: the message lands
// when its slowest hop finishes), then pays the propagation delay.
func (f *netFabric) xfer(links []*sim.Channel, n int64, done func()) {
	finish := done
	if f.lat > 0 {
		finish = func() { f.eng.Schedule(f.lat, done) }
	}
	if len(links) == 0 {
		finish()
		return
	}
	remaining := len(links)
	hop := func() {
		remaining--
		if remaining == 0 {
			finish()
		}
	}
	for _, l := range links {
		l.Start(n, hop)
	}
}
