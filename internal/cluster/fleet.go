package cluster

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/obs"
	"dmx/internal/sim"
	"dmx/internal/traffic"
)

// FleetConfig composes N serving replicas into a cluster.
type FleetConfig struct {
	// Hosts is the replica count (≥ 1).
	Hosts int
	// Base is the shared host configuration. Its Obs recorder (or Trace
	// hook, single-host only) becomes the whole fleet's event sink.
	Base dmxsys.Config
	// PerHost, when non-empty, overrides Base per replica (length must
	// equal Hosts) — a heterogeneous fleet mixing placements or DRX
	// geometries. Trace sinks still come from Base.
	PerHost []dmxsys.Config
	// Net models the inter-host network; the zero value disables it.
	Net NetConfig
	// Router parameterizes load balancing, per-host admission, and
	// fault-aware draining; the zero value is score routing, uncapped.
	Router RouterConfig
	// Shards requests conservative-parallel execution: the fleet is
	// partitioned across up to Shards event lanes (one per host plus a
	// global lane for the router and core fabric, so at most Hosts+1 are
	// used) that run concurrently inside lookahead windows derived from
	// Net.Latency. Reports, traces, and metrics are byte-identical at any
	// value. 0 or 1 means sequential; a fleet without a network latency
	// has no lookahead and always runs sequentially regardless of Shards.
	Shards int
}

// hostCfg is host h's effective configuration.
func (c FleetConfig) hostCfg(h int) dmxsys.Config {
	if len(c.PerHost) > 0 {
		return c.PerHost[h]
	}
	return c.Base
}

// Fleet is N instantiated replicas of a serving plan on one shard
// group of deterministic engines — host h on lane 1+h%(K−1), the
// router and core fabric on lane 0 — joined by a network fabric and
// fronted by the cluster router. With Shards ≤ 1 (or no network
// latency) the group is a single plain engine and Run is the classic
// sequential loop. Like a System, a Fleet is single-shot: Run consumes
// the engines.
type Fleet struct {
	cfg     FleetConfig
	g       *sim.ShardGroup
	eng0    *sim.Engine   // global lane: router, arrivals, core fabric
	hostEng []*sim.Engine // per-host lane engines (aliases of eng0 when sequential)
	plans   []*dmxsys.Plan
	hosts   []*dmxsys.System
	net     *netFabric
	rt      *router
	routed  [][]int // [host][app] requests delivered to the host
}

// New validates the configuration, builds the plans (one shared plan
// for a homogeneous fleet), and instantiates every replica under its
// host prefix on one engine.
func New(cfg FleetConfig, pipelines []*dmxsys.Pipeline) (*Fleet, error) {
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 host (got %d)", cfg.Hosts)
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.Router.HostAdmit < 0 || cfg.Router.DrainIncidents < 0 || cfg.Router.DrainWindow < 0 {
		return nil, fmt.Errorf("cluster: negative router parameter")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: negative shard count %d", cfg.Shards)
	}
	if len(cfg.PerHost) != 0 && len(cfg.PerHost) != cfg.Hosts {
		return nil, fmt.Errorf("cluster: PerHost has %d entries for %d hosts", len(cfg.PerHost), cfg.Hosts)
	}
	if cfg.Hosts > 1 && cfg.Base.Trace != nil {
		return nil, fmt.Errorf("cluster: the text Trace hook is single-host only; use Base.Obs for fleet traces")
	}
	for h := range cfg.PerHost {
		if cfg.PerHost[h].Obs != nil || cfg.PerHost[h].Trace != nil {
			return nil, fmt.Errorf("cluster: set trace sinks on Base, not PerHost[%d]", h)
		}
	}
	// Lane count: one lane per host plus the global lane, capped by the
	// requested shard count. NewShardGroup itself falls back to one plain
	// engine when the lookahead (the fabric latency) is zero — a fleet
	// whose hosts are reachable instantaneously cannot run conservatively
	// in parallel, and silently degrading beats refusing to run.
	lanes := cfg.Shards
	if lanes > cfg.Hosts+1 {
		lanes = cfg.Hosts + 1
	}
	g := sim.NewShardGroup(lanes, cfg.Net.Latency)
	f := &Fleet{cfg: cfg, g: g, eng0: g.Engine(0)}
	f.hostEng = make([]*sim.Engine, cfg.Hosts)
	var shared *dmxsys.Plan
	for h := 0; h < cfg.Hosts; h++ {
		var (
			p   *dmxsys.Plan
			err error
		)
		if len(cfg.PerHost) == 0 {
			// Homogeneous replicas share one immutable plan: layout,
			// warmed DRX timings, scheduling tables, capacity bounds.
			if shared == nil {
				shared, err = dmxsys.NewPlan(cfg.Base, pipelines)
			}
			p = shared
		} else {
			p, err = dmxsys.NewPlan(cfg.PerHost[h], pipelines)
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", h, err)
		}
		pfx := ""
		if cfg.Hosts > 1 {
			// A one-host fleet keeps the plain station names so its run
			// is byte-identical to a standalone System.
			pfx = fmt.Sprintf("h%d/", h)
		}
		lane := 0
		if k := g.Lanes(); k > 1 {
			lane = 1 + h%(k-1)
		}
		f.hostEng[h] = g.Engine(lane)
		sys, err := p.Instantiate(f.hostEng[h], dmxsys.HostOpts{Prefix: pfx, Obs: cfg.Base.Obs})
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", h, err)
		}
		f.plans = append(f.plans, p)
		f.hosts = append(f.hosts, sys)
	}
	if f.eng0.Obs == nil {
		// Hosts install the fleet recorder on their own lanes; the global
		// lane carries the router and fabric and needs it too.
		f.eng0.Obs = cfg.Base.Obs
	}
	apps := f.plans[0].Apps()
	caps := make([][]float64, cfg.Hosts)
	f.routed = make([][]int, cfg.Hosts)
	for h := range caps {
		caps[h] = make([]float64, apps)
		for a := 0; a < apps; a++ {
			caps[h][a] = f.plans[h].Capacity(a).PerSecond
		}
		f.routed[h] = make([]int, apps)
	}
	f.rt = newRouter(cfg.Router, caps, apps)
	f.net = newNetFabric(cfg.Net, f.eng0, f.hostEng)
	if cfg.Router.DrainIncidents > 0 {
		// Fault-aware draining is push-based: each fresh incident streams
		// a notification to the router over the fabric's one-way latency
		// instead of the router polling host state at every arrival. The
		// counter is lane-local to the host; the router folds it into the
		// drain window on the global lane when the notification lands.
		// Installed only when draining is configured, so other fleets keep
		// the polling-free event stream they always had.
		lat := cfg.Net.Latency
		for h := range f.hosts {
			h := h
			he := f.hostEng[h]
			total := 0
			f.hosts[h].OnFaultIncident(func() {
				total++
				n := total
				he.Send(f.eng0, lat, func() {
					f.rt.observe(h, n, f.eng0.Now())
				})
			})
		}
	}
	return f, nil
}

// Hosts reports the replica count.
func (f *Fleet) Hosts() int { return len(f.hosts) }

// Shards reports the event-lane count the fleet actually runs with: 1
// when sequential (whether requested or forced by a zero-latency
// fabric), otherwise the clamped FleetConfig.Shards.
func (f *Fleet) Shards() int { return f.g.Lanes() }

// Routed reports, per host and per app, how many requests the router
// delivered (populated by Run).
func (f *Fleet) Routed() [][]int { return f.routed }

// FaultCounts sums the fault incidents every replica observed.
func (f *Fleet) FaultCounts() faults.Counts {
	var c faults.Counts
	for _, s := range f.hosts {
		hc := s.FaultCounts()
		c.DRXOutages += hc.DRXOutages
		c.LinkIncidents += hc.LinkIncidents
		c.Stalls += hc.Stalls
		c.Transients += hc.Transients
	}
	return c
}

// Run drives the fleet under spec's arrival process and rolls the
// per-replica accounting up into one cluster-wide LoadReport. Every
// request retires into exactly one per-(host, app) partial row (or the
// router's rejection row), and the merged report preserves per-app
// tail-latency accounting: latency histograms merge bucket-for-bucket,
// quantiles are re-derived from the merged histograms, and availability
// spans the whole fleet. With one host and the zero-valued network and
// router configs the report is byte-identical to System.RunLoad's.
func (f *Fleet) Run(spec traffic.Spec) (traffic.LoadReport, error) {
	if err := spec.Validate(); err != nil {
		return traffic.LoadReport{}, err
	}
	nh := len(f.hosts)
	apps := f.plans[0].Apps()
	rep := traffic.LoadReport{Arrival: spec.Arrival, Seed: spec.Seed}
	rep.PerApp = make([]traffic.AppLoad, apps)

	// Partial accounting rows: one per (host, app), plus one router row
	// per app holding router-level rejections. MergeApps sums them.
	parts := make([][]traffic.AppLoad, nh)
	firsts := make([][]sim.Time, nh)
	lasts := make([][]sim.Time, nh)
	for h := 0; h < nh; h++ {
		parts[h] = make([]traffic.AppLoad, apps)
		firsts[h] = make([]sim.Time, apps)
		lasts[h] = make([]sim.Time, apps)
		for i := 0; i < apps; i++ {
			parts[h][i].App = f.plans[0].Pipeline(i).Name
		}
	}
	routerAL := make([]traffic.AppLoad, apps)
	for i := range routerAL {
		routerAL[i].App = f.plans[0].Pipeline(i).Name
	}

	remaining := 0
	for i := 0; i < apps; i++ {
		i := i
		pipe := f.plans[0].Pipeline(i)
		dl := spec.DeadlineFor(i)
		start := sim.Duration(i) * f.cfg.Base.StartStagger
		for _, off := range spec.Arrivals(i) {
			remaining++
			f.eng0.Schedule(start+off, func() {
				now := f.eng0.Now()
				h := f.rt.pick(i)
				if h < 0 {
					// Every host drained or at its admission cap: the
					// router turns the request away itself.
					routerAL[i].Requests++
					routerAL[i].Rejected++
					f.eng0.Obs.Instant(obs.Time(now), obs.TypeRoute, 0,
						"cluster.router", "", pipe.Name, f.cfg.Router.Policy.String(), -1)
					remaining--
					return
				}
				f.rt.outstanding[h]++
				f.routed[h][i]++
				parts[h][i].Requests++
				f.eng0.Obs.Instant(obs.Time(now), obs.TypeRoute, 0,
					"cluster.router", fmt.Sprintf("h%d", h), pipe.Name,
					f.cfg.Router.Policy.String(), int64(f.rt.outstanding[h]))

				retire := func(ret dmxsys.Retired) {
					end := f.eng0.Now()
					al := &parts[h][i]
					al.Retries += ret.Retries
					al.Timeouts += ret.Timeouts
					remaining--
					switch ret.Outcome {
					case traffic.OutcomeRejected:
						al.Rejected++
						return
					case traffic.OutcomeAbandoned:
						al.Abandoned++
						return
					}
					// End-to-end latency and deadline: measured from the
					// cluster arrival, so network time counts against the
					// budget exactly like queueing time.
					lat := obs.Duration(end.Sub(now))
					al.Latency.Add(lat)
					if ret.Outcome == traffic.OutcomeDegraded {
						al.Degraded++
						al.DegradedLat.Add(lat)
					} else {
						al.CleanLat.Add(lat)
					}
					if dl != 0 && end > now.Add(dl) {
						al.Missed++
					}
					if al.Completed == 0 || end < firsts[h][i] {
						firsts[h][i] = end
					}
					if end > lasts[h][i] {
						lasts[h][i] = end
					}
					al.Completed++
				}
				// The router's outstanding slot frees when the response
				// arrives back at the router — on the global lane, where
				// all routing state lives.
				finish := func(ret dmxsys.Retired) {
					f.rt.outstanding[h]--
					retire(ret)
				}
				deliver := func() {
					f.hosts[h].Admit(i, dl, func(ret dmxsys.Retired) {
						if f.net == nil {
							finish(ret)
							return
						}
						// Response leg: completed requests carry the
						// pipeline's output; control-only retirements
						// (rejections, abandons) pay latency alone.
						out := int64(0)
						if ret.Outcome == traffic.OutcomeClean || ret.Outcome == traffic.OutcomeDegraded {
							out = pipe.OutputBytes
						}
						f.net.up(h, out, func() { finish(ret) })
					})
				}
				if f.net == nil {
					deliver()
					return
				}
				f.net.down(h, pipe.InputBytes, deliver)
			})
		}
	}
	f.g.Run()
	for h, s := range f.hosts {
		if err := s.Err(); err != nil {
			return traffic.LoadReport{}, fmt.Errorf("cluster: host %d: %w", h, err)
		}
	}
	if remaining != 0 {
		return traffic.LoadReport{}, fmt.Errorf("cluster: %d requests never completed (deadlocked fleet)", remaining)
	}
	rep.Makespan = sim.Duration(f.g.Now())

	// Per-partial rates, then the roll-up. Offered splits across the
	// partials in proportion to the requests each actually received
	// (router rejections included), so the merged row sums back to the
	// spec rate and a one-host fleet reports it exactly.
	for i := 0; i < apps; i++ {
		counts := make([]int, nh+1)
		for h := 0; h < nh; h++ {
			counts[h] = parts[h][i].Requests
		}
		counts[nh] = routerAL[i].Requests
		if spec.Arrival != traffic.ClosedLoop {
			shares := traffic.SplitRate(spec.Rate, counts)
			for h := 0; h < nh; h++ {
				parts[h][i].Offered = shares[h]
			}
			routerAL[i].Offered = shares[nh]
		}
		rows := make([]traffic.AppLoad, 0, nh+1)
		for h := 0; h < nh; h++ {
			al := &parts[h][i]
			if span := lasts[h][i].Sub(firsts[h][i]).Seconds(); al.Completed > 1 && span > 0 {
				al.Achieved = float64(al.Completed-1) / span
			}
			al.Batches, al.BatchedRequests = f.hosts[h].BatchStats(i)
			rows = append(rows, *al)
		}
		rows = append(rows, routerAL[i])
		rep.PerApp[i] = traffic.MergeApps(rows...)
	}
	rep.Finalize()
	return rep, nil
}
