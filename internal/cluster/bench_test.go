package cluster

// Steady-state cost of the cluster layer's hot paths. benchsnap gates
// the allocs/op of these in CI (BENCH_cluster_baseline.json): the
// router decision and the fabric transfer sit on every request of every
// fleet experiment, so an accidental per-decision allocation multiplies
// across millions of simulated arrivals.

import (
	"testing"

	"dmx/internal/sim"
)

func benchCaps(hosts, apps int) [][]float64 {
	caps := make([][]float64, hosts)
	for h := range caps {
		caps[h] = make([]float64, apps)
		for a := range caps[h] {
			caps[h][a] = float64(100 * (h + a + 1))
		}
	}
	return caps
}

func BenchmarkRouterPickScore(b *testing.B) {
	rt := newRouter(RouterConfig{HostAdmit: 64}, benchCaps(8, 4), 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := rt.pick(i & 3)
		rt.outstanding[h]++
		rt.outstanding[h]--
	}
}

func BenchmarkRouterPickRR(b *testing.B) {
	rt := newRouter(RouterConfig{Policy: PolicyRR}, benchCaps(8, 4), 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.pick(i & 3)
	}
}

func BenchmarkRouterObserve(b *testing.B) {
	rt := newRouter(RouterConfig{DrainIncidents: 4, DrainWindow: sim.Millisecond},
		benchCaps(4, 1), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// One new incident per call with an advancing clock: the window
		// prunes as fast as it fills, so the slice reaches steady state.
		rt.observe(i&3, i+1, sim.Time(i)*sim.Time(10*sim.Microsecond))
	}
}

func BenchmarkNetFabricTransfer(b *testing.B) {
	eng := sim.NewEngine()
	f := newNetFabric(eng, NetConfig{
		NICBytesPerSec:  12.5e9,
		CoreBytesPerSec: 50e9,
		Latency:         2 * sim.Microsecond,
	}, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		done := false
		f.down(i&3, 4096, func() { done = true })
		eng.Run()
		if !done {
			b.Fatal("transfer never completed")
		}
	}
}
