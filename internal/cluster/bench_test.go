package cluster

// Steady-state cost of the cluster layer's hot paths. benchsnap gates
// the allocs/op of these in CI (BENCH_cluster_baseline.json): the
// router decision and the fabric transfer sit on every request of every
// fleet experiment, so an accidental per-decision allocation multiplies
// across millions of simulated arrivals.

import (
	"fmt"
	"runtime"
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

func benchCaps(hosts, apps int) [][]float64 {
	caps := make([][]float64, hosts)
	for h := range caps {
		caps[h] = make([]float64, apps)
		for a := range caps[h] {
			caps[h][a] = float64(100 * (h + a + 1))
		}
	}
	return caps
}

func BenchmarkRouterPickScore(b *testing.B) {
	rt := newRouter(RouterConfig{HostAdmit: 64}, benchCaps(8, 4), 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := rt.pick(i & 3)
		rt.outstanding[h]++
		rt.outstanding[h]--
	}
}

func BenchmarkRouterPickRR(b *testing.B) {
	rt := newRouter(RouterConfig{Policy: PolicyRR}, benchCaps(8, 4), 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.pick(i & 3)
	}
}

func BenchmarkRouterObserve(b *testing.B) {
	rt := newRouter(RouterConfig{DrainIncidents: 4, DrainWindow: sim.Millisecond},
		benchCaps(4, 1), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// One new incident per call with an advancing clock: the window
		// prunes as fast as it fills, so the slice reaches steady state.
		rt.observe(i&3, i+1, sim.Time(i)*sim.Time(10*sim.Microsecond))
	}
}

func BenchmarkNetFabricTransfer(b *testing.B) {
	eng := sim.NewEngine()
	hostEng := []*sim.Engine{eng, eng, eng, eng}
	f := newNetFabric(NetConfig{
		NICBytesPerSec:  12.5e9,
		CoreBytesPerSec: 50e9,
		Latency:         2 * sim.Microsecond,
	}, eng, hostEng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		done := false
		f.down(i&3, 4096, func() { done = true })
		eng.Run()
		if !done {
			b.Fatal("transfer never completed")
		}
	}
}

// BenchmarkFleetShardedRun prices a complete 4-host fleet run through
// the conservative-parallel machinery: shards=1 is the plain sequential
// engine, shards=4 the windowed group, so the pair is the sharding
// overhead at fleet scale. GOMAXPROCS is pinned to 1 so the measured
// path (inline windows) is identical on every host; the multi-core
// wall-clock win is measured at the experiment level instead.
//
// Unlike the router/fabric micro-benches this one does not
// ReportAllocs: a full fleet run allocates thousands of objects
// including map overflow buckets, whose count depends on each map's
// randomized hash seed and so drifts ±1 between processes — an exact
// alloc gate on it would flake. benchsnap still gates the benchmark's
// presence and records its timing shape.
func BenchmarkFleetShardedRun(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		b.Fatal(err)
	}
	var pipe *dmxsys.Pipeline
	for _, w := range benches {
		if len(w.Pipeline.Hops) > 0 {
			pipe = w.Pipeline
			break
		}
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := New(FleetConfig{
					Hosts:  4,
					Base:   dmxsys.DefaultConfig(dmxsys.BumpInTheWire),
					Net:    NetConfig{NICBytesPerSec: 12.5e9, Latency: 2 * sim.Microsecond},
					Shards: shards,
				}, []*dmxsys.Pipeline{pipe})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := f.Run(traffic.Spec{Arrival: traffic.Poisson,
					Rate: 8000, Requests: 64, Seed: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
