package cluster_test

// Sharded-execution acceptance gates. The contract under test is the
// headline one from internal/sim: a fleet run under conservative-
// parallel sharding produces byte-identical reports, traces, fault
// counts, and routing decisions at ANY shard count — shards=1 being
// literally the classic sequential engine. The workload here leans on
// every cross-lane mechanism at once: the store-and-forward fabric
// (both directions), push-based fault observation into the router's
// drain window, batching, EDF scheduling, retries, and deadlines, all
// under a structured trace so flow ids and sequence numbers are part
// of the comparison.

import (
	"bytes"
	"runtime"
	"testing"

	"dmx/internal/cluster"
	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/obs"
	"dmx/internal/sim"
	"dmx/internal/traffic"
)

// shardedOutcome is everything a fleet run externalizes.
type shardedOutcome struct {
	report string
	trace  []byte
	counts faults.Counts
	routed [][]int
	lanes  int
}

// runShardedFleet executes the canonical sharded-acceptance workload
// with the given shard request and returns its full outcome.
func runShardedFleet(t *testing.T, shards int) shardedOutcome {
	t.Helper()
	b := chainedBench(t)
	base := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	base.Obs = obs.New()
	base.BatchWindow = 150 * sim.Microsecond
	base.BatchMax = 4
	base.Sched = dmxsys.SchedEDF
	base.Faults = &faults.Plan{Seed: 29, DRXMTBF: 1500 * sim.Microsecond,
		DRXRepair: 400 * sim.Microsecond, TransientProb: 0.08}
	base.Retry = faults.DefaultRetry()
	rate := 1.5 * capOf(t, base, b.Pipeline)
	cfg := cluster.FleetConfig{
		Hosts: 5,
		Base:  base,
		Net: cluster.NetConfig{NICBytesPerSec: 12.5e9, CoreBytesPerSec: 40e9,
			Latency: 3 * sim.Microsecond},
		Router: cluster.RouterConfig{DrainIncidents: 2,
			DrainWindow: 2 * sim.Millisecond},
		Shards: shards,
	}
	spec := traffic.Spec{Arrival: traffic.Poisson, Rate: rate, Requests: 96,
		Seed: 31, Deadline: 8 * sim.Millisecond}
	f, rep := fleetRun(t, cfg, spec, b.Pipeline)
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, base.Obs.Events()); err != nil {
		t.Fatal(err)
	}
	return shardedOutcome{report: rep.String(), trace: buf.Bytes(),
		counts: f.FaultCounts(), routed: f.Routed(), lanes: f.Shards()}
}

func diffShardedFleet(t *testing.T, want, got shardedOutcome, label string) {
	t.Helper()
	if got.report != want.report {
		t.Errorf("%s: report diverged from sequential:\n--- sharded\n%s\n--- sequential\n%s",
			label, got.report, want.report)
	}
	if !bytes.Equal(got.trace, want.trace) {
		t.Errorf("%s: trace bytes diverged from sequential (%d vs %d bytes)",
			label, len(got.trace), len(want.trace))
	}
	if got.counts != want.counts {
		t.Errorf("%s: fault counts %+v, sequential saw %+v", label, got.counts, want.counts)
	}
	for h := range want.routed {
		for a := range want.routed[h] {
			if got.routed[h][a] != want.routed[h][a] {
				t.Errorf("%s: host %d app %d routed %d requests, sequential routed %d",
					label, h, a, got.routed[h][a], want.routed[h][a])
			}
		}
	}
}

func TestFleetShardedByteIdentity(t *testing.T) {
	want := runShardedFleet(t, 1)
	if want.lanes != 1 {
		t.Fatalf("shards=1 ran with %d lanes", want.lanes)
	}
	if want.counts == (faults.Counts{}) {
		t.Fatal("workload injected no faults; the push-observation path is untested (pick another seed)")
	}
	for _, tc := range []struct {
		shards, lanes int
	}{
		{2, 2},
		{4, 4},
		{8, 6}, // clamped to hosts+1
	} {
		got := runShardedFleet(t, tc.shards)
		if got.lanes != tc.lanes {
			t.Fatalf("shards=%d ran with %d lanes, want %d", tc.shards, got.lanes, tc.lanes)
		}
		diffShardedFleet(t, want, got, "shards="+string(rune('0'+tc.shards)))
	}
}

// TestFleetShardedByteIdentityParallel repeats the comparison with
// GOMAXPROCS raised so the shard group dispatches lanes to worker
// goroutines even on a single-CPU host — the inline and worker window
// paths must externalize identical bytes.
func TestFleetShardedByteIdentityParallel(t *testing.T) {
	want := runShardedFleet(t, 1)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	got := runShardedFleet(t, 6)
	diffShardedFleet(t, want, got, "shards=6 (worker goroutines)")
}

// TestFleetZeroNetSequentialFallback pins the degraded mode: a fleet
// whose network config is the zero value has no lookahead, so a shard
// request silently falls back to one lane and the run is byte-identical
// to never having asked.
func TestFleetZeroNetSequentialFallback(t *testing.T) {
	b := chainedBench(t)
	base := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	spec := traffic.Spec{Arrival: traffic.Poisson, Rate: 5000, Requests: 48, Seed: 11}
	f, sharded := fleetRun(t, cluster.FleetConfig{Hosts: 3, Base: base,
		Net: cluster.NetConfig{}, Shards: 8}, spec, b.Pipeline)
	if f.Shards() != 1 {
		t.Fatalf("zero-latency fabric ran with %d lanes, want sequential fallback", f.Shards())
	}
	_, plain := fleetRun(t, cluster.FleetConfig{Hosts: 3, Base: base}, spec, b.Pipeline)
	if sharded.String() != plain.String() {
		t.Errorf("Shards=8 over a zero fabric diverged from the plain fleet:\n%s\nvs:\n%s",
			sharded, plain)
	}
}
