// Package cluster composes N replicas of one dmxsys.System into a
// served fleet: one shared deterministic engine, an inter-host network
// fabric modeled with the same bandwidth-shared-channel machinery that
// models PCIe links inside a host, and a front-door router that spreads
// an open-loop arrival process across the replicas.
//
// The split follows dmxsys's Plan/Instantiate refactor: a fleet builds
// one Plan (validation, DRX timing, scheduling tables, capacity bounds)
// and instantiates it N times under distinct host prefixes ("h0/",
// "h1/", ...), so replicas share the expensive immutable half and the
// whole cluster runs as a single event-ordered simulation — fleet
// results are byte-identical at any sweep worker count for free.
//
// The router is placement- and fault-aware. PolicyScore routes each
// arrival to the host maximizing cap(host, app)/(outstanding+1), where
// cap is the analytic capacity bound dmxsys.Plan.Capacity computes from
// the placement's per-resource occupancy charges — a heterogeneous
// fleet therefore steers a pipeline toward the hosts whose DRX
// placement favors it. Hosts whose fault-injection incident count
// spikes inside a trailing window are drained (no new work) until the
// window clears, and a per-host outstanding cap provides cluster-level
// admission control on top of each host's own AdmitLimit.
//
// A fleet of one host with the zero-valued network and router configs
// reproduces System.RunLoad bit for bit: same engine timeline, same
// LoadReport bytes. That identity is pinned by a golden test and is
// what makes the cluster layer a refactor-safe superset of the
// single-host serving stack.
package cluster
