package cluster_test

// Fleet acceptance gates. The load-bearing one is single-host byte
// identity: a one-host fleet with the zero network and router configs
// must reproduce System.RunLoad's LoadReport bytes exactly, across
// placements and across the serving features (batching, admission
// control, deadlines, fault injection with retry). The rest pin the
// roll-up arithmetic, the router's placement/fault/admission behavior,
// and the multi-host trace.

import (
	"bytes"
	"strings"
	"testing"

	"dmx/internal/cluster"
	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/obs"
	"dmx/internal/sim"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// chainedBench returns one multi-stage benchmark from the test-scale
// suite (fleet routing is only interesting with hops to restructure).
func chainedBench(t *testing.T) *workload.Benchmark {
	t.Helper()
	benches, err := workload.Suite(workload.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		if len(b.Pipeline.Hops) > 0 {
			return b
		}
	}
	t.Fatal("no chained benchmark in suite")
	return nil
}

// capOf is app 0's analytic capacity bound under cfg (req/s), used to
// scale offered load so tests stay fast and deterministic.
func capOf(t *testing.T, cfg dmxsys.Config, pipe *dmxsys.Pipeline) float64 {
	t.Helper()
	p, err := dmxsys.NewPlan(cfg, []*dmxsys.Pipeline{pipe})
	if err != nil {
		t.Fatal(err)
	}
	return p.Capacity(0).PerSecond
}

func fleetRun(t *testing.T, cfg cluster.FleetConfig, spec traffic.Spec, pipes ...*dmxsys.Pipeline) (*cluster.Fleet, traffic.LoadReport) {
	t.Helper()
	f, err := cluster.New(cfg, pipes)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := f.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return f, rep
}

func TestFleetSingleHostByteIdentity(t *testing.T) {
	b := chainedBench(t)
	cases := []struct {
		name string
		cfg  func() dmxsys.Config
		spec traffic.Spec
	}{
		{"bump-poisson", func() dmxsys.Config {
			return dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
		}, traffic.Spec{Arrival: traffic.Poisson, Rate: 2000, Requests: 48, Seed: 7}},
		{"multiaxl-open-deadline", func() dmxsys.Config {
			cfg := dmxsys.DefaultConfig(dmxsys.MultiAxl)
			cfg.StartStagger = 50 * sim.Microsecond
			return cfg
		}, traffic.Spec{Arrival: traffic.OpenLoop, Rate: 3000, Requests: 32, Deadline: 2 * sim.Millisecond}},
		{"allcpu-closed", func() dmxsys.Config {
			return dmxsys.DefaultConfig(dmxsys.AllCPU)
		}, traffic.Spec{Arrival: traffic.ClosedLoop, Requests: 8}},
		{"bump-batched-admitted-faulty", func() dmxsys.Config {
			cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
			cfg.BatchWindow = 200 * sim.Microsecond
			cfg.BatchMax = 4
			cfg.AdmitLimit = 12
			cfg.Sched = dmxsys.SchedEDF
			cfg.Faults = &faults.Plan{Seed: 11, DRXMTBF: 2 * sim.Millisecond,
				DRXRepair: 300 * sim.Microsecond, TransientProb: 0.05}
			cfg.Retry = faults.DefaultRetry()
			return cfg
		}, traffic.Spec{Arrival: traffic.Poisson, Rate: 4000, Requests: 64, Seed: 3,
			Deadline: 5 * sim.Millisecond}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			solo, err := dmxsys.New(tc.cfg(), []*dmxsys.Pipeline{b.Pipeline})
			if err != nil {
				t.Fatal(err)
			}
			want, err := solo.RunLoad(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			_, got := fleetRun(t, cluster.FleetConfig{Hosts: 1, Base: tc.cfg()}, tc.spec, b.Pipeline)
			if got.String() != want.String() {
				t.Errorf("one-host fleet diverged from RunLoad:\n--- fleet\n%s\n--- solo\n%s", got, want)
			}
		})
	}
}

func TestFleetRepeatDeterminism(t *testing.T) {
	b := chainedBench(t)
	cfg := cluster.FleetConfig{Hosts: 3, Base: dmxsys.DefaultConfig(dmxsys.BumpInTheWire)}
	spec := traffic.Spec{Arrival: traffic.Poisson, Rate: 6000, Requests: 48, Seed: 21}
	_, first := fleetRun(t, cfg, spec, b.Pipeline)
	_, second := fleetRun(t, cfg, spec, b.Pipeline)
	if first.String() != second.String() {
		t.Errorf("same fleet config produced different reports:\n%s\nvs:\n%s", first, second)
	}
}

func TestFleetRollup(t *testing.T) {
	b := chainedBench(t)
	base := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	hosts := 3
	spec := traffic.Spec{Arrival: traffic.Poisson, Rate: 6000, Requests: 60, Seed: 5}
	f, rep := fleetRun(t, cluster.FleetConfig{
		Hosts:  hosts,
		Base:   base,
		Router: cluster.RouterConfig{Policy: cluster.PolicyRR},
	}, spec, b.Pipeline)

	al := rep.PerApp[0]
	if al.Requests != spec.Requests {
		t.Errorf("merged Requests = %d, want %d", al.Requests, spec.Requests)
	}
	if got := al.Completed + al.Abandoned + al.Rejected; got != al.Requests {
		t.Errorf("outcomes sum to %d of %d requests", got, al.Requests)
	}
	if al.Latency.Count != int64(al.Completed) {
		t.Errorf("latency histogram holds %d samples for %d completions", al.Latency.Count, al.Completed)
	}
	if al.CleanLat.Count+al.DegradedLat.Count != al.Latency.Count {
		t.Error("outcome-split histograms do not partition the latency histogram")
	}
	if al.Max < al.P99 || al.P99 < al.P50 {
		t.Errorf("merged quantiles disordered: p50 %v p99 %v max %v", al.P50, al.P99, al.Max)
	}
	if diff := al.Offered - spec.Rate; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("merged Offered = %g, want ~%g", al.Offered, spec.Rate)
	}
	// Round-robin with no admission cap assigns arrival j to host j%3
	// exactly.
	routed := f.Routed()
	total := 0
	for h := 0; h < hosts; h++ {
		want := spec.Requests / hosts
		if h < spec.Requests%hosts {
			want++
		}
		if routed[h][0] != want {
			t.Errorf("host %d received %d requests, want %d (strict round-robin)", h, routed[h][0], want)
		}
		total += routed[h][0]
	}
	if total != spec.Requests {
		t.Errorf("routed %d of %d requests", total, spec.Requests)
	}
}

func TestRouterHostAdmit(t *testing.T) {
	b := chainedBench(t)
	spec := traffic.Spec{Arrival: traffic.ClosedLoop, Requests: 16}
	_, rep := fleetRun(t, cluster.FleetConfig{
		Hosts:  2,
		Base:   dmxsys.DefaultConfig(dmxsys.BumpInTheWire),
		Router: cluster.RouterConfig{HostAdmit: 2},
	}, spec, b.Pipeline)
	al := rep.PerApp[0]
	// A closed-loop burst lands before any completion: 2 hosts × 2
	// outstanding admit 4 requests, the router rejects the other 12.
	if al.Rejected != 12 || al.Completed != 4 {
		t.Errorf("HostAdmit=2 on 2 hosts: %d completed, %d rejected (want 4, 12)", al.Completed, al.Rejected)
	}
	if al.Requests != spec.Requests {
		t.Errorf("Requests = %d, want %d (router rejections must stay in the total)", al.Requests, spec.Requests)
	}
}

func TestRouterDrain(t *testing.T) {
	b := chainedBench(t)
	faulty := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	faulty.Faults = &faults.Plan{Seed: 42, DRXMTBF: 500 * sim.Microsecond,
		DRXRepair: 5 * sim.Millisecond, TransientProb: 0.2}
	faulty.Retry = faults.DefaultRetry()
	clean := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	rate := 0.5 * capOf(t, clean, b.Pipeline)
	spec := traffic.Spec{Arrival: traffic.Poisson, Rate: rate, Requests: 80, Seed: 9}
	f, rep := fleetRun(t, cluster.FleetConfig{
		Hosts:   2,
		Base:    clean,
		PerHost: []dmxsys.Config{faulty, clean},
		Router: cluster.RouterConfig{Policy: cluster.PolicyRR,
			DrainIncidents: 1},
	}, spec, b.Pipeline)
	if got := f.FaultCounts(); got == (faults.Counts{}) {
		t.Fatal("fault plan injected nothing; drain test needs incidents (pick another seed)")
	}
	routed := f.Routed()
	if routed[0][0] >= routed[1][0] {
		t.Errorf("drained faulty host received %d requests vs clean host's %d", routed[0][0], routed[1][0])
	}
	al := rep.PerApp[0]
	if al.Completed+al.Abandoned+al.Rejected != al.Requests {
		t.Errorf("outcomes sum to %d of %d under draining", al.Completed+al.Abandoned+al.Rejected, al.Requests)
	}
}

func TestRouterPlacementScore(t *testing.T) {
	b := chainedBench(t)
	fast := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	slow := dmxsys.DefaultConfig(dmxsys.MultiAxl)
	capFast := capOf(t, fast, b.Pipeline)
	capSlow := capOf(t, slow, b.Pipeline)
	if capFast <= capSlow {
		t.Skipf("bench does not separate placements (bump %g vs multiaxl %g req/s)", capFast, capSlow)
	}
	// Light load keeps outstanding near zero, so the score reduces to
	// the capacity bound and every arrival should prefer the host whose
	// DRX placement favors the pipeline.
	spec := traffic.Spec{Arrival: traffic.Poisson, Rate: 0.2 * capSlow, Requests: 40, Seed: 13}
	f, _ := fleetRun(t, cluster.FleetConfig{
		Hosts:   2,
		Base:    fast,
		PerHost: []dmxsys.Config{slow, fast},
	}, spec, b.Pipeline)
	routed := f.Routed()
	if routed[1][0] <= 3*routed[0][0] {
		t.Errorf("score routing sent %d requests to the favored host, %d to the slow one",
			routed[1][0], routed[0][0])
	}
}

func TestFleetNetworkBottleneck(t *testing.T) {
	// A starved core link must stretch the makespan: the same load over
	// a fat network finishes strictly sooner.
	b := chainedBench(t)
	base := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	rate := 2 * capOf(t, base, b.Pipeline)
	spec := traffic.Spec{Arrival: traffic.OpenLoop, Rate: rate, Requests: 32}
	bytesPerReq := float64(b.Pipeline.InputBytes + b.Pipeline.OutputBytes)
	fat := cluster.FleetConfig{Hosts: 4, Base: base,
		Net: cluster.NetConfig{CoreBytesPerSec: 100 * rate * bytesPerReq, Latency: 2 * sim.Microsecond}}
	thin := fat
	thin.Net.CoreBytesPerSec = 0.25 * rate * bytesPerReq
	_, fatRep := fleetRun(t, fat, spec, b.Pipeline)
	_, thinRep := fleetRun(t, thin, spec, b.Pipeline)
	if thinRep.Makespan <= fatRep.Makespan {
		t.Errorf("starved core (%v makespan) did not slow the fleet vs fat core (%v)",
			thinRep.Makespan, fatRep.Makespan)
	}
}

func TestFleetTrace(t *testing.T) {
	b := chainedBench(t)
	base := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	base.Obs = obs.New()
	spec := traffic.Spec{Arrival: traffic.Poisson, Rate: 4000, Requests: 24, Seed: 17}
	fleetRun(t, cluster.FleetConfig{Hosts: 3, Base: base}, spec, b.Pipeline)

	events := base.Obs.Events()
	routes, hostTracks := 0, 0
	for i := range events {
		ev := &events[i]
		if ev.Type == obs.TypeRoute {
			routes++
			if ev.Track != "cluster.router" || !strings.HasPrefix(ev.Peer, "h") {
				t.Fatalf("malformed route event: track %q peer %q", ev.Track, ev.Peer)
			}
		}
		if strings.HasPrefix(ev.Track, "h1/") {
			hostTracks++
		}
	}
	if routes != spec.Requests {
		t.Errorf("%d route instants for %d requests", routes, spec.Requests)
	}
	if hostTracks == 0 {
		t.Error("no events on h1/-prefixed tracks: host namespacing missing from the trace")
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("multi-host trace failed validation: %v", err)
	}
}

func TestFleetConfigErrors(t *testing.T) {
	b := chainedBench(t)
	base := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
	cases := []struct {
		name string
		cfg  cluster.FleetConfig
	}{
		{"zero-hosts", cluster.FleetConfig{Hosts: 0, Base: base}},
		{"perhost-mismatch", cluster.FleetConfig{Hosts: 3, Base: base,
			PerHost: []dmxsys.Config{base}}},
		{"negative-net", cluster.FleetConfig{Hosts: 2, Base: base,
			Net: cluster.NetConfig{NICBytesPerSec: -1}}},
		{"multi-host-trace-hook", func() cluster.FleetConfig {
			cfg := base
			cfg.Trace = func(sim.Time, string, string) {}
			return cluster.FleetConfig{Hosts: 2, Base: cfg}
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := cluster.New(tc.cfg, []*dmxsys.Pipeline{b.Pipeline}); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}
