package cluster

import (
	"testing"

	"dmx/internal/sim"
)

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyScore, PolicyRR, PolicyLeast} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("hash"); err == nil {
		t.Error("unknown policy token accepted")
	}
}

func TestPickScorePrefersHeadroom(t *testing.T) {
	rt := newRouter(RouterConfig{}, [][]float64{{200}, {100}}, 1)
	if h := rt.pick(0); h != 0 {
		t.Fatalf("idle fleet: picked host %d, want the higher-capacity host 0", h)
	}
	// Loading host 0 down to half the idle score of host 1 flips the
	// decision: 200/(3+1) = 50 < 100/(0+1).
	rt.outstanding[0] = 3
	if h := rt.pick(0); h != 1 {
		t.Fatalf("loaded fleet: picked host %d, want host 1", h)
	}
}

func TestPickRoundRobinSkipsIneligible(t *testing.T) {
	rt := newRouter(RouterConfig{Policy: PolicyRR, HostAdmit: 1}, [][]float64{{1}, {1}, {1}}, 1)
	rt.outstanding[1] = 1 // at the cap
	// The cursor advances per arrival: starts 0, 1, 2, 0 — with host 1
	// at its cap, its turn skips forward to host 2.
	got := []int{rt.pick(0), rt.pick(0), rt.pick(0), rt.pick(0)}
	want := []int{0, 2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rr picks = %v, want %v", got, want)
		}
	}
}

func TestPickLeastOutstanding(t *testing.T) {
	rt := newRouter(RouterConfig{Policy: PolicyLeast}, [][]float64{{1}, {1}, {1}}, 1)
	rt.outstanding = []int{2, 1, 5}
	if h := rt.pick(0); h != 1 {
		t.Fatalf("picked host %d, want least-loaded host 1", h)
	}
}

func TestDrainWindowAgesOut(t *testing.T) {
	rt := newRouter(RouterConfig{DrainIncidents: 2, DrainWindow: sim.Millisecond},
		[][]float64{{1}}, 1)
	rt.observe(0, 2, sim.Time(0))
	if !rt.drained(0) {
		t.Fatal("2 incidents at t=0 did not drain the host")
	}
	if h := rt.pick(0); h != -1 {
		t.Fatalf("drained single-host fleet still picked host %d", h)
	}
	// Past the trailing window the incidents age out and the host
	// rejoins the rotation.
	rt.observe(0, 2, sim.Time(2*sim.Millisecond))
	if rt.drained(0) {
		t.Fatal("incidents did not age out of the drain window")
	}
	if h := rt.pick(0); h != 0 {
		t.Fatalf("recovered host not picked (got %d)", h)
	}
}

func TestUnboundedDrainWindow(t *testing.T) {
	rt := newRouter(RouterConfig{DrainIncidents: 1}, [][]float64{{1}}, 1)
	rt.observe(0, 1, sim.Time(0))
	rt.observe(0, 1, sim.Time(sim.Second))
	if !rt.drained(0) {
		t.Fatal("zero DrainWindow must never age incidents out")
	}
}
