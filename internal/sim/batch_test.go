package sim

import (
	"fmt"
	"testing"
)

// ScheduleBatch fires its callbacks in slice order, interleaved with
// other events by the usual (time, seq) order — exactly as if Schedule
// had been called once per callback.
func TestScheduleBatchOrder(t *testing.T) {
	e := NewEngine()
	var got []string
	log := func(s string) func() { return func() { got = append(got, s) } }
	e.Schedule(Nanosecond, log("early"))
	e.ScheduleBatch(2*Nanosecond, []func(){log("b0"), log("b1"), log("b2")})
	e.Schedule(2*Nanosecond, log("after-batch")) // same instant, later seq
	e.Schedule(3*Nanosecond, log("late"))
	e.Run()
	want := []string{"early", "b0", "b1", "b2", "after-batch", "late"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestScheduleBatchEmptyAndErrors(t *testing.T) {
	e := NewEngine()
	e.ScheduleBatch(Nanosecond, nil) // no-op
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after empty batch, want 0", e.Pending())
	}
	for name, call := range map[string]func(){
		"negative delay": func() { e.ScheduleBatch(-1, []func(){func() {}}) },
		"nil callback":   func() { e.ScheduleBatch(Nanosecond, []func(){nil}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			call()
		}()
	}
}

// The batch path must hit every queue tier: same-instant batches landing
// in bottom, in a rung bucket, and in top must all preserve order.
func TestScheduleBatchAcrossTiers(t *testing.T) {
	e := NewEngine()
	rng := benchRNG(11)
	var got []int
	id := 0
	// Build a deep, multi-epoch pending set first.
	for i := 0; i < 3000; i++ {
		e.Schedule(delayUniform(&rng), func() {})
	}
	for len(got) < 64 {
		fns := make([]func(), 4)
		for j := range fns {
			v := id
			id++
			fns[j] = func() { got = append(got, v) }
		}
		e.ScheduleBatch(Duration(rng.next()%2_000_000)*Picosecond, fns)
		for i := 0; i < 40; i++ {
			e.Step()
		}
	}
	e.Run()
	// Members of one batch share an instant, so they must fire as a
	// contiguous ascending run (batches may interleave with each other
	// freely — their delays differ).
	lastOf := map[int]int{} // batch → last member seen
	for _, v := range got {
		b, m := v/4, v%4
		if last, ok := lastOf[b]; ok && m != last+1 {
			t.Fatalf("batch %d fired member %d after %d: %v", b, m, last, got)
		} else if !ok && m != 0 {
			t.Fatalf("batch %d started at member %d: %v", b, m, got)
		}
		lastOf[b] = m
	}
}

// Reschedule is cancel+schedule in one call: the returned ref fires fn
// at the new time and the old timer is dead.
func TestRescheduleMovesTimer(t *testing.T) {
	e := NewEngine()
	var got []string
	ref := e.Schedule(5*Nanosecond, func() { got = append(got, "old") })
	ref = e.Reschedule(ref, 2*Nanosecond, func() { got = append(got, "new") })
	e.Schedule(3*Nanosecond, func() { got = append(got, "mid") })
	e.Run()
	if len(got) != 2 || got[0] != "new" || got[1] != "mid" {
		t.Fatalf("fired %v, want [new mid]", got)
	}
	if ref.Time() != Time(2*Nanosecond) {
		t.Fatalf("ref.Time = %v, want 2ns", ref.Time())
	}
}

// The in-place coalescing fast path (same firing time, event still the
// latest scheduled) must swap the callback without perturbing order or
// allocating.
func TestRescheduleCoalescesInPlace(t *testing.T) {
	e := NewEngine()
	var got []string
	ref := e.Schedule(4*Nanosecond, func() { got = append(got, "a") })
	ref2 := e.Reschedule(ref, 4*Nanosecond, func() { got = append(got, "b") })
	if ref2 != ref {
		t.Fatal("same-time reschedule of the latest event did not coalesce")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("fired %v, want [b]", got)
	}
}

// Rescheduling a stale (already fired or canceled) ref degrades to a
// plain schedule.
func TestRescheduleStaleRef(t *testing.T) {
	e := NewEngine()
	fired := 0
	ref := e.Schedule(Nanosecond, func() { fired++ })
	e.Run()
	ref = e.Reschedule(ref, Nanosecond, func() { fired += 10 })
	e.Run()
	if fired != 11 {
		t.Fatalf("fired = %d, want 11", fired)
	}
	_ = ref
}

// SubmitBatch must be observably identical to a SubmitClass loop: same
// completion order, same server accounting, with queued overflow served
// under the same discipline order.
func TestServerSubmitBatchMatchesLoop(t *testing.T) {
	run := func(batch bool) (order []int, jobs int64, busy, wait Duration, maxq int) {
		e := NewEngine()
		s := NewServer(e, "srv", 3)
		var dones []func()
		for i := 0; i < 10; i++ {
			i := i
			dones = append(dones, func() { order = append(order, i) })
		}
		if batch {
			s.SubmitBatch(0, 5*Nanosecond, dones)
		} else {
			for _, d := range dones {
				s.SubmitClass(0, 5*Nanosecond, d)
			}
		}
		e.Run()
		return order, s.Jobs, s.BusyTime, s.WaitTime, s.MaxQueue
	}
	bo, bj, bb, bw, bq := run(true)
	lo, lj, lb, lw, lq := run(false)
	if fmt.Sprint(bo) != fmt.Sprint(lo) {
		t.Fatalf("completion order: batch %v, loop %v", bo, lo)
	}
	if bj != lj || bb != lb || bw != lw || bq != lq {
		t.Fatalf("accounting diverged: batch (%d %v %v %d), loop (%d %v %v %d)",
			bj, bb, bw, bq, lj, lb, lw, lq)
	}
}

func TestServerSubmitBatchNegativeServicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative service time")
		}
	}()
	e := NewEngine()
	NewServer(e, "srv", 1).SubmitBatch(0, -1, []func(){func() {}})
}

// A channel retiring several equal transfers at one instant drives the
// batch path end to end: all completions fire, in Start order.
func TestChannelSimultaneousCompletionBatch(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "c", 1e9)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		ch.Start(1<<20, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != 5 {
		t.Fatalf("completed %d transfers, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("completions out of Start order: %v", got)
		}
	}
}
