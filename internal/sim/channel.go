package sim

import "fmt"

// Channel models a bandwidth-shared transport (a PCIe link direction, a
// DRAM channel, a memory bus). Concurrent transfers receive an equal
// fair share of the channel's capacity — the processor-sharing discipline
// PCIe flow control approximates when several devices stream through one
// link. Whenever the set of active transfers changes, the remaining bytes
// of every transfer are advanced at the old share and completion is
// re-predicted at the new share.
type Channel struct {
	eng         *Engine
	name        string
	bytesPerSec float64
	active      map[*Transfer]struct{}
	seq         uint64
	lastUpdate  Time
	nextDone    *Event

	// TotalBytes accumulates every byte the channel has carried; the
	// energy model charges transfer energy against it.
	TotalBytes int64
	// BusyTime accumulates time during which at least one transfer was
	// active, for utilization reporting.
	BusyTime Duration
}

// NewChannel creates a channel with the given capacity in bytes/second.
func NewChannel(eng *Engine, name string, bytesPerSec float64) *Channel {
	if bytesPerSec <= 0 {
		panic("sim: channel capacity must be positive")
	}
	return &Channel{
		eng:         eng,
		name:        name,
		bytesPerSec: bytesPerSec,
		active:      make(map[*Transfer]struct{}),
		lastUpdate:  eng.Now(),
	}
}

// Name reports the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Capacity reports the channel capacity in bytes/second.
func (c *Channel) Capacity() float64 { return c.bytesPerSec }

// InFlight reports the number of active transfers.
func (c *Channel) InFlight() int { return len(c.active) }

// Transfer is one in-flight flow on a Channel.
type Transfer struct {
	ch        *Channel
	seq       uint64  // start order, for deterministic completion callbacks
	remaining float64 // bytes left to move
	done      func()
	finished  bool
}

// Start begins moving n bytes through the channel and invokes done when
// the last byte lands. A zero-byte transfer completes after one event
// (still asynchronously, preserving callback ordering invariants).
func (c *Channel) Start(n int64, done func()) *Transfer {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative transfer size %d", n))
	}
	c.advance()
	t := &Transfer{ch: c, seq: c.seq, remaining: float64(n), done: done}
	c.seq++
	c.active[t] = struct{}{}
	c.TotalBytes += n
	c.reschedule()
	return t
}

// Abort removes the transfer from the channel without invoking its
// completion callback. Aborting a finished transfer is a no-op.
func (t *Transfer) Abort() {
	if t.finished {
		return
	}
	c := t.ch
	c.advance()
	delete(c.active, t)
	t.finished = true
	c.reschedule()
}

// advance credits progress to all active transfers for the time elapsed
// since the last update, at the fair-share rate that was in effect.
func (c *Channel) advance() {
	now := c.eng.Now()
	dt := now.Sub(c.lastUpdate)
	c.lastUpdate = now
	if dt <= 0 || len(c.active) == 0 {
		return
	}
	c.BusyTime += dt
	share := c.bytesPerSec / float64(len(c.active))
	moved := share * dt.Seconds()
	for t := range c.active {
		t.remaining -= moved
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
}

// reschedule re-predicts the next completion under the current share.
func (c *Channel) reschedule() {
	if c.nextDone != nil {
		c.nextDone.Cancel()
		c.nextDone = nil
	}
	if len(c.active) == 0 {
		return
	}
	var first *Transfer
	for t := range c.active {
		if first == nil || t.remaining < first.remaining {
			first = t
		}
	}
	share := c.bytesPerSec / float64(len(c.active))
	wait := Duration(first.remaining / share * float64(Second))
	c.nextDone = c.eng.Schedule(wait, c.complete)
}

// complete retires every transfer whose bytes have drained, then
// reschedules. Multiple transfers can finish at the same instant (equal
// sizes started together), so all are collected before callbacks run.
func (c *Channel) complete() {
	c.nextDone = nil
	c.advance()
	var finished []*Transfer
	for t := range c.active {
		// Fair-share arithmetic in float64 can leave a sub-byte residue;
		// anything under one byte is done.
		if t.remaining < 1.0 {
			finished = append(finished, t)
		}
	}
	for _, t := range finished {
		delete(c.active, t)
		t.finished = true
	}
	c.reschedule()
	// Callbacks run after bookkeeping so they may start new transfers on
	// this same channel re-entrantly. finished was collected in map order,
	// which is random; sort by start sequence so completions at the same
	// instant always fire in Start order, keeping runs reproducible.
	sortTransfers(finished)
	for _, t := range finished {
		if t.done != nil {
			done := t.done
			c.eng.Schedule(0, done)
		}
	}
}

// sortTransfers orders transfers by start sequence (insertion sort; the
// simultaneous-completion set is almost always tiny).
func sortTransfers(ts []*Transfer) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].seq < ts[j-1].seq; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
