package sim

import (
	"fmt"

	"dmx/internal/obs"
)

// Channel models a bandwidth-shared transport (a PCIe link direction, a
// DRAM channel, a memory bus). Concurrent transfers receive an equal
// fair share of the channel's capacity — the processor-sharing discipline
// PCIe flow control approximates when several devices stream through one
// link. Whenever the set of active transfers changes, the remaining bytes
// of every transfer are advanced at the old share and completion is
// re-predicted at the new share.
type Channel struct {
	eng         *Engine
	name        string
	bytesPerSec float64
	// active holds in-flight transfers in start order (ascending seq),
	// which makes simultaneous-completion callbacks fire in Start order
	// without sorting.
	active     []*Transfer
	seq        uint64
	lastUpdate Time
	nextDone   EventRef
	// completeFn is the bound complete method, materialized once so that
	// reschedule doesn't allocate a fresh method-value closure per call.
	completeFn func()

	// free recycles retired Transfers: the channel hot loop (start,
	// advance, complete, restart) then runs without allocating.
	free []*Transfer
	// finished and dones are scratch for complete(), reused across calls.
	finished []*Transfer
	dones    []func()

	// TotalBytes accumulates every byte the channel has carried; the
	// energy model charges transfer energy against it.
	TotalBytes int64
	// BusyTime accumulates time during which at least one transfer was
	// active, for utilization reporting.
	BusyTime Duration
}

// NewChannel creates a channel with the given capacity in bytes/second.
func NewChannel(eng *Engine, name string, bytesPerSec float64) *Channel {
	if bytesPerSec <= 0 {
		panic("sim: channel capacity must be positive")
	}
	c := &Channel{
		eng:         eng,
		name:        name,
		bytesPerSec: bytesPerSec,
		lastUpdate:  eng.Now(),
	}
	c.completeFn = c.complete
	return c
}

// Name reports the channel's diagnostic name.
func (c *Channel) Name() string { return c.name }

// Capacity reports the channel capacity in bytes/second.
func (c *Channel) Capacity() float64 { return c.bytesPerSec }

// InFlight reports the number of active transfers.
func (c *Channel) InFlight() int { return len(c.active) }

// Transfer is one in-flight flow on a Channel. The channel owns every
// Transfer and reuses retired ones; callers interact through the
// TransferRef handle returned by Start.
type Transfer struct {
	ch        *Channel
	seq       uint64  // start order, for deterministic completion callbacks
	gen       uint64  // recycle generation, validates TransferRef handles
	remaining float64 // bytes left to move
	done      func()
}

// TransferRef is a caller's handle to an in-flight transfer. Like
// EventRef it is a small value that stays safe after the underlying
// Transfer retires: Abort on a finished (possibly recycled) transfer is
// a no-op, as on the zero ref.
type TransferRef struct {
	t   *Transfer
	gen uint64
}

// Abort removes the transfer from the channel without invoking its
// completion callback. Aborting a finished transfer is a no-op.
func (r TransferRef) Abort() {
	if r.t != nil && r.t.gen == r.gen {
		r.t.ch.abort(r.t)
	}
}

// Start begins moving n bytes through the channel and invokes done when
// the last byte lands. A zero-byte transfer completes after one event
// (still asynchronously, preserving callback ordering invariants).
func (c *Channel) Start(n int64, done func()) TransferRef {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative transfer size %d", n))
	}
	c.advance()
	var t *Transfer
	if ln := len(c.free); ln > 0 {
		t = c.free[ln-1]
		c.free[ln-1] = nil
		c.free = c.free[:ln-1]
	} else {
		t = &Transfer{ch: c}
	}
	t.seq = c.seq
	t.remaining = float64(n)
	t.done = done
	c.seq++
	c.active = append(c.active, t)
	c.TotalBytes += n
	c.occupancy()
	c.reschedule()
	return TransferRef{t: t, gen: t.gen}
}

// occupancy samples the in-flight transfer count on every membership
// change. With a nil recorder this is one branch — the channel hot loop
// stays allocation-free (pinned by TestChannelSteadyStateDoesNotAllocate).
func (c *Channel) occupancy() {
	c.eng.Obs.Counter(obs.Time(c.eng.Now()), c.name, "inflight", float64(len(c.active)))
}

// recycle retires a transfer to the free list, invalidating outstanding
// TransferRefs via the gen bump.
func (c *Channel) recycle(t *Transfer) {
	t.gen++
	t.done = nil
	c.free = append(c.free, t)
}

// remove deletes the transfer from the active slice, preserving start
// order.
func (c *Channel) remove(t *Transfer) {
	for i, a := range c.active {
		if a == t {
			copy(c.active[i:], c.active[i+1:])
			c.active[len(c.active)-1] = nil
			c.active = c.active[:len(c.active)-1]
			return
		}
	}
}

func (c *Channel) abort(t *Transfer) {
	c.advance()
	c.remove(t)
	c.recycle(t)
	c.occupancy()
	c.reschedule()
}

// advance credits progress to all active transfers for the time elapsed
// since the last update, at the fair-share rate that was in effect.
func (c *Channel) advance() {
	now := c.eng.Now()
	dt := now.Sub(c.lastUpdate)
	c.lastUpdate = now
	if dt <= 0 || len(c.active) == 0 {
		return
	}
	c.BusyTime += dt
	share := c.bytesPerSec / float64(len(c.active))
	moved := share * dt.Seconds()
	for _, t := range c.active {
		t.remaining -= moved
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
}

// reschedule re-predicts the next completion under the current share.
// The timer reset rides Engine.Reschedule: the canceled prediction's
// event node is purged and reused immediately (no tombstone to re-pop),
// and an unchanged prediction is coalesced in place.
func (c *Channel) reschedule() {
	if len(c.active) == 0 {
		c.nextDone.Cancel()
		c.nextDone = EventRef{}
		return
	}
	least := c.active[0].remaining
	for _, t := range c.active[1:] {
		if t.remaining < least {
			least = t.remaining
		}
	}
	share := c.bytesPerSec / float64(len(c.active))
	wait := Duration(least / share * float64(Second))
	c.nextDone = c.eng.Reschedule(c.nextDone, wait, c.completeFn)
}

// complete retires every transfer whose bytes have drained, then
// reschedules. Multiple transfers can finish at the same instant (equal
// sizes started together), so all are collected before callbacks run.
func (c *Channel) complete() {
	c.nextDone = EventRef{}
	c.advance()
	// active is kept in start order, so the finished set is collected —
	// and its callbacks fire — in Start order, keeping runs reproducible.
	finished := c.finished[:0]
	kept := c.active[:0]
	for _, t := range c.active {
		// Fair-share arithmetic in float64 can leave a sub-byte residue;
		// anything under one byte is done.
		if t.remaining < 1.0 {
			finished = append(finished, t)
		} else {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(c.active); i++ {
		c.active[i] = nil
	}
	c.active = kept
	if len(finished) > 0 {
		c.occupancy()
	}
	c.reschedule()
	// Callbacks run after bookkeeping so they may start new transfers on
	// this same channel re-entrantly. The completion storm — several
	// transfers retiring at one instant — goes through the engine's
	// batch path: one queue walk schedules every callback, in Start
	// order (identical firing order to a Schedule-per-callback loop).
	dones := c.dones[:0]
	for _, t := range finished {
		if t.done != nil {
			dones = append(dones, t.done)
		}
		c.recycle(t)
	}
	c.eng.ScheduleBatch(0, dones)
	for i := range dones {
		dones[i] = nil
	}
	c.dones = dones[:0]
	c.finished = finished[:0]
}
