package sim

import (
	"runtime"

	"dmx/internal/obs"
)

// forceParallelWindows makes windowed Runs dispatch to worker
// goroutines even on a single-CPU process. Tests set it to cover the
// worker machinery (and give the race detector something to check)
// regardless of the host's core count; the contract is that the inline
// and worker paths produce identical output.
var forceParallelWindows = false

// Run drains the group. The sequential fallback is the classic
// single-threaded loop; a parallel group advances through lookahead
// windows: each window [T0, T0+L) — T0 the earliest pending event
// anywhere, L the lookahead — runs every lane to completion in
// isolation (conservatively safe: cross-lane sends carry delay ≥ L, so
// nothing created this window can fire in it), then a barrier
// materializes canonical ordinals for the window's creations, replays
// captured trace emissions into the master recorders in canonical
// firing order, and delivers buffered cross-lane sends. Lanes run on
// worker goroutines when the process has more than one CPU; with
// GOMAXPROCS=1 the same windows run inline on the caller's goroutine —
// the output is identical either way, only wall-clock differs.
func (g *ShardGroup) Run() {
	if g.mode == gmSeq {
		g.lanes[0].Run()
		return
	}
	g.beginCapture()
	defer g.endCapture()
	par := runtime.GOMAXPROCS(0) > 1 || forceParallelWindows
	if par {
		g.startWorkers()
		defer g.stopWorkers()
	}
	for {
		t0, ok := g.nextTime()
		if !ok {
			return
		}
		limit := t0.Add(g.lookahead)
		g.mode = gmWindow
		if par {
			n := 0
			for i, e := range g.lanes {
				if t, ok := e.peekTime(); ok && t < limit {
					g.start[i] <- limit
					n++
				}
			}
			for ; n > 0; n-- {
				<-g.done
			}
		} else {
			for _, e := range g.lanes {
				e.runBefore(limit)
			}
		}
		g.mode = gmSetup
		g.barrier()
	}
}

// nextTime reports the earliest pending event time across lanes.
func (g *ShardGroup) nextTime() (Time, bool) {
	var t0 Time
	found := false
	for _, e := range g.lanes {
		if t, ok := e.peekTime(); ok && (!found || t < t0) {
			t0, found = t, true
		}
	}
	return t0, found
}

// barrier is the deterministic synchronization point between windows:
// ordinal materialization, trace graft, cross-lane delivery, log reset
// — strictly in that order (the graft and the deliveries both consume
// the ordinals the materialization assigns).
func (g *ShardGroup) barrier() {
	g.materialize()
	g.graft()
	for _, e := range g.lanes {
		for i := range e.cross {
			m := &e.cross[i]
			g.lanes[m.lane].inject(m.at, e.clog[m.ci].ord, m.fn)
			m.fn = nil
		}
		e.cross = e.cross[:0]
		for i := range e.clog {
			e.clog[i] = crec{}
		}
		e.clog = e.clog[:0]
	}
}

// materialize assigns canonical global ordinals to every creation
// logged this window, across all lanes, in (schedTime, parentFireTime,
// parentOrd, callIdx) order — the single-engine creation order
// restricted to each timestamp. Entries whose parent was itself created
// this window wait on per-lane child lists until the parent's ordinal
// exists; a parent's key is strictly smaller than its children's, so
// the smallest unmaterialized entry is always ready and the heap order
// equals the true total order. Pending events are renumbered in place;
// fired or canceled creations still consume their ordinal (a single
// engine would have consumed the seq) but skip the event patch.
func (g *ShardGroup) materialize() {
	h := g.heap[:0]
	if g.kidHead == nil {
		g.kidHead = make([][]int32, len(g.lanes))
		g.kidNext = make([][]int32, len(g.lanes))
	}
	for l, e := range g.lanes {
		n := len(e.clog)
		kh, kn := g.kidHead[l], g.kidNext[l]
		if cap(kh) < n {
			kh = make([]int32, n)
			kn = make([]int32, n)
		}
		kh, kn = kh[:n], kn[:n]
		for i := range kh {
			kh[i] = -1
		}
		g.kidHead[l], g.kidNext[l] = kh, kn
		for i := 0; i < n; i++ {
			c := &e.clog[i]
			if c.parent&ordRaw != 0 {
				p := int32(c.parent &^ ordRaw)
				kn[i] = kh[p]
				kh[p] = int32(i)
			} else {
				h = heapPush(h, mergeItem{at: c.at, pAt: c.pAt, parent: c.parent, lane: l, idx: int32(i)})
			}
		}
	}
	for len(h) > 0 {
		var it mergeItem
		it, h = heapPop(h)
		e := g.lanes[it.lane]
		c := &e.clog[it.idx]
		c.ord = g.ordC
		g.ordC++
		if c.ev != nil && c.ev.gen == c.gen {
			// In-place renumber preserves the lane queue's sort order:
			// provisional keys already realize the canonical same-time
			// order within a lane, and every pre-window ordinal is
			// smaller than anything assigned at this barrier.
			c.ev.seq = c.ord
		}
		// Children who waited on this parent become ready. Child lists
		// are built in reverse call order, but the heap restores the
		// canonical order via idx before any tie could matter.
		for k := g.kidHead[it.lane][it.idx]; k >= 0; k = g.kidNext[it.lane][k] {
			kc := &e.clog[k]
			h = heapPush(h, mergeItem{at: kc.at, pAt: kc.pAt, parent: c.ord, lane: it.lane, idx: k})
		}
	}
	g.heap = h[:0]
}

// graft replays the window's captured trace emissions into the master
// recorders in canonical firing order: per-lane emission fences are
// already sorted by (time, firing ordinal) — lane execution order —
// so a K-way cursor merge visits firings exactly as a single engine
// would have, and EmitRebased reassigns master sequence numbers and
// flow ids in that order.
func (g *ShardGroup) graft() {
	any := false
	for _, e := range g.lanes {
		for i := range e.elog {
			er := &e.elog[i]
			if er.ord&ordRaw != 0 {
				er.ord = e.clog[er.ord&^ordRaw].ord
			}
		}
		if len(e.elog) > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	if g.cursors == nil {
		g.cursors = make([]int, len(g.lanes))
	}
	for l := range g.cursors {
		g.cursors[l] = 0
	}
	for {
		best := -1
		var bestEr erec
		for l, e := range g.lanes {
			if g.cursors[l] >= len(e.elog) {
				continue
			}
			er := e.elog[g.cursors[l]]
			if best < 0 || er.at < bestEr.at || (er.at == bestEr.at && er.ord < bestEr.ord) {
				best, bestEr = l, er
			}
		}
		if best < 0 {
			break
		}
		g.cursors[best]++
		evs := g.laneRec[best].Events()[bestEr.lo:bestEr.hi]
		for _, ev := range evs {
			g.masters[best].EmitRebased(ev, g.flowMaps[best])
		}
	}
	for _, e := range g.lanes {
		e.elog = e.elog[:0]
	}
	for _, r := range g.laneRec {
		r.Clear()
	}
}

// beginCapture swaps every traced lane's recorder for a private capture
// buffer for the duration of the windowed run; endCapture restores the
// real sinks. Lane flow-id maps persist across barriers (a flow can
// begin in one window and end many windows later) and across Run calls.
func (g *ShardGroup) beginCapture() {
	if g.masters == nil {
		g.masters = make([]*obs.Recorder, len(g.lanes))
		g.laneRec = make([]*obs.Recorder, len(g.lanes))
		g.flowMaps = make([]map[uint64]uint64, len(g.lanes))
	}
	for i, e := range g.lanes {
		g.masters[i] = e.Obs
		if e.Obs != nil {
			if g.laneRec[i] == nil {
				g.laneRec[i] = obs.New()
				g.flowMaps[i] = make(map[uint64]uint64)
			}
			e.Obs = g.laneRec[i]
			e.wtrace = true
		}
	}
}

func (g *ShardGroup) endCapture() {
	for i, e := range g.lanes {
		e.Obs = g.masters[i]
		e.wtrace = false
	}
}

// startWorkers launches one goroutine per lane for the duration of a
// Run call. Dispatch is a window limit on the lane's channel; the lane
// answers on the shared done channel. Channel synchronization gives
// the barrier exclusive access to lane state between windows.
func (g *ShardGroup) startWorkers() {
	g.start = make([]chan Time, len(g.lanes))
	g.done = make(chan struct{}, len(g.lanes))
	for i := range g.start {
		g.start[i] = make(chan Time)
	}
	for i, e := range g.lanes {
		ch := g.start[i]
		e := e
		go func() {
			for limit := range ch {
				e.runBefore(limit)
				g.done <- struct{}{}
			}
		}()
	}
}

func (g *ShardGroup) stopWorkers() {
	for i := range g.start {
		close(g.start[i])
	}
	g.start = nil
	g.done = nil
}

// heapPush and heapPop maintain g.heap as a binary min-heap under
// mergeItem.before without interface indirection.
func heapPush(h []mergeItem, it mergeItem) []mergeItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].before(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func heapPop(h []mergeItem) (mergeItem, []mergeItem) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l].before(h[s]) {
			s = l
		}
		if r < n && h[r].before(h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	return top, h
}
