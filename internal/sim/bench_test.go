package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkEngineSchedule measures the DES scheduling hot loop: every
// simulated kernel completion, DMA, and driver delay passes through
// Schedule + Step. The fan pattern (each fired event schedules two more
// up to a horizon) approximates the branching callback chains the system
// model generates.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		depth := 0
		var fan func()
		fan = func() {
			if depth >= 4096 {
				return
			}
			depth++
			e.Schedule(10*Nanosecond, fan)
			e.Schedule(20*Nanosecond, fan)
		}
		e.Schedule(0, fan)
		e.Run()
	}
}

// BenchmarkEngineScheduleFlat measures the steady-state cost of one
// schedule+fire pair with a warm engine (the free-list regime: events
// are continuously recycled rather than freshly allocated).
func BenchmarkEngineScheduleFlat(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Nanosecond, nop)
		e.Step()
	}
}

// benchRNG is a splitmix64 stream: deterministic, allocation-free, and
// cheap enough to sit inside a timed loop without dominating it.
type benchRNG uint64

func (r *benchRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Queue-shape delay generators. These are the pending-set shapes the
// dmxsys models actually produce (per the cpuprofile audit in
// EXPERIMENTS.md): uniform and bimodal holds from mixed DMA/kernel/driver
// delays, near-monotone holds from per-byte wire times on a loaded link,
// and heavy-cancel from watchdog timers and channel re-predictions that
// are almost always canceled before they fire.

func delayUniform(r *benchRNG) Duration {
	return Duration(r.next()%1_000_000) * Picosecond // 0–1 µs
}

func delayBimodal(r *benchRNG) Duration {
	if r.next()%5 == 0 {
		return 900*Nanosecond + Duration(r.next()%100_000)*Picosecond // 0.9–1 µs
	}
	return Duration(r.next()%50_000) * Picosecond // 0–50 ns
}

func delayNearMonotone(r *benchRNG) Duration {
	return 100*Nanosecond + Duration(r.next()%1_000)*Picosecond // 100 ns ± 1 ns
}

// benchShape measures one steady-state schedule+fire pair with `pending`
// events in flight: the fixed-occupancy regime a saturated serving run
// holds the engine in. The warm lap before the timer carries the queue
// through full epochs so structure growth is not timed.
func benchShape(b *testing.B, pending int, delay func(*benchRNG) Duration) {
	e := NewEngine()
	rng := benchRNG(0x5eed)
	nop := func() {}
	for i := 0; i < pending; i++ {
		e.Schedule(delay(&rng), nop)
	}
	for i := 0; i < 2*pending; i++ {
		e.Schedule(delay(&rng), nop)
		e.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(delay(&rng), nop)
		e.Step()
	}
}

// occupancies spans the regimes that matter: 1k pending is a busy
// single-host run, 64k is the cluster-scale saturation regime the
// roadmap's fleet work will hold the engine in.
var occupancies = []int{1024, 65536}

func BenchmarkEngineScheduleUniform(b *testing.B) {
	for _, p := range occupancies {
		b.Run(fmt.Sprintf("pending=%d", p), func(b *testing.B) { benchShape(b, p, delayUniform) })
	}
}

func BenchmarkEngineScheduleBimodal(b *testing.B) {
	for _, p := range occupancies {
		b.Run(fmt.Sprintf("pending=%d", p), func(b *testing.B) { benchShape(b, p, delayBimodal) })
	}
}

func BenchmarkEngineScheduleNearMonotone(b *testing.B) {
	for _, p := range occupancies {
		b.Run(fmt.Sprintf("pending=%d", p), func(b *testing.B) { benchShape(b, p, delayNearMonotone) })
	}
}

// BenchmarkEngineScheduleHeavyCancel holds occupancy near `pending`
// while churning cancels through a ring of live refs: the watchdog /
// re-prediction regime where most timers never fire. Each iteration
// cancels one ring timer (usually still live), schedules its
// replacement plus one progress event, then fires events as needed to
// hold occupancy — so the clock advances and the ladder keeps
// spilling and reseeding under the churn.
func BenchmarkEngineScheduleHeavyCancel(b *testing.B) {
	for _, p := range occupancies {
		b.Run(fmt.Sprintf("pending=%d", p), func(b *testing.B) {
			e := NewEngine()
			rng := benchRNG(0xcace1)
			nop := func() {}
			refs := make([]EventRef, p)
			for i := range refs {
				refs[i] = e.Schedule(delayUniform(&rng), nop)
			}
			churn := func(i int) {
				slot := i % p
				refs[slot].Cancel()
				refs[slot] = e.Schedule(delayUniform(&rng), nop)
				e.Schedule(delayUniform(&rng), nop)
				for e.Pending() > p {
					e.Step()
				}
			}
			for i := 0; i < 2*p; i++ { // warm through full epochs
				churn(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				churn(i)
			}
		})
	}
}

// Multi-host event mixes for the sharded engine. Both shapes run the
// same windowed machinery; lanes=1 is the sequential-fallback baseline
// (a plain engine behind the group API), so the pair prices the
// sharding overhead itself. On a multi-core host the lanes=4 numbers
// also show the conservative-parallel win; under GOMAXPROCS=1 the
// windows run inline and the delta is pure bookkeeping cost.

// benchShardMix seeds every lane with event chains and drains the
// group. skew concentrates the population on lane 1 with a sparse
// cross-lane trickle (the per-shard-skewed fleet: one hot host, the
// barrier waits on it every window); !skew hops every firing to the
// next lane at exactly the lookahead (cross-shard chatter: maximal
// barrier and materialization traffic). GOMAXPROCS is pinned to 1 so
// the measured path (inline windows) and the allocs/op snapshot are
// identical on every host — the multi-core wall-clock win is measured
// at the experiment level (EXPERIMENTS.md), not here.
func benchShardMix(b *testing.B, skew bool) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	for _, lanes := range []int{1, 4} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			const lookahead = Microsecond
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := NewShardGroup(lanes, lookahead)
				var hop func(l, depth int) func()
				hop = func(l, depth int) func() {
					return func() {
						if depth == 0 {
							return
						}
						e := g.Engine(l)
						if !skew || depth%16 == 0 {
							n := (l + 1) % lanes
							e.Send(g.Engine(n), lookahead, hop(n, depth-1))
							return
						}
						e.Schedule(100*Nanosecond, hop(l, depth-1))
					}
				}
				for l := 0; l < lanes; l++ {
					chains := 8
					if skew {
						chains = 2
						if l == 1%lanes {
							chains = 16
						}
					}
					e := g.Engine(l)
					for c := 0; c < chains; c++ {
						e.At(Time(c)*Time(50*Nanosecond), hop(l, 32))
					}
				}
				g.Run()
			}
		})
	}
}

func BenchmarkShardGroupSkewed(b *testing.B)  { benchShardMix(b, true) }
func BenchmarkShardGroupChatter(b *testing.B) { benchShardMix(b, false) }

// BenchmarkChannelContention measures the fair-share channel under the
// contention pattern of a loaded fabric link: a rotating population of
// overlapping transfers, each completion starting the next. Every
// membership change re-predicts completion, which is the channel's hot
// path.
func BenchmarkChannelContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		ch := NewChannel(e, "bench", 1e9)
		started := 0
		var launch func()
		launch = func() {
			if started >= 512 {
				return
			}
			started++
			ch.Start(1<<16, launch)
		}
		// Eight initial flows keep the channel continuously contended.
		for k := 0; k < 8; k++ {
			launch()
		}
		e.Run()
	}
}
