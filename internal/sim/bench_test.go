package sim

import "testing"

// BenchmarkEngineSchedule measures the DES scheduling hot loop: every
// simulated kernel completion, DMA, and driver delay passes through
// Schedule + Step. The fan pattern (each fired event schedules two more
// up to a horizon) approximates the branching callback chains the system
// model generates.
func BenchmarkEngineSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		depth := 0
		var fan func()
		fan = func() {
			if depth >= 4096 {
				return
			}
			depth++
			e.Schedule(10*Nanosecond, fan)
			e.Schedule(20*Nanosecond, fan)
		}
		e.Schedule(0, fan)
		e.Run()
	}
}

// BenchmarkEngineScheduleFlat measures the steady-state cost of one
// schedule+fire pair with a warm engine (the free-list regime: events
// are continuously recycled rather than freshly allocated).
func BenchmarkEngineScheduleFlat(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Nanosecond, nop)
		e.Step()
	}
}

// BenchmarkChannelContention measures the fair-share channel under the
// contention pattern of a loaded fabric link: a rotating population of
// overlapping transfers, each completion starting the next. Every
// membership change re-predicts completion, which is the channel's hot
// path.
func BenchmarkChannelContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		ch := NewChannel(e, "bench", 1e9)
		started := 0
		var launch func()
		launch = func() {
			if started >= 512 {
				return
			}
			started++
			ch.Start(1<<16, launch)
		}
		// Eight initial flows keep the channel continuously contended.
		for k := 0; k < 8; k++ {
			launch()
		}
		e.Run()
	}
}
