package sim

import (
	"fmt"

	"dmx/internal/obs"
)

// event is one scheduled callback. The engine owns every event: events
// are allocated in slabs, and fired or canceled events return to a
// per-engine free list for reuse by later Schedule/At calls, so the
// steady-state scheduling hot loop allocates nothing. gen increments on
// every recycle, which is what keeps stale EventRef handles inert.
//
// loc/rungIdx/bucket/pos record where the event sits inside the ladder
// queue (queue.go) so Cancel can purge it from its tier immediately.
type event struct {
	at Time
	// seq is the same-instant tie-break: FIFO among events at one time.
	// On a plain engine it is the allocation counter. On a lane of a
	// parallel ShardGroup it is a canonical global ordinal (shard.go):
	// creations inside a window carry a provisional lane-local key
	// (ordRaw | creation index) that the window barrier rewrites to the
	// materialized ordinal — the position the creation would have held
	// in a single-engine run's seq sequence.
	seq uint64
	gen uint64 // recycle generation, validates EventRef handles
	fn  func()
	eng *Engine // owner, gives EventRef.Cancel its purge path

	loc     int8  // which ladder tier holds the event (locNone when popped)
	rungIdx int16 // rung index when loc == locRung
	bucket  int32 // bucket index when loc == locRung
	pos     int32 // index within its tier's slice
}

// Slab sizing for event allocation. Slabs grow geometrically from
// minSlab up to maxSlab, so a short-lived engine holding a handful of
// timers allocates a handful of nodes, while a run that peaks at a
// million pending events performs ~4k event allocations, not a
// million.
const (
	minSlab = 8
	maxSlab = 256
)

// EventRef is a caller's handle to a scheduled event. It is a small
// value (safe to copy, compare against the zero value, or drop) whose
// Cancel and Time stay correct even after the engine recycles the
// underlying event: a ref to an event that already fired or was already
// canceled simply no-ops.
type EventRef struct {
	ev  *event
	gen uint64
	at  Time
}

// Time reports when the event will fire (or would have fired, if
// canceled).
func (r EventRef) Time() Time { return r.at }

// Cancel prevents the event from firing and immediately returns it to
// the engine's free list — no tombstone is left behind, so Pending
// drops at once and the slot is reused by the very next Schedule.
// Canceling an event that has already fired or was already canceled is
// a no-op, as is canceling the zero EventRef (double-Cancel is safe:
// the first Cancel bumps the recycle generation, making the second a
// stale no-op).
func (r EventRef) Cancel() {
	ev := r.ev
	if ev == nil || ev.gen != r.gen {
		return
	}
	ev.eng.lq.remove(ev)
	ev.eng.recycle(ev)
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use. Engine is not safe for concurrent use; the simulation
// models are single-threaded by design (harness-level parallelism runs
// whole engines independently).
type Engine struct {
	now    Time
	lq     ladder
	seq    uint64
	nfired uint64
	free   []*event // recycled events, reused by At
	slab   int      // next slab size (geometric up to maxSlab)
	batch  []*event // scratch for ScheduleBatch

	// Obs, when non-nil, receives structured occupancy events from every
	// Server and Channel bound to this engine (the engine itself emits
	// nothing — it only carries the recorder so model components share
	// one sink). A nil recorder is the zero-overhead disabled state: the
	// emit paths are a nil check, and the scheduling hot loop stays
	// allocation-free (pinned by TestEngineSteadyStateDoesNotAllocate).
	//
	// On a lane of a parallel ShardGroup, Obs points at the lane's
	// private capture recorder while a window runs; the barrier grafts
	// the captured events into the group's master recorder in canonical
	// order. Model components must therefore read Obs at emission time,
	// never cache it across events.
	Obs *obs.Recorder

	// Sharded-execution state (shard.go / window.go). grp is nil for a
	// standalone engine, which keeps every hot path above a single
	// pointer test away from the classic single-threaded behavior.
	grp    *ShardGroup
	lane   int
	curOrd uint64     // ordering key of the event currently firing
	clog   []crec     // creation log for the in-flight window
	elog   []erec     // emission log for the in-flight window
	cross  []crossMsg // buffered cross-lane sends for the in-flight window
	wtrace bool       // capture emissions into elog (window mode + tracing)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed; useful as a cheap
// progress metric and in tests.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending reports the number of live scheduled events: events that will
// fire unless canceled. Canceled events leave the count immediately
// (Cancel purges them from the queue rather than leaving a tombstone),
// so Pending never overcounts.
func (e *Engine) Pending() int { return e.lq.n }

// Schedule arranges for fn to run after delay. A negative delay panics:
// the simulated causality would be violated.
func (e *Engine) Schedule(delay Duration, fn func()) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// At arranges for fn to run at absolute time t, which must not precede
// the current clock.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc()
	ev.at = t
	ev.fn = fn
	e.assignKey(ev, t)
	e.lq.insert(ev)
	return EventRef{ev: ev, gen: ev.gen, at: t}
}

// assignKey gives a freshly scheduled event its ordering key. On a
// plain engine (grp == nil) this is the classic allocation counter —
// one predicted branch on the hot path. On a parallel ShardGroup lane
// the key depends on the group phase: setup (outside Run) draws a
// materialized ordinal from the group counter directly, while window
// mode assigns a provisional lane-local key and logs the creation so
// the barrier can materialize its canonical position (shard.go).
func (e *Engine) assignKey(ev *event, t Time) {
	g := e.grp
	if g == nil {
		ev.seq = e.seq
		e.seq++
		return
	}
	switch g.mode {
	case gmWindow:
		ev.seq = ordRaw | uint64(len(e.clog))
		e.clog = append(e.clog, crec{ev: ev, gen: ev.gen, at: t, pAt: e.now, parent: e.curOrd})
	case gmSetup:
		ev.seq = g.ordC
		g.ordC++
	default:
		ev.seq = e.seq
		e.seq++
	}
}

// ScheduleBatch arranges for every callback in fns to run after delay,
// in slice order — exactly equivalent to calling Schedule once per
// callback (the events receive consecutive seqs at one instant, so
// their firing order is the slice order), but the queue tier is
// resolved once for the whole block. This is the path for completion
// storms: a channel retiring a batch of simultaneous transfers, a
// server admitting a burst of identical jobs. No refs are returned; use
// Schedule when a cancelable handle is needed. fns may be reused by the
// caller after the call returns.
func (e *Engine) ScheduleBatch(delay Duration, fns []func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if len(fns) == 0 {
		return
	}
	t := e.now.Add(delay)
	e.batch = e.batch[:0]
	for _, fn := range fns {
		if fn == nil {
			panic("sim: nil event callback")
		}
		ev := e.alloc()
		ev.at = t
		ev.fn = fn
		e.assignKey(ev, t)
		e.batch = append(e.batch, ev)
	}
	e.lq.insertBatch(e.batch)
	for i := range e.batch {
		e.batch[i] = nil
	}
	e.batch = e.batch[:0]
}

// Reschedule cancels ref (if still live) and schedules fn after delay,
// returning the new handle: the timer-reset idiom (cancel + schedule)
// in one call. When the new firing time equals ref's and ref's event
// was the most recently scheduled one, the entry is updated in place —
// provably order-identical to cancel+schedule, since no seq has been
// issued in between — and no queue surgery happens at all. On a
// ShardGroup lane the in-place test would compare lane-local state
// against canonical ordinals, so group engines always take the
// cancel+schedule path (order-identical by the same argument: the
// replacement key is the largest issued, exactly like the kept one).
func (e *Engine) Reschedule(ref EventRef, delay Duration, fn func()) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	t := e.now.Add(delay)
	if ev := ref.ev; e.grp == nil && ev != nil && ev.gen == ref.gen && ev.at == t && ev.seq == e.seq-1 {
		ev.fn = fn
		return ref
	}
	ref.Cancel()
	return e.At(t, fn)
}

// alloc takes an event from the free list, growing it a slab at a time
// (geometrically, so small engines stay small and big ones amortize).
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	size := e.slab * 2
	if size < minSlab {
		size = minSlab
	}
	if size > maxSlab {
		size = maxSlab
	}
	e.slab = size
	slab := make([]event, size)
	for i := size - 1; i > 0; i-- {
		slab[i].eng = e
		e.free = append(e.free, &slab[i])
	}
	slab[0].eng = e
	return &slab[0]
}

// recycle returns a popped or purged event to the free list. Bumping
// gen first invalidates every outstanding EventRef to it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// fire advances the clock to ev and runs its callback. It is the single
// execution path shared by Step and RunUntil (there is no separate
// purge loop anywhere: canceled events never reach the queue's head
// because Cancel removes them immediately).
func (e *Engine) fire(ev *event) {
	at := ev.at
	e.now = at
	e.nfired++
	fn := ev.fn
	key := ev.seq
	// Recycle before running the callback: fn frequently reschedules,
	// and reusing this very event keeps the hot loop allocation-free.
	// Any EventRef to it is invalidated by the gen bump, so a late
	// Cancel from inside fn cannot touch the recycled slot's new owner
	// by accident.
	e.recycle(ev)
	if g := e.grp; g != nil && g.mode == gmWindow {
		// Window mode: children created by fn inherit this event's key
		// as their parent genealogy, and (when tracing) the emissions fn
		// makes are fenced into an elog record so the barrier can replay
		// them into the master recorder in canonical order.
		e.curOrd = key
		if e.wtrace {
			lo := e.Obs.Len()
			fn()
			if hi := e.Obs.Len(); hi > lo {
				e.elog = append(e.elog, erec{at: at, ord: key, lo: lo, hi: hi})
			}
			return
		}
	}
	fn()
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev := e.lq.pop()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// runBefore fires every event with time strictly before limit. Unlike
// RunUntil it never advances the clock to limit: a lane's clock must
// stay a time at which an event actually ran, so cross-lane sends
// buffered during a window carry true causal timestamps and the next
// window start is derived from queue heads, not synthetic clocks.
func (e *Engine) runBefore(limit Time) {
	for {
		ev := e.lq.peek()
		if ev == nil || ev.at >= limit {
			return
		}
		e.lq.pop()
		e.fire(ev)
	}
}

// peekTime reports the firing time of the earliest pending event.
func (e *Engine) peekTime() (Time, bool) {
	ev := e.lq.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// inject schedules fn at absolute time t under a caller-supplied
// ordering key: the barrier's delivery path for cross-lane sends whose
// canonical ordinal was already materialized. t is always at or beyond
// the window that buffered the send, hence never in the lane's past.
func (e *Engine) inject(t Time, ord uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: cross-lane injection into the past (%v < %v)", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = ord
	ev.fn = fn
	e.lq.insert(ev)
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for {
		ev := e.lq.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.lq.pop()
		e.fire(ev)
	}
	if t > e.now {
		e.now = t
	}
}
