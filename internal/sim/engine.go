package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Engine.Schedule and
// Engine.At and may be canceled before they fire.
type Event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among events at the same instant
	fn       func()
	canceled bool
	index    int // position in the heap, -1 once popped
}

// Time reports when the event will fire (or would have fired, if canceled).
func (ev *Event) Time() Time { return ev.at }

// Cancel prevents the event from firing. Canceling an event that has
// already fired or was already canceled is a no-op.
func (ev *Event) Cancel() { ev.canceled = true }

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use. Engine is not safe for concurrent use; the simulation
// models are single-threaded by design.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nfired uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed; useful as a cheap
// progress metric and in tests.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending reports the number of events still scheduled (including
// canceled events that have not yet been discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule arranges for fn to run after delay. A negative delay panics:
// the simulated causality would be violated.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// At arranges for fn to run at absolute time t, which must not precede
// the current clock.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.nfired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap orders events by (time, seq). seq guarantees FIFO execution of
// simultaneous events, which is what makes runs reproducible.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
