package sim

import (
	"container/heap"
	"fmt"

	"dmx/internal/obs"
)

// event is one scheduled callback. The engine owns every event: fired
// and discarded events return to a per-engine free list and are reused
// by later Schedule/At calls, so the steady-state scheduling hot loop
// allocates nothing. gen increments on every recycle, which is what
// keeps stale EventRef handles inert.
type event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among events at the same instant
	gen      uint64 // recycle generation, validates EventRef handles
	fn       func()
	canceled bool
	index    int // position in the heap, -1 once popped
}

// EventRef is a caller's handle to a scheduled event. It is a small
// value (safe to copy, compare against the zero value, or drop) whose
// Cancel and Time stay correct even after the engine recycles the
// underlying event: a ref to an event that already fired or was already
// canceled simply no-ops.
type EventRef struct {
	ev  *event
	gen uint64
	at  Time
}

// Time reports when the event will fire (or would have fired, if
// canceled).
func (r EventRef) Time() Time { return r.at }

// Cancel prevents the event from firing. Canceling an event that has
// already fired or was already canceled is a no-op, as is canceling the
// zero EventRef.
func (r EventRef) Cancel() {
	if r.ev != nil && r.ev.gen == r.gen {
		r.ev.canceled = true
	}
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use. Engine is not safe for concurrent use; the simulation
// models are single-threaded by design (harness-level parallelism runs
// whole engines independently).
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nfired uint64
	free   []*event // recycled events, reused by At

	// Obs, when non-nil, receives structured occupancy events from every
	// Server and Channel bound to this engine (the engine itself emits
	// nothing — it only carries the recorder so model components share
	// one sink). A nil recorder is the zero-overhead disabled state: the
	// emit paths are a nil check, and the scheduling hot loop stays
	// allocation-free (pinned by TestEngineSteadyStateDoesNotAllocate).
	Obs *obs.Recorder
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been executed; useful as a cheap
// progress metric and in tests.
func (e *Engine) Fired() uint64 { return e.nfired }

// Pending reports the number of events still scheduled (including
// canceled events that have not yet been discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule arranges for fn to run after delay. A negative delay panics:
// the simulated causality would be violated.
func (e *Engine) Schedule(delay Duration, fn func()) EventRef {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now.Add(delay), fn)
}

// At arranges for fn to run at absolute time t, which must not precede
// the current clock.
func (e *Engine) At(t Time, fn func()) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling into the past (%v < %v)", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.canceled = false
	e.seq++
	heap.Push(&e.queue, ev)
	return EventRef{ev: ev, gen: ev.gen, at: t}
}

// recycle returns a popped event to the free list. Bumping gen first
// invalidates every outstanding EventRef to it.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.nfired++
		fn := ev.fn
		// Recycle before running the callback: fn frequently reschedules,
		// and reusing this very event keeps the hot loop allocation-free.
		// Any EventRef to it is invalidated by the gen bump, so a late
		// Cancel from inside fn cannot touch the recycled slot's new owner
		// by accident.
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.canceled {
			e.recycle(heap.Pop(&e.queue).(*event))
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap orders events by (time, seq). seq guarantees FIFO execution of
// simultaneous events, which is what makes runs reproducible.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
