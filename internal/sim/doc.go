// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for every timing model in this repository:
// PCIe links, DRX execution, CPU restructuring, accelerator kernels, and
// driver latencies all advance a single virtual clock owned by an Engine.
// Determinism is a hard requirement (experiments must reproduce
// bit-for-bit), so the kernel is callback-based — no goroutines, no
// wall-clock reads — and ties are broken by schedule order.
//
// Pending events live in a ladder queue (queue.go): tiered time
// buckets with a sorted bottom rung, giving amortized O(1)
// schedule/fire/cancel at any occupancy while realizing the exact
// (time, seq) total order a binary heap would (enforced by a
// differential fuzz harness against a reference heap engine).
// Cancellation purges eagerly — no tombstones, so Pending counts live
// events exactly — and event nodes are recycled through per-engine
// slabs, keeping the steady-state loop allocation-free at any
// occupancy. ScheduleBatch files same-instant completion storms in one
// queue walk; Reschedule is the timer-reset idiom with an in-place
// fast path for the latest-scheduled event.
//
// Server's backlog ordering is pluggable (Discipline): FIFO's
// power-of-two ring is the zero-allocation default, Priority and WFQ
// order by static per-class tables, and Keyed is a (key, seq) min-heap
// whose key travels with the job — NewEDF submits absolute deadlines
// (earliest first, MaxInt64 for none), NewSRS submits remaining
// service demand (shortest first). SubmitKeyed attaches the key;
// SubmitClass delegates with a zero key for the table-driven
// disciplines. All ties break by submission order, preserving
// determinism under any policy.
//
// ShardGroup (shard.go, window.go) runs several engines — "lanes" —
// as one logical simulation using conservative parallel DES: lanes
// execute concurrently inside windows bounded by a lookahead (the
// minimum cross-lane latency), and cross-lane work is scheduled only
// through Engine.Send, which enforces delay ≥ lookahead. At each
// window barrier, cross-lane sends are materialized in the canonical
// order (fire time, parent fire time, parent ordinal, call index) and
// lane-private observability captures are merged with rebased
// sequence numbers and flow ids — so traces, reports, and metrics are
// byte-identical at any lane count, and a 1-lane group is literally
// the sequential engine (a differential fuzz harness pins the fire
// log against a reference sequential run). Under GOMAXPROCS=1 windows
// execute inline with no goroutines; otherwise per-lane workers carry
// them, and the merge keeps the output unchanged.
//
// The kernel is also the lowest-level producer of the observability
// stream (internal/obs): Engine carries an optional *obs.Recorder;
// Server emits a service span per completed job (per-slot sub-tracks
// keep multi-slot stations nest-safe) and Channel emits in-flight
// occupancy counters. With the recorder nil — the default — every
// emission path is a single branch, and the steady-state schedule/fire
// loop stays allocation-free (pinned by AllocsPerRun tests).
package sim
