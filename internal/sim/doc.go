// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for every timing model in this repository:
// PCIe links, DRX execution, CPU restructuring, accelerator kernels, and
// driver latencies all advance a single virtual clock owned by an Engine.
// Determinism is a hard requirement (experiments must reproduce
// bit-for-bit), so the kernel is callback-based — no goroutines, no
// wall-clock reads — and ties are broken by schedule order.
//
// The kernel is also the lowest-level producer of the observability
// stream (internal/obs): Engine carries an optional *obs.Recorder;
// Server emits a service span per completed job (per-slot sub-tracks
// keep multi-slot stations nest-safe) and Channel emits in-flight
// occupancy counters. With the recorder nil — the default — every
// emission path is a single branch, and the steady-state schedule/fire
// loop stays allocation-free (pinned by AllocsPerRun tests).
package sim
