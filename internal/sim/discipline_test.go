package sim

import (
	"testing"
)

func drain(d Discipline) []int {
	var classes []int
	for {
		j, ok := d.Pop()
		if !ok {
			return classes
		}
		classes = append(classes, j.Class)
	}
}

func TestFIFOOrdersByArrival(t *testing.T) {
	q := NewFIFO()
	for i := 0; i < 20; i++ {
		q.Push(Job{Class: i, seq: uint64(i)})
	}
	if q.Len() != 20 {
		t.Fatalf("Len = %d, want 20", q.Len())
	}
	got := drain(q)
	for i, c := range got {
		if c != i {
			t.Fatalf("pop %d yielded class %d, want arrival order", i, c)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("empty FIFO popped a job")
	}
}

// The ring must survive many wrap-arounds without losing order: the old
// slice-based queue stranded head capacity; the ring reuses it.
func TestFIFOWrapsWithoutStrandingCapacity(t *testing.T) {
	q := NewFIFO()
	next, want := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			q.Push(Job{Class: next, seq: uint64(next)})
			next++
		}
		for i := 0; i < 3; i++ {
			j, ok := q.Pop()
			if !ok || j.Class != want {
				t.Fatalf("round %d: popped %v (ok=%v), want class %d", round, j.Class, ok, want)
			}
			want++
		}
	}
	// 3 in flight at a time: the ring must have stayed at its minimum
	// size instead of growing with every wrap.
	if len(q.ring) != 8 {
		t.Fatalf("ring grew to %d slots for a depth-3 workload", len(q.ring))
	}
}

// Pop must zero the vacated slot so the job's done closure is released
// immediately, not pinned until the ring wraps.
func TestFIFOPopReleasesClosure(t *testing.T) {
	q := NewFIFO()
	q.Push(Job{done: func() {}})
	q.Pop()
	if q.ring[0].done != nil {
		t.Fatal("popped slot still pins the done closure")
	}
}

// The steady-state push/pop cycle must not allocate once the ring is
// warm (the server dequeue path runs inside the DES hot loop).
func TestFIFOSteadyStateDoesNotAllocate(t *testing.T) {
	q := NewFIFO()
	j := Job{Service: Nanosecond}
	for i := 0; i < 16; i++ {
		q.Push(j)
	}
	for i := 0; i < 16; i++ {
		q.Pop()
	}
	avg := testing.AllocsPerRun(1000, func() {
		q.Push(j)
		q.Push(j)
		q.Pop()
		q.Pop()
	})
	if avg != 0 {
		t.Fatalf("FIFO push/pop allocates %.1f per op, want 0", avg)
	}
}

func TestPriorityServesLowestValueFirstTiesInOrder(t *testing.T) {
	// Class 0 → prio 2, class 1 → prio 1, class 2 → DefaultPriority.
	q := NewPriority([]int{2, 1})
	pushes := []int{0, 2, 1, 0, 1, 2}
	for i, c := range pushes {
		q.Push(Job{Class: c, seq: uint64(i)})
	}
	got := drain(q)
	want := []int{1, 1, 0, 0, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", got, want)
		}
	}
}

func TestPriorityEqualKeysPreserveSubmissionOrder(t *testing.T) {
	q := NewPriority([]int{5, 5, 5})
	for i := 0; i < 30; i++ {
		q.Push(Job{Class: i % 3, Service: Duration(i), seq: uint64(i)})
	}
	var prev uint64
	for i := 0; i < 30; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		if i > 0 && j.seq < prev {
			t.Fatalf("equal-priority jobs reordered: seq %d after %d", j.seq, prev)
		}
		prev = j.seq
	}
}

func TestKeyedServesSmallestKeyFirstTiesInOrder(t *testing.T) {
	q := NewEDF()
	keys := []int64{30, 10, 20, 10, 30}
	for i, k := range keys {
		q.Push(Job{Class: i, Key: k, seq: uint64(i)})
	}
	got := drain(q)
	// Smallest key first; the two key-10 jobs in submission order, then
	// key 20, then the two key-30 jobs in submission order.
	want := []int{1, 3, 2, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keyed order = %v, want %v", got, want)
		}
	}
	if q.Name() != "edf" || NewSRS().Name() != "srs" {
		t.Fatalf("constructor names: %q / %q", q.Name(), NewSRS().Name())
	}
}

func TestKeyedEqualKeysPreserveSubmissionOrder(t *testing.T) {
	q := NewSRS()
	for i := 0; i < 30; i++ {
		q.Push(Job{Class: i % 3, Key: 7, seq: uint64(i)})
	}
	var prev uint64
	for i := 0; i < 30; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		if i > 0 && j.seq < prev {
			t.Fatalf("equal-key jobs reordered: seq %d after %d", j.seq, prev)
		}
		prev = j.seq
	}
}

func TestKeyedPopReleasesClosure(t *testing.T) {
	q := NewEDF()
	q.Push(Job{Key: 1, done: func() {}})
	q.Push(Job{Key: 2, done: func() {}})
	q.Pop()
	// The vacated tail slot (past the shrunken length) must be zeroed.
	if q.heap[:2][1].done != nil {
		t.Fatal("vacated heap slot still pins the done closure")
	}
}

// SubmitKeyed must thread the key through to the discipline, and a
// server under EDF must serve the backlog deadline-first.
func TestServerSubmitKeyedOrdersByKey(t *testing.T) {
	e := NewEngine()
	s := NewServerDisc(e, "srv", 1, NewEDF())
	var order []int64
	mk := func(key int64) func() {
		return func() { order = append(order, key) }
	}
	s.SubmitKeyed(0, 50, Nanosecond, mk(50)) // seizes the slot
	s.SubmitKeyed(0, 40, Nanosecond, mk(40))
	s.SubmitKeyed(0, 10, Nanosecond, mk(10))
	s.SubmitKeyed(0, 20, Nanosecond, mk(20))
	e.Run()
	want := []int64{50, 10, 20, 40}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

func TestWRRInterleavesByWeight(t *testing.T) {
	// Class 0 has weight 2, class 1 weight 1: the service pattern is
	// 0,0,1, 0,0,1, ...
	q := NewWRR([]int{2, 1})
	var seq uint64
	for i := 0; i < 6; i++ {
		q.Push(Job{Class: 0, seq: seq})
		seq++
	}
	for i := 0; i < 3; i++ {
		q.Push(Job{Class: 1, seq: seq})
		seq++
	}
	got := drain(q)
	want := []int{0, 0, 1, 0, 0, 1, 0, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WRR order = %v, want %v", got, want)
		}
	}
}

func TestWRRDropsDrainedClassesFromRotation(t *testing.T) {
	q := NewWRR(nil) // all weights 1
	q.Push(Job{Class: 0, seq: 0})
	q.Push(Job{Class: 1, seq: 1})
	q.Push(Job{Class: 1, seq: 2})
	got := drain(q)
	want := []int{0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WRR order = %v, want %v", got, want)
		}
	}
	// A class that re-activates after draining rejoins the rotation.
	q.Push(Job{Class: 0, seq: 3})
	if j, ok := q.Pop(); !ok || j.Class != 0 {
		t.Fatalf("re-activated class not served: %v %v", j, ok)
	}
}

// A FIFO server's busy-slot dequeue path must not allocate in steady
// state: jobs park in the warm ring and completions pop them without
// touching the heap.
func TestServerQueueSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "srv", 1)
	nop := func() {}
	// Warm: fill the queue once so the ring and the engine free lists
	// are sized.
	for i := 0; i < 8; i++ {
		s.Submit(Nanosecond, nop)
	}
	e.Run()
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 4; i++ {
			s.Submit(Nanosecond, nop)
		}
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("server submit/queue/complete allocates %.1f per round, want 0", avg)
	}
}

func TestServerDiscPriorityReordersBacklog(t *testing.T) {
	e := NewEngine()
	// Class 1 outranks class 0.
	s := NewServerDisc(e, "srv", 1, NewPriority([]int{1, 0}))
	var order []int
	mk := func(class int) func() {
		return func() { order = append(order, class) }
	}
	// First submission seizes the slot; the rest queue and are served by
	// priority: both class-1 jobs before the class-0 job.
	s.SubmitClass(0, Nanosecond, mk(0))
	s.SubmitClass(0, Nanosecond, mk(0))
	s.SubmitClass(1, Nanosecond, mk(1))
	s.SubmitClass(1, Nanosecond, mk(1))
	e.Run()
	want := []int{0, 1, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
	if s.MaxQueue != 3 {
		t.Errorf("MaxQueue = %d, want 3", s.MaxQueue)
	}
}

func TestServerWaitTimeAccountsQueueing(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "srv", 1)
	s.Submit(10*Nanosecond, nil)
	s.Submit(10*Nanosecond, nil)
	e.Run()
	if s.WaitTime != 10*Nanosecond {
		t.Errorf("WaitTime = %v, want 10ns (second job queued behind the first)", s.WaitTime)
	}
	if s.Jobs != 2 || s.BusyTime != 20*Nanosecond {
		t.Errorf("Jobs=%d BusyTime=%v", s.Jobs, s.BusyTime)
	}
}
