package sim

import "testing"

// A held slot stays occupied across the gap: queued work waits until the
// resumed segment finishes, and BusyTime counts only the two service
// segments, never the residency gap.
func TestHoldResumeOccupiesSlot(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "drx", 1)
	var events []string
	var when []Time
	note := func(what string) {
		events = append(events, what)
		when = append(when, e.Now())
	}
	s.SubmitKeyedHold(0, 0, 10*Nanosecond, func(h *Hold) {
		note("part1")
		// Resident for 5ns, then run the second segment.
		e.Schedule(5*Nanosecond, func() {
			h.Resume(7*Nanosecond, func() { note("part2") })
		})
	})
	s.Submit(3*Nanosecond, func() { note("queued") })
	e.Run()

	wantEv := []string{"part1", "part2", "queued"}
	wantAt := []Time{Time(10 * Nanosecond), Time(22 * Nanosecond), Time(25 * Nanosecond)}
	for i := range wantEv {
		if i >= len(events) || events[i] != wantEv[i] || when[i] != wantAt[i] {
			t.Fatalf("events %v at %v, want %v at %v", events, when, wantEv, wantAt)
		}
	}
	if s.Jobs != 3 {
		t.Errorf("Jobs = %d, want 3", s.Jobs)
	}
	// 10 + 7 + 3, excluding the 5ns residency gap.
	if s.BusyTime != 20*Nanosecond {
		t.Errorf("BusyTime = %v, want 20ns", s.BusyTime)
	}
	// The queued job waited from t=0 to t=22.
	if s.WaitTime != 22*Nanosecond {
		t.Errorf("WaitTime = %v, want 22ns", s.WaitTime)
	}
}

// Release frees the held slot without a second segment and pulls queued
// work into service immediately.
func TestHoldReleaseFreesSlot(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "drx", 1)
	var queuedAt Time
	s.SubmitKeyedHold(0, 0, 10*Nanosecond, func(h *Hold) {
		e.Schedule(4*Nanosecond, func() { h.Release() })
	})
	s.Submit(2*Nanosecond, func() { queuedAt = e.Now() })
	e.Run()
	if queuedAt != Time(16*Nanosecond) {
		t.Errorf("queued job finished at %v, want 16ns (release at 14 + 2 service)", queuedAt)
	}
	if s.Jobs != 2 {
		t.Errorf("Jobs = %d, want 2", s.Jobs)
	}
	if s.BusyTime != 12*Nanosecond {
		t.Errorf("BusyTime = %v, want 12ns", s.BusyTime)
	}
}

// A hold job that queues behind busy slots enters service under the
// discipline like any other submission.
func TestHoldQueuesLikeAnyJob(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "drx", 1)
	s.Submit(10*Nanosecond, nil)
	var part1 Time
	s.SubmitKeyedHold(0, 0, 5*Nanosecond, func(h *Hold) {
		part1 = e.Now()
		h.Release()
	})
	e.Run()
	if part1 != Time(15*Nanosecond) {
		t.Errorf("held job's first segment finished at %v, want 15ns", part1)
	}
}

func TestHoldSpentPanics(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "drx", 1)
	var h *Hold
	s.SubmitKeyedHold(0, 0, Nanosecond, func(got *Hold) {
		h = got
		got.Release()
	})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Resume on a spent hold did not panic")
		}
	}()
	h.Resume(Nanosecond, nil)
}
