package sim

import "testing"

// EventRef edge cases around the eager-purge Cancel and the recycle
// generation scheme: double-Cancel, Cancel racing the generation bump
// from inside a firing callback, and Pending's live-events-only
// contract.

// Double-Cancel: the first Cancel purges and recycles the event (gen
// bump); the second must be a stale no-op — in particular it must not
// touch a new event that has since claimed the recycled slot.
func TestDoubleCancelIsInert(t *testing.T) {
	e := NewEngine()
	ref := e.Schedule(Nanosecond, func() { t.Fatal("canceled event fired") })
	ref.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after cancel, want 0", e.Pending())
	}
	// B claims A's recycled slot.
	fired := false
	e.Schedule(Nanosecond, func() { fired = true })
	ref.Cancel() // second cancel: stale, must not kill B
	e.Run()
	if !fired {
		t.Fatal("double-Cancel killed the recycled slot's new event")
	}
}

// Cancel from inside the firing callback of the very event being fired:
// the engine bumps the recycle generation before running the callback,
// so the self-Cancel must lose the race and no-op — even after the
// slot has been reused by a Schedule made earlier in the same callback.
func TestCancelInsideFiringCallbackIsInert(t *testing.T) {
	e := NewEngine()
	var selfRef EventRef
	fired := []string{}
	selfRef = e.Schedule(Nanosecond, func() {
		// Reuse the just-recycled slot first, then try the stale cancel.
		e.Schedule(Nanosecond, func() { fired = append(fired, "B") })
		selfRef.Cancel() // stale: A is mid-fire, gen already bumped
		fired = append(fired, "A")
	})
	e.Run()
	if len(fired) != 2 || fired[0] != "A" || fired[1] != "B" {
		t.Fatalf("fired = %v, want [A B]", fired)
	}
}

// Canceling another live event from inside a firing callback must purge
// it for real (it never fires, Pending drops at once).
func TestCancelOtherFromInsideCallback(t *testing.T) {
	e := NewEngine()
	var victim EventRef
	victim = e.Schedule(2*Nanosecond, func() { t.Fatal("victim fired") })
	e.Schedule(Nanosecond, func() {
		victim.Cancel()
		if e.Pending() != 0 {
			t.Fatalf("Pending = %d inside callback after cancel, want 0", e.Pending())
		}
	})
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
}

// Pending counts live events only: cancels leave the count immediately,
// with no Step needed to flush tombstones (there are none).
func TestPendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	refs := make([]EventRef, 6)
	for i := range refs {
		refs[i] = e.Schedule(Duration(i+1)*Nanosecond, func() {})
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", e.Pending())
	}
	refs[1].Cancel()
	refs[4].Cancel()
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d after two cancels, want 4", e.Pending())
	}
	refs[1].Cancel() // double-cancel must not double-count
	if e.Pending() != 4 {
		t.Fatalf("Pending = %d after double cancel, want 4", e.Pending())
	}
	e.Step()
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d after one fire, want 3", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 || e.Fired() != 4 {
		t.Fatalf("Pending = %d, Fired = %d after drain, want 0 and 4", e.Pending(), e.Fired())
	}
}

// A canceled event's node goes straight back to the free list: the
// cancel/schedule churn loop must not allocate.
func TestCancelPurgeDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	ref := e.Schedule(Nanosecond, nop)
	avg := testing.AllocsPerRun(1000, func() {
		ref.Cancel()
		ref = e.Schedule(Nanosecond, nop)
	})
	if avg != 0 {
		t.Fatalf("cancel/schedule churn allocates %.1f per op, want 0", avg)
	}
}

// The schedule/fire loop must stay allocation-free at high occupancy
// too: with a four-figure pending set the ladder cycles through spills,
// rung refinement, and epoch reseeds, all on recycled storage.
func TestEngineHighOccupancySteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	rng := benchRNG(7)
	nop := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(delayUniform(&rng), nop)
	}
	for i := 0; i < 8192; i++ { // warm through several full epochs
		e.Schedule(delayUniform(&rng), nop)
		e.Step()
	}
	avg := testing.AllocsPerRun(5000, func() {
		e.Schedule(delayUniform(&rng), nop)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("high-occupancy schedule/fire allocates %.1f per op, want 0", avg)
	}
}
