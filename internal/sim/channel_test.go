package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChannelSingleTransferRate(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "link", 1e9) // 1 GB/s
	var doneAt Time
	ch.Start(1e9, func() { doneAt = e.Now() })
	e.Run()
	if got := doneAt.Seconds(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("1GB at 1GB/s finished at %vs, want 1s", got)
	}
}

func TestChannelFairShareTwoEqualTransfers(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "link", 1e9)
	var at [2]Time
	ch.Start(5e8, func() { at[0] = e.Now() })
	ch.Start(5e8, func() { at[1] = e.Now() })
	e.Run()
	// Two 0.5 GB transfers sharing 1 GB/s each see 0.5 GB/s: both take 1 s.
	for i, got := range at {
		if math.Abs(got.Seconds()-1.0) > 1e-6 {
			t.Errorf("transfer %d finished at %vs, want 1s", i, got.Seconds())
		}
	}
}

func TestChannelLateArrivalSlowsFirst(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "link", 1e9)
	var first, second Time
	ch.Start(1e9, func() { first = e.Now() })
	// After 0.5 s the first transfer has 0.5 GB left; a second equal-size
	// transfer halves its rate.
	e.Schedule(FromSeconds(0.5), func() {
		ch.Start(1e9, func() { second = e.Now() })
	})
	e.Run()
	// First: 0.5s alone + 1.0s shared = 1.5s total.
	if math.Abs(first.Seconds()-1.5) > 1e-6 {
		t.Errorf("first finished at %vs, want 1.5s", first.Seconds())
	}
	// Second: 1.0 GB = 0.5 GB shared (1.0s) + 0.5 GB alone (0.5s) → at 2.0s.
	if math.Abs(second.Seconds()-2.0) > 1e-6 {
		t.Errorf("second finished at %vs, want 2.0s", second.Seconds())
	}
}

func TestChannelZeroByteTransferCompletes(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "link", 1e9)
	done := false
	ch.Start(0, func() { done = true })
	e.Run()
	if !done {
		t.Error("zero-byte transfer never completed")
	}
}

func TestChannelAbort(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "link", 1e9)
	var aborted, kept Time
	tr := ch.Start(1e9, func() { aborted = e.Now() })
	ch.Start(1e9, func() { kept = e.Now() })
	e.Schedule(FromSeconds(0.5), func() { tr.Abort() })
	e.Run()
	if aborted != 0 {
		t.Error("aborted transfer completed")
	}
	// Kept transfer: 0.25 GB in first 0.5s (shared), then 0.75 GB alone
	// (0.75 s) → finishes at 1.25 s.
	if math.Abs(kept.Seconds()-1.25) > 1e-6 {
		t.Errorf("kept finished at %vs, want 1.25s", kept.Seconds())
	}
}

func TestChannelCompletionOrderDeterministic(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		ch := NewChannel(e, "link", 1e9)
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			ch.Start(1e6, func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] || a[i] != i {
			t.Fatalf("nondeterministic or non-FIFO completion: %v vs %v", a, b)
		}
	}
}

func TestChannelAccounting(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "link", 2e9)
	ch.Start(1e9, nil)
	ch.Start(1e9, nil)
	e.Run()
	if ch.TotalBytes != 2e9 {
		t.Errorf("TotalBytes = %d, want 2e9", ch.TotalBytes)
	}
	if math.Abs(ch.BusyTime.Seconds()-1.0) > 1e-6 {
		t.Errorf("BusyTime = %v, want 1s", ch.BusyTime)
	}
}

// Property: work conservation — N concurrent transfers totalling B bytes
// through a channel of capacity C finish no earlier than B/C and, when all
// start at time zero, the last finishes at exactly B/C (within float slop).
func TestChannelWorkConservationProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%8) + 1
		e := NewEngine()
		cap := 1e9
		ch := NewChannel(e, "link", cap)
		var total int64
		var lastDone Time
		for i := 0; i < count; i++ {
			size := rng.Int63n(1e8) + 1e6
			total += size
			ch.Start(size, func() {
				if e.Now() > lastDone {
					lastDone = e.Now()
				}
			})
		}
		e.Run()
		want := float64(total) / cap
		got := lastDone.Seconds()
		return math.Abs(got-want) < 1e-3*want+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestChannelInvalidConstruction(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero-capacity channel")
		}
	}()
	NewChannel(e, "bad", 0)
}
