package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestServerSingleSlotSerializes(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "core", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		s.Submit(10*Nanosecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{Time(10 * Nanosecond), Time(20 * Nanosecond), Time(30 * Nanosecond)}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestServerParallelSlots(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cores", 4)
	var done []Time
	for i := 0; i < 4; i++ {
		s.Submit(10*Nanosecond, func() { done = append(done, e.Now()) })
	}
	e.Run()
	for i, d := range done {
		if d != Time(10*Nanosecond) {
			t.Fatalf("job %d finished at %v, want 10ns (parallel)", i, d)
		}
	}
}

func TestServerFIFOOrder(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "core", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Submit(Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("completion order %v not FIFO", order)
		}
	}
}

func TestServerWaitTimeAccounting(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "core", 1)
	s.Submit(10*Nanosecond, nil)
	s.Submit(10*Nanosecond, nil) // waits 10 ns
	s.Submit(10*Nanosecond, nil) // waits 20 ns
	e.Run()
	if s.WaitTime != 30*Nanosecond {
		t.Errorf("WaitTime = %v, want 30ns", s.WaitTime)
	}
	if s.BusyTime != 30*Nanosecond {
		t.Errorf("BusyTime = %v, want 30ns", s.BusyTime)
	}
	if s.Jobs != 3 {
		t.Errorf("Jobs = %d, want 3", s.Jobs)
	}
}

func TestServerChainedSubmission(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "core", 1)
	var finish Time
	s.Submit(5*Nanosecond, func() {
		s.Submit(5*Nanosecond, func() { finish = e.Now() })
	})
	e.Run()
	if finish != Time(10*Nanosecond) {
		t.Errorf("chained finish = %v, want 10ns", finish)
	}
}

// Property: with k slots and n identical jobs of service time d submitted
// together, the makespan is ceil(n/k)*d.
func TestServerMakespanProperty(t *testing.T) {
	prop := func(slots, jobs uint8) bool {
		k := int(slots%8) + 1
		n := int(jobs%32) + 1
		e := NewEngine()
		s := NewServer(e, "pool", k)
		d := 7 * Nanosecond
		var last Time
		for i := 0; i < n; i++ {
			s.Submit(d, func() { last = e.Now() })
		}
		e.Run()
		waves := (n + k - 1) / k
		return last == Time(Duration(waves)*d)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: total busy time equals the sum of all service times regardless
// of slot count (work conservation).
func TestServerWorkConservationProperty(t *testing.T) {
	prop := func(seed int64, slots uint8) bool {
		k := int(slots%6) + 1
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		s := NewServer(e, "pool", k)
		var total Duration
		for i := 0; i < 20; i++ {
			d := Duration(rng.Int63n(100)+1) * Nanosecond
			total += d
			s.Submit(d, nil)
		}
		e.Run()
		return s.BusyTime == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestServerInvalidConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero slots")
		}
	}()
	NewServer(NewEngine(), "bad", 0)
}

func TestServerNegativeServicePanics(t *testing.T) {
	s := NewServer(NewEngine(), "core", 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative service time")
		}
	}()
	s.Submit(-1, nil)
}
