package sim

import (
	"fmt"

	"dmx/internal/obs"
)

// Server models a service station with a fixed number of identical
// slots: a pool of CPU cores executing restructuring jobs, a DRX
// processing unit, an accelerator's execution engine. Jobs carry a
// precomputed service time; if all slots are busy the job waits under
// the server's Discipline (FIFO by default, in arrival order).
type Server struct {
	eng   *Engine
	name  string
	slots int
	busy  int
	disc  Discipline
	seq   uint64 // submission order, the disciplines' deterministic tie-break

	// Jobs counts completed jobs; BusyTime integrates slot-seconds of
	// service; WaitTime integrates queueing delay across jobs.
	Jobs     int64
	BusyTime Duration
	WaitTime Duration

	// MaxQueue records the deepest backlog ever reached.
	MaxQueue int

	// Per-slot state. tracks holds one trace-track name per slot so
	// that concurrent jobs on a multi-slot server never overlap on a
	// single track; job/begin are the slot's in-service job and its
	// start time; fire holds one preallocated completion closure per
	// slot so the steady-state submit/serve/complete cycle never
	// allocates. free is a preallocated stack of idle slot indices
	// (lowest on top), so slot assignment is deterministic.
	tracks []string
	job    []Job
	begin  []Time
	fire   []func()
	free   []int

	// batchFires is scratch for SubmitBatch: the completion closures of
	// the jobs a burst admits straight into service, handed to the
	// engine's batch scheduling path in one call.
	batchFires []func()
}

// NewServer creates a FIFO server with the given number of service
// slots.
func NewServer(eng *Engine, name string, slots int) *Server {
	return NewServerDisc(eng, name, slots, NewFIFO())
}

// NewServerDisc creates a server whose waiting jobs are ordered by the
// given discipline.
func NewServerDisc(eng *Engine, name string, slots int, d Discipline) *Server {
	if slots <= 0 {
		panic(fmt.Sprintf("sim: server %q needs at least one slot", name))
	}
	if d == nil {
		d = NewFIFO()
	}
	s := &Server{eng: eng, name: name, slots: slots, disc: d}
	s.tracks = make([]string, slots)
	s.job = make([]Job, slots)
	s.begin = make([]Time, slots)
	s.fire = make([]func(), slots)
	s.free = make([]int, slots)
	for i := 0; i < slots; i++ {
		if slots == 1 {
			s.tracks[i] = name
		} else {
			s.tracks[i] = fmt.Sprintf("%s/%d", name, i)
		}
		i := i
		s.fire[i] = func() { s.complete(i) }
		s.free[i] = slots - 1 - i
	}
	return s
}

// Name reports the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Slots reports the number of service slots.
func (s *Server) Slots() int { return s.slots }

// QueueLen reports the number of jobs waiting (not in service).
func (s *Server) QueueLen() int { return s.disc.Len() }

// Busy reports the number of slots currently serving a job.
func (s *Server) Busy() int { return s.busy }

// Discipline reports the server's service discipline.
func (s *Server) Discipline() Discipline { return s.disc }

// Submit enqueues a class-0 job that needs the given service time and
// calls done on completion. Service begins immediately if a slot is
// free.
func (s *Server) Submit(service Duration, done func()) {
	s.SubmitClass(0, service, done)
}

// SubmitClass enqueues a job under a tenant class (the key priority and
// weighted-fair disciplines schedule by; FIFO ignores it).
func (s *Server) SubmitClass(class int, service Duration, done func()) {
	s.SubmitKeyed(class, 0, service, done)
}

// SubmitKeyed enqueues a job under a tenant class with a per-job
// scheduling key (what the Keyed EDF/SRS disciplines order by;
// class-based disciplines ignore it). SubmitClass is SubmitKeyed with
// key 0.
func (s *Server) SubmitKeyed(class int, key int64, service Duration, done func()) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", service))
	}
	j := Job{Class: class, Key: key, Service: service, done: done, enqueued: s.eng.Now(), seq: s.seq}
	s.seq++
	if s.busy < s.slots {
		s.start(j)
		return
	}
	s.disc.Push(j)
	if n := s.disc.Len(); n > s.MaxQueue {
		s.MaxQueue = n
	}
	s.sampleQueue()
}

// SubmitKeyedHold enqueues a job like SubmitKeyed, but when the job
// completes its slot is NOT freed: done receives a Hold representing the
// still-occupied slot, and the caller decides when the slot's tenancy
// ends — either Resume (a follow-on service segment on the same slot,
// skipping the queue) or Release. This models a resident context: a
// fused DRX program that runs its first half, stays loaded while the
// intermediate result is consumed elsewhere, and finishes its second
// half without re-arbitrating for the unit. The gap between the two
// segments occupies the slot but accrues no BusyTime (the unit is
// resident, not executing).
func (s *Server) SubmitKeyedHold(class int, key int64, service Duration, done func(*Hold)) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", service))
	}
	j := Job{Class: class, Key: key, Service: service, holdDone: done, enqueued: s.eng.Now(), seq: s.seq}
	s.seq++
	if s.busy < s.slots {
		s.start(j)
		return
	}
	s.disc.Push(j)
	if n := s.disc.Len(); n > s.MaxQueue {
		s.MaxQueue = n
	}
	s.sampleQueue()
}

// Hold is a service slot retained past job completion by
// SubmitKeyedHold. Exactly one of Resume or Release must eventually be
// called, or the slot leaks (and a single-slot server deadlocks).
type Hold struct {
	s    *Server
	slot int
	live bool
}

// Resume schedules a follow-on service segment on the held slot,
// bypassing the queue (the slot never became free). The segment
// completes like any job: it accrues BusyTime, emits a service span, and
// then frees the slot normally. A Hold can be resumed once.
func (h *Hold) Resume(service Duration, done func()) {
	if !h.live {
		panic("sim: Resume on a spent hold")
	}
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", service))
	}
	h.live = false
	s := h.s
	j := Job{Service: service, done: done, enqueued: s.eng.Now(), seq: s.seq}
	s.seq++
	s.job[h.slot] = j
	s.begin[h.slot] = s.eng.Now()
	s.eng.Schedule(service, s.fire[h.slot])
}

// Release frees the held slot without further service, pulling the next
// queued job into service as a normal completion would.
func (h *Hold) Release() {
	if !h.live {
		panic("sim: Release on a spent hold")
	}
	h.live = false
	s := h.s
	s.busy--
	s.free = append(s.free, h.slot)
	if next, ok := s.disc.Pop(); ok {
		s.sampleQueue()
		s.start(next)
	}
}

// SubmitBatch enqueues one job per callback in dones, all under one
// tenant class with one service time: the completion-storm shape a
// batched admission produces (a coalesced request batch dispatched to a
// station at one instant). It is exactly equivalent to calling
// SubmitClass once per callback in slice order, but the jobs that find
// free slots have their completion timers scheduled through the
// engine's batch path — one queue walk for the whole burst, and since
// the timers share one firing time and consecutive seqs, the firing
// order is the slice order. Jobs beyond the free slots wait under the
// discipline as usual. dones may be reused by the caller after return.
func (s *Server) SubmitBatch(class int, service Duration, dones []func()) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", service))
	}
	now := s.eng.Now()
	fires := s.batchFires[:0]
	for _, done := range dones {
		j := Job{Class: class, Service: service, done: done, enqueued: now, seq: s.seq}
		s.seq++
		if s.busy < s.slots {
			// Admit without scheduling yet; the timers go out as one
			// batch below. Slot assignment matches start(): lowest free
			// slot first.
			s.busy++
			slot := s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			s.job[slot] = j
			s.begin[slot] = now
			fires = append(fires, s.fire[slot])
			continue
		}
		s.disc.Push(j)
		if n := s.disc.Len(); n > s.MaxQueue {
			s.MaxQueue = n
		}
		s.sampleQueue()
	}
	s.eng.ScheduleBatch(service, fires)
	for i := range fires {
		fires[i] = nil
	}
	s.batchFires = fires[:0]
}

// sampleQueue emits the queue-depth counter series (one sample per
// transition). The nil-recorder path is a single branch.
func (s *Server) sampleQueue() {
	s.eng.Obs.Counter(obs.Time(s.eng.Now()), s.name, "queue", float64(s.disc.Len()))
}

func (s *Server) start(j Job) {
	s.busy++
	s.WaitTime += s.eng.Now().Sub(j.enqueued)
	slot := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.job[slot] = j
	s.begin[slot] = s.eng.Now()
	s.eng.Schedule(j.Service, s.fire[slot])
}

// complete retires slot's in-service job: free the slot, pull the next
// queued job into service, then run the completion callback.
func (s *Server) complete(slot int) {
	j := s.job[slot]
	s.job[slot] = Job{} // release the done closure
	s.Jobs++
	s.BusyTime += j.Service
	// Occupancy span: one job in service on this slot's track.
	// The nil-recorder path is a single branch (no allocation).
	s.eng.Obs.Span(obs.Time(s.begin[slot]), obs.Duration(j.Service),
		obs.TypeService, obs.PhaseNone, 0, s.tracks[slot], "", s.name, 0)
	if j.holdDone != nil {
		// The job asked to retain its slot: hand the caller the tenancy
		// instead of freeing it. No queue pop — the slot is still busy.
		j.holdDone(&Hold{s: s, slot: slot, live: true})
		return
	}
	s.busy--
	s.free = append(s.free, slot)
	// Release the slot before the callback so that work triggered by
	// the completion can enter service at the same instant.
	if next, ok := s.disc.Pop(); ok {
		s.sampleQueue()
		s.start(next)
	}
	if j.done != nil {
		j.done()
	}
}
