package sim

import (
	"fmt"

	"dmx/internal/obs"
)

// Server models a FIFO service station with a fixed number of identical
// slots: a pool of CPU cores executing restructuring jobs, a DRX
// processing unit, an accelerator's execution engine. Jobs carry a
// precomputed service time; if all slots are busy the job waits in
// arrival order.
type Server struct {
	eng   *Engine
	name  string
	slots int
	busy  int
	queue []serverJob

	// Jobs counts completed jobs; BusyTime integrates slot-seconds of
	// service; WaitTime integrates queueing delay across jobs.
	Jobs     int64
	BusyTime Duration
	WaitTime Duration

	// tracks holds one trace-track name per slot so that concurrent jobs
	// on a multi-slot server never overlap on a single track; free is a
	// preallocated stack of idle slot indices (lowest on top), so slot
	// assignment is deterministic and allocation-free.
	tracks []string
	free   []int
}

type serverJob struct {
	service  Duration
	done     func()
	enqueued Time
}

// NewServer creates a server with the given number of service slots.
func NewServer(eng *Engine, name string, slots int) *Server {
	if slots <= 0 {
		panic(fmt.Sprintf("sim: server %q needs at least one slot", name))
	}
	s := &Server{eng: eng, name: name, slots: slots}
	s.tracks = make([]string, slots)
	s.free = make([]int, slots)
	for i := 0; i < slots; i++ {
		if slots == 1 {
			s.tracks[i] = name
		} else {
			s.tracks[i] = fmt.Sprintf("%s/%d", name, i)
		}
		s.free[i] = slots - 1 - i
	}
	return s
}

// Name reports the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Slots reports the number of service slots.
func (s *Server) Slots() int { return s.slots }

// QueueLen reports the number of jobs waiting (not in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// Busy reports the number of slots currently serving a job.
func (s *Server) Busy() int { return s.busy }

// Submit enqueues a job that needs the given service time and calls done
// on completion. Service begins immediately if a slot is free.
func (s *Server) Submit(service Duration, done func()) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", service))
	}
	j := serverJob{service: service, done: done, enqueued: s.eng.Now()}
	if s.busy < s.slots {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
}

func (s *Server) start(j serverJob) {
	s.busy++
	s.WaitTime += s.eng.Now().Sub(j.enqueued)
	slot := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	begin := s.eng.Now()
	s.eng.Schedule(j.service, func() {
		s.busy--
		s.Jobs++
		s.BusyTime += j.service
		s.free = append(s.free, slot)
		// Occupancy span: one job in service on this slot's track.
		// The nil-recorder path is a single branch (no allocation).
		s.eng.Obs.Span(obs.Time(begin), obs.Duration(j.service),
			obs.TypeService, obs.PhaseNone, 0, s.tracks[slot], "", s.name, 0)
		// Release the slot before the callback so that work triggered by
		// the completion can enter service at the same instant.
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}
