package sim

import "fmt"

// Server models a FIFO service station with a fixed number of identical
// slots: a pool of CPU cores executing restructuring jobs, a DRX
// processing unit, an accelerator's execution engine. Jobs carry a
// precomputed service time; if all slots are busy the job waits in
// arrival order.
type Server struct {
	eng   *Engine
	name  string
	slots int
	busy  int
	queue []serverJob

	// Jobs counts completed jobs; BusyTime integrates slot-seconds of
	// service; WaitTime integrates queueing delay across jobs.
	Jobs     int64
	BusyTime Duration
	WaitTime Duration
}

type serverJob struct {
	service  Duration
	done     func()
	enqueued Time
}

// NewServer creates a server with the given number of service slots.
func NewServer(eng *Engine, name string, slots int) *Server {
	if slots <= 0 {
		panic(fmt.Sprintf("sim: server %q needs at least one slot", name))
	}
	return &Server{eng: eng, name: name, slots: slots}
}

// Name reports the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Slots reports the number of service slots.
func (s *Server) Slots() int { return s.slots }

// QueueLen reports the number of jobs waiting (not in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// Busy reports the number of slots currently serving a job.
func (s *Server) Busy() int { return s.busy }

// Submit enqueues a job that needs the given service time and calls done
// on completion. Service begins immediately if a slot is free.
func (s *Server) Submit(service Duration, done func()) {
	if service < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", service))
	}
	j := serverJob{service: service, done: done, enqueued: s.eng.Now()}
	if s.busy < s.slots {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
}

func (s *Server) start(j serverJob) {
	s.busy++
	s.WaitTime += s.eng.Now().Sub(j.enqueued)
	s.eng.Schedule(j.service, func() {
		s.busy--
		s.Jobs++
		s.BusyTime += j.service
		// Release the slot before the callback so that work triggered by
		// the completion can enter service at the same instant.
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		}
		if j.done != nil {
			j.done()
		}
	})
}
