package sim

import (
	"fmt"

	"dmx/internal/obs"
)

// Conservative-parallel sharded execution.
//
// A ShardGroup partitions one simulation across K lane engines that run
// concurrently inside lookahead-bounded time windows. The model places
// each component on a lane (host h on lane 1+h%(K-1), cross-host glue
// on lane 0 is the cluster convention) and crosses lanes only through
// Engine.Send with delay ≥ the group's lookahead — the classic
// conservative-DES condition: a window [T0, T0+L) can run every lane to
// completion in isolation, because any cross-lane message created
// inside it arrives at T0+L or later.
//
// The contract is byte-identity: traces, reports, and metrics are
// identical at any lane count, including K=1 ≡ the plain Engine. The
// mechanism is a canonical global ordinal carried in event.seq. A plain
// engine's seq is its allocation counter, and the queue fires same-time
// events in seq order — so "the order a single engine would realize" is
// exactly "creation order, restricted to each timestamp". A group
// reproduces that order without serializing execution:
//
//   - Setup (before Run): single-threaded; ordinals come straight off
//     the group counter in call order.
//   - Inside a window: a creation gets a provisional key ordRaw|i (i =
//     the lane's creation-log index) and a log entry recording its
//     firing time, its creating event's key, and its scheduled time.
//   - At the window barrier: creations from all lanes are materialized
//     in the order (schedTime, parentFireTime, parentOrd, logIdx) — the
//     single-engine creation order restricted to each schedTime (two
//     creations at one timestamp fire in the order their parents fired,
//     parents fire in (time, ordinal) order, and calls within one
//     callback keep call order). Each gets the next group ordinal;
//     pending events are renumbered in place (which preserves queue
//     sort order: provisional keys already sort same-lane creations at
//     one timestamp correctly, and all pre-window ordinals are smaller
//     than any ordinal this barrier assigns).
//
// Cross-lane ties in that materialization order are impossible: equal
// (parentFireTime, parentOrd) means the same parent event, and a parent
// fires on exactly one lane. Parent resolution at the barrier always
// terminates, because a parent's materialization key is strictly
// smaller than any of its children's.
type ShardGroup struct {
	lanes     []*Engine
	lookahead Duration
	mode      groupMode
	ordC      uint64 // next materialized global ordinal (0 = "no parent")

	// Windowed-run scratch (window.go).
	masters  []*obs.Recorder // each lane's real sink, swapped out per run
	laneRec  []*obs.Recorder // per-lane capture recorders
	flowMaps []map[uint64]uint64
	heap     []mergeItem // materialization heap scratch
	kidHead  [][]int32   // per-lane child-list heads (raw-parent entries)
	kidNext  [][]int32   // per-lane child-list links
	cursors  []int       // per-lane elog merge cursors
	start    []chan Time // per-lane worker dispatch
	done     chan struct{}
}

type groupMode uint8

const (
	// gmSeq is the sequential fallback: one plain engine behind the
	// group API, running literally the classic single-threaded code
	// path (the engine's grp pointer stays nil).
	gmSeq groupMode = iota
	// gmSetup is a parallel group outside windowed execution:
	// single-threaded, ordinals materialize immediately in call order.
	gmSetup
	// gmWindow is a parallel group inside a window: lanes run
	// concurrently, creations take provisional keys.
	gmWindow
)

// ordRaw marks a provisional in-window ordering key; the low bits hold
// the lane-local creation-log index. Raw keys sort after every
// materialized ordinal, which is also the correct canonical order
// (in-window creations come after everything created earlier).
const ordRaw = uint64(1) << 63

// crec records one event creation inside a window, in creation-call
// order. The barrier materializes its canonical ordinal into ord and
// renumbers the pending event (skipped when the event already fired or
// was canceled — the ordinal is still consumed, exactly as a single
// engine would have consumed a seq for it).
type crec struct {
	ev     *event // pending event to renumber (nil for cross-lane sends)
	gen    uint64 // ev.gen at creation; mismatch ⇒ fired/canceled
	at     Time   // scheduled firing time
	pAt    Time   // creating event's firing time
	parent uint64 // creating event's key (provisional or materialized)
	ord    uint64 // materialized ordinal, filled by the barrier
}

// erec fences the trace events one firing emitted into the lane's
// capture recorder: [lo, hi) in the recorder's stream, tagged with the
// firing's time and key so the barrier can replay all lanes' emissions
// in canonical firing order.
type erec struct {
	at     Time
	ord    uint64
	lo, hi int
}

// crossMsg is a buffered cross-lane send: deliver fn on lane `lane` at
// absolute time at, under the ordinal materialized for creation-log
// entry ci of the sending lane.
type crossMsg struct {
	lane int
	at   Time
	ci   int
	fn   func()
}

// mergeItem is one ready creation in the barrier's materialization
// heap, its parent key already resolved to a materialized ordinal.
type mergeItem struct {
	at, pAt Time
	parent  uint64
	lane    int
	idx     int32
}

// before is the canonical materialization order. Cross-lane ties are
// impossible before idx (equal (pAt, parent) ⇒ same parent ⇒ same
// lane), so idx is a pure same-lane call-order tiebreak.
func (a mergeItem) before(b mergeItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pAt != b.pAt {
		return a.pAt < b.pAt
	}
	if a.parent != b.parent {
		return a.parent < b.parent
	}
	return a.idx < b.idx
}

// NewShardGroup builds a group of `lanes` engines with the given
// lookahead (the minimum cross-lane send delay). lanes ≤ 1 or a
// non-positive lookahead yields the sequential fallback: one plain
// engine behind the same API — Engine(i) returns it for every i and
// Run is the classic single-threaded loop, byte-identical to using an
// Engine directly.
func NewShardGroup(lanes int, lookahead Duration) *ShardGroup {
	if lanes <= 1 || lookahead <= 0 {
		return &ShardGroup{lanes: []*Engine{NewEngine()}, lookahead: lookahead, mode: gmSeq}
	}
	g := &ShardGroup{lookahead: lookahead, mode: gmSetup, ordC: 1}
	g.lanes = make([]*Engine, lanes)
	for i := range g.lanes {
		e := NewEngine()
		e.grp = g
		e.lane = i
		g.lanes[i] = e
	}
	return g
}

// Lanes reports the number of lane engines (1 for the sequential
// fallback regardless of the requested shard count).
func (g *ShardGroup) Lanes() int { return len(g.lanes) }

// Lookahead reports the group's minimum cross-lane send delay.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// Engine returns lane i's engine. The sequential fallback returns its
// single engine for every i, which is what lets model code compute a
// lane assignment once and stay shard-count-agnostic.
func (g *ShardGroup) Engine(i int) *Engine {
	if g.mode == gmSeq {
		return g.lanes[0]
	}
	return g.lanes[i]
}

// Now reports the group's clock: the latest lane clock, i.e. the time
// of the last event fired anywhere in the group. On a drained group
// this is the simulation makespan, matching Engine.Now after Run.
func (g *ShardGroup) Now() Time {
	t := g.lanes[0].Now()
	for _, e := range g.lanes[1:] {
		if n := e.Now(); n > t {
			t = n
		}
	}
	return t
}

// Fired sums executed events across lanes.
func (g *ShardGroup) Fired() uint64 {
	var n uint64
	for _, e := range g.lanes {
		n += e.Fired()
	}
	return n
}

// Pending sums live scheduled events across lanes.
func (g *ShardGroup) Pending() int {
	n := 0
	for _, e := range g.lanes {
		n += e.Pending()
	}
	return n
}

// Send arranges for fn to run on engine `to` after delay, measured on
// e's clock. On the same engine (which includes every Send in a
// sequential-fallback group) it is exactly Schedule. Across lanes of a
// parallel group, delay must be at least the group's lookahead; the
// send is buffered and delivered at the window barrier under its
// canonical ordinal, so the receiving lane sees it before any window
// that could fire it. Send is how models cross lanes — scheduling
// directly on another lane's engine from inside a window is a data
// race by construction.
func (e *Engine) Send(to *Engine, delay Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	if to == e {
		e.At(e.now.Add(delay), fn)
		return
	}
	g := e.grp
	if g == nil || to.grp != g {
		panic("sim: Send between engines of different groups")
	}
	t := e.now.Add(delay)
	if g.mode != gmWindow {
		// Setup is single-threaded: deliver directly; the target's At
		// draws a materialized ordinal in call order. Lane clocks are
		// aligned outside windows only at time zero, so anchor the
		// target explicitly if the sender's clock ran ahead.
		if t < to.now {
			panic(fmt.Sprintf("sim: cross-lane send into the past (%v < %v)", t, to.now))
		}
		ord := g.ordC
		g.ordC++
		to.inject(t, ord, fn)
		return
	}
	if delay < g.lookahead {
		panic(fmt.Sprintf("sim: cross-lane send delay %v below group lookahead %v", delay, g.lookahead))
	}
	e.clog = append(e.clog, crec{at: t, pAt: e.now, parent: e.curOrd})
	e.cross = append(e.cross, crossMsg{lane: to.lane, at: t, ci: len(e.clog) - 1, fn: fn})
}
