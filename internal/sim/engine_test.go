package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*Nanosecond, func() { got = append(got, 3) })
	e.Schedule(10*Nanosecond, func() { got = append(got, 1) })
	e.Schedule(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*Nanosecond) {
		t.Errorf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(Nanosecond, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if e.Fired() != 0 {
		t.Errorf("Fired = %d, want 0", e.Fired())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var depth int
	var schedule func()
	schedule = func() {
		depth++
		if depth < 5 {
			e.Schedule(Nanosecond, schedule)
		}
	}
	e.Schedule(0, schedule)
	e.Run()
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if e.Now() != Time(4*Nanosecond) {
		t.Errorf("Now = %v, want 4ns", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(10*Nanosecond, func() { fired = append(fired, 1) })
	e.Schedule(20*Nanosecond, func() { fired = append(fired, 2) })
	e.RunUntil(Time(15 * Nanosecond))
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if e.Now() != Time(15*Nanosecond) {
		t.Errorf("Now = %v, want 15ns", e.Now())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want both events", fired)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEnginePastSchedulePanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("no panic scheduling into the past")
		}
	}()
	e.At(Time(5*Nanosecond), func() {})
}

// Property: regardless of insertion order, events fire in nondecreasing
// time order and the clock never moves backwards.
func TestEngineMonotonicClockProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		var last Time
		ok := true
		for i := 0; i < count; i++ {
			e.Schedule(Duration(rng.Int63n(1000))*Nanosecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Fired() == uint64(count)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: two engines fed the same schedule produce identical firing
// sequences (determinism).
func TestEngineDeterminismProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		count := int(n%50) + 1
		run := func() []Time {
			rng := rand.New(rand.NewSource(seed))
			e := NewEngine()
			var trace []Time
			for i := 0; i < count; i++ {
				e.Schedule(Duration(rng.Int63n(500))*Nanosecond, func() {
					trace = append(trace, e.Now())
				})
			}
			e.Run()
			return trace
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000000s"},
		{-Nanosecond, "-1.000ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestCycles(t *testing.T) {
	// 1000 cycles at 1 GHz is 1 us.
	if got := Cycles(1000, 1e9); got != Microsecond {
		t.Errorf("Cycles(1000, 1GHz) = %v, want 1us", got)
	}
	// 250 cycles at 250 MHz is 1 us.
	if got := Cycles(250, 250e6); got != Microsecond {
		t.Errorf("Cycles(250, 250MHz) = %v, want 1us", got)
	}
}

func TestBytesAt(t *testing.T) {
	// 25 GB moved at 25 GB/s takes one second.
	if got := BytesAt(25e9, 25e9); got != Second {
		t.Errorf("BytesAt = %v, want 1s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero rate")
		}
	}()
	BytesAt(1, 0)
}
