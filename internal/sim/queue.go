package sim

// This file implements the engine's pending-event set as a ladder queue
// (Tang & Goh's calendar-queue variant): tiered time buckets with a
// sorted bottom rung, spilled and refined lazily as the clock advances.
//
// Shape:
//
//	bottom  — the span currently being consumed, sorted ascending by
//	          (at, seq) and popped from a moving head index.
//	rungs   — rung 0 is the widest tier; each deeper rung subdivides
//	          one over-full bucket spilled from its parent. Buckets are
//	          unsorted: order is imposed only when a bucket is small
//	          enough to become the bottom.
//	top     — unsorted overflow for events at or beyond the ladder's
//	          horizon (topStart). When every rung drains, top seeds the
//	          next epoch: a fresh rung 0 sized so buckets hold ~1 event.
//
// Schedule appends to top or a bucket in O(1) (amortized: each event is
// touched a constant number of times on its way down the tiers, and
// sorting only ever happens on threshold-bounded buckets). Cancel
// removes the event from its tier immediately — a swap-remove in the
// unsorted tiers, a shift in the small sorted bottom — so no tombstones
// are ever re-popped and Pending can count live events exactly.
//
// Determinism: every event is ordered by the unique key (at, seq), so
// bucket sort order — and therefore firing order — is a total order
// identical to the reference heap's. The differential fuzz test
// (engine_diff_test.go) drives this structure and a container/heap
// reference side by side to enforce that equivalence.

const (
	// spillThreshold is the largest bucket sorted directly into the
	// bottom rung; bigger buckets spawn a refinement rung instead.
	spillThreshold = 48
	// maxRungs bounds refinement depth. At the cap, over-full buckets
	// are sorted whole rather than subdivided further.
	maxRungs = 8
	// maxBuckets bounds one rung's bucket count (and so its memory),
	// whatever the event population.
	maxBuckets = 1 << 16
	// bottomSpillMax bounds the sorted bottom's live span. Inserts into
	// bottom shift O(len) elements, which is fine at spill sizes but
	// degenerates when the clock is frozen while events churn below
	// every rung threshold (mass timer setup before the first Step):
	// bottom would grow without bound and every insert would pay a
	// longer shift. Past this size the live span is re-laddered into a
	// fresh rung and inserts go back to O(1) appends.
	bottomSpillMax = 4 * spillThreshold
)

// Event location tags. loc tells Cancel which tier an event sits in so
// the purge is O(1) (plus a short shift in the sorted bottom).
const (
	locNone   int8 = iota // popped, firing, or on the free list
	locBottom             // in ladder.bottom at index pos
	locTop                // in ladder.top at index pos
	locRung               // in ladder.rungs[rungIdx].buckets[bucket] at pos
)

// rung is one ladder tier: a run of equal-width time buckets consumed
// left to right from cur.
type rung struct {
	width   Duration   // time width of one bucket (≥ 1 ps)
	start   Time       // start of buckets[0]
	cur     int        // lowest bucket not yet spilled
	count   int        // live events across all buckets
	buckets [][]*event // unsorted; slices keep capacity across epochs
}

// threshold is the earliest time an event may still be inserted into
// this rung: the start of its current (unspilled) bucket. It is only
// meaningful while the rung is undrained — callers must check drained()
// first, because a drained rung's threshold equals its end, and a
// timestamp in the gap between that end and a shallower rung's
// threshold would be clamped into a bucket behind cur, where refill
// can never reach it (it would run off the end of buckets instead).
func (r *rung) threshold() Time {
	return r.start.Add(Duration(r.cur) * r.width)
}

// drained reports whether every bucket of the rung has been spilled.
// A drained rung accepts no inserts: it stays in the ladder only until
// the next refill drops it.
func (r *rung) drained() bool {
	return r.cur >= len(r.buckets)
}

// ladder is the tiered event queue. The zero value is empty and ready:
// topStart zero routes the first events into top, and the first pop
// seeds the ladder from there.
type ladder struct {
	n int // live events across all tiers

	bottom []*event // sorted ascending by (at, seq)
	bhead  int      // consumption head within bottom

	rungs []rung

	top      []*event // unsorted far-future overflow
	topMin   Time     // conservative bounds over top (stale-high/low
	topMax   Time     // after cancels, which only widens the next rung)
	topStart Time     // events at ≥ topStart go to top
}

// insert files one event into the tier its timestamp selects.
func (q *ladder) insert(ev *event) {
	ts := ev.at
	// Empty-queue fast path: park the event directly in bottom and move
	// the horizon just past it, skipping the top/seed round-trip. This
	// is the drained-engine regime (one timer in flight at a time) and
	// the first event of every run.
	if q.n == 0 && len(q.rungs) == 0 {
		q.n = 1
		q.bottom = append(q.bottom[:0], ev)
		q.bhead = 0
		ev.loc = locBottom
		ev.pos = 0
		q.topStart = ts.Add(1)
		return
	}
	q.n++
	if ts >= q.topStart {
		if len(q.top) == 0 {
			q.topMin, q.topMax = ts, ts
		} else if ts < q.topMin {
			q.topMin = ts
		} else if ts > q.topMax {
			q.topMax = ts
		}
		ev.loc = locTop
		ev.pos = int32(len(q.top))
		q.top = append(q.top, ev)
		return
	}
	for i := range q.rungs {
		r := &q.rungs[i]
		if !r.drained() && ts >= r.threshold() {
			q.insertRung(ev, i)
			return
		}
	}
	q.insertBottom(ev)
}

// insertBatch files a block of events that share one timestamp and
// carry consecutive seqs. The destination tier is resolved once for the
// whole block; within a tier the block lands contiguously, which is
// exactly the order a Schedule-per-event loop would have produced.
func (q *ladder) insertBatch(evs []*event) {
	if len(evs) == 0 {
		return
	}
	ts := evs[0].at
	q.n += len(evs)
	if ts >= q.topStart {
		if len(q.top) == 0 {
			q.topMin, q.topMax = ts, ts
		} else if ts < q.topMin {
			q.topMin = ts
		} else if ts > q.topMax {
			q.topMax = ts
		}
		for _, ev := range evs {
			ev.loc = locTop
			ev.pos = int32(len(q.top))
			q.top = append(q.top, ev)
		}
		return
	}
	for i := range q.rungs {
		r := &q.rungs[i]
		if !r.drained() && ts >= r.threshold() {
			q.insertRungBatch(evs, i)
			return
		}
	}
	if q.reladderBottom() && ts >= q.rungs[len(q.rungs)-1].threshold() {
		q.insertRungBatch(evs, len(q.rungs)-1)
		return
	}
	// Sorted block insert into the live span of bottom: one shift, one
	// position fix-up for the whole batch.
	lo := q.bottomSearch(ts, evs[0].seq)
	q.bottom = append(q.bottom, evs...) // grow; contents fixed below
	copy(q.bottom[lo+len(evs):], q.bottom[lo:])
	copy(q.bottom[lo:], evs)
	for j := lo; j < len(q.bottom); j++ {
		q.bottom[j].loc = locBottom
		q.bottom[j].pos = int32(j)
	}
}

// bucketIndex maps a timestamp to a bucket of r, clamping to the last
// bucket so conservative rung bounds can never index out of range.
func (r *rung) bucketIndex(ts Time) int {
	b := int(ts.Sub(r.start) / r.width)
	if b >= len(r.buckets) {
		b = len(r.buckets) - 1
	}
	return b
}

func (q *ladder) insertRung(ev *event, i int) {
	r := &q.rungs[i]
	b := r.bucketIndex(ev.at)
	ev.loc = locRung
	ev.rungIdx = int16(i)
	ev.bucket = int32(b)
	ev.pos = int32(len(r.buckets[b]))
	r.buckets[b] = append(r.buckets[b], ev)
	r.count++
}

// insertRungBatch files a same-timestamp block contiguously into one
// bucket of rung i, preserving the block's seq order.
func (q *ladder) insertRungBatch(evs []*event, i int) {
	r := &q.rungs[i]
	b := r.bucketIndex(evs[0].at)
	bkt := r.buckets[b]
	for _, ev := range evs {
		ev.loc = locRung
		ev.rungIdx = int16(i)
		ev.bucket = int32(b)
		ev.pos = int32(len(bkt))
		bkt = append(bkt, ev)
	}
	r.buckets[b] = bkt
	r.count += len(evs)
}

// reladderBottom pushes bottom's live span into a new deepest rung when
// it has outgrown bottomSpillMax, so inserts below every rung threshold
// stay O(1) even when the clock is not advancing. All bottom times are
// below every existing rung's threshold (that is why they were routed
// here), so the new rung is strictly deeper than the rest of the ladder
// and the consume-deepest-first order is preserved. Reports whether it
// re-laddered; bottom is empty afterwards.
func (q *ladder) reladderBottom() bool {
	live := q.bottom[q.bhead:]
	if len(live) < bottomSpillMax || len(q.rungs) >= maxRungs || sameInstant(live) {
		return false
	}
	span := live[len(live)-1].at.Sub(live[0].at) + 1
	q.pushRung(live, live[0].at, span)
	q.bottom = q.bottom[:0]
	q.bhead = 0
	return true
}

// bottomSearch returns the insertion index in bottom's live span for
// key (at, seq), keeping ascending (at, seq) order.
func (q *ladder) bottomSearch(at Time, seq uint64) int {
	lo, hi := q.bhead, len(q.bottom)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		m := q.bottom[mid]
		if m.at < at || (m.at == at && m.seq < seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (q *ladder) insertBottom(ev *event) {
	if q.reladderBottom() && ev.at >= q.rungs[len(q.rungs)-1].threshold() {
		q.insertRung(ev, len(q.rungs)-1)
		return
	}
	lo := q.bottomSearch(ev.at, ev.seq)
	q.bottom = append(q.bottom, nil)
	copy(q.bottom[lo+1:], q.bottom[lo:])
	q.bottom[lo] = ev
	ev.loc = locBottom
	for j := lo; j < len(q.bottom); j++ {
		q.bottom[j].pos = int32(j)
	}
}

// remove purges a live event from whichever tier holds it. O(1) in the
// unsorted tiers (swap-remove), a short shift in the sorted bottom.
func (q *ladder) remove(ev *event) {
	q.n--
	switch ev.loc {
	case locBottom:
		i := int(ev.pos)
		copy(q.bottom[i:], q.bottom[i+1:])
		last := len(q.bottom) - 1
		q.bottom[last] = nil
		q.bottom = q.bottom[:last]
		for j := i; j < last; j++ {
			q.bottom[j].pos = int32(j)
		}
	case locTop:
		i, last := int(ev.pos), len(q.top)-1
		q.top[i] = q.top[last]
		q.top[i].pos = int32(i)
		q.top[last] = nil
		q.top = q.top[:last]
		// topMin/topMax stay as conservative bounds: a stale bound only
		// widens the next epoch's rung, never misplaces an event.
	case locRung:
		r := &q.rungs[ev.rungIdx]
		bkt := r.buckets[ev.bucket]
		i, last := int(ev.pos), len(bkt)-1
		bkt[i] = bkt[last]
		bkt[i].pos = int32(i)
		bkt[last] = nil
		r.buckets[ev.bucket] = bkt[:last]
		r.count--
	}
	ev.loc = locNone
}

// peek returns the earliest live event without consuming it, refilling
// the bottom rung from the upper tiers as needed. Nil when empty.
func (q *ladder) peek() *event {
	if q.n == 0 {
		return nil
	}
	for q.bhead >= len(q.bottom) {
		q.refill()
	}
	return q.bottom[q.bhead]
}

// pop consumes and returns the earliest live event, or nil when empty.
func (q *ladder) pop() *event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	q.bottom[q.bhead] = nil
	q.bhead++
	q.n--
	ev.loc = locNone
	return ev
}

// refill advances the epoch one step: drop drained rungs, then either
// spill the next bucket of the deepest rung (sorting it into bottom or
// refining it into a deeper rung) or seed a fresh ladder from top.
// Callers loop until bottom is non-empty; each call makes progress.
func (q *ladder) refill() {
	q.bottom = q.bottom[:0]
	q.bhead = 0
	for len(q.rungs) > 0 && q.rungs[len(q.rungs)-1].count == 0 {
		q.rungs = q.rungs[:len(q.rungs)-1]
	}
	if len(q.rungs) == 0 {
		q.seedFromTop()
		return
	}
	pi := len(q.rungs) - 1
	r := &q.rungs[pi]
	for len(r.buckets[r.cur]) == 0 {
		r.cur++
	}
	cur := r.cur
	b := r.buckets[cur]
	bucketStart := r.start.Add(Duration(cur) * r.width)
	r.count -= len(b)
	r.cur++
	if len(b) <= spillThreshold || len(q.rungs) >= maxRungs || r.width <= 1 || sameInstant(b) {
		q.spillToBottom(b)
	} else {
		q.pushRung(b, bucketStart, r.width)
	}
	// Reset the spilled bucket through the index: pushRung may have
	// grown q.rungs, invalidating r.
	q.rungs[pi].buckets[cur] = q.rungs[pi].buckets[cur][:0]
}

// seedFromTop starts a new ladder epoch from the overflow tier: small
// populations sort straight into bottom, larger ones build a rung 0
// sized for about one event per bucket.
func (q *ladder) seedFromTop() {
	if len(q.top) == 0 {
		return
	}
	if len(q.top) <= spillThreshold {
		q.spillToBottom(q.top)
		for i := range q.top {
			q.top[i] = nil
		}
		q.top = q.top[:0]
		q.topStart = q.topMax.Add(1)
		return
	}
	span := q.topMax.Sub(q.topMin) + 1
	q.pushRung(q.top, q.topMin, span)
	for i := range q.top {
		q.top[i] = nil
	}
	q.top = q.top[:0]
	r := &q.rungs[len(q.rungs)-1]
	q.topStart = r.start.Add(Duration(len(r.buckets)) * r.width)
}

// pushRung appends a rung spanning [start, start+span) and distributes
// evs into its buckets, reusing the rung struct and bucket slices left
// from earlier epochs so steady-state operation does not allocate.
func (q *ladder) pushRung(evs []*event, start Time, span Duration) {
	nb := len(evs)
	if nb > maxBuckets {
		nb = maxBuckets
	}
	width := (span + Duration(nb) - 1) / Duration(nb)
	if width < 1 {
		width = 1
	}
	nb = int((span + width - 1) / width)
	if len(q.rungs) < cap(q.rungs) {
		q.rungs = q.rungs[:len(q.rungs)+1]
	} else {
		q.rungs = append(q.rungs, rung{})
	}
	r := &q.rungs[len(q.rungs)-1]
	r.start, r.width, r.cur = start, width, 0
	r.count = len(evs)
	if cap(r.buckets) >= nb {
		r.buckets = r.buckets[:nb]
	} else {
		old := r.buckets[:cap(r.buckets)]
		r.buckets = append(old, make([][]*event, nb-len(old))...)
	}
	ri := int16(len(q.rungs) - 1)
	for _, ev := range evs {
		b := r.bucketIndex(ev.at)
		ev.rungIdx = ri
		ev.bucket = int32(b)
		ev.pos = int32(len(r.buckets[b]))
		ev.loc = locRung
		r.buckets[b] = append(r.buckets[b], ev)
	}
}

// spillToBottom installs evs (copied, then sorted by (at, seq)) as the
// new bottom rung. Callers guarantee bottom is empty.
func (q *ladder) spillToBottom(evs []*event) {
	q.bottom = append(q.bottom[:0], evs...)
	sortEvents(q.bottom)
	for i, ev := range q.bottom {
		ev.loc = locBottom
		ev.pos = int32(i)
	}
	q.bhead = 0
}

// sameInstant reports whether every event in evs shares one timestamp
// (the degenerate bucket no amount of subdividing can split).
func sameInstant(evs []*event) bool {
	for _, ev := range evs[1:] {
		if ev.at != evs[0].at {
			return false
		}
	}
	return true
}

// eventLess is the queue's total order: time, then schedule order. seq
// is unique, so the order is strict and every comparison sort yields
// the same permutation.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// sortEvents sorts in place by (at, seq) without allocating: insertion
// sort for short runs, median-of-three quicksort above that (recursing
// into the smaller side to bound depth).
func sortEvents(s []*event) {
	for len(s) > 24 {
		mid := len(s) / 2
		hi := len(s) - 1
		// Median-of-three pivot moved to s[0].
		if eventLess(s[mid], s[0]) {
			s[mid], s[0] = s[0], s[mid]
		}
		if eventLess(s[hi], s[0]) {
			s[hi], s[0] = s[0], s[hi]
		}
		if eventLess(s[hi], s[mid]) {
			s[hi], s[mid] = s[mid], s[hi]
		}
		s[0], s[mid] = s[mid], s[0]
		pivot := s[0]
		i, j := 1, hi
		for {
			for i <= j && eventLess(s[i], pivot) {
				i++
			}
			for eventLess(pivot, s[j]) {
				j--
			}
			if i >= j {
				break
			}
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
		s[0], s[j] = s[j], s[0]
		if j < len(s)-j-1 {
			sortEvents(s[:j])
			s = s[j+1:]
		} else {
			sortEvents(s[j+1:])
			s = s[:j]
		}
	}
	for i := 1; i < len(s); i++ {
		ev := s[i]
		j := i
		for j > 0 && eventLess(ev, s[j-1]) {
			s[j] = s[j-1]
			j--
		}
		s[j] = ev
	}
}
