package sim

import "testing"

// A fired event's slot is reused by later Schedule calls. A stale
// EventRef held across the fire must not be able to cancel the slot's
// new occupant.
func TestStaleEventRefCancelIsInert(t *testing.T) {
	e := NewEngine()
	var fired []string
	refA := e.Schedule(Nanosecond, func() { fired = append(fired, "A") })
	if !e.Step() {
		t.Fatal("A did not fire")
	}
	// B reuses A's recycled event object.
	e.Schedule(Nanosecond, func() { fired = append(fired, "B") })
	refA.Cancel() // stale: A already fired
	e.Run()
	if len(fired) != 2 || fired[0] != "A" || fired[1] != "B" {
		t.Fatalf("fired = %v, want [A B]", fired)
	}
}

func TestZeroEventRefCancelIsNoop(t *testing.T) {
	var r EventRef
	r.Cancel() // must not panic
	if r.Time() != 0 {
		t.Fatalf("zero ref time = %v", r.Time())
	}
}

func TestEventRefTimeSurvivesRecycle(t *testing.T) {
	e := NewEngine()
	ref := e.Schedule(5*Nanosecond, func() {})
	e.Run()
	e.Schedule(90*Nanosecond, func() {}) // reuses the slot at another time
	if ref.Time() != Time(5*Nanosecond) {
		t.Fatalf("stale ref time = %v, want 5ns", ref.Time())
	}
}

// Canceled-then-discarded events are recycled too; scheduling afterwards
// must reuse them without resurrecting the canceled state.
func TestCanceledEventSlotIsReusable(t *testing.T) {
	e := NewEngine()
	ref := e.Schedule(Nanosecond, func() { t.Fatal("canceled event fired") })
	ref.Cancel()
	e.Run() // discards + recycles
	fired := false
	e.Schedule(Nanosecond, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("recycled slot did not fire its new event")
	}
}

// The steady-state schedule/fire loop must not allocate once the free
// list is warm.
func TestEngineSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	nop := func() {}
	e.Schedule(Nanosecond, nop)
	e.Step()
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(Nanosecond, nop)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule/fire allocates %.1f per op, want 0", avg)
	}
}

// A stale TransferRef.Abort after the transfer completed must not abort
// the recycled slot's new transfer.
func TestStaleTransferRefAbortIsInert(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "c", 1e9)
	doneA := false
	refA := ch.Start(1e6, func() { doneA = true })
	e.Run()
	if !doneA {
		t.Fatal("first transfer did not complete")
	}
	doneB := false
	ch.Start(1e6, func() { doneB = true }) // reuses A's Transfer
	refA.Abort()                           // stale: A already finished
	e.Run()
	if !doneB {
		t.Fatal("stale Abort killed the recycled slot's new transfer")
	}
}

func TestZeroTransferRefAbortIsNoop(t *testing.T) {
	var r TransferRef
	r.Abort() // must not panic
}

// The channel's start/complete/restart loop must be allocation-free in
// steady state (events and transfers both come from free lists).
func TestChannelSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewEngine()
	ch := NewChannel(e, "c", 1e9)
	ch.Start(1e3, nil)
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		ch.Start(1e3, nil)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("channel round allocates %.1f per op, want 0", avg)
	}
}
