package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in picoseconds.
//
// Picosecond resolution lets the models express both sub-nanosecond
// per-byte wire times (a PCIe Gen5 x16 link moves a byte in ~16 ps) and
// multi-second end-to-end runs without accumulating rounding error.
// The int64 range covers about 106 days of virtual time.
type Time int64

// Duration is a span of virtual time, also in picoseconds. Time and
// Duration are kept as distinct types so that a point on the clock cannot
// be accidentally used where a span is required.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromSeconds converts a floating-point number of seconds to a Duration.
func FromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 {
	return float64(d) / float64(Second)
}

// Nanoseconds reports the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 {
	return float64(d) / float64(Nanosecond)
}

// Microseconds reports the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 {
	return float64(d) / float64(Microsecond)
}

// Milliseconds reports the duration as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 {
	return float64(d) / float64(Millisecond)
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as seconds since the start of the simulation.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit for debugging output.
func (t Time) String() string { return Duration(t).String() }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3fns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.6fs", d.Seconds())
	}
}

// Cycles converts a cycle count at the given clock frequency (Hz) to a
// Duration. It is the bridge between cycle-accurate component models (DRX,
// accelerators) and the event clock.
func Cycles(n int64, hz float64) Duration {
	return Duration(math.Round(float64(n) * float64(Second) / hz))
}

// BytesAt returns the time to move n bytes at rate bytesPerSec.
func BytesAt(n int64, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 {
		panic("sim: BytesAt requires a positive rate")
	}
	return Duration(math.Round(float64(n) * float64(Second) / bytesPerSec))
}
