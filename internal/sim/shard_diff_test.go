package sim

import (
	"fmt"
	"testing"

	"dmx/internal/obs"
)

// This file extends the differential harness to the sharded engine:
// the same lane-agnostic workload runs on ShardGroups of several lane
// counts (including the K=1 sequential fallback, which is literally
// the plain Engine), and every observable output — the master trace
// stream byte for byte (timestamps, sequence numbers, flow ids),
// per-host model state, the group clock, drained queues — must be
// identical at every K, with windows executed inline and on worker
// goroutines.

// shardWorkload is one deterministic workload instantiated against a
// given lane count. Hosts are the lane-agnostic unit of placement:
// host h lives on lane 1+h%(K-1) (lane 0 is the "global" lane), so
// any K from 1 to hosts+1 partitions the same model differently.
type shardWorkload struct {
	g         *ShardGroup
	rec       *obs.Recorder
	hosts     int
	lookahead Duration
	state     []uint64     // per-host order-sensitive accumulator
	refs      [][]EventRef // per-host live cancelable handles
}

func newShardWorkload(k, hosts int, lookahead Duration) *shardWorkload {
	s := &shardWorkload{
		g:         NewShardGroup(k, lookahead),
		rec:       obs.New(),
		hosts:     hosts,
		lookahead: lookahead,
		state:     make([]uint64, hosts),
		refs:      make([][]EventRef, hosts),
	}
	for i := 0; i < s.g.Lanes(); i++ {
		s.g.Engine(i).Obs = s.rec
	}
	return s
}

// eng is host h's engine under this workload's partitioning.
func (s *shardWorkload) eng(h int) *Engine {
	if k := s.g.Lanes(); k > 1 {
		return s.g.Engine(1 + h%(k-1))
	}
	return s.g.Engine(0)
}

// fire builds the callback for event id on host h. Behavior is a pure
// function of (h, id, depth): a per-id RNG decides chaining,
// cross-host sends, cancels, reschedules, batches, and flow emission,
// so every lane count replays the identical causal program.
func (s *shardWorkload) fire(h, id, depth int) func() {
	return func() {
		e := s.eng(h)
		rng := benchRNG(uint64(id)*0x9e3779b97f4a7c15 + uint64(h) + 1)
		s.state[h] = s.state[h]*1099511628211 + uint64(id)
		now := e.Now()
		e.Obs.Instant(obs.Time(now), obs.TypeRoute, 0,
			fmt.Sprintf("h%d", h), "", "app", fmt.Sprintf("ev%d", id), int64(id))
		if depth >= 4 {
			return
		}
		r := rng.next()
		if r%3 == 0 {
			// Same-host chain, including zero-delay: the raw-parent
			// genealogy the barrier must materialize.
			d := Duration(rng.next()%uint64(s.lookahead/2)) * (Duration(r>>8) % 2)
			e.Schedule(d, s.fire(h, id*8+1, depth+1))
		}
		if r%5 == 0 {
			// Cross-host send at (lookahead + spread).
			th := int(rng.next() % uint64(s.hosts))
			if th != h {
				d := s.lookahead + Duration(rng.next()%1000)*Nanosecond
				e.Send(s.eng(th), d, s.fire(th, id*8+2, depth+1))
			}
		}
		if r%4 == 0 {
			ref := e.Schedule(Duration(rng.next()%5000)*Nanosecond, s.fire(h, id*8+3, depth+1))
			s.refs[h] = append(s.refs[h], ref)
		}
		if r%7 == 0 && len(s.refs[h]) > 0 {
			s.refs[h][int(rng.next()%uint64(len(s.refs[h])))].Cancel()
		}
		if r%11 == 0 && len(s.refs[h]) > 0 {
			i := int(rng.next() % uint64(len(s.refs[h])))
			s.refs[h][i] = e.Reschedule(s.refs[h][i],
				Duration(rng.next()%3000)*Nanosecond, s.fire(h, id*8+4, depth+1))
		}
		if r%13 == 0 {
			n := int(rng.next()%3) + 2
			fns := make([]func(), n)
			for j := range fns {
				fns[j] = s.fire(h, id*64+16+j, depth+1)
			}
			e.ScheduleBatch(Duration(rng.next()%700)*Nanosecond, fns)
		}
		if r%6 == 0 {
			// A flow hop: begin here, land after a bandwidth-ish delay.
			d := Duration(rng.next()%2000) * Nanosecond
			e.Obs.FlowPair(obs.Time(now), obs.Time(now.Add(d)), obs.TypeP2PDMA,
				fmt.Sprintf("h%d", h), fmt.Sprintf("h%d/sink", h), "app",
				fmt.Sprintf("dma%d", id), int64(id)*64)
		}
	}
}

// seed interprets the byte stream as setup-time scheduling (the fuzz
// surface); all in-window behavior then derives from fire's per-id RNG.
func (s *shardWorkload) seed(data []byte) {
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	id := 1
	for i < len(data) {
		op := next()
		h := int(next()) % s.hosts
		switch op % 5 {
		case 0, 1:
			d := Duration(next())*87*Nanosecond + Duration(next())*Picosecond
			s.eng(h).Schedule(d, s.fire(h, id, 0))
		case 2:
			d := Duration(next()) * 11 * Nanosecond
			s.refs[h] = append(s.refs[h], s.eng(h).Schedule(d, s.fire(h, id, 0)))
		case 3:
			n := int(next()%4) + 1
			fns := make([]func(), n)
			for j := range fns {
				fns[j] = s.fire(h, id*64+j, 0)
			}
			s.eng(h).ScheduleBatch(Duration(next())*13*Nanosecond, fns)
		case 4:
			// Setup-time cross send from the global lane to a host.
			d := Duration(next()) * 29 * Nanosecond
			s.g.Engine(0).Send(s.eng(h), d, s.fire(h, id, 0))
		}
		id++
	}
}

// shardOutcome is everything a workload may observe.
type shardOutcome struct {
	events []obs.Event
	state  []uint64
	now    Time
	fired  uint64
}

func runShardWorkload(t *testing.T, k, hosts int, lookahead Duration, data []byte) shardOutcome {
	t.Helper()
	s := newShardWorkload(k, hosts, lookahead)
	s.seed(data)
	s.g.Run()
	if p := s.g.Pending(); p != 0 {
		t.Fatalf("K=%d: %d events still pending after Run", k, p)
	}
	return shardOutcome{events: s.rec.Events(), state: s.state, now: s.g.Now(), fired: s.g.Fired()}
}

// diffShardOutcomes fails on the first divergence between the
// sequential reference and a sharded run.
func diffShardOutcomes(t *testing.T, k int, ref, got shardOutcome) {
	t.Helper()
	if got.now != ref.now {
		t.Errorf("K=%d: clock %v, sequential %v", k, got.now, ref.now)
	}
	if got.fired != ref.fired {
		t.Errorf("K=%d: fired %d events, sequential %d", k, got.fired, ref.fired)
	}
	for h := range ref.state {
		if got.state[h] != ref.state[h] {
			t.Errorf("K=%d: host %d state %#x, sequential %#x (same-host firing order diverged)",
				k, h, got.state[h], ref.state[h])
		}
	}
	if len(got.events) != len(ref.events) {
		t.Fatalf("K=%d: %d trace events, sequential %d", k, len(got.events), len(ref.events))
	}
	for i := range ref.events {
		if got.events[i] != ref.events[i] {
			t.Fatalf("K=%d: trace event %d diverged:\n sharded:    %+v\n sequential: %+v",
				k, i, got.events[i], ref.events[i])
		}
	}
}

// applyShardOps is the shared driver for the fuzz target and the
// seeded corpus: one byte stream, one sequential reference, sharded
// replays at several lane counts × {inline, worker} window execution.
func applyShardOps(t *testing.T, data []byte) {
	const lookahead = 2 * Microsecond
	hosts := 2
	if len(data) > 0 {
		hosts = int(data[0]%6) + 2
	}
	ref := runShardWorkload(t, 1, hosts, lookahead, data)
	for _, k := range []int{2, 3, hosts + 1} {
		for _, workers := range []bool{false, true} {
			prev := forceParallelWindows
			forceParallelWindows = workers
			got := runShardWorkload(t, k, hosts, lookahead, data)
			forceParallelWindows = prev
			diffShardOutcomes(t, k, ref, got)
		}
	}
}

// FuzzShardedVsSequential drives the sharded engine and the sequential
// fallback side by side; any divergence in trace bytes, per-host state,
// or clocks is a crash. Seeds double as the regression corpus for
// plain `go test`.
func FuzzShardedVsSequential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 50, 0, 1, 100})
	f.Add([]byte{0, 2, 1, 0, 2, 2, 30, 4, 0, 60, 4, 1, 90, 3, 0, 2, 7})
	f.Add([]byte{5, 0, 0, 255, 255, 1, 1, 12, 2, 2, 9, 3, 3, 3, 40, 4, 4, 80})
	f.Add([]byte{1, 4, 2, 200, 4, 0, 0, 4, 1, 0, 2, 0, 1, 2, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("bounded workload size")
		}
		applyShardOps(t, data)
	})
}

// TestShardedVsSequentialRandom gives the sharded differential harness
// broad deterministic coverage in ordinary `go test` runs: long random
// setup streams whose in-window behavior fans out through chains,
// cross-host sends, cancels, reschedules, batches, and flows.
func TestShardedVsSequentialRandom(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := benchRNG(seed * 0xbf58476d1ce4e5b9)
			n := 40 + int(rng.next()%300)
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.next())
			}
			applyShardOps(t, data)
		})
	}
}

// TestShardGroupSequentialFallback pins the fallback contract: one
// lane, or any lane count with zero lookahead, yields a single plain
// engine behind the group API.
func TestShardGroupSequentialFallback(t *testing.T) {
	for _, tc := range []struct {
		k         int
		lookahead Duration
	}{{1, Microsecond}, {0, Microsecond}, {4, 0}, {8, -Microsecond}} {
		g := NewShardGroup(tc.k, tc.lookahead)
		if g.Lanes() != 1 {
			t.Errorf("NewShardGroup(%d, %v).Lanes() = %d, want 1", tc.k, tc.lookahead, g.Lanes())
		}
		e := g.Engine(0)
		if e.grp != nil {
			t.Errorf("NewShardGroup(%d, %v): fallback engine carries group state", tc.k, tc.lookahead)
		}
		if g.Engine(3) != e {
			t.Errorf("NewShardGroup(%d, %v): Engine(i) must alias the single lane for every i", tc.k, tc.lookahead)
		}
		fired := 0
		e.Schedule(Microsecond, func() { fired++ })
		g.Run()
		if fired != 1 || g.Now() != Time(0).Add(Microsecond) {
			t.Errorf("fallback Run: fired=%d now=%v", fired, g.Now())
		}
	}
}

// TestShardGroupSendValidation pins the conservative contract: a
// cross-lane send below the lookahead panics (it could land inside the
// window the lanes are already executing), and sends between unrelated
// engines panic.
func TestShardGroupSendValidation(t *testing.T) {
	g := NewShardGroup(3, Microsecond)
	e1, e2 := g.Engine(1), g.Engine(2)
	e1.Schedule(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-lane send below lookahead did not panic")
			}
		}()
		e1.Send(e2, Microsecond/2, func() {})
	})
	ok := false
	e1.Schedule(0, func() {
		// At exactly the lookahead it must be accepted.
		e1.Send(e2, Microsecond, func() { ok = true })
	})
	g.Run()
	if !ok {
		t.Error("cross-lane send at exactly the lookahead never delivered")
	}

	defer func() {
		if recover() == nil {
			t.Error("send between unrelated engines did not panic")
		}
	}()
	NewEngine().Send(NewEngine(), Microsecond, func() {})
}

// TestShardGroupCrossWindowFlow pins flow-id rebasing across windows: a
// flow that begins in one window and ends many windows later must keep
// one id in the master stream, and ids must match the sequential run.
func TestShardGroupCrossWindowFlow(t *testing.T) {
	const lookahead = Microsecond
	run := func(k int) []obs.Event {
		s := newShardWorkload(k, 2, lookahead)
		e0 := s.eng(0)
		e0.Schedule(0, func() {
			now := obs.Time(e0.Now())
			// End lands 10 windows out.
			e0.Obs.FlowPair(now, now+10*obs.Time(lookahead), obs.TypeP2PDMA,
				"h0", "h1", "app", "long", 4096)
			e0.Obs.FlowPair(now, now+obs.Time(lookahead)/2, obs.TypeP2PDMA,
				"h0", "h0/sink", "app", "short", 128)
		})
		e1 := s.eng(1)
		e1.Schedule(5*lookahead, func() {
			now := obs.Time(e1.Now())
			e1.Obs.FlowPair(now, now+obs.Time(lookahead), obs.TypeP2PDMA,
				"h1", "h0", "app", "mid", 256)
		})
		s.g.Run()
		return s.rec.Events()
	}
	ref := run(1)
	got := run(3)
	if len(ref) != len(got) {
		t.Fatalf("event count: K=3 %d, K=1 %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("event %d diverged:\n K=3: %+v\n K=1: %+v", i, got[i], ref[i])
		}
	}
}
