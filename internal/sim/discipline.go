package sim

// Service disciplines. A Server parks jobs that arrive while every slot
// is busy in a Discipline, which decides the order they enter service.
// The default FIFO preserves the classic arrival-order behavior; the
// priority and weighted round-robin disciplines let a multi-tenant
// system isolate applications sharing one station (a DRX unit, an
// accelerator) without touching the flow logic that submits jobs.
//
// Disciplines are single-goroutine, like the engine that drives them,
// and strictly deterministic: ties always break by submission sequence.

// Job is one unit of service waiting at a Server. Class tags the
// submitting tenant (dmxsys uses the application instance id); the
// unexported fields belong to the Server.
type Job struct {
	// Class is the tenant id the discipline schedules by.
	Class int
	// Key is the per-job scheduling key the Keyed discipline orders by
	// (smaller first): an absolute deadline under EDF, a remaining
	// service estimate under SRS. Class-based disciplines ignore it;
	// SubmitClass leaves it zero.
	Key int64
	// Service is the job's precomputed service time.
	Service  Duration
	done     func()
	holdDone func(*Hold) // non-nil for SubmitKeyedHold jobs: slot stays occupied
	enqueued Time
	seq      uint64
}

// Discipline orders the jobs waiting at a Server. Push parks an
// arriving job; Pop yields the next job to enter service; Len reports
// the backlog. Implementations must be deterministic: for equal
// scheduling keys, jobs leave in Push order.
type Discipline interface {
	// Name identifies the discipline in diagnostics.
	Name() string
	Push(j Job)
	Pop() (Job, bool)
	Len() int
}

// FIFO serves jobs strictly in arrival order. The backing store is a
// power-of-two ring buffer: dequeue releases the head slot immediately
// (no stranded capacity, no done-closure pinned until GC) and the
// steady-state Push/Pop cycle allocates nothing once the ring is warm.
type FIFO struct {
	ring []Job
	head int
	n    int
}

// NewFIFO returns an empty FIFO discipline.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Discipline.
func (q *FIFO) Name() string { return "fifo" }

// Len implements Discipline.
func (q *FIFO) Len() int { return q.n }

// Push implements Discipline.
func (q *FIFO) Push(j Job) {
	if q.n == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = j
	q.n++
}

// Pop implements Discipline. The vacated slot is zeroed so the job's
// done closure is released as soon as it leaves the queue.
func (q *FIFO) Pop() (Job, bool) {
	if q.n == 0 {
		return Job{}, false
	}
	j := q.ring[q.head]
	q.ring[q.head] = Job{}
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.n--
	return j, true
}

// grow doubles the ring (capacity stays a power of two so the index
// mask works), unrolling the wrapped contents into the new store.
func (q *FIFO) grow() {
	size := 2 * len(q.ring)
	if size == 0 {
		size = 8
	}
	ring := make([]Job, size)
	for i := 0; i < q.n; i++ {
		ring[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
	}
	q.ring = ring
	q.head = 0
}

// Priority serves the waiting job with the smallest priority value
// (ties in submission order). A job's priority is looked up from its
// class; classes beyond the configured table get DefaultPriority.
type Priority struct {
	prio []int
	heap []Job // binary min-heap on (priority, seq)
}

// DefaultPriority is the priority of classes absent from the table.
const DefaultPriority = 1 << 20

// NewPriority returns a priority discipline. prio[class] is the class's
// priority (lower = served first); classes outside the slice get
// DefaultPriority. The slice is not copied.
func NewPriority(prio []int) *Priority { return &Priority{prio: prio} }

// Name implements Discipline.
func (q *Priority) Name() string { return "priority" }

// Len implements Discipline.
func (q *Priority) Len() int { return len(q.heap) }

func (q *Priority) classPrio(class int) int {
	if class >= 0 && class < len(q.prio) {
		return q.prio[class]
	}
	return DefaultPriority
}

func (q *Priority) less(i, j int) bool {
	pi, pj := q.classPrio(q.heap[i].Class), q.classPrio(q.heap[j].Class)
	if pi != pj {
		return pi < pj
	}
	return q.heap[i].seq < q.heap[j].seq
}

// Push implements Discipline.
func (q *Priority) Push(j Job) {
	q.heap = append(q.heap, j)
	// Sift up.
	for i := len(q.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// Pop implements Discipline.
func (q *Priority) Pop() (Job, bool) {
	if len(q.heap) == 0 {
		return Job{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = Job{} // release the done closure
	q.heap = q.heap[:last]
	// Sift down.
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(q.heap) && q.less(left, smallest) {
			smallest = left
		}
		if right < len(q.heap) && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
	return top, true
}

// Keyed serves the waiting job with the smallest Job.Key (ties in
// submission order). Unlike Priority, whose key is a static per-class
// table lookup, the key travels with the job, so one discipline covers
// every smallest-key-first policy: earliest-deadline-first when the key
// is the request's absolute deadline, shortest-remaining-service when
// it is the precomputed service demand still ahead of the request.
// Jobs without a meaningful key should carry math.MaxInt64 (EDF's "no
// deadline" convention) so keyed work always overtakes them.
type Keyed struct {
	name string
	heap []Job // binary min-heap on (Key, seq)
}

// NewEDF returns a keyed discipline for earliest-deadline-first
// scheduling: submitters set Job.Key to the request's absolute
// deadline (math.MaxInt64 when none).
func NewEDF() *Keyed { return &Keyed{name: "edf"} }

// NewSRS returns a keyed discipline for shortest-remaining-service
// scheduling: submitters set Job.Key to the service demand still ahead
// of the request.
func NewSRS() *Keyed { return &Keyed{name: "srs"} }

// Name implements Discipline.
func (q *Keyed) Name() string { return q.name }

// Len implements Discipline.
func (q *Keyed) Len() int { return len(q.heap) }

func (q *Keyed) less(i, j int) bool {
	if q.heap[i].Key != q.heap[j].Key {
		return q.heap[i].Key < q.heap[j].Key
	}
	return q.heap[i].seq < q.heap[j].seq
}

// Push implements Discipline.
func (q *Keyed) Push(j Job) {
	q.heap = append(q.heap, j)
	// Sift up.
	for i := len(q.heap) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// Pop implements Discipline.
func (q *Keyed) Pop() (Job, bool) {
	if len(q.heap) == 0 {
		return Job{}, false
	}
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = Job{} // release the done closure
	q.heap = q.heap[:last]
	// Sift down.
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(q.heap) && q.less(left, smallest) {
			smallest = left
		}
		if right < len(q.heap) && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
	return top, true
}

// WRR is weighted-fair round-robin across classes: each class keeps its
// own FIFO sub-queue, active classes are visited in first-activation
// order, and a visit serves up to weight[class] jobs before yielding the
// turn. Classes outside the weight table get weight 1. With equal
// weights this degenerates to per-class round-robin; weights give a
// tenant a proportionally larger share of the station's job slots.
type WRR struct {
	weight []int
	sub    map[int]*FIFO
	order  []int // currently active (non-empty) classes, activation order
	cur    int   // index into order of the class holding the turn
	served int   // jobs served from order[cur] during this turn
	n      int
}

// NewWRR returns a weighted round-robin discipline. weight[class] is
// the class's jobs-per-turn share (values < 1 act as 1); classes
// outside the slice get weight 1. The slice is not copied.
func NewWRR(weight []int) *WRR {
	return &WRR{weight: weight, sub: make(map[int]*FIFO)}
}

// Name implements Discipline.
func (q *WRR) Name() string { return "wrr" }

// Len implements Discipline.
func (q *WRR) Len() int { return q.n }

func (q *WRR) classWeight(class int) int {
	if class >= 0 && class < len(q.weight) && q.weight[class] > 1 {
		return q.weight[class]
	}
	return 1
}

// Push implements Discipline.
func (q *WRR) Push(j Job) {
	s, ok := q.sub[j.Class]
	if !ok {
		s = NewFIFO()
		q.sub[j.Class] = s
	}
	if s.Len() == 0 {
		q.order = append(q.order, j.Class)
	}
	s.Push(j)
	q.n++
}

// Pop implements Discipline.
func (q *WRR) Pop() (Job, bool) {
	if q.n == 0 {
		return Job{}, false
	}
	if q.cur >= len(q.order) {
		q.cur = 0
		q.served = 0
	}
	class := q.order[q.cur]
	j, _ := q.sub[class].Pop()
	q.n--
	q.served++
	if q.sub[class].Len() == 0 {
		// Class drained: drop it from the rotation; the turn passes to
		// the class that slides into this position.
		q.order = append(q.order[:q.cur], q.order[q.cur+1:]...)
		q.served = 0
	} else if q.served >= q.classWeight(class) {
		q.cur++
		q.served = 0
	}
	if q.cur >= len(q.order) {
		q.cur = 0
	}
	return j, true
}
