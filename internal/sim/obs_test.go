package sim

import (
	"testing"

	"dmx/internal/obs"
)

// With tracing disabled (nil recorder) the instrumented channel and
// engine loops must still run allocation-free — the emission paths are
// a single nil check before any work.
func TestDisabledObsKeepsChannelAllocationFree(t *testing.T) {
	e := NewEngine() // Obs stays nil
	ch := NewChannel(e, "c", 1e9)
	ch.Start(1e3, nil)
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		ch.Start(1e3, nil)
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("disabled-tracer channel round allocates %.1f per op, want 0", avg)
	}
}

func TestServerEmitsServiceSpans(t *testing.T) {
	e := NewEngine()
	e.Obs = obs.New()
	srv := NewServer(e, "dev0:fft", 1)
	srv.Submit(3*Microsecond, nil)
	srv.Submit(2*Microsecond, nil) // queues behind the first
	e.Run()
	var spans []obs.Event
	for _, ev := range e.Obs.Events() {
		if ev.Kind == obs.KindSpan && ev.Type == obs.TypeService {
			spans = append(spans, ev)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("%d service spans, want 2", len(spans))
	}
	if spans[0].Track != "dev0:fft" || spans[0].Dur != obs.Duration(3*Microsecond) {
		t.Errorf("first span %+v", spans[0])
	}
	// The second job starts when the first finishes: spans must abut.
	if spans[1].TS != obs.Time(3*Microsecond) {
		t.Errorf("second span begins at %d, want %d", spans[1].TS, 3*Microsecond)
	}
}

// A multi-slot server serves jobs concurrently; its spans land on
// per-slot sub-tracks ("name/0", "name/1", …) so no single trace track
// ever holds overlapping slices.
func TestMultiSlotServerSpansUseDistinctTracks(t *testing.T) {
	e := NewEngine()
	e.Obs = obs.New()
	srv := NewServer(e, "drx", 2)
	srv.Submit(4*Microsecond, nil)
	srv.Submit(4*Microsecond, nil) // concurrent with the first
	srv.Submit(1*Microsecond, nil) // queues; reuses the first freed slot
	e.Run()
	var tracks []string
	for _, ev := range e.Obs.Events() {
		if ev.Kind == obs.KindSpan && ev.Type == obs.TypeService {
			tracks = append(tracks, ev.Track)
			if ev.Name != "drx" {
				t.Errorf("span keeps the server name, got %q", ev.Name)
			}
		}
	}
	want := []string{"drx/0", "drx/1", "drx/0"}
	if len(tracks) != len(want) {
		t.Fatalf("tracks %v, want %v", tracks, want)
	}
	for i := range want {
		if tracks[i] != want[i] {
			t.Fatalf("tracks %v, want %v", tracks, want)
		}
	}
}

func TestChannelEmitsOccupancyCounters(t *testing.T) {
	e := NewEngine()
	e.Obs = obs.New()
	ch := NewChannel(e, "link.up", 1e9)
	ch.Start(1e6, nil)
	ch.Start(1e6, nil)
	e.Run()
	var samples []float64
	for _, ev := range e.Obs.Events() {
		if ev.Kind == obs.KindCounter && ev.Track == "link.up" {
			samples = append(samples, ev.Value)
		}
	}
	// 1 (first start), 2 (second start), 0 (both finish together).
	want := []float64{1, 2, 0}
	if len(samples) != len(want) {
		t.Fatalf("samples %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples %v, want %v", samples, want)
		}
	}
}

// Attaching a recorder must not change virtual timing: the recorder only
// appends, never schedules.
func TestObsDoesNotPerturbEngineTiming(t *testing.T) {
	run := func(rec *obs.Recorder) Time {
		e := NewEngine()
		e.Obs = rec
		ch := NewChannel(e, "c", 1e9)
		srv := NewServer(e, "s", 1)
		for i := 0; i < 8; i++ {
			ch.Start(1e5, func() { srv.Submit(Microsecond, nil) })
		}
		e.Run()
		return e.Now()
	}
	if quiet, traced := run(nil), run(obs.New()); quiet != traced {
		t.Fatalf("recorder changed timing: %v vs %v", quiet, traced)
	}
}
