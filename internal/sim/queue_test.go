package sim

import "testing"

// White-box checks on the ladder's internal shape. The ordering
// contract itself is enforced by the differential harness in
// engine_diff_test.go; these tests pin structural bounds that only
// matter for complexity, not correctness.

// A frozen clock with schedule/cancel churn is the sorted bottom's
// worst case: nothing ever pops, so without re-laddering every insert
// below the rung thresholds would shift an ever-growing array. The
// live span must stay bounded by bottomSpillMax (the re-ladder
// trigger), and the queue must still drain in exact order afterwards.
func TestFrozenClockChurnKeepsBottomBounded(t *testing.T) {
	e := NewEngine()
	rng := benchRNG(0xb0b)
	nop := func() {}
	refs := make([]EventRef, 1024)
	for i := range refs {
		refs[i] = e.Schedule(delayUniform(&rng), nop)
	}
	maxLive := 0
	for i := 0; i < 50000; i++ {
		slot := i % len(refs)
		refs[slot].Cancel()
		refs[slot] = e.Schedule(delayUniform(&rng), nop)
		if live := len(e.lq.bottom) - e.lq.bhead; live > maxLive {
			maxLive = live
		}
	}
	if maxLive > bottomSpillMax {
		t.Fatalf("bottom live span reached %d under frozen-clock churn, want ≤ %d",
			maxLive, bottomSpillMax)
	}
	// With the clock frozen nothing ever pops, so refill/seedFromTop
	// never run: any rung present proves the re-ladder path fired.
	if len(e.lq.rungs) == 0 {
		t.Fatal("churn never re-laddered bottom; the workload is not exercising the bound")
	}
	var last Time
	fired := 0
	e.Schedule(0, nop) // sentinel at now; must not disturb order
	for e.Step() {
		if e.Now() < last {
			t.Fatalf("clock went backwards after re-laddering: %v after %v", e.Now(), last)
		}
		last = e.Now()
		fired++
	}
	if want := 1024 + 1; fired != want { // ring survivors + sentinel
		t.Fatalf("drained %d events, want %d", fired, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

// Same churn through ScheduleBatch: the batch bottom path re-ladders
// too, and batches stay contiguous through it.
func TestFrozenClockBatchChurnKeepsBottomBounded(t *testing.T) {
	e := NewEngine()
	rng := benchRNG(0xbeef)
	maxLive := 0
	var got []int
	id := 0
	for i := 0; i < 4000; i++ {
		fns := make([]func(), 3)
		for j := range fns {
			v := id
			id++
			fns[j] = func() { got = append(got, v) }
		}
		e.ScheduleBatch(delayUniform(&rng), fns)
		if live := len(e.lq.bottom) - e.lq.bhead; live > maxLive {
			maxLive = live
		}
	}
	// A batch may land while bottom is just under the trigger, so allow
	// one batch of slack.
	if maxLive > bottomSpillMax+3 {
		t.Fatalf("bottom live span reached %d under frozen-clock batch churn, want ≤ %d",
			maxLive, bottomSpillMax+3)
	}
	e.Run()
	lastOf := map[int]int{}
	for _, v := range got {
		b, m := v/3, v%3
		if last, ok := lastOf[b]; ok && m != last+1 {
			t.Fatalf("batch %d fired member %d after %d", b, m, last)
		} else if !ok && m != 0 {
			t.Fatalf("batch %d started at member %d", b, m)
		}
		lastOf[b] = m
	}
	if len(got) != id {
		t.Fatalf("fired %d callbacks, want %d", len(got), id)
	}
}
