package sim

import (
	"container/heap"
	"fmt"
	"testing"
)

// This file proves the ladder queue is a drop-in replacement for the
// container/heap event queue it displaced: a reference heap engine
// (refEngine, the pre-ladder implementation with tombstone cancels) and
// the real Engine are driven side by side through random
// schedule/cancel/batch/Step/RunUntil workloads, and every fired event
// must match in (time, seq-order) — i.e. the two queues realize the
// same total order.

// refEvent/refEngine replicate the displaced implementation: a binary
// heap ordered by (at, seq), cancellation via tombstone, lazy purge on
// pop.
type refEvent struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now   Time
	queue refHeap
	seq   uint64
}

func (e *refEngine) schedule(delay Duration, fn func()) *refEvent {
	ev := &refEvent{at: e.now.Add(delay), seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *refEngine) step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*refEvent)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

func (e *refEngine) runUntil(t Time) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *refEngine) run() {
	for e.step() {
	}
}

// diffDriver replays one op stream against both engines and fails on
// the first divergence in firing order, firing time, or clock value.
type diffDriver struct {
	t    *testing.T
	real *Engine
	ref  *refEngine

	// Live cancelable handles, index-aligned across both engines.
	realRefs []EventRef
	refRefs  []*refEvent

	realTrace []diffFire
	refTrace  []diffFire

	nextID int
}

type diffFire struct {
	id int
	at Time
}

func newDiffDriver(t *testing.T) *diffDriver {
	return &diffDriver{t: t, real: NewEngine(), ref: &refEngine{}}
}

// schedule schedules one event on both engines. Fired events with
// chain > 0 reschedule a follow-up from inside their callback, which
// exercises insert-during-fire (including the empty-bottom regimes).
func (d *diffDriver) schedule(delay Duration, chain int, cancelable bool) {
	id := d.nextID
	d.nextID++
	var realFn, refFn func()
	realFn = d.chainFn(&d.realTrace, id, chain, delay, func(dl Duration, fn func()) { d.real.Schedule(dl, fn) }, func() Time { return d.real.Now() }, &realFn)
	refFn = d.chainFn(&d.refTrace, id, chain, delay, func(dl Duration, fn func()) { d.ref.schedule(dl, fn) }, func() Time { return d.ref.now }, &refFn)
	if cancelable {
		d.realRefs = append(d.realRefs, d.real.Schedule(delay, realFn))
		d.refRefs = append(d.refRefs, d.ref.schedule(delay, refFn))
	} else {
		d.real.Schedule(delay, realFn)
		d.ref.schedule(delay, refFn)
	}
}

// chainFn builds a callback that records its firing and, while chain
// lasts, schedules a successor with a shrunk delay.
func (d *diffDriver) chainFn(trace *[]diffFire, id, chain int, delay Duration, sched func(Duration, func()), now func() Time, self *func()) func() {
	remaining := chain
	return func() {
		*trace = append(*trace, diffFire{id: id, at: now()})
		if remaining > 0 {
			remaining--
			sched(delay/2+1, *self)
		}
	}
}

// batch schedules the same callbacks through ScheduleBatch on the real
// engine and a schedule-per-event loop on the reference: the documented
// equivalence under test.
func (d *diffDriver) batch(delay Duration, n int) {
	fns := make([]func(), n)
	for i := 0; i < n; i++ {
		id := d.nextID
		d.nextID++
		fns[i] = func() { d.realTrace = append(d.realTrace, diffFire{id: id, at: d.real.Now()}) }
		d.ref.schedule(delay, func() { d.refTrace = append(d.refTrace, diffFire{id: id, at: d.ref.now}) })
	}
	d.real.ScheduleBatch(delay, fns)
}

// cancel cancels handle i%len on both sides (a no-op past the first
// cancel or after firing, on both).
func (d *diffDriver) cancel(i int) {
	if len(d.realRefs) == 0 {
		return
	}
	i %= len(d.realRefs)
	d.realRefs[i].Cancel()
	d.refRefs[i].canceled = true
}

func (d *diffDriver) step() {
	d.real.Step()
	d.ref.step()
}

func (d *diffDriver) runUntil(delta Duration) {
	d.real.RunUntil(d.real.Now().Add(delta))
	d.ref.runUntil(d.ref.now.Add(delta))
}

func (d *diffDriver) drain() {
	d.real.Run()
	d.ref.run()
}

// check compares the two firing traces and the clocks.
func (d *diffDriver) check() {
	d.t.Helper()
	if d.real.Now() != d.ref.now {
		d.t.Fatalf("clock diverged: ladder %v, heap %v", d.real.Now(), d.ref.now)
	}
	if len(d.realTrace) != len(d.refTrace) {
		d.t.Fatalf("fired %d events on ladder, %d on heap", len(d.realTrace), len(d.refTrace))
	}
	for i := range d.realTrace {
		if d.realTrace[i] != d.refTrace[i] {
			d.t.Fatalf("firing %d diverged: ladder %+v, heap %+v", i, d.realTrace[i], d.refTrace[i])
		}
	}
}

// applyOps interprets a byte stream as a workload: the shared driver
// for the fuzz target and the seeded regression corpus below.
func applyOps(t *testing.T, data []byte) {
	d := newDiffDriver(t)
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) {
		op := next()
		switch op % 10 {
		case 0, 1: // plain schedule, spread over a wide range
			delay := Duration(next())*17*Nanosecond + Duration(next())*Picosecond
			d.schedule(delay, 0, false)
		case 2: // cancelable schedule
			delay := Duration(next()) * 3 * Nanosecond
			d.schedule(delay, 0, true)
		case 3: // chained schedule (reschedules from inside its callback)
			d.schedule(Duration(next())*5*Nanosecond, int(next()%4), false)
		case 4: // same-instant batch vs per-event loop
			d.batch(Duration(next())*Nanosecond, int(next()%7))
		case 5: // cancel (possibly stale or repeated)
			d.cancel(int(next()))
		case 6:
			d.step()
		case 7:
			d.runUntil(Duration(next()) * 11 * Nanosecond)
		case 8:
			// Frozen-clock burst: more than bottomSpillMax distinct
			// timestamps in a picosecond-pitch span with no Step in
			// between, the regime that forces reladderBottom.
			n := bottomSpillMax + int(next()%64)
			base := Duration(next()) * Nanosecond
			for j := 0; j < n; j++ {
				d.schedule(base+Duration(j)*Picosecond, 0, false)
			}
		case 9:
			// Bounded multi-step: long enough to fully consume a burst's
			// reladder rung in place, without the final refill a drain()
			// would trigger — the state gap-timestamp schedules hit.
			n := int(next()) * 4
			for j := 0; j < n; j++ {
				d.step()
			}
		}
	}
	d.drain()
	d.check()
}

// FuzzLadderVsHeap drives the ladder queue and the reference heap side
// by side; any divergence in firing order or clock is a crash. The
// added seeds double as the regression corpus for plain `go test`.
func FuzzLadderVsHeap(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 20, 6, 6, 6})
	f.Add([]byte{2, 9, 2, 9, 5, 0, 5, 0, 6, 6})
	f.Add([]byte{4, 3, 6, 4, 3, 6, 7, 50})
	f.Add([]byte{3, 100, 3, 3, 7, 2, 7, 255, 6, 6, 6, 6})
	f.Add([]byte{
		0, 255, 255, 0, 0, 0, 2, 128, 5, 0, 5, 0, 5, 1,
		7, 40, 4, 0, 6, 1, 17, 34, 3, 7, 2, 6, 6, 6, 7, 255,
	})
	f.Add([]byte{8, 0, 4, 9, 10, 8, 63, 0, 9, 255, 0, 0, 50})
	f.Add(drainedRungGapSeed())
	f.Fuzz(func(t *testing.T, data []byte) {
		applyOps(t, data)
	})
}

// drainedRungGapSeed encodes the drained-reladder-rung panic repro
// (REVIEW finding, fixed in queue.go) as an op stream: seed rung 0
// from a spread-out far cluster, burst-schedule under a frozen clock
// until the bottom re-ladders, drain exactly the burst so the reladder
// rung sits fully consumed but undropped, then schedule into the gap
// between that rung's end and rung 0's threshold.
func drainedRungGapSeed() []byte {
	var s []byte
	for k := byte(60); k < 124; k++ {
		s = append(s, 0, k, 0) // 64 far schedules, 17ns apart
	}
	s = append(s, 6, 6)      // fire the parked event, seed rung 0, consume its first bucket
	s = append(s, 8, 8, 0)   // burst: 200 events 1ps apart from the frozen now
	s = append(s, 9, 50)     // step 200×: drain the reladder rung in place
	s = append(s, 0, 0, 100) // gap schedule: now+100ps, below rung 0's threshold
	return s
}

// TestLadderDrainedRungGapInsert is the deterministic form of the
// drained-rung regression: a re-laddered bottom rung that has been
// fully consumed (cur past the last bucket) stays in the ladder until
// the next refill, and its threshold equals its end — so an event in
// the gap between that end and the shallower rung's threshold used to
// be filed into a bucket behind the drained cursor, where the next
// refill ran off the end of the bucket array. Both the single and the
// batch insert path are driven through the gap; the heap reference
// checks the realized order.
func TestLadderDrainedRungGapInsert(t *testing.T) {
	d := newDiffDriver(t)
	// Far cluster: the first event parks in bottom and sets the
	// horizon; the rest overflow to top, spread wide enough to seed a
	// multi-bucket rung 0 with a ~50ns bucket width.
	d.schedule(Microsecond, 0, false)
	for i := 0; i < 64; i++ {
		d.schedule(2*Microsecond+Duration(i)*50*Nanosecond, 0, false)
	}
	// Fire the parked event, then the first rung-0 event: rung 0 now
	// has its threshold one bucket width past the frozen clock.
	d.step()
	d.step()
	// Frozen-clock burst below every rung threshold: overgrows bottom
	// past bottomSpillMax, re-laddering the live span into a new
	// deepest rung only a couple hundred picoseconds wide.
	const burst = bottomSpillMax + 8
	for j := 0; j < burst; j++ {
		d.schedule(Duration(j+1)*Picosecond, 0, false)
	}
	// Drain exactly the burst: the reladder rung ends fully consumed
	// in place but is not dropped until the next refill.
	for j := 0; j < burst; j++ {
		d.step()
	}
	// Gap schedules: past the drained rung's end, below rung 0's
	// threshold — one through Schedule, one through ScheduleBatch.
	d.schedule(Nanosecond, 0, false)
	d.batch(2*Nanosecond, 3)
	d.drain()
	d.check()
}

// TestLadderVsHeapRandom gives the differential harness broad coverage
// in ordinary `go test` runs: many deterministic pseudo-random op
// streams, including long ones that force multiple ladder epochs,
// rung refinement, and heavy cancellation.
func TestLadderVsHeapRandom(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := benchRNG(seed * 0x9e3779b9)
			n := 200 + int(rng.next()%2000)
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(rng.next())
			}
			applyOps(t, data)
		})
	}
}

// TestLadderVsHeapFrozenClockChurn drives the bottom re-ladder path:
// schedule/cancel churn with no Steps keeps the clock frozen while
// events pile up below the rung thresholds, forcing repeated
// re-ladders before the final drain — which must still realize the
// exact heap order.
func TestLadderVsHeapFrozenClockChurn(t *testing.T) {
	d := newDiffDriver(t)
	rng := benchRNG(0xf00d)
	for i := 0; i < 1500; i++ {
		d.schedule(Duration(rng.next()%1_000_000)*Picosecond, 0, true)
	}
	for i := 0; i < 6000; i++ {
		d.cancel(int(rng.next() % 8192))
		d.schedule(Duration(rng.next()%1_000_000)*Picosecond, 0, true)
		if rng.next()%8 == 0 {
			d.batch(Duration(rng.next()%1000)*Picosecond, int(rng.next()%4))
		}
	}
	d.drain()
	d.check()
}

// TestLadderVsHeapHighOccupancy pushes both engines through a large
// pending set (several epochs, forced rung spills) with interleaved
// cancels and boundary RunUntils — the saturation regime the shape
// benchmarks measure, checked for exact equivalence.
func TestLadderVsHeapHighOccupancy(t *testing.T) {
	d := newDiffDriver(t)
	rng := benchRNG(0xdeadbeef)
	for i := 0; i < 20000; i++ {
		switch rng.next() % 16 {
		case 0:
			d.cancel(int(rng.next() % 4096))
		case 1:
			d.runUntil(Duration(rng.next() % 50000))
		case 2:
			d.schedule(Duration(rng.next()%1000), 2, false) // pico-scale ties
		case 3:
			d.batch(Duration(rng.next()%100)*Nanosecond, int(rng.next()%5))
		case 4:
			d.step()
		default:
			d.schedule(Duration(rng.next()%2_000_000)*Picosecond, 0, rng.next()%4 == 0)
		}
	}
	d.drain()
	d.check()
}
