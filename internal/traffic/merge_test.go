package traffic

import (
	"testing"

	"dmx/internal/obs"
	"dmx/internal/sim"
)

func sampleLoad(n int, base obs.Duration) AppLoad {
	al := AppLoad{App: "app", Requests: n, Completed: n, Offered: 100}
	for i := 0; i < n; i++ {
		d := base * obs.Duration(i+1)
		al.Latency.Add(d)
		al.CleanLat.Add(d)
	}
	return al
}

func TestMergeAppsIdentity(t *testing.T) {
	part := sampleLoad(8, obs.Duration(1e9))
	part.Missed, part.Degraded, part.Rejected = 2, 1, 3
	merged := MergeApps(part, AppLoad{})
	// The quantile fields are Finalize's job; everything MergeApps owns
	// must round-trip through a merge with an empty partial.
	if merged != part {
		t.Errorf("merging with an empty partial is not the identity:\n%+v\nvs\n%+v", merged, part)
	}
}

func TestMergeAppsSums(t *testing.T) {
	a := sampleLoad(4, obs.Duration(1e9)) // 1..4 ms
	a.Retries, a.Batches, a.BatchedRequests = 2, 1, 3
	b := sampleLoad(6, obs.Duration(5e9)) // 5..30 ms
	b.Timeouts, b.Abandoned = 1, 1
	m := MergeApps(a, b)
	if m.Requests != 10 || m.Completed != 10 || m.Retries != 2 || m.Timeouts != 1 ||
		m.Abandoned != 1 || m.Batches != 1 || m.BatchedRequests != 3 {
		t.Errorf("count roll-up wrong: %+v", m)
	}
	if m.Offered != 200 {
		t.Errorf("Offered = %g, want 200", m.Offered)
	}
	if m.Latency.Count != 10 || m.Latency.Sum != a.Latency.Sum+b.Latency.Sum {
		t.Errorf("histogram roll-up wrong: count %d sum %v", m.Latency.Count, m.Latency.Sum)
	}
	if m.Latency.Min != a.Latency.Min || m.Latency.Max != b.Latency.Max {
		t.Errorf("merged extrema [%v, %v], want [%v, %v]",
			m.Latency.Min, m.Latency.Max, a.Latency.Min, b.Latency.Max)
	}
}

func TestMergeAppsQuantileClamp(t *testing.T) {
	// Finalize over a merged histogram must keep the clamp invariant the
	// report format relies on: p50 ≤ p95 ≤ p99 ≤ max.
	rep := LoadReport{PerApp: []AppLoad{MergeApps(
		sampleLoad(20, obs.Duration(2e8)), sampleLoad(5, obs.Duration(9e9)))}}
	rep.Finalize()
	al := rep.PerApp[0]
	if al.P50 > al.P95 || al.P95 > al.P99 || al.P99 > al.Max {
		t.Errorf("quantiles disordered after merge: p50 %v p95 %v p99 %v max %v",
			al.P50, al.P95, al.P99, al.Max)
	}
	if al.Max != sim.Duration(sampleLoad(5, obs.Duration(9e9)).Latency.Max) {
		t.Errorf("max %v not taken from the slower partial", al.Max)
	}
}

func TestRoundRobinAndSplitRate(t *testing.T) {
	for j := 0; j < 9; j++ {
		if RoundRobin(j, 3) != j%3 {
			t.Fatalf("RoundRobin(%d, 3) = %d", j, RoundRobin(j, 3))
		}
	}
	shares := SplitRate(600, []int{2, 1, 1, 0})
	want := []float64{300, 150, 150, 0}
	for i := range want {
		if shares[i] != want[i] {
			t.Errorf("SplitRate share %d = %g, want %g", i, shares[i], want[i])
		}
	}
	if got := SplitRate(600, []int{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Errorf("SplitRate with no requests = %v, want zeros", got)
	}
	// The single-receiver split is exact, not approximately rate — the
	// one-host fleet report depends on it.
	if got := SplitRate(123.456, []int{37, 0})[0]; got != 123.456 {
		t.Errorf("single-receiver share = %g, want 123.456 exactly", got)
	}
}
