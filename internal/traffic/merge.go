package traffic

// Cluster roll-up arithmetic: a fleet run retires each request on
// exactly one replica, so a cluster-wide AppLoad is the field-wise sum
// of disjoint per-replica partials. Keeping the merge here (next to the
// AppLoad definition) means a new counter added to AppLoad fails the
// roll-up tests until it is folded in.

// MergeApps folds disjoint partial AppLoad rows — one per replica, plus
// an optional router-rejection row — into one cluster-wide row. Counts,
// rates, and histograms sum; the derived quantile fields (Mean, P50,
// ...) are left zero for LoadReport.Finalize to recompute from the
// merged histograms. Merging a single partial is the identity, which is
// what makes a one-host fleet byte-identical to a plain RunLoad.
func MergeApps(parts ...AppLoad) AppLoad {
	var out AppLoad
	for _, p := range parts {
		if out.App == "" {
			out.App = p.App
		}
		out.Requests += p.Requests
		out.Completed += p.Completed
		out.Missed += p.Missed
		out.Offered += p.Offered
		out.Achieved += p.Achieved
		out.Latency.Merge(p.Latency)
		out.Degraded += p.Degraded
		out.Abandoned += p.Abandoned
		out.Retries += p.Retries
		out.Timeouts += p.Timeouts
		out.Rejected += p.Rejected
		out.Batches += p.Batches
		out.BatchedRequests += p.BatchedRequests
		out.CleanLat.Merge(p.CleanLat)
		out.DegradedLat.Merge(p.DegradedLat)
	}
	return out
}

// RoundRobin maps the j-th arrival of an application onto one of hosts
// replicas. It is a pure function of the arrival index so a fleet's
// round-robin assignment is independent of sweep-worker interleaving.
func RoundRobin(j, hosts int) int { return j % hosts }

// SplitRate apportions one application's offered rate across replicas
// in proportion to how many of its requests each actually received
// (router rejections count as a replica of their own). The shares sum
// exactly to rate·(counts[i]/total) and, with a single nonzero count,
// reduce to rate itself — preserving the single-host report.
func SplitRate(rate float64, counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = rate * float64(c) / float64(total)
	}
	return out
}
