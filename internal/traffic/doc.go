// Package traffic defines the serving layer's load model: arrival
// processes (closed-loop bursts, open-loop fixed rate, seeded
// deterministic Poisson), the Spec that parameterizes a load run, and
// the LoadReport that summarizes one — per-application offered versus
// achieved throughput and latency quantiles pulled from the obs
// latency histograms.
//
// Spec also carries the SLO surface: Deadline (with per-app
// AppDeadlines overrides) tags every arrival with an absolute latency
// budget, which the report counts misses against and the EDF
// discipline schedules by. Outcomes classify each retirement — clean,
// degraded, abandoned, or rejected (shed by admission control before
// execution) — and AppLoad's Batches/BatchedRequests report the
// coalescing the continuous-batching layer realized.
//
// The package sits below dmxsys in the import graph (it depends only on
// sim and obs) so the system driver can consume Spec and produce
// LoadReport without a cycle. All arrival streams are deterministic:
// the Poisson process uses a splitmix64 generator seeded from
// (Spec.Seed, app index), so the same spec always produces the same
// request timeline regardless of app construction order or harness
// parallelism.
package traffic
