package traffic

import (
	"strings"
	"testing"

	"dmx/internal/obs"
	"dmx/internal/sim"
)

func TestParseArrivalRoundTrips(t *testing.T) {
	for _, a := range []Arrival{ClosedLoop, OpenLoop, Poisson} {
		got, err := ParseArrival(a.String())
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", a, err)
		}
		if got != a {
			t.Errorf("ParseArrival(%q) = %v", a, got)
		}
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Error("ParseArrival accepted an unknown process")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error, "" = valid
	}{
		{"closed ok", Spec{Arrival: ClosedLoop, Requests: 2}, ""},
		{"poisson ok", Spec{Arrival: Poisson, Rate: 100, Requests: 8}, ""},
		{"too few requests", Spec{Arrival: ClosedLoop, Requests: 1}, "at least 2 requests"},
		{"open needs rate", Spec{Arrival: OpenLoop, Requests: 4}, "positive rate"},
		{"poisson negative rate", Spec{Arrival: Poisson, Rate: -1, Requests: 4}, "positive rate"},
		{"bad arrival", Spec{Arrival: Arrival(9), Requests: 4}, "unknown arrival"},
		{"negative deadline", Spec{Arrival: ClosedLoop, Requests: 4, Deadline: -sim.Microsecond}, "negative deadline"},
		{"negative app deadline", Spec{Arrival: ClosedLoop, Requests: 4,
			AppDeadlines: []sim.Duration{sim.Millisecond, -sim.Microsecond}}, "for app 1"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestDeadlineForPrefersPerAppBudget(t *testing.T) {
	s := Spec{Arrival: ClosedLoop, Requests: 2, Deadline: 10 * sim.Millisecond,
		AppDeadlines: []sim.Duration{2 * sim.Millisecond, 0}}
	if d := s.DeadlineFor(0); d != 2*sim.Millisecond {
		t.Errorf("DeadlineFor(0) = %v, want 2ms", d)
	}
	// A zero entry and an out-of-range app both fall back to Deadline.
	if d := s.DeadlineFor(1); d != 10*sim.Millisecond {
		t.Errorf("DeadlineFor(1) = %v, want fallback 10ms", d)
	}
	if d := s.DeadlineFor(5); d != 10*sim.Millisecond {
		t.Errorf("DeadlineFor(5) = %v, want fallback 10ms", d)
	}
}

func TestRejectedAndBatchesRenderOnlyWhenPresent(t *testing.T) {
	rep := LoadReport{PerApp: []AppLoad{{App: "svc", Requests: 8, Completed: 8}}}
	base := rep.String()
	if strings.Contains(base, "rejected") || strings.Contains(base, "batches") {
		t.Fatalf("clean report leaks admission/batching lines:\n%s", base)
	}
	rep.PerApp[0].Rejected = 3
	rep.PerApp[0].Batches = 2
	rep.PerApp[0].BatchedRequests = 5
	got := rep.String()
	if !strings.Contains(got, "rejected 3 (admission)") {
		t.Errorf("rejection count missing:\n%s", got)
	}
	if !strings.Contains(got, "batches 2 carrying 5 requests (mean size 2.50)") {
		t.Errorf("batch line missing:\n%s", got)
	}
}

func TestClosedLoopArrivalsAreZero(t *testing.T) {
	s := Spec{Arrival: ClosedLoop, Requests: 5}
	for _, d := range s.Arrivals(0) {
		if d != 0 {
			t.Fatalf("closed-loop arrival offset %v, want 0", d)
		}
	}
}

func TestOpenLoopArrivalsAreExactGrid(t *testing.T) {
	s := Spec{Arrival: OpenLoop, Rate: 1000, Requests: 4}
	got := s.Arrivals(0)
	for i, d := range got {
		want := sim.Duration(i) * sim.Millisecond
		if d != want {
			t.Errorf("open-loop arrival %d = %v, want %v", i, d, want)
		}
	}
}

func TestPoissonArrivalsDeterministicPerSeed(t *testing.T) {
	s := Spec{Arrival: Poisson, Rate: 2000, Requests: 64, Seed: 7}
	a := s.Arrivals(3)
	b := s.Arrivals(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical calls: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0] != 0 {
		t.Errorf("first Poisson arrival = %v, want 0", a[0])
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, a[i], a[i-1])
		}
	}
	// A different seed or a different app index yields a different
	// timeline (streams are independent).
	s2 := s
	s2.Seed = 8
	if same(a, s2.Arrivals(3)) {
		t.Error("different seeds produced identical timelines")
	}
	if same(a, s.Arrivals(4)) {
		t.Error("different apps share one arrival timeline")
	}
}

func TestPoissonMeanGapNearRate(t *testing.T) {
	s := Spec{Arrival: Poisson, Rate: 1000, Requests: 4096, Seed: 42}
	a := s.Arrivals(0)
	mean := a[len(a)-1].Seconds() / float64(len(a)-1)
	want := 1.0 / s.Rate
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("mean inter-arrival %.6g s, want within 10%% of %.6g s", mean, want)
	}
}

func same(a, b []sim.Duration) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLoadReportStringDeterministic(t *testing.T) {
	mk := func() LoadReport {
		r := LoadReport{Arrival: Poisson, Seed: 9, Makespan: 42 * sim.Microsecond}
		r.PerApp = []AppLoad{{App: "sound-detection", Requests: 16, Completed: 16, Offered: 1000}}
		for i := 1; i <= 16; i++ {
			r.PerApp[0].Latency.Add(obs.Duration(sim.Duration(i) * sim.Microsecond))
		}
		r.Finalize()
		return r
	}
	a, b := mk().String(), mk().String()
	if a != b {
		t.Fatalf("LoadReport.String not deterministic:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "sound-detection") || !strings.Contains(a, "p99") {
		t.Errorf("report missing expected fields:\n%s", a)
	}
}

func TestFinalizeQuantileOrdering(t *testing.T) {
	r := LoadReport{PerApp: []AppLoad{{App: "x"}}}
	for i := 1; i <= 1000; i++ {
		r.PerApp[0].Latency.Add(obs.Duration(sim.Duration(i) * sim.Microsecond))
	}
	r.Finalize()
	a := r.PerApp[0]
	if !(a.P50 <= a.P95 && a.P95 <= a.P99 && a.P99 <= a.Max) {
		t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v max=%v", a.P50, a.P95, a.P99, a.Max)
	}
	if a.Max != 1000*sim.Microsecond {
		t.Errorf("Max = %v, want 1ms", a.Max)
	}
}
