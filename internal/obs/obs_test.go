package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Kind: KindInstant})
	r.Span(0, 1, TypeService, PhaseNone, 0, "t", "a", "n", 0)
	r.Instant(0, TypeKernelDone, StepKernelDone, "t", "", "a", "k", 0)
	r.Counter(0, "t", "inflight", 1)
	r.FlowPair(0, 1, TypeP2PDMA, "a", "b", "app", "x", 64)
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
}

func TestNilRecorderEmitDoesNotAllocate(t *testing.T) {
	var r *Recorder
	avg := testing.AllocsPerRun(1000, func() {
		r.Span(0, 1, TypeService, PhaseNone, 0, "t", "a", "n", 0)
		r.Counter(0, "t", "inflight", 3)
		r.Emit(Event{Kind: KindInstant, Type: TypeKernelDone, Track: "t"})
	})
	if avg != 0 {
		t.Fatalf("disabled emit allocates %.1f per op, want 0", avg)
	}
}

func TestRecorderAssignsSequence(t *testing.T) {
	r := New()
	r.Instant(5, TypeKernelEnqueued, 0, "dev", "", "app", "k", 0)
	r.Instant(9, TypeKernelDone, StepKernelDone, "dev", "", "app", "k", 0)
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("bad sequence assignment: %+v", evs)
	}
}

func TestOnEventStreams(t *testing.T) {
	r := New()
	var lines []string
	r.OnEvent = func(ev *Event) {
		if s, ok := RenderText(ev); ok {
			lines = append(lines, s)
		}
	}
	r.Instant(0, TypeInputDMA, 0, "cpu", "a0.0", "app", "", 4096)
	r.Span(0, 10, TypeService, PhaseNone, 0, "a0.0", "app", "svc", 0) // no text line
	r.Instant(10, TypeP2PDMA, StepP2PDMA, "a0.0", "a0.1", "app", "", 128)
	want := []string{
		"request input DMA host→a0.0 (4096 B)",
		"P2P DMA a0.0→a0.1 (128 B)",
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines %q, want %d", len(lines), lines, len(want))
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestRenderTextCoversProtocolTypes(t *testing.T) {
	for _, typ := range []Type{TypeInputDMA, TypeKernelEnqueued, TypeKernelDone,
		TypeQueueDMA, TypeRestructure, TypeHostRestructure, TypeTXReady,
		TypeP2PDMA, TypeHostDMA, TypeOutputDMA} {
		if _, ok := RenderText(&Event{Kind: KindInstant, Type: typ}); !ok {
			t.Errorf("no text rendering for %v", typ)
		}
	}
	if _, ok := RenderText(&Event{Kind: KindSpan, Type: TypeP2PDMA}); ok {
		t.Error("spans must not render as protocol lines")
	}
}

// sampleStream builds a small but representative event stream: nested
// spans on one track, a flow pair, instants, and counters.
func sampleStream() *Recorder {
	r := New()
	r.Instant(0, TypeInputDMA, 0, "cpu", "a0.0", "app", "", 1<<20)
	r.Span(0, 5_000_000, TypePhase, PhaseMovement, 0, "app#0", "app", "movement", 0)
	r.Span(5_000_000, 3_000_000, TypeService, PhaseNone, 0, "a0.0:fft", "app", "fft", 0)
	r.Span(5_500_000, 1_000_000, TypeRestructure, PhaseNone, StepRestructure, "a0.0:fft", "app", "inner", 0)
	r.FlowPair(8_000_000, 9_000_000, TypeP2PDMA, "a0.0:fft", "a0.1:svm", "app", "hop0", 1<<19)
	r.Span(8_000_000, 1_000_000, TypeP2PDMA, PhaseNone, StepP2PDMA, "a0.0:fft", "app", "dma", 1<<19)
	r.Counter(5_000_000, "sw0.up", "inflight", 2)
	r.Counter(9_000_000, "sw0.up", "inflight", 0)
	return r
}

func TestWriteTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleStream().Events()); err != nil {
		t.Fatal(err)
	}
	sum, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace does not validate: %v\n%s", err, buf.String())
	}
	if sum.Slices == 0 || sum.Flows == 0 || sum.Counters == 0 || sum.Instants == 0 {
		t.Fatalf("summary misses content: %v", sum)
	}
}

func TestWriteTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTrace(&a, sampleStream().Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, sampleStream().Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical streams rendered different trace bytes")
	}
}

func TestValidateTraceRejectsPartialOverlap(t *testing.T) {
	bad := `{"traceEvents":[
	 {"name":"a","ph":"X","ts":0,"dur":10,"pid":1,"tid":1},
	 {"name":"b","ph":"X","ts":5,"dur":10,"pid":1,"tid":1}]}`
	if _, err := ValidateTrace([]byte(bad)); err == nil {
		t.Fatal("partial overlap not rejected")
	}
	if _, err := ValidateTrace([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON not rejected")
	}
	if _, err := ValidateTrace([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty trace not rejected")
	}
}

func TestValidateTraceRejectsDanglingFlow(t *testing.T) {
	bad := `{"traceEvents":[
	 {"name":"a","ph":"s","id":7,"ts":0,"pid":1,"tid":1}]}`
	if _, err := ValidateTrace([]byte(bad)); err == nil {
		t.Fatal("dangling flow not rejected")
	}
}

func TestAggregateMetrics(t *testing.T) {
	m := Aggregate(sampleStream().Events(), 10_000_000)
	if m.BytesMoved != 1<<19 {
		t.Errorf("bytes moved %d, want %d", m.BytesMoved, 1<<19)
	}
	var svc *DeviceMetric
	for i := range m.Devices {
		if m.Devices[i].Name == "a0.0:fft" {
			svc = &m.Devices[i]
		}
	}
	if svc == nil {
		t.Fatal("device a0.0:fft missing from metrics")
	}
	if svc.Jobs != 1 || svc.Busy != 3_000_000 {
		t.Errorf("service metric %+v", svc)
	}
	if svc.Utilization < 0.29 || svc.Utilization > 0.31 {
		t.Errorf("utilization %f, want 0.3", svc.Utilization)
	}
	var mv *PhaseMetric
	for i := range m.Phases {
		if m.Phases[i].Phase == PhaseMovement {
			mv = &m.Phases[i]
		}
	}
	if mv == nil || mv.Hist.Count != 1 || mv.Hist.Sum != 5_000_000 {
		t.Fatalf("movement histogram %+v", mv)
	}
	out := m.String()
	for _, want := range []string{"device utilization", "stage latency", "movement", "a0.0:fft"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics rendering misses %q:\n%s", want, out)
		}
	}
}

// Merge must behave exactly like building one histogram from the union
// of samples — the property the sharded fleet leans on when it folds
// per-lane partials into a report. The edges worth pinning: merging two
// empties stays empty (not a zero-valued "sample"), a single-sample
// histogram merges without disturbing Min/Max, and samples clamped into
// the last bucket re-derive the same quantiles after the merge as
// before it.
func TestHistogramMergeEdges(t *testing.T) {
	t.Run("empty-empty", func(t *testing.T) {
		var a, b Histogram
		a.Merge(b)
		if a.Count != 0 || a.Sum != 0 || a.Min != 0 || a.Max != 0 {
			t.Errorf("empty⊕empty is not empty: %+v", a)
		}
		if got := a.Quantile(0.99); got != 0 {
			t.Errorf("quantile of empty merge = %v, want 0", got)
		}
	})
	t.Run("empty-into-populated", func(t *testing.T) {
		var a, b Histogram
		a.Add(Duration(3e6))
		want := a
		a.Merge(b)
		if a != want {
			t.Errorf("merging an empty histogram changed the target:\n got %+v\nwant %+v", a, want)
		}
	})
	t.Run("single-sample", func(t *testing.T) {
		var a, b Histogram
		a.Add(Duration(7e6)) // 7 µs
		b.Add(Duration(2e6)) // 2 µs
		a.Merge(b)
		if a.Count != 2 || a.Sum != Duration(9e6) {
			t.Errorf("count/sum after merge: %+v", a)
		}
		// The smaller sample arrived via Merge, so Min must come from the
		// merged side even though the target was non-empty.
		if a.Min != Duration(2e6) || a.Max != Duration(7e6) {
			t.Errorf("min/max after merge: min %v max %v", a.Min, a.Max)
		}
		// And the other direction: a single-sample target absorbing a
		// larger population keeps its own extreme when it is the true one.
		var c, d Histogram
		c.Add(Duration(50e6))
		for i := 0; i < 10; i++ {
			d.Add(Duration(1e6))
		}
		c.Merge(d)
		if c.Min != Duration(1e6) || c.Max != Duration(50e6) || c.Count != 11 {
			t.Errorf("single-sample target merge: %+v", c)
		}
	})
	t.Run("clamped-quantile-rederivation", func(t *testing.T) {
		// Durations ≥ 2^(HistBuckets-1) µs land clamped in the last
		// bucket. Quantiles re-derived after a merge of two clamped
		// partials must match the histogram built from the union — the
		// clamp must not leak samples into a phantom bucket.
		huge := Duration(1e6) * (Duration(1) << (HistBuckets + 2))
		var a, b, union Histogram
		for i := 0; i < 5; i++ {
			a.Add(huge)
			union.Add(huge)
		}
		for i := 0; i < 5; i++ {
			b.Add(huge + Duration(1e6))
			union.Add(huge + Duration(1e6))
		}
		a.Merge(b)
		if a != union {
			t.Fatalf("merged clamped histograms differ from the union:\n got %+v\nwant %+v", a, union)
		}
		if a.Buckets[HistBuckets-1] != 10 {
			t.Errorf("clamped samples in last bucket = %d, want 10", a.Buckets[HistBuckets-1])
		}
		for _, q := range []float64{0.5, 0.99, 1.0} {
			if got, want := a.Quantile(q), union.Quantile(q); got != want {
				t.Errorf("Quantile(%v) = %v after merge, union says %v", q, got, want)
			}
		}
		// Every rank resolves inside the (clamped) last bucket, so the
		// estimate saturates at that bucket's 2^(HistBuckets-1) µs bound —
		// deliberately below Max, which stays exact.
		bound := Duration(uint64(1)<<(HistBuckets-1)) * 1e6
		if got := a.Quantile(1.0); got != bound {
			t.Errorf("clamped p100 = %v, want bucket bound %v", got, bound)
		}
		if a.Max != huge+Duration(1e6) {
			t.Errorf("Max %v lost exactness under clamping", a.Max)
		}
	})
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Add(Duration(1e6)) // 1 µs
	}
	h.Add(Duration(100e6)) // one 100 µs outlier
	if p50 := h.Quantile(0.5); p50 > Duration(2e6) {
		t.Errorf("p50 %v too high", p50)
	}
	if p99 := h.Quantile(0.999); p99 < Duration(64e6) {
		t.Errorf("p99.9 %v misses the outlier bucket", p99)
	}
	if h.Mean() != Duration((99*1e6+100e6)/100) {
		t.Errorf("mean %v", h.Mean())
	}
}
