package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// The in-memory metrics sink: Aggregate folds an event stream into
// per-device utilization, per-stage latency histograms, and bytes moved
// — the numbers `dmxsim -stats` prints and RunReport carries. It reads
// the same events the Perfetto writer renders, so the two sinks can
// never disagree.

// HistBuckets is the number of power-of-two latency buckets: bucket i
// holds durations in [2^(i-1), 2^i) microseconds (bucket 0 is < 1 µs).
const HistBuckets = 24

// Histogram is a fixed log2-bucketed latency distribution.
type Histogram struct {
	Count    int64
	Sum      Duration
	Min, Max Duration
	Buckets  [HistBuckets]int64
}

// Add records one duration.
func (h *Histogram) Add(d Duration) {
	if h.Count == 0 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Count++
	h.Sum += d
	us := uint64(d) / 1e6
	i := bits.Len64(us)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.Buckets[i]++
}

// Merge folds another histogram into h. Buckets are position-aligned
// (both sides use the fixed HistBuckets layout), so merging partial
// histograms from fleet replicas yields exactly the histogram a single
// recorder would have built from the union of samples.
func (h *Histogram) Merge(o Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean reports the arithmetic mean duration.
func (h *Histogram) Mean() Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / Duration(h.Count)
}

// Quantile reports the upper bound of the bucket holding the q-quantile
// (0 < q ≤ 1) — a deterministic, bucket-resolution estimate.
func (h *Histogram) Quantile(q float64) Duration {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q*float64(h.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range h.Buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return Duration(1e6) // < 1 µs
			}
			return Duration(uint64(1)<<uint(i)) * 1e6
		}
	}
	return h.Max
}

// DeviceMetric is one track's occupancy summary.
type DeviceMetric struct {
	Name string
	// Busy integrates TypeService span time; Utilization divides it by
	// the makespan.
	Busy        Duration
	Utilization float64
	Jobs        int64
	// BytesOut sums DMA payloads whose source track is this device.
	BytesOut int64
}

// PhaseMetric is the latency distribution of one runtime component's
// contiguous segments across all applications.
type PhaseMetric struct {
	Phase Phase
	Hist  Histogram
}

// Metrics is the aggregated view of one run's event stream.
type Metrics struct {
	Makespan Duration
	// Devices is sorted by name.
	Devices []DeviceMetric
	// Phases holds kernel, restructure, movement — in that order.
	Phases []PhaseMetric
	// BytesMoved sums every DMA span payload (fabric and local hops).
	BytesMoved int64
}

// isDMA reports whether the type moves bytes between tracks.
func isDMA(t Type) bool {
	switch t {
	case TypeInputDMA, TypeQueueDMA, TypeP2PDMA, TypeHostDMA, TypeOutputDMA:
		return true
	}
	return false
}

// Aggregate folds an event stream into Metrics. makespan scales
// utilization; pass the run's end time.
func Aggregate(events []Event, makespan Duration) *Metrics {
	m := &Metrics{Makespan: makespan}
	devs := make(map[string]*DeviceMetric)
	dev := func(name string) *DeviceMetric {
		d, ok := devs[name]
		if !ok {
			d = &DeviceMetric{Name: name}
			devs[name] = d
		}
		return d
	}
	m.Phases = []PhaseMetric{{Phase: PhaseKernel}, {Phase: PhaseRestructure}, {Phase: PhaseMovement}}
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Kind == KindSpan && ev.Type == TypeService:
			d := dev(ev.Track)
			d.Busy += ev.Dur
			d.Jobs++
		case ev.Kind == KindSpan && ev.Type == TypePhase:
			for j := range m.Phases {
				if m.Phases[j].Phase == ev.Phase {
					m.Phases[j].Hist.Add(ev.Dur)
				}
			}
		case ev.Kind == KindSpan && isDMA(ev.Type):
			m.BytesMoved += ev.Bytes
			dev(ev.Track).BytesOut += ev.Bytes
		}
	}
	for _, d := range devs {
		if makespan > 0 {
			d.Utilization = float64(d.Busy) / float64(makespan)
		}
		m.Devices = append(m.Devices, *d)
	}
	sort.Slice(m.Devices, func(i, j int) bool { return m.Devices[i].Name < m.Devices[j].Name })
	return m
}

// String renders the utilization table and per-stage histograms.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability: makespan %s, %d devices, %s moved\n",
		fmtDur(m.Makespan), len(m.Devices), fmtBytes(m.BytesMoved))
	b.WriteString("device utilization:\n")
	for _, d := range m.Devices {
		fmt.Fprintf(&b, "  %-28s busy %-10s util %5.1f%%  jobs %-4d out %s\n",
			d.Name, fmtDur(d.Busy), 100*d.Utilization, d.Jobs, fmtBytes(d.BytesOut))
	}
	b.WriteString("stage latency (contiguous app segments):\n")
	for _, p := range m.Phases {
		h := p.Hist
		if h.Count == 0 {
			fmt.Fprintf(&b, "  %-12s n=0\n", p.Phase)
			continue
		}
		fmt.Fprintf(&b, "  %-12s n=%-4d min %-10s mean %-10s p50 ≤%-10s p99 ≤%-10s max %s\n",
			p.Phase, h.Count, fmtDur(h.Min), fmtDur(h.Mean()),
			fmtDur(h.Quantile(0.50)), fmtDur(h.Quantile(0.99)), fmtDur(h.Max))
	}
	return strings.TrimRight(b.String(), "\n")
}

// fmtDur renders a picosecond duration with an adaptive unit.
func fmtDur(d Duration) string {
	ps := float64(d)
	switch {
	case d >= 1e12:
		return fmt.Sprintf("%.3gs", ps/1e12)
	case d >= 1e9:
		return fmt.Sprintf("%.4gms", ps/1e9)
	case d >= 1e6:
		return fmt.Sprintf("%.4gµs", ps/1e6)
	case d >= 1e3:
		return fmt.Sprintf("%.4gns", ps/1e3)
	}
	return fmt.Sprintf("%dps", int64(d))
}

// fmtBytes renders a byte count with an adaptive binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
