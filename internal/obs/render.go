package obs

import "fmt"

// RenderText renders one event as the classic one-line Fig. 10 trace —
// the format the pre-structured `Config.Trace` hook printed. It is the
// single text renderer over the event stream: only protocol instants
// produce lines (spans, flows, and counters are for the Perfetto sink
// and the metrics aggregator), so a streamed rendering reproduces the
// historical line sequence exactly.
func RenderText(ev *Event) (string, bool) {
	if ev.Kind != KindInstant {
		return "", false
	}
	switch ev.Type {
	case TypeInputDMA:
		return fmt.Sprintf("request input DMA host→%s (%d B)", ev.Peer, ev.Bytes), true
	case TypeKernelEnqueued:
		return fmt.Sprintf("kernel %s enqueued on %s", ev.Name, ev.Track), true
	case TypeKernelDone:
		return fmt.Sprintf("kernel %s finished; interrupt raised", ev.Name), true
	case TypeQueueDMA:
		return fmt.Sprintf("P2P DMA %s→RX queue of DRX (%d B)", ev.Track, ev.Bytes), true
	case TypeRestructure:
		return fmt.Sprintf("DRX restructuring %s", ev.Name), true
	case TypeHostRestructure:
		return fmt.Sprintf("host restructuring %s", ev.Name), true
	case TypeTXReady:
		return "restructured into TX queue; interrupt raised", true
	case TypeP2PDMA:
		return fmt.Sprintf("P2P DMA %s→%s (%d B)", ev.Track, ev.Peer, ev.Bytes), true
	case TypeHostDMA:
		return fmt.Sprintf("CPU-mediated DMA %s→%s (%d B)", ev.Track, ev.Peer, ev.Bytes), true
	case TypeOutputDMA:
		return fmt.Sprintf("result output DMA %s→host (%d B)", ev.Track, ev.Bytes), true
	case TypeFault:
		return fmt.Sprintf("fault injected: %s impaired", ev.Name), true
	case TypeRepair:
		return fmt.Sprintf("fault repaired: %s healthy", ev.Name), true
	case TypeRetry:
		return fmt.Sprintf("retrying %s (attempt %d)", ev.Name, ev.Bytes), true
	case TypeTimeout:
		return fmt.Sprintf("stage watchdog fired on %s", ev.Name), true
	case TypeStall:
		return fmt.Sprintf("accelerator %s stalled (%d ps)", ev.Track, ev.Bytes), true
	case TypeDegrade:
		return fmt.Sprintf("degrading hop to CPU restructuring (%s unavailable)", ev.Name), true
	case TypeAbandon:
		return "request abandoned: retry budget exhausted", true
	case TypeReject:
		return "request rejected at admission: app at outstanding limit", true
	case TypeBatch:
		return fmt.Sprintf("batch window closed: dispatching %d coalesced requests", ev.Bytes), true
	case TypeRoute:
		if ev.Peer == "" {
			return fmt.Sprintf("router rejected request (%s: no eligible host)", ev.Name), true
		}
		return fmt.Sprintf("router → %s (%s, %d outstanding)", ev.Peer, ev.Name, ev.Bytes), true
	}
	return "", false
}
