package obs

// Time is virtual simulation time in picoseconds. It mirrors sim.Time's
// unit without importing it: obs sits at the bottom of the import graph
// so that internal/sim itself can emit events.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Kind classifies how an event occupies the timeline.
type Kind uint8

// Event kinds.
const (
	// KindSpan is a closed interval [TS, TS+Dur] on one track.
	KindSpan Kind = iota
	// KindInstant is a point event on one track.
	KindInstant
	// KindFlowBegin opens a cross-track arrow (paired by Flow id).
	KindFlowBegin
	// KindFlowEnd closes a cross-track arrow (paired by Flow id).
	KindFlowEnd
	// KindCounter samples a numeric series (Value) on one track.
	KindCounter
)

var kindNames = [...]string{
	KindSpan:      "span",
	KindInstant:   "instant",
	KindFlowBegin: "flow-begin",
	KindFlowEnd:   "flow-end",
	KindCounter:   "counter",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Kind(?)"
}

// Type is the semantic vocabulary of the DMX protocol: each value names
// one moment (or interval) of the paper's Fig. 10 interaction sequence,
// plus the resource-level series the simulation kernel emits.
type Type uint8

// Event types. The Step* constants below map the protocol types onto the
// 11 numbered steps of Fig. 10.
const (
	// TypeGeneric is an untyped event (renderers show the Name verbatim).
	TypeGeneric Type = iota
	// TypeInputDMA is the request payload shipping host → first
	// accelerator.
	TypeInputDMA
	// TypeKernelEnqueued marks a kernel submitted to its accelerator.
	TypeKernelEnqueued
	// TypeKernelDone marks a kernel completion interrupt (Fig. 10 ①②).
	TypeKernelDone
	// TypeQueueDMA is the local accel → DRX RX-queue move (Fig. 10 ③④).
	TypeQueueDMA
	// TypeRestructure is DRX restructuring execution (Fig. 10 ⑤–⑦).
	TypeRestructure
	// TypeHostRestructure is restructuring on the host CPU (baselines).
	TypeHostRestructure
	// TypeTXReady marks the restructured payload landing in the TX queue
	// and the completion interrupt (Fig. 10 ⑧).
	TypeTXReady
	// TypeP2PDMA is the peer-to-peer fabric DMA to the next accelerator
	// (Fig. 10 ⑨⑩).
	TypeP2PDMA
	// TypeHostDMA is a CPU-mediated DMA leg (device→host or host→device)
	// of the Multi-Axl / Integrated baselines — the movement DMX removes.
	TypeHostDMA
	// TypeOutputDMA is the final result returning device → host.
	TypeOutputDMA
	// TypeService is a sim.Server occupancy span (one job in service).
	TypeService
	// TypeOccupancy is a sim.Channel in-flight-transfer counter sample.
	TypeOccupancy
	// TypePhase is an application-timeline attribution span; Phase says
	// which runtime component (kernel/restructure/movement) the interval
	// belongs to.
	TypePhase
	// TypeCommand is a dmxrt command-queue execution (logical clock).
	TypeCommand
	// TypeRecv anchors the destination end of a DMA flow arrow.
	TypeRecv
	// TypeFault marks a station (DRX unit, link, accelerator) entering
	// an injected incident window; TypeRepair marks its recovery.
	TypeFault
	TypeRepair
	// TypeRetry marks a stage operation being re-attempted after a
	// fault or watchdog timeout.
	TypeRetry
	// TypeTimeout marks a stage watchdog firing on a stalled operation.
	TypeTimeout
	// TypeStall marks a kernel submission waiting out an accelerator
	// stall window.
	TypeStall
	// TypeDegrade marks a hop rerouting to CPU-mediated restructuring
	// because its DRX path is unavailable.
	TypeDegrade
	// TypeAbandon marks a request retiring unfinished after exhausting
	// its retry budget.
	TypeAbandon
	// TypeReject marks a request refused at admission because its app
	// was already at the configured outstanding-request limit.
	TypeReject
	// TypeBatch marks a batching window closing: Bytes carries the
	// number of requests the batch coalesced.
	TypeBatch
	// TypeRoute marks a cluster-router decision: Peer carries the chosen
	// host, Name the routing policy, Bytes the host's outstanding count
	// after the assignment (-1 when every host was drained or full and
	// the request was rejected at the router).
	TypeRoute
)

var typeNames = [...]string{
	TypeGeneric:         "generic",
	TypeInputDMA:        "input-dma",
	TypeKernelEnqueued:  "kernel-enqueued",
	TypeKernelDone:      "kernel-done",
	TypeQueueDMA:        "queue-dma",
	TypeRestructure:     "restructure",
	TypeHostRestructure: "host-restructure",
	TypeTXReady:         "tx-ready",
	TypeP2PDMA:          "p2p-dma",
	TypeHostDMA:         "host-dma",
	TypeOutputDMA:       "output-dma",
	TypeService:         "service",
	TypeOccupancy:       "occupancy",
	TypePhase:           "phase",
	TypeCommand:         "command",
	TypeRecv:            "recv",
	TypeFault:           "fault",
	TypeRepair:          "repair",
	TypeRetry:           "retry",
	TypeTimeout:         "timeout",
	TypeStall:           "stall",
	TypeDegrade:         "degrade",
	TypeAbandon:         "abandon",
	TypeReject:          "reject",
	TypeBatch:           "batch",
	TypeRoute:           "route",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "Type(?)"
}

// Fig. 10 step ids. The paper numbers the bump-in-the-wire hop protocol
// ①–⑪; Event.Step carries the id so a trace can be read against the
// figure. Types map onto steps as follows (0 = not a protocol step).
const (
	StepKernelDone  = 1  // ① producer kernel completes
	StepInterrupt   = 2  // ② completion interrupt reaches the driver
	StepRXDMA       = 3  // ③④ local DMA into the DRX RX queue
	StepRestructure = 5  // ⑤–⑦ DRX reads RX, restructures, writes TX
	StepTXReady     = 8  // ⑧ TX-ready interrupt
	StepP2PDMA      = 9  // ⑨⑩ P2P DMA through the fabric to the peer
	StepNextKernel  = 11 // ⑪ consumer kernel fires
)

// Phase attributes a span to one of the three runtime components of the
// paper's breakdown figures.
type Phase uint8

// Runtime phases.
const (
	PhaseNone Phase = iota
	PhaseKernel
	PhaseRestructure
	PhaseMovement
)

var phaseNames = [...]string{
	PhaseNone:        "none",
	PhaseKernel:      "kernel",
	PhaseRestructure: "restructure",
	PhaseMovement:    "movement",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "Phase(?)"
}

// Event is one observation. Events are small value types; producers fill
// the fields that apply and leave the rest zero.
type Event struct {
	// Seq is the emission order within one Recorder (assigned by Emit).
	Seq uint64
	// TS is the event's (or a span's begin) virtual timestamp.
	TS Time
	// Dur is a span's length (KindSpan only).
	Dur  Duration
	Kind Kind
	Type Type
	// Phase attributes TypePhase spans to a runtime component.
	Phase Phase
	// Step is the Fig. 10 step id (1–11; 0 = not a protocol step).
	Step uint8
	// Track is the resource timeline the event lives on: a device, a
	// link, a DRX unit, or an application instance.
	Track string
	// Peer is the destination track of a DMA (TypeQueueDMA, TypeP2PDMA,
	// TypeInputDMA, TypeOutputDMA).
	Peer string
	// App is the owning application instance, when one exists.
	App string
	// Name is the human label: a kernel name, a server name, a counter
	// series name.
	Name string
	// Bytes is the payload size of DMA and restructuring events.
	Bytes int64
	// Value is the sample of KindCounter events.
	Value float64
	// Flow links a KindFlowBegin to its KindFlowEnd.
	Flow uint64
}
