package obs

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ValidateTrace checks an exported Chrome trace-event JSON document: it
// must parse, every event must carry the required fields, complete
// slices must nest properly within each track (no partial overlap —
// a span that straddles another's boundary means begin/end bookkeeping
// broke), and every flow arrow must have matching begin/end with
// non-negative duration. CI runs this over a freshly captured trace.

// TraceSummary reports what a validated trace contains.
type TraceSummary struct {
	Tracks   int
	Slices   int
	Instants int
	Flows    int
	Counters int
}

func (s *TraceSummary) String() string {
	return fmt.Sprintf("%d tracks, %d slices, %d instants, %d flow arrows, %d counter samples",
		s.Tracks, s.Slices, s.Instants, s.Flows, s.Counters)
}

type rawEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  float64  `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  int      `json:"tid"`
	ID   uint64   `json:"id"`
}

type rawTrace struct {
	TraceEvents []rawEvent `json:"traceEvents"`
}

type slice struct{ ts, end float64 }

// ValidateTrace parses and checks the trace, returning a content summary.
func ValidateTrace(data []byte) (*TraceSummary, error) {
	var tr rawTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("trace does not parse: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace has no events")
	}
	sum := &TraceSummary{}
	byTrack := make(map[[2]int][]slice)
	flowBegin := make(map[uint64]float64)
	flowEnd := make(map[uint64]float64)
	tracks := make(map[[2]int]bool)
	for i, ev := range tr.TraceEvents {
		if ev.Ph == "" {
			return nil, fmt.Errorf("event %d (%q) has no phase", i, ev.Name)
		}
		if ev.Pid == nil {
			return nil, fmt.Errorf("event %d (%q) has no pid", i, ev.Name)
		}
		if ev.Ph != "M" && ev.Ts == nil {
			return nil, fmt.Errorf("event %d (%q) has no timestamp", i, ev.Name)
		}
		key := [2]int{*ev.Pid, ev.Tid}
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				return nil, fmt.Errorf("slice %q has negative duration %g", ev.Name, ev.Dur)
			}
			byTrack[key] = append(byTrack[key], slice{ts: *ev.Ts, end: *ev.Ts + ev.Dur})
			tracks[key] = true
			sum.Slices++
		case "i", "I":
			tracks[key] = true
			sum.Instants++
		case "s":
			flowBegin[ev.ID] = *ev.Ts
			sum.Flows++
		case "f":
			flowEnd[ev.ID] = *ev.Ts
		case "C":
			tracks[key] = true
			sum.Counters++
		case "M":
			// metadata carries no timeline content
		default:
			return nil, fmt.Errorf("event %d (%q) has unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	sum.Tracks = len(tracks)

	// Slices on one track must nest: sorted by (start asc, longest
	// first), every slice must lie entirely inside or entirely outside
	// every enclosing slice still open on the stack.
	const eps = 1e-6 // µs; below the ps resolution of the writer
	for key, ss := range byTrack {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].ts != ss[j].ts {
				return ss[i].ts < ss[j].ts
			}
			return ss[i].end > ss[j].end
		})
		var stack []slice
		for _, s := range ss {
			for len(stack) > 0 && stack[len(stack)-1].end <= s.ts+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end+eps {
				return nil, fmt.Errorf("track %v: slice [%g,%g] partially overlaps enclosing slice ending at %g",
					key, s.ts, s.end, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}

	for id, ts := range flowBegin {
		end, ok := flowEnd[id]
		if !ok {
			return nil, fmt.Errorf("flow %d has no end event", id)
		}
		if end < ts-eps {
			return nil, fmt.Errorf("flow %d ends (%g) before it begins (%g)", id, end, ts)
		}
	}
	for id := range flowEnd {
		if _, ok := flowBegin[id]; !ok {
			return nil, fmt.Errorf("flow %d has no begin event", id)
		}
	}
	return sum, nil
}
