package obs

// Recorder collects events in emission order. A nil *Recorder is the
// disabled tracer: every method no-ops, and because callers build Event
// values on the stack and the nil check precedes all work, the disabled
// path performs no allocation — the DES hot loops stay allocation-free
// whether or not the binary was built with tracing call sites.
//
// A Recorder is single-goroutine, like the simulation engine that feeds
// it. Parallel sweeps give each simulation its own Recorder; since each
// engine is deterministic, the recorded stream (and anything rendered
// from it) is byte-identical at any worker count.
type Recorder struct {
	events []Event
	seq    uint64
	flowID uint64

	// OnEvent, when set, observes every event synchronously at emission
	// (after Seq assignment). It is the hook text renderers stream
	// through; it must not emit back into the Recorder.
	OnEvent func(*Event)
}

// New returns an empty, enabled Recorder.
func New() *Recorder { return &Recorder{} }

// Events exposes the recorded stream in emission order. The slice is the
// Recorder's backing store; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Emit records one event, assigning its sequence number. Emit on a nil
// Recorder is a no-op.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	ev.Seq = r.seq
	r.seq++
	r.events = append(r.events, ev)
	if r.OnEvent != nil {
		r.OnEvent(&r.events[len(r.events)-1])
	}
}

// EmitRebased re-emits an event captured by another Recorder into r,
// assigning a fresh Seq and remapping its flow id through flows — the
// first appearance of a captured flow id allocates the next master id,
// so flows grafted in emission order receive exactly the ids a single
// recorder would have assigned. This is the sim shard barrier's graft
// path: per-lane capture buffers replay into the master recorder in
// canonical order, and the result is byte-identical to single-lane
// emission. flows must persist for the lifetime of the source recorder
// (a flow can begin and end in different graft batches).
func (r *Recorder) EmitRebased(ev Event, flows map[uint64]uint64) {
	if r == nil {
		return
	}
	if ev.Flow != 0 {
		id, ok := flows[ev.Flow]
		if !ok {
			r.flowID++
			id = r.flowID
			flows[ev.Flow] = id
		}
		ev.Flow = id
	}
	ev.Seq = r.seq
	r.seq++
	r.events = append(r.events, ev)
	if r.OnEvent != nil {
		r.OnEvent(&r.events[len(r.events)-1])
	}
}

// Clear drops the recorded events while keeping the Seq and flow-id
// counters monotone, so a capture buffer reused across shard windows
// never re-issues a flow id it already handed out. Clear on a nil
// Recorder is a no-op.
func (r *Recorder) Clear() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
}

// Span records a closed interval on a track.
func (r *Recorder) Span(begin Time, dur Duration, typ Type, phase Phase, step uint8, track, app, name string, bytes int64) {
	if r == nil {
		return
	}
	r.Emit(Event{TS: begin, Dur: dur, Kind: KindSpan, Type: typ, Phase: phase,
		Step: step, Track: track, App: app, Name: name, Bytes: bytes})
}

// Instant records a point event on a track.
func (r *Recorder) Instant(t Time, typ Type, step uint8, track, peer, app, name string, bytes int64) {
	if r == nil {
		return
	}
	r.Emit(Event{TS: t, Kind: KindInstant, Type: typ, Step: step,
		Track: track, Peer: peer, App: app, Name: name, Bytes: bytes})
}

// Counter records a sample of the named series on a track.
func (r *Recorder) Counter(t Time, track, name string, v float64) {
	if r == nil {
		return
	}
	r.Emit(Event{TS: t, Kind: KindCounter, Track: track, Type: TypeOccupancy,
		Name: name, Value: v})
}

// FlowPair records a begin/end arrow between two tracks (a DMA hop): the
// begin anchors at `begin` on `from`, the end at `end` on `to`. Both
// carry the same fresh flow id.
func (r *Recorder) FlowPair(begin, end Time, typ Type, from, to, app, name string, bytes int64) {
	if r == nil {
		return
	}
	r.flowID++
	id := r.flowID
	r.Emit(Event{TS: begin, Kind: KindFlowBegin, Type: typ, Track: from,
		Peer: to, App: app, Name: name, Bytes: bytes, Flow: id})
	r.Emit(Event{TS: end, Kind: KindFlowEnd, Type: typ, Track: to,
		Peer: from, App: app, Name: name, Bytes: bytes, Flow: id})
}
