// Package obs is the structured tracing and metrics layer of the DMX
// simulator — typed events instead of printf, with two sinks.
//
// The paper's argument is a breakdown: where chained-accelerator time
// goes between kernels, restructuring, and movement (Fig. 10–12). obs
// makes that breakdown observable on real runs. Producers across the
// stack emit typed Events into a Recorder:
//
//   - internal/sim: Server occupancy spans (TypeService) and Channel
//     in-flight counters (TypeOccupancy) — the resource view;
//   - internal/dmxsys: the Fig. 10 protocol instants (kernel enqueue /
//     done, RX-queue DMA, restructuring, TX-ready, P2P DMA), DMA spans
//     with flow arrows between device tracks, and per-application phase
//     spans (TypePhase) attributing every interval to kernel,
//     restructure, or movement;
//   - internal/dmxrt: command-queue execution on a logical clock.
//
// Two sinks consume the stream. WriteTrace renders Chrome trace-event
// JSON loadable in Perfetto (one track per device/link/app, DMA hops as
// flow arrows); Aggregate folds the same events into per-device
// utilization, per-stage latency histograms, and bytes moved. RenderText
// reproduces the classic one-line `dmxsim -trace` log, so the legacy
// text trace is just a third renderer over the same events.
//
// Two invariants govern the design:
//
//   - Zero overhead when disabled: a nil *Recorder is the off switch;
//     every emit method no-ops after a nil check, callers build Event
//     values on the stack, and the discrete-event hot loops stay
//     allocation-free (pinned by AllocsPerRun tests in internal/sim).
//   - No timing perturbation, ever: emission only appends to a slice —
//     it never schedules, blocks, or reads the clock destructively —
//     so traced and untraced runs produce identical reports, and traces
//     are byte-identical at any sweep worker count.
//
// obs imports only the standard library and sits below internal/sim in
// the import graph (Time/Duration mirror sim's picosecond units), which
// is what lets the simulation kernel itself emit events.
package obs
