package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file renders an event stream as Chrome trace-event JSON — the
// format Perfetto (ui.perfetto.dev) and chrome://tracing load directly.
// One process ("dmx") holds one thread per track, so every device, DRX
// unit, link, and application instance becomes its own timeline row;
// KindSpan events become complete ("X") slices, DMA FlowPairs become
// flow arrows ("s"/"f") between device tracks, and KindCounter events
// become counter series.
//
// The writer is deliberately hand-rendered rather than encoding/json
// over maps: field order, float formatting, and track numbering are all
// fixed functions of the event stream, so a trace's bytes are identical
// across runs, platforms, and sweep worker counts — the determinism
// tests compare whole files.

// perfettoPID is the single synthetic process all tracks live under.
const perfettoPID = 1

// WriteTrace renders events as Chrome trace-event JSON. Track ids are
// assigned in first-appearance order of Event.Track; events are ordered
// by (timestamp, emission sequence).
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)

	// Assign tids in first-appearance order; remember it for sort_index
	// metadata so Perfetto shows tracks in creation order.
	tid := make(map[string]int)
	var tracks []string
	for i := range events {
		for _, t := range []string{events[i].Track, events[i].Peer} {
			if t == "" {
				continue
			}
			if _, ok := tid[t]; !ok {
				tid[t] = len(tracks) + 1
				tracks = append(tracks, t)
			}
		}
	}

	ordered := make([]*Event, len(events))
	for i := range events {
		ordered[i] = &events[i]
	}
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].TS != ordered[j].TS {
			return ordered[i].TS < ordered[j].TS
		}
		return ordered[i].Seq < ordered[j].Seq
	})

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	fmt.Fprintf(bw, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"dmx\"}}", perfettoPID)
	for _, t := range tracks {
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
			perfettoPID, tid[t], jstr(t))
		fmt.Fprintf(bw, ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}",
			perfettoPID, tid[t], tid[t])
	}
	for _, ev := range ordered {
		if ev.Track == "" {
			continue
		}
		switch ev.Kind {
		case KindSpan:
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				jstr(spanName(ev)), jstr(ev.Type.String()), usec(int64(ev.TS)), usec(int64(ev.Dur)),
				perfettoPID, tid[ev.Track], argsJSON(ev))
		case KindInstant:
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":%s,\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				jstr(spanName(ev)), jstr(ev.Type.String()), usec(int64(ev.TS)),
				perfettoPID, tid[ev.Track], argsJSON(ev))
		case KindFlowBegin:
			// A zero-duration anchor slice gives the flow origin a slice to
			// bind to on the source track.
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":\"send\",\"ph\":\"X\",\"ts\":%s,\"dur\":0,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				jstr("send "+flowName(ev)), usec(int64(ev.TS)), perfettoPID, tid[ev.Track], argsJSON(ev))
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":\"dma\",\"ph\":\"s\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}",
				jstr(flowName(ev)), ev.Flow, usec(int64(ev.TS)), perfettoPID, tid[ev.Track])
		case KindFlowEnd:
			// A zero-duration anchor slice gives the flow terminus a slice
			// to bind to on the destination track.
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":\"recv\",\"ph\":\"X\",\"ts\":%s,\"dur\":0,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
				jstr("recv "+flowName(ev)), usec(int64(ev.TS)), perfettoPID, tid[ev.Track], argsJSON(ev))
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"cat\":\"dma\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%s,\"pid\":%d,\"tid\":%d}",
				jstr(flowName(ev)), ev.Flow, usec(int64(ev.TS)), perfettoPID, tid[ev.Track])
		case KindCounter:
			fmt.Fprintf(bw, ",\n{\"name\":%s,\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s:%s}}",
				jstr(ev.Track+":"+ev.Name), usec(int64(ev.TS)), perfettoPID, tid[ev.Track],
				jstr(ev.Name), strconv.FormatFloat(ev.Value, 'g', -1, 64))
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// spanName labels a slice: the event's Name when set, its type otherwise.
func spanName(ev *Event) string {
	if ev.Name != "" {
		return ev.Name
	}
	return ev.Type.String()
}

// flowName labels a DMA arrow by its endpoints.
func flowName(ev *Event) string {
	if ev.Kind == KindFlowEnd {
		return ev.Peer + "→" + ev.Track
	}
	return ev.Track + "→" + ev.Peer
}

// argsJSON renders the metadata args of one event with fixed key order.
func argsJSON(ev *Event) string {
	s := "\"app\":" + jstr(ev.App)
	if ev.Phase != PhaseNone {
		s += ",\"phase\":" + jstr(ev.Phase.String())
	}
	if ev.Step != 0 {
		s += ",\"fig10_step\":" + strconv.Itoa(int(ev.Step))
	}
	if ev.Bytes != 0 {
		s += ",\"bytes\":" + strconv.FormatInt(ev.Bytes, 10)
	}
	if ev.Peer != "" && (ev.Kind == KindSpan || ev.Kind == KindInstant) {
		s += ",\"peer\":" + jstr(ev.Peer)
	}
	return s
}

// usec renders a picosecond count as a microsecond decimal with fixed
// six-digit fraction, via integer math (no float rounding).
func usec(ps int64) string {
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	return fmt.Sprintf("%s%d.%06d", neg, ps/1e6, ps%1e6)
}

// jstr renders s as a JSON string literal.
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // a string never fails to marshal
		panic(err)
	}
	return string(b)
}
