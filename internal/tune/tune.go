// Package tune searches the serving configuration space — DRX
// placement, scheduling discipline, continuous-batching window and cap,
// admission limit, retry budget, and cross-hop kernel fusion — for the
// combination that maximizes throughput under the latency SLO.
//
// The search is greedy coordinate descent seeded by the analytic
// capacity model: the starting placement is the one whose per-app
// capacity bounds (dmxsys.Plan.Capacity, the same charges the request
// machine records at run time) sum highest, so simulation time is spent
// refining a configuration the cost model already believes in rather
// than exploring placements it can rule out statically. Every candidate
// is then evaluated exactly — a full deterministic cluster simulation on
// the sweep worker pool — and the result is reproducible byte for byte
// at any worker count: candidate generation, deduplication, and
// selection all happen on the coordinating goroutine in deterministic
// order, and only the independent evaluations fan out.
package tune

import (
	"fmt"
	"sort"
	"strings"

	"dmx/internal/cluster"
	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
)

// Axes is one point in the search space: the tunable coordinates of a
// serving configuration. Everything else about the experiment (apps,
// traffic, fleet shape, fault plan) is held fixed by the caller's
// Materialize function.
type Axes struct {
	// Placement is the DRX placement.
	Placement dmxsys.Placement
	// Sched is the service discipline at contended stations.
	Sched dmxsys.SchedPolicy
	// BatchWindow enables continuous batching when nonzero.
	BatchWindow sim.Duration
	// BatchMax caps the batch size (meaningful only with a window).
	BatchMax int
	// Admit bounds each app's outstanding requests (0 = unlimited).
	Admit int
	// Retry caps attempts per stage (0 = the caller's default policy).
	Retry int
	// Fuse lists the fused adjacent hop pairs (empty = no fusion;
	// mutually exclusive with BatchWindow, shared-DRX placements only).
	Fuse []dmxsys.FusePair
}

// Key renders the axes canonically — the deduplication and tie-break
// identity of a candidate. Fuse pairs are sorted, so permutations of
// the same fusion set share a key.
func (a Axes) Key() string {
	fuse := make([]string, len(a.Fuse))
	pairs := append([]dmxsys.FusePair(nil), a.Fuse...)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].App != pairs[j].App {
			return pairs[i].App < pairs[j].App
		}
		return pairs[i].Hop < pairs[j].Hop
	})
	for i, p := range pairs {
		fuse[i] = fmt.Sprintf("%d:%d", p.App, p.Hop)
	}
	return fmt.Sprintf("place=%v sched=%v window=%v batchmax=%d admit=%d retry=%d fuse=[%s]",
		a.Placement, a.Sched, a.BatchWindow, a.BatchMax, a.Admit, a.Retry, strings.Join(fuse, ","))
}

// clone returns a deep copy safe to mutate.
func (a Axes) clone() Axes {
	a.Fuse = append([]dmxsys.FusePair(nil), a.Fuse...)
	return a
}

// fusionLegal reports whether a placement has the shared DRX unit hop
// fusion requires (the same rule Config.Validate enforces).
func fusionLegal(p dmxsys.Placement) bool {
	return p == dmxsys.Integrated || p == dmxsys.Standalone || p == dmxsys.PCIeIntegrated
}

// Input parameterizes a search.
type Input struct {
	// Materialize expands axes into the fleet configuration to
	// simulate. It is the caller's single point of truth: the tuner
	// never edits configs directly, so whatever document Materialize
	// reads from (a dmx.Spec) replays the winner exactly by
	// construction. Materialize errors mark the candidate infeasible;
	// they never abort the search.
	Materialize func(Axes) (cluster.FleetConfig, error)
	// Traffic drives every evaluation.
	Traffic traffic.Spec
	// Pipes is the shared pipeline list (read-only across concurrent
	// evaluations).
	Pipes []*dmxsys.Pipeline
	// Start is the initial point. Its Placement is overwritten by the
	// capacity-model seed unless Placements pins exactly one.
	Start Axes
	// Placements limits the search to these placements (empty = all).
	Placements []dmxsys.Placement
	// MaxRounds caps coordinate-descent rounds (0 = 4).
	MaxRounds int
}

// Score is the measured quality of one candidate.
type Score struct {
	// Goodput is the objective: SLO-satisfying completions per second
	// of makespan, summed over apps. Without a Traffic deadline every
	// completion counts.
	Goodput float64
	// P99 is the worst per-app 99th-percentile latency.
	P99 sim.Duration
	// Completed, Missed, Rejected, and Abandoned total the request
	// outcomes across apps.
	Completed, Missed, Rejected, Abandoned int
}

// better orders scores: goodput descending, then p99 ascending, then
// the canonical key — a strict total order, so selection is
// deterministic.
func better(a Score, aKey string, b Score, bKey string) bool {
	if a.Goodput != b.Goodput {
		return a.Goodput > b.Goodput
	}
	if a.P99 != b.P99 {
		return a.P99 < b.P99
	}
	return aKey < bKey
}

// Candidate is one evaluated point.
type Candidate struct {
	Axes  Axes
	Score Score
	// Round is the descent round that generated the candidate (0 = the
	// capacity-model seed).
	Round int
	// OK is false when the candidate was infeasible; Err carries the
	// materialization or simulation error.
	OK  bool
	Err string
}

// Result is a completed search.
type Result struct {
	// Winner is the best feasible candidate's axes and Score its
	// measured score.
	Winner Axes
	Score  Score
	// Candidates holds every evaluated point, feasible first, ranked by
	// better; infeasible candidates follow in key order.
	Candidates []Candidate
	// Evaluations counts simulations run; Rounds counts descent rounds
	// completed (excluding the seed).
	Evaluations, Rounds int
	// SeedPlacement is the placement the capacity model chose, and
	// SeedCapacity its summed analytic per-app bound in req/s.
	SeedPlacement dmxsys.Placement
	SeedCapacity  float64
}

// ladders for the discrete axes.
var (
	windowLadder   = []sim.Duration{0, 50 * sim.Microsecond, 100 * sim.Microsecond, 200 * sim.Microsecond, 500 * sim.Microsecond, sim.Millisecond}
	batchMaxLadder = []int{0, 4, 8, 16}
	admitLadder    = []int{0, 8, 16, 32, 64}
	retryLadder    = []int{0, 2, 4}
	allPlacements  = []dmxsys.Placement{dmxsys.AllCPU, dmxsys.MultiAxl, dmxsys.Integrated, dmxsys.Standalone, dmxsys.PCIeIntegrated, dmxsys.BumpInTheWire}
	allScheds      = []dmxsys.SchedPolicy{dmxsys.SchedFIFO, dmxsys.SchedPriority, dmxsys.SchedWFQ, dmxsys.SchedEDF, dmxsys.SchedSRS}
)

// Run executes the search.
func Run(in Input) (Result, error) {
	if in.Materialize == nil {
		return Result{}, fmt.Errorf("tune: Materialize is required")
	}
	if len(in.Pipes) == 0 {
		return Result{}, fmt.Errorf("tune: no pipelines to tune")
	}
	placements := in.Placements
	if len(placements) == 0 {
		placements = allPlacements
	}
	maxRounds := in.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4
	}

	// Seed: the placement whose analytic capacity bound sums highest.
	// Ties break toward the earlier entry in the placement list, so the
	// seed is deterministic.
	var res Result
	res.SeedCapacity = -1
	for _, p := range placements {
		a := in.Start.clone()
		a.Placement = p
		if !fusionLegal(p) {
			a.Fuse = nil
		}
		fc, err := in.Materialize(a)
		if err != nil {
			continue
		}
		plan, err := dmxsys.NewPlan(fc.Base, in.Pipes)
		if err != nil {
			continue
		}
		total := 0.0
		for i := range in.Pipes {
			total += plan.Capacity(i).PerSecond
		}
		if total > res.SeedCapacity {
			res.SeedCapacity, res.SeedPlacement = total, p
		}
	}
	if res.SeedCapacity < 0 {
		return Result{}, fmt.Errorf("tune: no placement produced a feasible plan")
	}

	// Fusion candidates per placement, enumerated once from an unfused,
	// unbatched plan. Failures just mean no fusion moves there.
	fusible := make(map[dmxsys.Placement][]dmxsys.FusePair)
	for _, p := range placements {
		if !fusionLegal(p) {
			continue
		}
		base := in.Start.clone()
		base.Placement, base.Fuse, base.BatchWindow, base.BatchMax = p, nil, 0, 0
		fc, err := in.Materialize(base)
		if err != nil {
			continue
		}
		plan, err := dmxsys.NewPlan(fc.Base, in.Pipes)
		if err != nil {
			continue
		}
		for _, c := range plan.FusionCandidates() {
			fusible[p] = append(fusible[p], dmxsys.FusePair{App: c.App, Hop: c.Hop})
		}
	}

	eval := func(a Axes, round int) Candidate {
		c := Candidate{Axes: a, Round: round}
		fc, err := in.Materialize(a)
		if err != nil {
			c.Err = err.Error()
			return c
		}
		f, err := cluster.New(fc, in.Pipes)
		if err != nil {
			c.Err = err.Error()
			return c
		}
		rep, err := f.Run(in.Traffic)
		if err != nil {
			c.Err = err.Error()
			return c
		}
		c.OK = true
		c.Score = scoreOf(rep)
		return c
	}

	seed := in.Start.clone()
	seed.Placement = res.SeedPlacement
	if !fusionLegal(seed.Placement) {
		seed.Fuse = nil
	}
	seen := map[string]bool{seed.Key(): true}
	best := eval(seed, 0)
	res.Evaluations++
	res.Candidates = append(res.Candidates, best)
	if !best.OK {
		// The seed itself must simulate; a base experiment that cannot
		// run is a caller error, not an unlucky neighbor.
		return Result{}, fmt.Errorf("tune: seed configuration failed: %s", best.Err)
	}

	for round := 1; round <= maxRounds; round++ {
		var moves []Axes
		for _, a := range neighbors(best.Axes, placements, fusible) {
			if k := a.Key(); !seen[k] {
				seen[k] = true
				moves = append(moves, a)
			}
		}
		if len(moves) == 0 {
			break
		}
		evald, _ := sweep.Map(moves, func(_ int, a Axes) (Candidate, error) {
			return eval(a, round), nil
		})
		res.Evaluations += len(evald)
		res.Candidates = append(res.Candidates, evald...)
		improved := false
		for _, c := range evald {
			if c.OK && better(c.Score, c.Axes.Key(), best.Score, best.Axes.Key()) {
				best, improved = c, true
			}
		}
		res.Rounds = round
		if !improved {
			break
		}
	}

	res.Winner, res.Score = best.Axes, best.Score
	rank(res.Candidates)
	return res, nil
}

// scoreOf condenses a load report into the objective.
func scoreOf(rep traffic.LoadReport) Score {
	var s Score
	for _, a := range rep.PerApp {
		s.Completed += a.Completed
		s.Missed += a.Missed
		s.Rejected += a.Rejected
		s.Abandoned += a.Abandoned
		if a.P99 > s.P99 {
			s.P99 = a.P99
		}
	}
	if sec := rep.Makespan.Seconds(); sec > 0 {
		s.Goodput = float64(s.Completed-s.Missed) / sec
	}
	return s
}

// neighbors generates every one-axis move from cur, in deterministic
// order. Cross-regime moves repair conflicting axes instead of being
// skipped: turning batching on drops fusion, leaving a fused placement
// drops the fusion set, and closing the window zeroes the cap.
func neighbors(cur Axes, placements []dmxsys.Placement, fusible map[dmxsys.Placement][]dmxsys.FusePair) []Axes {
	var out []Axes
	for _, p := range placements {
		if p == cur.Placement {
			continue
		}
		a := cur.clone()
		a.Placement = p
		if !fusionLegal(p) {
			a.Fuse = nil
		}
		out = append(out, a)
	}
	for _, sched := range allScheds {
		if sched == cur.Sched {
			continue
		}
		a := cur.clone()
		a.Sched = sched
		out = append(out, a)
	}
	for _, w := range windowLadder {
		if w == cur.BatchWindow {
			continue
		}
		a := cur.clone()
		a.BatchWindow = w
		if w > 0 {
			a.Fuse = nil
		} else {
			a.BatchMax = 0
		}
		out = append(out, a)
	}
	if cur.BatchWindow > 0 {
		for _, m := range batchMaxLadder {
			if m == cur.BatchMax {
				continue
			}
			a := cur.clone()
			a.BatchMax = m
			out = append(out, a)
		}
	}
	for _, lim := range admitLadder {
		if lim == cur.Admit {
			continue
		}
		a := cur.clone()
		a.Admit = lim
		out = append(out, a)
	}
	for _, r := range retryLadder {
		if r == cur.Retry {
			continue
		}
		a := cur.clone()
		a.Retry = r
		out = append(out, a)
	}
	if cur.BatchWindow == 0 {
		for _, pair := range fusible[cur.Placement] {
			a := cur.clone()
			if i := fuseIndex(a.Fuse, pair); i >= 0 {
				a.Fuse = append(a.Fuse[:i], a.Fuse[i+1:]...)
			} else {
				a.Fuse = append(a.Fuse, pair)
			}
			out = append(out, a)
		}
	}
	return out
}

func fuseIndex(fuse []dmxsys.FusePair, p dmxsys.FusePair) int {
	for i, f := range fuse {
		if f == p {
			return i
		}
	}
	return -1
}

// rank orders candidates feasible-first by better, then infeasible by
// key — a stable presentation independent of evaluation order.
func rank(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.OK != b.OK {
			return a.OK
		}
		if !a.OK {
			return a.Axes.Key() < b.Axes.Key()
		}
		return better(a.Score, a.Axes.Key(), b.Score, b.Axes.Key())
	})
}
