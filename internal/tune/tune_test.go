package tune

import (
	"reflect"
	"strings"
	"testing"

	"dmx/internal/cluster"
	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

func TestAxesKeyCanonicalizesFuse(t *testing.T) {
	a := Axes{Fuse: []dmxsys.FusePair{{App: 1, Hop: 2}, {App: 0, Hop: 0}}}
	b := Axes{Fuse: []dmxsys.FusePair{{App: 0, Hop: 0}, {App: 1, Hop: 2}}}
	if a.Key() != b.Key() {
		t.Errorf("permuted fusion sets got distinct keys:\n%s\n%s", a.Key(), b.Key())
	}
	if a.Key() == (Axes{}).Key() {
		t.Error("fused and unfused axes share a key")
	}
}

func TestNeighborsRepairConflicts(t *testing.T) {
	fusible := map[dmxsys.Placement][]dmxsys.FusePair{
		dmxsys.Integrated: {{App: 0, Hop: 0}},
	}
	cur := Axes{Placement: dmxsys.Integrated, Fuse: []dmxsys.FusePair{{App: 0, Hop: 0}}}
	for _, n := range neighbors(cur, allPlacements, fusible) {
		if n.BatchWindow > 0 && len(n.Fuse) > 0 {
			t.Errorf("neighbor %s mixes batching and fusion", n.Key())
		}
		if !fusionLegal(n.Placement) && len(n.Fuse) > 0 {
			t.Errorf("neighbor %s fuses on a placement without a shared DRX", n.Key())
		}
		if n.BatchWindow == 0 && n.BatchMax != 0 {
			t.Errorf("neighbor %s caps a closed window", n.Key())
		}
	}
	// The fusion toggle must generate the unfused twin.
	found := false
	for _, n := range neighbors(cur, allPlacements, fusible) {
		if n.Placement == dmxsys.Integrated && len(n.Fuse) == 0 && n.BatchWindow == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no neighbor unfuses the current fusion pair")
	}
}

func TestNeighborsDeterministic(t *testing.T) {
	fusible := map[dmxsys.Placement][]dmxsys.FusePair{dmxsys.Standalone: {{App: 0, Hop: 1}}}
	cur := Axes{Placement: dmxsys.Standalone, BatchWindow: 100 * sim.Microsecond, BatchMax: 4}
	a, b := neighbors(cur, allPlacements, fusible), neighbors(cur, allPlacements, fusible)
	if !reflect.DeepEqual(a, b) {
		t.Error("neighbor generation is not deterministic")
	}
}

func TestRankOrdersFeasibleFirst(t *testing.T) {
	cands := []Candidate{
		{Axes: Axes{Admit: 1}, Err: "boom"},
		{Axes: Axes{Admit: 2}, OK: true, Score: Score{Goodput: 10, P99: 5}},
		{Axes: Axes{Admit: 3}, OK: true, Score: Score{Goodput: 20, P99: 9}},
		{Axes: Axes{Admit: 4}, OK: true, Score: Score{Goodput: 10, P99: 3}},
	}
	rank(cands)
	want := []int{3, 4, 2, 1}
	for i, admit := range want {
		if cands[i].Axes.Admit != admit {
			t.Fatalf("rank[%d].Admit = %d, want %d (order %+v)", i, cands[i].Axes.Admit, admit, cands)
		}
	}
}

// tuneInput builds a minimal real search input: one test-scale app,
// axes materialized straight onto a one-host fleet.
func tuneInput(t *testing.T) Input {
	t.Helper()
	b, err := workload.PersonalInfoRedaction(workload.TestScale)
	if err != nil {
		t.Fatal(err)
	}
	pipes := []*dmxsys.Pipeline{b.Pipeline}
	return Input{
		Materialize: func(a Axes) (cluster.FleetConfig, error) {
			cfg := dmxsys.DefaultConfig(a.Placement)
			cfg.Sched = a.Sched
			if cfg.Sched == dmxsys.SchedPriority {
				cfg.AppPriority = []int{0}
			}
			cfg.BatchWindow = a.BatchWindow
			cfg.BatchMax = a.BatchMax
			cfg.AdmitLimit = a.Admit
			cfg.FuseHops = append([]dmxsys.FusePair(nil), a.Fuse...)
			if err := cfg.Validate(); err != nil {
				return cluster.FleetConfig{}, err
			}
			return cluster.FleetConfig{Hosts: 1, Base: cfg}, nil
		},
		Traffic:    traffic.Spec{Arrival: traffic.Poisson, Rate: 3000, Requests: 12, Seed: 5, Deadline: 40 * sim.Millisecond},
		Pipes:      pipes,
		Placements: []dmxsys.Placement{dmxsys.MultiAxl, dmxsys.Integrated},
		MaxRounds:  1,
	}
}

func TestRunFindsFeasibleWinner(t *testing.T) {
	res, err := Run(tuneInput(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Score.Goodput <= 0 {
		t.Errorf("winner goodput %v", res.Score.Goodput)
	}
	if res.Evaluations != len(res.Candidates) {
		t.Errorf("evaluations %d != candidates %d", res.Evaluations, len(res.Candidates))
	}
	if res.SeedCapacity <= 0 {
		t.Errorf("seed capacity %v", res.SeedCapacity)
	}
	// The ranked list leads with the winner.
	top := res.Candidates[0]
	if !top.OK || top.Axes.Key() != res.Winner.Key() {
		t.Errorf("candidates[0] %+v is not the winner %s", top, res.Winner.Key())
	}
	// The winner is at least as good as the seed.
	for _, c := range res.Candidates {
		if c.Round == 0 && c.OK && better(c.Score, c.Axes.Key(), res.Score, res.Winner.Key()) {
			t.Error("seed outranks the winner")
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var base Result
	for i, workers := range []int{1, 2, 8} {
		prev := sweep.SetWorkers(workers)
		res, err := Run(tuneInput(t))
		sweep.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Fatalf("result at %d workers diverges from 1 worker", workers)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(Input{}); err == nil || !strings.Contains(err.Error(), "Materialize") {
		t.Errorf("no materialize: %v", err)
	}
	in := tuneInput(t)
	in.Pipes = nil
	if _, err := Run(in); err == nil || !strings.Contains(err.Error(), "pipelines") {
		t.Errorf("no pipelines: %v", err)
	}
	in = tuneInput(t)
	in.Materialize = func(Axes) (cluster.FleetConfig, error) {
		return cluster.FleetConfig{}, nil // Hosts 0: every candidate infeasible
	}
	if _, err := Run(in); err == nil {
		t.Error("infeasible seed did not error")
	}
}
