package workload

import (
	"fmt"
	"math"
	"math/rand"

	"dmx/internal/accel"
	"dmx/internal/dmxsys"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

// Geometry tables per scale. Paper-scale batch sizes land in the 6–16 MB
// range Table I reports.
type soundGeom struct{ frames, win, mels, classes int }

func soundSizes(sc Scale) soundGeom {
	if sc == TestScale {
		return soundGeom{frames: 16, win: 64, mels: 8, classes: 4}
	}
	return soundGeom{frames: 2048, win: 1024, mels: 40, classes: 10} // 8 MB audio batch
}

// SoundDetection: FFT → (spectrogram + mel scale) → SVM (Fig. 2).
func SoundDetection(sc Scale) (*Benchmark, error) {
	g := soundSizes(sc)
	bins := g.win / 2
	fft, err := accel.NewFFT(g.frames, g.win)
	if err != nil {
		return nil, err
	}
	svm := accel.NewSVM(g.frames, g.mels, g.classes, 101)
	mel := restructure.MelSpectrogram(g.frames, bins, g.mels)
	melw := restructure.MelWeights(bins, g.mels)

	audioBytes := int64(g.frames * g.win * 4)
	specBytes := int64(g.frames * bins * 8)
	melBytes := int64(g.frames * g.mels * 4)

	b := &Benchmark{
		Name: "sound-detection",
		Pipeline: &dmxsys.Pipeline{
			Name: "sound-detection",
			Stages: []dmxsys.Stage{
				{Accel: fft, InBytes: audioBytes},
				{Accel: svm, InBytes: melBytes},
			},
			Hops: []dmxsys.Hop{{
				Kernel:   mel,
				InBytes:  specBytes,
				OutBytes: melBytes,
			}},
			InputBytes:  audioBytes,
			OutputBytes: int64(g.frames * 4),
		},
		Inputs: func() (map[string]*tensor.Tensor, error) {
			rng := rand.New(rand.NewSource(11))
			audio := tensor.New(tensor.Float32, g.frames, g.win)
			for f := 0; f < g.frames; f++ {
				// A couple of seeded tones plus noise per frame.
				f1 := float64(1 + rng.Intn(g.win/4))
				f2 := float64(1 + rng.Intn(g.win/4))
				for i := 0; i < g.win; i++ {
					t := float64(i) / float64(g.win)
					v := math.Sin(2*math.Pi*f1*t) + 0.5*math.Sin(2*math.Pi*f2*t) + 0.1*rng.NormFloat64()
					audio.Set(v, f, i)
				}
			}
			return map[string]*tensor.Tensor{"audio": audio}, nil
		},
	}
	b.Exec = chain(b,
		[]map[string]*tensor.Tensor{{"melw": melw}},
		[]func(map[string]*tensor.Tensor) map[string]*tensor.Tensor{
			passthrough("spectrum", "spectrum"),
			passthrough("logmel", "features"),
		})
	return b, nil
}

type videoGeom struct{ pixels, regions, classes int }

func videoSizes(sc Scale) videoGeom {
	if sc == TestScale {
		return videoGeom{pixels: 256, regions: 4, classes: 4}
	}
	return videoGeom{pixels: 1920 * 1080 * 2, regions: 3600, classes: 16} // ~12 MB YUV batch (2 frames)
}

// VideoSurveillance: video decode → (color convert, normalize, NCHW,
// quantize) → object detection.
func VideoSurveillance(sc Scale) (*Benchmark, error) {
	g := videoSizes(sc)
	dec := accel.NewVideoDecode(g.pixels)
	det, err := accel.NewObjectDetect(g.pixels, g.regions, g.classes, 202)
	if err != nil {
		return nil, err
	}
	prep := restructure.VideoPreprocess(g.pixels)
	yuvBytes := int64(g.pixels * 3)
	nchwBytes := int64(g.pixels * 3)

	gen := func() (map[string]*tensor.Tensor, error) {
		rng := rand.New(rand.NewSource(22))
		yuv := tensor.New(tensor.Uint8, g.pixels, 3)
		var y, u, v float64 = 16, 128, 128
		for p := 0; p < g.pixels; p++ {
			if rng.Intn(64) == 0 { // new "object edge"
				y, u, v = float64(rng.Intn(236)+16), float64(rng.Intn(225)+16), float64(rng.Intn(225)+16)
			}
			yuv.Set(y, p, 0)
			yuv.Set(u, p, 1)
			yuv.Set(v, p, 2)
		}
		bs := accel.EncodeRLE(yuv)
		return map[string]*tensor.Tensor{"bitstream": tensor.FromBytes(bs, len(bs))}, nil
	}
	// Bitstream size is data-dependent; generate once for the latency model.
	probe, err := gen()
	if err != nil {
		return nil, err
	}
	bsBytes := int64(probe["bitstream"].SizeBytes())

	b := &Benchmark{
		Name: "video-surveillance",
		Pipeline: &dmxsys.Pipeline{
			Name: "video-surveillance",
			Stages: []dmxsys.Stage{
				{Accel: dec, InBytes: bsBytes},
				{Accel: det, InBytes: nchwBytes},
			},
			Hops: []dmxsys.Hop{{
				Kernel:   prep,
				InBytes:  yuvBytes,
				OutBytes: nchwBytes,
			}},
			InputBytes:  bsBytes,
			OutputBytes: int64(g.regions * g.classes * 4),
		},
		Inputs: gen,
	}
	b.Exec = chain(b,
		[]map[string]*tensor.Tensor{{
			"csc":  restructure.CSCMatrix(),
			"bias": restructure.CSCBiasProjected(),
		}},
		[]func(map[string]*tensor.Tensor) map[string]*tensor.Tensor{
			passthrough("yuv", "yuv"),
			passthrough("nchw", "nchw"),
		})
	return b, nil
}

type brainGeom struct{ batch, win, hidden, acts int }

func brainSizes(sc Scale) brainGeom {
	if sc == TestScale {
		return brainGeom{batch: 8, win: 64, hidden: 16, acts: 4}
	}
	return brainGeom{batch: 1536, win: 1024, hidden: 256, acts: 8} // 6 MB signal batch
}

// BrainStimulation: FFT over the electromagnetic signal → (power,
// normalize) → PPO reinforcement-learning policy.
func BrainStimulation(sc Scale) (*Benchmark, error) {
	g := brainSizes(sc)
	bins := g.win / 2
	fft, err := accel.NewFFT(g.batch, g.win)
	if err != nil {
		return nil, err
	}
	ppo := accel.NewPPO(g.batch, bins, g.hidden, g.acts, 303)
	norm := restructure.SignalNormalize(g.batch, bins)

	sigBytes := int64(g.batch * g.win * 4)
	freqBytes := int64(g.batch * bins * 8)
	obsBytes := int64(g.batch * bins * 4)

	b := &Benchmark{
		Name: "brain-stimulation",
		Pipeline: &dmxsys.Pipeline{
			Name: "brain-stimulation",
			Stages: []dmxsys.Stage{
				{Accel: fft, InBytes: sigBytes},
				{Accel: ppo, InBytes: obsBytes},
			},
			Hops: []dmxsys.Hop{{
				Kernel:   norm,
				InBytes:  freqBytes,
				OutBytes: obsBytes,
			}},
			InputBytes:  sigBytes,
			OutputBytes: int64(g.batch * g.acts * 4),
		},
		Inputs: func() (map[string]*tensor.Tensor, error) {
			rng := rand.New(rand.NewSource(33))
			sig := tensor.New(tensor.Float32, g.batch, g.win)
			for bb := 0; bb < g.batch; bb++ {
				phase := rng.Float64() * 2 * math.Pi
				freq := 4 + rng.Float64()*24 // alpha/beta-band-ish tones
				for i := 0; i < g.win; i++ {
					t := float64(i) / float64(g.win)
					sig.Set(math.Sin(2*math.Pi*freq*t+phase)+0.2*rng.NormFloat64(), bb, i)
				}
			}
			return map[string]*tensor.Tensor{"audio": sig}, nil
		},
	}
	b.Exec = chain(b,
		[]map[string]*tensor.Tensor{nil},
		[]func(map[string]*tensor.Tensor) map[string]*tensor.Tensor{
			passthrough("spectrum", "freq"),
			passthrough("obs", "obs"),
		})
	return b, nil
}

type pirGeom struct{ nrec, reclen int }

func pirSizes(sc Scale) pirGeom {
	if sc == TestScale {
		return pirGeom{nrec: 32, reclen: 64}
	}
	return pirGeom{nrec: 40960, reclen: 256} // 10 MB text batch
}

const pirKeySeed = "pir-benchmark-key"

// PersonalInfoRedaction: AES-GCM decrypt → (record framing, byte
// sanitize) → regex PII redaction.
func PersonalInfoRedaction(sc Scale) (*Benchmark, error) {
	g := pirSizes(sc)
	aes, err := accel.NewAESGCM(pirKeySeed)
	if err != nil {
		return nil, err
	}
	re := accel.NewRegexRedact(g.nrec, g.reclen)
	frame := restructure.RecordFrame(g.nrec, g.reclen)

	plainBytes := int64(g.nrec * g.reclen)

	b := &Benchmark{
		Name: "personal-info-redaction",
		Pipeline: &dmxsys.Pipeline{
			Name: "personal-info-redaction",
			Stages: []dmxsys.Stage{
				{Accel: aes, InBytes: plainBytes + 16},
				{Accel: re, InBytes: plainBytes},
			},
			Hops: []dmxsys.Hop{{
				Kernel:   frame,
				InBytes:  plainBytes,
				OutBytes: plainBytes,
			}},
			InputBytes:  plainBytes + 16,
			OutputBytes: plainBytes,
		},
		Inputs: func() (map[string]*tensor.Tensor, error) {
			plain := GenerateText(int(plainBytes), 44)
			ct, err := accel.Seal(pirKeySeed, plain)
			if err != nil {
				return nil, err
			}
			return map[string]*tensor.Tensor{"cipher": tensor.FromBytes(ct, len(ct))}, nil
		},
	}
	b.Exec = chain(b,
		[]map[string]*tensor.Tensor{nil},
		[]func(map[string]*tensor.Tensor) map[string]*tensor.Tensor{
			passthrough("plain", "plain"),
			passthrough("records", "records"),
		})
	return b, nil
}

// GenerateText builds a deterministic text corpus seeded with PII
// occurrences for the redaction pipeline.
func GenerateText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"the", "visit", "scheduled", "patient", "record", "followup", "normal", "report"}
	out := make([]byte, 0, n)
	for len(out) < n {
		switch rng.Intn(12) {
		case 0:
			out = append(out, fmt.Sprintf("%03d-%02d-%04d", rng.Intn(1000), rng.Intn(100), rng.Intn(10000))...)
		case 1:
			out = append(out, fmt.Sprintf("user%d@mail%d.com", rng.Intn(1000), rng.Intn(10))...)
		case 2:
			out = append(out, fmt.Sprintf("(%03d) %03d-%04d", rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))...)
		default:
			out = append(out, words[rng.Intn(len(words))]...)
		}
		out = append(out, ' ')
	}
	return out[:n]
}

type dbGeom struct {
	nrows, keyDigits, amtDigits, payBytes, innerRows int
	// keySpace bounds join keys; it must fit keyDigits ASCII digits and
	// is sized so a realistic fraction of probes hit.
	keySpace int32
}

func dbSizes(sc Scale) dbGeom {
	if sc == TestScale {
		return dbGeom{nrows: 128, keyDigits: 6, amtDigits: 7, payBytes: 10, innerRows: 16, keySpace: 64}
	}
	// ~16 MB table batch, ~10% probe hit rate.
	return dbGeom{nrows: 655360, keyDigits: 6, amtDigits: 7, payBytes: 10, innerRows: 100_000, keySpace: 1_000_000}
}

// DatabaseHashJoin: gzip decompress → (parse keys, columnar payload) →
// hash join.
func DatabaseHashJoin(sc Scale) (*Benchmark, error) {
	g := dbSizes(sc)
	rowlen := g.keyDigits + g.amtDigits + g.payBytes
	rowBytes := g.nrows * rowlen
	gz := accel.NewGzipDecompress(rowBytes)
	join := accel.NewHashJoin(g.nrows, g.payBytes, g.innerRows, g.keySpace, 505)
	pack := restructure.ColumnPack(g.nrows, g.keyDigits, g.amtDigits, g.payBytes)

	gen := func() (map[string]*tensor.Tensor, error) {
		rng := rand.New(rand.NewSource(55))
		raw := make([]byte, 0, rowBytes)
		for r := 0; r < g.nrows; r++ {
			raw = append(raw, fmt.Sprintf("%0*d", g.keyDigits, rng.Int31n(g.keySpace))...)
			raw = append(raw, fmt.Sprintf("%0*d", g.amtDigits, rng.Int31n(10_000_000))...)
			for p := 0; p < g.payBytes; p++ {
				raw = append(raw, byte(rng.Intn(256)))
			}
		}
		blob, err := accel.Compress(raw)
		if err != nil {
			return nil, err
		}
		return map[string]*tensor.Tensor{"gz": tensor.FromBytes(blob, len(blob))}, nil
	}
	probe, err := gen()
	if err != nil {
		return nil, err
	}
	gzBytes := int64(probe["gz"].SizeBytes())
	packedBytes := int64(g.nrows*8) + int64(g.nrows*g.payBytes)

	b := &Benchmark{
		Name: "database-hash-join",
		Pipeline: &dmxsys.Pipeline{
			Name: "database-hash-join",
			Stages: []dmxsys.Stage{
				{Accel: gz, InBytes: gzBytes},
				{Accel: join, InBytes: packedBytes},
			},
			Hops: []dmxsys.Hop{{
				Kernel:   pack,
				InBytes:  int64(rowBytes),
				OutBytes: packedBytes,
			}},
			InputBytes:  gzBytes,
			OutputBytes: int64(g.nrows * 4),
		},
		Inputs: gen,
	}
	b.Exec = chain(b,
		[]map[string]*tensor.Tensor{nil},
		[]func(map[string]*tensor.Tensor) map[string]*tensor.Tensor{
			func(out map[string]*tensor.Tensor) map[string]*tensor.Tensor {
				// The decompressor emits a flat byte run; frame it into rows
				// for the ColumnPack kernel.
				rows := out["rows"].Reshape(g.nrows, rowlen)
				return map[string]*tensor.Tensor{"rows": rows}
			},
			passthrough("keys", "keys", "amounts", "amounts", "paycol", "paycol"),
		})
	return b, nil
}

type ragGeom struct{ nq, seqlen, dim, corpus int }

func ragSizes(sc Scale) ragGeom {
	if sc == TestScale {
		return ragGeom{nq: 16, seqlen: 8, dim: 16, corpus: 64}
	}
	// 8 MB embedding batch: 8192 queries × 256-dim float32.
	return ragGeom{nq: 8192, seqlen: 64, dim: 256, corpus: 4096}
}

// GenAIRAG is the paper's future-work chain (Sec. IX: "multimodal
// generative AI applications that ... require acceleration beyond neural
// networks (e.g., vector database lookups, search)"): an embedding model
// feeds a vector-search accelerator, with L2-normalize + int8-quantize
// restructuring between them.
func GenAIRAG(sc Scale) (*Benchmark, error) {
	g := ragSizes(sc)
	embed := accel.NewEmbedder(g.nq, g.seqlen, g.dim, 606)
	search := accel.NewVectorSearch(g.nq, g.dim, g.corpus, 707)
	norm := restructure.VecNormalize(g.nq, g.dim)

	tokBytes := int64(g.nq * g.seqlen * 4)
	vecBytes := int64(g.nq * g.dim * 4)
	qvecBytes := int64(g.nq * g.dim)

	b := &Benchmark{
		Name: "genai-rag",
		Pipeline: &dmxsys.Pipeline{
			Name: "genai-rag",
			Stages: []dmxsys.Stage{
				{Accel: embed, InBytes: tokBytes},
				{Accel: search, InBytes: qvecBytes},
			},
			Hops: []dmxsys.Hop{{
				Kernel:   norm,
				InBytes:  vecBytes,
				OutBytes: qvecBytes,
			}},
			InputBytes:  tokBytes,
			OutputBytes: int64(g.nq * 8),
		},
		Inputs: func() (map[string]*tensor.Tensor, error) {
			rng := rand.New(rand.NewSource(66))
			tok := tensor.New(tensor.Int32, g.nq, g.seqlen)
			for q := 0; q < g.nq; q++ {
				for i := 0; i < g.seqlen; i++ {
					tok.Set(float64(rng.Intn(512)), q, i)
				}
			}
			return map[string]*tensor.Tensor{"tokens": tok}, nil
		},
	}
	b.Exec = chain(b,
		[]map[string]*tensor.Tensor{nil},
		[]func(map[string]*tensor.Tensor) map[string]*tensor.Tensor{
			passthrough("embeddings", "vecs"),
			passthrough("qvecs", "queries"),
		})
	return b, nil
}

// PIRWithNER extends Personal Info Redaction with the BERT NER kernel
// (Fig. 16): regex output is reshaped and typecast into token sequences.
func PIRWithNER(sc Scale) (*Benchmark, error) {
	g := pirSizes(sc)
	seqlen := 128
	if sc == TestScale {
		seqlen = 32
	}
	base, err := PersonalInfoRedaction(sc)
	if err != nil {
		return nil, err
	}
	total := g.nrec * g.reclen
	nseq := total / seqlen
	dim := 64
	if sc == TestScale {
		dim = 8
	}
	ner := accel.NewBERTNER(nseq, seqlen, dim, 404)
	prep := restructure.NERPrep(g.nrec, g.reclen, seqlen)

	tokBytes := int64(nseq * seqlen * 4)
	plainBytes := int64(total)

	p := base.Pipeline
	p.Name = "pir-ner"
	p.Stages = append(p.Stages, dmxsys.Stage{Accel: ner, InBytes: tokBytes})
	p.Hops = append(p.Hops, dmxsys.Hop{Kernel: prep, InBytes: plainBytes, OutBytes: tokBytes})
	p.OutputBytes = tokBytes

	b := &Benchmark{
		Name:     "pir-ner",
		Pipeline: p,
		Inputs:   base.Inputs,
	}
	b.Exec = chain(b,
		[]map[string]*tensor.Tensor{nil, nil},
		[]func(map[string]*tensor.Tensor) map[string]*tensor.Tensor{
			passthrough("plain", "plain"),
			passthrough("records", "records"),
			passthrough("redacted", "records"),
			passthrough("tokens", "tokens"),
		})
	return b, nil
}
