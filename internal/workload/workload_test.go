package workload

import (
	"strings"
	"testing"

	"dmx/internal/dmxsys"
	"dmx/internal/drx"
	"dmx/internal/drxc"
	"dmx/internal/restructure"
	"dmx/internal/tensor"
)

func TestAllPipelinesValidate(t *testing.T) {
	for _, sc := range []Scale{TestScale, PaperScale} {
		suite, err := Suite(sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(suite) != 5 {
			t.Fatalf("suite has %d benchmarks, want 5", len(suite))
		}
		for _, b := range suite {
			if err := b.Pipeline.Validate(); err != nil {
				t.Errorf("%s (scale %d): %v", b.Name, sc, err)
			}
		}
		ner, err := PIRWithNER(sc)
		if err != nil {
			t.Fatal(err)
		}
		if err := ner.Pipeline.Validate(); err != nil {
			t.Errorf("pir-ner (scale %d): %v", sc, err)
		}
		if len(ner.Pipeline.Stages) != 3 {
			t.Errorf("pir-ner has %d stages, want 3", len(ner.Pipeline.Stages))
		}
	}
}

func TestPaperScaleBatchSizes(t *testing.T) {
	// Table I: intermediate batches between accelerators are 6–16 MB.
	suite, err := Suite(PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range suite {
		for i, h := range b.Pipeline.Hops {
			mb := float64(h.InBytes) / (1 << 20)
			if mb < 5 || mb > 17 {
				t.Errorf("%s hop %d: %.1f MB batch outside the paper's 6–16 MB envelope", b.Name, i, mb)
			}
		}
	}
}

func TestSoundDetectionExec(t *testing.T) {
	b, err := SoundDetection(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	labels := out["labels"]
	g := soundSizes(TestScale)
	if labels.Dim(0) != g.frames {
		t.Fatalf("labels shape %v", labels.Shape())
	}
	for f := 0; f < g.frames; f++ {
		v := labels.At(f)
		if v < 0 || v >= float64(g.classes) {
			t.Errorf("label[%d] = %v outside [0,%d)", f, v, g.classes)
		}
	}
}

func TestVideoSurveillanceExec(t *testing.T) {
	b, err := VideoSurveillance(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	det := out["detections"]
	g := videoSizes(TestScale)
	if det.Dim(0) != g.regions || det.Dim(1) != g.classes {
		t.Fatalf("detections shape %v", det.Shape())
	}
	for r := 0; r < g.regions; r++ {
		for c := 0; c < g.classes; c++ {
			if v := det.At(r, c); v <= 0 || v >= 1 {
				t.Errorf("det[%d,%d] = %v outside (0,1)", r, c, v)
			}
		}
	}
}

func TestBrainStimulationExec(t *testing.T) {
	b, err := BrainStimulation(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	acts := out["actions"]
	g := brainSizes(TestScale)
	if acts.Dim(0) != g.batch || acts.Dim(1) != g.acts {
		t.Fatalf("actions shape %v", acts.Shape())
	}
	for i := 0; i < g.batch; i++ {
		for a := 0; a < g.acts; a++ {
			if v := acts.At(i, a); v < -1 || v > 1 {
				t.Errorf("action[%d,%d] = %v outside tanh range", i, a, v)
			}
		}
	}
}

func TestPersonalInfoRedactionExec(t *testing.T) {
	b, err := PersonalInfoRedaction(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	red := out["redacted"]
	matches := out["matches"]
	g := pirSizes(TestScale)
	if red.Dim(0) != g.nrec || red.Dim(1) != g.reclen {
		t.Fatalf("redacted shape %v", red.Shape())
	}
	// The generator seeds PII; some must have been found and blanked.
	var total float64
	for r := 0; r < g.nrec; r++ {
		total += matches.At(r)
	}
	if total == 0 {
		t.Error("no PII matched in the generated corpus")
	}
	text := string(red.Bytes())
	if !strings.Contains(text, "X") {
		t.Error("no redaction characters in output")
	}
	for _, pat := range []string{"-", "@"} {
		_ = pat // structural PII may legitimately remain after clamping boundaries
	}
}

func TestGenerateTextContainsPII(t *testing.T) {
	text := string(GenerateText(4096, 7))
	if !strings.Contains(text, "@") {
		t.Error("generated text has no email-like PII")
	}
	if len(text) != 4096 {
		t.Errorf("length %d, want 4096", len(text))
	}
	// Deterministic.
	if string(GenerateText(4096, 7)) != text {
		t.Error("GenerateText not deterministic for same seed")
	}
}

func TestDatabaseHashJoinExec(t *testing.T) {
	b, err := DatabaseHashJoin(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	joined := out["joined"]
	g := dbSizes(TestScale)
	if joined.Dim(0) != g.nrows {
		t.Fatalf("joined shape %v", joined.Shape())
	}
	hits := out["hits"].At(0)
	if hits <= 0 {
		t.Error("join produced no matches; generator/key space misaligned")
	}
	if hits >= float64(g.nrows) {
		t.Error("every probe hit; degenerate workload")
	}
}

func TestPIRWithNERExec(t *testing.T) {
	b, err := PIRWithNER(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	tags := out["tags"]
	it := tensor.NewIter(tags.Shape())
	ones := 0
	for it.Next() {
		v := tags.At(it.Index()...)
		if v != 0 && v != 1 {
			t.Fatalf("tag %v not binary", v)
		}
		if v == 1 {
			ones++
		}
	}
	if tags.NumElems() == 0 {
		t.Fatal("no tags")
	}
}

// TestSoundChainThroughDRX runs the Sound Detection hop on the actual
// DRX machine (compiled program) instead of the reference interpreter
// and checks the final SVM labels agree — the full-stack integration
// proof that a DRX in the chain preserves application results.
func TestSoundChainThroughDRX(t *testing.T) {
	b, err := SoundDetection(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}

	g := soundSizes(TestScale)
	bins := g.win / 2
	in, err := b.Inputs()
	if err != nil {
		t.Fatal(err)
	}
	fftOut, err := b.Pipeline.Stages[0].Accel.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := drx.New(drx.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mel := restructure.MelSpectrogram(g.frames, bins, g.mels)
	drxOut, _, err := drxc.CompileAndRun(mel, m, map[string]*tensor.Tensor{
		"spectrum": fftOut["spectrum"],
		"melw":     restructure.MelWeights(bins, g.mels),
	})
	if err != nil {
		t.Fatal(err)
	}
	svmOut, err := b.Pipeline.Stages[1].Accel.Run(map[string]*tensor.Tensor{
		"features": drxOut["logmel"],
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(want["labels"], svmOut["labels"]) {
		t.Error("labels differ between CPU-restructured and DRX-restructured chains")
	}
}

func TestPipelineDeterminism(t *testing.T) {
	b1, _ := SoundDetection(TestScale)
	b2, _ := SoundDetection(TestScale)
	o1, err := b1.Exec()
	if err != nil {
		t.Fatal(err)
	}
	o2, err := b2.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(o1["labels"], o2["labels"]) {
		t.Error("workload execution not deterministic")
	}
}

func TestGenAIRAGExec(t *testing.T) {
	b, err := GenAIRAG(TestScale)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Pipeline.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	g := ragSizes(TestScale)
	ids := out["ids"]
	if ids.Dim(0) != g.nq {
		t.Fatalf("ids shape %v", ids.Shape())
	}
	for q := 0; q < g.nq; q++ {
		id := ids.At(q)
		if id < 0 || id >= float64(g.corpus) {
			t.Errorf("query %d retrieved id %v outside corpus", q, id)
		}
	}
	// Determinism across fresh constructions.
	b2, _ := GenAIRAG(TestScale)
	out2, err := b2.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(out["ids"], out2["ids"]) {
		t.Error("retrieval not deterministic")
	}
}

func TestGenAIRAGSimulates(t *testing.T) {
	b, err := GenAIRAG(PaperScale)
	if err != nil {
		t.Fatal(err)
	}
	base, err := dmxsys.New(dmxsys.DefaultConfig(dmxsys.MultiAxl), []*dmxsys.Pipeline{b.Pipeline})
	if err != nil {
		t.Fatal(err)
	}
	dmxS, err := dmxsys.New(dmxsys.DefaultConfig(dmxsys.BumpInTheWire), []*dmxsys.Pipeline{b.Pipeline})
	if err != nil {
		t.Fatal(err)
	}
	br, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	dr, err := dmxS.Run()
	if err != nil {
		t.Fatal(err)
	}
	if dr.MeanTotal() >= br.MeanTotal() {
		t.Errorf("RAG chain: DMX (%v) not faster than baseline (%v)", dr.MeanTotal(), br.MeanTotal())
	}
}
