package workload

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/restructure"
	"dmx/internal/sweep"
	"dmx/internal/tensor"
)

// Benchmark is one end-to-end application.
type Benchmark struct {
	Name string
	// Pipeline drives the system simulator.
	Pipeline *dmxsys.Pipeline
	// Inputs generates the deterministic input tensors of the first
	// kernel (including any constant weights the hops consume).
	Inputs func() (map[string]*tensor.Tensor, error)
	// Exec runs the full functional chain — kernels on their accel
	// implementations, hops on the reference interpreter — returning the
	// final kernel's outputs.
	Exec func() (map[string]*tensor.Tensor, error)
}

// chain executes stage 0 → hop 0 → stage 1 → ... functionally. binds maps
// each hop's restructured outputs (and any extra constants) into the next
// kernel's input names.
func chain(b *Benchmark, hopConsts []map[string]*tensor.Tensor,
	bind []func(prev map[string]*tensor.Tensor) map[string]*tensor.Tensor) func() (map[string]*tensor.Tensor, error) {

	return func() (map[string]*tensor.Tensor, error) {
		cur, err := b.Inputs()
		if err != nil {
			return nil, err
		}
		p := b.Pipeline
		for k, st := range p.Stages {
			out, err := st.Accel.Run(cur)
			if err != nil {
				return nil, fmt.Errorf("workload %s: stage %d (%s): %w", b.Name, k, st.Accel.Name, err)
			}
			if k == len(p.Stages)-1 {
				return out, nil
			}
			hopIn := bind[2*k](out)
			for name, t := range hopConsts[k] {
				hopIn[name] = t
			}
			hopOut, err := restructure.Run(p.Hops[k].Kernel, hopIn)
			if err != nil {
				return nil, fmt.Errorf("workload %s: hop %d: %w", b.Name, k, err)
			}
			cur = bind[2*k+1](hopOut)
		}
		return cur, nil
	}
}

// passthrough renames tensors between stage/hop boundaries.
func passthrough(pairs ...string) func(map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	if len(pairs)%2 != 0 {
		panic("workload: passthrough needs from,to pairs")
	}
	return func(in map[string]*tensor.Tensor) map[string]*tensor.Tensor {
		out := make(map[string]*tensor.Tensor, len(pairs)/2)
		for i := 0; i < len(pairs); i += 2 {
			t, ok := in[pairs[i]]
			if !ok {
				panic(fmt.Sprintf("workload: binding: %q absent (have %v)", pairs[i], keys(in)))
			}
			out[pairs[i+1]] = t
		}
		return out
	}
}

func keys(m map[string]*tensor.Tensor) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Suite returns all five Table I benchmarks at the given scale, in
// Table I order. The five constructors are independent but individually
// expensive at paper scale — video RLE-encodes a ~12 MB YUV batch and
// hash-join gzip-compresses a ~16 MB table just to size their
// bitstreams — so they are built concurrently on the sweep worker pool.
// Each constructor seeds its own RNGs, so the result is identical to a
// sequential build.
func Suite(sc Scale) ([]*Benchmark, error) {
	builders := []func(Scale) (*Benchmark, error){
		VideoSurveillance, SoundDetection, BrainStimulation,
		PersonalInfoRedaction, DatabaseHashJoin,
	}
	return sweep.Map(builders, func(_ int, build func(Scale) (*Benchmark, error)) (*Benchmark, error) {
		return build(sc)
	})
}

// Scale selects workload geometry. PaperScale matches the 6–16 MB
// batches of Table I; TestScale shrinks everything so functional chains
// run in milliseconds.
type Scale int

// Scales.
const (
	PaperScale Scale = iota
	TestScale
)
