// Package workload defines the five end-to-end benchmark applications of
// Table I plus the Fig. 16 three-kernel extension.
//
// Each benchmark couples two things: a dmxsys.Pipeline (the performance
// description the system simulator runs — accelerators, restructuring
// kernels, and wire byte counts) and a functional path (deterministic
// input generation plus an Exec that chains the real accelerator
// implementations through the reference restructuring interpreter), so
// that the same object both regenerates the paper's numbers and proves
// the chained computation is actually correct.
package workload
