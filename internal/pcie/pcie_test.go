package pcie

import (
	"math"
	"testing"

	"dmx/internal/sim"
)

func buildFabric(t *testing.T, eng *sim.Engine) *Fabric {
	t.Helper()
	f := New(eng)
	if err := f.AddSwitch("sw0", LinkConfig{Gen3, 8}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSwitch("sw1", LinkConfig{Gen3, 8}); err != nil {
		t.Fatal(err)
	}
	for _, d := range []struct{ name, sw string }{
		{"a0", "sw0"}, {"a1", "sw0"}, {"b0", "sw1"}, {"b1", "sw1"},
	} {
		if err := f.AddDevice(d.name, d.sw, LinkConfig{Gen3, 16}); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func TestGenBandwidthOrdering(t *testing.T) {
	g3 := Gen3.BytesPerSecPerLane()
	g4 := Gen4.BytesPerSecPerLane()
	g5 := Gen5.BytesPerSecPerLane()
	if !(g3 < g4 && g4 < g5) {
		t.Fatalf("generation bandwidths not increasing: %v %v %v", g3, g4, g5)
	}
	if r := g4 / g3; math.Abs(r-2.0) > 0.01 {
		t.Errorf("Gen4/Gen3 = %.3f, want ~2x", r)
	}
	// Gen3 x16 effective ≈ 12.6 GB/s with protocol overhead.
	bw := LinkConfig{Gen3, 16}.Bandwidth()
	if bw < 10e9 || bw > 16e9 {
		t.Errorf("Gen3 x16 = %.1f GB/s outside plausible range", bw/1e9)
	}
}

func TestSameSwitchTransferLatency(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	var doneAt sim.Time
	n := int64(1 << 20) // 1 MiB
	if err := f.Transfer("a0", "a1", n, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	bw := LinkConfig{Gen3, 16}.Bandwidth()
	want := float64(n)/bw + SwitchPortLatency.Seconds()
	if got := doneAt.Seconds(); math.Abs(got-want) > 1e-9+want*0.01 {
		t.Errorf("same-switch 1MiB took %.3fus, want %.3fus", got*1e6, want*1e6)
	}
}

func TestCrossSwitchSlowerThanSameSwitch(t *testing.T) {
	n := int64(8 << 20)
	run := func(from, to string) sim.Time {
		eng := sim.NewEngine()
		f := buildFabric(t, eng)
		var doneAt sim.Time
		if err := f.Transfer(from, to, n, func() { doneAt = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return doneAt
	}
	same := run("a0", "a1")
	cross := run("a0", "b0")
	if cross <= same {
		t.Errorf("cross-switch (%v) not slower than same-switch (%v)", cross, same)
	}
	// The x8 uplink halves the bottleneck bandwidth: expect ~2x.
	if r := float64(cross) / float64(same); r < 1.8 || r > 2.3 {
		t.Errorf("cross/same ratio %.2f, want ~2 (x8 uplink bottleneck)", r)
	}
}

func TestUpstreamContention(t *testing.T) {
	// Two devices streaming to the CPU share the x8 uplink: each sees
	// half the bandwidth.
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	n := int64(4 << 20)
	var done []sim.Time
	for _, d := range []string{"a0", "a1"} {
		if err := f.Transfer(d, Root, n, func() { done = append(done, eng.Now()) }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	upBW := LinkConfig{Gen3, 8}.Bandwidth()
	want := float64(2*n)/upBW + (SwitchPortLatency + RootComplexLatency).Seconds()
	for _, d := range done {
		if got := d.Seconds(); math.Abs(got-want) > want*0.02 {
			t.Errorf("contended upstream transfer took %.1fus, want %.1fus", got*1e6, want*1e6)
		}
	}
}

func TestPeerToPeerAvoidsUplink(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	if err := f.Transfer("a0", "a1", 1<<20, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for _, s := range f.Stats() {
		if s.Name == "sw0.up" || s.Name == "sw0.down" {
			if s.Bytes != 0 {
				t.Errorf("P2P transfer leaked %d bytes onto uplink %s", s.Bytes, s.Name)
			}
		}
	}
}

func TestRootTransfersUseUplink(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	if err := f.Transfer(Root, "a0", 1<<20, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var found bool
	for _, s := range f.Stats() {
		if s.Name == "sw0.down" && s.Bytes == 1<<20 {
			found = true
		}
	}
	if !found {
		t.Error("root→device transfer did not traverse the switch downlink")
	}
}

func TestGenSweepScalesTransferTime(t *testing.T) {
	n := int64(64 << 20)
	times := map[Gen]float64{}
	for _, g := range []Gen{Gen3, Gen4, Gen5} {
		eng := sim.NewEngine()
		f := New(eng)
		if err := f.AddSwitch("sw", LinkConfig{g, 8}); err != nil {
			t.Fatal(err)
		}
		if err := f.AddDevice("a", "sw", LinkConfig{g, 16}); err != nil {
			t.Fatal(err)
		}
		if err := f.AddDevice("b", "sw", LinkConfig{g, 16}); err != nil {
			t.Fatal(err)
		}
		var doneAt sim.Time
		if err := f.Transfer("a", "b", n, func() { doneAt = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		times[g] = doneAt.Seconds()
	}
	if !(times[Gen5] < times[Gen4] && times[Gen4] < times[Gen3]) {
		t.Errorf("transfer times not ordered by generation: %v", times)
	}
	if r := times[Gen3] / times[Gen4]; math.Abs(r-2) > 0.1 {
		t.Errorf("Gen3/Gen4 time ratio %.2f, want ~2", r)
	}
}

func TestFabricErrors(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	if err := f.Transfer("a0", "a0", 1, nil); err == nil {
		t.Error("self-transfer accepted")
	}
	if err := f.Transfer("ghost", "a0", 1, nil); err == nil {
		t.Error("unknown source accepted")
	}
	if err := f.Transfer("a0", "ghost", 1, nil); err == nil {
		t.Error("unknown destination accepted")
	}
	if err := f.AddDevice("a0", "sw0", LinkConfig{Gen3, 16}); err == nil {
		t.Error("duplicate device accepted")
	}
	if err := f.AddDevice("x", "nosw", LinkConfig{Gen3, 16}); err == nil {
		t.Error("unknown switch accepted")
	}
	if err := f.AddSwitch("sw0", LinkConfig{Gen3, 8}); err == nil {
		t.Error("duplicate switch accepted")
	}
	if err := f.AddSwitch(Root, LinkConfig{Gen3, 8}); err == nil {
		t.Error("root name accepted as switch")
	}
}

func TestTotalBytesAccounting(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	n := int64(1 << 20)
	if err := f.Transfer("a0", "b0", n, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Cross-switch path touches 4 links.
	if got := f.TotalBytes(); got != 4*n {
		t.Errorf("TotalBytes = %d, want %d", got, 4*n)
	}
	if len(f.Devices()) != 4 {
		t.Errorf("Devices() = %v", f.Devices())
	}
	if sw, ok := f.SwitchOf("b1"); !ok || sw != "sw1" {
		t.Errorf("SwitchOf(b1) = %q, %v", sw, ok)
	}
}
