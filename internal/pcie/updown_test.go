package pcie

import (
	"math"
	"testing"

	"dmx/internal/sim"
)

func TestTransferUpTerminatesAtSwitch(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	n := int64(1 << 20)
	var doneAt sim.Time
	if err := f.TransferUp("a0", n, func() { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Only the device's own up-link plus one port crossing.
	bw := LinkConfig{Gen3, 16}.Bandwidth()
	want := float64(n)/bw + SwitchPortLatency.Seconds()
	if got := doneAt.Seconds(); math.Abs(got-want) > want*0.01 {
		t.Errorf("TransferUp took %.3fus, want %.3fus", got*1e6, want*1e6)
	}
	// The switch uplink must remain untouched.
	for _, s := range f.Stats() {
		if s.Name == "sw0.up" && s.Bytes != 0 {
			t.Errorf("uplink carried %d bytes for a switch-terminated transfer", s.Bytes)
		}
	}
}

func TestTransferDownFromSwitch(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	done := false
	if err := f.TransferDown("b1", 1<<20, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("TransferDown never completed")
	}
	var carried int64
	for _, s := range f.Stats() {
		if s.Name == "b1.down" {
			carried = s.Bytes
		}
	}
	if carried != 1<<20 {
		t.Errorf("device downlink carried %d bytes", carried)
	}
}

func TestTransferUpDownUnknownDevice(t *testing.T) {
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	if err := f.TransferUp("ghost", 1, nil); err == nil {
		t.Error("TransferUp accepted unknown device")
	}
	if err := f.TransferDown("ghost", 1, nil); err == nil {
		t.Error("TransferDown accepted unknown device")
	}
}

func TestUpAndFullTransferShareDeviceLink(t *testing.T) {
	// A switch-terminated flow and a P2P flow from the same device share
	// its up-link fairly.
	eng := sim.NewEngine()
	f := buildFabric(t, eng)
	n := int64(4 << 20)
	var upDone, p2pDone sim.Time
	if err := f.TransferUp("a0", n, func() { upDone = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := f.Transfer("a0", "a1", n, func() { p2pDone = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	bw := LinkConfig{Gen3, 16}.Bandwidth()
	want := 2 * float64(n) / bw // both share the a0.up link
	for name, got := range map[string]sim.Time{"up": upDone, "p2p": p2pDone} {
		if math.Abs(got.Seconds()-want) > want*0.05 {
			t.Errorf("%s finished at %.1fus, want ~%.1fus (fair share)", name, got.Seconds()*1e6, want*1e6)
		}
	}
}
