// Package pcie simulates the PCIe fabric of the multi-accelerator server.
//
// The fabric is where the paper's DRX-placement study happens: the four
// placements differ only in which links a chained transfer must cross and
// who contends for them. The model captures what matters for that study —
// per-generation per-lane bandwidth, full-duplex links, fair-share
// contention on shared upstream ports, and the ~110 ns port-to-port
// latency tax of every switch hop (Sec. VII-B cites [123]) — and nothing
// below the transaction layer.
package pcie
