package pcie

import (
	"errors"
	"fmt"

	"dmx/internal/sim"
)

// ErrLinkDown marks a transfer rejected because a link on its path is
// in a full-loss fault window. Callers distinguish it (errors.Is) from
// structural route errors: a down link is retryable, a bad route is a
// bug.
var ErrLinkDown = errors.New("pcie: link down")

// LinkFaults is the fabric's fault-injection hook: given a channel name
// and the current virtual time it reports whether the link is fully
// down (transfers fail with ErrLinkDown) or degraded (factor < 1 is the
// fraction of bandwidth retained; serialization stretches by 1/factor).
// A healthy link reports (false, 1). The hook must be deterministic in
// its arguments — internal/faults satisfies this with seeded
// per-station timelines.
type LinkFaults interface {
	LinkState(name string, at sim.Time) (down bool, factor float64)
}

// Gen is a PCIe generation (the Fig. 19 sensitivity axis).
type Gen int

// Supported generations.
const (
	Gen3 Gen = 3
	Gen4 Gen = 4
	Gen5 Gen = 5
)

// BytesPerSecPerLane reports the effective per-lane data bandwidth:
// raw signaling (8/16/32 GT/s) after 128b/130b encoding and ~20% TLP
// header/flow-control overhead.
func (g Gen) BytesPerSecPerLane() float64 {
	switch g {
	case Gen3:
		return 0.985e9 * 0.8
	case Gen4:
		return 1.969e9 * 0.8
	case Gen5:
		return 3.938e9 * 0.8
	}
	panic(fmt.Sprintf("pcie: unknown generation %d", int(g)))
}

func (g Gen) String() string { return fmt.Sprintf("Gen%d", int(g)) }

// LinkConfig is one link's width and generation.
type LinkConfig struct {
	Gen   Gen
	Lanes int
}

// Bandwidth reports the link's effective one-direction bandwidth.
func (lc LinkConfig) Bandwidth() float64 {
	return lc.Gen.BytesPerSecPerLane() * float64(lc.Lanes)
}

func (lc LinkConfig) String() string { return fmt.Sprintf("%v x%d", lc.Gen, lc.Lanes) }

// Timing constants.
const (
	// SwitchPortLatency is the port-to-port latency of one PCIe switch.
	SwitchPortLatency = 110 * sim.Nanosecond
	// RootComplexLatency is the tax for crossing the CPU's root complex
	// between two switches.
	RootComplexLatency = 250 * sim.Nanosecond
)

// Root is the reserved endpoint name of the CPU root complex.
const Root = "cpu"

// linkPair is one full-duplex link: up carries traffic toward the root,
// down away from it.
type linkPair struct {
	up   *sim.Channel
	down *sim.Channel
}

type device struct {
	name string
	sw   string
	link linkPair
}

type swtch struct {
	name   string
	uplink linkPair // to the root complex
}

// Fabric is a two-level PCIe topology: a root complex, switches on its
// root ports, and devices on switch downstream ports — the shape of the
// paper's evaluation server (Fig. 4).
type Fabric struct {
	eng      *sim.Engine
	switches map[string]*swtch
	devices  map[string]*device
	order    []string // device insertion order, for deterministic reports

	// faults, when set, is consulted on every transfer start. nil (the
	// default) is the fault-free fabric with zero per-transfer overhead
	// beyond one branch, preserving historical behavior bit-for-bit.
	faults LinkFaults
}

// SetFaults installs the fault hook (nil restores the healthy fabric).
func (f *Fabric) SetFaults(h LinkFaults) { f.faults = h }

// New creates an empty fabric on the engine.
func New(eng *sim.Engine) *Fabric {
	return &Fabric{
		eng:      eng,
		switches: make(map[string]*swtch),
		devices:  make(map[string]*device),
	}
}

// AddSwitch attaches a switch to the root complex with the given uplink.
func (f *Fabric) AddSwitch(name string, uplink LinkConfig) error {
	if name == Root {
		return fmt.Errorf("pcie: %q is reserved for the root complex", Root)
	}
	if _, dup := f.switches[name]; dup {
		return fmt.Errorf("pcie: duplicate switch %q", name)
	}
	f.switches[name] = &swtch{
		name: name,
		uplink: linkPair{
			up:   sim.NewChannel(f.eng, name+".up", uplink.Bandwidth()),
			down: sim.NewChannel(f.eng, name+".down", uplink.Bandwidth()),
		},
	}
	return nil
}

// AddDevice attaches a device to a switch's downstream port.
func (f *Fabric) AddDevice(name, sw string, link LinkConfig) error {
	if name == Root {
		return fmt.Errorf("pcie: %q is reserved for the root complex", Root)
	}
	if _, ok := f.switches[sw]; !ok {
		return fmt.Errorf("pcie: unknown switch %q", sw)
	}
	if _, dup := f.devices[name]; dup {
		return fmt.Errorf("pcie: duplicate device %q", name)
	}
	f.devices[name] = &device{
		name: name,
		sw:   sw,
		link: linkPair{
			up:   sim.NewChannel(f.eng, name+".up", link.Bandwidth()),
			down: sim.NewChannel(f.eng, name+".down", link.Bandwidth()),
		},
	}
	f.order = append(f.order, name)
	return nil
}

// SwitchOf reports which switch a device hangs from.
func (f *Fabric) SwitchOf(name string) (string, bool) {
	d, ok := f.devices[name]
	if !ok {
		return "", false
	}
	return d.sw, true
}

// Devices lists device names in insertion order.
func (f *Fabric) Devices() []string { return append([]string(nil), f.order...) }

// route resolves the channel path and fixed latency between endpoints.
func (f *Fabric) route(from, to string) ([]*sim.Channel, sim.Duration, error) {
	if from == to {
		return nil, 0, fmt.Errorf("pcie: transfer from %q to itself", from)
	}
	if from == Root {
		d, ok := f.devices[to]
		if !ok {
			return nil, 0, fmt.Errorf("pcie: unknown device %q", to)
		}
		sw := f.switches[d.sw]
		return []*sim.Channel{sw.uplink.down, d.link.down}, SwitchPortLatency + RootComplexLatency, nil
	}
	if to == Root {
		d, ok := f.devices[from]
		if !ok {
			return nil, 0, fmt.Errorf("pcie: unknown device %q", from)
		}
		sw := f.switches[d.sw]
		return []*sim.Channel{d.link.up, sw.uplink.up}, SwitchPortLatency + RootComplexLatency, nil
	}
	src, ok := f.devices[from]
	if !ok {
		return nil, 0, fmt.Errorf("pcie: unknown device %q", from)
	}
	dst, ok := f.devices[to]
	if !ok {
		return nil, 0, fmt.Errorf("pcie: unknown device %q", to)
	}
	if src.sw == dst.sw {
		// Peer-to-peer under one switch: traffic multiplexes through the
		// switch without touching the upstream port.
		return []*sim.Channel{src.link.up, dst.link.down}, SwitchPortLatency, nil
	}
	s1, s2 := f.switches[src.sw], f.switches[dst.sw]
	return []*sim.Channel{src.link.up, s1.uplink.up, s2.uplink.down, dst.link.down},
		2*SwitchPortLatency + RootComplexLatency, nil
}

// LinkInfo identifies one channel on a transfer path for capacity
// analysis: its name and one-direction bandwidth in bytes/second.
type LinkInfo struct {
	Name      string
	Bandwidth float64
}

// PathLinks reports the channels a Transfer between the endpoints would
// occupy, in path order. Capacity analysis uses it to charge a payload's
// serialization time against every link it crosses.
func (f *Fabric) PathLinks(from, to string) ([]LinkInfo, error) {
	path, _, err := f.route(from, to)
	if err != nil {
		return nil, err
	}
	out := make([]LinkInfo, len(path))
	for i, ch := range path {
		out[i] = LinkInfo{Name: ch.Name(), Bandwidth: ch.Capacity()}
	}
	return out, nil
}

// UpLink reports the device's upstream link (the TransferUp path).
func (f *Fabric) UpLink(dev string) (LinkInfo, error) {
	d, ok := f.devices[dev]
	if !ok {
		return LinkInfo{}, fmt.Errorf("pcie: unknown device %q", dev)
	}
	return LinkInfo{Name: d.link.up.Name(), Bandwidth: d.link.up.Capacity()}, nil
}

// DownLink reports the device's downstream link (the TransferDown path).
func (f *Fabric) DownLink(dev string) (LinkInfo, error) {
	d, ok := f.devices[dev]
	if !ok {
		return LinkInfo{}, fmt.Errorf("pcie: unknown device %q", dev)
	}
	return LinkInfo{Name: d.link.down.Name(), Bandwidth: d.link.down.Capacity()}, nil
}

// Transfer starts a DMA of n bytes between endpoints (device names or
// Root) and calls done when the last byte arrives. The flow occupies
// every link on its path; completion is governed by the slowest
// (fair-share) link, plus the path's fixed hop latency.
func (f *Fabric) Transfer(from, to string, n int64, done func()) error {
	path, hopLat, err := f.route(from, to)
	if err != nil {
		return err
	}
	remaining := len(path)
	complete := func() {
		remaining--
		if remaining == 0 {
			if done != nil {
				f.eng.Schedule(hopLat, done)
			}
		}
	}
	if f.faults == nil {
		// Healthy fast path: no fault queries, no extra allocation —
		// bit-for-bit the historical behavior.
		for _, ch := range path {
			ch.Start(n, complete)
		}
		return nil
	}
	// Fault-aware path: a down link rejects the whole transfer before
	// any channel is touched; a degraded link stretches its own
	// serialization by 1/factor (link-level retransmission at the
	// reduced rate — the extra bytes also count as moved traffic).
	now := f.eng.Now()
	loads := make([]int64, len(path))
	for i, ch := range path {
		var err error
		if loads[i], err = f.linkLoad(ch, n, now); err != nil {
			return err
		}
	}
	for i, ch := range path {
		ch.Start(loads[i], complete)
	}
	return nil
}

// linkLoad resolves one channel's effective payload under the fault
// hook at the given instant.
func (f *Fabric) linkLoad(ch *sim.Channel, n int64, now sim.Time) (int64, error) {
	down, factor := f.faults.LinkState(ch.Name(), now)
	if down {
		return 0, fmt.Errorf("%w: %s", ErrLinkDown, ch.Name())
	}
	if factor > 0 && factor < 1 {
		return int64(float64(n) / factor), nil
	}
	return n, nil
}

// TransferUp moves n bytes from a device into its switch (terminating at
// the switch, e.g. at a switch-integrated DRX) and calls done after the
// device link drains plus one port crossing.
func (f *Fabric) TransferUp(dev string, n int64, done func()) error {
	d, ok := f.devices[dev]
	if !ok {
		return fmt.Errorf("pcie: unknown device %q", dev)
	}
	if f.faults != nil {
		var err error
		if n, err = f.linkLoad(d.link.up, n, f.eng.Now()); err != nil {
			return err
		}
	}
	d.link.up.Start(n, func() {
		if done != nil {
			f.eng.Schedule(SwitchPortLatency, done)
		}
	})
	return nil
}

// TransferDown moves n bytes from a device's switch to the device.
func (f *Fabric) TransferDown(dev string, n int64, done func()) error {
	d, ok := f.devices[dev]
	if !ok {
		return fmt.Errorf("pcie: unknown device %q", dev)
	}
	if f.faults != nil {
		var err error
		if n, err = f.linkLoad(d.link.down, n, f.eng.Now()); err != nil {
			return err
		}
	}
	d.link.down.Start(n, func() {
		if done != nil {
			f.eng.Schedule(SwitchPortLatency, done)
		}
	})
	return nil
}

// LinkStats reports a channel's lifetime accounting for the energy model
// and utilization reports.
type LinkStats struct {
	Name     string
	Bytes    int64
	BusyTime sim.Duration
	Capacity float64
}

// Stats enumerates all links (device and switch, both directions) in a
// deterministic order.
func (f *Fabric) Stats() []LinkStats {
	var out []LinkStats
	addPair := func(p linkPair) {
		for _, ch := range []*sim.Channel{p.up, p.down} {
			out = append(out, LinkStats{
				Name:     ch.Name(),
				Bytes:    ch.TotalBytes,
				BusyTime: ch.BusyTime,
				Capacity: ch.Capacity(),
			})
		}
	}
	// Switches first (sorted by insertion through devices is not enough;
	// collect names deterministically).
	seen := make(map[string]bool)
	for _, dn := range f.order {
		sw := f.devices[dn].sw
		if !seen[sw] {
			seen[sw] = true
			addPair(f.switches[sw].uplink)
		}
	}
	for _, dn := range f.order {
		addPair(f.devices[dn].link)
	}
	return out
}

// TotalBytes sums traffic across all links — the fabric-wide data
// movement the energy model charges per byte.
func (f *Fabric) TotalBytes() int64 {
	var n int64
	for _, s := range f.Stats() {
		n += s.Bytes
	}
	return n
}
