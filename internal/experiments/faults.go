package experiments

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/faults"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// faultMTBFs is the fault-intensity axis: mean time between DRX outages,
// from rare (one outage per 20 ms of virtual time) to constant churn.
// Link incidents and accelerator stalls scale with the same axis at 4x
// the MTBF, so every recovery mechanism is exercised at every point.
var faultMTBFs = []sim.Duration{
	20 * sim.Millisecond,
	10 * sim.Millisecond,
	5 * sim.Millisecond,
	2 * sim.Millisecond,
	sim.Millisecond,
}

// faultLoadFraction drives the serving load at a sub-saturation rate so
// availability losses are attributable to faults, not queueing collapse.
const faultLoadFraction = 0.75

// faultRequests is the per-point request count.
const faultRequests = 64

// FaultPoint is one cell of the availability-vs-fault-rate curve.
type FaultPoint struct {
	// MTBF is the mean time between DRX outages; Rate is its inverse in
	// incidents per second of virtual time.
	MTBF sim.Duration
	Rate float64
	// Availability is completed/issued; DegradedShare is the fraction of
	// completions that fell back to CPU-mediated restructuring.
	Availability  float64
	DegradedShare float64
	Retries       int
	Timeouts      int
	CleanP99      sim.Duration
	DegradedP99   sim.Duration
}

// FaultCurve is one benchmark's graceful-degradation behavior under
// increasing fault pressure on the bump-in-the-wire placement.
type FaultCurve struct {
	Bench  string
	Points []FaultPoint
}

// FaultResult is the fault-injection experiment: availability and
// degraded-completion share vs fault rate, one curve per benchmark.
type FaultResult struct {
	Curves []FaultCurve
}

// faultJob is one (benchmark, MTBF) sweep cell.
type faultJob struct {
	bench    *workload.Benchmark
	capacity float64
	mtbf     sim.Duration
}

// faultPlan builds the injection plan for one fault-intensity point:
// DRX outages at the axis MTBF, link incidents and accelerator stalls
// at 4x, plus a 1% transient restructure error rate. The seed is fixed
// so the whole experiment is reproducible.
func faultPlan(mtbf sim.Duration) *faults.Plan {
	return &faults.Plan{
		Seed:              1,
		DRXMTBF:           mtbf,
		DRXRepair:         200 * sim.Microsecond,
		TransientProb:     0.01,
		LinkMTBF:          4 * mtbf,
		LinkRepair:        100 * sim.Microsecond,
		LinkDegradeFactor: 0.25,
		StallMTBF:         4 * mtbf,
		StallRepair:       100 * sim.Microsecond,
	}
}

// Faults runs the fault-injection experiment: for every Table I
// benchmark on the bump-in-the-wire placement, measure the capacity
// bound, then drive Poisson load at 75% of it while sweeping fault
// intensity. At each point the report records availability, the share
// of completions that degraded to CPU restructuring, and the clean vs
// degraded tail latency — the graceful-degradation story in one table.
// The (benchmark x MTBF) cells are independent simulations and run on
// the sweep worker pool.
func Faults() (*FaultResult, error) {
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	res := &FaultResult{Curves: make([]FaultCurve, len(benches))}
	var jobs []faultJob
	for i, b := range benches {
		rep, err := runSystem(dmxsys.BumpInTheWire, benches[i:i+1])
		if err != nil {
			return nil, err
		}
		ar := rep.Apps[0]
		if ar.Bottleneck <= 0 {
			return nil, fmt.Errorf("experiments: %s recorded no bottleneck occupancy", b.Name)
		}
		res.Curves[i] = FaultCurve{Bench: b.Name}
		capacity := ar.Throughput(len(b.Pipeline.Stages))
		for _, m := range faultMTBFs {
			jobs = append(jobs, faultJob{bench: b, capacity: capacity, mtbf: m})
		}
	}
	points, err := sweep.Map(jobs, func(_ int, j faultJob) (FaultPoint, error) {
		cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
		cfg.Faults = faultPlan(j.mtbf)
		cfg.Retry = faults.DefaultRetry()
		sys, err := dmxsys.New(cfg, []*dmxsys.Pipeline{j.bench.Pipeline})
		if err != nil {
			return FaultPoint{}, err
		}
		lr, err := sys.RunLoad(traffic.Spec{
			Arrival:  traffic.Poisson,
			Rate:     faultLoadFraction * j.capacity,
			Requests: faultRequests,
			Seed:     7,
		})
		if err != nil {
			return FaultPoint{}, err
		}
		al := lr.PerApp[0]
		p := FaultPoint{
			MTBF:        j.mtbf,
			Rate:        1 / j.mtbf.Seconds(),
			Retries:     al.Retries,
			Timeouts:    al.Timeouts,
			CleanP99:    al.CleanP99,
			DegradedP99: al.DegradedP99,
		}
		if al.Requests > 0 {
			p.Availability = float64(al.Completed) / float64(al.Requests)
		}
		if al.Completed > 0 {
			p.DegradedShare = float64(al.Degraded) / float64(al.Completed)
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range res.Curves {
		res.Curves[i].Points = points[i*len(faultMTBFs) : (i+1)*len(faultMTBFs)]
	}
	return res, nil
}

// Render emits one availability table per benchmark.
func (r *FaultResult) Render() string {
	t := newTable("Faults: availability vs fault rate (Poisson 0.75x capacity, Bump-in-the-Wire)",
		"", "DRX MTBF", "faults/s", "avail", "degraded", "retries", "timeouts", "clean p99", "degraded p99")
	for _, c := range r.Curves {
		t.rowf("%s", c.Bench)
		for _, p := range c.Points {
			t.row("",
				p.MTBF.String(),
				fmt.Sprintf("%.4g", p.Rate),
				fmt.Sprintf("%.4f", p.Availability),
				fmt.Sprintf("%.1f%%", 100*p.DegradedShare),
				fmt.Sprintf("%d", p.Retries),
				fmt.Sprintf("%d", p.Timeouts),
				p.CleanP99.String(),
				p.DegradedP99.String())
		}
	}
	return t.String()
}
