package experiments

import (
	"strings"
	"testing"
)

// TestBatchingCurveShape pins the acceptance contract of the batching
// figure: under open-loop saturation the completion rate strictly
// improves with every widening of the accumulation window (amortized
// dispatch buys real throughput), while the light-load p99 strictly
// degrades (an arrival that opens a window eats the window). Window 0
// must coalesce nothing, and wider windows must coalesce strictly
// harder.
func TestBatchingCurveShape(t *testing.T) {
	res, err := Batching()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 5 {
		t.Fatalf("%d curves, want 5", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Points) != len(batchWindows) {
			t.Fatalf("%s: %d points, want %d", c.Bench, len(c.Points), len(batchWindows))
		}
		base := c.Points[0]
		if base.Window != 0 {
			t.Fatalf("%s: first point window %v, want 0", c.Bench, base.Window)
		}
		if base.Batches != 0 {
			t.Errorf("%s: window 0 formed %d batches; batching off must coalesce nothing",
				c.Bench, base.Batches)
		}
		for i := 1; i < len(c.Points); i++ {
			prev, p := c.Points[i-1], c.Points[i]
			if p.Batches == 0 || p.MeanSize <= 1 {
				t.Errorf("%s at %v: %d batches of mean size %.2f; saturation must coalesce",
					c.Bench, p.Window, p.Batches, p.MeanSize)
			}
			if p.Throughput <= prev.Throughput {
				t.Errorf("%s: saturated throughput %.4g/s at %v does not improve on %.4g/s at %v",
					c.Bench, p.Throughput, p.Window, prev.Throughput, prev.Window)
			}
			if p.LowP99 <= prev.LowP99 {
				t.Errorf("%s: light-load p99 %v at %v does not degrade from %v at %v",
					c.Bench, p.LowP99, p.Window, prev.LowP99, prev.Window)
			}
		}
	}
	out := res.Render()
	if !strings.Contains(out, "widest window") {
		t.Error("render missing the per-bench summary line")
	}
}
