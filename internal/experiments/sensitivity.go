package experiments

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/pcie"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/workload"
)

// Fig16Result is the three-kernel scalability study: Personal Info
// Redaction extended with BERT NER.
type Fig16Result struct {
	// KernelShare[config][n] is the kernel-time fraction of end-to-end
	// runtime (the paper reports DMX restores it to 93.7–97.2%).
	KernelShare map[string]map[int]float64
	// Speedup[n] is DMX over Multi-Axl.
	Speedup map[int]float64
}

// fig16Cell is one concurrency point of the three-kernel study.
type fig16Cell struct {
	baseName, dmxName   string
	baseShare, dmxShare float64
	speedup             float64
}

// Fig16 runs the three-kernel pipeline across the concurrency sweep,
// one concurrency point per sweep worker.
func Fig16() (*Fig16Result, error) {
	cells, err := sweep.Map(Concurrencies, func(_ int, n int) (fig16Cell, error) {
		benches := make([]*workload.Benchmark, n)
		for i := range benches {
			b, err := workload.PIRWithNER(workload.PaperScale)
			if err != nil {
				return fig16Cell{}, err
			}
			benches[i] = b
		}
		base, err := runSystem(dmxsys.MultiAxl, benches)
		if err != nil {
			return fig16Cell{}, err
		}
		dmx, err := runSystem(dmxsys.BumpInTheWire, benches)
		if err != nil {
			return fig16Cell{}, err
		}
		var cell fig16Cell
		cell.baseShare, _, _ = base.ComponentShares()
		cell.dmxShare, _, _ = dmx.ComponentShares()
		cell.baseName = base.Placement.String()
		cell.dmxName = dmx.Placement.String()
		cell.speedup = base.MeanTotal().Seconds() / dmx.MeanTotal().Seconds()
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{
		KernelShare: map[string]map[int]float64{},
		Speedup:     make(map[int]float64),
	}
	for i, n := range Concurrencies {
		c := cells[i]
		for _, e := range []struct {
			name  string
			share float64
		}{{c.baseName, c.baseShare}, {c.dmxName, c.dmxShare}} {
			if res.KernelShare[e.name] == nil {
				res.KernelShare[e.name] = make(map[int]float64)
			}
			res.KernelShare[e.name][n] = e.share
		}
		res.Speedup[n] = c.speedup
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig16Result) Render() string {
	t := newTable("Fig. 16: PIR + NER (three kernels, two restructuring hops)",
		"apps", "kernel share (Multi-Axl)", "kernel share (DMX)", "DMX speedup")
	t.widths = []int{12, 26, 22, 14}
	for _, n := range Concurrencies {
		t.row(fmt.Sprint(n),
			pct(r.KernelShare[dmxsys.MultiAxl.String()][n]),
			pct(r.KernelShare[dmxsys.BumpInTheWire.String()][n]),
			f2(r.Speedup[n])+"x")
	}
	return t.String()
}

// CollectiveSizes is the Fig. 17 accelerator-count sweep.
var CollectiveSizes = []int{4, 8, 16, 32}

// Fig17Result compares broadcast and all-reduce between the baseline and
// DMX across accelerator counts.
type Fig17Result struct {
	Broadcast map[int]float64 // n → speedup
	AllReduce map[int]float64
}

// Fig17 runs the collectives study. The payload mirrors the benchmark
// batch scale; all-reduce adds a DRX-side summation kernel. Every
// (size, configuration, operation) run is an isolated simulation, so all
// of them fan out on the sweep worker pool.
func Fig17() (*Fig17Result, error) {
	const payload = 8 << 20
	type job struct {
		n         int
		useDMX    bool
		allReduce bool
	}
	var jobs []job
	for _, n := range CollectiveSizes {
		// Enumerated in the sequential run order: baseline broadcast, DMX
		// broadcast, baseline all-reduce, DMX all-reduce.
		jobs = append(jobs,
			job{n, false, false}, job{n, true, false},
			job{n, false, true}, job{n, true, true})
	}
	secs, err := sweep.Map(jobs, func(_ int, j job) (float64, error) {
		cs, err := dmxsys.NewCollective(dmxsys.CollectiveConfig{
			Accels: j.n,
			Bytes:  payload,
			Reduce: j.allReduce,
			UseDMX: j.useDMX,
			Sys:    dmxsys.DefaultConfig(dmxsys.BumpInTheWire),
		})
		if err != nil {
			return 0, err
		}
		var d sim.Duration
		if j.allReduce {
			d, err = cs.AllReduce()
		} else {
			d, err = cs.Broadcast()
		}
		if err != nil {
			return 0, err
		}
		return d.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig17Result{
		Broadcast: make(map[int]float64),
		AllReduce: make(map[int]float64),
	}
	for i, n := range CollectiveSizes {
		g := secs[4*i : 4*i+4]
		res.Broadcast[n] = g[0] / g[1]
		res.AllReduce[n] = g[2] / g[3]
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig17Result) Render() string {
	t := newTable("Fig. 17: collective speedup, DMX over CPU-mediated baseline",
		"accelerators", "broadcast", "all-reduce")
	for _, n := range CollectiveSizes {
		t.row(fmt.Sprint(n), f2(r.Broadcast[n])+"x", f2(r.AllReduce[n])+"x")
	}
	return t.String()
}

// LaneSweep is the Fig. 18 RE-lane axis.
var LaneSweep = []int{32, 64, 128, 256}

// Fig18Result is the DRX compute-resource sensitivity.
type Fig18Result struct {
	// Speedup[lanes] = Multi-Axl mean latency / DMX mean latency with a
	// DRX of that many RE lanes (10 concurrent apps, as a loaded point).
	Speedup map[int]float64
}

// Fig18 sweeps the RE lane count. The Multi-Axl baseline and the four
// lane points are five independent simulations run on the worker pool.
func Fig18() (*Fig18Result, error) {
	const napps = 10
	benches, err := suite(napps)
	if err != nil {
		return nil, err
	}
	// Job 0 is the baseline; jobs 1..len(LaneSweep) are the lane points.
	lats, err := sweep.Map(make([]struct{}, 1+len(LaneSweep)), func(i int, _ struct{}) (float64, error) {
		if i == 0 {
			base, err := runSystem(dmxsys.MultiAxl, benches)
			if err != nil {
				return 0, err
			}
			return base.MeanTotal().Seconds(), nil
		}
		cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
		cfg.DRX = cfg.DRX.WithLanes(LaneSweep[i-1])
		rep, err := runSystemCfg(cfg, benches)
		if err != nil {
			return 0, err
		}
		return rep.MeanTotal().Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig18Result{Speedup: make(map[int]float64)}
	for i, lanes := range LaneSweep {
		res.Speedup[lanes] = lats[0] / lats[1+i]
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig18Result) Render() string {
	t := newTable("Fig. 18: DMX speedup vs DRX RE lanes (10 apps)",
		"RE lanes", "speedup")
	for _, lanes := range LaneSweep {
		t.row(fmt.Sprint(lanes), f2(r.Speedup[lanes])+"x")
	}
	return t.String()
}

// GenSweep is the Fig. 19 PCIe-generation axis.
var GenSweep = []pcie.Gen{pcie.Gen3, pcie.Gen4, pcie.Gen5}

// Fig19Result is the interconnect-generation sensitivity.
type Fig19Result struct {
	// Speedup[gen][n] = Multi-Axl/DMX on a fabric of that generation.
	Speedup map[pcie.Gen]map[int]float64
}

// Fig19 sweeps the PCIe generation for both baseline and DMX, fanning
// the (generation × concurrency) grid out on the worker pool.
func Fig19() (*Fig19Result, error) {
	type job struct {
		g pcie.Gen
		n int
	}
	var jobs []job
	for _, g := range GenSweep {
		for _, n := range Concurrencies {
			jobs = append(jobs, job{g, n})
		}
	}
	vals, err := sweep.Map(jobs, func(_ int, j job) (float64, error) {
		benches, err := suite(j.n)
		if err != nil {
			return 0, err
		}
		baseCfg := dmxsys.DefaultConfig(dmxsys.MultiAxl)
		baseCfg.Gen = j.g
		// Newer platforms also expose more root-port lanes (the
		// paper's second effect: baselines reduce their CPU-link
		// contention on Gen4/Gen5 hosts).
		if j.g != pcie.Gen3 {
			baseCfg.UplinkLanes = 16
		}
		base, err := runSystemCfg(baseCfg, benches)
		if err != nil {
			return 0, err
		}
		dmxCfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
		dmxCfg.Gen = j.g
		if j.g != pcie.Gen3 {
			dmxCfg.UplinkLanes = 16
		}
		rep, err := runSystemCfg(dmxCfg, benches)
		if err != nil {
			return 0, err
		}
		return base.MeanTotal().Seconds() / rep.MeanTotal().Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig19Result{Speedup: make(map[pcie.Gen]map[int]float64)}
	for i, j := range jobs {
		if res.Speedup[j.g] == nil {
			res.Speedup[j.g] = make(map[int]float64)
		}
		res.Speedup[j.g][j.n] = vals[i]
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig19Result) Render() string {
	t := newTable("Fig. 19: DMX speedup across PCIe generations",
		"generation", "1 app", "5 apps", "10 apps", "15 apps")
	for _, g := range GenSweep {
		cells := []string{g.String()}
		for _, n := range Concurrencies {
			cells = append(cells, f2(r.Speedup[g][n])+"x")
		}
		t.row(cells...)
	}
	return t.String()
}
