package experiments

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/pcie"
	"dmx/internal/workload"
)

// Fig16Result is the three-kernel scalability study: Personal Info
// Redaction extended with BERT NER.
type Fig16Result struct {
	// KernelShare[config][n] is the kernel-time fraction of end-to-end
	// runtime (the paper reports DMX restores it to 93.7–97.2%).
	KernelShare map[string]map[int]float64
	// Speedup[n] is DMX over Multi-Axl.
	Speedup map[int]float64
}

// Fig16 runs the three-kernel pipeline across the concurrency sweep.
func Fig16() (*Fig16Result, error) {
	res := &Fig16Result{
		KernelShare: map[string]map[int]float64{},
		Speedup:     make(map[int]float64),
	}
	for _, n := range Concurrencies {
		benches := make([]*workload.Benchmark, n)
		for i := range benches {
			b, err := workload.PIRWithNER(workload.PaperScale)
			if err != nil {
				return nil, err
			}
			benches[i] = b
		}
		base, err := runSystem(dmxsys.MultiAxl, benches)
		if err != nil {
			return nil, err
		}
		dmx, err := runSystem(dmxsys.BumpInTheWire, benches)
		if err != nil {
			return nil, err
		}
		for _, rep := range []dmxsys.RunReport{base, dmx} {
			k, _, _ := rep.ComponentShares()
			name := rep.Placement.String()
			if res.KernelShare[name] == nil {
				res.KernelShare[name] = make(map[int]float64)
			}
			res.KernelShare[name][n] = k
		}
		res.Speedup[n] = base.MeanTotal().Seconds() / dmx.MeanTotal().Seconds()
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig16Result) Render() string {
	t := newTable("Fig. 16: PIR + NER (three kernels, two restructuring hops)",
		"apps", "kernel share (Multi-Axl)", "kernel share (DMX)", "DMX speedup")
	t.widths = []int{12, 26, 22, 14}
	for _, n := range Concurrencies {
		t.row(fmt.Sprint(n),
			pct(r.KernelShare[dmxsys.MultiAxl.String()][n]),
			pct(r.KernelShare[dmxsys.BumpInTheWire.String()][n]),
			f2(r.Speedup[n])+"x")
	}
	return t.String()
}

// CollectiveSizes is the Fig. 17 accelerator-count sweep.
var CollectiveSizes = []int{4, 8, 16, 32}

// Fig17Result compares broadcast and all-reduce between the baseline and
// DMX across accelerator counts.
type Fig17Result struct {
	Broadcast map[int]float64 // n → speedup
	AllReduce map[int]float64
}

// Fig17 runs the collectives study. The payload mirrors the benchmark
// batch scale; all-reduce adds a DRX-side summation kernel.
func Fig17() (*Fig17Result, error) {
	res := &Fig17Result{
		Broadcast: make(map[int]float64),
		AllReduce: make(map[int]float64),
	}
	const payload = 8 << 20
	for _, n := range CollectiveSizes {
		run := func(useDMX bool, allReduce bool) (float64, error) {
			cs, err := dmxsys.NewCollective(dmxsys.CollectiveConfig{
				Accels: n,
				Bytes:  payload,
				Reduce: allReduce,
				UseDMX: useDMX,
				Sys:    dmxsys.DefaultConfig(dmxsys.BumpInTheWire),
			})
			if err != nil {
				return 0, err
			}
			if allReduce {
				return cs.AllReduce().Seconds(), nil
			}
			return cs.Broadcast().Seconds(), nil
		}
		bb, err := run(false, false)
		if err != nil {
			return nil, err
		}
		bd, err := run(true, false)
		if err != nil {
			return nil, err
		}
		res.Broadcast[n] = bb / bd
		ab, err := run(false, true)
		if err != nil {
			return nil, err
		}
		ad, err := run(true, true)
		if err != nil {
			return nil, err
		}
		res.AllReduce[n] = ab / ad
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig17Result) Render() string {
	t := newTable("Fig. 17: collective speedup, DMX over CPU-mediated baseline",
		"accelerators", "broadcast", "all-reduce")
	for _, n := range CollectiveSizes {
		t.row(fmt.Sprint(n), f2(r.Broadcast[n])+"x", f2(r.AllReduce[n])+"x")
	}
	return t.String()
}

// LaneSweep is the Fig. 18 RE-lane axis.
var LaneSweep = []int{32, 64, 128, 256}

// Fig18Result is the DRX compute-resource sensitivity.
type Fig18Result struct {
	// Speedup[lanes] = Multi-Axl mean latency / DMX mean latency with a
	// DRX of that many RE lanes (10 concurrent apps, as a loaded point).
	Speedup map[int]float64
}

// Fig18 sweeps the RE lane count.
func Fig18() (*Fig18Result, error) {
	const napps = 10
	benches, err := suite(napps)
	if err != nil {
		return nil, err
	}
	base, err := runSystem(dmxsys.MultiAxl, benches)
	if err != nil {
		return nil, err
	}
	res := &Fig18Result{Speedup: make(map[int]float64)}
	for _, lanes := range LaneSweep {
		cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
		cfg.DRX = cfg.DRX.WithLanes(lanes)
		rep, err := runSystemCfg(cfg, benches)
		if err != nil {
			return nil, err
		}
		res.Speedup[lanes] = base.MeanTotal().Seconds() / rep.MeanTotal().Seconds()
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig18Result) Render() string {
	t := newTable("Fig. 18: DMX speedup vs DRX RE lanes (10 apps)",
		"RE lanes", "speedup")
	for _, lanes := range LaneSweep {
		t.row(fmt.Sprint(lanes), f2(r.Speedup[lanes])+"x")
	}
	return t.String()
}

// GenSweep is the Fig. 19 PCIe-generation axis.
var GenSweep = []pcie.Gen{pcie.Gen3, pcie.Gen4, pcie.Gen5}

// Fig19Result is the interconnect-generation sensitivity.
type Fig19Result struct {
	// Speedup[gen][n] = Multi-Axl/DMX on a fabric of that generation.
	Speedup map[pcie.Gen]map[int]float64
}

// Fig19 sweeps the PCIe generation for both baseline and DMX.
func Fig19() (*Fig19Result, error) {
	res := &Fig19Result{Speedup: make(map[pcie.Gen]map[int]float64)}
	for _, g := range GenSweep {
		res.Speedup[g] = make(map[int]float64)
		for _, n := range Concurrencies {
			benches, err := suite(n)
			if err != nil {
				return nil, err
			}
			baseCfg := dmxsys.DefaultConfig(dmxsys.MultiAxl)
			baseCfg.Gen = g
			// Newer platforms also expose more root-port lanes (the
			// paper's second effect: baselines reduce their CPU-link
			// contention on Gen4/Gen5 hosts).
			if g != pcie.Gen3 {
				baseCfg.UplinkLanes = 16
			}
			base, err := runSystemCfg(baseCfg, benches)
			if err != nil {
				return nil, err
			}
			dmxCfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
			dmxCfg.Gen = g
			if g != pcie.Gen3 {
				dmxCfg.UplinkLanes = 16
			}
			rep, err := runSystemCfg(dmxCfg, benches)
			if err != nil {
				return nil, err
			}
			res.Speedup[g][n] = base.MeanTotal().Seconds() / rep.MeanTotal().Seconds()
		}
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig19Result) Render() string {
	t := newTable("Fig. 19: DMX speedup across PCIe generations",
		"generation", "1 app", "5 apps", "10 apps", "15 apps")
	for _, g := range GenSweep {
		cells := []string{g.String()}
		for _, n := range Concurrencies {
			cells = append(cells, f2(r.Speedup[g][n])+"x")
		}
		t.row(cells...)
	}
	return t.String()
}
