package experiments

import (
	"testing"

	"dmx/internal/sweep"
)

// TestClusterCurveShape pins the scaling figure's shape for every
// benchmark: near-linear gains while replicas are the bottleneck, a
// visible bend at 8 hosts where the core link (provisioned for ~5.5
// hosts' payload) saturates, and monotone non-decreasing throughput
// throughout. Thresholds are loose enough to survive timing-model
// tuning but tight enough to catch a router or fabric regression that
// collapses the fleet onto one host.
func TestClusterCurveShape(t *testing.T) {
	res, err := Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) == 0 {
		t.Fatal("no curves")
	}
	for _, c := range res.Curves {
		if len(c.Points) != len(clusterHosts) {
			t.Fatalf("%s: %d points, want %d", c.Bench, len(c.Points), len(clusterHosts))
		}
		thr := make(map[int]float64, len(c.Points))
		for _, p := range c.Points {
			if p.Completed != clusterRequests {
				t.Errorf("%s @%d hosts: %d completed, want %d (overdriven open loop must not drop requests)",
					c.Bench, p.Hosts, p.Completed, clusterRequests)
			}
			if p.Throughput <= 0 {
				t.Fatalf("%s @%d hosts: non-positive throughput", c.Bench, p.Hosts)
			}
			thr[p.Hosts] = p.Throughput
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Throughput < c.Points[i-1].Throughput {
				t.Errorf("%s: throughput not monotone: %d hosts %.4g/s < %d hosts %.4g/s",
					c.Bench, c.Points[i].Hosts, c.Points[i].Throughput,
					c.Points[i-1].Hosts, c.Points[i-1].Throughput)
			}
		}
		if s := thr[2] / thr[1]; s < 1.6 {
			t.Errorf("%s: 2-host speedup %.2fx, want >= 1.6x (near-linear)", c.Bench, s)
		}
		if s := thr[4] / thr[1]; s < 2.5 {
			t.Errorf("%s: 4-host speedup %.2fx, want >= 2.5x (near-linear)", c.Bench, s)
		}
		if s := thr[8] / thr[1]; s >= 6.5 {
			t.Errorf("%s: 8-host speedup %.2fx, want < 6.5x (core link provisioned for ~%.1f hosts must bend the curve)",
				c.Bench, s, clusterCoreHosts)
		}
	}
}

// TestClusterShardsInvariance is the conservative-parallel gate at the
// experiment level: the rendered scaling figure must be byte-identical
// whether each fleet runs sequentially or sharded across event lanes —
// sharding buys wall-clock, never different physics.
func TestClusterShardsInvariance(t *testing.T) {
	prev := SetClusterShards(1)
	defer SetClusterShards(prev)
	seqRes, err := Cluster()
	if err != nil {
		t.Fatalf("sequential Cluster: %v", err)
	}
	seq := seqRes.Render()
	SetClusterShards(8)
	shRes, err := Cluster()
	if err != nil {
		t.Fatalf("sharded Cluster: %v", err)
	}
	if sh := shRes.Render(); sh != seq {
		t.Errorf("sharded rendering differs from sequential:\n--- sequential ---\n%s\n--- shards=8 ---\n%s", seq, sh)
	}
}

// TestClusterDeterministicAcrossWorkerCounts is the fleet-executor
// gate: because each point is one shared-engine simulation, the
// rendered figure must be byte-identical whether the sweep pool runs
// its (benchmark × hosts) cells on 1, 2, or 8 workers.
func TestClusterDeterministicAcrossWorkerCounts(t *testing.T) {
	prev := sweep.SetWorkers(1)
	defer sweep.SetWorkers(prev)

	seqRes, err := Cluster()
	if err != nil {
		t.Fatalf("sequential Cluster: %v", err)
	}
	seq := seqRes.Render()

	for _, workers := range []int{2, 8} {
		sweep.SetWorkers(workers)
		parRes, err := Cluster()
		if err != nil {
			t.Fatalf("Cluster with %d workers: %v", workers, err)
		}
		if par := parRes.Render(); par != seq {
			t.Errorf("%d-worker rendering differs from sequential:\n--- sequential ---\n%s\n--- %d workers ---\n%s",
				workers, seq, workers, par)
		}
	}
}
