package experiments

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/sim"
	"dmx/internal/sweep"
	"dmx/internal/traffic"
	"dmx/internal/workload"
)

// loadFractions is the offered-load axis of the serving figure, as
// fractions of each benchmark's measured capacity bound. Points below
// 1.0 show the flat open-system latency; points above show queueing
// growth and the throughput plateau.
var loadFractions = []float64{0.25, 0.50, 0.75, 0.90, 1.10, 1.50, 3.00}

// loadRequests is the per-point request count: enough completions at the
// bottleneck pace to measure a steady-state rate, small enough that the
// full (benchmark x fraction) sweep stays interactive.
const loadRequests = 64

// LoadPoint is one cell of the latency-vs-offered-load curve.
type LoadPoint struct {
	// Fraction is the offered load relative to the capacity bound;
	// Offered and Achieved are absolute rates in requests per second.
	Fraction float64
	Offered  float64
	Achieved float64
	Mean     sim.Duration
	P99      sim.Duration
}

// LoadCurve is one benchmark's serving behavior under open-loop load on
// the bump-in-the-wire (DMX) placement.
type LoadCurve struct {
	Bench string
	// Capacity is the AppReport.Throughput bound (inverse of the
	// measured per-request bottleneck occupancy); Bottleneck names the
	// gating resource.
	Capacity   float64
	Bottleneck string
	Points     []LoadPoint
	// SaturationErr is the relative gap between the achieved rate at the
	// highest offered load and the capacity bound — the figure's
	// "plateau matches the analytical bound" check.
	SaturationErr float64
}

// LoadResult is the serving experiment: latency vs offered load per
// benchmark, one curve each.
type LoadResult struct {
	Curves []LoadCurve
}

// loadJob is one (benchmark, fraction) sweep cell.
type loadJob struct {
	bench    *workload.Benchmark
	capacity float64
	fraction float64
}

// Load runs the serving experiment: for every Table I benchmark on the
// bump-in-the-wire placement, measure the capacity bound from one closed
// run, then sweep open-loop offered load across loadFractions and record
// the latency distribution and achieved rate at each point. The
// (benchmark x fraction) cells are independent simulations and run on
// the sweep worker pool.
func Load() (*LoadResult, error) {
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	res := &LoadResult{Curves: make([]LoadCurve, len(benches))}
	var jobs []loadJob
	for i, b := range benches {
		rep, err := runSystem(dmxsys.BumpInTheWire, benches[i:i+1])
		if err != nil {
			return nil, err
		}
		ar := rep.Apps[0]
		if ar.Bottleneck <= 0 {
			return nil, fmt.Errorf("experiments: %s recorded no bottleneck occupancy", b.Name)
		}
		res.Curves[i] = LoadCurve{
			Bench:      b.Name,
			Capacity:   ar.Throughput(len(b.Pipeline.Stages)),
			Bottleneck: ar.BottleneckResource,
		}
		for _, f := range loadFractions {
			jobs = append(jobs, loadJob{bench: b, capacity: res.Curves[i].Capacity, fraction: f})
		}
	}
	points, err := sweep.Map(jobs, func(_ int, j loadJob) (LoadPoint, error) {
		cfg := dmxsys.DefaultConfig(dmxsys.BumpInTheWire)
		sys, err := dmxsys.New(cfg, []*dmxsys.Pipeline{j.bench.Pipeline})
		if err != nil {
			return LoadPoint{}, err
		}
		rate := j.fraction * j.capacity
		lr, err := sys.RunLoad(traffic.Spec{
			Arrival:  traffic.OpenLoop,
			Rate:     rate,
			Requests: loadRequests,
		})
		if err != nil {
			return LoadPoint{}, err
		}
		al := lr.PerApp[0]
		return LoadPoint{
			Fraction: j.fraction,
			Offered:  rate,
			Achieved: al.Achieved,
			Mean:     al.Mean,
			P99:      al.P99,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range res.Curves {
		c := &res.Curves[i]
		c.Points = points[i*len(loadFractions) : (i+1)*len(loadFractions)]
		last := c.Points[len(c.Points)-1]
		c.SaturationErr = (last.Achieved - c.Capacity) / c.Capacity
		if c.SaturationErr < 0 {
			c.SaturationErr = -c.SaturationErr
		}
	}
	return res, nil
}

// Render emits one table per benchmark plus the saturation check line.
func (r *LoadResult) Render() string {
	t := newTable("Serving: latency vs offered load (open-loop, Bump-in-the-Wire)",
		"", "load", "offered", "achieved", "mean", "p99")
	for _, c := range r.Curves {
		t.rowf("%s", c.Bench)
		for _, p := range c.Points {
			t.row("",
				fmt.Sprintf("%.2fx", p.Fraction),
				fmt.Sprintf("%.4g/s", p.Offered),
				fmt.Sprintf("%.4g/s", p.Achieved),
				p.Mean.String(),
				p.P99.String())
		}
		t.rowf("  capacity bound %.4g req/s (%s); plateau within %.2f%% of bound",
			c.Capacity, c.Bottleneck, 100*c.SaturationErr)
	}
	return t.String()
}
