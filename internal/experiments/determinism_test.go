package experiments

import (
	"testing"

	"dmx/internal/sweep"
)

// TestFig14DeterministicAcrossWorkerCounts is the parallel-harness
// regression gate: the placement study rendered with the sweep pool
// forced sequential must be byte-identical to renderings produced with
// a concurrent pool, and two concurrent runs must agree with each
// other. Fig14 exercises the full path — suite construction, nbJobs
// enumeration, per-cell simulation fan-out and the ordered fold.
func TestFig14DeterministicAcrossWorkerCounts(t *testing.T) {
	prev := sweep.SetWorkers(1)
	defer sweep.SetWorkers(prev)

	seqRes, err := Fig14()
	if err != nil {
		t.Fatalf("sequential Fig14: %v", err)
	}
	seq := seqRes.Render()

	sweep.SetWorkers(4)
	par1Res, err := Fig14()
	if err != nil {
		t.Fatalf("parallel Fig14 (run 1): %v", err)
	}
	par2Res, err := Fig14()
	if err != nil {
		t.Fatalf("parallel Fig14 (run 2): %v", err)
	}
	par1, par2 := par1Res.Render(), par2Res.Render()

	if par1 != seq {
		t.Errorf("parallel rendering differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par1)
	}
	if par2 != par1 {
		t.Errorf("two parallel runs disagree:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", par1, par2)
	}
}

// TestFig17DeterministicAcrossWorkerCounts covers the collectives
// sweep, whose jobs carry no shared benchmark state at all.
func TestFig17DeterministicAcrossWorkerCounts(t *testing.T) {
	prev := sweep.SetWorkers(1)
	defer sweep.SetWorkers(prev)

	seqRes, err := Fig17()
	if err != nil {
		t.Fatalf("sequential Fig17: %v", err)
	}
	sweep.SetWorkers(4)
	parRes, err := Fig17()
	if err != nil {
		t.Fatalf("parallel Fig17: %v", err)
	}
	if seq, par := seqRes.Render(), parRes.Render(); par != seq {
		t.Errorf("parallel rendering differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
