package experiments

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/workload"
)

// placements under study in Figs. 14/15.
var placementSweep = []dmxsys.Placement{
	dmxsys.Integrated, dmxsys.Standalone, dmxsys.BumpInTheWire, dmxsys.PCIeIntegrated,
}

// Fig14Result compares latency speedup (over Multi-Axl) across DRX
// placements and concurrency.
type Fig14Result struct {
	// Speedup[placement][n] = baseline mean latency / placement mean.
	Speedup map[dmxsys.Placement]map[int]float64
}

// Fig14 runs the placement study: per benchmark, n homogeneous
// instances under each placement; the reported number is the geometric
// mean of per-benchmark speedups over the Multi-Axl baseline.
func Fig14() (*Fig14Result, error) {
	res := &Fig14Result{Speedup: make(map[dmxsys.Placement]map[int]float64)}
	for _, p := range placementSweep {
		res.Speedup[p] = make(map[int]float64)
	}
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	for _, n := range Concurrencies {
		per := make(map[dmxsys.Placement][]float64)
		for _, bench := range benches {
			copies := make([]*workload.Benchmark, n)
			for i := range copies {
				copies[i] = bench
			}
			base, err := runSystem(dmxsys.MultiAxl, copies)
			if err != nil {
				return nil, err
			}
			for _, p := range placementSweep {
				rep, err := runSystem(p, copies)
				if err != nil {
					return nil, err
				}
				per[p] = append(per[p], base.MeanTotal().Seconds()/rep.MeanTotal().Seconds())
			}
		}
		for _, p := range placementSweep {
			res.Speedup[p][n] = geomean(per[p])
		}
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig14Result) Render() string {
	t := newTable("Fig. 14: latency speedup over Multi-Axl by DRX placement",
		"placement", "1 app", "5 apps", "10 apps", "15 apps")
	for _, p := range placementSweep {
		cells := []string{p.String()}
		for _, n := range Concurrencies {
			cells = append(cells, f2(r.Speedup[p][n])+"x")
		}
		t.row(cells...)
	}
	return t.String()
}

// Fig15Result compares system-wide energy reduction (over Multi-Axl)
// across placements. PCIe-Integrated is excluded, as in the paper.
type Fig15Result struct {
	Reduction map[dmxsys.Placement]map[int]float64
}

// Fig15 runs the energy study.
func Fig15() (*Fig15Result, error) {
	sweep := []dmxsys.Placement{dmxsys.Integrated, dmxsys.Standalone, dmxsys.BumpInTheWire}
	res := &Fig15Result{Reduction: make(map[dmxsys.Placement]map[int]float64)}
	for _, p := range sweep {
		res.Reduction[p] = make(map[int]float64)
	}
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	for _, n := range Concurrencies {
		per := make(map[dmxsys.Placement][]float64)
		for _, bench := range benches {
			copies := make([]*workload.Benchmark, n)
			for i := range copies {
				copies[i] = bench
			}
			base, err := runSystem(dmxsys.MultiAxl, copies)
			if err != nil {
				return nil, err
			}
			for _, p := range sweep {
				rep, err := runSystem(p, copies)
				if err != nil {
					return nil, err
				}
				per[p] = append(per[p], base.EnergyJ/rep.EnergyJ)
			}
		}
		for _, p := range sweep {
			res.Reduction[p][n] = geomean(per[p])
		}
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig15Result) Render() string {
	t := newTable("Fig. 15: energy reduction over Multi-Axl by DRX placement",
		"placement", "1 app", "5 apps", "10 apps", "15 apps")
	for _, p := range []dmxsys.Placement{dmxsys.Integrated, dmxsys.Standalone, dmxsys.BumpInTheWire} {
		cells := []string{p.String()}
		for _, n := range Concurrencies {
			cells = append(cells, fmt.Sprintf("%.2fx", r.Reduction[p][n]))
		}
		t.row(cells...)
	}
	t.rowf("(PCIe-Integrated is not evaluated for energy, per the paper)")
	return t.String()
}
