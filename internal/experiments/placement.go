package experiments

import (
	"fmt"

	"dmx/internal/dmxsys"
	"dmx/internal/sweep"
)

// placements under study in Figs. 14/15.
var placementSweep = []dmxsys.Placement{
	dmxsys.Integrated, dmxsys.Standalone, dmxsys.BumpInTheWire, dmxsys.PCIeIntegrated,
}

// placementCell runs one (concurrency, benchmark) cell: the Multi-Axl
// baseline plus every placement under study, returning the per-placement
// ratio of the given metric (baseline over placement).
func placementCell(j nbJob, sweepP []dmxsys.Placement, metric func(dmxsys.RunReport) float64) ([]float64, error) {
	copies := homogeneous(j.bench, j.n)
	base, err := runSystem(dmxsys.MultiAxl, copies)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(sweepP))
	for pi, p := range sweepP {
		rep, err := runSystem(p, copies)
		if err != nil {
			return nil, err
		}
		out[pi] = metric(base) / metric(rep)
	}
	return out, nil
}

// foldPlacements geomeans per-benchmark ratios into [placement][n] maps,
// preserving the sequential benchmark order within each concurrency.
func foldPlacements(jobs []nbJob, cells [][]float64, sweepP []dmxsys.Placement, nb int) map[dmxsys.Placement]map[int]float64 {
	out := make(map[dmxsys.Placement]map[int]float64, len(sweepP))
	for _, p := range sweepP {
		out[p] = make(map[int]float64, len(Concurrencies))
	}
	for base := 0; base < len(jobs); base += nb {
		n := jobs[base].n
		for pi, p := range sweepP {
			per := make([]float64, nb)
			for i, cell := range cells[base : base+nb] {
				per[i] = cell[pi]
			}
			out[p][n] = geomean(per)
		}
	}
	return out
}

// Fig14Result compares latency speedup (over Multi-Axl) across DRX
// placements and concurrency.
type Fig14Result struct {
	// Speedup[placement][n] = baseline mean latency / placement mean.
	Speedup map[dmxsys.Placement]map[int]float64
}

// Fig14 runs the placement study: per benchmark, n homogeneous
// instances under each placement; the reported number is the geometric
// mean of per-benchmark speedups over the Multi-Axl baseline. The
// (concurrency × benchmark) cells run on the sweep worker pool.
func Fig14() (*Fig14Result, error) {
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	jobs := nbJobs(benches)
	cells, err := sweep.Map(jobs, func(_ int, j nbJob) ([]float64, error) {
		return placementCell(j, placementSweep, func(rep dmxsys.RunReport) float64 {
			return rep.MeanTotal().Seconds()
		})
	})
	if err != nil {
		return nil, err
	}
	return &Fig14Result{Speedup: foldPlacements(jobs, cells, placementSweep, len(benches))}, nil
}

// Render implements the experiment result interface.
func (r *Fig14Result) Render() string {
	t := newTable("Fig. 14: latency speedup over Multi-Axl by DRX placement",
		"placement", "1 app", "5 apps", "10 apps", "15 apps")
	for _, p := range placementSweep {
		cells := []string{p.String()}
		for _, n := range Concurrencies {
			cells = append(cells, f2(r.Speedup[p][n])+"x")
		}
		t.row(cells...)
	}
	return t.String()
}

// Fig15Result compares system-wide energy reduction (over Multi-Axl)
// across placements. PCIe-Integrated is excluded, as in the paper.
type Fig15Result struct {
	Reduction map[dmxsys.Placement]map[int]float64
}

// Fig15 runs the energy study.
func Fig15() (*Fig15Result, error) {
	sweepP := []dmxsys.Placement{dmxsys.Integrated, dmxsys.Standalone, dmxsys.BumpInTheWire}
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	jobs := nbJobs(benches)
	cells, err := sweep.Map(jobs, func(_ int, j nbJob) ([]float64, error) {
		return placementCell(j, sweepP, func(rep dmxsys.RunReport) float64 {
			return rep.EnergyJ
		})
	})
	if err != nil {
		return nil, err
	}
	return &Fig15Result{Reduction: foldPlacements(jobs, cells, sweepP, len(benches))}, nil
}

// Render implements the experiment result interface.
func (r *Fig15Result) Render() string {
	t := newTable("Fig. 15: energy reduction over Multi-Axl by DRX placement",
		"placement", "1 app", "5 apps", "10 apps", "15 apps")
	for _, p := range []dmxsys.Placement{dmxsys.Integrated, dmxsys.Standalone, dmxsys.BumpInTheWire} {
		cells := []string{p.String()}
		for _, n := range Concurrencies {
			cells = append(cells, fmt.Sprintf("%.2fx", r.Reduction[p][n]))
		}
		t.row(cells...)
	}
	t.rowf("(PCIe-Integrated is not evaluated for energy, per the paper)")
	return t.String()
}
