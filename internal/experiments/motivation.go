package experiments

import (
	"fmt"

	"dmx/internal/cpu"
	"dmx/internal/dmxsys"
	"dmx/internal/sweep"
)

// Table1Result inventories the five benchmarks (Table I).
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one benchmark's line.
type Table1Row struct {
	Benchmark     string
	Kernel1       string
	Restructuring string
	Kernel2       string
	BatchMB       float64
}

// Table1 builds the benchmark inventory from the live workload suite.
func Table1() (*Table1Result, error) {
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{}
	for _, b := range benches {
		p := b.Pipeline
		row := Table1Row{
			Benchmark:     b.Name,
			Kernel1:       p.Stages[0].Accel.Name,
			Restructuring: p.Hops[0].Kernel.Name,
			Kernel2:       p.Stages[1].Accel.Name,
			BatchMB:       float64(p.Hops[0].InBytes) / (1 << 20),
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render implements the common experiment result interface.
func (r *Table1Result) Render() string {
	t := newTable("Table I: end-to-end benchmarks",
		"benchmark", "kernel 1", "restructuring", "kernel 2", "batch (MB)")
	for _, row := range r.Rows {
		t.row(row.Benchmark, row.Kernel1, row.Restructuring, row.Kernel2, f1(row.BatchMB))
	}
	return t.String()
}

// Fig3Result carries the motivation study: runtime breakdowns of the
// All-CPU and Multi-Axl configurations across the concurrency sweep
// (Fig. 3a) and the end-to-end vs per-kernel speedup gap (Fig. 3b).
type Fig3Result struct {
	Rows []Fig3Row
	// PerKernelSpeedup is the geometric-mean speedup the accelerators
	// deliver on kernels alone (the paper's 6.5×).
	PerKernelSpeedup float64
	// EndToEnd holds Multi-Axl vs All-CPU speedups per concurrency.
	EndToEnd map[int]float64
}

// Fig3Row is one (config, concurrency) breakdown.
type Fig3Row struct {
	Config          string
	Apps            int
	KernelShare     float64
	RestructShare   float64
	MovementShare   float64
	MeanLatencySecs float64
}

// Fig3 runs the motivation experiment.
func Fig3() (*Fig3Result, error) {
	res := &Fig3Result{EndToEnd: make(map[int]float64)}
	var speedups []float64
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	for _, b := range benches {
		for _, st := range b.Pipeline.Stages {
			speedups = append(speedups, st.Accel.Speedup)
		}
	}
	res.PerKernelSpeedup = geomean(speedups)

	rows, ratios, err := breakdownSweep(dmxsys.AllCPU, dmxsys.MultiAxl)
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.EndToEnd = ratios
	return res, nil
}

// breakdownCell is one (concurrency, benchmark) measurement under the
// two compared placements: component shares and mean latency for each.
type breakdownCell struct {
	k, re, mv, lat [2]float64
}

// breakdownSweep runs every (concurrency × benchmark) cell of the
// Concurrencies sweep homogeneously under two configurations on the
// sweep worker pool, then folds per concurrency: component shares
// averaged across benchmarks, mean latency and the A-over-B latency
// ratio geomeaned across benchmarks. Rows come out grouped by
// concurrency, configuration A before B — the paper's bar order.
func breakdownSweep(a, bCfg dmxsys.Placement) ([]Fig3Row, map[int]float64, error) {
	benches, err := suite(5)
	if err != nil {
		return nil, nil, err
	}
	jobs := nbJobs(benches)
	cells, err := sweep.Map(jobs, func(_ int, j nbJob) (breakdownCell, error) {
		copies := homogeneous(j.bench, j.n)
		var cell breakdownCell
		for pi, p := range []dmxsys.Placement{a, bCfg} {
			rep, err := runSystem(p, copies)
			if err != nil {
				return cell, err
			}
			cell.k[pi], cell.re[pi], cell.mv[pi] = rep.ComponentShares()
			cell.lat[pi] = rep.MeanTotal().Seconds()
		}
		return cell, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []Fig3Row
	ratios := make(map[int]float64, len(Concurrencies))
	nb := len(benches)
	for base := 0; base < len(jobs); base += nb {
		n := jobs[base].n
		group := cells[base : base+nb]
		for pi, p := range []dmxsys.Placement{a, bCfg} {
			k := make([]float64, nb)
			re := make([]float64, nb)
			mv := make([]float64, nb)
			lat := make([]float64, nb)
			for i, c := range group {
				k[i], re[i], mv[i], lat[i] = c.k[pi], c.re[pi], c.mv[pi], c.lat[pi]
			}
			rows = append(rows, Fig3Row{
				Config:          p.String(),
				Apps:            n,
				KernelShare:     mean(k),
				RestructShare:   mean(re),
				MovementShare:   mean(mv),
				MeanLatencySecs: geomean(lat),
			})
		}
		rr := make([]float64, nb)
		for i, c := range group {
			rr[i] = c.lat[0] / c.lat[1]
		}
		ratios[n] = geomean(rr)
	}
	return rows, ratios, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Render implements the experiment result interface.
func (r *Fig3Result) Render() string {
	t := newTable("Fig. 3(a): runtime breakdown, All-CPU vs Multi-Axl",
		"config", "apps", "kernel", "restructure", "movement", "mean latency")
	for _, row := range r.Rows {
		t.row(row.Config, fmt.Sprint(row.Apps), pct(row.KernelShare),
			pct(row.RestructShare), pct(row.MovementShare),
			fmt.Sprintf("%.2f ms", row.MeanLatencySecs*1e3))
	}
	t.rowf("\nFig. 3(b): per-kernel accelerator speedup (geomean) = %.1fx", r.PerKernelSpeedup)
	for _, n := range Concurrencies {
		if v, ok := r.EndToEnd[n]; ok {
			t.rowf("  end-to-end Multi-Axl speedup over All-CPU, %2d apps = %.2fx", n, v)
		}
	}
	return t.String()
}

// Fig5Result is the restructuring characterization (top-down + MPKI).
type Fig5Result struct {
	Profiles []cpu.Profile
}

// Fig5 characterizes each benchmark's restructuring kernel on the host
// CPU model.
func Fig5() (*Fig5Result, error) {
	benches, err := suite(5)
	if err != nil {
		return nil, err
	}
	m := cpu.DefaultModel()
	res := &Fig5Result{}
	for _, b := range benches {
		p := m.Characterize(b.Pipeline.Hops[0].Kernel)
		p.Kernel = b.Name
		res.Profiles = append(res.Profiles, p)
	}
	return res, nil
}

// Render implements the experiment result interface.
func (r *Fig5Result) Render() string {
	t := newTable("Fig. 5: top-down breakdown of data restructuring on the host CPU",
		"benchmark", "frontend", "bad-spec", "BE-core", "BE-mem", "retiring", "L1I", "L1D", "L2")
	for _, p := range r.Profiles {
		t.row(p.Kernel,
			fmt.Sprintf("%.1f%%", p.FrontendPct), fmt.Sprintf("%.1f%%", p.BadSpecPct),
			fmt.Sprintf("%.1f%%", p.BackendCorePct), fmt.Sprintf("%.1f%%", p.BackendMemPct),
			fmt.Sprintf("%.1f%%", p.RetiringPct),
			f1(p.L1IMPKI), f1(p.L1DMPKI), f1(p.L2MPKI))
	}
	return t.String()
}
