// Package experiments regenerates every table and figure of the paper's
// evaluation (Secs. II, IV, VII). Each Fig*/Table* function runs the
// necessary system simulations and returns a typed result with a Render
// method that prints the same rows/series the paper reports; the
// cmd/dmxbench binary and the repository's bench harness are thin
// wrappers over these functions. Expected-shape assertions live in this
// package's tests, and EXPERIMENTS.md records paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"dmx/internal/dmxsys"
	"dmx/internal/workload"
)

// Concurrencies is the paper's co-running application sweep.
var Concurrencies = []int{1, 5, 10, 15}

// geomean of a positive series.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var acc float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

// baseSuite caches the paper-scale suite: constructing it generates the
// full synthetic corpora (compressing 16 MB tables, sealing 10 MB of
// ciphertext, RLE-encoding frames), which need happen only once.
var baseSuite struct {
	once    sync.Once
	benches []*workload.Benchmark
	err     error
}

// suite returns n app instances cycling through the five benchmarks in
// Table I order.
func suite(n int) ([]*workload.Benchmark, error) {
	baseSuite.once.Do(func() {
		baseSuite.benches, baseSuite.err = workload.Suite(workload.PaperScale)
	})
	if baseSuite.err != nil {
		return nil, baseSuite.err
	}
	base := baseSuite.benches
	out := make([]*workload.Benchmark, n)
	for i := range out {
		out[i] = base[i%len(base)]
	}
	return out, nil
}

// runSystem simulates n concurrent instances of the given benchmarks
// under a placement.
func runSystem(p dmxsys.Placement, benches []*workload.Benchmark) (dmxsys.RunReport, error) {
	cfg := dmxsys.DefaultConfig(p)
	return runSystemCfg(cfg, benches)
}

func runSystemCfg(cfg dmxsys.Config, benches []*workload.Benchmark) (dmxsys.RunReport, error) {
	pipes := make([]*dmxsys.Pipeline, len(benches))
	for i, b := range benches {
		pipes[i] = b.Pipeline
	}
	sys, err := dmxsys.New(cfg, pipes)
	if err != nil {
		return dmxsys.RunReport{}, err
	}
	return sys.Run(), nil
}

// perBenchmark collapses a run's apps to geometric means per benchmark
// name (several instances of the same benchmark co-run at high
// concurrency).
func perBenchmark(rep dmxsys.RunReport) map[string]float64 {
	acc := make(map[string][]float64)
	for _, a := range rep.Apps {
		acc[a.App] = append(acc[a.App], a.Total.Seconds())
	}
	out := make(map[string]float64, len(acc))
	for name, xs := range acc {
		out[name] = geomean(xs)
	}
	return out
}

// table is a tiny fixed-width text table builder shared by Render
// methods.
type table struct {
	b      strings.Builder
	widths []int
}

func newTable(title string, headers ...string) *table {
	t := &table{}
	t.b.WriteString(title)
	t.b.WriteByte('\n')
	t.widths = make([]int, len(headers))
	for i, h := range headers {
		t.widths[i] = len(h) + 2
		if t.widths[i] < 12 {
			t.widths[i] = 12
		}
	}
	t.row(headers...)
	return t
}

func (t *table) row(cells ...string) {
	for i, c := range cells {
		w := 12
		if i < len(t.widths) {
			w = t.widths[i]
		}
		fmt.Fprintf(&t.b, "%-*s", w, c)
	}
	t.b.WriteByte('\n')
}

func (t *table) rowf(format string, args ...any) {
	fmt.Fprintf(&t.b, format, args...)
	t.b.WriteByte('\n')
}

func (t *table) String() string { return t.b.String() }

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
